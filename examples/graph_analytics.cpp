/**
 * @file
 * Graph-analytics scenario: the kind of workload the paper's intro
 * motivates. Runs the GraphBIG PageRank kernel on a virtualized
 * machine with nested radix tables and with Nested ECPTs, and reports
 * the translation-side difference.
 *
 *   ./examples/graph_analytics [app]   (default: PR)
 */

#include <cstdio>
#include <string>

#include "sim/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace necpt;

    const std::string app = argc > 1 ? argv[1] : "PR";
    SimParams params = scaledParams(paramsFromEnv(), 2, 1);

    std::printf("Running %s under two virtualized page-table "
                "organizations...\n\n",
                app.c_str());

    const SimResult radix =
        runSim(makeConfig(ConfigId::NestedRadix), params, app);
    const SimResult ecpt =
        runSim(makeConfig(ConfigId::NestedEcpt), params, app);

    auto show = [](const SimResult &r) {
        std::printf("%-22s %12llu cycles | MMU busy %10llu | "
                    "%llu walks | %.1f MMU reqs/walk\n",
                    r.config.c_str(),
                    static_cast<unsigned long long>(r.cycles),
                    static_cast<unsigned long long>(r.mmu_busy_cycles),
                    static_cast<unsigned long long>(r.walks),
                    r.walks ? static_cast<double>(r.mmu_requests)
                            / r.walks : 0.0);
    };
    show(radix);
    show(ecpt);

    std::printf("\nSpeedup (Nested ECPTs over Nested Radix): %.3fx\n",
                static_cast<double>(radix.cycles) / ecpt.cycles);
    std::printf("MMU busy-cycle reduction: %.1f%%\n",
                (1.0 - static_cast<double>(ecpt.mmu_busy_cycles)
                           / radix.mmu_busy_cycles) * 100.0);
    std::printf("Nested-ECPT parallel accesses per step: "
                "%.1f / %.1f / %.1f\n",
                ecpt.step_avg[0], ecpt.step_avg[1], ecpt.step_avg[2]);
    return 0;
}
