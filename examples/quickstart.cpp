/**
 * @file
 * Quickstart: build a virtualized machine with Nested Elastic Cuckoo
 * Page Tables, touch some memory, and watch a nested translation go
 * through its three parallel steps.
 *
 *   ./examples/quickstart
 */

#include <cstdio>

#include "mem/hierarchy.hh"
#include "os/system.hh"
#include "walk/nested_ecpt.hh"

int
main()
{
    using namespace necpt;

    // 1. A virtualized system: guest and host both use ECPTs.
    SystemConfig scfg;
    scfg.virtualized = true;
    scfg.guest_kind = PtKind::Ecpt;
    scfg.host_kind = PtKind::Ecpt;
    scfg.guest_thp = true;
    scfg.host_thp = true;
    scfg.host_ecpt.has_pte_cwt = true; // Advanced design
    NestedSystem sys(scfg);

    // 2. The memory hierarchy of Table 2.
    MemoryHierarchy mem(MemHierarchyConfig{}, 1);

    // 3. The Advanced Nested ECPT walker (STC + Step-1/Step-3 caching
    //    + 4KB page-table knowledge).
    NestedEcptWalker walker(sys, mem, 0,
                            NestedEcptFeatures::advanced());

    // 4. Map a 64MB region and make a few pages resident.
    const Addr base = sys.mmapRegion(64ULL << 20);
    for (int i = 0; i < 16; ++i)
        sys.ensureResident(base + static_cast<Addr>(i) * 4096);

    std::printf("Nested ECPT quickstart\n");
    std::printf("----------------------\n");

    // 5. Translate a few addresses; the first walk is cold, later
    //    walks benefit from warm CWCs.
    Cycles now = 0;
    for (int i = 0; i < 4; ++i) {
        const Addr gva = base + static_cast<Addr>(i) * 4096 + 0x123;
        const WalkResult r = walker.translate(gva, now);
        std::printf("gVA 0x%012llx -> hPA 0x%012llx  (%s page, "
                    "%llu cycles, %d parallel accesses)\n",
                    static_cast<unsigned long long>(gva),
                    static_cast<unsigned long long>(
                        r.translation.apply(gva)),
                    pageSizeName(r.translation.size),
                    static_cast<unsigned long long>(r.latency),
                    r.mem_accesses);
        now += 1000;
    }

    const WalkerStats &ws = walker.stats();
    std::printf("\nwalks: %llu, avg parallel accesses per step: "
                "%.1f / %.1f / %.1f\n",
                static_cast<unsigned long long>(ws.walks.value()),
                ws.avgStepAccesses(0), ws.avgStepAccesses(1),
                ws.avgStepAccesses(2));
    std::printf("guest structures: %.1f KB, host structures: %.1f KB\n",
                sys.guestStructureBytes() / 1024.0,
                sys.hostStructureBytes() / 1024.0);
    return 0;
}
