/**
 * @file
 * Migration-path scenario (Section 6): a cloud operator cannot flip
 * guest OSes to a new page-table format overnight. The Hybrid design
 * keeps guests on radix tables and moves only the hypervisor to
 * ECPTs; guests need no changes. This example walks the migration:
 *
 *     Nested Radix  ->  Nested Hybrid  ->  Nested ECPTs
 *
 *   ./examples/hybrid_migration [app]   (default: MUMmer)
 */

#include <cstdio>
#include <string>

#include "sim/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace necpt;

    const std::string app = argc > 1 ? argv[1] : "MUMmer";
    SimParams params = scaledParams(paramsFromEnv(), 2, 1);

    std::printf("Migration path for %s (Section 6):\n\n", app.c_str());

    const ConfigId stages[] = {ConfigId::NestedRadix,
                               ConfigId::NestedHybrid,
                               ConfigId::NestedEcpt};
    const char *notes[] = {
        "today: radix guest + radix host (up to 24 sequential steps)",
        "step 1: keep guest OS unchanged, host moves to ECPTs "
        "(9 sequential steps)",
        "step 2: guest adopts ECPTs too (3 parallel steps)",
    };

    double base_cycles = 0;
    for (int stage = 0; stage < 3; ++stage) {
        const SimResult r =
            runSim(makeConfig(stages[stage]), params, app);
        if (stage == 0)
            base_cycles = static_cast<double>(r.cycles);
        std::printf("%-16s speedup %.3fx | MMU busy/walk %5.0f | %s\n",
                    r.config.c_str(),
                    base_cycles / static_cast<double>(r.cycles),
                    r.walks ? static_cast<double>(r.mmu_busy_cycles)
                            / r.walks : 0.0,
                    notes[stage]);
    }

    std::printf("\nThe hybrid stage needs no guest kernel changes — "
                "the VM abstraction hides the host's page-table "
                "format (Section 6).\n");
    return 0;
}
