/**
 * @file
 * TLB-pressure study: how the benefit of parallel nested translation
 * grows with application footprint. Sweeps the footprint scale for a
 * TLB-hostile workload and reports L2-TLB miss rates, walk latencies
 * and the ECPT-vs-radix gap at each point — the "upcoming terabyte
 * memories" motivation of Section 1.
 *
 *   ./examples/tlb_pressure_study [app]   (default: GUPS)
 */

#include <cstdio>
#include <string>

#include "sim/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace necpt;

    const std::string app = argc > 1 ? argv[1] : "GUPS";
    SimParams params = scaledParams(paramsFromEnv(), 4, 2);

    std::printf("Footprint sweep for %s (larger scale divisor = "
                "smaller footprint):\n\n",
                app.c_str());
    std::printf("%-8s %14s %14s %14s %12s\n", "scale",
                "L2TLB miss/Ki", "radix walk cyc", "ecpt walk cyc",
                "ECPT speedup");

    for (const std::uint64_t scale : {64ULL, 32ULL, 16ULL, 8ULL}) {
        params.scale_denominator = scale;
        const SimResult radix =
            runSim(makeConfig(ConfigId::NestedRadix), params, app);
        const SimResult ecpt =
            runSim(makeConfig(ConfigId::NestedEcpt), params, app);
        const double miss_pki = 1000.0
            * static_cast<double>(radix.l2_tlb_misses)
            / static_cast<double>(radix.instructions);
        std::printf("1/%-6llu %14.2f %14.0f %14.0f %11.3fx\n",
                    static_cast<unsigned long long>(scale), miss_pki,
                    radix.walks ? static_cast<double>(
                        radix.mmu_busy_cycles) / radix.walks : 0.0,
                    ecpt.walks ? static_cast<double>(
                        ecpt.mmu_busy_cycles) / ecpt.walks : 0.0,
                    static_cast<double>(radix.cycles) / ecpt.cycles);
    }

    std::printf("\n(Each row keeps the Table-2 MMU structures fixed "
                "while the footprint grows toward paper scale.)\n");
    return 0;
}
