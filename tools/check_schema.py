#!/usr/bin/env python3
"""Validate a JSON document against a minimal schema (no third-party deps).

Supports the subset of JSON Schema this repo's checked-in schemas use:
  type, properties, required, additionalProperties (bool),
  items, enum, const, minimum, patternProperties (as a single ".*" rule).

Usage: check_schema.py SCHEMA.json DOCUMENT.json
Exit 0 when the document validates, 1 with a path-qualified message
otherwise.
"""

import json
import re
import sys

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
    "null": type(None),
}


def fail(path, message):
    raise SystemExit(f"schema violation at {path or '$'}: {message}")


def check(node, schema, path="$"):
    if "const" in schema and node != schema["const"]:
        fail(path, f"expected const {schema['const']!r}, got {node!r}")
    if "enum" in schema and node not in schema["enum"]:
        fail(path, f"{node!r} not one of {schema['enum']}")
    expected = schema.get("type")
    if expected is not None:
        allowed = expected if isinstance(expected, list) else [expected]
        if not any(
            isinstance(node, TYPES[t])
            # bool is an int subclass in Python; keep them distinct.
            and not (t in ("number", "integer") and isinstance(node, bool))
            for t in allowed
        ):
            fail(path, f"expected type {expected}, got {type(node).__name__}")
    if isinstance(node, (int, float)) and not isinstance(node, bool):
        if "minimum" in schema and node < schema["minimum"]:
            fail(path, f"{node} below minimum {schema['minimum']}")
    if isinstance(node, dict):
        props = schema.get("properties", {})
        for key in schema.get("required", []):
            if key not in node:
                fail(path, f"missing required property '{key}'")
        patterns = {
            re.compile(p): s
            for p, s in schema.get("patternProperties", {}).items()
        }
        for key, value in node.items():
            if key in props:
                check(value, props[key], f"{path}.{key}")
                continue
            matched = False
            for pattern, sub in patterns.items():
                if pattern.search(key):
                    check(value, sub, f"{path}.{key}")
                    matched = True
                    break
            if matched:
                continue
            if schema.get("additionalProperties", True) is False:
                fail(path, f"unexpected property '{key}'")
    if isinstance(node, list) and "items" in schema:
        for i, item in enumerate(node):
            check(item, schema["items"], f"{path}[{i}]")


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        schema = json.load(f)
    with open(argv[2]) as f:
        document = json.load(f)
    check(document, schema)
    print(f"{argv[2]}: valid against {argv[1]}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
