#!/usr/bin/env python3
"""Compare a BENCH_*.json result against its committed baseline.

The bench binaries (bench_sim_throughput, bench_hotpath) emit
    {"bench": ..., "unit": "<rate key>", "results": [{"name": ...,
     "<rate key>": ...}, ...]}
and the repository pins reference numbers under bench/baseline/. This
script prints a markdown comparison table (also appended to
$GITHUB_STEP_SUMMARY when set, so CI surfaces it on the job page) and
flags any entry whose rate dropped more than --max-drop (default 10%)
below the baseline.

Exit code: 1 if a regression was flagged, unless --warn-only. CI runs
warn-only — wall-clock rates on shared runners are noisy, and the gate
is advisory; the artifact series is the durable record.

Usage:
    tools/check_bench.py CURRENT BASELINE [--max-drop 0.10] [--warn-only]
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path) as fh:
        data = json.load(fh)
    unit = data.get("unit")
    if not unit:
        sys.exit(f"{path}: missing 'unit' field")
    rates = {}
    attrs = {}
    for entry in data.get("results", []):
        if unit not in entry:
            sys.exit(f"{path}: entry {entry.get('name')!r} lacks {unit!r}")
        rates[entry["name"]] = float(entry[unit])
        if isinstance(entry.get("attr"), dict):
            attrs[entry["name"]] = {
                k: float(v) for k, v in entry["attr"].items()}
    return unit, rates, attrs


def attr_shifts(baseline, current, threshold):
    """Causes whose cycle share moved more than `threshold` (fraction,
    e.g. 0.05 = 5pp), as (cause, base, cur) sorted by |shift| desc."""
    shifted = []
    for cause in sorted(set(baseline) | set(current)):
        base = baseline.get(cause, 0.0)
        cur = current.get(cause, 0.0)
        if abs(cur - base) > threshold:
            shifted.append((cause, base, cur))
    shifted.sort(key=lambda t: abs(t[2] - t[1]), reverse=True)
    return shifted


def main():
    parser = argparse.ArgumentParser(
        description="Flag bench-rate regressions against a baseline.")
    parser.add_argument("current", help="freshly produced BENCH_*.json")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("--max-drop", type=float, default=0.10,
                        help="tolerated fractional rate drop "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but exit 0")
    parser.add_argument("--max-attr-shift", type=float, default=0.05,
                        help="tolerated per-cause attribution share "
                             "shift (default 0.05 = 5pp)")
    args = parser.parse_args()

    unit, current, current_attr = load(args.current)
    base_unit, baseline, baseline_attr = load(args.baseline)
    if unit != base_unit:
        sys.exit(f"unit mismatch: {unit!r} vs baseline {base_unit!r}")

    lines = [
        f"### Bench comparison ({unit}, max drop "
        f"{args.max_drop * 100:.0f}%)",
        "",
        "| name | baseline | current | delta |",
        "| --- | ---: | ---: | ---: |",
    ]
    regressions = []
    for name, base_rate in baseline.items():
        if name not in current:
            regressions.append(f"{name}: missing from {args.current}")
            lines.append(f"| {name} | {base_rate:.0f} | MISSING | |")
            continue
        rate = current[name]
        delta = (rate - base_rate) / base_rate if base_rate else 0.0
        marker = ""
        if delta < -args.max_drop:
            marker = " :warning:"
            regressions.append(
                f"{name}: {rate:.0f} {unit} is {-delta * 100:.1f}% below "
                f"baseline {base_rate:.0f}")
        lines.append(f"| {name} | {base_rate:.0f} | {rate:.0f} | "
                     f"{delta * +100:+.1f}%{marker} |")
    for name in current:
        if name not in baseline:
            lines.append(f"| {name} | (new) | {current[name]:.0f} | |")

    # Attribution profile diff: where did the cycles move? A share
    # shift above the threshold is flagged alongside the rate check so
    # perf PRs see the cause, not just the symptom.
    attr_lines = []
    for name in baseline_attr:
        if name not in current_attr:
            continue
        shifted = attr_shifts(baseline_attr[name], current_attr[name],
                              args.max_attr_shift)
        for cause, base, cur in shifted:
            attr_lines.append(
                f"| {name} | {cause} | {base * 100:.1f}% | "
                f"{cur * 100:.1f}% | {(cur - base) * 100:+.1f}pp "
                f":warning: |")
            regressions.append(
                f"{name}: attr share of {cause!r} moved "
                f"{(cur - base) * 100:+.1f}pp "
                f"({base * 100:.1f}% -> {cur * 100:.1f}%)")
    if attr_lines:
        lines += [
            "",
            f"### Attribution profile shifts (> "
            f"{args.max_attr_shift * 100:.0f}pp)",
            "",
            "| name | cause | baseline | current | shift |",
            "| --- | --- | ---: | ---: | ---: |",
        ] + attr_lines

    report = "\n".join(lines) + "\n"
    print(report)
    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a") as fh:
            fh.write(report + "\n")

    if regressions:
        for r in regressions:
            print(f"REGRESSION: {r}", file=sys.stderr)
        if not args.warn_only:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
