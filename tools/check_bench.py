#!/usr/bin/env python3
"""Compare a BENCH_*.json result against its committed baseline.

The bench binaries (bench_sim_throughput, bench_hotpath) emit
    {"bench": ..., "unit": "<rate key>", "results": [{"name": ...,
     "<rate key>": ...}, ...]}
and the repository pins reference numbers under bench/baseline/. This
script prints a markdown comparison table (also appended to
$GITHUB_STEP_SUMMARY when set, so CI surfaces it on the job page) and
flags any entry whose rate dropped more than --max-drop (default 10%)
below the baseline.

Beyond the relative diff, two absolute gates make the check a real
quality bar rather than a drift detector:

  --min-rate "NAME=VALUE"   the named entry's rate must be >= VALUE
                            (repeatable; an absolute floor survives
                            baseline regeneration, which a relative
                            diff alone does not). When both the current
                            and baseline files carry "host_ref" — the
                            bench's fixed-work reference-kernel rate,
                            measuring raw host speed — the floor is
                            rescaled by current/baseline host_ref, so
                            a dev laptop is held to its own machine's
                            standard, not the CI runner's
                            (--no-host-calibration restores literal
                            floors)
  --require-order "A>B"     entry A's rate must be strictly greater
                            than entry B's (repeatable; e.g. the
                            overlapped-walk configuration must beat
                            the serialized one in wall clock, or the
                            parallelism is decorative)

Exit code: 1 if any regression or gate violation was flagged, unless
--warn-only. The release CI leg runs the gates in failing mode; noisy
shared-runner wall clocks are absorbed by setting the floors well
below steady-state rates rather than by warn-only.

Usage:
    tools/check_bench.py CURRENT BASELINE [--max-drop 0.10]
        [--min-rate NAME=VALUE]... [--require-order A>B]...
        [--warn-only]
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path) as fh:
        data = json.load(fh)
    unit = data.get("unit")
    if not unit:
        sys.exit(f"{path}: missing 'unit' field")
    rates = {}
    attrs = {}
    for entry in data.get("results", []):
        if unit not in entry:
            sys.exit(f"{path}: entry {entry.get('name')!r} lacks {unit!r}")
        rates[entry["name"]] = float(entry[unit])
        if isinstance(entry.get("attr"), dict):
            attrs[entry["name"]] = {
                k: float(v) for k, v in entry["attr"].items()}
    host_ref = data.get("host_ref")
    host_ref = float(host_ref) if host_ref else None
    return unit, rates, attrs, host_ref


def attr_shifts(baseline, current, threshold):
    """Causes whose cycle share moved more than `threshold` (fraction,
    e.g. 0.05 = 5pp), as (cause, base, cur) sorted by |shift| desc."""
    shifted = []
    for cause in sorted(set(baseline) | set(current)):
        base = baseline.get(cause, 0.0)
        cur = current.get(cause, 0.0)
        if abs(cur - base) > threshold:
            shifted.append((cause, base, cur))
    shifted.sort(key=lambda t: abs(t[2] - t[1]), reverse=True)
    return shifted


def main():
    parser = argparse.ArgumentParser(
        description="Flag bench-rate regressions against a baseline.")
    parser.add_argument("current", help="freshly produced BENCH_*.json")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("--max-drop", type=float, default=0.10,
                        help="tolerated fractional rate drop "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but exit 0")
    parser.add_argument("--max-attr-shift", type=float, default=0.05,
                        help="tolerated per-cause attribution share "
                             "shift (default 0.05 = 5pp)")
    parser.add_argument("--min-rate", action="append", default=[],
                        metavar="NAME=VALUE",
                        help="absolute floor: the named entry's rate "
                             "must be >= VALUE (repeatable)")
    parser.add_argument("--require-order", action="append", default=[],
                        metavar="A>B",
                        help="entry A's rate must be strictly greater "
                             "than entry B's (repeatable)")
    parser.add_argument("--no-host-calibration", action="store_true",
                        help="take --min-rate floors literally instead "
                             "of rescaling them by the current/baseline "
                             "host_ref ratio")
    args = parser.parse_args()

    unit, current, current_attr, cur_ref = load(args.current)
    base_unit, baseline, baseline_attr, base_ref = load(args.baseline)
    if unit != base_unit:
        sys.exit(f"unit mismatch: {unit!r} vs baseline {base_unit!r}")

    # Host calibration: the floors were chosen for the host that
    # produced the committed baseline. Both files carry host_ref — the
    # rate of a fixed-work reference kernel measured in the same
    # process as the rows — so floor * (current/baseline host_ref)
    # asks "is the simulator as fast *relative to this machine* as the
    # floor demanded of the baseline machine", which is the question
    # an absolute floor actually means to ask. Without both refs the
    # floors apply literally (pre-host_ref baselines keep working).
    host_scale = 1.0
    if (not args.no_host_calibration and cur_ref and base_ref
            and base_ref > 0):
        host_scale = cur_ref / base_ref

    lines = [
        f"### Bench comparison ({unit}, max drop "
        f"{args.max_drop * 100:.0f}%)",
        "",
        "| name | baseline | current | delta |",
        "| --- | ---: | ---: | ---: |",
    ]
    regressions = []
    for name, base_rate in baseline.items():
        if name not in current:
            regressions.append(f"{name}: missing from {args.current}")
            lines.append(f"| {name} | {base_rate:.0f} | MISSING | |")
            continue
        rate = current[name]
        delta = (rate - base_rate) / base_rate if base_rate else 0.0
        marker = ""
        if delta < -args.max_drop:
            marker = " :warning:"
            regressions.append(
                f"{name}: {rate:.0f} {unit} is {-delta * 100:.1f}% below "
                f"baseline {base_rate:.0f}")
        lines.append(f"| {name} | {base_rate:.0f} | {rate:.0f} | "
                     f"{delta * +100:+.1f}%{marker} |")
    for name in current:
        if name not in baseline:
            lines.append(f"| {name} | (new) | {current[name]:.0f} | |")

    # Absolute floors: independent of the baseline file's rates, so
    # they hold even across a baseline regeneration. Rescaled by the
    # host calibration ratio unless --no-host-calibration.
    gate_lines = []
    if args.min_rate and host_scale != 1.0:
        gate_lines.append(
            f"| calibration | host_ref | {base_ref:.0f} -> "
            f"{cur_ref:.0f} | floors x {host_scale:.2f} |")
    for spec in args.min_rate:
        name, sep, value = spec.rpartition("=")
        if not sep:
            sys.exit(f"--min-rate {spec!r}: expected NAME=VALUE")
        floor = float(value) * host_scale
        if name not in current:
            regressions.append(f"{name}: missing (floor {floor:.0f})")
            gate_lines.append(f"| floor | {name} | >= {floor:.0f} | "
                              f"MISSING :warning: |")
            continue
        rate = current[name]
        ok = rate >= floor
        if not ok:
            regressions.append(
                f"{name}: {rate:.0f} {unit} below absolute floor "
                f"{floor:.0f}"
                + (f" (= {float(value):.0f} x host scale "
                   f"{host_scale:.2f})" if host_scale != 1.0 else ""))
        gate_lines.append(
            f"| floor | {name} | >= {floor:.0f} | {rate:.0f}"
            f"{'' if ok else ' :warning:'} |")

    # Ordering gates: A must be strictly faster than B in this run.
    for spec in args.require_order:
        fast, sep, slow = spec.partition(">")
        if not sep:
            sys.exit(f"--require-order {spec!r}: expected A>B")
        fast, slow = fast.strip(), slow.strip()
        missing = [n for n in (fast, slow) if n not in current]
        if missing:
            regressions.append(
                f"order {spec!r}: missing entries {missing}")
            gate_lines.append(f"| order | {fast} > {slow} | | "
                              f"MISSING :warning: |")
            continue
        ok = current[fast] > current[slow]
        if not ok:
            regressions.append(
                f"order violated: {fast} ({current[fast]:.0f}) is not "
                f"faster than {slow} ({current[slow]:.0f})")
        gate_lines.append(
            f"| order | {fast} > {slow} | {current[fast]:.0f} vs "
            f"{current[slow]:.0f} | {'ok' if ok else ':warning:'} |")
    if gate_lines:
        lines += [
            "",
            "### Absolute gates",
            "",
            "| kind | gate | requirement | result |",
            "| --- | --- | --- | --- |",
        ] + gate_lines

    # Attribution profile diff: where did the cycles move? A share
    # shift above the threshold is flagged alongside the rate check so
    # perf PRs see the cause, not just the symptom.
    attr_lines = []
    for name in baseline_attr:
        if name not in current_attr:
            continue
        shifted = attr_shifts(baseline_attr[name], current_attr[name],
                              args.max_attr_shift)
        for cause, base, cur in shifted:
            attr_lines.append(
                f"| {name} | {cause} | {base * 100:.1f}% | "
                f"{cur * 100:.1f}% | {(cur - base) * 100:+.1f}pp "
                f":warning: |")
            regressions.append(
                f"{name}: attr share of {cause!r} moved "
                f"{(cur - base) * 100:+.1f}pp "
                f"({base * 100:.1f}% -> {cur * 100:.1f}%)")
    if attr_lines:
        lines += [
            "",
            f"### Attribution profile shifts (> "
            f"{args.max_attr_shift * 100:.0f}pp)",
            "",
            "| name | cause | baseline | current | shift |",
            "| --- | --- | ---: | ---: | ---: |",
        ] + attr_lines

    report = "\n".join(lines) + "\n"
    print(report)
    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a") as fh:
            fh.write(report + "\n")

    if regressions:
        for r in regressions:
            print(f"REGRESSION: {r}", file=sys.stderr)
        if not args.warn_only:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
