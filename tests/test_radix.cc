/** @file Unit tests for the 4-level radix page table. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "pt/radix.hh"
#include "tests/test_util.hh"

namespace necpt
{

TEST(Radix, MapAndLookup4K)
{
    BumpAllocator alloc;
    RadixPageTable pt(alloc);
    pt.map(0x7000'1000, 0xAAAA'0000, PageSize::Page4K);
    const Translation t = pt.lookup(0x7000'1234);
    ASSERT_TRUE(t.valid);
    EXPECT_EQ(t.pa, 0xAAAA'0000u);
    EXPECT_EQ(t.size, PageSize::Page4K);
    EXPECT_EQ(t.apply(0x7000'1234), 0xAAAA'0234u);
}

TEST(Radix, UnmappedInvalid)
{
    BumpAllocator alloc;
    RadixPageTable pt(alloc);
    EXPECT_FALSE(pt.lookup(0x1234'5678).valid);
}

TEST(Radix, WalkDepthPerPageSize)
{
    BumpAllocator alloc;
    RadixPageTable pt(alloc);
    pt.map(0x0000'0000, 0x1'0000'0000, PageSize::Page4K);
    pt.map(0x4000'0000ULL + (2ULL << 21), 0x2'0020'0000,
           PageSize::Page2M);
    pt.map(0x80'0000'0000ULL, 0x3'4000'0000, PageSize::Page1G);

    std::vector<RadixStep> steps;
    pt.walk(0x0000'0123, steps);
    EXPECT_EQ(steps.size(), 4u); // Figure 1: up to 4 references
    EXPECT_TRUE(steps.back().leaf);
    EXPECT_EQ(steps.back().level, 1);

    steps.clear();
    pt.walk(0x4000'0000ULL + (2ULL << 21) + 5, steps);
    EXPECT_EQ(steps.size(), 3u); // 2MB terminates at L2
    EXPECT_EQ(steps.back().level, 2);

    steps.clear();
    pt.walk(0x80'0000'0000ULL + 7, steps);
    EXPECT_EQ(steps.size(), 2u); // 1GB terminates at L3
    EXPECT_EQ(steps.back().level, 3);
}

TEST(Radix, StepAddressesLiveInAllocatedNodes)
{
    BumpAllocator alloc(0x5000'0000);
    RadixPageTable pt(alloc);
    pt.map(0x1000, 0x9000, PageSize::Page4K);
    std::vector<RadixStep> steps;
    pt.walk(0x1000, steps);
    EXPECT_EQ(steps[0].entry_addr, pt.root() + radixIndex(0x1000, 4) * 8);
    for (const RadixStep &step : steps) {
        EXPECT_GE(step.entry_addr, 0x5000'0000u);
        EXPECT_LT(step.entry_addr, alloc.cursor);
    }
}

TEST(Radix, SharedIntermediateNodes)
{
    BumpAllocator alloc;
    RadixPageTable pt(alloc);
    pt.map(0x1000, 0xA000, PageSize::Page4K);
    const auto nodes_before = pt.nodeCount();
    pt.map(0x2000, 0xB000, PageSize::Page4K); // same L1 table
    EXPECT_EQ(pt.nodeCount(), nodes_before);
    pt.map(0x4000'0000, 0xC000, PageSize::Page4K); // new subtree
    EXPECT_GT(pt.nodeCount(), nodes_before);
}

TEST(Radix, UnmapRemovesMapping)
{
    BumpAllocator alloc;
    RadixPageTable pt(alloc);
    pt.map(0x1000, 0xA000, PageSize::Page4K);
    EXPECT_EQ(pt.mappingCount(), 1u);
    pt.unmap(0x1000, PageSize::Page4K);
    EXPECT_FALSE(pt.lookup(0x1000).valid);
    EXPECT_EQ(pt.mappingCount(), 0u);
}

TEST(Radix, StructureBytesGrowWithNodes)
{
    BumpAllocator alloc;
    RadixPageTable pt(alloc);
    const auto initial = pt.structureBytes();
    EXPECT_EQ(initial, 4096u); // root only
    pt.map(0x1000, 0xA000, PageSize::Page4K);
    EXPECT_EQ(pt.structureBytes(), 4096u * pt.nodeCount());
    EXPECT_EQ(pt.nodeCount(), 4u); // root + 3 intermediate
}

TEST(Radix, Remap)
{
    BumpAllocator alloc;
    RadixPageTable pt(alloc);
    pt.map(0x1000, 0xA000, PageSize::Page4K);
    pt.map(0x1000, 0xB000, PageSize::Page4K);
    EXPECT_EQ(pt.lookup(0x1000).pa, 0xB000u);
    EXPECT_EQ(pt.mappingCount(), 1u);
}

TEST(Radix, FiveLevelTreeWalksOneExtraStep)
{
    BumpAllocator alloc;
    RadixPageTable pt4(alloc, 4);
    RadixPageTable pt5(alloc, 5);
    EXPECT_EQ(pt4.topLevel(), 4);
    EXPECT_EQ(pt5.topLevel(), 5);
    pt4.map(0x7000'1000, 0xA000, PageSize::Page4K);
    pt5.map(0x7000'1000, 0xA000, PageSize::Page4K);
    std::vector<RadixStep> s4, s5;
    ASSERT_TRUE(pt4.walk(0x7000'1000, s4).valid);
    ASSERT_TRUE(pt5.walk(0x7000'1000, s5).valid);
    EXPECT_EQ(s4.size(), 4u);
    EXPECT_EQ(s5.size(), 5u); // Section 1: the Sunny Cove fifth level
    EXPECT_EQ(s5.front().level, 5);
    EXPECT_EQ(pt5.lookup(0x7000'1234).apply(0x7000'1234), 0xA234u);
}

TEST(Radix, FiveLevelDistinguishesHighVaBits)
{
    BumpAllocator alloc;
    RadixPageTable pt(alloc, 5);
    const Addr lo = 0x1000;
    const Addr hi = lo + (1ULL << 48); // differs only in L5 index
    pt.map(lo, 0xA000, PageSize::Page4K);
    pt.map(hi, 0xB000, PageSize::Page4K);
    EXPECT_EQ(pt.lookup(lo).pa, 0xA000u);
    EXPECT_EQ(pt.lookup(hi).pa, 0xB000u);
}

/** Property: many random 4K mappings all resolve correctly. */
TEST(Radix, RandomMappingsRoundTrip)
{
    BumpAllocator alloc;
    RadixPageTable pt(alloc);
    Rng rng(42);
    std::vector<std::pair<Addr, Addr>> mappings;
    for (int i = 0; i < 2000; ++i) {
        const Addr va = (rng.next() & mask(47)) & ~mask(12);
        const Addr pa = (rng.next() & mask(50)) & ~mask(12);
        pt.map(va, pa, PageSize::Page4K);
        mappings.emplace_back(va, pa);
    }
    for (auto [va, pa] : mappings) {
        const Translation t = pt.lookup(va + 5);
        ASSERT_TRUE(t.valid);
        // Later remaps of the same VA win; just check validity + size.
        EXPECT_EQ(t.size, PageSize::Page4K);
    }
}

} // namespace necpt
