/** @file Unit tests for the set-associative cache model (mem/cache.hh). */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace necpt
{

namespace
{
CacheConfig
smallCache(std::uint64_t size = 4096, int assoc = 2)
{
    return {"test", size, assoc, 10, 4};
}
} // namespace

TEST(SetAssocCache, MissThenHit)
{
    SetAssocCache cache(smallCache());
    EXPECT_FALSE(cache.access(0x1000, Requester::Core));
    cache.fill(0x1000);
    EXPECT_TRUE(cache.access(0x1000, Requester::Core));
    // Same line, different byte.
    EXPECT_TRUE(cache.access(0x103F, Requester::Core));
    // Next line misses.
    EXPECT_FALSE(cache.access(0x1040, Requester::Core));
}

TEST(SetAssocCache, LruEviction)
{
    // 2-way, 4096B => 32 sets; lines mapping to the same set are
    // 32*64 = 2048 bytes apart.
    SetAssocCache cache(smallCache());
    const Addr a = 0x0000, b = a + 2048, c = a + 4096;
    cache.fill(a);
    cache.fill(b);
    EXPECT_TRUE(cache.access(a, Requester::Core)); // a now MRU
    cache.fill(c);                                  // evicts b (LRU)
    EXPECT_TRUE(cache.contains(a));
    EXPECT_FALSE(cache.contains(b));
    EXPECT_TRUE(cache.contains(c));
}

TEST(SetAssocCache, PerRequesterStats)
{
    SetAssocCache cache(smallCache());
    cache.access(0x0, Requester::Core);   // miss
    cache.fill(0x0);
    cache.access(0x0, Requester::Core);   // hit
    cache.access(0x0, Requester::Mmu);    // hit
    cache.access(0x40, Requester::Mmu);   // miss
    EXPECT_EQ(cache.stats(Requester::Core).hits(), 1u);
    EXPECT_EQ(cache.stats(Requester::Core).misses(), 1u);
    EXPECT_EQ(cache.stats(Requester::Mmu).hits(), 1u);
    EXPECT_EQ(cache.stats(Requester::Mmu).misses(), 1u);
    cache.resetStats();
    EXPECT_EQ(cache.stats(Requester::Core).accesses(), 0u);
}

TEST(SetAssocCache, InvalidateAndFlush)
{
    SetAssocCache cache(smallCache());
    cache.fill(0x1000);
    cache.fill(0x2000);
    cache.invalidate(0x1000);
    EXPECT_FALSE(cache.contains(0x1000));
    EXPECT_TRUE(cache.contains(0x2000));
    cache.flush();
    EXPECT_FALSE(cache.contains(0x2000));
}

TEST(SetAssocCache, ContainsDoesNotTouchStats)
{
    SetAssocCache cache(smallCache());
    cache.fill(0x0);
    (void)cache.contains(0x0);
    (void)cache.contains(0x40);
    EXPECT_EQ(cache.stats(Requester::Core).accesses(), 0u);
}

TEST(SetAssocCache, FillIsIdempotent)
{
    SetAssocCache cache(smallCache(4096, 2));
    cache.fill(0x0);
    cache.fill(0x0);
    cache.fill(0x800); // same set
    // Both lines fit in the 2 ways: nothing was evicted by refilling.
    EXPECT_TRUE(cache.contains(0x0));
    EXPECT_TRUE(cache.contains(0x800));
}

/** Parameterized geometry sweep: capacity is always respected. */
class CacheGeometry
    : public ::testing::TestWithParam<std::pair<std::uint64_t, int>>
{};

TEST_P(CacheGeometry, CapacityRespected)
{
    const auto [size, assoc] = GetParam();
    SetAssocCache cache(smallCache(size, assoc));
    const std::uint64_t lines = size / line_bytes;
    // Fill twice the capacity; at most `lines` can be resident.
    std::uint64_t resident = 0;
    for (std::uint64_t i = 0; i < lines * 2; ++i)
        cache.fill(i * line_bytes);
    for (std::uint64_t i = 0; i < lines * 2; ++i)
        resident += cache.contains(i * line_bytes);
    EXPECT_LE(resident, lines);
    EXPECT_GE(resident, lines / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::make_pair(4096ULL, 1),
                      std::make_pair(4096ULL, 2),
                      std::make_pair(8192ULL, 4),
                      std::make_pair(32768ULL, 8),
                      std::make_pair(65536ULL, 16)));

} // namespace necpt
