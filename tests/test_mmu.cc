/** @file Unit tests for the MMU structures: AssocCache, TLBs, PWC,
 *  NTLB, STC, CWC, adaptive controller, POM-TLB. */

#include <gtest/gtest.h>

#include "mmu/assoc_cache.hh"
#include "mmu/cwc.hh"
#include "mmu/pom_tlb.hh"
#include "mmu/tlb.hh"
#include "mmu/walk_caches.hh"
#include "tests/test_util.hh"

namespace necpt
{

// ------------------------------------------------------------ AssocCache

TEST(AssocCache, FindInsertLru)
{
    AssocCache<std::uint64_t, int> cache(2); // FA, 2 entries
    EXPECT_EQ(cache.find(1), nullptr);
    cache.insert(1, 10);
    cache.insert(2, 20);
    EXPECT_EQ(*cache.find(1), 10); // 1 now MRU
    cache.insert(3, 30);           // evicts 2
    EXPECT_NE(cache.peek(1), nullptr);
    EXPECT_EQ(cache.peek(2), nullptr);
    EXPECT_NE(cache.peek(3), nullptr);
}

TEST(AssocCache, StatsCounted)
{
    AssocCache<std::uint64_t, int> cache(4);
    cache.find(1);
    cache.insert(1, 1);
    cache.find(1);
    EXPECT_EQ(cache.stats().hits(), 1u);
    EXPECT_EQ(cache.stats().misses(), 1u);
    cache.resetStats();
    EXPECT_EQ(cache.stats().accesses(), 0u);
}

TEST(AssocCache, PeekDoesNotDisturb)
{
    AssocCache<std::uint64_t, int> cache(2);
    cache.insert(1, 10);
    cache.insert(2, 20);
    cache.peek(1); // no recency update
    cache.find(2); // 2 MRU
    cache.insert(3, 30); // evicts 1 (peek didn't refresh it)
    EXPECT_EQ(cache.peek(1), nullptr);
}

TEST(AssocCache, SetAssociativeRespectsSets)
{
    AssocCache<std::uint64_t, int> cache(8, 2); // 4 sets x 2 ways
    EXPECT_EQ(cache.capacity(), 8u);
    cache.insert(0, 0);
    cache.insert(4, 4); // same set as 0 under %4 hashing of identity?
    // Whatever the set mapping, update + invalidate behave.
    cache.invalidate(0);
    EXPECT_EQ(cache.peek(0), nullptr);
    cache.flush();
    EXPECT_EQ(cache.peek(4), nullptr);
}

// ------------------------------------------------------------------ TLB

TEST(Tlb, MissThenInstallHit)
{
    TlbHierarchy tlb;
    auto r = tlb.lookup(0x1234);
    EXPECT_FALSE(r.hit);
    tlb.install(0x1234, {0xA000, PageSize::Page4K, true});
    r = tlb.lookup(0x1234);
    EXPECT_TRUE(r.hit);
    EXPECT_TRUE(r.l1_hit);
    EXPECT_EQ(r.latency, 0u);
    EXPECT_EQ(r.translation.apply(0x1234), 0xA234u);
}

TEST(Tlb, MultiPageSizeEntriesCoexist)
{
    TlbHierarchy tlb;
    tlb.install(0x1000, {0xA000, PageSize::Page4K, true});
    tlb.install(0x4000'0000, {0x1'0000'0000, PageSize::Page2M, true});
    tlb.install(0x80'0000'0000, {0x2'0000'0000, PageSize::Page1G, true});
    EXPECT_TRUE(tlb.lookup(0x1000).hit);
    auto r2m = tlb.lookup(0x4010'0000);
    EXPECT_TRUE(r2m.hit);
    EXPECT_EQ(r2m.translation.size, PageSize::Page2M);
    auto r1g = tlb.lookup(0x80'3FFF'FFFF);
    EXPECT_TRUE(r1g.hit);
    EXPECT_EQ(r1g.translation.size, PageSize::Page1G);
}

TEST(Tlb, L2CatchesL1Evictions)
{
    TlbConfig cfg;
    cfg.l1[0] = {4, 0}; // 4-entry FA L1 for 4K pages
    TlbHierarchy tlb(cfg);
    for (Addr va = 0; va < 16 * 4096; va += 4096)
        tlb.install(va, {va + 0x100000, PageSize::Page4K, true});
    // Early pages fell out of the tiny L1 but remain in the L2.
    const auto r = tlb.lookup(0x0);
    EXPECT_TRUE(r.hit);
    EXPECT_FALSE(r.l1_hit);
    EXPECT_EQ(r.latency, cfg.l2_latency);
}

TEST(Tlb, FlushDropsEverything)
{
    TlbHierarchy tlb;
    tlb.install(0x1000, {0xA000, PageSize::Page4K, true});
    tlb.flush();
    EXPECT_FALSE(tlb.lookup(0x1000).hit);
}

TEST(Tlb, StatsTrackMissRates)
{
    TlbHierarchy tlb;
    tlb.lookup(0x1000);
    tlb.install(0x1000, {0xA000, PageSize::Page4K, true});
    tlb.lookup(0x1000);
    EXPECT_EQ(tlb.l1Stats().misses(), 1u);
    EXPECT_EQ(tlb.l1Stats().hits(), 1u);
    EXPECT_EQ(tlb.l2Stats().misses(), 1u);
}

// ------------------------------------------------------------------ PWC

TEST(Pwc, PrefixSemantics)
{
    PageWalkCache pwc(2, 4, 32);
    const Addr va = 0x7123'4567'8000ULL;
    EXPECT_FALSE(pwc.lookup(4, va));
    pwc.fill(4, va);
    EXPECT_TRUE(pwc.lookup(4, va));
    // Same L4 slot: any VA sharing bits 47-39.
    EXPECT_TRUE(pwc.lookup(4, va + (1ULL << 30)));
    // Different L4 slot.
    EXPECT_FALSE(pwc.lookup(4, va + (1ULL << 39)));
    // Level 3 keyed by bits 47-30: not filled yet.
    EXPECT_FALSE(pwc.lookup(3, va));
}

TEST(Pwc, LevelsOutsideRangeIgnored)
{
    PageWalkCache pwc(2, 4, 32);
    pwc.fill(1, 0x1000); // PTE level is not cached natively
    EXPECT_FALSE(pwc.lookup(1, 0x1000));
}

TEST(Pwc, FlushClears)
{
    PageWalkCache pwc(2, 4, 16);
    pwc.fill(3, 0x1000);
    pwc.flush();
    EXPECT_FALSE(pwc.lookup(3, 0x1000));
}

// ----------------------------------------------------------- NTLB / STC

TEST(Ntlb, CachesGpaPageTranslations)
{
    NestedTlb ntlb(4);
    EXPECT_EQ(ntlb.lookup(0x1234), nullptr);
    ntlb.fill(0x1234, 0xABC000);
    ASSERT_NE(ntlb.lookup(0x1FFF), nullptr); // same 4KB page
    EXPECT_EQ(*ntlb.lookup(0x1FFF), 0xABC000u);
    EXPECT_EQ(ntlb.lookup(0x2000), nullptr); // next page
}

TEST(Stc, TenEntriesLru)
{
    ShortcutTranslationCache stc; // default 10 entries
    EXPECT_EQ(stc.capacity(), 10u);
    for (Addr gpa = 0; gpa < 12 * 4096; gpa += 4096)
        stc.fill(gpa, gpa + 0x100000);
    // The two oldest fell out.
    EXPECT_EQ(stc.lookup(0x0), nullptr);
    EXPECT_NE(stc.lookup(11 * 4096), nullptr);
}

// ------------------------------------------------------------------ CWC

TEST(Cwc, PerLevelCapacities)
{
    CuckooWalkCache cwc({0, 16, 2});
    EXPECT_FALSE(cwc.caches(PageSize::Page4K));
    EXPECT_TRUE(cwc.caches(PageSize::Page2M));
    EXPECT_TRUE(cwc.caches(PageSize::Page1G));
    // Lookups on an uncached level always miss (and count).
    EXPECT_FALSE(cwc.lookup(PageSize::Page4K, 1).has_value());
    EXPECT_EQ(cwc.stats(PageSize::Page4K).misses(), 1u);
}

TEST(Cwc, FillThenHit)
{
    CuckooWalkCache cwc({4, 16, 2});
    EXPECT_FALSE(cwc.lookup(PageSize::Page2M, 7).has_value());
    cwc.fill(PageSize::Page2M, 7, 0xDEAD);
    const auto payload = cwc.lookup(PageSize::Page2M, 7);
    ASSERT_TRUE(payload.has_value());
    EXPECT_EQ(*payload, 0xDEADu);
    EXPECT_EQ(cwc.stats(PageSize::Page2M).hits(), 1u);
}

TEST(Cwc, InvalidateAndFlush)
{
    CuckooWalkCache cwc({4, 16, 2});
    cwc.fill(PageSize::Page1G, 1, 0x1);
    cwc.invalidate(PageSize::Page1G, 1);
    EXPECT_FALSE(cwc.lookup(PageSize::Page1G, 1).has_value());
    cwc.fill(PageSize::Page1G, 2, 0x2);
    cwc.flush();
    EXPECT_FALSE(cwc.lookup(PageSize::Page1G, 2).has_value());
}

// ------------------------------------------------- Adaptive controller

TEST(Adaptive, StartsEnabled)
{
    AdaptiveCwcController ctl(100);
    EXPECT_TRUE(ctl.pteCachingEnabled());
}

TEST(Adaptive, DisablesOnLowPteHitRate)
{
    AdaptiveCwcController ctl(100, 0.5, 0.85);
    // A full window of PTE misses.
    for (Cycles t = 0; t <= 200; t += 10)
        ctl.record(t, PageSize::Page4K, false);
    EXPECT_FALSE(ctl.pteCachingEnabled());
    EXPECT_GE(ctl.transitions(), 1u);
}

TEST(Adaptive, ReenablesOnHighPmdHitRate)
{
    AdaptiveCwcController ctl(100, 0.5, 0.85);
    for (Cycles t = 0; t <= 200; t += 10)
        ctl.record(t, PageSize::Page4K, false);
    ASSERT_FALSE(ctl.pteCachingEnabled());
    for (Cycles t = 300; t <= 600; t += 10)
        ctl.record(t, PageSize::Page2M, true);
    EXPECT_TRUE(ctl.pteCachingEnabled());
    EXPECT_GE(ctl.transitions(), 2u);
}

TEST(Adaptive, StaysEnabledOnGoodPteRate)
{
    AdaptiveCwcController ctl(100, 0.5, 0.85);
    for (Cycles t = 0; t <= 1000; t += 10)
        ctl.record(t, PageSize::Page4K, (t % 30) != 0); // ~93% hits
    EXPECT_TRUE(ctl.pteCachingEnabled());
    EXPECT_EQ(ctl.transitions(), 0u);
}

// -------------------------------------------------------------- POM-TLB

TEST(PomTlb, InstallLookup)
{
    BumpAllocator alloc;
    PomTlb pom(alloc, 1024, 4);
    EXPECT_FALSE(pom.lookup(0x1000).hit);
    pom.install(0x1000, {0xA000, PageSize::Page4K, true});
    const auto r = pom.lookup(0x1234);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.translation.pa, 0xA000u);
    EXPECT_NE(r.entry_addr, invalid_addr);
}

TEST(PomTlb, HugeEntryCoversWholePage)
{
    BumpAllocator alloc;
    PomTlb pom(alloc, 1024, 4);
    pom.install(0x4000'0000, {0x1'0000'0000, PageSize::Page2M, true});
    // Any offset within the 2MB page hits the single entry.
    EXPECT_TRUE(pom.lookup(0x4000'0000 + 0x12345).hit);
    EXPECT_FALSE(pom.lookup(0x4020'0000).hit);
}

TEST(PomTlb, StatsAndBytes)
{
    BumpAllocator alloc;
    PomTlb pom(alloc, 1024, 4);
    pom.lookup(0x0);
    pom.install(0x0, {0x1000, PageSize::Page4K, true});
    pom.lookup(0x0);
    EXPECT_EQ(pom.stats().hits(), 1u);
    EXPECT_EQ(pom.stats().misses(), 1u);
    EXPECT_EQ(pom.structureBytes(), 1024u * 4 * 16);
}

} // namespace necpt
