/** @file Unit tests for counters, histograms and rate monitors. */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace necpt
{

TEST(Counter, IncAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    ++c;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(HitMiss, Rate)
{
    HitMiss hm;
    EXPECT_DOUBLE_EQ(hm.rate(), 0.0);
    hm.hit(3);
    hm.miss();
    EXPECT_EQ(hm.accesses(), 4u);
    EXPECT_DOUBLE_EQ(hm.rate(), 0.75);
    hm.reset();
    EXPECT_EQ(hm.accesses(), 0u);
}

TEST(Histogram, BinningAndOverflow)
{
    Histogram h(10, 5); // bins [0,10) ... [40,50) + overflow
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(49);
    h.sample(1000);
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(4), 1u);
    EXPECT_EQ(h.count(5), 1u); // overflow bin
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.max(), 1000u);
}

TEST(Histogram, MeanAndPercentile)
{
    Histogram h(10, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(static_cast<std::uint64_t>(i * 10));
    EXPECT_NEAR(h.mean(), 495.0, 1.0);
    EXPECT_NEAR(static_cast<double>(h.percentile(50)), 495.0, 10.0);
    EXPECT_NEAR(static_cast<double>(h.percentile(95)), 945.0, 10.0);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
}

TEST(Histogram, Probability)
{
    Histogram h(10, 4);
    h.sample(5);
    h.sample(5);
    h.sample(25);
    h.sample(35);
    EXPECT_DOUBLE_EQ(h.probability(0), 0.5);
    EXPECT_DOUBLE_EQ(h.probability(2), 0.25);
}

TEST(RateMonitor, WindowRollover)
{
    RateMonitor monitor(100);
    EXPECT_FALSE(monitor.hasSample());
    // First window: 3 hits of 4.
    monitor.record(0, true);
    monitor.record(10, true);
    monitor.record(20, true);
    monitor.record(30, false);
    EXPECT_FALSE(monitor.hasSample());
    // Crossing into the next window completes the first.
    monitor.record(150, true);
    EXPECT_TRUE(monitor.hasSample());
    EXPECT_DOUBLE_EQ(monitor.lastRate(), 0.75);
}

TEST(RateMonitor, HistoryAccumulates)
{
    RateMonitor monitor(100);
    for (Cycles t = 0; t < 1000; t += 10)
        monitor.record(t, (t / 100) % 2 == 0);
    EXPECT_GE(monitor.history().size(), 8u);
    // Windows alternate all-hit / all-miss.
    EXPECT_DOUBLE_EQ(monitor.history()[0], 1.0);
    EXPECT_DOUBLE_EQ(monitor.history()[1], 0.0);
}

TEST(GeoMean, Basics)
{
    EXPECT_DOUBLE_EQ(geoMean({}), 0.0);
    EXPECT_DOUBLE_EQ(geoMean({2.0}), 2.0);
    EXPECT_NEAR(geoMean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geoMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

} // namespace necpt
