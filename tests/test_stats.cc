/** @file Unit tests for counters, histograms and rate monitors. */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace necpt
{

TEST(Counter, IncAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    ++c;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(HitMiss, Rate)
{
    HitMiss hm;
    EXPECT_DOUBLE_EQ(hm.rate(), 0.0);
    hm.hit(3);
    hm.miss();
    EXPECT_EQ(hm.accesses(), 4u);
    EXPECT_DOUBLE_EQ(hm.rate(), 0.75);
    hm.reset();
    EXPECT_EQ(hm.accesses(), 0u);
}

TEST(Histogram, BinningAndOverflow)
{
    Histogram h(10, 5); // bins [0,10) ... [40,50) + overflow
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(49);
    h.sample(1000);
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(4), 1u);
    EXPECT_EQ(h.count(5), 1u); // overflow bin
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.max(), 1000u);
}

TEST(Histogram, MeanAndPercentile)
{
    Histogram h(10, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(static_cast<std::uint64_t>(i * 10));
    EXPECT_NEAR(h.mean(), 495.0, 1.0);
    EXPECT_NEAR(static_cast<double>(h.percentile(50)), 495.0, 10.0);
    EXPECT_NEAR(static_cast<double>(h.percentile(95)), 945.0, 10.0);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
}

TEST(Histogram, Probability)
{
    Histogram h(10, 4);
    h.sample(5);
    h.sample(5);
    h.sample(25);
    h.sample(35);
    EXPECT_DOUBLE_EQ(h.probability(0), 0.5);
    EXPECT_DOUBLE_EQ(h.probability(2), 0.25);
}

TEST(RateMonitor, WindowRollover)
{
    RateMonitor monitor(100);
    EXPECT_FALSE(monitor.hasSample());
    // First window: 3 hits of 4.
    monitor.record(0, true);
    monitor.record(10, true);
    monitor.record(20, true);
    monitor.record(30, false);
    EXPECT_FALSE(monitor.hasSample());
    // Crossing into the next window completes the first.
    monitor.record(150, true);
    EXPECT_TRUE(monitor.hasSample());
    EXPECT_DOUBLE_EQ(monitor.lastRate(), 0.75);
}

TEST(RateMonitor, FirstWindowAnchorsToIntervalBoundary)
{
    // Windows must fall on [0,I), [I,2I), ... regardless of when the
    // first event arrives, so Figure 12-style histories line up
    // across configurations whose traffic starts at different cycles.
    RateMonitor monitor(100);
    monitor.record(250, true);
    monitor.record(260, true);
    monitor.record(299, false);
    EXPECT_FALSE(monitor.hasSample());
    // Cycle 300 starts the next window: [200,300) completes at 2/3.
    monitor.record(300, false);
    ASSERT_TRUE(monitor.hasSample());
    EXPECT_DOUBLE_EQ(monitor.lastRate(), 2.0 / 3.0);
    // A long gap: empty windows contribute no history entries.
    monitor.record(1050, true);
    EXPECT_EQ(monitor.history().size(), 2u);
    EXPECT_DOUBLE_EQ(monitor.history()[1], 0.0);
}

TEST(Histogram, PercentileOverflowBinReportsMax)
{
    // When the target percentile lands in the overflow bin, the
    // mid-bin interpolation is meaningless; the maximum is reported.
    Histogram h(10, 5); // bins up to 50, then overflow
    h.sample(1000);
    h.sample(2000);
    EXPECT_EQ(h.percentile(50), 2000u);
    EXPECT_EQ(h.percentile(100), 2000u);
    // Mixed case: the median sits in a real bin, the tail overflows.
    Histogram m(10, 5);
    m.sample(5);
    m.sample(15);
    m.sample(25);
    m.sample(9999);
    EXPECT_EQ(m.percentile(50), 20u);
    EXPECT_EQ(m.percentile(99), 9999u);
}

TEST(Histogram, PercentileInterpolatesWithinBins)
{
    // One bin, uniform mass: the p-th percentile sits exactly p% of
    // the way through the bin (target = p/100 * total samples, and
    // value = bin_base + target/count * width).
    Histogram h(100, 4); // bins [0,100) ... [300,400) + overflow
    for (int i = 0; i < 100; ++i)
        h.sample(50); // all mass in bin 0
    EXPECT_EQ(h.percentile(50), 50u);
    EXPECT_EQ(h.percentile(95), 95u);
    EXPECT_EQ(h.percentile(99), 99u);
    EXPECT_EQ(h.percentile(100), 100u);
}

TEST(Histogram, PercentileSkipsEmptyBins)
{
    // Mass split across bins 0 and 3; bins 1-2 are empty and must not
    // absorb the interpolation target.
    Histogram h(100, 4);
    for (int i = 0; i < 50; ++i)
        h.sample(10);
    for (int i = 0; i < 50; ++i)
        h.sample(310);
    // p50: target = 50, bin 0 holds exactly 50 -> right edge of bin 0.
    EXPECT_EQ(h.percentile(50), 100u);
    // p75: target = 75, 25 of bin 3's 50 samples -> halfway into it.
    EXPECT_EQ(h.percentile(75), 350u);
    EXPECT_EQ(h.percentile(100), 400u);
}

TEST(Histogram, PercentileSingleSample)
{
    Histogram h(10, 5);
    h.sample(7);
    // target = p/100 * 1 lands in bin 0 for every p; the value
    // interpolates from the bin base toward its right edge.
    EXPECT_EQ(h.percentile(50), 5u);
    EXPECT_EQ(h.percentile(100), 10u);
}

TEST(RateMonitor, HistoryAccumulates)
{
    RateMonitor monitor(100);
    for (Cycles t = 0; t < 1000; t += 10)
        monitor.record(t, (t / 100) % 2 == 0);
    EXPECT_GE(monitor.history().size(), 8u);
    // Windows alternate all-hit / all-miss.
    EXPECT_DOUBLE_EQ(monitor.history()[0], 1.0);
    EXPECT_DOUBLE_EQ(monitor.history()[1], 0.0);
}

TEST(GeoMean, Basics)
{
    EXPECT_DOUBLE_EQ(geoMean({}), 0.0);
    EXPECT_DOUBLE_EQ(geoMean({2.0}), 2.0);
    EXPECT_NEAR(geoMean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geoMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

} // namespace necpt
