/** @file Unit tests for Cuckoo Walk Tables. */

#include <gtest/gtest.h>

#include "pt/cwt.hh"
#include "tests/test_util.hh"

namespace necpt
{

namespace
{
CuckooConfig
cwtConfig()
{
    CuckooConfig cfg;
    cfg.ways = 2;
    cfg.initial_slots = 128;
    cfg.slot_bytes = 16;
    return cfg;
}
} // namespace

TEST(Cwt, SectionGranularities)
{
    BumpAllocator alloc;
    CuckooWalkTable pte(alloc, PageSize::Page4K, cwtConfig());
    CuckooWalkTable pmd(alloc, PageSize::Page2M, cwtConfig());
    CuckooWalkTable pud(alloc, PageSize::Page1G, cwtConfig());
    EXPECT_EQ(pte.sectionShift(), 15); // 32KB: one PTE-ECPT block
    EXPECT_EQ(pmd.sectionShift(), 21); // 2MB
    EXPECT_EQ(pud.sectionShift(), 30); // 1GB
}

TEST(Cwt, PresentRoundTrip)
{
    BumpAllocator alloc;
    CuckooWalkTable cwt(alloc, PageSize::Page2M, cwtConfig());
    EXPECT_FALSE(cwt.query(0x4000'0000).has_value());
    cwt.setPresent(0x4000'0000, 2);
    const auto d = cwt.query(0x4000'0000);
    ASSERT_TRUE(d.has_value());
    EXPECT_TRUE(d->present);
    EXPECT_EQ(d->way, 2);
    EXPECT_FALSE(d->hasSmaller());
}

TEST(Cwt, SectionsIndependent)
{
    BumpAllocator alloc;
    CuckooWalkTable cwt(alloc, PageSize::Page2M, cwtConfig());
    const Addr base = 0x8000'0000;
    cwt.setPresent(base, 1);
    // The adjacent 2MB section is untouched but covered by the same
    // entry -> present=false descriptor, not nullopt.
    const auto other = cwt.query(base + (2ULL << 20));
    ASSERT_TRUE(other.has_value());
    EXPECT_FALSE(other->present);
    // A section in a different (untouched) chunk: no entry at all.
    EXPECT_FALSE(cwt.query(base + (1ULL << 36)).has_value());
}

TEST(Cwt, SmallerSizeBitsTracked)
{
    BumpAllocator alloc;
    CuckooWalkTable cwt(alloc, PageSize::Page1G, cwtConfig());
    cwt.setHasSmaller(0x0, PageSize::Page2M);
    auto d = cwt.query(0x0);
    ASSERT_TRUE(d.has_value());
    EXPECT_FALSE(d->present);
    EXPECT_TRUE(d->smaller_2m);
    EXPECT_FALSE(d->smaller_4k);
    // Uniformly-2MB regions stay distinguishable until a 4KB mapping
    // lands in the section.
    cwt.setHasSmaller(0x0, PageSize::Page4K);
    d = cwt.query(0x0);
    EXPECT_TRUE(d->smaller_2m);
    EXPECT_TRUE(d->smaller_4k);
    EXPECT_TRUE(d->hasSmaller());
}

TEST(Cwt, PresentExcludesSmaller)
{
    BumpAllocator alloc;
    CuckooWalkTable cwt(alloc, PageSize::Page2M, cwtConfig());
    cwt.setPresent(0x0, 1);
    const auto d = cwt.query(0x0);
    ASSERT_TRUE(d.has_value());
    EXPECT_TRUE(d->present);
    EXPECT_FALSE(d->hasSmaller());
}

TEST(Cwt, WayUpdateOverwrites)
{
    BumpAllocator alloc;
    CuckooWalkTable cwt(alloc, PageSize::Page2M, cwtConfig());
    cwt.setPresent(0x0, 0);
    cwt.setPresent(0x0, 2);
    EXPECT_EQ(cwt.query(0x0)->way, 2);
}

TEST(Cwt, EntryKeyCoversAllSections)
{
    BumpAllocator alloc;
    CuckooWalkTable cwt(alloc, PageSize::Page2M, cwtConfig());
    const Addr base = 0x4'0000'0000; // entry-aligned (256MB for PMD)
    const int n = CuckooWalkTable::sections_per_entry;
    for (int s = 0; s < n; ++s)
        EXPECT_EQ(cwt.entryKey(base + (static_cast<Addr>(s) << 21)),
                  cwt.entryKey(base));
    EXPECT_NE(cwt.entryKey(base + (static_cast<Addr>(n) << 21)),
              cwt.entryKey(base));
}

TEST(Cwt, AllSectionsIndependentlyStored)
{
    BumpAllocator alloc;
    CuckooWalkTable cwt(alloc, PageSize::Page2M, cwtConfig());
    const Addr base = 0x8'0000'0000;
    const int n = CuckooWalkTable::sections_per_entry;
    for (int s = 0; s < n; ++s)
        cwt.setPresent(base + (static_cast<Addr>(s) << 21), s % 4);
    for (int s = 0; s < n; ++s) {
        const auto d = cwt.query(base + (static_cast<Addr>(s) << 21));
        ASSERT_TRUE(d.has_value());
        EXPECT_TRUE(d->present);
        EXPECT_EQ(d->way, s % 4);
    }
}

TEST(Cwt, EntryProbeAddrsFetchDescriptorLine)
{
    BumpAllocator alloc(0x100000);
    CuckooWalkTable cwt(alloc, PageSize::Page2M, cwtConfig());
    cwt.setPresent(0x0, 0);
    std::vector<Addr> probes;
    cwt.entryProbeAddrs(0x0, probes);
    ASSERT_EQ(probes.size(), 1u); // one descriptor line per refill
    EXPECT_GE(probes[0], 0x100000u);
    // Sections 128 nibbles apart land on different lines.
    std::vector<Addr> far;
    cwt.setPresent(300ULL << 21, 1);
    cwt.entryProbeAddrs(300ULL << 21, far);
    ASSERT_EQ(far.size(), 1u);
    EXPECT_NE(far[0], probes[0]);
}

TEST(Cwt, NeighboringSectionsPackIntoNibbles)
{
    BumpAllocator alloc;
    CuckooWalkTable cwt(alloc, PageSize::Page2M, cwtConfig());
    cwt.setPresent(0x0, 3);
    cwt.setHasSmaller(0x20'0000, PageSize::Page4K);
    const auto d0 = cwt.query(0x0);
    ASSERT_TRUE(d0.has_value());
    EXPECT_TRUE(d0->present);
    EXPECT_EQ(d0->way, 3);
    const auto d1 = cwt.query(0x20'0000);
    ASSERT_TRUE(d1.has_value());
    EXPECT_TRUE(d1->smaller_4k);
    EXPECT_FALSE(d1->present);
    // A far section in the same chunk decodes independently.
    cwt.setPresent(40ULL << 21, 2);
    const auto d40 = cwt.query(40ULL << 21);
    EXPECT_TRUE(d40->present);
    EXPECT_EQ(d40->way, 2);
}

TEST(Cwt, StructureBytesGrowPerChunk)
{
    BumpAllocator alloc;
    CuckooWalkTable cwt(alloc, PageSize::Page4K, cwtConfig());
    EXPECT_EQ(cwt.structureBytes(), 0u);
    cwt.setPresent(0x0, 0);
    EXPECT_EQ(cwt.structureBytes(), CuckooWalkTable::chunk_bytes);
    // Same chunk: no growth.
    cwt.setPresent(0x8000, 1);
    EXPECT_EQ(cwt.structureBytes(), CuckooWalkTable::chunk_bytes);
    // A section in another chunk materializes a new one.
    cwt.setPresent(1ULL << 40, 2);
    EXPECT_EQ(cwt.structureBytes(), 2 * CuckooWalkTable::chunk_bytes);
}

} // namespace necpt
