/** @file Unit tests for the deterministic RNG (common/rng.hh). */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"

namespace necpt
{

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_EQ(same, 0);
}

TEST(Rng, BelowInRange)
{
    Rng rng(99);
    for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng rng(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.range(10, 13);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 13u);
        saw_lo |= (v == 10);
        saw_hi |= (v == 13);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(17);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(31);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ZipfSkewsLow)
{
    Rng rng(77);
    constexpr std::uint64_t n = 100000;
    std::uint64_t low = 0, total = 20000;
    for (std::uint64_t i = 0; i < total; ++i) {
        const auto rank = rng.zipf(n, 0.9);
        EXPECT_LT(rank, n);
        if (rank < n / 100)
            ++low;
    }
    // With skew 0.9, far more than 1% of draws land in the lowest 1%.
    EXPECT_GT(low, total / 10);
}

TEST(Splitmix, KnownSequenceStable)
{
    std::uint64_t s1 = 42, s2 = 42;
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
    EXPECT_EQ(s1, s2);
    const auto a = splitmix64(s1);
    const auto b = splitmix64(s2);
    EXPECT_EQ(a, b);
    // State advances: successive outputs differ.
    EXPECT_NE(a, splitmix64(s1));
}

} // namespace necpt
