/** @file Unit tests for the CRC hash family (common/hash.hh). */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/hash.hh"

namespace necpt
{

TEST(Crc64, DeterministicAndSpread)
{
    EXPECT_EQ(crc64(0x1234), crc64(0x1234));
    EXPECT_NE(crc64(0x1234), crc64(0x1235));
    // Single-bit input changes flip many output bits (avalanche-ish).
    int differing = std::popcount(crc64(0x1000) ^ crc64(0x1001));
    EXPECT_GT(differing, 16);
}

TEST(HashFunction, SeedIndependence)
{
    HashFunction f1(1), f2(2);
    int collisions = 0;
    for (std::uint64_t k = 0; k < 4096; ++k)
        if ((f1(k) & 0xFFF) == (f2(k) & 0xFFF))
            ++collisions;
    // Two independent functions should collide on a 12-bit reduction
    // at roughly 1/4096 per key; allow generous slack.
    EXPECT_LT(collisions, 32);
}

TEST(HashFunction, Uniformity)
{
    HashFunction f(42);
    constexpr int buckets = 64;
    std::vector<int> histogram(buckets, 0);
    constexpr int keys = 64 * 1000;
    for (std::uint64_t k = 0; k < keys; ++k)
        ++histogram[f(k) % buckets];
    for (int count : histogram) {
        EXPECT_GT(count, 700);
        EXPECT_LT(count, 1300);
    }
}

TEST(HashFamily, DistinctMembers)
{
    HashFamily family(0xFEED, 3);
    std::set<std::uint64_t> outputs;
    for (int s = 0; s < num_page_sizes; ++s)
        for (int w = 0; w < 3; ++w)
            outputs.insert(family.way(all_page_sizes[s], w)(0xCAFE));
    // All nine members should hash the same key differently.
    EXPECT_EQ(outputs.size(), 9u);
}

TEST(HashFamily, ReproducibleAcrossInstances)
{
    HashFamily a(7, 3), b(7, 3);
    for (std::uint64_t k = 0; k < 100; ++k)
        EXPECT_EQ(a.way(PageSize::Page4K, 1)(k),
                  b.way(PageSize::Page4K, 1)(k));
}

TEST(HashFunction, LatencyConstant)
{
    EXPECT_EQ(HashFunction::latency, 2u);
}

} // namespace necpt
