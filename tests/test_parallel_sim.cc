/**
 * @file
 * The determinism contract of the thread-sharded timing core.
 *
 * SimParams::sim_threads shards wall-clock work (lookahead-ring
 * refills during epoch rendezvous) across host threads while the
 * coordinator thread runs every event — so any thread count must be
 * bit-identical to the single-threaded schedule. These tests pin
 * that contract at full strength: the complete scalar metric
 * snapshot, the canonical walk trace, and the sampled timeseries are
 * compared byte-for-byte across sim-threads {1, 2, 8} at mlp {1, 4},
 * with translation churn armed and fault injection forcing resize
 * windows, kick exhaustion, memory spikes, and dropped shootdown
 * acks. If rendezvous timing could perturb even one event, these
 * comparisons — not just a cycle count — would catch it.
 *
 * Alongside the end-to-end pins, unit tests cover the canonical
 * (cycle, priority, core, sequence) ordering key that makes the
 * K+1-way merge equivalent to the legacy single heap, and the
 * barrier's thread-count clamping.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "coherence/churn.hh"
#include "common/fault.hh"
#include "common/metrics.hh"
#include "common/trace_events.hh"
#include "sim/config.hh"
#include "sim/epoch.hh"
#include "sim/pump.hh"
#include "sim/simulator.hh"
#include "sim/timeseries.hh"

namespace necpt
{

namespace
{

/** Everything observable from one run, rendered to comparable form. */
struct RunOutputs
{
    std::string snapshot;   //!< result fields + full scalar registry
    std::string trace;      //!< canonical Chrome trace JSON bytes
    std::vector<std::string> ts_names;
    std::vector<std::vector<double>> ts_rows;
};

RunOutputs
runOnce(int sim_threads, int mlp, bool coalesce = false)
{
    SimParams params;
    params.warmup_accesses = 1000;
    params.measure_accesses = 5000;
    params.cores = 4;
    params.max_outstanding_walks = mlp;
    params.sim_threads = sim_threads;
    params.walk_coalescing = coalesce;
    params.scale_denominator = 64;
    // Every deterministic perturbation source at once: churn rounds
    // land as domain events, faults stretch and divert walks.
    params.churn = parseChurnSpec(
        "migrate:5000:8,balloon:20000:16,protect:15000:4,batch:8");
    params.faults =
        parseFaultSpec("kicks:0.02,resize:0.01,mem:0.01:400,"
                       "shootdown:0.05");

    TraceBuffer tracer(TraceBuffer::default_capacity, 16);
    params.tracer = &tracer;
    TimeSeriesBuffer series(2000);
    params.timeseries = &series;

    Simulator sim(makeConfig(ConfigId::NestedEcpt), params);
    const SimResult result = sim.run("GUPS");

    MetricsRegistry reg;
    sim.exportMetrics(reg);

    RunOutputs out;
    std::ostringstream snap;
    char value[64];
    auto emit = [&](const std::string &name, double v) {
        std::snprintf(value, sizeof value, "%.17g", v);
        snap << name << " " << value << "\n";
    };
    emit("result.cycles", static_cast<double>(result.cycles));
    emit("result.instructions",
         static_cast<double>(result.instructions));
    emit("result.walks", static_cast<double>(result.walks));
    emit("result.mmu_requests",
         static_cast<double>(result.mmu_requests));
    emit("result.mmu_busy_cycles",
         static_cast<double>(result.mmu_busy_cycles));
    for (const auto &[name, v] : reg.scalarSnapshot())
        emit(name, v);
    out.snapshot = snap.str();

    // ctest -j runs each test in its own process but a shared cwd;
    // the pid keeps concurrent instances from clobbering each other's
    // scratch file (coalesced and plain mlp=4 traces differ).
    const std::string trace_path = "parallel_sim_trace_st"
        + std::to_string(sim_threads) + "_mlp" + std::to_string(mlp)
        + (coalesce ? "_co" : "") + "_p" + std::to_string(::getpid())
        + ".json";
    EXPECT_TRUE(writeChromeTrace(trace_path, tracer, "sim",
                                 /*canonical=*/true));
    std::ifstream in(trace_path, std::ios::binary);
    std::stringstream bytes;
    bytes << in.rdbuf();
    out.trace = bytes.str();
    std::remove(trace_path.c_str());

    out.ts_names = series.series();
    out.ts_rows = series.samples();
    return out;
}

/** sim-threads=1 reference outputs, computed once per mlp. */
const RunOutputs &
reference(int mlp)
{
    static const RunOutputs serialized = runOnce(1, 1);
    static const RunOutputs overlapped = runOnce(1, 4);
    return mlp == 1 ? serialized : overlapped;
}

/** sim-threads=1 reference with walk coalescing on (mlp=4). */
const RunOutputs &
coalescedReference()
{
    static const RunOutputs coalesced = runOnce(1, 4, true);
    return coalesced;
}

void
expectIdentical(const RunOutputs &ref, const RunOutputs &got,
                int sim_threads, int mlp)
{
    SCOPED_TRACE("sim_threads=" + std::to_string(sim_threads)
                 + " mlp=" + std::to_string(mlp));
    EXPECT_EQ(ref.snapshot, got.snapshot)
        << "scalar snapshot diverged from sim-threads=1";
    EXPECT_EQ(ref.trace, got.trace)
        << "canonical walk trace diverged from sim-threads=1";
    EXPECT_EQ(ref.ts_names, got.ts_names);
    EXPECT_EQ(ref.ts_rows, got.ts_rows)
        << "timeseries samples diverged from sim-threads=1";
}

class ParallelSimDeterminism : public ::testing::TestWithParam<int>
{};

} // namespace

// mlp=1: serialized walks — the legacy schedule, now flowing through
// the per-core pumps and the shared domain. mlp=4: overlapped walk
// machines plus per-transaction completion events. Both must be
// byte-identical at any host thread count (8 exceeds the 4 simulated
// cores, so this also exercises the worker clamp in vivo).
TEST_P(ParallelSimDeterminism, SerializedWalksBitIdentical)
{
    expectIdentical(reference(1), runOnce(GetParam(), 1), GetParam(), 1);
}

TEST_P(ParallelSimDeterminism, OverlappedWalksBitIdentical)
{
    expectIdentical(reference(4), runOnce(GetParam(), 4), GetParam(), 4);
}

// Walk coalescing adds the walk-MSHR (park/fan-out on the coordinator)
// on top of overlapped walks, and at sim-threads > 1 the epoch workers
// additionally precompute speculative walk plans that the machines
// consume stamp-checked — both must leave every byte alone. Churn and
// shootdown faults stay armed, so plans and coalescer entries are
// invalidated mid-flight, exercising every fallback path.
TEST_P(ParallelSimDeterminism, CoalescedWalksBitIdentical)
{
    expectIdentical(coalescedReference(), runOnce(GetParam(), 4, true),
                    GetParam(), 4);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelSimDeterminism,
                         ::testing::Values(2, 8));

// The coalescer's staleness contract: a waiter parked on a primary
// whose walk raced an invalidation must retire the *replayed*
// translation, never the stale one. The fan-out happens after the
// primary's replay (and NECPT_ASSERT(tr.valid) guards every retire),
// so the test's job is to prove the race actually occurs — merges and
// replays non-zero in one run — and that the run is still
// bit-identical across thread counts. Churn here is far denser than
// the determinism pins above (a full migrate+protect batch every 100
// cycles): the coherence directory's 256-record ring overflows past
// every in-flight walk's epoch, forcing its conservative
// invalidated-since answer and with it the replay path on walks whose
// waiters are parked.
TEST(WalkCoalescing, WaitersAndReplaysCooccurUnderChurn)
{
    auto heavyChurnRun = [](int sim_threads) {
        SimParams params;
        params.warmup_accesses = 500;
        params.measure_accesses = 2000;
        params.cores = 2;
        params.max_outstanding_walks = 4;
        params.sim_threads = sim_threads;
        params.walk_coalescing = true;
        params.scale_denominator = 64;
        params.churn =
            parseChurnSpec("migrate:100:64,protect:100:64,batch:64");
        params.faults = parseFaultSpec("shootdown:0.05");

        Simulator sim(makeConfig(ConfigId::NestedEcpt), params);
        sim.run("GUPS");
        MetricsRegistry reg;
        sim.exportMetrics(reg);
        return reg.scalarSnapshot();
    };

    const auto serial = heavyChurnRun(1);
    const auto sharded = heavyChurnRun(8);
    EXPECT_EQ(serial, sharded)
        << "replay + coalesce + spec-plan interplay diverged across "
           "sim-threads";

    double coalesced = 0.0, replays = 0.0;
    for (const auto &[name, value] : serial) {
        if (name.find(".coalesced") != std::string::npos)
            coalesced += value;
        if (name.find("walk_replays") != std::string::npos)
            replays += value;
    }
    EXPECT_GT(coalesced, 0.0)
        << "no walk ever merged: the workload no longer exercises "
           "the coalescer";
    EXPECT_GT(replays, 0.0)
        << "no walk ever raced an invalidation: the staleness path "
           "is untested";
}

// ---------------------------------------------------------------------
// Canonical ordering key: the total order every queue agrees on.
// ---------------------------------------------------------------------

TEST(CanonicalKey, OrdersByCycleThenPrioThenCoreThenSeq)
{
    const CanonicalKey base{100.0, 0, 1, 50};

    // Cycle dominates everything.
    EXPECT_TRUE((CanonicalKey{99.0, 5, 7, 999}).before(base));
    EXPECT_FALSE((CanonicalKey{101.0, -2, 0, 0}).before(base));

    // Same cycle: lower priority first (domain events at -2/-1 land
    // before any core's step/retire at prio == core >= 0).
    EXPECT_TRUE((CanonicalKey{100.0, -2, 3, 999}).before(base));
    EXPECT_TRUE((CanonicalKey{100.0, -1, 3, 999}).before(base));
    EXPECT_FALSE((CanonicalKey{100.0, 1, 1, 50}).before(base));

    // Same cycle and priority: lower core index first.
    EXPECT_TRUE((CanonicalKey{100.0, 0, 0, 999}).before(base));
    EXPECT_FALSE((CanonicalKey{100.0, 0, 2, 0}).before(base));

    // Full tie on (cycle, prio, core): scheduling sequence decides —
    // FIFO among equals, exactly like the legacy single heap.
    EXPECT_TRUE((CanonicalKey{100.0, 0, 1, 49}).before(base));
    EXPECT_FALSE((CanonicalKey{100.0, 0, 1, 50}).before(base));
    EXPECT_FALSE((CanonicalKey{100.0, 0, 1, 51}).before(base));
}

TEST(CanonicalKey, IrreflexiveAndAsymmetric)
{
    const CanonicalKey a{10.0, -1, 0, 3};
    const CanonicalKey b{10.0, -1, 0, 4};
    EXPECT_FALSE(a.before(a));
    EXPECT_TRUE(a.before(b));
    EXPECT_FALSE(b.before(a));
}

// ---------------------------------------------------------------------
// EpochBarrier basics: clamping and idle behavior.
// ---------------------------------------------------------------------

namespace
{

struct NullProbe final : ResidencyProbe
{
    std::uint64_t stamp() const override { return 0; }
    bool resident(Addr) const override { return true; }
};

} // namespace

TEST(EpochBarrier, ClampsWorkerCountToPumps)
{
    SchedContext ctx;
    std::vector<CorePump> pumps;
    pumps.reserve(4);
    for (int c = 0; c < 4; ++c)
        pumps.emplace_back(ctx, c);
    const NullProbe probe;

    // More host threads than simulated cores: clamp to the pump count.
    EpochBarrier wide(pumps, probe, 8, 56.0);
    EXPECT_EQ(wide.threads(), 4);

    // Degenerate requests clamp up to the serial coordinator.
    EpochBarrier narrow(pumps, probe, 0, 56.0);
    EXPECT_EQ(narrow.threads(), 1);

    EXPECT_DOUBLE_EQ(wide.epochLength(), 56.0);
}

TEST(EpochBarrier, NoRendezvousWithoutBoundWorkloads)
{
    SchedContext ctx;
    std::vector<CorePump> pumps;
    pumps.reserve(2);
    for (int c = 0; c < 2; ++c)
        pumps.emplace_back(ctx, c);
    const NullProbe probe;

    EpochBarrier barrier(pumps, probe, 2, 56.0);
    barrier.prime();
    // No pump has a workload bound, so boundaries are pure epoch-grid
    // arithmetic: crossing many epochs must trigger zero rendezvous.
    for (double cycle = 0.0; cycle < 10'000.0; cycle += 100.0)
        barrier.maybeRendezvous(cycle);
    EXPECT_EQ(barrier.rendezvousCount(), 0u);
}

} // namespace necpt
