/**
 * @file
 * Unit tests for the translation-coherence subsystem: churn-spec
 * parsing, the shootdown batcher and directory, partial invalidation
 * of the TLB hierarchy and POM-TLB (LRU ranks of survivors must not
 * move), controller round planning under both protocols, churn-source
 * determinism, and the functional-mutation property that cuckoo
 * delete + CWT downgrade round-trips leave the system invariants
 * clean across forced resizes.
 */

#include <gtest/gtest.h>

#include <vector>

#include "coherence/churn.hh"
#include "coherence/controller.hh"
#include "coherence/shootdown.hh"
#include "common/error.hh"
#include "common/rng.hh"
#include "exec/engine.hh"
#include "mmu/pom_tlb.hh"
#include "mmu/tlb.hh"
#include "os/system.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"
#include "tests/test_util.hh"
#include "workloads/churn_sources.hh"

namespace necpt
{

namespace
{

/** One-set L1/L2 4KB geometry so eviction order is observable. */
TlbConfig
tinyTlbConfig()
{
    TlbConfig cfg;
    cfg.l1[0] = {4, 4};
    cfg.l2[0] = {4, 4};
    return cfg;
}

Translation
page4k(Addr pa)
{
    return {pa, PageSize::Page4K, true};
}

/** ECPT-everywhere system small enough to force cuckoo resizes. */
SystemConfig
smallEcptSystem(bool thp)
{
    SystemConfig cfg;
    cfg.guest_kind = PtKind::Ecpt;
    cfg.host_kind = PtKind::Ecpt;
    cfg.guest_thp = thp;
    cfg.host_thp = thp;
    cfg.guest_phys_bytes = 2ULL << 30;
    cfg.host_phys_bytes = 3ULL << 30;
    cfg.guest_ecpt.initial_slots = {1024, 1024, 512};
    cfg.guest_ecpt.cwt_initial_slots = {256, 256, 128};
    cfg.host_ecpt = cfg.guest_ecpt;
    return cfg;
}

} // namespace

// -------------------------------------------------------------- ChurnSpec

TEST(ChurnSpec, DefaultIsDisabled)
{
    const ChurnSpec spec;
    EXPECT_FALSE(spec.enabled());
    EXPECT_EQ(churnSpecToString(spec), "none");
}

TEST(ChurnSpec, ParsesClausesAndRoundTrips)
{
    const ChurnSpec spec =
        parseChurnSpec("migrate:20000:4,balloon:50000,mode:hw,batch:16");
    EXPECT_TRUE(spec.enabled());
    EXPECT_EQ(spec.migrate_period, 20000u);
    EXPECT_EQ(spec.migrate_pages, 4);
    EXPECT_EQ(spec.balloon_period, 50000u);
    EXPECT_EQ(spec.thp_period, 0u);
    EXPECT_EQ(spec.mode, CoherenceMode::HwCoherence);
    EXPECT_EQ(spec.batch, 16);

    // toString emits the full grammar; reparsing it is a fixed point.
    const std::string text = churnSpecToString(spec);
    EXPECT_EQ(churnSpecToString(parseChurnSpec(text)), text);
}

TEST(ChurnSpec, AllArmsEverySource)
{
    const ChurnSpec spec = parseChurnSpec("all");
    EXPECT_GT(spec.migrate_period, 0u);
    EXPECT_GT(spec.balloon_period, 0u);
    EXPECT_GT(spec.thp_period, 0u);
    EXPECT_GT(spec.protect_period, 0u);
    EXPECT_EQ(spec.mode, CoherenceMode::SwIpi);
}

TEST(ChurnSpec, RejectsMalformedSpecs)
{
    EXPECT_THROW(parseChurnSpec("bogus:1"), ConfigError);
    EXPECT_THROW(parseChurnSpec("migrate"), ConfigError);
    EXPECT_THROW(parseChurnSpec("migrate:abc"), ConfigError);
    EXPECT_THROW(parseChurnSpec("mode:fast"), ConfigError);
    EXPECT_THROW(parseChurnSpec("batch:0"), ConfigError);
    EXPECT_THROW(parseChurnSpec("all:5"), ConfigError);
    // A spec that arms no source is a configuration error, not a
    // silent no-op.
    EXPECT_THROW(parseChurnSpec("mode:hw,batch:4"), ConfigError);
}

// ------------------------------------------------------ ShootdownBatcher

TEST(ShootdownBatcher, PopsOldestFirstUpToBound)
{
    ShootdownBatcher batcher;
    for (int i = 0; i < 5; ++i)
        batcher.push({static_cast<Addr>(i) << 12, 0x1000, invalid_addr,
                      0, InvalKind::Unmap});
    EXPECT_EQ(batcher.size(), 5u);

    const auto first = batcher.pop(3);
    ASSERT_EQ(first.size(), 3u);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(first[i].gva, static_cast<Addr>(i) << 12);
    EXPECT_EQ(batcher.size(), 2u);

    const auto rest = batcher.pop(10);
    ASSERT_EQ(rest.size(), 2u);
    EXPECT_EQ(rest[0].gva, 3u << 12);
    EXPECT_TRUE(batcher.empty());
}

// --------------------------------------------------- CoherenceDirectory

TEST(CoherenceDirectory, EpochAdvancesPerRecord)
{
    CoherenceDirectory dir(8);
    EXPECT_EQ(dir.epoch(), 0u);
    dir.record({0x10000, 0x1000, invalid_addr, 0, InvalKind::Remap});
    dir.record({0x20000, 0x1000, invalid_addr, 0, InvalKind::Remap});
    EXPECT_EQ(dir.epoch(), 2u);
}

TEST(CoherenceDirectory, OverlapQueriesAreExact)
{
    CoherenceDirectory dir(8);
    dir.record({0x10000, 0x2000, invalid_addr, 0, InvalKind::Unmap});

    // Any VA inside the invalidated range observed from before the
    // record answers true; outside it answers false.
    EXPECT_TRUE(dir.invalidatedSince(0x10000, 0));
    EXPECT_TRUE(dir.invalidatedSince(0x11fff, 0));
    EXPECT_FALSE(dir.invalidatedSince(0x12000, 0));
    EXPECT_FALSE(dir.invalidatedSince(0x0f000, 0));

    // A walk that started after the record is not invalidated.
    EXPECT_FALSE(dir.invalidatedSince(0x10000, dir.epoch()));
}

TEST(CoherenceDirectory, AnswersTrueConservativelyPastTheRing)
{
    CoherenceDirectory dir(2);
    for (int i = 0; i < 4; ++i)
        dir.record({static_cast<Addr>(0x100000 + i * 0x1000), 0x1000,
                    invalid_addr, 0, InvalKind::Remap});
    // Epochs 1 and 2 were evicted from the ring: a query reaching back
    // that far must answer true even for a non-overlapping VA (a
    // spurious replay is correct; a missed one is not).
    EXPECT_TRUE(dir.invalidatedSince(0xdead000, 0));
    // Queries the ring still covers stay exact.
    EXPECT_FALSE(dir.invalidatedSince(0xdead000, 2));
    EXPECT_TRUE(dir.invalidatedSince(0x103000, 2));
}

// ---------------------------------------------- TLB partial invalidation

TEST(TlbCoherence, InvalidatePageDropsBothLevels)
{
    TlbHierarchy tlb(tinyTlbConfig());
    tlb.install(0x1000, page4k(0xA000));
    EXPECT_TRUE(tlb.holds(0x1000));
    // One entry per level dies; the rest of the hierarchy is untouched.
    EXPECT_EQ(tlb.invalidatePage(0x1234), 2u);
    EXPECT_FALSE(tlb.holds(0x1000));
    EXPECT_EQ(tlb.invalidatePage(0x1000), 0u);
}

TEST(TlbCoherence, PartialInvalidationPreservesSurvivorLruRanks)
{
    // One 4-way set in both levels: install order A,B,C,D makes A the
    // LRU victim. Killing B must not touch the survivors' ranks, so
    // the next two installs first reuse B's slot, then evict A —
    // never C or D.
    TlbHierarchy tlb(tinyTlbConfig());
    const Addr a = 0x1000, b = 0x2000, c = 0x3000, d = 0x4000;
    const Addr e = 0x5000, f = 0x6000;
    tlb.install(a, page4k(0xA000));
    tlb.install(b, page4k(0xB000));
    tlb.install(c, page4k(0xC000));
    tlb.install(d, page4k(0xD000));

    EXPECT_EQ(tlb.invalidatePage(b), 2u);
    tlb.install(e, page4k(0xE000)); // fills B's hole
    tlb.install(f, page4k(0xF000)); // evicts A, the surviving LRU

    EXPECT_FALSE(tlb.lookup(a).hit);
    EXPECT_TRUE(tlb.lookup(c).hit);
    EXPECT_TRUE(tlb.lookup(d).hit);
    EXPECT_TRUE(tlb.lookup(e).hit);
    EXPECT_TRUE(tlb.lookup(f).hit);
}

TEST(TlbCoherence, InvalidateRangeAndAsidAreSelective)
{
    TlbHierarchy tlb(tinyTlbConfig());
    tlb.setAsid(1);
    tlb.install(0x1000, page4k(0xA000));
    tlb.install(0x2000, page4k(0xB000));
    tlb.setAsid(2);
    tlb.install(0x3000, page4k(0xC000));

    // [0x1000, 0x3000) covers the first two pages only.
    EXPECT_EQ(tlb.invalidateRange(0x1000, 0x2000), 4u);
    EXPECT_FALSE(tlb.holds(0x1000));
    EXPECT_TRUE(tlb.holds(0x3000));

    tlb.setAsid(1);
    tlb.install(0x4000, page4k(0xD000));
    EXPECT_EQ(tlb.invalidateAsid(1), 2u);
    EXPECT_FALSE(tlb.holds(0x4000));
    EXPECT_TRUE(tlb.holds(0x3000)); // asid 2 survives
}

// ------------------------------------------ POM-TLB partial invalidation

TEST(PomTlbCoherence, PartialInvalidationPreservesSurvivorLruRanks)
{
    // Single-set POM-TLB, same contract as the per-core TLBs: killing
    // B leaves A the eviction victim, not C or D.
    BumpAllocator alloc;
    PomTlb pom(alloc, 1, 4);
    pom.install(0x1000, page4k(0xA000));
    pom.install(0x2000, page4k(0xB000));
    pom.install(0x3000, page4k(0xC000));
    pom.install(0x4000, page4k(0xD000));

    EXPECT_EQ(pom.invalidatePage(0x2000), 1u);
    pom.install(0x5000, page4k(0xE000)); // fills B's hole
    pom.install(0x6000, page4k(0xF000)); // evicts A

    EXPECT_FALSE(pom.lookup(0x1000).hit);
    EXPECT_TRUE(pom.lookup(0x3000).hit);
    EXPECT_TRUE(pom.lookup(0x4000).hit);
    EXPECT_TRUE(pom.lookup(0x5000).hit);
    EXPECT_TRUE(pom.lookup(0x6000).hit);
}

TEST(PomTlbCoherence, InvalidateRangeAndAsidAreSelective)
{
    BumpAllocator alloc;
    PomTlb pom(alloc, 64, 4);
    pom.install(0x1000, page4k(0xA000), /*asid=*/1);
    pom.install(0x2000, page4k(0xB000), 1);
    pom.install(0x9000, page4k(0xC000), 2);

    EXPECT_EQ(pom.invalidateRange(0x1000, 0x2000), 2u);
    EXPECT_FALSE(pom.lookup(0x1000).hit);
    EXPECT_TRUE(pom.lookup(0x9000).hit);

    pom.install(0x1000, page4k(0xA000), 1);
    EXPECT_EQ(pom.invalidateAsid(1), 1u);
    EXPECT_FALSE(pom.lookup(0x1000).hit);
    EXPECT_TRUE(pom.lookup(0x9000).hit);
}

// --------------------------------------------------- controller rounds

TEST(CoherenceController, EmptyBatcherStartsNoRound)
{
    CoherenceController ctrl(parseChurnSpec("migrate:1000"));
    EXPECT_FALSE(ctrl.pending());
    EXPECT_FALSE(ctrl.beginRound(0, 100).started);
}

TEST(CoherenceController, SwRoundStallsInitiatorUntilLastAck)
{
    CoherenceController ctrl(parseChurnSpec("migrate:1000,mode:sw"));
    std::vector<TlbHierarchy> tlbs;
    tlbs.reserve(4);
    for (int c = 0; c < 4; ++c) {
        tlbs.emplace_back(tinyTlbConfig());
        ctrl.attachCore(&tlbs.back(), nullptr);
    }
    tlbs[0].install(0x5000, page4k(0xA000));
    tlbs[1].install(0x5000, page4k(0xA000));

    ctrl.queueInvalidation(
        {0x5000, 0x1000, invalid_addr, 0, InvalKind::Remap});
    EXPECT_TRUE(ctrl.pending());

    const auto round = ctrl.beginRound(/*initiator=*/0, /*now=*/1000);
    ASSERT_TRUE(round.started);
    EXPECT_EQ(round.invalidations, 1);
    EXPECT_EQ(round.entries_dropped, 4u); // 2 cores x 2 TLB levels
    // Without fault injection every responder acks at the same time:
    // IPI delivery + handler + ack return.
    const Cycles ack = CoherenceController::sw_ipi_cycles
        + CoherenceController::sw_handler_cycles
        + CoherenceController::sw_ack_cycles;
    EXPECT_EQ(round.completion, 1000 + ack);
    EXPECT_EQ(round.initiator_stall, ack);
    EXPECT_EQ(ctrl.stats().acks, 3u); // every core but the initiator

    ctrl.finishRound(round);
    EXPECT_EQ(ctrl.stats().rounds, 1u);
    EXPECT_FALSE(tlbs[0].holds(0x5000));
    EXPECT_FALSE(tlbs[1].holds(0x5000));
}

TEST(CoherenceController, HwRoundCostScalesWithSharersAndNeverStalls)
{
    CoherenceController ctrl(parseChurnSpec("migrate:1000,mode:hw"));
    std::vector<TlbHierarchy> tlbs;
    tlbs.reserve(4);
    for (int c = 0; c < 4; ++c) {
        tlbs.emplace_back(tinyTlbConfig());
        ctrl.attachCore(&tlbs.back(), nullptr);
    }
    tlbs[1].install(0x5000, page4k(0xA000));
    tlbs[3].install(0x5000, page4k(0xA000));

    ctrl.queueInvalidation(
        {0x5000, 0x1000, invalid_addr, 0, InvalKind::Remap});
    const auto round = ctrl.beginRound(0, 500);
    ASSERT_TRUE(round.started);
    EXPECT_EQ(round.sharers, 2);
    EXPECT_EQ(round.completion,
              500 + CoherenceController::hw_base_cycles
                  + 2 * CoherenceController::hw_per_sharer_cycles);
    EXPECT_EQ(round.initiator_stall, 0u);
    EXPECT_EQ(ctrl.stats().acks, 0u); // no IPIs in hw mode
}

TEST(CoherenceController, RoundsHonorTheBatchBound)
{
    CoherenceController ctrl(parseChurnSpec("migrate:1000,batch:8"));
    for (int i = 0; i < 10; ++i)
        ctrl.queueInvalidation({static_cast<Addr>(i) << 12, 0x1000,
                                invalid_addr, 0, InvalKind::Unmap});
    const auto first = ctrl.beginRound(0, 0);
    EXPECT_EQ(first.invalidations, 8);
    EXPECT_TRUE(ctrl.pending());
    const auto second = ctrl.beginRound(0, 100);
    EXPECT_EQ(second.invalidations, 2);
    EXPECT_FALSE(ctrl.pending());
}

TEST(CoherenceController, ScrubsTheSharedPomTlb)
{
    CoherenceController ctrl(parseChurnSpec("migrate:1000"));
    BumpAllocator alloc;
    PomTlb pom(alloc, 64, 4);
    ctrl.attachPom(&pom);
    pom.install(0x7000, page4k(0xA000));

    ctrl.queueInvalidation(
        {0x7000, 0x1000, invalid_addr, 0, InvalKind::Unmap});
    const auto round = ctrl.beginRound(0, 0);
    ASSERT_TRUE(round.started);
    EXPECT_EQ(ctrl.stats().pom_entries, 1u);
    EXPECT_FALSE(pom.lookup(0x7000).hit);
}

// ------------------------------------------------------- churn sources

TEST(ChurnSources, BuiltInFixedOrderFromSpec)
{
    const auto sources = makeChurnSources(parseChurnSpec("all"), 42);
    ASSERT_EQ(sources.size(), 4u);
    EXPECT_EQ(sources[0]->name(), "migrate");
    EXPECT_EQ(sources[1]->name(), "balloon");
    EXPECT_EQ(sources[2]->name(), "thp");
    EXPECT_EQ(sources[3]->name(), "protect");

    const auto one =
        makeChurnSources(parseChurnSpec("balloon:9000:8"), 42);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0]->name(), "balloon");
    EXPECT_EQ(one[0]->period(), 9000u);
}

TEST(ChurnSources, FiringIsAPureFunctionOfSpecAndSeed)
{
    // Two identical systems churned by same-seed sources mutate
    // identically: the victim stream depends on nothing but (spec,
    // seed) and the system state.
    auto runReplica = [] {
        NestedSystem sys(smallEcptSystem(false));
        const Addr base = sys.mmapRegion(8ULL << 20);
        for (Addr va = base; va < base + (8ULL << 20); va += 4096)
            sys.ensureResident(va);
        const ChurnSpec spec =
            parseChurnSpec("migrate:1000:8,protect:1000:4");
        CoherenceController ctrl(spec);
        auto sources = makeChurnSources(spec, 1234);
        for (int pass = 0; pass < 8; ++pass)
            for (auto &src : sources)
                src->fire(sys, ctrl);
        return std::make_pair(ctrl.stats().invalidations,
                              ctrl.stats().migrate_pages);
    };
    const auto a = runReplica();
    const auto b = runReplica();
    EXPECT_GT(a.first, 0u);
    EXPECT_EQ(a, b);
}

// ------------------------------------- delete/downgrade property test

TEST(CoherenceProperty, ChurnRoundTripsKeepInvariantsAcrossResizes)
{
    // Cuckoo delete + CWT downgrade round-trips: resident pages far
    // beyond the initial table sizes force elastic resizes, then
    // repeated balloon-out (delete) / refault (reinsert) / migrate /
    // write-protect rounds must leave the CWTs exactly consistent with
    // the tables after every phase.
    NestedSystem sys(smallEcptSystem(false));
    const std::uint64_t bytes = 24ULL << 20; // 6144 pages >> 1024 slots
    const Addr base = sys.mmapRegion(bytes);
    const std::uint64_t npages = bytes >> 12;
    for (Addr va = base; va < base + bytes; va += 4096)
        sys.ensureResident(va);
    ASSERT_NO_THROW(sys.auditInvariants());

    Rng rng(7);
    for (int round = 0; round < 3; ++round) {
        std::vector<Addr> evicted;
        for (int i = 0; i < 512; ++i) {
            const auto info =
                sys.balloonOut(base + (rng.below(npages) << 12));
            if (info.ok)
                evicted.push_back(info.page);
        }
        EXPECT_FALSE(evicted.empty());
        ASSERT_NO_THROW(sys.auditInvariants()) << "after balloon out";

        for (const Addr va : evicted)
            sys.ensureResident(va);
        ASSERT_NO_THROW(sys.auditInvariants()) << "after refault";

        for (int i = 0; i < 128; ++i)
            sys.migratePage(base + (rng.below(npages) << 12));
        ASSERT_NO_THROW(sys.auditInvariants()) << "after migrate";

        for (int i = 0; i < 128; ++i)
            sys.writeProtectPage(base + (rng.below(npages) << 12));
        ASSERT_NO_THROW(sys.auditInvariants()) << "after protect";
    }

    // Everything ballooned back in still translates end to end.
    EXPECT_TRUE(sys.fullTranslate(base).valid);
    EXPECT_TRUE(sys.fullTranslate(base + bytes - 4096).valid);
}

TEST(CoherenceProperty, ThpSplitCollapseRoundTripsStayConsistent)
{
    // Demote (2MB -> 512 x 4KB) floods the 4KB cuckoo way past its
    // initial size (forced resize); promote collapses it back. The CWT
    // smaller-page bits must track both directions exactly.
    NestedSystem sys(smallEcptSystem(true));
    const std::uint64_t bytes = 16ULL << 20; // 8 x 2MB blocks
    const Addr base = sys.mmapRegion(bytes, /*thp_eligible=*/true);
    for (Addr va = base; va < base + bytes; va += pageBytes(PageSize::Page2M))
        sys.ensureResident(va);
    ASSERT_NO_THROW(sys.auditInvariants());

    for (int round = 0; round < 2; ++round) {
        for (Addr va = base; va < base + bytes;
             va += pageBytes(PageSize::Page2M)) {
            EXPECT_EQ(sys.thpDemote(va), 512);
            ASSERT_NO_THROW(sys.auditInvariants()) << "after demote";
        }
        for (Addr va = base; va < base + bytes;
             va += pageBytes(PageSize::Page2M)) {
            EXPECT_EQ(sys.thpPromote(va), 512);
            ASSERT_NO_THROW(sys.auditInvariants()) << "after promote";
        }
    }
    const Translation t = sys.guestTranslate(base);
    ASSERT_TRUE(t.valid);
    EXPECT_EQ(t.size, PageSize::Page2M);
}

// ------------------------------------------- churn sweep determinism

TEST(CoherenceSweep, ChurnGridIsWorkerCountInvariant)
{
    // The full churn pipeline (sources -> batcher -> rounds -> replay)
    // through the sweep engine: jobs=1 and jobs=8 must produce
    // bit-identical stats, including every shootdown counter.
    SimParams params;
    params.warmup_accesses = 2'000;
    params.measure_accesses = 8'000;
    params.scale_denominator = 2048;
    params.cores = 2;
    params.churn =
        parseChurnSpec("migrate:3000:4,balloon:9000:16,batch:8");

    std::vector<JobSpec> specs;
    for (const ConfigId id :
         {ConfigId::NestedRadix, ConfigId::NestedEcpt}) {
        const ExperimentConfig config = makeConfig(id);
        JobSpec spec;
        spec.key = "churn-mini/" + config.name + "/GUPS";
        spec.fn = [config, params](const JobContext &ctx) {
            SimParams p = params;
            p.seed = ctx.seed;
            JobOutput out;
            out.sim = runSim(config, p, "GUPS");
            out.metrics = out.sim.metrics;
            return out;
        };
        specs.push_back(std::move(spec));
    }

    SweepOptions serial_opts, wide_opts;
    serial_opts.jobs = 1;
    serial_opts.progress = nullptr;
    wide_opts.jobs = 8;
    wide_opts.progress = nullptr;
    const ResultSink serial = SweepEngine(serial_opts).run(specs);
    const ResultSink wide = SweepEngine(wide_opts).run(specs);

    ASSERT_EQ(serial.size(), 2u);
    for (std::size_t i = 0; i < serial.size(); ++i) {
        const SimResult &s = serial.records()[i].out.sim;
        const SimResult &w = wide.records()[i].out.sim;
        EXPECT_EQ(serial.records()[i].status, JobStatus::Ok);
        EXPECT_EQ(wide.records()[i].status, JobStatus::Ok);
        EXPECT_EQ(s.cycles, w.cycles) << s.config;
        EXPECT_EQ(s.walks, w.walks);
        EXPECT_EQ(s.mmu_busy_cycles, w.mmu_busy_cycles);
        EXPECT_EQ(s.metrics, w.metrics);
        EXPECT_GT(s.metrics.at("shootdown.rounds"), 0.0) << s.config;
    }
}

} // namespace necpt
