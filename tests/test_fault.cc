/** @file Tests for the fault-injection subsystem: the SimError
 *  taxonomy, FaultSpec parsing, FaultPlan determinism, every
 *  injection site (pools, cuckoo tables, traces), the ECPT/CWT
 *  invariant audit, the engine's retry-with-backoff, and the fault
 *  campaign's --jobs-independent reproducibility. */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hh"
#include "common/fault.hh"
#include "exec/engine.hh"
#include "exec/fault_campaign.hh"
#include "os/phys_pool.hh"
#include "pt/ecpt.hh"
#include "tests/test_util.hh"
#include "workloads/trace.hh"

namespace necpt
{

namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

} // namespace

// ------------------------------------------------------ error taxonomy

TEST(ErrorTaxonomy, KindsAndRetryability)
{
    const ConfigError config("bad");
    EXPECT_EQ(config.kind(), ErrorKind::Config);
    EXPECT_STREQ(config.kindName(), "config");
    EXPECT_FALSE(config.retryable());

    const ResourceExhausted pool("pool 'phys' full");
    EXPECT_EQ(pool.kind(), ErrorKind::ResourceExhausted);
    EXPECT_STREQ(pool.kindName(), "resource_exhausted");
    EXPECT_TRUE(pool.retryable());

    const InvariantViolation inv("stale CWT");
    EXPECT_EQ(inv.kind(), ErrorKind::Invariant);
    EXPECT_FALSE(inv.retryable());

    // All kinds are SimErrors — one catch site suffices.
    EXPECT_THROW(throw TraceError("t.bin", 0, "x"), SimError);
}

TEST(ErrorTaxonomy, TraceErrorNamesFileAndOffset)
{
    const TraceError e("cap.bin", 67, "partial trailing record");
    EXPECT_EQ(e.file(), "cap.bin");
    EXPECT_EQ(e.offset(), 67u);
    const std::string what = e.what();
    EXPECT_NE(what.find("cap.bin"), std::string::npos);
    EXPECT_NE(what.find("byte offset 67"), std::string::npos);
    EXPECT_FALSE(e.retryable());
}

// ------------------------------------------------------- spec parsing

TEST(FaultSpecParse, SitesAndRoundTrip)
{
    const FaultSpec spec =
        parseFaultSpec("pool:0.9,kicks:0.05,resize:0.01,mem:0.02:400");
    EXPECT_DOUBLE_EQ(spec.pool_fill, 0.9);
    EXPECT_DOUBLE_EQ(spec.kick_prob, 0.05);
    EXPECT_DOUBLE_EQ(spec.resize_prob, 0.01);
    EXPECT_DOUBLE_EQ(spec.mem_prob, 0.02);
    EXPECT_EQ(spec.mem_spike_cycles, 400u);
    EXPECT_FALSE(spec.trace_corruption);
    EXPECT_TRUE(spec.enabled());

    // Round-trip through the renderer re-parses to the same spec.
    const FaultSpec again = parseFaultSpec(faultSpecToString(spec));
    EXPECT_DOUBLE_EQ(again.pool_fill, spec.pool_fill);
    EXPECT_DOUBLE_EQ(again.kick_prob, spec.kick_prob);
    EXPECT_DOUBLE_EQ(again.resize_prob, spec.resize_prob);
    EXPECT_DOUBLE_EQ(again.mem_prob, spec.mem_prob);
    EXPECT_EQ(again.mem_spike_cycles, spec.mem_spike_cycles);
}

TEST(FaultSpecParse, AllArmsEverySite)
{
    const FaultSpec spec = parseFaultSpec("all");
    EXPECT_GE(spec.pool_fill, 0.0);
    EXPECT_GT(spec.kick_prob, 0.0);
    EXPECT_GT(spec.resize_prob, 0.0);
    EXPECT_GT(spec.mem_prob, 0.0);
    EXPECT_TRUE(spec.trace_corruption);
}

TEST(FaultSpecParse, RejectsMalformedSpecs)
{
    EXPECT_THROW(parseFaultSpec("pool"), ConfigError);
    EXPECT_THROW(parseFaultSpec("pool:nope"), ConfigError);
    EXPECT_THROW(parseFaultSpec("kicks:1.5"), ConfigError);
    EXPECT_THROW(parseFaultSpec("unknown:0.5"), ConfigError);
    EXPECT_THROW(parseFaultSpec(""), ConfigError);
    EXPECT_FALSE(FaultSpec{}.enabled());
}

// --------------------------------------------------- plan determinism

TEST(FaultPlan, SameSeedSameDecisions)
{
    FaultSpec spec;
    spec.kick_prob = 0.3;
    spec.mem_prob = 0.2;
    spec.pool_fill = 0.5;

    FaultPlan a(spec, 1234), b(spec, 1234);
    for (int i = 0; i < 500; ++i) {
        EXPECT_EQ(a.forceKickExhaustion(), b.forceKickExhaustion());
        EXPECT_EQ(a.memSpikeCycles(), b.memSpikeCycles());
        EXPECT_EQ(a.failPoolAlloc(0.7), b.failPoolAlloc(0.7));
    }
    EXPECT_EQ(a.counters().forced_kicks, b.counters().forced_kicks);
    EXPECT_EQ(a.counters().mem_spikes, b.counters().mem_spikes);
    EXPECT_EQ(a.counters().pool_failures, b.counters().pool_failures);
    EXPECT_GT(a.counters().forced_kicks, 0u);
}

TEST(FaultPlan, DifferentSeedsDiverge)
{
    FaultSpec spec;
    spec.kick_prob = 0.5;
    FaultPlan a(spec, 1), b(spec, 2);
    int diffs = 0;
    for (int i = 0; i < 200; ++i)
        diffs += a.forceKickExhaustion() != b.forceKickExhaustion();
    EXPECT_GT(diffs, 0);
}

TEST(FaultPlan, KickNeverFiresTwiceConsecutively)
{
    FaultSpec spec;
    spec.kick_prob = 1.0;
    FaultPlan plan(spec, 7);
    bool prev = false;
    for (int i = 0; i < 100; ++i) {
        const bool fired = plan.forceKickExhaustion();
        EXPECT_FALSE(prev && fired) << "double fire at draw " << i;
        prev = fired;
    }
    EXPECT_GT(plan.counters().forced_kicks, 0u);
}

TEST(FaultPlan, ForcedResizesAreCapped)
{
    FaultSpec spec;
    spec.resize_prob = 1.0;
    FaultPlan plan(spec, 7);
    int fired = 0;
    for (int i = 0; i < 100; ++i)
        fired += plan.forceResizeWindow();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(plan.counters().forced_resizes, 3u);
}

TEST(FaultPlan, DisarmedSitesNeverFire)
{
    FaultPlan plan(FaultSpec{}, 99);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(plan.failPoolAlloc(1.0));
        EXPECT_FALSE(plan.forceKickExhaustion());
        EXPECT_FALSE(plan.forceResizeWindow());
        EXPECT_EQ(plan.memSpikeCycles(), 0u);
    }
}

// ----------------------------------------------------------- pool site

TEST(PoolFaults, GenuineExhaustionThrowsNamedError)
{
    // 1MB pool: the frame zone is 7/8 of it, so 4KB frames run out.
    PhysMemPool pool(0, 1ULL << 20, "tiny");
    bool threw = false;
    for (int i = 0; i < 1024 && !threw; ++i) {
        try {
            pool.allocFrame(PageSize::Page4K);
        } catch (const ResourceExhausted &e) {
            threw = true;
            EXPECT_NE(std::string(e.what()).find("tiny"),
                      std::string::npos);
        }
    }
    EXPECT_TRUE(threw);
    // Accounting consistent after the throw: everything handed out is
    // still accounted, nothing from the failed attempt.
    EXPECT_LE(pool.usedBytes(), pool.capacityBytes());
    EXPECT_EQ(pool.usedBytes() % 4096, 0u);
}

TEST(PoolFaults, InjectedFailureLeavesAccountingIntact)
{
    PhysMemPool pool(0, 1ULL << 30, "guest-phys");
    FaultSpec spec;
    spec.pool_fill = 0.0; // armed from the first allocation
    FaultPlan plan(spec, 42);
    pool.setFaultPlan(&plan);

    bool threw = false;
    std::uint64_t used_before_throw = 0;
    for (int i = 0; i < 64 && !threw; ++i) {
        used_before_throw = pool.usedBytes();
        try {
            pool.allocFrame(PageSize::Page4K);
        } catch (const ResourceExhausted &e) {
            threw = true;
            EXPECT_NE(std::string(e.what()).find("injected"),
                      std::string::npos);
            EXPECT_NE(std::string(e.what()).find("guest-phys"),
                      std::string::npos);
            EXPECT_EQ(pool.usedBytes(), used_before_throw);
        }
    }
    EXPECT_TRUE(threw);
    EXPECT_GT(plan.counters().pool_failures, 0u);

    // Disarmed again, the pool works normally.
    pool.setFaultPlan(nullptr);
    EXPECT_NO_THROW(pool.allocFrame(PageSize::Page4K));
}

// ------------------------------------------- scattered allocator paths

TEST(ScatteredAllocator, AssemblesContiguousFramesAndFreesThem)
{
    PhysMemPool pool(0, 1ULL << 30, "host-phys");
    PtRegionRegistry registry;
    ScatteredPtAllocator alloc(pool, registry);

    const std::uint64_t before = pool.usedBytes();
    const Addr base = alloc.allocRegion(16 * 1024); // 4 frames
    EXPECT_EQ(alloc.frameBackedRegions(), 1u);
    EXPECT_TRUE(registry.contains(base));
    EXPECT_TRUE(registry.contains(base + 16 * 1024 - 1));
    EXPECT_EQ(pool.usedBytes(), before + 16 * 1024);

    alloc.freeRegion(base, 16 * 1024);
    EXPECT_EQ(alloc.frameBackedRegions(), 0u);
    EXPECT_FALSE(registry.contains(base));
    EXPECT_EQ(pool.usedBytes(), before);
}

TEST(ScatteredAllocator, NonContiguousRunFallsBackWithoutLeaking)
{
    PhysMemPool pool(0, 1ULL << 30, "host-phys");
    PtRegionRegistry registry;
    ScatteredPtAllocator alloc(pool, registry);

    // Put one recycled frame on the freelist with a live frame after
    // it: the assembly run must break (freelist frame, then a bump
    // frame that is not adjacent) and fall back to a region.
    const Addr a = pool.allocFrame(PageSize::Page4K);
    const Addr b = pool.allocFrame(PageSize::Page4K);
    (void)b; // keeps the bump cursor past a's neighbor
    pool.freeFrame(a, PageSize::Page4K);

    const std::uint64_t before = pool.usedBytes();
    const Addr base = alloc.allocRegion(8 * 1024);
    EXPECT_EQ(alloc.frameBackedRegions(), 0u); // fell back to a region
    EXPECT_TRUE(registry.contains(base));
    EXPECT_EQ(pool.usedBytes(), before + 8 * 1024);

    alloc.freeRegion(base, 8 * 1024);
    EXPECT_EQ(pool.usedBytes(), before);
}

TEST(ScatteredAllocator, MidAssemblyFailureRollsBackTakenFrames)
{
    PhysMemPool pool(0, 1ULL << 30, "host-phys");
    PtRegionRegistry registry;
    ScatteredPtAllocator alloc(pool, registry);

    // Inject a guaranteed failure partway: pool_fill 0 with the pool
    // plan means roughly every other allocFrame throws, so an 8-frame
    // assembly fails mid-run.
    FaultSpec spec;
    spec.pool_fill = 0.0;
    FaultPlan plan(spec, 3);
    pool.setFaultPlan(&plan);

    const std::uint64_t before = pool.usedBytes();
    bool threw = false;
    for (int i = 0; i < 16 && !threw; ++i) {
        try {
            const Addr base = alloc.allocRegion(32 * 1024);
            alloc.freeRegion(base, 32 * 1024); // keep usage flat
        } catch (const ResourceExhausted &) {
            threw = true;
        }
    }
    ASSERT_TRUE(threw);
    // No leaks: every frame taken before the failing call was rolled
    // back (the throw is rethrown only after the rollback).
    EXPECT_EQ(pool.usedBytes(), before);
    EXPECT_EQ(alloc.frameBackedRegions(), 0u);
}

// --------------------------------------------------------- cuckoo site

TEST(CuckooFaults, InjectedKickExhaustionIsAbsorbed)
{
    BumpAllocator alloc;
    CuckooConfig cfg;
    cfg.initial_slots = 256;
    ElasticCuckooTable<std::uint64_t> table(alloc, cfg);

    FaultSpec spec;
    spec.kick_prob = 0.2;
    FaultPlan plan(spec, 11);
    table.setFaultPlan(&plan);

    const std::uint64_t before_slots = table.slotsPerWay();
    for (std::uint64_t k = 1; k <= 300; ++k) {
        table.insert(k, k * 10);
        // The homeless bound: parked entries are always re-placed
        // before insert() returns.
        ASSERT_EQ(table.homelessCount(), 0u) << "after key " << k;
    }
    EXPECT_GT(table.injectedKickFailures(), 0u);
    for (std::uint64_t k = 1; k <= 300; ++k) {
        auto hit = table.find(k);
        ASSERT_TRUE(hit) << "key " << k;
        EXPECT_EQ(*hit.value, k * 10);
    }
    // Injected failures alone must not balloon the table: any growth
    // observed comes from genuine load-factor resizes (<= a couple of
    // doublings for 300 keys in 256*3 slots).
    EXPECT_LE(table.slotsPerWay(), before_slots * 4);
}

TEST(CuckooFaults, ForcedResizeWindowKeepsBothGenerationsProbeable)
{
    BumpAllocator alloc;
    CuckooConfig cfg;
    cfg.initial_slots = 256;
    ElasticCuckooTable<std::uint64_t> table(alloc, cfg);

    // Pre-populate without faults so the forced window has entries to
    // leave in the old generation.
    for (std::uint64_t k = 1; k <= 200; ++k)
        table.insert(k, k);

    FaultSpec spec;
    spec.resize_prob = 1.0;
    FaultPlan plan(spec, 5);
    table.setFaultPlan(&plan);

    table.insert(1000, 1000); // forces the resize window
    EXPECT_EQ(table.injectedResizes(), 1u);
    EXPECT_TRUE(table.resizing());

    // Mid-resize: every key must be findable (two-generation probe),
    // and probe plans must cover both generations.
    for (std::uint64_t k = 1; k <= 200; ++k)
        ASSERT_TRUE(table.find(k)) << "key " << k;
    std::vector<Addr> probes;
    table.probeAddrs(1, (1u << cfg.ways) - 1, probes);
    EXPECT_EQ(probes.size(), 2u * cfg.ways);

    // Let it finish; the cap keeps further forced windows bounded.
    for (std::uint64_t k = 2000; k < 2300; ++k)
        table.insert(k, k);
    table.finishResize();
    EXPECT_FALSE(table.resizing());
    EXPECT_LE(table.injectedResizes(), 3u);
    for (std::uint64_t k = 1; k <= 200; ++k)
        ASSERT_TRUE(table.find(k));
}

// -------------------------------- satellite (c): resize under pressure

TEST(EcptFaults, InFlightResizeUnderInsertionPressureStaysConsistent)
{
    BumpAllocator alloc;
    EcptConfig cfg;
    cfg.initial_slots = {256, 128, 64};
    cfg.cwt_initial_slots = {128, 64, 32};
    cfg.has_pte_cwt = true; // audit all three CWTs
    EcptPageTable pt(alloc, cfg);

    FaultSpec spec;
    spec.kick_prob = 0.1;   // forced max_kicks exhaustion
    spec.resize_prob = 0.02; // forced mid-probe resize windows
    FaultPlan plan(spec, 77);
    pt.setFaultPlan(&plan);

    // Insertion pressure: enough 4KB mappings to drive genuine
    // resizes on top of the injected ones, plus 2MB mappings so the
    // PMD table and its CWT see pressure too.
    for (std::uint64_t i = 0; i < 4000; ++i)
        pt.map(0x10'0000'0000ULL + i * 4096, 0x2'0000'0000ULL + i * 4096,
               PageSize::Page4K);
    for (std::uint64_t i = 0; i < 256; ++i)
        pt.map(0x20'0000'0000ULL + (i << 21), 0x4'0000'0000ULL + (i << 21),
               PageSize::Page2M);

    auto &t4k = pt.tableOf(PageSize::Page4K);
    EXPECT_GT(t4k.injectedKickFailures() + t4k.injectedResizes(), 0u);

    // The audit must pass *while* resizes are still in flight: no
    // homeless entries, no key in both generations, and every CWT
    // descriptor naming the way that really holds its block.
    EXPECT_NO_THROW(pt.auditCwtConsistency("pressure-test"));

    // And again after quiescing (all migrations completed).
    pt.quiesce();
    EXPECT_NO_THROW(pt.auditCwtConsistency("pressure-test-quiesced"));

    // Spot-check translations survived the churn.
    for (std::uint64_t i = 0; i < 4000; i += 97) {
        const auto t = pt.lookup(0x10'0000'0000ULL + i * 4096);
        ASSERT_TRUE(t.valid) << "4K mapping " << i;
    }
}

TEST(EcptFaults, AuditCatchesAStaleCwtWay)
{
    BumpAllocator alloc;
    EcptConfig cfg;
    cfg.initial_slots = {256, 128, 64};
    EcptPageTable pt(alloc, cfg);
    for (std::uint64_t i = 0; i < 64; ++i)
        pt.map(0x1000'0000ULL + (i << 21), 0x2000'0000ULL + (i << 21),
               PageSize::Page2M);
    EXPECT_NO_THROW(pt.auditCwtConsistency("clean"));

    // Manufacture staleness: clear a descriptor behind the table's
    // back, as a missed CWT update would.
    pt.cwtOf(PageSize::Page2M)->clearPresent(0x1000'0000ULL);
    EXPECT_THROW(pt.auditCwtConsistency("stale"), InvariantViolation);
}

// --------------------------------------------------------- trace site

TEST(TraceFaults, ForgedCorruptionModesAllThrowTraceError)
{
    // The four corruption modes are selected by seed % 4; every one
    // must be rejected with the file and a plausible offset named.
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
        const std::string path =
            "necpt_test_forged_" + std::to_string(seed) + ".trc";
        const std::string mode = writeCorruptTrace(path, seed);
        try {
            TraceWorkload wl(path);
            FAIL() << "loader accepted mode " << mode;
        } catch (const TraceError &e) {
            EXPECT_EQ(e.file(), path) << mode;
        }
        std::remove(path.c_str());
    }
}

TEST(TraceFaults, PartialTrailingRecordNamesExactOffset)
{
    // Satellite (b): a file whose size is not a multiple of the
    // record size is rejected with the exact stray-byte offset.
    // Layout: 24B header + 24B VMA + 1 record (16B) + 3 stray bytes.
    const std::string path = "necpt_test_partial.trc";
    const std::string mode = writeCorruptTrace(path, 2);
    ASSERT_EQ(mode, "partial-record");
    try {
        TraceWorkload wl(path);
        FAIL() << "loader accepted a partial trailing record";
    } catch (const TraceError &e) {
        EXPECT_EQ(e.offset(), 64u); // 67-byte file, 3 stray bytes
        EXPECT_NE(std::string(e.what()).find("partial trailing record"),
                  std::string::npos);
    }
    std::remove(path.c_str());
}

TEST(TraceFaults, RecordCountMismatchNamesPromisedEnd)
{
    const std::string path = "necpt_test_count.trc";
    const std::string mode = writeCorruptTrace(path, 3);
    ASSERT_EQ(mode, "count-mismatch");
    try {
        TraceWorkload wl(path);
        FAIL() << "loader accepted a lying record count";
    } catch (const TraceError &e) {
        // Header promises 8 records: table ends at 48 + 8*16 = 176.
        EXPECT_EQ(e.offset(), 176u);
        EXPECT_NE(std::string(e.what()).find("promises 8 records"),
                  std::string::npos);
    }
    std::remove(path.c_str());
}

// ------------------------------------------------- engine retry logic

TEST(EngineRetry, RetryableErrorIsRetriedWithErrorChain)
{
    SweepOptions opts;
    opts.jobs = 1;
    opts.retries = 3;
    opts.backoff_ms = 1;
    opts.progress = nullptr;
    const SweepEngine engine(opts);

    JobSpec spec;
    spec.key = "retry/flaky";
    spec.fn = [](const JobContext &ctx) -> JobOutput {
        if (ctx.attempt < 2)
            throw ResourceExhausted(
                strfmt("transient pressure, attempt %d", ctx.attempt));
        JobOutput out;
        out.metrics["attempt"] = ctx.attempt;
        return out;
    };

    const ResultSink sink = engine.run({spec});
    ASSERT_EQ(sink.size(), 1u);
    const JobRecord &r = sink.records()[0];
    EXPECT_EQ(r.status, JobStatus::Ok);
    EXPECT_EQ(r.attempts, 3);
    ASSERT_EQ(r.error_chain.size(), 2u);
    EXPECT_NE(r.error_chain[0].find("attempt 0"), std::string::npos);
    EXPECT_NE(r.error_chain[1].find("attempt 1"), std::string::npos);
    EXPECT_EQ(r.out.metrics.at("attempt"), 2.0);
}

TEST(EngineRetry, RetriesExhaustKeepingFullChain)
{
    SweepOptions opts;
    opts.jobs = 1;
    opts.retries = 2;
    opts.backoff_ms = 1;
    opts.progress = nullptr;
    const SweepEngine engine(opts);

    JobSpec spec;
    spec.key = "retry/hopeless";
    spec.fn = [](const JobContext &) -> JobOutput {
        throw ResourceExhausted("pool 'guest-phys' exhausted");
    };

    const ResultSink sink = engine.run({spec});
    const JobRecord &r = sink.records()[0];
    EXPECT_EQ(r.status, JobStatus::Failed);
    EXPECT_EQ(r.attempts, 3); // first try + 2 retries
    EXPECT_EQ(r.error_kind, "resource_exhausted");
    EXPECT_EQ(r.error_chain.size(), 3u);
    EXPECT_EQ(r.error_chain.back(), r.error);
}

TEST(EngineRetry, NonRetryableErrorsFailImmediately)
{
    SweepOptions opts;
    opts.jobs = 1;
    opts.retries = 5;
    opts.backoff_ms = 1;
    opts.progress = nullptr;
    const SweepEngine engine(opts);

    std::atomic<int> config_calls{0}, untyped_calls{0};
    JobSpec config_spec;
    config_spec.key = "retry/config";
    config_spec.fn = [&](const JobContext &) -> JobOutput {
        ++config_calls;
        throw ConfigError("cores must be in [1, 8]");
    };
    JobSpec untyped_spec;
    untyped_spec.key = "retry/untyped";
    untyped_spec.fn = [&](const JobContext &) -> JobOutput {
        ++untyped_calls;
        throw std::logic_error("plain exception");
    };

    const ResultSink sink = engine.run({config_spec, untyped_spec});
    EXPECT_EQ(config_calls.load(), 1);
    EXPECT_EQ(untyped_calls.load(), 1);
    EXPECT_EQ(sink.records()[0].error_kind, "config");
    EXPECT_EQ(sink.records()[0].attempts, 1);
    EXPECT_EQ(sink.records()[1].error_kind, "exception");
    EXPECT_EQ(sink.records()[1].attempts, 1);
}

TEST(EngineRetry, AuditHookFailureIsATypedFailure)
{
    SweepOptions opts;
    opts.jobs = 1;
    opts.progress = nullptr;
    const SweepEngine engine(opts);

    JobSpec spec;
    spec.key = "audit/violation";
    spec.fn = [](const JobContext &) { return JobOutput{}; };
    spec.audit = [](const JobContext &) {
        throw InvariantViolation("CWT way bit stale after fault");
    };

    const ResultSink sink = engine.run({spec});
    const JobRecord &r = sink.records()[0];
    EXPECT_EQ(r.status, JobStatus::Failed);
    EXPECT_EQ(r.error_kind, "invariant");
    EXPECT_NE(r.error.find("CWT way bit stale"), std::string::npos);
}

TEST(EngineRetry, FaultSeedVariesPerAttemptNotPerJobCount)
{
    const JobContext first{42, 0};
    const JobContext second{42, 1};
    EXPECT_NE(first.faultSeed(), second.faultSeed());
    // Pure function of (seed, attempt): identical inputs, identical
    // draw — the scheduling-independence anchor.
    EXPECT_EQ(first.faultSeed(), (JobContext{42, 0}.faultSeed()));
}

// ------------------- satellite (d): campaign --jobs reproducibility

namespace
{

/** A deterministic synthetic grid: some jobs pass, some fail typed,
 *  some retry — everything derived from the job seed only. */
std::vector<JobSpec>
syntheticCampaignJobs(int n)
{
    std::vector<JobSpec> jobs;
    for (int i = 0; i < n; ++i) {
        JobSpec spec;
        spec.key = "synth/job" + std::to_string(i);
        spec.fn = [](const JobContext &ctx) -> JobOutput {
            // Outcome classes derive purely from the job seed (stable
            // across attempts) so retries behave deterministically:
            //   0: retryable failure on every attempt (chain of 3)
            //   1: corrupt trace, never retried
            //   2: retryable failure on the first attempt only
            const std::uint64_t cls = ctx.seed % 5;
            if (cls == 0)
                throw ResourceExhausted(
                    strfmt("persistent pressure, attempt %d",
                           ctx.attempt));
            if (cls == 1)
                throw TraceError("synthetic.trc", ctx.seed % 128,
                                 "synthetic corruption");
            if (cls == 2 && ctx.attempt < 1)
                throw ResourceExhausted("transient pressure");
            JobOutput out;
            out.metrics["fault_draw"] =
                static_cast<double>(ctx.faultSeed() % 1000);
            out.sim.config = "synthetic";
            out.sim.app = "none";
            return out;
        };
        jobs.push_back(std::move(spec));
    }
    return jobs;
}

std::string
runCampaignJson(int workers, int n_jobs, const std::string &path)
{
    SweepOptions opts;
    opts.jobs = workers;
    opts.retries = 2;
    opts.backoff_ms = 1;
    opts.base_seed = 0xFA075EED;
    opts.progress = nullptr;
    const SweepEngine engine(opts);
    const ResultSink sink = engine.run(syntheticCampaignJobs(n_jobs));
    // Canonical JSON: wall-clock omitted, so the comparison below is
    // byte-exact. `jobs` is pinned so the worker count is invisible.
    sink.writeJson(path, "synthetic", opts.base_seed, /*jobs=*/0,
                   /*canonical=*/true);
    const std::string text = slurp(path);
    std::remove(path.c_str());
    return text;
}

} // namespace

TEST(CampaignDeterminism, OneWorkerAndEightWorkersMatchByteForByte)
{
    const std::string serial =
        runCampaignJson(1, 24, "necpt_test_campaign_j1.json");
    const std::string parallel =
        runCampaignJson(8, 24, "necpt_test_campaign_j8.json");
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
    // The fixture must actually exercise failures and retries, or the
    // comparison proves nothing about fault determinism.
    EXPECT_NE(serial.find("\"status\":\"failed\""), std::string::npos);
    EXPECT_NE(serial.find("\"error_kind\":\"resource_exhausted\""),
              std::string::npos);
    EXPECT_NE(serial.find("\"error_kind\":\"trace\""),
              std::string::npos);
    EXPECT_NE(serial.find("\"attempts\":3"), std::string::npos);
    EXPECT_NE(serial.find("\"attempts\":2"), std::string::npos);
    EXPECT_NE(serial.find("\"status\":\"ok\""), std::string::npos);
}

TEST(CampaignJobs, ReplicationsRekeyTheGridAndAddTraceJobs)
{
    const SweepGrid *grid = findSweepGrid("smoke");
    ASSERT_NE(grid, nullptr);

    FaultCampaignOptions copts;
    copts.spec = parseFaultSpec("all");
    copts.fault_seeds = 3;
    SimParams params;
    const auto jobs = makeFaultCampaignJobs(*grid, params, copts);

    const std::size_t per_rep = grid->make_jobs(params).size() + 1;
    ASSERT_EQ(jobs.size(), 3 * per_rep);
    EXPECT_EQ(jobs[0].key.rfind("faults/s0/", 0), 0u);
    EXPECT_EQ(jobs[per_rep].key.rfind("faults/s1/", 0), 0u);
    // Distinct replication prefixes give distinct derived seeds — the
    // mechanism that makes each replication an independent fault draw.
    EXPECT_NE(deriveJobSeed(1, jobs[0].key),
              deriveJobSeed(1, jobs[per_rep].key));
    // The trace-corruption job closes each replication.
    EXPECT_NE(jobs[per_rep - 1].key.find("/trace"), std::string::npos);
}

} // namespace necpt
