/** @file Unit tests for the DRAM timing model (mem/dram.hh). */

#include <gtest/gtest.h>

#include "mem/dram.hh"

namespace necpt
{

TEST(Dram, RowHitFasterThanMiss)
{
    DramModel dram;
    const Cycles first = dram.access(0x0, 0);       // row miss (empty)
    const Cycles second = dram.access(0x100, first); // same row: hit
    EXPECT_LT(second, first);
}

TEST(Dram, RowConflictCostsPrecharge)
{
    DramModel dram;
    DramConfig cfg;
    const std::uint64_t row_stride =
        cfg.row_bytes * static_cast<std::uint64_t>(cfg.channels);
    Cycles t = dram.access(0x0, 0);
    // A different row in the same bank must precharge + activate.
    const Cycles conflict = dram.access(row_stride * 8, t + 1000);
    const Cycles hit = dram.access(row_stride * 8 + 64, t + 10000);
    EXPECT_GT(conflict, hit);
}

TEST(Dram, BankBusySerializes)
{
    DramModel dram;
    // Two back-to-back accesses to the same bank at the same cycle:
    // the second waits for the first.
    const Cycles l1 = dram.access(0x0, 0);
    const Cycles l2 = dram.access(0x100, 0);
    EXPECT_GT(l2, l1);
}

TEST(Dram, DifferentChannelsProceedInParallel)
{
    DramModel dram;
    // Lines 0 and 64 live on different channels (line interleaving).
    const Cycles l1 = dram.access(0x0, 0);
    const Cycles l2 = dram.access(0x40, 0);
    EXPECT_EQ(l1, l2); // identical cold-miss latency, no queueing
}

TEST(Dram, RowHitRateTracked)
{
    DramModel dram;
    // Lines 0x0, 0x100, 0x200 all map to channel 0 (line interleave
    // across 4 channels) and the same row: miss, hit, hit.
    Cycles t = 0;
    t += dram.access(0x0, t);
    t += dram.access(0x100, t);
    t += dram.access(0x200, t);
    EXPECT_EQ(dram.numAccesses(), 3u);
    EXPECT_NEAR(dram.rowHitRate(), 2.0 / 3.0, 1e-9);
    dram.resetStats();
    EXPECT_EQ(dram.numAccesses(), 0u);
}

TEST(Dram, LatencyIncludesCoreClockRatio)
{
    DramModel dram;
    DramConfig cfg;
    // Cold row miss: tRCD + tCAS + burst DRAM cycles, times 2 (2GHz
    // core vs 1GHz DRAM).
    const Cycles expected = static_cast<Cycles>(
        (cfg.t_rcd + cfg.t_cas + cfg.burst)
        * cfg.core_cycles_per_dram_cycle);
    EXPECT_EQ(dram.access(0x0, 0), expected);
}

} // namespace necpt
