/** @file Cross-cutting integration and property tests: differential
 *  correctness of all walkers, the Section-4.4 staleness argument, and
 *  end-to-end system invariants. */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "mmu/tlb.hh"
#include "walk/baselines.hh"
#include "walk/hybrid.hh"
#include "walk/native_ecpt.hh"
#include "walk/native_radix.hh"
#include "walk/nested_ecpt.hh"
#include "walk/nested_radix.hh"

namespace necpt
{

namespace
{

SystemConfig
mixedSystem(PtKind guest, PtKind host)
{
    SystemConfig cfg;
    cfg.virtualized = true;
    cfg.guest_kind = guest;
    cfg.host_kind = host;
    cfg.guest_thp = true;
    cfg.host_thp = true;
    cfg.guest_thp_coverage = 0.5; // force mixed page sizes
    cfg.host_thp_coverage = 0.7;
    cfg.guest_phys_bytes = 2ULL << 30;
    cfg.host_phys_bytes = 3ULL << 30;
    cfg.guest_ecpt.initial_slots = {512, 512, 256};
    cfg.guest_ecpt.cwt_initial_slots = {128, 128, 64};
    cfg.host_ecpt = cfg.guest_ecpt;
    cfg.host_ecpt.has_pte_cwt = true;
    return cfg;
}

/**
 * Differential property: a walker must agree with the functional
 * ground truth on a randomized mixed-page-size address set, repeatedly
 * (warm caches must never change results).
 */
template <typename WalkerT, typename... Args>
void
differentialCheck(PtKind guest, PtKind host, Args &&...args)
{
    SystemConfig cfg = mixedSystem(guest, host);
    NestedSystem sys(cfg);
    MemoryHierarchy mem(MemHierarchyConfig{}, 1);
    WalkerT walker(sys, mem, 0, std::forward<Args>(args)...);

    const Addr base = sys.mmapRegion(256ULL << 20);
    Rng rng(1234);
    std::vector<Addr> addrs;
    for (int i = 0; i < 200; ++i)
        addrs.push_back(base + rng.below(256ULL << 20));
    for (Addr gva : addrs)
        sys.ensureResident(gva);

    Cycles now = 0;
    for (int round = 0; round < 2; ++round) {
        for (Addr gva : addrs) {
            const WalkResult r = walker.translate(gva, now);
            ASSERT_TRUE(r.translation.valid);
            const Translation truth = sys.fullTranslate(gva);
            ASSERT_EQ(r.translation.apply(gva), truth.apply(gva))
                << "round " << round << " gva " << std::hex << gva;
            now += 2000;
        }
    }
}

} // namespace

TEST(Differential, NestedRadixAgreesWithGroundTruth)
{
    differentialCheck<NestedRadixWalker>(PtKind::Radix, PtKind::Radix);
}

TEST(Differential, NestedEcptAdvancedAgreesWithGroundTruth)
{
    differentialCheck<NestedEcptWalker>(PtKind::Ecpt, PtKind::Ecpt,
                                        NestedEcptFeatures::advanced());
}

TEST(Differential, NestedEcptPlainAgreesWithGroundTruth)
{
    differentialCheck<NestedEcptWalker>(PtKind::Ecpt, PtKind::Ecpt,
                                        NestedEcptFeatures::plain());
}

TEST(Differential, HybridAgreesWithGroundTruth)
{
    differentialCheck<HybridWalker>(PtKind::Radix, PtKind::Ecpt);
}

TEST(Differential, AgileAgreesWithGroundTruth)
{
    differentialCheck<AgilePagingWalker>(PtKind::Radix, PtKind::Radix);
}

TEST(Differential, FlatNestedAgreesWithGroundTruth)
{
    differentialCheck<FlatNestedWalker>(PtKind::Radix, PtKind::Flat);
}

/**
 * Section 4.4: the hPA of a gPTE changes under cuckoo churn, so a
 * cached hPTE->gPTE pointer (an NTLB analogue for ECPTs) would go
 * stale. We snapshot the host address of a gECPT slot, churn the
 * guest table, and verify the slot's host address really changed —
 * the reason neither design caches Step-2 pointers.
 */
TEST(Staleness, GptePointersMoveUnderChurn)
{
    SystemConfig cfg = mixedSystem(PtKind::Ecpt, PtKind::Ecpt);
    cfg.guest_thp = false;
    cfg.host_thp = false;
    cfg.guest_ecpt.initial_slots = {64, 64, 32}; // tiny: resize soon
    NestedSystem sys(cfg);

    const Addr probe_va = sys.mmapRegion(512ULL << 20);
    sys.ensureResident(probe_va);
    EcptPageTable &guest = *sys.guestEcpt();
    const auto key = guest.blockKey(probe_va, PageSize::Page4K);
    const Addr slot_before =
        guest.tableOf(PageSize::Page4K).find(key).slot_addr;

    // Churn: fault in thousands of pages; the PTE table resizes and
    // displaces entries.
    for (Addr off = 4096; off < (64ULL << 20); off += 4096)
        sys.ensureResident(probe_va + off);

    const auto hit = guest.tableOf(PageSize::Page4K).find(key);
    ASSERT_TRUE(hit);
    EXPECT_NE(hit.slot_addr, slot_before)
        << "expected elastic resizing to move the gPTE";
    // And the translation itself is still correct.
    EXPECT_TRUE(sys.fullTranslate(probe_va).valid);
}

/** The TLB + walker pipeline returns stable translations. */
TEST(EndToEnd, TlbAndWalkerConsistent)
{
    SystemConfig cfg = mixedSystem(PtKind::Ecpt, PtKind::Ecpt);
    NestedSystem sys(cfg);
    MemoryHierarchy mem(MemHierarchyConfig{}, 1);
    TlbHierarchy tlb;
    NestedEcptWalker walker(sys, mem, 0);

    const Addr base = sys.mmapRegion(64ULL << 20);
    Rng rng(5);
    Cycles now = 0;
    for (int i = 0; i < 500; ++i) {
        const Addr gva = base + rng.below(64ULL << 20);
        sys.ensureResident(gva);
        auto hit = tlb.lookup(gva);
        Translation t = hit.translation;
        if (!hit.hit) {
            const WalkResult r = walker.translate(gva, now);
            t = r.translation;
            tlb.install(gva, t);
        }
        ASSERT_TRUE(t.valid);
        ASSERT_EQ(t.apply(gva), sys.fullTranslate(gva).apply(gva));
        now += 300;
    }
    EXPECT_GT(tlb.l1Stats().hits(), 0u);
    EXPECT_GT(walker.stats().walks.value(), 0u);
}

/** Memory accounting stays consistent across a busy system. */
TEST(EndToEnd, AccountingInvariants)
{
    SystemConfig cfg = mixedSystem(PtKind::Ecpt, PtKind::Ecpt);
    NestedSystem sys(cfg);
    const Addr base = sys.mmapRegion(128ULL << 20);
    for (Addr off = 0; off < (128ULL << 20); off += 4096)
        sys.ensureResident(base + off);
    sys.quiesce();

    // Every structure byte is accounted in its pool.
    EXPECT_GT(sys.guestStructureBytes(), 0u);
    EXPECT_GT(sys.hostStructureBytes(), 0u);
    EXPECT_LE(sys.guestStructureBytes(),
              sys.guestPool().usedBytes());
    EXPECT_LE(sys.hostStructureBytes() + sys.guestPteBytes(),
              sys.hostPool().usedBytes() + sys.guestStructureBytes());
    // PTE bytes = 8B per mapped page on both sides.
    EXPECT_EQ(sys.guestPteBytes() % pte_bytes, 0u);
    EXPECT_EQ(sys.hostPteBytes() % pte_bytes, 0u);
    EXPECT_GT(sys.hostPteBytes(), 0u);
}

/** Walk-kind counters are exhaustive: every walk is classified. */
TEST(EndToEnd, WalkKindsExhaustive)
{
    SystemConfig cfg = mixedSystem(PtKind::Ecpt, PtKind::Ecpt);
    NestedSystem sys(cfg);
    MemoryHierarchy mem(MemHierarchyConfig{}, 1);
    NestedEcptWalker walker(sys, mem, 0);

    const Addr base = sys.mmapRegion(64ULL << 20);
    Rng rng(9);
    Cycles now = 0;
    const int walks = 300;
    for (int i = 0; i < walks; ++i) {
        const Addr gva = base + rng.below(64ULL << 20);
        sys.ensureResident(gva);
        walker.translate(gva, now);
        now += 500;
    }
    std::uint64_t guest_total = 0;
    for (int k = 0; k < 4; ++k)
        guest_total += walker.stats().guest_kind[k].value();
    EXPECT_EQ(guest_total, static_cast<std::uint64_t>(walks));
}

} // namespace necpt
