/** @file Tests for CactiLite (Table 3) and the configuration factory
 *  (Table 1). */

#include <gtest/gtest.h>

#include "sim/cacti_lite.hh"
#include "sim/config.hh"

namespace necpt
{

TEST(CactiLite, Table3ByteBudgets)
{
    // Section 8: 768 / 672 / 1680 / 1488 / 1408 bytes.
    EXPECT_EQ(totalBytes(nativeRadixMmuStructures()), 768u);
    EXPECT_EQ(totalBytes(nativeEcptMmuStructures()), 672u);
    EXPECT_EQ(totalBytes(nestedRadixMmuStructures()), 1680u);
    EXPECT_EQ(totalBytes(nestedEcptMmuStructures()), 1488u);
    EXPECT_EQ(totalBytes(nestedHybridMmuStructures()), 1408u);
}

TEST(CactiLite, Table3Magnitudes)
{
    const auto radix = CactiLite::estimate(nestedRadixMmuStructures());
    const auto ecpt = CactiLite::estimate(nestedEcptMmuStructures());
    const auto hybrid = CactiLite::estimate(nestedHybridMmuStructures());
    // Table 3: 0.01 / 0.03 / 0.02 mm^2 and 2.9 / 5.2 / 2.8 mW.
    EXPECT_NEAR(radix.area_mm2, 0.01, 0.005);
    EXPECT_NEAR(ecpt.area_mm2, 0.03, 0.01);
    EXPECT_NEAR(hybrid.area_mm2, 0.02, 0.01);
    EXPECT_NEAR(radix.power_mw, 2.9, 0.6);
    EXPECT_NEAR(ecpt.power_mw, 5.2, 1.0);
    EXPECT_NEAR(hybrid.power_mw, 2.8, 0.6);
    // The qualitative Table-3 relations hold exactly.
    EXPECT_GT(ecpt.area_mm2, radix.area_mm2);
    EXPECT_GT(ecpt.power_mw, radix.power_mw);
    EXPECT_LT(hybrid.power_mw, ecpt.power_mw);
}

TEST(CactiLite, MonotoneInBytesAndPorts)
{
    const auto small = CactiLite::estimate(SramStructure{"s", 100, 1});
    const auto big = CactiLite::estimate(SramStructure{"b", 1000, 1});
    const auto ported = CactiLite::estimate(SramStructure{"p", 100, 3});
    EXPECT_LT(small.area_mm2, big.area_mm2);
    EXPECT_LT(small.power_mw, big.power_mw);
    EXPECT_LT(small.area_mm2, ported.area_mm2);
    EXPECT_LT(small.power_mw, ported.power_mw);
}

TEST(Config, Table1HasTenRows)
{
    const auto configs = table1Configs();
    EXPECT_EQ(configs.size(), 10u);
    // Names match the paper's Table 1.
    EXPECT_EQ(configName(ConfigId::Radix), "Radix");
    EXPECT_EQ(configName(ConfigId::RadixThp), "Radix THP");
    EXPECT_EQ(configName(ConfigId::NestedEcptThp), "Nested ECPTs THP");
    EXPECT_EQ(configName(ConfigId::NestedHybrid), "Nested Hybrid");
}

TEST(Config, KindsWired)
{
    EXPECT_FALSE(makeConfig(ConfigId::Radix).system.virtualized);
    EXPECT_TRUE(makeConfig(ConfigId::NestedRadix).system.virtualized);
    EXPECT_EQ(makeConfig(ConfigId::NestedHybrid).system.guest_kind,
              PtKind::Radix);
    EXPECT_EQ(makeConfig(ConfigId::NestedHybrid).system.host_kind,
              PtKind::Ecpt);
    EXPECT_EQ(makeConfig(ConfigId::FlatNested).system.host_kind,
              PtKind::Flat);
    EXPECT_TRUE(makeConfig(ConfigId::NestedEcpt)
                    .system.host_ecpt.has_pte_cwt);
    EXPECT_FALSE(makeConfig(ConfigId::PlainNestedEcpt)
                     .system.host_ecpt.has_pte_cwt);
}

TEST(Config, ThpFlagPropagates)
{
    const auto thp = makeConfig(ConfigId::NestedEcptThp);
    EXPECT_TRUE(thp.system.guest_thp);
    EXPECT_TRUE(thp.system.host_thp);
    const auto flat = makeConfig(ConfigId::NestedEcpt);
    EXPECT_FALSE(flat.system.guest_thp);
}

TEST(Config, FeatureLadder)
{
    auto plain = NestedEcptFeatures::plain();
    EXPECT_FALSE(plain.stc);
    auto adv = NestedEcptFeatures::advanced();
    EXPECT_TRUE(adv.stc && adv.step1_pte_hcwt && adv.step3_adaptive_pte
                && adv.pt_4kb);
    const auto cfg =
        makeNestedEcptConfig({true, false, false, false}, false, "X");
    EXPECT_TRUE(cfg.features.stc);
    EXPECT_FALSE(cfg.features.step1_pte_hcwt);
    EXPECT_FALSE(cfg.system.host_ecpt.has_pte_cwt);
}

TEST(Config, AppThpCoverage)
{
    EXPECT_GT(appGuestThpCoverage("GUPS"), 0.99);
    EXPECT_GT(appGuestThpCoverage("SysBench"), 0.9);
    EXPECT_LT(appGuestThpCoverage("BFS"), 0.6);
}

} // namespace necpt
