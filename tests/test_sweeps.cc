/** @file Parameterized property sweeps across component geometries:
 *  TLB capacities, batch widths, cuckoo resize thresholds, and HPT
 *  load factors. */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "mem/hierarchy.hh"
#include "mmu/tlb.hh"
#include "pt/cuckoo.hh"
#include "pt/hashed.hh"
#include "tests/test_util.hh"

namespace necpt
{

// ------------------------------------------------------- TLB geometries

class TlbGeometry
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>>
{
};

TEST_P(TlbGeometry, CapacityAndRecencyRespected)
{
    const auto [entries, ways] = GetParam();
    TlbConfig cfg;
    cfg.l1[0] = {entries, ways};
    cfg.l2[0] = {entries * 4, ways};
    TlbHierarchy tlb(cfg);

    // Install 2x capacity of 4KB translations.
    const std::size_t n = entries * 2;
    for (std::size_t i = 0; i < n; ++i)
        tlb.install(static_cast<Addr>(i) << 12,
                    {static_cast<Addr>(i + 100) << 12,
                     PageSize::Page4K, true});

    // All still hit at least in L2 (sized 4x). Probing most-recent
    // first finds the L1-resident tail (ascending would chase its own
    // refill evictions under LRU).
    std::size_t l1_hits = 0;
    for (std::size_t i = n; i-- > 0;) {
        auto r = tlb.lookup(static_cast<Addr>(i) << 12);
        ASSERT_TRUE(r.hit) << i;
        l1_hits += r.l1_hit;
    }
    EXPECT_GT(l1_hits, 0u);
    EXPECT_LT(l1_hits, n);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TlbGeometry,
    ::testing::Values(std::make_pair(16, 4), std::make_pair(64, 4),
                      std::make_pair(32, 0), std::make_pair(64, 8),
                      std::make_pair(128, 2)));

// ----------------------------------------------------- Batch properties

class BatchWidth : public ::testing::TestWithParam<int>
{
};

TEST_P(BatchWidth, ColdBatchLatencyGrowsSublinearly)
{
    const int width = GetParam();
    MemHierarchyConfig cfg;
    MemoryHierarchy mem(cfg, 1);
    std::vector<Addr> one = {0x10'0000};
    std::vector<Addr> many;
    for (int i = 0; i < width; ++i)
        many.push_back(0x40'0000 + static_cast<Addr>(i) * 8192);

    const Cycles lat1 = mem.batchAccess(one, 0, 0).latency;
    const Cycles latN = mem.batchAccess(many, 100'000, 0).latency;
    // Parallel issue: N cold misses cost far less than N serial ones,
    // but no less than one.
    EXPECT_GE(latN, lat1);
    EXPECT_LT(latN, lat1 * static_cast<Cycles>(width));
}

INSTANTIATE_TEST_SUITE_P(Widths, BatchWidth,
                         ::testing::Values(2, 3, 4, 6, 9, 16));

// --------------------------------------------------- Resize thresholds

class ResizeThreshold : public ::testing::TestWithParam<double>
{
};

TEST_P(ResizeThreshold, IntegrityAndLoadBound)
{
    const double threshold = GetParam();
    BumpAllocator alloc;
    CuckooConfig cfg;
    cfg.initial_slots = 64;
    cfg.resize_threshold = threshold;
    ElasticCuckooTable<std::uint64_t> table(alloc, cfg);

    for (std::uint64_t k = 0; k < 3000; ++k)
        table.insert(k * 3 + 1, k);
    table.finishResize();

    for (std::uint64_t k = 0; k < 3000; ++k) {
        auto hit = table.find(k * 3 + 1);
        ASSERT_TRUE(hit);
        ASSERT_EQ(*hit.value, k);
    }
    // After quiescing, the live table satisfies the threshold bound
    // (one doubling of slack is possible right at the boundary).
    EXPECT_LE(table.loadFactor(), threshold + 0.01);
    EXPECT_GT(table.resizeCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ResizeThreshold,
                         ::testing::Values(0.4, 0.5, 0.6, 0.75));

// ------------------------------------------------------- HPT load curve

class HptLoad : public ::testing::TestWithParam<int>
{
};

TEST_P(HptLoad, ProbeChainsGrowWithLoadFactor)
{
    const int load_pct = GetParam();
    BumpAllocator alloc;
    HashedPageTable hpt(alloc, 4096);
    const std::uint64_t fills = 4096ULL * load_pct / 100;
    for (std::uint64_t i = 0; i < fills; ++i)
        ASSERT_TRUE(hpt.map(i << 12, i << 12));
    for (std::uint64_t i = 0; i < fills; ++i)
        ASSERT_TRUE(hpt.lookup(i << 12).valid);
    const double avg = hpt.avgProbes();
    EXPECT_GE(avg, 1.0);
    // Open addressing: expected successful probe count ~ the
    // textbook (1 + 1/(1-a)) / 2 bound; allow generous slack.
    const double a = load_pct / 100.0;
    EXPECT_LE(avg, (1.0 + 1.0 / (1.0 - a)));
}

INSTANTIATE_TEST_SUITE_P(Loads, HptLoad,
                         ::testing::Values(10, 30, 50, 70, 85));

TEST(HptLoadCurve, MonotoneInLoad)
{
    double prev = 0;
    for (int load_pct : {10, 40, 70, 90}) {
        BumpAllocator alloc;
        HashedPageTable hpt(alloc, 4096);
        const std::uint64_t fills = 4096ULL * load_pct / 100;
        for (std::uint64_t i = 0; i < fills; ++i)
            ASSERT_TRUE(hpt.map(i << 12, i << 12));
        for (std::uint64_t i = 0; i < fills; ++i)
            hpt.lookup(i << 12);
        EXPECT_GE(hpt.avgProbes(), prev);
        prev = hpt.avgProbes();
    }
    EXPECT_GT(prev, 1.2); // at 90% load, chains are clearly visible
}

} // namespace necpt
