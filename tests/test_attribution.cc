/** @file Cycle-attribution conservation: for every walker design, at
 *  mlp 1 and 4, under churn and forced elastic resizes, the attr.*
 *  ledger bins must sum exactly (integer equality) to the MMU's busy
 *  cycles — no cycle of walk latency left uncounted, none counted
 *  twice. A forgotten charge in any walker or memory-hierarchy path
 *  shows up here as an exact-equality failure. */

#include <gtest/gtest.h>

#include <tuple>

#include "coherence/churn.hh"
#include "common/cycle_ledger.hh"
#include "sim/experiment.hh"
#include "sim/simulator.hh"

namespace necpt
{

namespace
{

constexpr ConfigId all_configs[] = {
    ConfigId::Radix,
    ConfigId::RadixThp,
    ConfigId::Ecpt,
    ConfigId::EcptThp,
    ConfigId::NestedRadix,
    ConfigId::NestedRadixThp,
    ConfigId::NestedEcpt,
    ConfigId::NestedEcptThp,
    ConfigId::NestedHybrid,
    ConfigId::NestedHybridThp,
    ConfigId::PlainNestedEcpt,
    ConfigId::PlainNestedEcptThp,
    ConfigId::AgilePagingIdeal,
    ConfigId::AgilePagingIdealThp,
    ConfigId::PomTlb,
    ConfigId::PomTlbThp,
    ConfigId::FlatNested,
    ConfigId::FlatNestedThp,
    ConfigId::ShadowPaging,
    ConfigId::ShadowPagingThp,
    ConfigId::NestedHpt,
};

SimParams
tinyParams(int mlp)
{
    SimParams params;
    params.warmup_accesses = 4'000;
    params.measure_accesses = 16'000;
    params.scale_denominator = 256;
    params.max_outstanding_walks = mlp;
    return params;
}

/** Exact conservation plus internal consistency of the attr.* map. */
void
expectConserved(const SimResult &r)
{
    ASSERT_GT(r.walks, 0u) << r.config;
    const auto total_it = r.metrics.find("attr.total.cycles");
    ASSERT_NE(total_it, r.metrics.end()) << r.config;
    const auto total =
        static_cast<std::uint64_t>(total_it->second);

    // The tentpole invariant: every busy cycle is attributed.
    EXPECT_EQ(total, r.mmu_busy_cycles) << r.config;

    // The per-cause bins re-sum to the total and the shares to 1.
    std::uint64_t bin_sum = 0;
    double share_sum = 0.0;
    for (int c = 0; c < num_attr_causes; ++c) {
        const std::string an =
            std::string("attr.")
            + attrCauseName(static_cast<AttrCause>(c));
        bin_sum += static_cast<std::uint64_t>(
            r.metrics.at(an + ".cycles"));
        share_sum += r.metrics.at(an + ".share");
    }
    EXPECT_EQ(bin_sum, total) << r.config;
    if (total > 0)
        EXPECT_NEAR(share_sum, 1.0, 1e-9) << r.config;
}

using AttrParam = std::tuple<ConfigId, int>;

class AttributionMatrix : public ::testing::TestWithParam<AttrParam>
{
};

std::string
attrName(const ::testing::TestParamInfo<AttrParam> &info)
{
    std::string name = configName(std::get<0>(info.param));
    for (char &c : name)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return name + "_mlp" + std::to_string(std::get<1>(info.param));
}

} // namespace

TEST_P(AttributionMatrix, ConservesEveryBusyCycle)
{
    const auto [id, mlp] = GetParam();
    const SimResult r =
        runSim(makeConfig(id), tinyParams(mlp), "GUPS");
    expectConserved(r);
}

INSTANTIATE_TEST_SUITE_P(
    AllWalkers, AttributionMatrix,
    ::testing::Combine(::testing::ValuesIn(all_configs),
                       ::testing::Values(1, 4)),
    attrName);

/** Conservation must survive translation churn: shootdown rounds
 *  invalidate entries mid-run and refaults insert during measurement,
 *  exercising the walk paths that race invalidation. */
TEST(Attribution, ConservesUnderChurn)
{
    for (const int mlp : {1, 4}) {
        SimParams params = tinyParams(mlp);
        params.cores = 2;
        params.scale_denominator = 2048;
        params.churn =
            parseChurnSpec("migrate:3000:4,balloon:9000:16,batch:8");
        const SimResult r = runSim(
            makeConfig(ConfigId::NestedEcptThp), params, "GUPS");
        ASSERT_GT(r.metrics.at("shootdown.rounds"), 0.0);
        expectConserved(r);
    }
}

/** Conservation must survive elastic resizes in the measured region:
 *  undersized tables with a low threshold, plus balloon churn so
 *  inserts (and therefore resizes) keep landing mid-measurement,
 *  exercising the two-generation rehash probe paths. */
TEST(Attribution, ConservesUnderForcedResizes)
{
    for (const int mlp : {1, 4}) {
        ExperimentConfig cfg = makeConfig(ConfigId::NestedEcptThp);
        cfg.system.guest_ecpt.initial_slots = {64, 64, 64};
        cfg.system.guest_ecpt.resize_threshold = 0.3;
        cfg.system.host_ecpt.initial_slots = {64, 64, 64};
        cfg.system.host_ecpt.resize_threshold = 0.3;
        SimParams params = tinyParams(mlp);
        params.cores = 2;
        params.scale_denominator = 2048;
        params.churn =
            parseChurnSpec("migrate:3000:4,balloon:9000:16,batch:8");
        const SimResult r = runSim(cfg, params, "GUPS");
        expectConserved(r);
    }
}

/** Disabling attribution zeroes the bins (every charge a dead branch)
 *  while the timing result stays byte-identical. */
TEST(Attribution, DisabledIsFreeAndIdentical)
{
    SimParams on = tinyParams(4);
    SimParams off = on;
    off.attribution = false;
    const auto cfg = makeConfig(ConfigId::NestedEcptThp);
    const SimResult r_on = runSim(cfg, on, "GUPS");
    const SimResult r_off = runSim(cfg, off, "GUPS");

    EXPECT_EQ(r_on.cycles, r_off.cycles);
    EXPECT_EQ(r_on.walks, r_off.walks);
    EXPECT_EQ(r_on.mmu_busy_cycles, r_off.mmu_busy_cycles);

    expectConserved(r_on);
    EXPECT_EQ(r_off.metrics.at("attr.total.cycles"), 0.0);
    for (int c = 0; c < num_attr_causes; ++c) {
        const std::string an =
            std::string("attr.")
            + attrCauseName(static_cast<AttrCause>(c));
        EXPECT_EQ(r_off.metrics.at(an + ".cycles"), 0.0);
        EXPECT_EQ(r_off.metrics.at(an + ".share"), 0.0);
    }
}

} // namespace necpt
