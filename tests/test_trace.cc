/** @file Unit tests for the walk-level event tracer and its writers. */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/trace_events.hh"
#include "exec/engine.hh"

namespace necpt
{

namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

TEST(TraceBuffer, DisabledBufferIsInert)
{
    // The zero-overhead contract with tracing off: every operation on
    // a default-constructed buffer is a no-op and records nothing.
    TraceBuffer t;
    EXPECT_FALSE(t.enabled());
    EXPECT_FALSE(t.beginWalk());
    EXPECT_FALSE(t.walkActive());
    t.span("walk", TraceCat::Walk, 0, 10, 5);
    t.instant("probe", TraceCat::Probe, 0, 10);
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.dropped(), 0u);
    EXPECT_EQ(t.walksSampled(), 0u);
}

TEST(TraceBuffer, RingOverwritesOldest)
{
    TraceBuffer t(4);
    for (int i = 0; i < 6; ++i)
        t.instant("e", TraceCat::Walk, 0,
                  static_cast<Cycles>(i));
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.dropped(), 2u);
    // Oldest surviving event is the third emitted (ts == 2).
    EXPECT_EQ(t.event(0).ts, 2u);
    EXPECT_EQ(t.event(3).ts, 5u);
}

TEST(TraceBuffer, WalkSampling)
{
    TraceBuffer t(64, 2); // every 2nd walk
    EXPECT_TRUE(t.beginWalk());
    EXPECT_TRUE(t.walkActive());
    t.endWalk();
    EXPECT_FALSE(t.beginWalk());
    EXPECT_TRUE(t.beginWalk());
    t.endWalk();
    EXPECT_EQ(t.walksSampled(), 2u);

    // sample_every == 0 disables walks without disabling the buffer.
    TraceBuffer none(64, 0);
    EXPECT_TRUE(none.enabled());
    EXPECT_FALSE(none.beginWalk());
}

TEST(TraceBuffer, ArgsAreCappedAtFour)
{
    TraceBuffer t(4);
    t.instant("e", TraceCat::Walk, 0, 0,
              {{"a", 1}, {"b", 2}, {"c", 3}, {"d", 4}, {"e", 5}});
    EXPECT_EQ(t.size(), 1u);
    EXPECT_EQ(t.event(0).nargs, 4);
}

TEST(ChromeTrace, WriterEmitsValidStructure)
{
    TraceBuffer t(16);
    t.setPid(3);
    t.span("walk", TraceCat::Walk, 0, 100, 40, {{"accesses", 3}});
    t.instant("probe", TraceCat::Probe, 0, 105,
              {{"way", 1}, {"kind", 0, "pte"}});
    const std::string path = "test_trace_out.json";
    ASSERT_TRUE(writeChromeTrace(path, t, "job-a"));
    const std::string json = readFile(path);
    std::remove(path.c_str());

    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(json.find("\"name\":\"walk\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\":40"), std::string::npos);
    EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
    // Instants carry the scope field, text args serialize as strings.
    EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\":\"pte\""), std::string::npos);
    // The process-name metadata record names the lane.
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("job-a"), std::string::npos);
}

TEST(ChromeTrace, CanonicalDropsWallClockSpans)
{
    TraceBuffer t(16);
    t.instant("cwc.hit", TraceCat::Cwc, 0, 10);
    t.wallSpan("job.run", 0, 1234);
    const std::string path = "test_trace_canon.json";
    ASSERT_TRUE(writeChromeTrace(path, t, "lane", /*canonical=*/true));
    const std::string canon = readFile(path);
    ASSERT_TRUE(writeChromeTrace(path, t, "lane", /*canonical=*/false));
    const std::string full = readFile(path);
    std::remove(path.c_str());

    EXPECT_EQ(canon.find("job.run"), std::string::npos);
    EXPECT_NE(full.find("job.run"), std::string::npos);
    EXPECT_NE(canon.find("cwc.hit"), std::string::npos);
}

namespace
{

/** A cheap deterministic grid: each job emits events derived from its
 *  seed through the real JobContext::tracer plumbing. */
std::vector<JobSpec>
syntheticTracedJobs(int n)
{
    std::vector<JobSpec> jobs;
    for (int i = 0; i < n; ++i) {
        JobSpec spec;
        spec.key = "trace/" + std::to_string(i);
        spec.fn = [](const JobContext &ctx) {
            JobOutput out;
            out.sim.cycles = static_cast<Cycles>(ctx.seed % 1000);
            if (ctx.tracer) {
                ctx.tracer->beginWalk();
                for (int e = 0; e < 8; ++e)
                    ctx.tracer->instant(
                        "probe", TraceCat::Probe, 0,
                        static_cast<Cycles>(ctx.seed % 97 + e),
                        {{"way", e}});
                ctx.tracer->endWalk();
            }
            return out;
        };
        jobs.push_back(std::move(spec));
    }
    return jobs;
}

std::string
runTracedSweep(int workers, const std::string &path)
{
    SweepOptions opts;
    opts.jobs = workers;
    opts.progress = nullptr;
    opts.trace_capacity = 256;
    const SweepEngine engine(opts);
    const ResultSink sink = engine.run(syntheticTracedJobs(5));
    EXPECT_EQ(sink.okCount(), 5u);
    EXPECT_TRUE(sink.writeTrace(path, /*canonical=*/true));
    const std::string json = readFile(path);
    std::remove(path.c_str());
    return json;
}

} // namespace

TEST(ChromeTrace, SweepTraceIsWorkerCountInvariant)
{
    // The determinism contract: lanes sit at their submission index
    // and canonical export drops wall-clock spans, so 1 worker and 8
    // workers write byte-identical files.
    const std::string serial =
        runTracedSweep(1, "test_trace_j1.json");
    const std::string parallel =
        runTracedSweep(8, "test_trace_j8.json");
    EXPECT_EQ(serial, parallel);
    EXPECT_NE(serial.find("\"pid\":4"), std::string::npos);
    // The engine's deterministic job span survives canonical export.
    EXPECT_NE(serial.find("\"name\":\"job\""), std::string::npos);
    EXPECT_EQ(serial.find("job.queue"), std::string::npos);
}

TEST(ChromeTrace, TimedOutJobCarriesNoTrace)
{
    SweepOptions opts;
    opts.jobs = 1;
    opts.progress = nullptr;
    opts.trace_capacity = 64;
    opts.timeout_ms = 50;
    std::vector<JobSpec> jobs;
    JobSpec spec;
    spec.key = "hang";
    spec.fn = [](const JobContext &) {
        std::this_thread::sleep_for(std::chrono::seconds(2));
        return JobOutput{};
    };
    jobs.push_back(std::move(spec));
    const SweepEngine engine(opts);
    const ResultSink sink = engine.run(jobs);
    ASSERT_EQ(sink.size(), 1u);
    EXPECT_EQ(sink.records()[0].status, JobStatus::TimedOut);
    // The detached runner still owns its buffer; the record must not.
    EXPECT_EQ(sink.records()[0].trace, nullptr);
    EXPECT_FALSE(sink.writeTrace("test_trace_none.json"));
    // Give the detached runner time to finish before test teardown.
    std::this_thread::sleep_for(std::chrono::seconds(2));
}

} // namespace necpt
