/**
 * @file
 * Heap-allocation assertions for the steady-state translation path.
 *
 * This binary replaces the global allocation functions with counting
 * wrappers and asserts that, once warmed, the structures on the
 * per-access path perform ZERO heap allocations:
 *
 *   - SetAssocCache access/fill/contains/invalidate (packed arrays),
 *   - HashFamily::hashAll (pure arithmetic),
 *   - cuckoo find + probeAddrs into a reused caller buffer,
 *   - MemoryHierarchy batchAccess/issueBatch/drain (pooled PendingTxns,
 *     scratch line buffers),
 *   - a full NestedEcptWalker::translate on resident pages (pooled walk
 *     machines, per-machine ProbeScratch).
 *
 * Each test warms the structure first — pools and scratch buffers are
 * allowed to grow to their high-water mark — then snapshots the global
 * counter around the measured loop. The simulator's event scheduler is
 * covered indirectly: its inline Handler storage is enforced by
 * static_asserts in sim/sched.hh, and its heap vector reaches steady
 * capacity during warm-up just like the pools here.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/hash.hh"
#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "pt/cuckoo.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"
#include "tests/test_util.hh"

namespace
{
std::atomic<std::uint64_t> g_news{0};
/** Allocations performed by the calling thread alone. Subtracting the
 *  caller's share from the global count isolates what every *other*
 *  thread allocated — the measurement behind the pump-worker test. */
thread_local std::uint64_t t_news = 0;
}

void *
operator new(std::size_t size)
{
    g_news.fetch_add(1, std::memory_order_relaxed);
    ++t_news;
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc{};
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace necpt
{

namespace
{

/** Allocations performed by @p body (gtest machinery stays outside). */
template <typename Fn>
std::uint64_t
allocationsDuring(Fn &&body)
{
    const std::uint64_t before = g_news.load(std::memory_order_relaxed);
    body();
    return g_news.load(std::memory_order_relaxed) - before;
}

/** Allocations performed by threads OTHER than the calling one while
 *  @p body ran: global count minus the caller's thread-local share. */
template <typename Fn>
std::uint64_t
offThreadAllocationsDuring(Fn &&body)
{
    const std::uint64_t g0 = g_news.load(std::memory_order_relaxed);
    const std::uint64_t t0 = t_news;
    body();
    const std::uint64_t g1 = g_news.load(std::memory_order_relaxed);
    return (g1 - g0) - (t_news - t0);
}

} // namespace

TEST(HotPathAlloc, SetAssocCacheSteadyStateIsAllocationFree)
{
    SetAssocCache cache(CacheConfig{"l2", 32 * 1024, 8, 16, 4});
    // Warm: stream enough lines through to exercise fills and
    // evictions in every set.
    for (Addr a = 0; a < 256 * 1024; a += 64)
        if (!cache.access(a, Requester::Core))
            cache.fill(a);

    const std::uint64_t allocs = allocationsDuring([&] {
        for (int round = 0; round < 4; ++round) {
            for (Addr a = 0; a < 256 * 1024; a += 64) {
                if (!cache.access(a, Requester::Mmu))
                    cache.fill(a);
                (void)cache.contains(a);
            }
            cache.invalidate(0x1000);
        }
    });
    EXPECT_EQ(allocs, 0u);
}

TEST(HotPathAlloc, HashAllIsAllocationFree)
{
    HashFamily family(0xF00D, 3);
    std::uint64_t out[HashFamily::max_ways];
    const std::uint64_t allocs = allocationsDuring([&] {
        std::uint64_t sink = 0;
        for (std::uint64_t key = 0; key < 100'000; ++key) {
            family.hashAll(PageSize::Page4K, key, 3, out);
            sink ^= out[0] ^ out[1] ^ out[2];
        }
        ASSERT_NE(sink, 0u);
    });
    EXPECT_EQ(allocs, 0u);
}

TEST(HotPathAlloc, CuckooFindAndProbeAddrsAreAllocationFree)
{
    BumpAllocator alloc;
    CuckooConfig cfg;
    cfg.ways = 3;
    cfg.initial_slots = 1024;
    cfg.slot_bytes = 64;
    ElasticCuckooTable<std::uint64_t> table(alloc, cfg);
    for (std::uint64_t k = 0; k < 400; ++k)
        table.insert(k, k);

    // The caller-owned probe buffer reaches capacity on the warm pass.
    std::vector<Addr> probes;
    const std::uint64_t all_ways = (1u << cfg.ways) - 1;
    probes.clear();
    table.probeAddrs(0, all_ways, probes);

    const std::uint64_t allocs = allocationsDuring([&] {
        for (int round = 0; round < 10; ++round) {
            for (std::uint64_t k = 0; k < 400; ++k) {
                ASSERT_TRUE(table.find(k));
                probes.clear();
                table.probeAddrs(k, all_ways, probes);
                ASSERT_FALSE(probes.empty());
            }
        }
    });
    EXPECT_EQ(allocs, 0u);
}

TEST(HotPathAlloc, HierarchySteadyStateIsAllocationFree)
{
    MemHierarchyConfig cfg;
    cfg.l1 = {"L1", 4096, 2, 2, 4};
    cfg.l2 = {"L2", 16384, 4, 16, 4};
    cfg.l3 = {"L3", 65536, 8, 56, 8};
    MemoryHierarchy mem(cfg, 1);

    std::vector<Addr> batch;
    for (int i = 0; i < 6; ++i)
        batch.push_back(0x100000 + static_cast<Addr>(i) * 8192);

    BatchResult result{};
    Cycles done_at = 0;
    auto capture = [&](const BatchResult &b, Cycles at) {
        result = b;
        done_at = at;
    };

    // Warm both paths: cache fills, MSHR interval lists, the pending
    // transaction list, and the PendingTxn pool all reach capacity.
    Cycles now = 0;
    for (int round = 0; round < 4; ++round) {
        mem.batchAccess(batch, now, 0);
        mem.issueBatch(batch, now + 100, 0, capture);
        mem.drainAll();
        now += 10'000;
    }

    const std::uint64_t allocs = allocationsDuring([&] {
        for (int round = 0; round < 50; ++round) {
            const BatchResult sync = mem.batchAccess(batch, now, 0);
            ASSERT_GT(sync.requests, 0);
            mem.issueBatch(batch, now + 100, 0, capture);
            mem.drainAll();
            ASSERT_EQ(result.requests, sync.requests);
            ASSERT_GT(done_at, 0u);
            now += 10'000;
        }
    });
    EXPECT_EQ(allocs, 0u);
}

TEST(HotPathAlloc, NestedEcptWalkSteadyStateIsAllocationFree)
{
    SimParams params;
    params.warmup_accesses = 500;
    params.measure_accesses = 2000;
    Simulator sim(makeConfig(ConfigId::NestedEcpt), params);
    // One full run builds the machine and warms every pool, cache,
    // scratch buffer, and the walkers' machine arenas.
    sim.run("GUPS");

    // Translate resident pages directly — the per-access hot path an
    // L2-TLB miss takes, including all three nested steps' probe
    // batches and background CWC refill traffic.
    const Addr base = sim.system().mmapRegion(64 * 4096);
    std::vector<Addr> vas;
    for (int i = 0; i < 64; ++i)
        vas.push_back(base + static_cast<Addr>(i) * 4096);
    for (Addr va : vas)
        sim.system().ensureResident(va);
    Cycles now = 1'000'000;
    for (Addr va : vas) { // warm pass: pools reach high-water mark
        sim.walker(0).translate(va, now);
        now += 1000;
    }

    const std::uint64_t allocs = allocationsDuring([&] {
        for (int round = 0; round < 10; ++round) {
            for (Addr va : vas) {
                const WalkResult w = sim.walker(0).translate(va, now);
                ASSERT_GT(w.latency, 0u);
                now += 1000;
            }
        }
    });
    EXPECT_EQ(allocs, 0u);
}

TEST(HotPathAlloc, PumpWorkerThreadsNeverAllocate)
{
    // Thread-sharded run: the EpochBarrier spawns worker threads that
    // refill the per-core lookahead rings during rendezvous windows
    // (workload stream advance + residency probes). Everything a
    // worker touches is pre-reserved — the ring vector, the walk-free
    // probe path — so once the machine is built, EVERY heap
    // allocation of the run must come from the coordinator thread.
    // The std::thread spawns themselves allocate on the constructing
    // (coordinator) thread, so the off-thread count has no expected
    // baseline to subtract: it must be exactly zero.
    SimParams params;
    params.warmup_accesses = 1000;
    params.measure_accesses = 5000;
    params.cores = 2;
    params.sim_threads = 2;
    params.scale_denominator = 64;
    Simulator sim(makeConfig(ConfigId::NestedEcpt), params);

    const std::uint64_t off_thread = offThreadAllocationsDuring([&] {
        const SimResult result = sim.run("GUPS");
        // 6000 accesses per core drain the 1024-entry rings several
        // times over, so worker refills demonstrably happened.
        ASSERT_GT(result.cycles, 0u);
    });
    EXPECT_EQ(off_thread, 0u);
}

TEST(HotPathAlloc, WalkWithAttributionDisabledIsAllocationFree)
{
    // The attribution ledgers are compiled into every walk either way;
    // disabling must leave each charge a dead branch with no heap
    // traffic — same warm-then-measure protocol as above.
    SimParams params;
    params.warmup_accesses = 500;
    params.measure_accesses = 2000;
    params.attribution = false;
    Simulator sim(makeConfig(ConfigId::NestedEcpt), params);
    sim.run("GUPS");

    const Addr base = sim.system().mmapRegion(64 * 4096);
    std::vector<Addr> vas;
    for (int i = 0; i < 64; ++i)
        vas.push_back(base + static_cast<Addr>(i) * 4096);
    for (Addr va : vas)
        sim.system().ensureResident(va);
    Cycles now = 1'000'000;
    for (Addr va : vas) {
        sim.walker(0).translate(va, now);
        now += 1000;
    }

    const std::uint64_t allocs = allocationsDuring([&] {
        for (int round = 0; round < 10; ++round) {
            for (Addr va : vas) {
                const WalkResult w = sim.walker(0).translate(va, now);
                ASSERT_GT(w.latency, 0u);
                now += 1000;
            }
        }
    });
    EXPECT_EQ(allocs, 0u);
}

} // namespace necpt
