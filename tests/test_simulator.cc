/** @file End-to-end simulator tests: determinism, sanity, and the
 *  paper's headline ordering on a scaled-down run. */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "sim/experiment.hh"
#include "sim/simulator.hh"

namespace necpt
{

namespace
{
SimParams
quickParams()
{
    SimParams params;
    params.warmup_accesses = 20'000;
    params.measure_accesses = 60'000;
    params.scale_denominator = 256;
    return params;
}
} // namespace

TEST(Simulator, RunsAndPopulatesResult)
{
    const auto cfg = makeConfig(ConfigId::NestedEcptThp);
    const SimResult r = runSim(cfg, quickParams(), "GUPS");
    EXPECT_GT(r.instructions, 100'000u);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.walks, 0u);
    EXPECT_GT(r.mmu_busy_cycles, 0u);
    EXPECT_GT(r.mmu_rpki, 0.0);
    EXPECT_GT(r.l2_tlb_misses, 0u);
    EXPECT_GE(r.stc_hit_rate, 0.0);
    EXPECT_GT(r.pte_bytes_total, 0u);
    EXPECT_EQ(r.app, "GUPS");
}

TEST(Simulator, Deterministic)
{
    const auto cfg = makeConfig(ConfigId::NestedRadix);
    const SimResult a = runSim(cfg, quickParams(), "BFS");
    const SimResult b = runSim(cfg, quickParams(), "BFS");
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.walks, b.walks);
    EXPECT_EQ(a.mmu_busy_cycles, b.mmu_busy_cycles);
}

TEST(Simulator, AllTable1ConfigsRun)
{
    for (const ConfigId id : table1Configs()) {
        const SimResult r =
            runSim(makeConfig(id), quickParams(), "BFS");
        EXPECT_GT(r.cycles, 0u) << configName(id);
        EXPECT_GT(r.walks, 0u) << configName(id);
    }
}

TEST(Simulator, BaselineConfigsRun)
{
    for (const ConfigId id :
         {ConfigId::PlainNestedEcptThp, ConfigId::AgilePagingIdealThp,
          ConfigId::PomTlbThp, ConfigId::FlatNestedThp}) {
        const SimResult r =
            runSim(makeConfig(id), quickParams(), "MUMmer");
        EXPECT_GT(r.cycles, 0u) << configName(id);
    }
}

/** The paper's central claim, on a tiny run: Nested ECPTs beat Nested
 *  Radix on the TLB-hostile GUPS. */
TEST(Simulator, NestedEcptBeatsNestedRadixOnGups)
{
    SimParams params = quickParams();
    params.measure_accesses = 120'000;
    const SimResult radix =
        runSim(makeConfig(ConfigId::NestedRadix), params, "GUPS");
    const SimResult ecpt =
        runSim(makeConfig(ConfigId::NestedEcpt), params, "GUPS");
    EXPECT_LT(ecpt.cycles, radix.cycles);
    // And it spends fewer MMU busy cycles (Figure 10).
    EXPECT_LT(ecpt.mmu_busy_cycles, radix.mmu_busy_cycles);
}

TEST(Simulator, NativeFasterThanNested)
{
    const SimResult native =
        runSim(makeConfig(ConfigId::Radix), quickParams(), "BFS");
    const SimResult nested =
        runSim(makeConfig(ConfigId::NestedRadix), quickParams(), "BFS");
    EXPECT_LT(native.cycles, nested.cycles);
}

TEST(Simulator, ThpReducesWalks)
{
    const SimResult flat =
        runSim(makeConfig(ConfigId::NestedRadix), quickParams(), "GUPS");
    const SimResult thp = runSim(makeConfig(ConfigId::NestedRadixThp),
                                 quickParams(), "GUPS");
    // GUPS is fully huge-page friendly: far fewer L2 TLB misses.
    EXPECT_LT(thp.l2_tlb_misses, flat.l2_tlb_misses / 2);
    EXPECT_LT(thp.cycles, flat.cycles);
}

TEST(Simulator, WalkKindsPopulatedForNestedEcpt)
{
    const SimResult r = runSim(makeConfig(ConfigId::NestedEcptThp),
                               quickParams(), "GUPS");
    double gsum = 0, hsum = 0;
    for (int k = 0; k < 4; ++k) {
        gsum += r.guest_kind_frac[k];
        hsum += r.host_kind_frac[k];
    }
    EXPECT_NEAR(gsum, 1.0, 1e-9);
    EXPECT_NEAR(hsum, 1.0, 1e-9);
    // Steps report sensible parallel-access counts.
    for (int s = 0; s < 3; ++s)
        EXPECT_GE(r.step_avg[s], 1.0);
}

/** Overlapped walks (max_outstanding_walks > 1) stay a pure function
 *  of the inputs: the event scheduler's (cycle, priority, sequence)
 *  order admits no wall-clock or iteration-order nondeterminism. */
TEST(Simulator, OverlappedWalksDeterministic)
{
    SimParams params = quickParams();
    params.max_outstanding_walks = 4;
    const auto cfg = makeConfig(ConfigId::NestedEcpt);
    const SimResult a = runSim(cfg, params, "GUPS");
    const SimResult b = runSim(cfg, params, "GUPS");
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.walks, b.walks);
    EXPECT_EQ(a.mmu_busy_cycles, b.mmu_busy_cycles);
    EXPECT_DOUBLE_EQ(a.walk_inflight_avg, b.walk_inflight_avg);
    EXPECT_EQ(a.walk_inflight_max, b.walk_inflight_max);
}

/** The 8-core contention smoke: with the cap at 4 the cores really do
 *  keep multiple walks in flight (walk.inflight > 1), and raising the
 *  cap never slows the machine down relative to serialized walks. */
TEST(Simulator, OverlappedWalksShowConcurrency)
{
    SimParams params = quickParams();
    params.cores = 8;
    params.warmup_accesses = 4'000;
    params.measure_accesses = 12'000;
    ExperimentConfig cfg = makeConfig(ConfigId::NestedEcpt);
    configureSharedResources(cfg, 8);

    const SimResult serial = runSim(cfg, params, "GUPS");
    params.max_outstanding_walks = 4;
    const SimResult mlp = runSim(cfg, params, "GUPS");

    EXPECT_GT(mlp.walk_inflight_avg, 1.0);
    EXPECT_GT(mlp.walk_inflight_max, 1u);
    EXPECT_DOUBLE_EQ(mlp.metrics.at("walk.inflight"),
                     mlp.walk_inflight_avg);
    // Overlapping independent misses can only help execution time.
    EXPECT_LT(mlp.cycles, serial.cycles);
    // Concurrent walks for one page are not coalesced (GUPS's
    // read-modify-write pairs re-walk a page whose first walk is
    // still in flight), so the walk count can only grow.
    EXPECT_GE(mlp.walks, serial.walks);
}

TEST(Simulator, InvalidOutstandingWalksRejected)
{
    SimParams params = quickParams();
    params.max_outstanding_walks = 0;
    EXPECT_THROW(
        Simulator(makeConfig(ConfigId::NestedEcpt), params),
        ConfigError);
}

TEST(ExperimentHelpers, GridAndSpeedup)
{
    SimParams params = quickParams();
    params.measure_accesses = 30'000;
    const auto grid = runGrid({makeConfig(ConfigId::NestedRadix),
                               makeConfig(ConfigId::NestedEcpt)},
                              {"BFS"}, params);
    EXPECT_TRUE(grid.has("Nested Radix", "BFS"));
    const double s =
        speedupOver(grid, "Nested Radix", "Nested ECPTs", "BFS");
    EXPECT_GT(s, 0.5);
    EXPECT_LT(s, 3.0);
}

TEST(ExperimentHelpers, EnvDefaults)
{
    const SimParams params = paramsFromEnv();
    EXPECT_GT(params.measure_accesses, 0u);
    EXPECT_GE(appsFromEnv().size(), 1u);
    EXPECT_GE(jobsFromEnv(), 1);
}

TEST(ExperimentHelpers, ParallelGridMatchesSerial)
{
    SimParams params = quickParams();
    params.measure_accesses = 20'000;
    const std::vector<ExperimentConfig> configs = {
        makeConfig(ConfigId::NestedRadix),
        makeConfig(ConfigId::NestedEcpt),
    };
    const std::vector<std::string> apps = {"BFS", "GUPS"};

    setenv("NECPT_JOBS", "1", 1);
    const ResultGrid serial = runGrid(configs, apps, params);
    setenv("NECPT_JOBS", "4", 1);
    const ResultGrid parallel = runGrid(configs, apps, params);
    unsetenv("NECPT_JOBS");

    for (const auto &cfg : configs) {
        for (const auto &app : apps) {
            EXPECT_EQ(serial.at(cfg.name, app).cycles,
                      parallel.at(cfg.name, app).cycles)
                << cfg.name << "/" << app;
            EXPECT_EQ(serial.at(cfg.name, app).walks,
                      parallel.at(cfg.name, app).walks);
        }
    }
}

} // namespace necpt
