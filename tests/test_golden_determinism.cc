/**
 * @file
 * Golden determinism pin for the timing core.
 *
 * Runs a short Nested-ECPT simulation at mlp=1 (serialized walks, the
 * legacy path) and mlp=4 (overlapped walk machines, the memory pump)
 * and compares the full scalar metric snapshot — every counter, rate,
 * and histogram summary the registry exports, plus the headline
 * SimResult fields — byte for byte against a checked-in golden. Any
 * change to simulated behavior (cache replacement, hashing, probe
 * generation, event ordering) shows up here as a text diff, which
 * keeps hot-path "optimizations" honest about being pure refactors.
 *
 * After an *intentional* behavior change, regenerate with
 *   NECPT_UPDATE_GOLDEN=1 ctest -R GoldenDeterminism
 * (writes tests/golden/ in the source tree) and commit the new files
 * alongside the change that explains them.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "coherence/churn.hh"
#include "common/metrics.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"

namespace necpt
{

namespace
{

/** Render the run's scalar state as sorted "name value" lines. */
std::string
renderSnapshot(int mlp, const std::string &churn = "",
               bool coalesce = false)
{
    SimParams params;
    params.warmup_accesses = 1000;
    params.measure_accesses = 5000;
    params.cores = 2;
    params.max_outstanding_walks = mlp;
    params.walk_coalescing = coalesce;
    // Shrink the GUPS footprint (Table-4 divisor) so machine build +
    // prefault stay test-sized; behavior coverage is unaffected.
    params.scale_denominator = 64;
    if (!churn.empty())
        params.churn = parseChurnSpec(churn);

    Simulator sim(makeConfig(ConfigId::NestedEcpt), params);
    const SimResult result = sim.run("GUPS");

    MetricsRegistry reg;
    sim.exportMetrics(reg);

    std::ostringstream out;
    char value[64];
    auto emit = [&](const std::string &name, double v) {
        // %.17g round-trips doubles exactly: the golden pins the bits.
        std::snprintf(value, sizeof value, "%.17g", v);
        out << name << " " << value << "\n";
    };
    emit("result.cycles", static_cast<double>(result.cycles));
    emit("result.instructions", static_cast<double>(result.instructions));
    emit("result.walks", static_cast<double>(result.walks));
    emit("result.mmu_requests", static_cast<double>(result.mmu_requests));
    emit("result.mmu_busy_cycles",
         static_cast<double>(result.mmu_busy_cycles));
    for (const auto &[name, v] : reg.scalarSnapshot())
        emit(name, v);
    return out.str();
}

std::string
goldenPath(int mlp, bool churn, bool coalesce)
{
    return std::string(NECPT_SOURCE_DIR) + "/tests/golden/determinism_"
        + (churn ? "churn_" : "") + (coalesce ? "coalesce_" : "") + "mlp"
        + std::to_string(mlp) + ".txt";
}

void
checkAgainstGolden(int mlp, const std::string &churn = "",
                   bool coalesce = false)
{
    const std::string snapshot = renderSnapshot(mlp, churn, coalesce);
    const std::string path = goldenPath(mlp, !churn.empty(), coalesce);

    if (std::getenv("NECPT_UPDATE_GOLDEN")) {
        std::ofstream out(path);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << snapshot;
        GTEST_SKIP() << "golden regenerated: " << path;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << "missing golden " << path
        << " — regenerate with NECPT_UPDATE_GOLDEN=1";
    std::stringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(golden.str(), snapshot)
        << "simulated behavior changed; if intentional, regenerate "
           "the goldens with NECPT_UPDATE_GOLDEN=1 and commit them";
}

} // namespace

TEST(GoldenDeterminism, SerializedWalksMatchGolden)
{
    checkAgainstGolden(1);
}

TEST(GoldenDeterminism, OverlappedWalksMatchGolden)
{
    checkAgainstGolden(4);
}

// With churn armed, the coherence subsystem joins the event loop:
// source firings, shootdown rounds, and walk replays are all pinned by
// the same snapshot contract.
TEST(GoldenDeterminism, ChurnSerializedWalksMatchGolden)
{
    checkAgainstGolden(1, "migrate:5000:8,balloon:20000:16,"
                          "protect:15000:4,batch:8");
}

TEST(GoldenDeterminism, ChurnOverlappedWalksMatchGolden)
{
    checkAgainstGolden(4, "migrate:5000:8,balloon:20000:16,"
                          "protect:15000:4,batch:8");
}

// Walk coalescing on (the headline mlp=4 configuration): same-page
// misses merge in the walk-MSHR instead of spawning duplicate
// machines. Pinned separately from the coalescing-off goldens above,
// which must not move when the feature ships or changes — off means
// byte-identical to the legacy path.
TEST(GoldenDeterminism, CoalescedOverlappedWalksMatchGolden)
{
    checkAgainstGolden(4, "", true);
}

TEST(GoldenDeterminism, ChurnCoalescedOverlappedWalksMatchGolden)
{
    checkAgainstGolden(4,
                       "migrate:5000:8,balloon:20000:16,"
                       "protect:15000:4,batch:8",
                       true);
}

} // namespace necpt
