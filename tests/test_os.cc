/** @file Unit tests for the OS/hypervisor substrate. */

#include <gtest/gtest.h>

#include "os/phys_pool.hh"
#include "os/system.hh"

namespace necpt
{

// ------------------------------------------------------------ PhysMemPool

TEST(PhysPool, FrameAlignment)
{
    PhysMemPool pool(0, 8ULL << 30);
    for (auto size : all_page_sizes) {
        const Addr frame = pool.allocFrame(size);
        EXPECT_EQ(frame % pageBytes(size), 0u)
            << pageSizeName(size);
    }
}

TEST(PhysPool, FrameReuseAfterFree)
{
    PhysMemPool pool(0, 1ULL << 30);
    const Addr a = pool.allocFrame(PageSize::Page4K);
    pool.freeFrame(a, PageSize::Page4K);
    EXPECT_EQ(pool.allocFrame(PageSize::Page4K), a);
}

TEST(PhysPool, RegionReuseExactSize)
{
    PhysMemPool pool(0, 1ULL << 30);
    const Addr r = pool.allocRegion(65536);
    pool.freeRegion(r, 65536);
    EXPECT_EQ(pool.allocRegion(65536), r);
    // A different size bumps fresh space.
    EXPECT_NE(pool.allocRegion(131072), r);
}

TEST(PhysPool, UsageAccounting)
{
    PhysMemPool pool(0, 1ULL << 30);
    pool.allocFrame(PageSize::Page2M);
    EXPECT_EQ(pool.usedBytes(), 2ULL << 20);
    pool.allocRegion(4096);
    EXPECT_EQ(pool.usedBytes(), (2ULL << 20) + 4096);
}

TEST(ScatteredAllocator, NodesComeFromFrameZoneAndRegister)
{
    PhysMemPool pool(0, 4ULL << 30);
    PtRegionRegistry registry;
    ScatteredPtAllocator alloc(pool, registry);
    // 4KB node allocations interleave with data frames...
    const Addr data1 = pool.allocFrame(PageSize::Page4K);
    const Addr node = alloc.allocRegion(4096);
    const Addr data2 = pool.allocFrame(PageSize::Page4K);
    EXPECT_EQ(node, data1 + 4096);
    EXPECT_EQ(data2, node + 4096);
    EXPECT_TRUE(registry.contains(node));
    // ...while large allocations are assembled from successive 4KB
    // frames (no contiguity assumed — the bump allocator just happens
    // to provide it here) and registered over their whole extent.
    const Addr big = alloc.allocRegion(1 << 20);
    EXPECT_EQ(big, data2 + 4096);
    EXPECT_TRUE(registry.contains(big));
    EXPECT_TRUE(registry.contains(big + (1 << 20) - 1));
    alloc.freeRegion(node, 4096);
    EXPECT_FALSE(registry.contains(node));
}

TEST(PhysPool, RegionZoneSeparateFromFrames)
{
    PhysMemPool pool(0, 4ULL << 30);
    const Addr frame = pool.allocFrame(PageSize::Page2M);
    const Addr region = pool.allocRegion(1 << 20);
    // Regions live in the top eighth of the pool.
    EXPECT_LT(frame, (4ULL << 30) * 7 / 8);
    EXPECT_GE(region, alignDown((4ULL << 30) * 7 / 8,
                                pageBytes(PageSize::Page1G)));
}

TEST(PtRegistry, ContainsRanges)
{
    PtRegionRegistry registry;
    registry.add(0x10000, 0x1000);
    registry.add(0x30000, 0x2000);
    EXPECT_TRUE(registry.contains(0x10000));
    EXPECT_TRUE(registry.contains(0x10FFF));
    EXPECT_FALSE(registry.contains(0x11000));
    EXPECT_TRUE(registry.contains(0x31234));
    EXPECT_FALSE(registry.contains(0x0));
    registry.remove(0x10000, 0x1000);
    EXPECT_FALSE(registry.contains(0x10000));
}

// ----------------------------------------------------------- NestedSystem

namespace
{
SystemConfig
smallSystem(PtKind guest, PtKind host, bool thp)
{
    SystemConfig cfg;
    cfg.guest_kind = guest;
    cfg.host_kind = host;
    cfg.guest_thp = thp;
    cfg.host_thp = thp;
    cfg.guest_phys_bytes = 2ULL << 30;
    cfg.host_phys_bytes = 3ULL << 30;
    cfg.guest_ecpt.initial_slots = {1024, 1024, 512};
    cfg.guest_ecpt.cwt_initial_slots = {256, 256, 128};
    cfg.host_ecpt = cfg.guest_ecpt;
    return cfg;
}
} // namespace

TEST(System, DemandPagingInstallsBothLevels)
{
    NestedSystem sys(smallSystem(PtKind::Ecpt, PtKind::Ecpt, false));
    const Addr base = sys.mmapRegion(16ULL << 20);
    EXPECT_TRUE(sys.ensureResident(base + 0x123));
    EXPECT_FALSE(sys.ensureResident(base + 0x123)); // second touch: hit
    const Translation g = sys.guestTranslate(base);
    ASSERT_TRUE(g.valid);
    const Translation full = sys.fullTranslate(base + 0x123);
    ASSERT_TRUE(full.valid);
    EXPECT_EQ(pageOffset(full.apply(base + 0x123), PageSize::Page4K),
              0x123u);
}

TEST(System, NativeModeIdentityHost)
{
    NestedSystem native([] {
        auto cfg = smallSystem(PtKind::Radix, PtKind::Radix, false);
        cfg.virtualized = false;
        return cfg;
    }());
    const Addr base = native.mmapRegion(1ULL << 20);
    native.ensureResident(base);
    const Translation g = native.guestTranslate(base);
    const Translation full = native.fullTranslate(base);
    ASSERT_TRUE(g.valid);
    EXPECT_EQ(g.pa, full.pa); // native: guest translation is final
}

TEST(System, ThpMapsHugePages)
{
    auto cfg = smallSystem(PtKind::Ecpt, PtKind::Ecpt, true);
    cfg.guest_thp_coverage = 1.0;
    cfg.host_thp_coverage = 1.0;
    NestedSystem sys(cfg);
    const Addr base = sys.mmapRegion(8ULL << 20, true);
    sys.ensureResident(base);
    const Translation g = sys.guestTranslate(base + 0x1000);
    ASSERT_TRUE(g.valid);
    EXPECT_EQ(g.size, PageSize::Page2M);
    const Translation full = sys.fullTranslate(base);
    EXPECT_EQ(full.size, PageSize::Page2M); // host also huge
}

TEST(System, ThpCoverageZeroFallsBackTo4K)
{
    auto cfg = smallSystem(PtKind::Ecpt, PtKind::Ecpt, true);
    cfg.guest_thp_coverage = 0.0;
    NestedSystem sys(cfg);
    const Addr base = sys.mmapRegion(8ULL << 20, true);
    sys.ensureResident(base);
    EXPECT_EQ(sys.guestTranslate(base).size, PageSize::Page4K);
}

TEST(System, ThpDecisionDeterministic)
{
    auto cfg = smallSystem(PtKind::Ecpt, PtKind::Ecpt, true);
    cfg.guest_thp_coverage = 0.5;
    NestedSystem a(cfg), b(cfg);
    const Addr base_a = a.mmapRegion(64ULL << 20, true);
    const Addr base_b = b.mmapRegion(64ULL << 20, true);
    ASSERT_EQ(base_a, base_b);
    for (Addr off = 0; off < (64ULL << 20); off += (2ULL << 20)) {
        a.ensureResident(base_a + off);
        b.ensureResident(base_b + off);
        EXPECT_EQ(a.guestTranslate(base_a + off).size,
                  b.guestTranslate(base_b + off).size);
    }
}

TEST(System, PageTablePagesBacked4K)
{
    auto cfg = smallSystem(PtKind::Ecpt, PtKind::Ecpt, true);
    cfg.host_thp_coverage = 1.0;
    NestedSystem sys(cfg);
    const Addr base = sys.mmapRegion(8ULL << 20);
    sys.ensureResident(base);
    // The guest ECPT's PTE table way 0 lives in a PT region...
    const Addr gecpt_gpa =
        sys.guestEcpt()->tableOf(PageSize::Page4K).wayBase(0);
    EXPECT_TRUE(sys.isPtRegion(gecpt_gpa));
    // ...and the hypervisor backs it with a 4KB page (Section 4.3)
    // even though host THP coverage is 100%.
    const Translation h = sys.hostTranslate(gecpt_gpa);
    ASSERT_TRUE(h.valid);
    EXPECT_EQ(h.size, PageSize::Page4K);
}

TEST(System, EffectivePageSizeIsMin)
{
    // Guest huge + host 4K => effective 4K TLB entry.
    auto cfg = smallSystem(PtKind::Ecpt, PtKind::Ecpt, true);
    cfg.guest_thp_coverage = 1.0;
    cfg.host_thp = false;
    NestedSystem sys(cfg);
    const Addr base = sys.mmapRegion(4ULL << 20, true);
    sys.ensureResident(base + 0x3000);
    const Translation full = sys.fullTranslate(base + 0x3000);
    ASSERT_TRUE(full.valid);
    EXPECT_EQ(full.size, PageSize::Page4K);
    EXPECT_EQ(sys.guestTranslate(base).size, PageSize::Page2M);
}

TEST(System, FaultCountsAdvance)
{
    NestedSystem sys(smallSystem(PtKind::Radix, PtKind::Radix, false));
    const Addr base = sys.mmapRegion(1ULL << 20);
    const auto g0 = sys.guestFaults();
    sys.ensureResident(base);
    sys.ensureResident(base + 4096);
    EXPECT_EQ(sys.guestFaults(), g0 + 2);
    EXPECT_GE(sys.hostFaults(), 2u);
}

TEST(System, StructureBytesReported)
{
    NestedSystem sys(smallSystem(PtKind::Ecpt, PtKind::Ecpt, false));
    const Addr base = sys.mmapRegion(1ULL << 20);
    sys.ensureResident(base);
    EXPECT_GT(sys.guestStructureBytes(), 0u);
    EXPECT_GT(sys.hostStructureBytes(), 0u);
    EXPECT_GT(sys.guestPteBytes(), 0u);
    EXPECT_GT(sys.hostPteBytes(), 0u);
}

TEST(System, MmapRegionsDisjoint)
{
    NestedSystem sys(smallSystem(PtKind::Ecpt, PtKind::Ecpt, false));
    const Addr a = sys.mmapRegion(10ULL << 20);
    const Addr b = sys.mmapRegion(10ULL << 20);
    EXPECT_GE(b, a + (10ULL << 20));
}

TEST(System, HostFlatBaseline)
{
    NestedSystem sys(smallSystem(PtKind::Radix, PtKind::Flat, false));
    ASSERT_NE(sys.hostFlat(), nullptr);
    const Addr base = sys.mmapRegion(1ULL << 20);
    sys.ensureResident(base);
    EXPECT_TRUE(sys.fullTranslate(base).valid);
}

} // namespace necpt
