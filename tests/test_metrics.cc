/** @file Unit tests for the unified metrics registry. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hh"
#include "common/metrics.hh"

namespace necpt
{

TEST(MetricsRegistry, ScalarSources)
{
    MetricsRegistry reg;
    std::uint64_t walks = 0;
    reg.addCounter("walk.walks", [&] { return walks; });
    reg.addValue("walk.rate", [&] { return walks * 0.5; });

    EXPECT_TRUE(reg.has("walk.walks"));
    EXPECT_FALSE(reg.has("walk.nope"));
    EXPECT_DOUBLE_EQ(reg.scalar("walk.walks"), 0.0);
    walks = 8;
    // Entries read the live source: no re-registration needed.
    EXPECT_DOUBLE_EQ(reg.scalar("walk.walks"), 8.0);
    EXPECT_DOUBLE_EQ(reg.scalar("walk.rate"), 4.0);
}

TEST(MetricsRegistry, HitMissConvenience)
{
    MetricsRegistry reg;
    HitMiss hm;
    hm.hit(3);
    hm.miss();
    reg.addHitMiss("cwc.pte", &hm);
    EXPECT_DOUBLE_EQ(reg.scalar("cwc.pte.hits"), 3.0);
    EXPECT_DOUBLE_EQ(reg.scalar("cwc.pte.misses"), 1.0);
    EXPECT_DOUBLE_EQ(reg.scalar("cwc.pte.hitrate"), 0.75);
}

TEST(MetricsRegistry, DuplicateNameThrows)
{
    MetricsRegistry reg;
    reg.addCounter("cuckoo.kicks", [] { return 0ULL; });
    EXPECT_THROW(reg.addCounter("cuckoo.kicks", [] { return 1ULL; }),
                 InvariantViolation);
    EXPECT_THROW(reg.addValue("cuckoo.kicks", [] { return 1.0; }),
                 InvariantViolation);
    // A HitMiss prefix colliding with an existing leaf throws too.
    HitMiss hm;
    reg.addCounter("stc.hits", [] { return 0ULL; });
    EXPECT_THROW(reg.addHitMiss("stc", &hm), InvariantViolation);
}

TEST(MetricsRegistry, ScalarErrors)
{
    MetricsRegistry reg;
    Histogram hist(10, 4);
    reg.addHistogram("walk.latency", &hist);
    EXPECT_THROW(reg.scalar("unknown.name"), InvariantViolation);
    EXPECT_THROW(reg.scalar("walk.latency"), InvariantViolation);
}

TEST(MetricsRegistry, ScalarSnapshotSummarizesDistributions)
{
    MetricsRegistry reg;
    Histogram hist(10, 4);
    hist.sample(5);
    hist.sample(15);
    RateMonitor mon(100);
    mon.record(0, true);
    mon.record(150, false); // completes window [0,100) at rate 1.0
    reg.addCounter("dram.reads", [] { return 7ULL; });
    reg.addHistogram("walk.latency", &hist);
    reg.addRates("adaptive.pte.window_rates", &mon);

    const auto snap = reg.scalarSnapshot();
    EXPECT_DOUBLE_EQ(snap.at("dram.reads"), 7.0);
    EXPECT_DOUBLE_EQ(snap.at("walk.latency.mean"), 10.0);
    EXPECT_DOUBLE_EQ(snap.at("walk.latency.max"), 15.0);
    EXPECT_DOUBLE_EQ(snap.at("adaptive.pte.window_rates.last"), 1.0);
}

TEST(MetricsRegistry, JsonIsCanonicalAndSorted)
{
    MetricsRegistry reg;
    reg.addCounter("b.count", [] { return 2ULL; });
    reg.addValue("a.rate", [] { return 0.25; }, "a doc line");
    const std::string json = reg.toJson();

    EXPECT_NE(json.find("\"schema\":\"necpt-stats-v1\""),
              std::string::npos);
    // std::map ordering: "a.rate" must precede "b.count".
    EXPECT_LT(json.find("\"a.rate\""), json.find("\"b.count\""));
    EXPECT_NE(json.find("\"desc\":\"a doc line\""), std::string::npos);
    // Identical registries dump identical bytes.
    EXPECT_EQ(json, reg.toJson());
}

TEST(MetricsRegistry, WriteJsonRoundTrip)
{
    MetricsRegistry reg;
    Histogram hist(20, 3);
    hist.sample(25);
    reg.addHistogram("walk.latency", &hist,
                     "walk latency distribution");
    const std::string path = "test_metrics_dump.json";
    ASSERT_TRUE(reg.writeJson(path));
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), reg.toJson());
    std::remove(path.c_str());
}

} // namespace necpt
