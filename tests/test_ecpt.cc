/** @file Unit + property tests for the composed ECPT page table. */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hh"
#include "pt/ecpt.hh"
#include "tests/test_util.hh"

namespace necpt
{

namespace
{
EcptConfig
smallEcpt(bool pte_cwt = false)
{
    EcptConfig cfg;
    cfg.initial_slots = {256, 256, 128};
    cfg.cwt_initial_slots = {128, 128, 64};
    cfg.has_pte_cwt = pte_cwt;
    return cfg;
}
} // namespace

TEST(Ecpt, MapLookupAllSizes)
{
    BumpAllocator alloc;
    EcptPageTable pt(alloc, smallEcpt());
    pt.map(0x1000, 0xA000, PageSize::Page4K);
    pt.map(0x4000'0000, 0x1'0020'0000, PageSize::Page2M);
    pt.map(0x40'0000'0000, 0x2'4000'0000, PageSize::Page1G);

    auto t4k = pt.lookup(0x1FFF);
    ASSERT_TRUE(t4k.valid);
    EXPECT_EQ(t4k.size, PageSize::Page4K);
    EXPECT_EQ(t4k.apply(0x1FFF), 0xAFFFu);

    auto t2m = pt.lookup(0x4000'1234);
    ASSERT_TRUE(t2m.valid);
    EXPECT_EQ(t2m.size, PageSize::Page2M);

    auto t1g = pt.lookup(0x40'1234'5678);
    ASSERT_TRUE(t1g.valid);
    EXPECT_EQ(t1g.size, PageSize::Page1G);
    EXPECT_FALSE(pt.lookup(0x9'9999'9000).valid);
}

TEST(Ecpt, EightPagesShareOneBlock)
{
    BumpAllocator alloc;
    EcptPageTable pt(alloc, smallEcpt());
    // Map 8 consecutive 4KB pages: one cuckoo entry.
    for (int i = 0; i < 8; ++i)
        pt.map(0x10000 + static_cast<Addr>(i) * 4096,
               0xB0000 + static_cast<Addr>(i) * 4096, PageSize::Page4K);
    EXPECT_EQ(pt.tableOf(PageSize::Page4K).size(), 1u);
    EXPECT_EQ(pt.mappingCount(PageSize::Page4K), 8u);
    for (int i = 0; i < 8; ++i) {
        const auto r =
            pt.lookupSized(0x10000 + static_cast<Addr>(i) * 4096,
                           PageSize::Page4K);
        ASSERT_TRUE(r.translation.valid);
        EXPECT_EQ(r.translation.pa,
                  0xB0000u + static_cast<Addr>(i) * 4096);
    }
}

TEST(Ecpt, GuestHasNoPteCwt)
{
    BumpAllocator alloc;
    EcptPageTable pt(alloc, smallEcpt(false));
    EXPECT_EQ(pt.cwtOf(PageSize::Page4K), nullptr);
    EXPECT_NE(pt.cwtOf(PageSize::Page2M), nullptr);
    EXPECT_NE(pt.cwtOf(PageSize::Page1G), nullptr);
    EXPECT_FALSE(pt.hasPteCwt());
}

TEST(Ecpt, AdvancedHostHasPteCwt)
{
    BumpAllocator alloc;
    EcptPageTable pt(alloc, smallEcpt(true));
    EXPECT_NE(pt.cwtOf(PageSize::Page4K), nullptr);
    EXPECT_TRUE(pt.hasPteCwt());
}

TEST(Ecpt, CwtTracksHugePagePresence)
{
    BumpAllocator alloc;
    EcptPageTable pt(alloc, smallEcpt());
    pt.map(0x4000'0000, 0x1'0020'0000, PageSize::Page2M);
    const auto d = pt.cwtOf(PageSize::Page2M)->query(0x4000'0000);
    ASSERT_TRUE(d.has_value());
    EXPECT_TRUE(d->present);
    EXPECT_EQ(d->way, pt.tableOf(PageSize::Page2M)
                          .wayOf(pt.blockKey(0x4000'0000,
                                             PageSize::Page2M)));
}

TEST(Ecpt, CwtTracksHasSmaller)
{
    BumpAllocator alloc;
    EcptPageTable pt(alloc, smallEcpt());
    pt.map(0x1000, 0xA000, PageSize::Page4K);
    const auto pmd = pt.cwtOf(PageSize::Page2M)->query(0x1000);
    ASSERT_TRUE(pmd.has_value());
    EXPECT_TRUE(pmd->smaller_4k);
    EXPECT_FALSE(pmd->present);
    const auto pud = pt.cwtOf(PageSize::Page1G)->query(0x1000);
    ASSERT_TRUE(pud.has_value());
    EXPECT_TRUE(pud->smaller_4k);
    EXPECT_FALSE(pud->smaller_2m);
}

TEST(Ecpt, UnmapClearsMapping)
{
    BumpAllocator alloc;
    EcptPageTable pt(alloc, smallEcpt());
    pt.map(0x1000, 0xA000, PageSize::Page4K);
    pt.unmap(0x1000, PageSize::Page4K);
    EXPECT_FALSE(pt.lookup(0x1000).valid);
    EXPECT_EQ(pt.mappingCount(PageSize::Page4K), 0u);
    EXPECT_EQ(pt.tableOf(PageSize::Page4K).size(), 0u);
}

TEST(Ecpt, ProbeAddrsFindResidentEntry)
{
    BumpAllocator alloc;
    EcptPageTable pt(alloc, smallEcpt());
    pt.map(0x5000, 0xC000, PageSize::Page4K);
    const auto r = pt.lookupSized(0x5000, PageSize::Page4K);
    std::vector<Addr> probes;
    pt.probeAddrs(0x5000, PageSize::Page4K, pt.allWays(), probes);
    EXPECT_NE(std::find(probes.begin(), probes.end(), r.slot_addr),
              probes.end());
}

/**
 * The key CWT-coherence invariant: after thousands of inserts (with
 * cuckoo displacements and elastic resizes), every mapped huge page's
 * CWT way bits still point at the table way that holds it. This is
 * what lets Direct walks issue exactly one probe.
 */
TEST(Ecpt, CwtWaysCoherentAfterChurn)
{
    BumpAllocator alloc;
    EcptPageTable pt(alloc, smallEcpt());
    Rng rng(7);
    std::vector<Addr> mapped;
    for (int i = 0; i < 4000; ++i) {
        const Addr va = (rng.below(1ULL << 20)) << 21;
        pt.map(va, (rng.below(1ULL << 18)) << 21, PageSize::Page2M);
        mapped.push_back(va);
    }
    EXPECT_GT(pt.tableOf(PageSize::Page2M).resizeCount()
                  + pt.tableOf(PageSize::Page2M).rehashMoves(),
              0u);
    for (Addr va : mapped) {
        const auto d = pt.cwtOf(PageSize::Page2M)->query(va);
        ASSERT_TRUE(d.has_value());
        ASSERT_TRUE(d->present);
        const int actual_way = pt.tableOf(PageSize::Page2M)
                                   .wayOf(pt.blockKey(va,
                                                      PageSize::Page2M));
        EXPECT_EQ(d->way, actual_way) << "va " << std::hex << va;
    }
}

TEST(Ecpt, StructureBytesIncludeTablesAndCwts)
{
    BumpAllocator alloc;
    EcptPageTable pt(alloc, smallEcpt());
    EXPECT_GT(pt.structureBytes(), 0u);
    EXPECT_EQ(pt.cwtBytes(), 0u); // CWT chunks materialize on demand
    pt.map(0x4000'0000, 0x1'0020'0000, PageSize::Page2M);
    EXPECT_GT(pt.cwtBytes(), 0u);
    EXPECT_GT(pt.structureBytes(), pt.cwtBytes());
}

/** Random mixed-size mapping property test. */
TEST(Ecpt, RandomMixedSizesRoundTrip)
{
    BumpAllocator alloc;
    EcptPageTable pt(alloc, smallEcpt(true));
    Rng rng(99);
    struct Entry { Addr va; Addr pa; PageSize size; };
    std::vector<Entry> entries;
    // Use disjoint VA regions per size so mappings never overlap.
    for (int i = 0; i < 1500; ++i) {
        const int s = static_cast<int>(rng.below(3));
        const auto size = all_page_sizes[s];
        const Addr region = static_cast<Addr>(s + 1) << 40;
        const Addr va =
            region + (rng.below(1 << 16) << pageShift(size));
        const Addr pa = rng.below(1 << 14) << pageShift(size);
        pt.map(va, pa, size);
        entries.push_back({va, pa, size});
    }
    for (const auto &e : entries) {
        const auto r = pt.lookupSized(e.va, e.size);
        ASSERT_TRUE(r.translation.valid);
        EXPECT_EQ(r.translation.size, e.size);
    }
}

} // namespace necpt
