/** @file Unit + property tests for the elastic cuckoo hash table. */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "pt/cuckoo.hh"
#include "tests/test_util.hh"

namespace necpt
{

namespace
{

using Table = ElasticCuckooTable<std::uint64_t>;

CuckooConfig
tinyConfig(std::uint64_t slots = 64, int ways = 3)
{
    CuckooConfig cfg;
    cfg.ways = ways;
    cfg.initial_slots = slots;
    cfg.slot_bytes = 64;
    return cfg;
}

} // namespace

TEST(Cuckoo, InsertFindErase)
{
    BumpAllocator alloc;
    Table table(alloc, tinyConfig());
    table.insert(42, 4200);
    auto hit = table.find(42);
    ASSERT_TRUE(hit);
    EXPECT_EQ(*hit.value, 4200u);
    EXPECT_GE(hit.way, 0);
    EXPECT_LT(hit.way, 3);
    EXPECT_TRUE(table.erase(42));
    EXPECT_FALSE(table.find(42));
    EXPECT_FALSE(table.erase(42));
}

TEST(Cuckoo, UpdateInPlace)
{
    BumpAllocator alloc;
    Table table(alloc, tinyConfig());
    table.insert(7, 1);
    table.insert(7, 2);
    EXPECT_EQ(*table.find(7).value, 2u);
    EXPECT_EQ(table.size(), 1u);
}

TEST(Cuckoo, SlotAddrWithinWayRegion)
{
    BumpAllocator alloc(0x100000);
    Table table(alloc, tinyConfig(64, 3));
    table.insert(99, 1);
    const auto hit = table.find(99);
    const Addr base = table.wayBase(hit.way);
    EXPECT_GE(hit.slot_addr, base);
    EXPECT_LT(hit.slot_addr, base + 64 * table.slotBytes());
}

TEST(Cuckoo, ProbeAddrsCoverResidentSlot)
{
    BumpAllocator alloc;
    Table table(alloc, tinyConfig());
    for (std::uint64_t k = 0; k < 50; ++k)
        table.insert(k, k * 10);
    for (std::uint64_t k = 0; k < 50; ++k) {
        std::vector<Addr> probes;
        table.probeAddrs(k, (1u << table.numWays()) - 1, probes);
        const auto hit = table.find(k);
        ASSERT_TRUE(hit);
        EXPECT_NE(std::find(probes.begin(), probes.end(), hit.slot_addr),
                  probes.end());
    }
}

TEST(Cuckoo, ProbeMaskRestrictsWays)
{
    BumpAllocator alloc;
    Table table(alloc, tinyConfig(64, 3));
    std::vector<Addr> probes;
    table.probeAddrs(5, 0b010, probes);
    EXPECT_EQ(probes.size(), 1u); // one way, no resize in flight
    probes.clear();
    table.probeAddrs(5, 0b111, probes);
    EXPECT_EQ(probes.size(), 3u);
}

TEST(Cuckoo, DisplacementsReported)
{
    BumpAllocator alloc;
    CuckooConfig cfg = tinyConfig(32, 2);
    cfg.resize_threshold = 0.95; // force collisions before resizing
    Table table(alloc, cfg);
    std::map<std::uint64_t, int> way_of;
    auto record = [&](std::uint64_t key, int way) {
        way_of[key] = way;
    };
    table.setMoveCallback(record);
    for (std::uint64_t k = 0; k < 40; ++k)
        table.insert(k, k);
    // Every present key's callback-reported way matches reality.
    for (std::uint64_t k = 0; k < 40; ++k) {
        const auto hit = table.find(k);
        ASSERT_TRUE(hit);
        if (!hit.in_old_generation) {
            EXPECT_EQ(way_of[k], hit.way) << "key " << k;
        }
    }
    EXPECT_GT(table.rehashMoves(), 0u);
}

TEST(Cuckoo, ElasticResizeTriggersAtThreshold)
{
    BumpAllocator alloc;
    Table table(alloc, tinyConfig(32, 3));
    std::uint64_t k = 0;
    while (!table.resizing() && k < 1000)
        table.insert(k++, k);
    EXPECT_TRUE(table.resizing());
    // Load factor at trigger is near the 0.6 threshold.
    EXPECT_GT(static_cast<double>(k) / (32.0 * 3), 0.5);
    // During resize, probes cover both generations.
    std::vector<Addr> probes;
    table.probeAddrs(0, 0b111, probes);
    EXPECT_EQ(probes.size(), 6u);
}

TEST(Cuckoo, NoEntryLostAcrossResizes)
{
    BumpAllocator alloc;
    Table table(alloc, tinyConfig(16, 3));
    constexpr std::uint64_t n = 5000;
    for (std::uint64_t k = 0; k < n; ++k)
        table.insert(k * 7 + 1, k);
    EXPECT_GT(table.resizeCount(), 0u);
    for (std::uint64_t k = 0; k < n; ++k) {
        auto hit = table.find(k * 7 + 1);
        ASSERT_TRUE(hit) << "key " << k * 7 + 1;
        EXPECT_EQ(*hit.value, k);
    }
    EXPECT_EQ(table.size(), n);
}

TEST(Cuckoo, GradualMigrationDrains)
{
    BumpAllocator alloc;
    Table table(alloc, tinyConfig(16, 3));
    std::uint64_t k = 0;
    while (!table.resizing())
        table.insert(k++, 0);
    // Keep inserting: migration progresses a few entries per insert
    // and eventually the retiring generation is freed.
    std::uint64_t inserts = 0;
    while (table.resizing() && inserts < 10000) {
        table.insert(100000 + inserts, 0);
        ++inserts;
        if (table.loadFactor() > 0.55)
            break; // next resize imminent; stop the experiment
    }
    EXPECT_GT(alloc.frees, 0);
}

TEST(Cuckoo, FinishResizeForcesCompletion)
{
    BumpAllocator alloc;
    Table table(alloc, tinyConfig(16, 3));
    std::uint64_t k = 0;
    while (!table.resizing())
        table.insert(k++, 0);
    table.finishResize();
    EXPECT_FALSE(table.resizing());
    for (std::uint64_t i = 0; i < k; ++i)
        EXPECT_TRUE(table.find(i));
}

TEST(Cuckoo, ResizeMovesCounted)
{
    BumpAllocator alloc;
    Table table(alloc, tinyConfig(16, 3));
    for (std::uint64_t k = 0; k < 200; ++k)
        table.insert(k, k);
    table.finishResize();
    EXPECT_GT(table.resizeMoves(), 0u);
}

TEST(Cuckoo, StructureBytesMatchGeometry)
{
    BumpAllocator alloc;
    Table table(alloc, tinyConfig(64, 3));
    EXPECT_EQ(table.structureBytes(), 64u * 3 * 64);
}

/** The Section-4.4 staleness argument: inserts can relocate *other*
 *  keys, so a cached pointer to a slot would go stale. */
TEST(Cuckoo, InsertsRelocateOtherKeys)
{
    BumpAllocator alloc;
    CuckooConfig cfg = tinyConfig(64, 2);
    cfg.resize_threshold = 0.95;
    Table table(alloc, cfg);
    // Fill densely, recording each key's slot address.
    std::map<std::uint64_t, Addr> addr_of;
    for (std::uint64_t k = 0; k < 100; ++k) {
        table.insert(k, k);
        for (std::uint64_t j = 0; j <= k; ++j) {
            auto hit = table.find(j);
            if (hit)
                addr_of[j] = hit.slot_addr;
        }
    }
    // At least one previously-placed key moved at some point: its
    // final address differs from some historical one. Detect via the
    // rehash counter, which only counts displacements of *resident*
    // entries.
    EXPECT_GT(table.rehashMoves(), 0u);
}

/** Parameterized sweep over ways/slots: membership is exact. */
class CuckooGeometry
    : public ::testing::TestWithParam<std::pair<int, std::uint64_t>>
{};

TEST_P(CuckooGeometry, MembershipExact)
{
    const auto [ways, slots] = GetParam();
    BumpAllocator alloc;
    Table table(alloc, tinyConfig(slots, ways));
    std::set<std::uint64_t> present;
    Rng rng(static_cast<std::uint64_t>(ways) * 1000 + slots);
    for (int op = 0; op < 3000; ++op) {
        const std::uint64_t key = rng.below(500);
        if (rng.chance(0.7)) {
            table.insert(key, key);
            present.insert(key);
        } else {
            table.erase(key);
            present.erase(key);
        }
    }
    for (std::uint64_t key = 0; key < 500; ++key)
        EXPECT_EQ(static_cast<bool>(table.find(key)),
                  present.count(key) > 0)
            << "key " << key;
    EXPECT_EQ(table.size(), present.size());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CuckooGeometry,
    ::testing::Values(std::make_pair(2, 32ULL),
                      std::make_pair(2, 128ULL),
                      std::make_pair(3, 16ULL),
                      std::make_pair(3, 64ULL),
                      std::make_pair(4, 64ULL)));

} // namespace necpt
