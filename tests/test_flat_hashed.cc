/** @file Unit tests for the flat and classic hashed page tables. */

#include <gtest/gtest.h>

#include <algorithm>

#include "pt/flat.hh"
#include "pt/hashed.hh"
#include "tests/test_util.hh"

namespace necpt
{

TEST(Flat, MapLookup4K)
{
    BumpAllocator alloc;
    FlatPageTable flat(alloc, 1ULL << 30);
    flat.map(0x1000, 0xA000, PageSize::Page4K);
    const auto t = flat.lookup(0x1FFF);
    ASSERT_TRUE(t.valid);
    EXPECT_EQ(t.apply(0x1FFF), 0xAFFFu);
    EXPECT_FALSE(flat.lookup(0x9000).valid);
}

TEST(Flat, HugePagesResolveFromBase)
{
    BumpAllocator alloc;
    FlatPageTable flat(alloc, 4ULL << 30);
    flat.map(0x4000'0000, 0x1'0020'0000, PageSize::Page2M);
    const auto t = flat.lookup(0x4010'1234);
    ASSERT_TRUE(t.valid);
    EXPECT_EQ(t.size, PageSize::Page2M);
}

TEST(Flat, EntryAddrLinearIn4KFrames)
{
    BumpAllocator alloc(0x7000'0000);
    FlatPageTable flat(alloc, 1ULL << 30);
    const Addr base = flat.entryAddr(0);
    EXPECT_EQ(flat.entryAddr(0x1000), base + 8);
    EXPECT_EQ(flat.entryAddr(0x2000), base + 16);
}

TEST(Flat, StructureBytesProportionalToCoverage)
{
    BumpAllocator alloc;
    FlatPageTable flat(alloc, 1ULL << 30);
    // 1GB / 4KB * 8B = 2MB.
    EXPECT_EQ(flat.structureBytes(), 2ULL << 20);
}

TEST(Flat, UnmapRemoves)
{
    BumpAllocator alloc;
    FlatPageTable flat(alloc, 1ULL << 30);
    flat.map(0x1000, 0xA000, PageSize::Page4K);
    flat.unmap(0x1000, PageSize::Page4K);
    EXPECT_FALSE(flat.lookup(0x1000).valid);
}

TEST(Hashed, MapLookup)
{
    BumpAllocator alloc;
    HashedPageTable hpt(alloc, 256);
    EXPECT_TRUE(hpt.map(0x1000, 0xA000));
    const auto t = hpt.lookup(0x1234);
    ASSERT_TRUE(t.valid);
    EXPECT_EQ(t.pa, 0xA000u);
    EXPECT_FALSE(hpt.lookup(0x5000).valid);
}

TEST(Hashed, CollisionChainsProbeMultipleSlots)
{
    BumpAllocator alloc;
    HashedPageTable hpt(alloc, 64);
    // Fill half the table; some lookups will need >1 probe — the
    // Section 2.2 HPT shortcoming.
    for (Addr va = 0; va < 32 * 4096; va += 4096)
        EXPECT_TRUE(hpt.map(va, va + 0x10'0000));
    std::uint64_t max_probes = 0;
    for (Addr va = 0; va < 32 * 4096; va += 4096) {
        std::vector<Addr> probes;
        ASSERT_TRUE(hpt.lookup(va, &probes).valid);
        max_probes = std::max<std::uint64_t>(max_probes, probes.size());
    }
    EXPECT_GE(max_probes, 2u);
    EXPECT_GT(hpt.avgProbes(), 1.0);
}

TEST(Hashed, TombstoneKeepsChainsIntact)
{
    BumpAllocator alloc;
    HashedPageTable hpt(alloc, 64);
    for (Addr va = 0; va < 20 * 4096; va += 4096)
        hpt.map(va, va);
    hpt.unmap(0);
    // Everything else still resolves despite the tombstone.
    for (Addr va = 4096; va < 20 * 4096; va += 4096)
        EXPECT_TRUE(hpt.lookup(va).valid) << va;
    EXPECT_FALSE(hpt.lookup(0).valid);
}

TEST(Hashed, FullTableRejectsInsert)
{
    BumpAllocator alloc;
    HashedPageTable hpt(alloc, 8);
    for (Addr va = 0; va < 8 * 4096; va += 4096)
        EXPECT_TRUE(hpt.map(va, va));
    EXPECT_FALSE(hpt.map(0x100000, 0x100000));
    EXPECT_DOUBLE_EQ(hpt.loadFactor(), 1.0);
}

TEST(Hashed, Remap)
{
    BumpAllocator alloc;
    HashedPageTable hpt(alloc, 64);
    hpt.map(0x1000, 0xA000);
    hpt.map(0x1000, 0xB000);
    EXPECT_EQ(hpt.lookup(0x1000).pa, 0xB000u);
    EXPECT_EQ(hpt.occupancy(), 1u);
}

} // namespace necpt
