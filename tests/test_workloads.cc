/** @file Unit tests for the Table-4 workload generators. */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/error.hh"
#include "workloads/workload.hh"

namespace necpt
{

namespace
{
SystemConfig
bigSystem()
{
    SystemConfig cfg;
    cfg.virtualized = false;
    cfg.guest_kind = PtKind::Radix;
    cfg.host_phys_bytes = 8ULL << 30;
    return cfg;
}
} // namespace

TEST(Workloads, AllPaperAppsConstruct)
{
    EXPECT_EQ(paperApplications().size(), 11u);
    for (const auto &name : paperApplications()) {
        auto wl = makeWorkload(name, 64);
        ASSERT_NE(wl, nullptr);
        EXPECT_EQ(wl->info().name, name);
        EXPECT_GT(wl->info().footprint_bytes, 0u);
        EXPECT_GT(wl->info().paper_footprint_bytes,
                  wl->info().footprint_bytes);
    }
}

TEST(Workloads, FootprintsMatchTable4Order)
{
    auto gups = makeWorkload("GUPS", 8);
    auto bfs = makeWorkload("BFS", 8);
    auto mummer = makeWorkload("MUMmer", 8);
    // GUPS (64GB) > BFS (9.3GB) > MUMmer (6.9GB), modulo floor.
    EXPECT_GT(gups->info().footprint_bytes,
              bfs->info().footprint_bytes);
    EXPECT_GE(bfs->info().footprint_bytes,
              mummer->info().footprint_bytes);
}

TEST(Workloads, DeterministicStreams)
{
    for (const auto &name : paperApplications()) {
        NestedSystem sys_a(bigSystem()), sys_b(bigSystem());
        auto a = makeWorkload(name, 64);
        auto b = makeWorkload(name, 64);
        a->setup(sys_a);
        b->setup(sys_b);
        for (int i = 0; i < 2000; ++i) {
            const MemAccess ma = a->next();
            const MemAccess mb = b->next();
            ASSERT_EQ(ma.vaddr, mb.vaddr) << name << " @" << i;
            ASSERT_EQ(ma.write, mb.write) << name << " @" << i;
        }
    }
}

TEST(Workloads, AddressesStayInMappedRegions)
{
    for (const auto &name : paperApplications()) {
        NestedSystem sys(bigSystem());
        auto wl = makeWorkload(name, 64);
        wl->setup(sys);
        for (int i = 0; i < 20000; ++i) {
            const MemAccess acc = wl->next();
            // ensureResident fatals on out-of-VMA addresses.
            sys.ensureResident(acc.vaddr);
        }
        SUCCEED() << name;
    }
}

TEST(Workloads, GupsIsTlbHostile)
{
    NestedSystem sys(bigSystem());
    auto wl = makeWorkload("GUPS", 64);
    wl->setup(sys);
    // Count distinct 4KB pages in a short window: GUPS spreads widely.
    std::set<Addr> pages;
    for (int i = 0; i < 10000; ++i)
        pages.insert(wl->next().vaddr >> 12);
    EXPECT_GT(pages.size(), 4000u);
}

TEST(Workloads, SysbenchHasHotIndex)
{
    NestedSystem sys(bigSystem());
    auto wl = makeWorkload("SysBench", 64);
    wl->setup(sys);
    std::map<Addr, int> page_counts;
    for (int i = 0; i < 20000; ++i)
        ++page_counts[wl->next().vaddr >> 12];
    // The hottest page absorbs far more than a uniform share.
    int hottest = 0;
    for (auto &[page, count] : page_counts)
        hottest = std::max(hottest, count);
    EXPECT_GT(hottest, 200);
}

TEST(Workloads, WritesPresentWhereExpected)
{
    NestedSystem sys(bigSystem());
    auto wl = makeWorkload("DC", 64); // degree centrality: many writes
    wl->setup(sys);
    int writes = 0;
    for (int i = 0; i < 1000; ++i)
        writes += wl->next().write;
    EXPECT_GT(writes, 100);
}

TEST(Workloads, GraphReadsDominatePr)
{
    NestedSystem sys(bigSystem());
    auto wl = makeWorkload("PR", 64);
    wl->setup(sys);
    int writes = 0;
    for (int i = 0; i < 1000; ++i)
        writes += wl->next().write;
    EXPECT_EQ(writes, 0);
}

TEST(Workloads, UnknownNameThrowsConfigError)
{
    EXPECT_THROW(makeWorkload("NoSuchApp"), ConfigError);
}

TEST(Workloads, InstructionGapsReasonable)
{
    NestedSystem sys(bigSystem());
    for (const auto &name : paperApplications()) {
        auto wl = makeWorkload(name, 64);
        // gaps are small positive counts
        NestedSystem local(bigSystem());
        wl->setup(local);
        for (int i = 0; i < 100; ++i) {
            const auto gap = wl->next().inst_gap;
            EXPECT_GE(gap, 1);
            EXPECT_LE(gap, 16);
        }
    }
}

} // namespace necpt
