/** @file Shared test fixtures: a simple bump RegionAllocator. */

#ifndef NECPT_TESTS_TEST_UTIL_HH
#define NECPT_TESTS_TEST_UTIL_HH

#include "pt/pte.hh"

namespace necpt
{

/** Trivial bump allocator for table-structure tests. */
class BumpAllocator : public RegionAllocator
{
  public:
    explicit BumpAllocator(Addr base = 0x1000'0000) : cursor(base) {}

    Addr
    allocRegion(std::uint64_t bytes) override
    {
        const Addr r = cursor;
        cursor += (bytes + 4095) & ~4095ULL;
        ++allocs;
        return r;
    }

    void
    freeRegion(Addr, std::uint64_t) override
    {
        ++frees;
    }

    Addr cursor;
    int allocs = 0;
    int frees = 0;
};

} // namespace necpt

#endif // NECPT_TESTS_TEST_UTIL_HH
