/** @file Tests for the extension features: shadow paging, explicit
 *  1GB pages, 5-level nested configurations, multi-core simulation,
 *  and trace record/replay. */

#include <gtest/gtest.h>

#include <cstdio>

#include "common/error.hh"
#include "common/rng.hh"
#include "sim/simulator.hh"
#include "walk/native_radix.hh"
#include "walk/nested_hpt.hh"
#include "walk/nested_radix.hh"
#include "walk/shadow.hh"
#include "workloads/trace.hh"

namespace necpt
{

namespace
{
SystemConfig
smallNested(PtKind guest = PtKind::Radix, PtKind host = PtKind::Radix)
{
    SystemConfig cfg;
    cfg.guest_kind = guest;
    cfg.host_kind = host;
    cfg.guest_phys_bytes = 3ULL << 30;
    cfg.host_phys_bytes = 4ULL << 30;
    cfg.guest_ecpt.initial_slots = {1024, 1024, 512};
    cfg.host_ecpt = cfg.guest_ecpt;
    return cfg;
}

SimParams
quickParams()
{
    SimParams params;
    params.warmup_accesses = 10'000;
    params.measure_accesses = 40'000;
    params.scale_denominator = 256;
    return params;
}
} // namespace

// -------------------------------------------------------- Shadow paging

TEST(ShadowPaging, FirstTouchVmExitsThenNativeSpeedWalks)
{
    NestedSystem sys(smallNested());
    MemoryHierarchy mem(MemHierarchyConfig{}, 1);
    ShadowPagingWalker walker(sys, mem, 0, 1200);

    const Addr base = sys.mmapRegion(1ULL << 20);
    sys.ensureResident(base);
    sys.ensureResident(base + 4096);

    const WalkResult cold = walker.translate(base, 0);
    EXPECT_EQ(walker.vmExits(), 1u);
    EXPECT_GE(cold.latency, 1200u); // paid the hypervisor round trip
    ASSERT_TRUE(cold.translation.valid);
    EXPECT_EQ(cold.translation.apply(base),
              sys.fullTranslate(base).apply(base));

    // Re-walking the same page: shadowed, at most 4 references, no
    // new VM exit.
    const WalkResult warm = walker.translate(base, 50'000);
    EXPECT_EQ(walker.vmExits(), 1u);
    EXPECT_LE(warm.mem_accesses, 4);
    EXPECT_LT(warm.latency, cold.latency);

    walker.translate(base + 4096, 100'000);
    EXPECT_EQ(walker.vmExits(), 2u);
    EXPECT_GT(walker.shadowBytes(), 0u);
}

TEST(ShadowPaging, ConfigRunsEndToEnd)
{
    const SimResult r =
        runSim(makeConfig(ConfigId::ShadowPaging), quickParams(), "BFS");
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.walks, 0u);
    EXPECT_EQ(r.config, "Shadow Paging");
}

// ------------------------------------------------------------- 1GB pages

TEST(OneGigPages, ExplicitRegionMapsPudLevel)
{
    auto cfg = smallNested(PtKind::Ecpt, PtKind::Ecpt);
    NestedSystem sys(cfg);
    const Addr base = sys.mmapRegion1G(1ULL << 30);
    EXPECT_EQ(base % pageBytes(PageSize::Page1G), 0u);
    sys.ensureResident(base + 0x1234);
    const Translation g = sys.guestTranslate(base + 0x1234);
    ASSERT_TRUE(g.valid);
    EXPECT_EQ(g.size, PageSize::Page1G);
    EXPECT_EQ(sys.guestEcpt()->mappingCount(PageSize::Page1G), 1u);
    // The PUD-gCWT advertises the mapping with its way.
    const auto d = sys.guestEcpt()->cwtOf(PageSize::Page1G)->query(base);
    ASSERT_TRUE(d.has_value());
    EXPECT_TRUE(d->present);
    // Host backs it at its own (smaller) granularity; effective TLB
    // entry is the min of the two.
    const Translation full = sys.fullTranslate(base + 0x1234);
    ASSERT_TRUE(full.valid);
    EXPECT_LE(static_cast<int>(full.size),
              static_cast<int>(PageSize::Page1G));
}

TEST(OneGigPages, NativeRadixWalkEndsAtL3)
{
    auto cfg = smallNested(PtKind::Radix, PtKind::Radix);
    cfg.virtualized = false;
    NestedSystem sys(cfg);
    MemoryHierarchy mem(MemHierarchyConfig{}, 1);
    NativeRadixWalker walker(sys, mem, 0);
    const Addr base = sys.mmapRegion1G(1ULL << 30);
    sys.ensureResident(base);
    const WalkResult r = walker.translate(base + 0x42, 0);
    EXPECT_EQ(r.mem_accesses, 2); // Figure 1: 1GB leaf at L3
    EXPECT_EQ(r.translation.size, PageSize::Page1G);
}

// ------------------------------------------------------------ Multi-core

TEST(MultiCore, SharedL3AndDramContention)
{
    SimParams params = quickParams();
    params.measure_accesses = 30'000;

    params.cores = 1;
    const SimResult one =
        runSim(makeConfig(ConfigId::NestedEcpt), params, "GUPS");
    params.cores = 4;
    const SimResult four =
        runSim(makeConfig(ConfigId::NestedEcpt), params, "GUPS");

    // Four multiprogrammed instances keep per-core instruction counts
    // (the totals quadruple)...
    EXPECT_GT(four.instructions, 3 * one.instructions);
    EXPECT_GT(four.walks, 3 * one.walks);
    // ...and shared-resource contention makes each core slower than
    // when running alone.
    EXPECT_GT(four.cycles, one.cycles);
}

TEST(MultiCore, Deterministic)
{
    SimParams params = quickParams();
    params.cores = 2;
    params.measure_accesses = 20'000;
    const SimResult a =
        runSim(makeConfig(ConfigId::NestedRadix), params, "BFS");
    const SimResult b =
        runSim(makeConfig(ConfigId::NestedRadix), params, "BFS");
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.walks, b.walks);
}

// ---------------------------------------------------------- 5-level mode

TEST(FiveLevel, ColdNestedWalkDoesMoreWork)
{
    auto mkmachine = [](int levels) {
        auto cfg = smallNested(PtKind::Radix, PtKind::Radix);
        cfg.radix_levels = levels;
        return cfg;
    };
    auto coldAccesses = [&](int levels) {
        NestedSystem sys(mkmachine(levels));
        MemoryHierarchy mem(MemHierarchyConfig{}, 1);
        NestedRadixWalker walker(sys, mem, 0);
        const Addr base = sys.mmapRegion(1ULL << 20);
        sys.ensureResident(base);
        return walker.translate(base, 0).mem_accesses;
    };
    const int cold4 = coldAccesses(4);
    const int cold5 = coldAccesses(5);
    // The fifth level adds a guest step and host sub-walk work to the
    // cold 2D traversal (Section 1: up to 35 sequential references).
    EXPECT_GT(cold5, cold4);
    EXPECT_LE(cold5, 35);
}

// ------------------------------------------------------------ Nested HPT

TEST(NestedHpt, ThreeReferencesInTheCollisionFreeCase)
{
    auto cfg = smallNested(PtKind::Hpt, PtKind::Hpt);
    cfg.guest_thp = false;
    cfg.host_thp = false;
    NestedSystem sys(cfg);
    MemoryHierarchy mem(MemHierarchyConfig{}, 1);
    NestedHptWalker walker(sys, mem, 0);

    const Addr base = sys.mmapRegion(1ULL << 20);
    sys.ensureResident(base);
    const WalkResult r = walker.translate(base, 0);
    ASSERT_TRUE(r.translation.valid);
    EXPECT_EQ(r.translation.apply(base),
              sys.fullTranslate(base).apply(base));
    // Figure 3: host HPT + guest HPT + host HPT. At near-zero load
    // the chains are single probes.
    EXPECT_GE(r.mem_accesses, 3);
    EXPECT_LE(r.mem_accesses, 5);
}

TEST(NestedHpt, CollisionChainsGrowWithLoad)
{
    auto cfg = smallNested(PtKind::Hpt, PtKind::Hpt);
    cfg.guest_thp = false;
    cfg.host_thp = false;
    NestedSystem sys(cfg);
    MemoryHierarchy mem(MemHierarchyConfig{}, 1);
    NestedHptWalker walker(sys, mem, 0);

    const Addr base = sys.mmapRegion(512ULL << 20);
    // Load the tables up; collision chains appear.
    for (Addr off = 0; off < (256ULL << 20); off += 4096)
        sys.ensureResident(base + off);

    Cycles now = 0;
    int total = 0;
    const int walks = 200;
    Rng rng(3);
    for (int i = 0; i < walks; ++i) {
        const Addr gva = base + (rng.below(1ULL << 16) << 12);
        const WalkResult r = walker.translate(gva, now);
        ASSERT_TRUE(r.translation.valid);
        total += r.mem_accesses;
        now += 2000;
    }
    // Average above the collision-free 3: the Section-2.2 shortcoming.
    EXPECT_GT(static_cast<double>(total) / walks, 3.0);
}

TEST(NestedHpt, ConfigRunsEndToEnd)
{
    const SimResult r =
        runSim(makeConfig(ConfigId::NestedHpt), quickParams(), "BFS");
    EXPECT_GT(r.walks, 0u);
    EXPECT_EQ(r.config, "Nested HPT");
}

// -------------------------------------------------------- Trace workload

TEST(Trace, RecordReplayRoundTrip)
{
    const std::string path = "/tmp/necpt_test_trace.bin";
    {
        NestedSystem sys(smallNested());
        auto wl = makeWorkload("BFS", 256);
        ASSERT_TRUE(recordTrace(*wl, sys, 5000, path));
    }

    TraceWorkload replay(path);
    ASSERT_TRUE(replay.valid());
    EXPECT_EQ(replay.recordCount(), 5000u);

    // Replay produces a valid, loopable stream over mapped VMAs.
    NestedSystem sys(smallNested());
    replay.setup(sys);
    for (int i = 0; i < 12'000; ++i) { // loops past the end
        const MemAccess a = replay.next();
        sys.ensureResident(a.vaddr); // would fatal if out of range
    }
    std::remove(path.c_str());
}

TEST(Trace, ReplayedStreamMatchesSource)
{
    const std::string path = "/tmp/necpt_test_trace2.bin";
    NestedSystem sys_rec(smallNested());
    auto source = makeWorkload("GUPS", 256);
    ASSERT_TRUE(recordTrace(*source, sys_rec, 1000, path));

    // A fresh instance of the same deterministic workload replays the
    // identical relative offsets.
    NestedSystem sys_a(smallNested()), sys_b(smallNested());
    auto fresh = makeWorkload("GUPS", 256);
    fresh->setup(sys_a);
    TraceWorkload replay(path);
    ASSERT_TRUE(replay.valid());
    replay.setup(sys_b);

    MemAccess x = fresh->next(), y = replay.next();
    const Addr bias = y.vaddr - x.vaddr;
    for (int i = 0; i < 999; ++i) {
        x = fresh->next();
        y = replay.next();
        ASSERT_EQ(y.vaddr - x.vaddr, bias) << "record " << i;
        ASSERT_EQ(x.write, y.write);
        ASSERT_EQ(x.inst_gap, y.inst_gap);
    }
    std::remove(path.c_str());
}

TEST(Trace, MissingFileThrowsTraceError)
{
    EXPECT_THROW(TraceWorkload("/tmp/necpt_no_such_trace.bin"),
                 TraceError);
}

} // namespace necpt
