/** @file Unit tests for the memory hierarchy facade. */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"

namespace necpt
{

namespace
{
MemHierarchyConfig
tinyConfig()
{
    MemHierarchyConfig cfg;
    cfg.l1 = {"L1", 4096, 2, 2, 4};
    cfg.l2 = {"L2", 16384, 4, 16, 4};
    cfg.l3 = {"L3", 65536, 8, 56, 8};
    return cfg;
}
} // namespace

TEST(Hierarchy, ColdMissGoesToDram)
{
    MemoryHierarchy mem(tinyConfig(), 1);
    const auto r = mem.access(0x1000, 0, Requester::Core, 0);
    EXPECT_EQ(r.level, MemLevel::Dram);
    EXPECT_GT(r.latency, 56u);
}

TEST(Hierarchy, FillsAllLevelsForCore)
{
    MemoryHierarchy mem(tinyConfig(), 1);
    mem.access(0x1000, 0, Requester::Core, 0);
    const auto r = mem.access(0x1000, 100, Requester::Core, 0);
    EXPECT_EQ(r.level, MemLevel::L1);
    EXPECT_EQ(r.latency, 2u);
}

TEST(Hierarchy, MmuEntersAtL2AndSkipsL1)
{
    MemoryHierarchy mem(tinyConfig(), 1);
    mem.access(0x2000, 0, Requester::Mmu, 0);
    // MMU fill landed in L2/L3 but not L1.
    EXPECT_FALSE(mem.l1(0).contains(0x2000));
    EXPECT_TRUE(mem.l2(0).contains(0x2000));
    EXPECT_TRUE(mem.l3().contains(0x2000));
    const auto r = mem.access(0x2000, 100, Requester::Mmu, 0);
    EXPECT_EQ(r.level, MemLevel::L2);
    EXPECT_EQ(r.latency, 16u);
}

TEST(Hierarchy, MmuFillsPolluteCoreCapacity)
{
    MemoryHierarchy mem(tinyConfig(), 1);
    // Core warms a line, then the MMU streams through L2.
    mem.access(0x0, 0, Requester::Core, 0);
    for (Addr a = 0x100000; a < 0x100000 + 64 * 1024; a += 64)
        mem.access(a, 0, Requester::Mmu, 0);
    // L2/L3 capacity was consumed by walker traffic.
    EXPECT_FALSE(mem.l2(0).contains(0x0));
}

TEST(Hierarchy, BatchDeduplicatesLines)
{
    MemoryHierarchy mem(tinyConfig(), 1);
    const std::vector<Addr> addrs = {0x1000, 0x1008, 0x1010, 0x2000};
    const BatchResult r = mem.batchAccess(addrs, 0, 0);
    EXPECT_EQ(r.requests, 2); // 0x1000-line + 0x2000-line
}

TEST(Hierarchy, BatchLatencyIsMaxNotSum)
{
    MemoryHierarchy mem(tinyConfig(), 1);
    // Warm two lines into L2.
    mem.access(0x1000, 0, Requester::Mmu, 0);
    mem.access(0x5000, 0, Requester::Mmu, 0);
    const BatchResult warm = mem.batchAccess({0x1000, 0x5000}, 100, 0);
    // Both are L2 hits issued in one wave: ~16 cycles, not ~32.
    EXPECT_LE(warm.latency, 20u);
    EXPECT_EQ(warm.l2_misses, 0);
}

TEST(Hierarchy, WideColdBatchSlowerThanNarrow)
{
    MemoryHierarchy mem(tinyConfig(), 1);
    std::vector<Addr> narrow, wide;
    for (int i = 0; i < 2; ++i)
        narrow.push_back(0x800000 + static_cast<Addr>(i) * 8192);
    for (int i = 0; i < 27; ++i)
        wide.push_back(0xA00000 + static_cast<Addr>(i) * 8192);
    const auto nr = mem.batchAccess(narrow, 0, 0);
    const auto wr = mem.batchAccess(wide, 100000, 0);
    // A 27-line cold batch exceeds MSHRs/banks and pays for it.
    EXPECT_GT(wr.latency, nr.latency);
    EXPECT_EQ(wr.requests, 27);
}

TEST(Hierarchy, MshrOccupancyTracked)
{
    MemoryHierarchy mem(tinyConfig(), 1);
    std::vector<Addr> addrs;
    for (int i = 0; i < 8; ++i)
        addrs.push_back(0x300000 + static_cast<Addr>(i) * 8192);
    mem.batchAccess(addrs, 0, 0);
    EXPECT_GT(mem.avgMshrsInUse(), 0.0);
    EXPECT_LE(mem.maxMshrsInUse(), 4u); // tiny config: 4 L2 MSHRs
    mem.resetStats();
    EXPECT_DOUBLE_EQ(mem.avgMshrsInUse(), 0.0);
}

/** Pin the time-weighted MSHR accounting on a hand-built pattern.
 *
 *  Two-core machine; core 1's walker warms eight distinct lines into
 *  the shared L3 (and its own L2). Core 0 then batches all eight:
 *  every access misses its private L2 and hits L3 at exactly 56
 *  cycles, so the wave math is fully deterministic. With issue width
 *  4 and 4 MSHRs:
 *    wave 0 (i=0..3):   issue 0, done 56 each — MSHRs full.
 *    i=4: issue slot 1, stalls until 56, done 112.
 *    i=5..7: issue slot 1 (MSHRs freed in i=4's wait), done 57.
 *  busy = 4*56 + 56 + 3*56 = 448 miss-cycles over window [0, 112],
 *  so the time-weighted occupancy is exactly 4.0. */
TEST(Hierarchy, MshrTimeWeightedOccupancyPinned)
{
    MemoryHierarchy mem(tinyConfig(), 2);
    std::vector<Addr> addrs;
    for (int i = 0; i < 8; ++i)
        addrs.push_back(0x300000 + static_cast<Addr>(i) * 8192);
    for (Addr a : addrs)
        mem.access(a, 0, Requester::Mmu, 1);
    mem.resetStats();

    const BatchResult r = mem.batchAccess(addrs, 0, 0);
    EXPECT_EQ(r.requests, 8);
    EXPECT_EQ(r.l2_misses, 8);
    EXPECT_EQ(r.l3_misses, 0);
    EXPECT_EQ(r.latency, 112u);
    EXPECT_EQ(mem.mshrBusyCycles(), 448u);
    EXPECT_DOUBLE_EQ(mem.avgMshrsInUse(), 4.0);
    EXPECT_EQ(mem.maxMshrsInUse(), 4u);
}

/** A transaction issued while another is in flight on the same core
 *  queues behind the MSHRs the earlier one still holds. */
TEST(Hierarchy, OverlappingTxnsContendForMshrs)
{
    std::vector<Addr> first, second;
    for (int i = 0; i < 4; ++i)
        first.push_back(0x400000 + static_cast<Addr>(i) * 8192);
    second.push_back(0x600000);

    // Overlapped: issue the second while the first's four cold misses
    // still hold every MSHR.
    MemoryHierarchy overlapped(tinyConfig(), 1);
    Cycles olat = 0;
    auto capture = [&olat](const BatchResult &b, Cycles) {
        olat = b.latency;
    };
    overlapped.issueBatch(first, 0, 0);
    overlapped.issueBatch(second, 0, 0, capture);
    overlapped.drainAll();

    // Quiesced: same accesses in the same order, but drained between
    // (cache and DRAM state evolve identically — timing is charged at
    // issue — so the only difference is the MSHR seed).
    MemoryHierarchy quiesced(tinyConfig(), 1);
    quiesced.issueBatch(first, 0, 0);
    quiesced.drainAll();
    const BatchResult q = quiesced.batchAccess(second, 0, 0);

    EXPECT_GT(olat, q.latency);
}

/** DRAM bank busy-intervals persist across transactions: a line in a
 *  bank another in-flight transaction is using waits for the bank. */
TEST(Hierarchy, OverlappingTxnsSerializeOnDramBanks)
{
    // Same 8KB row => same bank; different cache lines two lines
    // apart so both map to channel 0 (lines interleave channels).
    const std::vector<Addr> first = {0x800000};
    const std::vector<Addr> second = {0x800080};

    MemoryHierarchy overlapped(tinyConfig(), 1);
    Cycles olat = 0;
    auto capture = [&olat](const BatchResult &b, Cycles) {
        olat = b.latency;
    };
    overlapped.issueBatch(first, 0, 0);
    overlapped.issueBatch(second, 0, 0, capture);
    overlapped.drainAll();

    // Alone on a fresh hierarchy the second line opens the row itself;
    // behind the first it queues on the bank (then row-hits).
    MemoryHierarchy fresh(tinyConfig(), 1);
    const BatchResult alone = fresh.batchAccess(second, 0, 0);
    EXPECT_GT(olat, alone.latency);
}

/** The synchronous wrapper and the async path are the same machine:
 *  issueBatch + drainAll delivers byte-for-byte the BatchResult that
 *  batchAccess returns, completing at issue + latency. */
TEST(Hierarchy, SyncWrapperMatchesAsyncPath)
{
    std::vector<Addr> addrs;
    for (int i = 0; i < 6; ++i)
        addrs.push_back(0x900000 + static_cast<Addr>(i) * 8192);

    MemoryHierarchy sync_mem(tinyConfig(), 1);
    const BatchResult s = sync_mem.batchAccess(addrs, 42, 0);

    MemoryHierarchy async_mem(tinyConfig(), 1);
    BatchResult a;
    Cycles done = 0;
    bool fired = false;
    auto capture = [&](const BatchResult &b, Cycles at) {
        a = b;
        done = at;
        fired = true;
    };
    async_mem.issueBatch(addrs, 42, 0, capture);
    EXPECT_TRUE(async_mem.hasPending());
    async_mem.drainAll();
    EXPECT_TRUE(fired);
    EXPECT_FALSE(async_mem.hasPending());

    EXPECT_EQ(a.latency, s.latency);
    EXPECT_EQ(a.requests, s.requests);
    EXPECT_EQ(a.l2_misses, s.l2_misses);
    EXPECT_EQ(a.l3_misses, s.l3_misses);
    EXPECT_EQ(done, 42u + s.latency);
}

/** drainUntil fires completions in (cycle, id) order and leaves later
 *  transactions pending. */
TEST(Hierarchy, DrainUntilOrdersCompletions)
{
    MemoryHierarchy mem(tinyConfig(), 1);
    std::vector<int> order;
    // Warm a line so the second txn is a fast L2 hit; the first goes
    // to DRAM and completes later despite the earlier issue.
    mem.access(0xA00000, 0, Requester::Mmu, 0);
    auto mark1 = [&order](const BatchResult &, Cycles) {
        order.push_back(1);
    };
    auto mark2 = [&order](const BatchResult &, Cycles) {
        order.push_back(2);
    };
    mem.issueBatch({0xB00000}, 0, 0, mark1);
    mem.issueBatch({0xA00000}, 0, 0, mark2);
    mem.drainUntil(20); // only the L2 hit (16 cycles) is due
    ASSERT_EQ(order.size(), 1u);
    EXPECT_EQ(order[0], 2);
    EXPECT_TRUE(mem.hasPending());
    mem.drainAll();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[1], 1);
}

TEST(Hierarchy, PerCoreL1L2SharedL3)
{
    MemoryHierarchy mem(tinyConfig(), 2);
    mem.access(0x4000, 0, Requester::Core, 0);
    // Core 1 misses its private L1/L2 but hits the shared L3.
    const auto r = mem.access(0x4000, 100, Requester::Core, 1);
    EXPECT_EQ(r.level, MemLevel::L3);
}

TEST(Hierarchy, StatsPerRequester)
{
    MemoryHierarchy mem(tinyConfig(), 1);
    mem.access(0x0, 0, Requester::Core, 0);
    mem.access(0x40, 0, Requester::Mmu, 0);
    EXPECT_EQ(mem.l2(0).stats(Requester::Core).accesses(), 1u);
    EXPECT_EQ(mem.l2(0).stats(Requester::Mmu).accesses(), 1u);
}

} // namespace necpt
