/** @file Unit tests for the memory hierarchy facade. */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"

namespace necpt
{

namespace
{
MemHierarchyConfig
tinyConfig()
{
    MemHierarchyConfig cfg;
    cfg.l1 = {"L1", 4096, 2, 2, 4};
    cfg.l2 = {"L2", 16384, 4, 16, 4};
    cfg.l3 = {"L3", 65536, 8, 56, 8};
    return cfg;
}
} // namespace

TEST(Hierarchy, ColdMissGoesToDram)
{
    MemoryHierarchy mem(tinyConfig(), 1);
    const auto r = mem.access(0x1000, 0, Requester::Core, 0);
    EXPECT_EQ(r.level, MemLevel::Dram);
    EXPECT_GT(r.latency, 56u);
}

TEST(Hierarchy, FillsAllLevelsForCore)
{
    MemoryHierarchy mem(tinyConfig(), 1);
    mem.access(0x1000, 0, Requester::Core, 0);
    const auto r = mem.access(0x1000, 100, Requester::Core, 0);
    EXPECT_EQ(r.level, MemLevel::L1);
    EXPECT_EQ(r.latency, 2u);
}

TEST(Hierarchy, MmuEntersAtL2AndSkipsL1)
{
    MemoryHierarchy mem(tinyConfig(), 1);
    mem.access(0x2000, 0, Requester::Mmu, 0);
    // MMU fill landed in L2/L3 but not L1.
    EXPECT_FALSE(mem.l1(0).contains(0x2000));
    EXPECT_TRUE(mem.l2(0).contains(0x2000));
    EXPECT_TRUE(mem.l3().contains(0x2000));
    const auto r = mem.access(0x2000, 100, Requester::Mmu, 0);
    EXPECT_EQ(r.level, MemLevel::L2);
    EXPECT_EQ(r.latency, 16u);
}

TEST(Hierarchy, MmuFillsPolluteCoreCapacity)
{
    MemoryHierarchy mem(tinyConfig(), 1);
    // Core warms a line, then the MMU streams through L2.
    mem.access(0x0, 0, Requester::Core, 0);
    for (Addr a = 0x100000; a < 0x100000 + 64 * 1024; a += 64)
        mem.access(a, 0, Requester::Mmu, 0);
    // L2/L3 capacity was consumed by walker traffic.
    EXPECT_FALSE(mem.l2(0).contains(0x0));
}

TEST(Hierarchy, BatchDeduplicatesLines)
{
    MemoryHierarchy mem(tinyConfig(), 1);
    const std::vector<Addr> addrs = {0x1000, 0x1008, 0x1010, 0x2000};
    const BatchResult r = mem.batchAccess(addrs, 0, 0);
    EXPECT_EQ(r.requests, 2); // 0x1000-line + 0x2000-line
}

TEST(Hierarchy, BatchLatencyIsMaxNotSum)
{
    MemoryHierarchy mem(tinyConfig(), 1);
    // Warm two lines into L2.
    mem.access(0x1000, 0, Requester::Mmu, 0);
    mem.access(0x5000, 0, Requester::Mmu, 0);
    const BatchResult warm = mem.batchAccess({0x1000, 0x5000}, 100, 0);
    // Both are L2 hits issued in one wave: ~16 cycles, not ~32.
    EXPECT_LE(warm.latency, 20u);
    EXPECT_EQ(warm.l2_misses, 0);
}

TEST(Hierarchy, WideColdBatchSlowerThanNarrow)
{
    MemoryHierarchy mem(tinyConfig(), 1);
    std::vector<Addr> narrow, wide;
    for (int i = 0; i < 2; ++i)
        narrow.push_back(0x800000 + static_cast<Addr>(i) * 8192);
    for (int i = 0; i < 27; ++i)
        wide.push_back(0xA00000 + static_cast<Addr>(i) * 8192);
    const auto nr = mem.batchAccess(narrow, 0, 0);
    const auto wr = mem.batchAccess(wide, 100000, 0);
    // A 27-line cold batch exceeds MSHRs/banks and pays for it.
    EXPECT_GT(wr.latency, nr.latency);
    EXPECT_EQ(wr.requests, 27);
}

TEST(Hierarchy, MshrOccupancyTracked)
{
    MemoryHierarchy mem(tinyConfig(), 1);
    std::vector<Addr> addrs;
    for (int i = 0; i < 8; ++i)
        addrs.push_back(0x300000 + static_cast<Addr>(i) * 8192);
    mem.batchAccess(addrs, 0, 0);
    EXPECT_GT(mem.avgMshrsInUse(), 0.0);
    EXPECT_LE(mem.maxMshrsInUse(), 4u); // tiny config: 4 L2 MSHRs
    mem.resetStats();
    EXPECT_DOUBLE_EQ(mem.avgMshrsInUse(), 0.0);
}

TEST(Hierarchy, PerCoreL1L2SharedL3)
{
    MemoryHierarchy mem(tinyConfig(), 2);
    mem.access(0x4000, 0, Requester::Core, 0);
    // Core 1 misses its private L1/L2 but hits the shared L3.
    const auto r = mem.access(0x4000, 100, Requester::Core, 1);
    EXPECT_EQ(r.level, MemLevel::L3);
}

TEST(Hierarchy, StatsPerRequester)
{
    MemoryHierarchy mem(tinyConfig(), 1);
    mem.access(0x0, 0, Requester::Core, 0);
    mem.access(0x40, 0, Requester::Mmu, 0);
    EXPECT_EQ(mem.l2(0).stats(Requester::Core).accesses(), 1u);
    EXPECT_EQ(mem.l2(0).stats(Requester::Mmu).accesses(), 1u);
}

} // namespace necpt
