/** @file Integration tests: every walker translates correctly and with
 *  the access counts the paper's analysis predicts. */

#include <gtest/gtest.h>

#include "walk/baselines.hh"
#include "walk/hybrid.hh"
#include "walk/native_ecpt.hh"
#include "walk/native_radix.hh"
#include "walk/nested_ecpt.hh"
#include "walk/nested_radix.hh"

namespace necpt
{

namespace
{

SystemConfig
sysFor(PtKind guest, PtKind host, bool virtualized = true,
       bool thp = false)
{
    SystemConfig cfg;
    cfg.virtualized = virtualized;
    cfg.guest_kind = guest;
    cfg.host_kind = host;
    cfg.guest_thp = thp;
    cfg.host_thp = thp;
    cfg.guest_phys_bytes = 2ULL << 30;
    cfg.host_phys_bytes = 3ULL << 30;
    cfg.guest_ecpt.initial_slots = {1024, 1024, 512};
    cfg.guest_ecpt.cwt_initial_slots = {256, 256, 128};
    cfg.host_ecpt = cfg.guest_ecpt;
    return cfg;
}

struct Machine
{
    explicit Machine(const SystemConfig &cfg)
        : sys(cfg), mem(MemHierarchyConfig{}, 1)
    {}

    NestedSystem sys;
    MemoryHierarchy mem;
};

/** Walk must agree with the functional ground truth. */
void
expectCorrect(Walker &walker, NestedSystem &sys, Addr gva, Cycles now)
{
    const WalkResult r = walker.translate(gva, now);
    ASSERT_TRUE(r.translation.valid);
    const Translation truth = sys.fullTranslate(gva);
    EXPECT_EQ(r.translation.apply(gva), truth.apply(gva));
    EXPECT_GT(r.latency, 0u);
}

} // namespace

TEST(NativeRadixWalk, ColdWalkFourAccesses)
{
    Machine m(sysFor(PtKind::Radix, PtKind::Radix, false));
    NativeRadixWalker walker(m.sys, m.mem, 0);
    const Addr base = m.sys.mmapRegion(1ULL << 20);
    m.sys.ensureResident(base);
    const WalkResult r = walker.translate(base, 0);
    EXPECT_EQ(r.mem_accesses, 4); // Figure 1: up to 4 references
    expectCorrect(walker, m.sys, base + 4096 * 0, 1000);
}

TEST(NativeRadixWalk, PwcSkipsUpperLevels)
{
    Machine m(sysFor(PtKind::Radix, PtKind::Radix, false));
    NativeRadixWalker walker(m.sys, m.mem, 0);
    const Addr base = m.sys.mmapRegion(1ULL << 20);
    m.sys.ensureResident(base);
    m.sys.ensureResident(base + 4096);
    walker.translate(base, 0);
    // Second walk in the same subtree: only the L1 entry is fetched.
    const WalkResult r = walker.translate(base + 4096, 1000);
    EXPECT_EQ(r.mem_accesses, 1);
}

TEST(NestedRadixWalk, ColdWalk24Accesses)
{
    Machine m(sysFor(PtKind::Radix, PtKind::Radix));
    NestedRadixWalker walker(m.sys, m.mem, 0);
    const Addr base = m.sys.mmapRegion(1ULL << 20);
    m.sys.ensureResident(base);
    const WalkResult r = walker.translate(base, 0);
    // Figure 2: the very first walk performs the full 2D traversal of
    // up to 24 references. Within the single walk the NPWC already
    // captures the shared upper host levels of the five host
    // sub-walks, so the observed count is somewhat below 24.
    EXPECT_GE(r.mem_accesses, 10);
    EXPECT_LE(r.mem_accesses, 24);
    expectCorrect(walker, m.sys, base, 1000);
}

TEST(NestedRadixWalk, WarmCachesCutAccesses)
{
    Machine m(sysFor(PtKind::Radix, PtKind::Radix));
    NestedRadixWalker walker(m.sys, m.mem, 0);
    const Addr base = m.sys.mmapRegion(4ULL << 20);
    for (int i = 0; i < 4; ++i)
        m.sys.ensureResident(base + static_cast<Addr>(i) * 4096);
    walker.translate(base, 0);
    const WalkResult r = walker.translate(base + 4096, 10000);
    // gPWC covers gL4..gL2; NTLB covers the gL1 page translation; the
    // data's host walk is NPWC-accelerated: a handful of accesses.
    EXPECT_LE(r.mem_accesses, 6);
    EXPECT_GE(r.mem_accesses, 1);
}

TEST(NativeEcptWalk, WarmDirectOrSizeWalk)
{
    Machine m(sysFor(PtKind::Ecpt, PtKind::Ecpt, false));
    NativeEcptWalker walker(m.sys, m.mem, 0);
    const Addr base = m.sys.mmapRegion(1ULL << 20);
    m.sys.ensureResident(base);
    m.sys.ensureResident(base + 4096);
    walker.translate(base, 0); // cold: complete walk + refills
    const WalkResult r = walker.translate(base + 4096, 10000);
    // Warm CWC, 4KB page, no PTE CWT natively: size walk = d probes
    // in ONE parallel phase.
    EXPECT_LE(r.mem_accesses, 3);
    expectCorrect(walker, m.sys, base, 20000);
}

TEST(NestedEcptWalk, WarmAdvancedWalkIsThreeAccesses)
{
    auto cfg = sysFor(PtKind::Ecpt, PtKind::Ecpt, true, true);
    cfg.guest_thp_coverage = 1.0;
    cfg.host_thp_coverage = 1.0;
    cfg.host_ecpt.has_pte_cwt = true;
    Machine m(cfg);
    NestedEcptWalker walker(m.sys, m.mem, 0,
                            NestedEcptFeatures::advanced());
    const Addr base = m.sys.mmapRegion(8ULL << 20);
    for (Addr off = 0; off < (8ULL << 20); off += (2ULL << 20))
        m.sys.ensureResident(base + off);
    walker.translate(base, 0); // cold
    const WalkResult r = walker.translate(base + (2ULL << 20), 100000);
    // The paper's headline: all but three sequential steps eliminated;
    // best case one access per step.
    EXPECT_EQ(r.mem_accesses, 3);
    expectCorrect(walker, m.sys, base, 200000);
}

TEST(NestedEcptWalk, PlainIssuesMoreProbesThanAdvanced)
{
    auto mkcfg = [] {
        auto cfg = sysFor(PtKind::Ecpt, PtKind::Ecpt, true, false);
        return cfg;
    };
    auto cfg_plain = mkcfg();
    cfg_plain.host_ecpt.has_pte_cwt = false;
    Machine mp(cfg_plain);
    NestedEcptWalker plain(mp.sys, mp.mem, 0,
                           NestedEcptFeatures::plain());

    auto cfg_adv = mkcfg();
    cfg_adv.host_ecpt.has_pte_cwt = true;
    Machine ma(cfg_adv);
    NestedEcptWalker advanced(ma.sys, ma.mem, 0,
                              NestedEcptFeatures::advanced());

    const Addr base_p = mp.sys.mmapRegion(4ULL << 20);
    const Addr base_a = ma.sys.mmapRegion(4ULL << 20);
    int plain_total = 0, adv_total = 0;
    for (int i = 0; i < 32; ++i) {
        const Addr off = static_cast<Addr>(i) * 4096;
        mp.sys.ensureResident(base_p + off);
        ma.sys.ensureResident(base_a + off);
        plain_total +=
            plain.translate(base_p + off, i * 10000).mem_accesses;
        adv_total +=
            advanced.translate(base_a + off, i * 10000).mem_accesses;
    }
    EXPECT_GT(plain_total, adv_total);
}

TEST(NestedEcptWalk, StcServicesGcwcRefills)
{
    // A mixed THP guest (some 2MB, some 4KB regions) makes the walker
    // consult the PMD gCWT — the structure whose refills the STC
    // accelerates (pure-4KB guests resolve from the PUD level alone).
    auto cfg = sysFor(PtKind::Ecpt, PtKind::Ecpt, true, true);
    cfg.guest_thp_coverage = 1.0;
    cfg.host_ecpt.has_pte_cwt = true;
    Machine m(cfg);
    NestedEcptWalker walker(m.sys, m.mem, 0,
                            NestedEcptFeatures::advanced());
    // Rotate through 24 distinct PMD-gCWT entries (one per 4GB of VA,
    // spanning ~98GB) so the 16-entry gCWC keeps missing while the
    // handful of gCWT *chunks* stays within the STC's reach — the
    // Section-4.1 regime at paper-scale footprints.
    const Addr base = m.sys.mmapRegion(100ULL << 30);
    for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < 24; ++i) {
            const Addr gva = base
                + static_cast<Addr>(i) * (4100ULL << 20)
                + static_cast<Addr>(round) * (2ULL << 20);
            m.sys.ensureResident(gva);
            walker.translate(
                gva, static_cast<Cycles>(round * 24 + i) * 5000);
        }
    }
    const auto &stc = walker.shortcutCache();
    EXPECT_GT(stc.stats().accesses(), 0u);
    // gCWT entries cluster in a few pages: the 10-entry STC covers
    // them with a high hit rate (Section 9.4: ~99%).
    EXPECT_GE(stc.stats().rate(), 0.75);
}

TEST(NestedEcptWalk, StepAveragesTracked)
{
    auto cfg = sysFor(PtKind::Ecpt, PtKind::Ecpt);
    cfg.host_ecpt.has_pte_cwt = true;
    Machine m(cfg);
    NestedEcptWalker walker(m.sys, m.mem, 0);
    const Addr base = m.sys.mmapRegion(1ULL << 20);
    m.sys.ensureResident(base);
    walker.translate(base, 0);
    const auto &ws = walker.stats();
    for (int s = 0; s < 3; ++s) {
        EXPECT_EQ(ws.step_cnt[s], 1u);
        EXPECT_GE(ws.avgStepAccesses(s), 1.0);
    }
}

TEST(HybridWalk, CorrectAndBoundedBy9Phases)
{
    auto cfg = sysFor(PtKind::Radix, PtKind::Ecpt);
    cfg.host_ecpt.has_pte_cwt = true;
    Machine m(cfg);
    HybridWalker walker(m.sys, m.mem, 0);
    const Addr base = m.sys.mmapRegion(1ULL << 20);
    m.sys.ensureResident(base);
    m.sys.ensureResident(base + 4096);
    expectCorrect(walker, m.sys, base, 0);
    // Warm walk: gPWC + NTLB + hCWC leave very few accesses.
    const WalkResult r = walker.translate(base + 4096, 50000);
    EXPECT_LE(r.mem_accesses, 9);
    EXPECT_GT(walker.stats().host_kind[0].value()
                  + walker.stats().host_kind[1].value()
                  + walker.stats().host_kind[2].value()
                  + walker.stats().host_kind[3].value(),
              0u);
}

TEST(AgileWalk, AtMostFourAccesses)
{
    Machine m(sysFor(PtKind::Radix, PtKind::Radix));
    AgilePagingWalker walker(m.sys, m.mem, 0);
    const Addr base = m.sys.mmapRegion(1ULL << 20);
    m.sys.ensureResident(base);
    const WalkResult cold = walker.translate(base, 0);
    EXPECT_LE(cold.mem_accesses, 4);
    expectCorrect(walker, m.sys, base, 1000);
}

TEST(PomTlbWalk, HitIsOneAccessMissFallsBack)
{
    Machine m(sysFor(PtKind::Radix, PtKind::Radix));
    PomTlb pom(m.sys.hostPool(), 1024, 4);
    PomTlbWalker walker(m.sys, m.mem, 0, pom);
    const Addr base = m.sys.mmapRegion(1ULL << 20);
    m.sys.ensureResident(base);
    const WalkResult miss = walker.translate(base, 0);
    EXPECT_GT(miss.mem_accesses, 1); // probe + radix fallback
    const WalkResult hit = walker.translate(base, 10000);
    EXPECT_EQ(hit.mem_accesses, 1); // one in-DRAM probe
    EXPECT_TRUE(hit.translation.valid);
}

TEST(FlatNestedWalk, AtMostNineAccesses)
{
    Machine m(sysFor(PtKind::Radix, PtKind::Flat));
    FlatNestedWalker walker(m.sys, m.mem, 0);
    const Addr base = m.sys.mmapRegion(1ULL << 20);
    m.sys.ensureResident(base);
    const WalkResult cold = walker.translate(base, 0);
    EXPECT_LE(cold.mem_accesses, 9); // Section 9.6: 24 -> 9
    expectCorrect(walker, m.sys, base, 1000);
}

TEST(Walkers, HugePagesShortenRadixWalks)
{
    auto cfg = sysFor(PtKind::Radix, PtKind::Radix, false, true);
    cfg.guest_thp_coverage = 1.0;
    Machine m(cfg);
    NativeRadixWalker walker(m.sys, m.mem, 0);
    const Addr base = m.sys.mmapRegion(4ULL << 20, true);
    m.sys.ensureResident(base);
    const WalkResult r = walker.translate(base, 0);
    EXPECT_EQ(r.mem_accesses, 3); // 2MB leaf at L2
    EXPECT_EQ(r.translation.size, PageSize::Page2M);
}

} // namespace necpt
