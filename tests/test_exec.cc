/** @file The sweep engine: thread-pool scheduling, key-derived seed
 *  determinism (jobs=1 == jobs=8), per-job fault isolation (throws
 *  and timeouts become failed records), and structured result export. */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "coherence/churn.hh"
#include "common/fault.hh"
#include "exec/engine.hh"
#include "exec/registry.hh"
#include "exec/thread_pool.hh"
#include "tests/test_util.hh"

namespace necpt
{

namespace
{

/** A cheap deterministic job: stats are a pure function of the seed. */
JobSpec
fakeJob(const std::string &key)
{
    JobSpec spec;
    spec.key = key;
    spec.fn = [key](const JobContext &ctx) {
        JobOutput out;
        out.sim.config = "fake";
        out.sim.app = key;
        out.sim.cycles = ctx.seed % 100'000;
        out.sim.instructions = ctx.seed % 777;
        out.metrics["seed_lo"] = static_cast<double>(ctx.seed & 0xFF);
        return out;
    };
    return spec;
}

SweepOptions
quietOptions(int jobs)
{
    SweepOptions options;
    options.jobs = jobs;
    options.progress = nullptr;
    return options;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

// ---------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsEveryTaskAcrossWorkers)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 100);

    // The pool stays usable after a wait().
    pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 101);
}

TEST(ThreadPool, WaitBlocksUntilInFlightTasksFinish)
{
    ThreadPool pool(2);
    std::atomic<bool> finished{false};
    pool.submit([&finished] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        finished.store(true);
    });
    pool.wait();
    EXPECT_TRUE(finished.load());
}

TEST(ThreadPool, ClampsToAtLeastOneWorker)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
}

// ------------------------------------------------------ seed derivation

TEST(JobSeed, PureFunctionOfBaseAndKey)
{
    const std::uint64_t a = deriveJobSeed(1, "fig9/Nested ECPTs/GUPS");
    EXPECT_EQ(a, deriveJobSeed(1, "fig9/Nested ECPTs/GUPS"));
    EXPECT_NE(a, deriveJobSeed(2, "fig9/Nested ECPTs/GUPS"));
    EXPECT_NE(a, deriveJobSeed(1, "fig9/Nested ECPTs/BFS"));
    EXPECT_NE(deriveJobSeed(1, ""), 0u) << "seed 0 must never escape";
}

TEST(JobSeed, SpreadsAcrossNearbyKeys)
{
    std::set<std::uint64_t> seeds;
    for (int i = 0; i < 256; ++i)
        seeds.insert(deriveJobSeed(0xD15EA5E, "job" + std::to_string(i)));
    EXPECT_EQ(seeds.size(), 256u);
}

// -------------------------------------------------------- determinism

TEST(SweepEngine, RecordsIdenticalAcrossWorkerCounts)
{
    std::vector<JobSpec> specs;
    for (int i = 0; i < 24; ++i)
        specs.push_back(fakeJob("det/job" + std::to_string(i)));

    const ResultSink serial = SweepEngine(quietOptions(1)).run(specs);
    const ResultSink wide = SweepEngine(quietOptions(8)).run(specs);

    ASSERT_EQ(serial.size(), wide.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        const JobRecord &s = serial.records()[i];
        const JobRecord &w = wide.records()[i];
        EXPECT_EQ(s.key, w.key) << "submission order must be kept";
        EXPECT_EQ(s.seed, w.seed);
        EXPECT_EQ(s.status, JobStatus::Ok);
        EXPECT_EQ(w.status, JobStatus::Ok);
        EXPECT_EQ(s.out.sim.cycles, w.out.sim.cycles);
        EXPECT_EQ(s.out.sim.instructions, w.out.sim.instructions);
        EXPECT_EQ(s.out.metrics.at("seed_lo"),
                  w.out.metrics.at("seed_lo"));
    }
}

TEST(SweepEngine, RealSimulationGridIsWorkerCountInvariant)
{
    // A miniature fig9-style grid through the real simulator: two
    // configurations x one app, short runs. jobs=1 and jobs=4 must
    // produce bit-identical stats (seeds derive from keys, not from
    // scheduling).
    SimParams params;
    params.warmup_accesses = 2'000;
    params.measure_accesses = 10'000;
    params.scale_denominator = 2048;

    std::vector<JobSpec> specs;
    for (const ConfigId id :
         {ConfigId::NestedRadix, ConfigId::NestedEcpt}) {
        const ExperimentConfig config = makeConfig(id);
        JobSpec spec;
        spec.key = "mini/" + config.name + "/GUPS";
        spec.fn = [config, params](const JobContext &ctx) {
            SimParams p = params;
            p.seed = ctx.seed;
            JobOutput out;
            out.sim = runSim(config, p, "GUPS");
            return out;
        };
        specs.push_back(std::move(spec));
    }

    const ResultSink serial = SweepEngine(quietOptions(1)).run(specs);
    const ResultSink wide = SweepEngine(quietOptions(4)).run(specs);
    ASSERT_EQ(serial.size(), 2u);
    for (std::size_t i = 0; i < serial.size(); ++i) {
        const SimResult &s = serial.records()[i].out.sim;
        const SimResult &w = wide.records()[i].out.sim;
        EXPECT_EQ(serial.records()[i].status, JobStatus::Ok);
        EXPECT_EQ(s.cycles, w.cycles) << s.config;
        EXPECT_EQ(s.instructions, w.instructions);
        EXPECT_EQ(s.walks, w.walks);
        EXPECT_EQ(s.l2_tlb_misses, w.l2_tlb_misses);
        EXPECT_EQ(s.mmu_busy_cycles, w.mmu_busy_cycles);
    }
    EXPECT_GT(serial.records()[0].out.sim.cycles, 0u);
}

TEST(SweepEngine, OverlappedWalkGridIsWorkerCountInvariant)
{
    // Same contract with the event-driven overlap path active
    // (max_outstanding_walks = 4): in-flight walk interleaving is
    // scheduler-ordered, never wall-clock-ordered, so jobs=1 and
    // jobs=8 still produce bit-identical stats.
    SimParams params;
    params.warmup_accesses = 2'000;
    params.measure_accesses = 8'000;
    params.scale_denominator = 2048;
    params.max_outstanding_walks = 4;

    std::vector<JobSpec> specs;
    for (const ConfigId id :
         {ConfigId::NestedRadix, ConfigId::NestedEcpt}) {
        const ExperimentConfig config = makeConfig(id);
        JobSpec spec;
        spec.key = "mlp-mini/" + config.name + "/GUPS";
        spec.fn = [config, params](const JobContext &ctx) {
            SimParams p = params;
            p.seed = ctx.seed;
            JobOutput out;
            out.sim = runSim(config, p, "GUPS");
            out.metrics["walk.inflight"] =
                out.sim.walk_inflight_avg;
            return out;
        };
        specs.push_back(std::move(spec));
    }

    const ResultSink serial = SweepEngine(quietOptions(1)).run(specs);
    const ResultSink wide = SweepEngine(quietOptions(8)).run(specs);
    ASSERT_EQ(serial.size(), 2u);
    for (std::size_t i = 0; i < serial.size(); ++i) {
        const SimResult &s = serial.records()[i].out.sim;
        const SimResult &w = wide.records()[i].out.sim;
        EXPECT_EQ(serial.records()[i].status, JobStatus::Ok);
        EXPECT_EQ(s.cycles, w.cycles) << s.config;
        EXPECT_EQ(s.walks, w.walks);
        EXPECT_EQ(s.mmu_busy_cycles, w.mmu_busy_cycles);
        EXPECT_EQ(serial.records()[i].out.metrics.at("walk.inflight"),
                  wide.records()[i].out.metrics.at("walk.inflight"));
    }
}

TEST(SweepEngine, CoalescedChurnGridIsWorkerCountInvariant)
{
    // Walk coalescing + translation churn + shootdown faults, the
    // configuration where the walk-MSHR's merge/replay interactions
    // are densest: jobs=1 and jobs=8 must still be bit-identical, and
    // the merges must actually happen (walk.coalesced > 0) or the
    // comparison proves nothing.
    SimParams params;
    params.warmup_accesses = 1'000;
    params.measure_accesses = 5'000;
    params.scale_denominator = 64;
    params.cores = 2;
    params.max_outstanding_walks = 4;
    params.walk_coalescing = true;
    params.churn = parseChurnSpec(
        "migrate:5000:8,balloon:20000:16,protect:15000:4,batch:8");
    params.faults = parseFaultSpec("shootdown:0.05");

    std::vector<JobSpec> specs;
    const ExperimentConfig config = makeConfig(ConfigId::NestedEcpt);
    for (const char *app : {"GUPS", "SysBench"}) {
        JobSpec spec;
        spec.key = std::string("coalesce-mini/") + config.name + "/"
            + app;
        const std::string app_name = app;
        spec.fn = [config, params, app_name](const JobContext &ctx) {
            SimParams p = params;
            p.seed = ctx.seed;
            JobOutput out;
            out.sim = runSim(config, p, app_name);
            return out;
        };
        specs.push_back(std::move(spec));
    }

    const ResultSink serial = SweepEngine(quietOptions(1)).run(specs);
    const ResultSink wide = SweepEngine(quietOptions(8)).run(specs);
    ASSERT_EQ(serial.size(), specs.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        const SimResult &s = serial.records()[i].out.sim;
        const SimResult &w = wide.records()[i].out.sim;
        EXPECT_EQ(serial.records()[i].status, JobStatus::Ok);
        EXPECT_EQ(wide.records()[i].status, JobStatus::Ok);
        EXPECT_EQ(s.cycles, w.cycles) << specs[i].key;
        EXPECT_EQ(s.walks, w.walks);
        EXPECT_EQ(s.mmu_busy_cycles, w.mmu_busy_cycles);
        const auto sc = s.metrics.find("walk.coalesced");
        const auto wc = w.metrics.find("walk.coalesced");
        ASSERT_NE(sc, s.metrics.end());
        ASSERT_NE(wc, w.metrics.end());
        EXPECT_EQ(sc->second, wc->second);
        EXPECT_GT(sc->second, 0.0) << specs[i].key;
    }
}

// ----------------------------------------------------- fault isolation

TEST(SweepEngine, ThrowingJobBecomesFailedRecordSiblingsComplete)
{
    std::vector<JobSpec> specs;
    specs.push_back(fakeJob("iso/before"));
    JobSpec bad;
    bad.key = "iso/bad";
    bad.fn = [](const JobContext &) -> JobOutput {
        throw std::runtime_error("walker exploded");
    };
    specs.push_back(std::move(bad));
    specs.push_back(fakeJob("iso/after"));

    const ResultSink sink = SweepEngine(quietOptions(4)).run(specs);
    ASSERT_EQ(sink.size(), 3u);
    EXPECT_EQ(sink.okCount(), 2u);
    EXPECT_EQ(sink.failedCount(), 1u);

    const JobRecord *bad_rec = sink.find("iso/bad");
    ASSERT_NE(bad_rec, nullptr);
    EXPECT_EQ(bad_rec->status, JobStatus::Failed);
    EXPECT_EQ(bad_rec->error, "walker exploded");
    EXPECT_EQ(sink.find("iso/before")->status, JobStatus::Ok);
    EXPECT_EQ(sink.find("iso/after")->status, JobStatus::Ok);
}

TEST(SweepEngine, NonStdExceptionIsCaptured)
{
    JobSpec bad;
    bad.key = "iso/odd";
    bad.fn = [](const JobContext &) -> JobOutput { throw 42; };
    const ResultSink sink = SweepEngine(quietOptions(1)).run({bad});
    ASSERT_EQ(sink.size(), 1u);
    EXPECT_EQ(sink.records()[0].status, JobStatus::Failed);
    EXPECT_EQ(sink.records()[0].error, "unknown exception");
}

TEST(SweepEngine, TimedOutJobIsReportedWhileSiblingsComplete)
{
    // The sleeper polls a shared flag so the detached runner drains
    // promptly once the test is done with it.
    auto stop = std::make_shared<std::atomic<bool>>(false);

    std::vector<JobSpec> specs;
    JobSpec slow;
    slow.key = "iso/slow";
    slow.timeout_ms = 80;
    slow.fn = [stop](const JobContext &) {
        for (int i = 0; i < 100 && !stop->load(); ++i)
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        return JobOutput{};
    };
    specs.push_back(std::move(slow));
    specs.push_back(fakeJob("iso/fast"));

    const ResultSink sink = SweepEngine(quietOptions(2)).run(specs);
    ASSERT_EQ(sink.size(), 2u);
    const JobRecord *slow_rec = sink.find("iso/slow");
    ASSERT_NE(slow_rec, nullptr);
    EXPECT_EQ(slow_rec->status, JobStatus::TimedOut);
    EXPECT_NE(slow_rec->error.find("timed out"), std::string::npos);
    EXPECT_EQ(sink.find("iso/fast")->status, JobStatus::Ok);

    stop->store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
}

// ------------------------------------------------------- result export

TEST(ResultSink, JsonCarriesEveryRecordAndFailureDetail)
{
    std::vector<JobSpec> specs = {fakeJob("exp/one"), fakeJob("exp/two")};
    JobSpec bad;
    bad.key = "exp/bad";
    bad.fn = [](const JobContext &) -> JobOutput {
        throw std::runtime_error("quoted \"message\"");
    };
    specs.push_back(std::move(bad));

    const ResultSink sink = SweepEngine(quietOptions(2)).run(specs);
    const std::string path = "test_exec_results.json";
    ASSERT_TRUE(sink.writeJson(path, "unit", 0xD15EA5E, 2));
    const std::string json = slurp(path);
    std::remove(path.c_str());

    EXPECT_NE(json.find("\"sweep\":\"unit\""), std::string::npos);
    EXPECT_NE(json.find("\"total\":3"), std::string::npos);
    EXPECT_NE(json.find("\"ok\":2"), std::string::npos);
    EXPECT_NE(json.find("\"failed\":1"), std::string::npos);
    EXPECT_NE(json.find("\"key\":\"exp/one\""), std::string::npos);
    EXPECT_NE(json.find("\"status\":\"failed\""), std::string::npos);
    EXPECT_NE(json.find("quoted \\\"message\\\""), std::string::npos);
    EXPECT_NE(json.find("\"seed_lo\""), std::string::npos);
    // Balanced braces — cheap structural sanity without a parser.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

TEST(ResultSink, CsvContainsOnlySuccessfulRows)
{
    std::vector<JobSpec> specs = {fakeJob("csv/one")};
    JobSpec bad;
    bad.key = "csv/bad";
    bad.fn = [](const JobContext &) -> JobOutput {
        throw std::runtime_error("no row for me");
    };
    specs.push_back(std::move(bad));

    const ResultSink sink = SweepEngine(quietOptions(1)).run(specs);
    const std::string path = "test_exec_results.csv";
    ASSERT_TRUE(sink.writeCsv(path));
    const std::string csv = slurp(path);
    std::remove(path.c_str());

    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2)
        << "header + one ok row";
    EXPECT_NE(csv.find("csv/one"), std::string::npos);
    EXPECT_EQ(csv.find("csv/bad"), std::string::npos);
}

TEST(ResultSink, ToGridBridgesOkRecords)
{
    std::vector<JobSpec> specs = {fakeJob("grid/a"), fakeJob("grid/b")};
    const ResultSink sink = SweepEngine(quietOptions(2)).run(specs);
    const ResultGrid grid = sink.toGrid();
    EXPECT_TRUE(grid.has("fake", "grid/a"));
    EXPECT_TRUE(grid.has("fake", "grid/b"));
    EXPECT_EQ(grid.at("fake", "grid/a").cycles,
              sink.find("grid/a")->out.sim.cycles);
}

// ------------------------------------------------------------ registry

TEST(SweepRegistry, PortedGridsAreRegistered)
{
    EXPECT_GE(sweepGrids().size(), 3u);
    for (const char *name : {"fig9", "table4", "multicore"}) {
        const SweepGrid *grid = findSweepGrid(name);
        ASSERT_NE(grid, nullptr) << name;
        EXPECT_EQ(grid->name, name);
        EXPECT_FALSE(grid->title.empty());
    }
    EXPECT_EQ(findSweepGrid("no-such-grid"), nullptr);
}

TEST(SweepRegistry, JobKeysAreUniqueAndStable)
{
    const SimParams params;
    for (const SweepGrid &grid : sweepGrids()) {
        const auto jobs = grid.make_jobs(params);
        ASSERT_FALSE(jobs.empty()) << grid.name;
        std::set<std::string> keys;
        for (const JobSpec &spec : jobs) {
            EXPECT_TRUE(keys.insert(spec.key).second)
                << "duplicate key " << spec.key;
            EXPECT_EQ(spec.key.rfind(grid.name + "/", 0), 0u)
                << "keys are namespaced by grid: " << spec.key;
        }
        // Rebuilding the grid yields the same keys in the same order.
        const auto again = grid.make_jobs(params);
        ASSERT_EQ(again.size(), jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i)
            EXPECT_EQ(again[i].key, jobs[i].key);
    }
}

} // namespace necpt
