/** @file Unit tests for the CSV/JSON result export. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/report.hh"

namespace necpt
{

namespace
{
SimResult
sampleResult()
{
    SimResult r;
    r.config = "Nested ECPTs";
    r.app = "GUPS";
    r.instructions = 1000;
    r.cycles = 5000;
    r.mmu_busy_cycles = 1234;
    r.walks = 42;
    r.mmu_requests = 126;
    r.l2_mpki = 10.5;
    r.l3_mpki = 7.25;
    r.mmu_rpki = 126.0;
    r.step_avg[0] = 2.8;
    r.step_avg[1] = 2.8;
    r.step_avg[2] = 1.6;
    r.stc_hit_rate = 0.99;
    r.guest_structure_bytes = 1 << 20;
    r.host_structure_bytes = 2 << 20;
    r.pte_bytes_total = 4096;
    return r;
}
} // namespace

TEST(Report, CsvRoundTripParses)
{
    const std::string path = "/tmp/necpt_report_test.csv";
    ASSERT_TRUE(writeCsvFile(path, {sampleResult(), sampleResult()}));

    std::ifstream in(path);
    std::string header, row1, row2, extra;
    ASSERT_TRUE(std::getline(in, header));
    ASSERT_TRUE(std::getline(in, row1));
    ASSERT_TRUE(std::getline(in, row2));
    EXPECT_FALSE(std::getline(in, extra));

    // Header and rows have the same number of columns.
    auto columns = [](const std::string &line) {
        int n = 1;
        bool quoted = false;
        for (char c : line) {
            if (c == '"')
                quoted = !quoted;
            else if (c == ',' && !quoted)
                ++n;
        }
        return n;
    };
    EXPECT_EQ(columns(header), columns(row1));
    EXPECT_EQ(row1, row2);
    EXPECT_NE(row1.find("\"Nested ECPTs\""), std::string::npos);
    EXPECT_NE(row1.find("2.800"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Report, JsonContainsKeyFields)
{
    const std::string json = toJson(sampleResult());
    EXPECT_NE(json.find("\"config\":\"Nested ECPTs\""),
              std::string::npos);
    EXPECT_NE(json.find("\"walks\":42"), std::string::npos);
    EXPECT_NE(json.find("\"step_avg\":[2.8,2.8,1.6]"),
              std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}

TEST(Report, EscapesQuotes)
{
    SimResult r = sampleResult();
    r.app = "we\"ird";
    const std::string json = toJson(r);
    EXPECT_NE(json.find("we\\\"ird"), std::string::npos);
}

TEST(Report, CsvFileFailureReturnsFalse)
{
    EXPECT_FALSE(writeCsvFile("/no/such/dir/x.csv", {sampleResult()}));
}

} // namespace necpt
