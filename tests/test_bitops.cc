/** @file Unit tests for common/bitops.hh. */

#include <gtest/gtest.h>

#include "common/bitops.hh"

namespace necpt
{

TEST(Bitops, MaskBasics)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(12), 0xFFFu);
    EXPECT_EQ(mask(64), ~std::uint64_t{0});
}

TEST(Bitops, BitsExtract)
{
    EXPECT_EQ(bits(0xABCD, 15, 12), 0xAu);
    EXPECT_EQ(bits(0xABCD, 11, 8), 0xBu);
    EXPECT_EQ(bits(0xFFFFFFFFFFFFFFFFULL, 63, 0), ~std::uint64_t{0});
    EXPECT_EQ(bits(0x8000000000000000ULL, 63, 63), 1u);
}

TEST(Bitops, AlignUpDown)
{
    EXPECT_EQ(alignDown(0x1234, 0x1000), 0x1000u);
    EXPECT_EQ(alignUp(0x1234, 0x1000), 0x2000u);
    EXPECT_EQ(alignUp(0x1000, 0x1000), 0x1000u);
    EXPECT_EQ(alignDown(0, 0x1000), 0u);
}

TEST(Bitops, PowersOfTwo)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(4096));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_EQ(floorLog2(1), 0);
    EXPECT_EQ(floorLog2(4096), 12);
    EXPECT_EQ(floorLog2(4097), 12);
    EXPECT_EQ(ceilLog2(4096), 12);
    EXPECT_EQ(ceilLog2(4097), 13);
}

TEST(Bitops, PageArithmetic)
{
    const Addr va = 0x1234'5678'9ABCULL;
    EXPECT_EQ(pageNumber(va, PageSize::Page4K), va >> 12);
    EXPECT_EQ(pageNumber(va, PageSize::Page2M), va >> 21);
    EXPECT_EQ(pageNumber(va, PageSize::Page1G), va >> 30);
    EXPECT_EQ(pageBase(va, PageSize::Page4K) + pageOffset(va, PageSize::Page4K), va);
    EXPECT_EQ(pageBase(va, PageSize::Page2M) + pageOffset(va, PageSize::Page2M), va);
    EXPECT_EQ(lineAddr(0x12345), 0x12340u);
}

TEST(Bitops, PageSizeHelpers)
{
    EXPECT_EQ(pageBytes(PageSize::Page4K), 4096u);
    EXPECT_EQ(pageBytes(PageSize::Page2M), 2u << 20);
    EXPECT_EQ(pageBytes(PageSize::Page1G), 1u << 30);
    EXPECT_EQ(pageShift(PageSize::Page4K), 12);
    EXPECT_EQ(pageShift(PageSize::Page2M), 21);
    EXPECT_EQ(pageShift(PageSize::Page1G), 30);
    EXPECT_STREQ(pageSizeName(PageSize::Page4K), "4K");
}

/** Figure-1 index split: bits 47-39 / 38-30 / 29-21 / 20-12. */
TEST(Bitops, RadixIndexSplit)
{
    const Addr va = (0x1FFULL << 39) | (0x0ABULL << 30)
        | (0x0CDULL << 21) | (0x0EFULL << 12) | 0x123;
    EXPECT_EQ(radixIndex(va, 4), 0x1FFu);
    EXPECT_EQ(radixIndex(va, 3), 0x0ABu);
    EXPECT_EQ(radixIndex(va, 2), 0x0CDu);
    EXPECT_EQ(radixIndex(va, 1), 0x0EFu);
}

/** Property sweep: page base/offset reconstruct the address. */
class BitopsPageParam : public ::testing::TestWithParam<int> {};

TEST_P(BitopsPageParam, BaseOffsetRoundTrip)
{
    const auto size = all_page_sizes[GetParam()];
    for (Addr va = 0; va < (1ULL << 40); va += 0x37FF'FFF1ULL) {
        EXPECT_EQ(pageBase(va, size) + pageOffset(va, size), va);
        EXPECT_EQ(pageBase(va, size) % pageBytes(size), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(AllSizes, BitopsPageParam,
                         ::testing::Values(0, 1, 2));

} // namespace necpt
