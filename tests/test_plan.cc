/** @file Unit tests for the ECPT walk planner (walk/plan.hh). */

#include <gtest/gtest.h>

#include <bit>

#include "mmu/cwc.hh"
#include "pt/ecpt.hh"
#include "tests/test_util.hh"
#include "walk/plan.hh"

namespace necpt
{

namespace
{

struct PlanFixture : public ::testing::Test
{
    PlanFixture()
        : pt(alloc, [] {
              EcptConfig cfg;
              cfg.initial_slots = {256, 256, 128};
              cfg.cwt_initial_slots = {128, 128, 64};
              cfg.has_pte_cwt = true;
              return cfg;
          }())
    {}

    /** Warm the CWC with the entries covering @p va. */
    void
    warmCwc(CuckooWalkCache &cwc, Addr va)
    {
        for (auto level : all_page_sizes) {
            const CuckooWalkTable *cwt = pt.cwtOf(level);
            if (!cwt || !cwc.caches(level))
                continue;
            cwc.fill(level, cwt->entryKey(va), 1);
        }
    }

    BumpAllocator alloc;
    EcptPageTable pt;
};

} // namespace

TEST_F(PlanFixture, ColdCwcGivesCompleteWalk)
{
    CuckooWalkCache cwc({16, 16, 2});
    pt.map(0x1000, 0xA000, PageSize::Page4K);
    PlanOptions options;
    options.use_pte_info = true;
    const auto plan = planEcptWalk(pt, cwc, 0x1000, options);
    EXPECT_EQ(plan.kind, WalkKind::Complete);
    for (int s = 0; s < num_page_sizes; ++s)
        EXPECT_EQ(plan.way_mask[s], pt.allWays());
    EXPECT_TRUE(plan.cwc_missed[static_cast<int>(PageSize::Page1G)]);
}

TEST_F(PlanFixture, WarmCwcGivesDirectWalkFor2M)
{
    CuckooWalkCache cwc({16, 16, 2});
    pt.map(0x4000'0000, 0x1'0020'0000, PageSize::Page2M);
    warmCwc(cwc, 0x4000'0000);
    const auto plan = planEcptWalk(pt, cwc, 0x4000'0000, {});
    EXPECT_EQ(plan.kind, WalkKind::Direct);
    const int pmd = static_cast<int>(PageSize::Page2M);
    EXPECT_EQ(std::popcount(plan.way_mask[pmd]), 1);
    EXPECT_EQ(plan.way_mask[static_cast<int>(PageSize::Page1G)], 0u);
    EXPECT_EQ(plan.way_mask[static_cast<int>(PageSize::Page4K)], 0u);
}

TEST_F(PlanFixture, WarmCwcWithoutPteInfoGivesSizeWalk)
{
    CuckooWalkCache cwc({0, 16, 2}); // no PTE level (guest gCWC)
    pt.map(0x1000, 0xA000, PageSize::Page4K);
    warmCwc(cwc, 0x1000);
    PlanOptions options;
    options.use_pte_info = false;
    const auto plan = planEcptWalk(pt, cwc, 0x1000, options);
    EXPECT_EQ(plan.kind, WalkKind::Size);
    EXPECT_EQ(plan.way_mask[static_cast<int>(PageSize::Page4K)],
              pt.allWays());
    EXPECT_EQ(plan.way_mask[static_cast<int>(PageSize::Page2M)], 0u);
}

TEST_F(PlanFixture, PteCwtHitGivesDirectWalkFor4K)
{
    CuckooWalkCache cwc({16, 16, 2});
    pt.map(0x1000, 0xA000, PageSize::Page4K);
    warmCwc(cwc, 0x1000);
    PlanOptions options;
    options.use_pte_info = true;
    const auto plan = planEcptWalk(pt, cwc, 0x1000, options);
    EXPECT_EQ(plan.kind, WalkKind::Direct);
    EXPECT_EQ(std::popcount(
                  plan.way_mask[static_cast<int>(PageSize::Page4K)]),
              1);
}

TEST_F(PlanFixture, PudHitPmdMissGivesPartialWalkInMixedRegion)
{
    CuckooWalkCache cwc({0, 16, 2});
    // A mixed 1GB region: both 4KB and 2MB mappings, so the PUD
    // descriptor cannot pin the size and the missing PMD info forces
    // a two-table (Partial) probe.
    pt.map(0x1000, 0xA000, PageSize::Page4K);
    pt.map(0x40'0000, 0xC0'0000, PageSize::Page2M);
    const CuckooWalkTable *pud = pt.cwtOf(PageSize::Page1G);
    cwc.fill(PageSize::Page1G, pud->entryKey(0x1000), 1);
    const auto plan = planEcptWalk(pt, cwc, 0x1000, {});
    EXPECT_EQ(plan.kind, WalkKind::Partial);
    EXPECT_EQ(plan.way_mask[static_cast<int>(PageSize::Page1G)], 0u);
    EXPECT_NE(plan.way_mask[static_cast<int>(PageSize::Page2M)], 0u);
    EXPECT_NE(plan.way_mask[static_cast<int>(PageSize::Page4K)], 0u);
}

TEST_F(PlanFixture, UniformRegionPinsSizeFromPudAlone)
{
    CuckooWalkCache cwc({0, 16, 2});
    // A uniformly-4KB 1GB region: the PUD descriptor alone restricts
    // the probe set to the PTE table — a Size walk with no PMD-CWC
    // dependence (the mechanism behind the paper's cheap host walks).
    pt.map(0x1000, 0xA000, PageSize::Page4K);
    const CuckooWalkTable *pud = pt.cwtOf(PageSize::Page1G);
    cwc.fill(PageSize::Page1G, pud->entryKey(0x1000), 1);
    const auto plan = planEcptWalk(pt, cwc, 0x1000, {});
    EXPECT_EQ(plan.kind, WalkKind::Size);
    EXPECT_EQ(plan.way_mask[static_cast<int>(PageSize::Page2M)], 0u);
    EXPECT_EQ(plan.way_mask[static_cast<int>(PageSize::Page4K)],
              pt.allWays());
}

TEST_F(PlanFixture, OneGigPageDirect)
{
    CuckooWalkCache cwc({16, 16, 2});
    pt.map(0x40'0000'0000, 0x1'4000'0000, PageSize::Page1G);
    warmCwc(cwc, 0x40'0000'0000);
    const auto plan = planEcptWalk(pt, cwc, 0x40'1234'5678, {});
    EXPECT_EQ(plan.kind, WalkKind::Direct);
    EXPECT_EQ(std::popcount(
                  plan.way_mask[static_cast<int>(PageSize::Page1G)]),
              1);
}

TEST_F(PlanFixture, RefillsFillCwcAndReportTraffic)
{
    CuckooWalkCache cwc({16, 16, 2});
    pt.map(0x1000, 0xA000, PageSize::Page4K);
    PlanOptions options;
    options.use_pte_info = true;
    const auto plan = planEcptWalk(pt, cwc, 0x1000, options);
    std::vector<Addr> fetches;
    collectCwcRefills(pt, cwc, 0x1000, plan, options, fetches);
    // One descriptor-line fetch per missed level.
    EXPECT_EQ(fetches.size(), 3u);
    // Now the CWC is warm: next plan is pruned.
    const auto warm = planEcptWalk(pt, cwc, 0x1000, options);
    EXPECT_EQ(warm.kind, WalkKind::Direct);
}

TEST_F(PlanFixture, ClassifyBoundaries)
{
    EcptProbePlan plan;
    plan.way_mask = {1, 0, 0};
    EXPECT_EQ(classifyPlan(plan, 3), WalkKind::Direct);
    plan.way_mask = {0b111, 0, 0};
    EXPECT_EQ(classifyPlan(plan, 3), WalkKind::Size);
    plan.way_mask = {0b111, 0b111, 0};
    EXPECT_EQ(classifyPlan(plan, 3), WalkKind::Partial);
    plan.way_mask = {0b111, 0b111, 0b111};
    EXPECT_EQ(classifyPlan(plan, 3), WalkKind::Complete);
}

} // namespace necpt
