/** @file Parameterized differential sweep: every walker, across THP
 *  modes, coverage levels, cuckoo way counts, and radix depths, must
 *  agree with the functional ground truth and respect its design's
 *  structural bounds. */

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hh"
#include "walk/baselines.hh"
#include "walk/hybrid.hh"
#include "walk/native_radix.hh"
#include "walk/nested_ecpt.hh"
#include "walk/nested_radix.hh"
#include "walk/shadow.hh"

namespace necpt
{

namespace
{

enum class WalkerSel
{
    NestedRadix,
    NestedEcptAdvanced,
    NestedEcptPlain,
    Hybrid,
    Agile,
    FlatNested,
    Shadow,
};

const char *
walkerName(WalkerSel sel)
{
    switch (sel) {
      case WalkerSel::NestedRadix: return "NestedRadix";
      case WalkerSel::NestedEcptAdvanced: return "EcptAdvanced";
      case WalkerSel::NestedEcptPlain: return "EcptPlain";
      case WalkerSel::Hybrid: return "Hybrid";
      case WalkerSel::Agile: return "Agile";
      case WalkerSel::FlatNested: return "FlatNested";
      case WalkerSel::Shadow: return "Shadow";
    }
    return "?";
}

/** (walker, thp, guest coverage, cuckoo ways, radix levels) */
using MatrixParam = std::tuple<WalkerSel, bool, double, int, int>;

class WalkerMatrix : public ::testing::TestWithParam<MatrixParam>
{
};

std::string
matrixName(const ::testing::TestParamInfo<MatrixParam> &param_info)
{
    const WalkerSel sel = std::get<0>(param_info.param);
    const bool thp = std::get<1>(param_info.param);
    const double coverage = std::get<2>(param_info.param);
    const int ways = std::get<3>(param_info.param);
    const int levels = std::get<4>(param_info.param);
    std::string name = walkerName(sel);
    name += thp ? "_thp" : "_4k";
    name += "_cov" + std::to_string(static_cast<int>(coverage * 10));
    name += "_d" + std::to_string(ways);
    name += "_L" + std::to_string(levels);
    return name;
}

} // namespace

TEST_P(WalkerMatrix, AgreesWithGroundTruthEverywhere)
{
    const auto [sel, thp, coverage, ways, levels] = GetParam();

    SystemConfig cfg;
    cfg.virtualized = true;
    cfg.guest_thp = thp;
    cfg.host_thp = thp;
    cfg.guest_thp_coverage = coverage;
    cfg.host_thp_coverage = 0.8;
    cfg.radix_levels = levels;
    cfg.guest_phys_bytes = 2ULL << 30;
    cfg.host_phys_bytes = 3ULL << 30;
    cfg.guest_ecpt.initial_slots = {512, 512, 256};
    cfg.guest_ecpt.ways = ways;
    cfg.host_ecpt = cfg.guest_ecpt;
    cfg.host_ecpt.has_pte_cwt = true;

    const bool guest_ecpt = sel == WalkerSel::NestedEcptAdvanced
        || sel == WalkerSel::NestedEcptPlain;
    cfg.guest_kind = guest_ecpt ? PtKind::Ecpt : PtKind::Radix;
    cfg.host_kind = guest_ecpt || sel == WalkerSel::Hybrid
        ? PtKind::Ecpt
        : (sel == WalkerSel::FlatNested ? PtKind::Flat : PtKind::Radix);

    NestedSystem sys(cfg);
    MemoryHierarchy mem(MemHierarchyConfig{}, 1);

    std::unique_ptr<Walker> walker;
    switch (sel) {
      case WalkerSel::NestedRadix:
        walker = std::make_unique<NestedRadixWalker>(sys, mem, 0);
        break;
      case WalkerSel::NestedEcptAdvanced:
        walker = std::make_unique<NestedEcptWalker>(
            sys, mem, 0, NestedEcptFeatures::advanced());
        break;
      case WalkerSel::NestedEcptPlain:
        walker = std::make_unique<NestedEcptWalker>(
            sys, mem, 0, NestedEcptFeatures::plain());
        break;
      case WalkerSel::Hybrid:
        walker = std::make_unique<HybridWalker>(sys, mem, 0);
        break;
      case WalkerSel::Agile:
        walker = std::make_unique<AgilePagingWalker>(sys, mem, 0);
        break;
      case WalkerSel::FlatNested:
        walker = std::make_unique<FlatNestedWalker>(sys, mem, 0);
        break;
      case WalkerSel::Shadow:
        walker = std::make_unique<ShadowPagingWalker>(sys, mem, 0);
        break;
    }

    const Addr base = sys.mmapRegion(96ULL << 20);
    Rng rng(0xFACADE ^ static_cast<std::uint64_t>(ways * 10 + levels));
    Cycles now = 0;
    for (int i = 0; i < 120; ++i) {
        const Addr gva = base + rng.below(96ULL << 20);
        sys.ensureResident(gva);
        const WalkResult r = walker->translate(gva, now);
        ASSERT_TRUE(r.translation.valid)
            << walkerName(sel) << " @" << std::hex << gva;
        ASSERT_EQ(r.translation.apply(gva),
                  sys.fullTranslate(gva).apply(gva))
            << walkerName(sel) << " @" << std::hex << gva;
        ASSERT_GT(r.latency, 0u);
        // Structural bounds on foreground accesses per design.
        const int max_radix = levels == 5 ? 35 : 24;
        switch (sel) {
          case WalkerSel::NestedRadix:
            ASSERT_LE(r.mem_accesses, max_radix);
            break;
          case WalkerSel::Agile:
            ASSERT_LE(r.mem_accesses, levels);
            break;
          case WalkerSel::FlatNested:
            ASSERT_LE(r.mem_accesses, 2 * levels + 1);
            break;
          case WalkerSel::Shadow:
            ASSERT_LE(r.mem_accesses, levels);
            break;
          default: {
            // ECPT walks: at most n*d + (n*d during resize doubling)
            // probes per phase; three foreground phases.
            const int cap = 2 * 3 * ways * num_page_sizes + 6;
            ASSERT_LE(r.mem_accesses, cap) << walkerName(sel);
            break;
          }
        }
        now += 1500;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, WalkerMatrix,
    ::testing::Combine(
        ::testing::Values(WalkerSel::NestedRadix,
                          WalkerSel::NestedEcptAdvanced,
                          WalkerSel::NestedEcptPlain, WalkerSel::Hybrid,
                          WalkerSel::Agile, WalkerSel::FlatNested,
                          WalkerSel::Shadow),
        ::testing::Values(false, true),   // THP
        ::testing::Values(0.0, 0.5, 1.0), // guest coverage
        ::testing::Values(2, 3),          // cuckoo ways
        ::testing::Values(4, 5)),         // radix levels
    matrixName);

} // namespace necpt
