/**
 * @file
 * Ablation of the design choices DESIGN.md calls out:
 *   (a) cuckoo ways d = 2 / 3 / 4 (the paper fixes d = 3),
 *   (b) elastic resize threshold 0.4 / 0.6 / 0.8,
 *   (c) MMU issue width 1 / 2 / 4 / 8 (parallelism actually matters).
 */

#include "bench/bench_util.hh"

using namespace necpt;

namespace
{

void
runPoint(const std::string &label, ExperimentConfig cfg,
         const std::vector<std::string> &apps, const SimParams &params)
{
    std::vector<double> busy;
    std::vector<double> cycles;
    for (const auto &app : apps) {
        const SimResult r = runSim(cfg, params, app);
        busy.push_back(static_cast<double>(r.mmu_busy_cycles)
                       / static_cast<double>(r.walks));
        cycles.push_back(static_cast<double>(r.cycles));
    }
    std::printf("  %-28s busy/walk", label.c_str());
    for (double b : busy)
        std::printf(" %7.0f", b);
    std::printf("\n");
}

} // namespace

int
main()
{
    benchBanner("Design-choice ablations",
                "DESIGN.md design-space notes");
    SimParams params = scaledParams(paramsFromEnv(), 4, 2);
    auto apps = appsFromEnv();
    if (apps.size() > 3)
        apps = {"GUPS", "BFS", "MUMmer"};

    std::printf("Apps:");
    for (const auto &a : apps)
        std::printf(" %s", a.c_str());
    std::printf("\n");

    printHeader("(a) cuckoo ways d (paper: 3)");
    for (const int ways : {2, 3, 4}) {
        ExperimentConfig cfg = makeConfig(ConfigId::NestedEcpt);
        cfg.system.guest_ecpt.ways = ways;
        cfg.system.host_ecpt.ways = ways;
        runPoint("d = " + std::to_string(ways), cfg, apps, params);
    }

    printHeader("(b) elastic resize threshold (paper-style: 0.6)");
    for (const double thr : {0.4, 0.6, 0.8}) {
        ExperimentConfig cfg = makeConfig(ConfigId::NestedEcpt);
        // Smaller initial tables make the threshold actually engage at
        // bench scale; higher thresholds trade table size (and cache
        // footprint) against cuckoo-path length.
        cfg.system.guest_ecpt.initial_slots = {4096, 4096, 2048};
        cfg.system.host_ecpt.initial_slots = {4096, 4096, 2048};
        cfg.system.guest_ecpt.resize_threshold = thr;
        cfg.system.host_ecpt.resize_threshold = thr;
        runPoint("threshold = " + std::to_string(thr).substr(0, 3), cfg,
                 apps, params);
    }

    printHeader("(c) MMU issue width (parallel probes per wave)");
    for (const int width : {1, 2, 4, 8}) {
        ExperimentConfig cfg = makeConfig(ConfigId::NestedEcpt);
        cfg.memory.mmu_issue_width = width;
        runPoint("width = " + std::to_string(width), cfg, apps,
                 params);
    }
    std::printf("\nWidth 1 serializes the probe groups — the walk "
                "degenerates toward radix-like sequential behavior, "
                "which is exactly the paper's case for judicious "
                "parallelism.\n");
    return 0;
}
