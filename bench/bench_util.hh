/**
 * @file
 * Shared helpers for the per-table/per-figure bench binaries.
 *
 * Every bench prints the same rows/series its paper counterpart
 * reports, using the environment run-length knobs documented in
 * sim/experiment.hh (NECPT_WARMUP / NECPT_MEASURE / NECPT_SCALE /
 * NECPT_APPS / NECPT_FULL).
 */

#ifndef NECPT_BENCH_BENCH_UTIL_HH
#define NECPT_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "exec/registry.hh"
#include "sim/experiment.hh"
#include "workloads/workload.hh"

namespace necpt
{

/**
 * Run a grid registered in exec/registry.hh end to end (banner,
 * parallel fan-out via the sweep engine, summary tables) with the
 * environment-knob parameters — the whole main() of a ported bench.
 * @return process exit code (2 if any job failed).
 */
inline int
runRegisteredSweep(const std::string &grid_name)
{
    const SweepGrid *grid = findSweepGrid(grid_name);
    if (!grid) {
        std::fprintf(stderr, "sweep grid '%s' is not registered\n",
                     grid_name.c_str());
        return 1;
    }
    const SimParams params = paramsFromEnv();
    SweepOptions options;
    options.base_seed = params.seed;
    const ResultSink sink = runSweepGrid(*grid, params, options);
    return sink.failedCount() ? 2 : 0;
}

/** Print the standard bench banner. */
inline void
benchBanner(const std::string &what, const std::string &paper_ref)
{
    std::printf("######################################################\n");
    std::printf("# %s\n", what.c_str());
    std::printf("# Reproduces: %s\n", paper_ref.c_str());
    std::printf("######################################################\n");
}

/** Geometric-mean helper over per-app values. */
inline double
geoMeanOver(const std::vector<std::string> &apps,
            const std::function<double(const std::string &)> &value)
{
    std::vector<double> values;
    for (const auto &app : apps)
        values.push_back(value(app));
    return geoMean(values);
}

} // namespace necpt

#endif // NECPT_BENCH_BENCH_UTIL_HH
