/**
 * @file
 * Figure 11: histogram of nested page-walk latencies for MUMmer,
 * Nested Radix THP vs Nested ECPTs THP. The paper's radix curve shows
 * a long multi-hundred-cycle tail from sequential pointer chasing;
 * nested ECPT walks complete in about four DRAM accesses' worth.
 */

#include "bench/bench_util.hh"

using namespace necpt;

int
main()
{
    benchBanner("Histogram of nested page-walk latency (MUMmer)",
                "Figure 11");
    const SimParams params = paramsFromEnv();

    const std::vector<ExperimentConfig> configs = {
        makeConfig(ConfigId::NestedRadixThp),
        makeConfig(ConfigId::NestedEcptThp),
    };
    const ResultGrid grid = runGrid(configs, {"MUMmer"}, params);

    const SimResult &radix = grid.at("Nested Radix THP", "MUMmer");
    const SimResult &ecpt = grid.at("Nested ECPTs THP", "MUMmer");

    std::printf("%-14s %14s %14s\n", "MMU cycles", "NestedRadix THP",
                "NestedECPT THP");
    const auto &h = radix.walk_latency;
    for (std::size_t bin = 0; bin + 1 < h.numBins(); ++bin) {
        const auto lo = bin * h.binWidth();
        std::printf("[%4llu,%4llu)   %13.4f %14.4f\n",
                    (unsigned long long)lo,
                    (unsigned long long)(lo + h.binWidth()),
                    radix.walk_latency.probability(bin),
                    ecpt.walk_latency.probability(bin));
    }
    std::printf("%-14s %14.4f %14.4f\n", "overflow",
                radix.walk_latency.probability(h.numBins() - 1),
                ecpt.walk_latency.probability(h.numBins() - 1));

    std::printf("\nSummary: mean %llu vs %llu cycles; "
                "p95 %llu vs %llu; max %llu vs %llu\n",
                (unsigned long long)radix.walk_latency.mean(),
                (unsigned long long)ecpt.walk_latency.mean(),
                (unsigned long long)radix.walk_latency.percentile(95),
                (unsigned long long)ecpt.walk_latency.percentile(95),
                (unsigned long long)radix.walk_latency.max(),
                (unsigned long long)ecpt.walk_latency.max());
    std::printf("Paper: radix THP exhibits a long tail of several "
                "hundred cycles; ECPT walks finish within ~4 DRAM "
                "accesses.\n");
    return 0;
}
