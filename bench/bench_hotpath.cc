/**
 * @file
 * Hot-path component micro-benchmarks (wall clock).
 *
 * Tight loops over the structures the per-access translation path is
 * made of — the packed set-associative cache, the elastic cuckoo
 * table's find and probe-address generation, and the one-pass hash
 * family — reported as operations per second and written to
 * BENCH_hotpath.json in the same shape bench_sim_throughput emits, so
 * tools/check_bench.py can diff either artifact against its committed
 * baseline. These are the structures the allocation-free-hot-path work
 * targets; a layout or inlining regression shows up here first, at
 * much finer grain than the end-to-end throughput bench.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "common/hash.hh"
#include "mem/cache.hh"
#include "pt/cuckoo.hh"
#include "tests/test_util.hh" // BumpAllocator backing the tables

using namespace necpt;

namespace
{

struct Sample
{
    std::string name;
    std::uint64_t ops;
    double seconds;
    double rate;
};

/** Time @p body (which performs @p ops operations) once. */
template <typename Fn>
Sample
measure(const std::string &name, std::uint64_t ops, Fn &&body)
{
    const auto begin = std::chrono::steady_clock::now();
    body();
    const auto end = std::chrono::steady_clock::now();
    Sample s;
    s.name = name;
    s.ops = ops;
    s.seconds = std::chrono::duration<double>(end - begin).count();
    s.rate = s.seconds > 0 ? static_cast<double>(ops) / s.seconds : 0.0;
    std::printf("%-28s %12llu ops  %8.3f s  %14.0f ops/s\n", name.c_str(),
                (unsigned long long)ops, s.seconds, s.rate);
    return s;
}

volatile std::uint64_t g_sink = 0;

Sample
cacheAccess()
{
    // 512KB, 8-way: the L2 shape. Working set sized to hit ~always.
    SetAssocCache cache(CacheConfig{"l2", 512 * 1024, 8, 16, 4});
    const Addr span = 256 * 1024;
    for (Addr a = 0; a < span; a += 64)
        cache.fill(a);
    const std::uint64_t rounds = 400;
    const std::uint64_t ops = rounds * (span / 64);
    return measure("setassoc_access_hit", ops, [&] {
        std::uint64_t hits = 0;
        for (std::uint64_t r = 0; r < rounds; ++r)
            for (Addr a = 0; a < span; a += 64)
                hits += cache.access(a, Requester::Core);
        g_sink = hits;
    });
}

Sample
cacheFill()
{
    // Working set 4x the capacity: every access misses and fills,
    // exercising victim selection and the recency update.
    SetAssocCache cache(CacheConfig{"l2", 512 * 1024, 8, 16, 4});
    const Addr span = 2 * 1024 * 1024;
    const std::uint64_t rounds = 50;
    const std::uint64_t ops = rounds * (span / 64);
    return measure("setassoc_fill_evict", ops, [&] {
        std::uint64_t misses = 0;
        for (std::uint64_t r = 0; r < rounds; ++r) {
            for (Addr a = 0; a < span; a += 64) {
                if (!cache.access(a, Requester::Mmu)) {
                    cache.fill(a);
                    ++misses;
                }
            }
        }
        g_sink = misses;
    });
}

Sample
cuckooFind()
{
    BumpAllocator alloc;
    CuckooConfig cfg;
    cfg.ways = 3;
    cfg.initial_slots = 16384;
    cfg.slot_bytes = 64;
    ElasticCuckooTable<std::uint64_t> table(alloc, cfg);
    const std::uint64_t keys = 8000;
    for (std::uint64_t k = 0; k < keys; ++k)
        table.insert(k, k);
    const std::uint64_t rounds = 300;
    return measure("cuckoo_find", rounds * keys, [&] {
        std::uint64_t found = 0;
        for (std::uint64_t r = 0; r < rounds; ++r)
            for (std::uint64_t k = 0; k < keys; ++k)
                found += static_cast<bool>(table.find(k));
        g_sink = found;
    });
}

Sample
cuckooProbeAddrs()
{
    BumpAllocator alloc;
    CuckooConfig cfg;
    cfg.ways = 3;
    cfg.initial_slots = 16384;
    cfg.slot_bytes = 64;
    ElasticCuckooTable<std::uint64_t> table(alloc, cfg);
    const std::uint64_t keys = 8000;
    for (std::uint64_t k = 0; k < keys; ++k)
        table.insert(k, k);
    std::vector<Addr> probes; // caller-owned scratch, reused
    const std::uint64_t rounds = 300;
    return measure("cuckoo_probe_addrs", rounds * keys, [&] {
        std::uint64_t total = 0;
        for (std::uint64_t r = 0; r < rounds; ++r) {
            for (std::uint64_t k = 0; k < keys; ++k) {
                probes.clear();
                table.probeAddrs(k, 0b111, probes);
                total += probes.size();
            }
        }
        g_sink = total;
    });
}

Sample
hashAll()
{
    HashFamily family(0xF00D, 3);
    std::uint64_t out[HashFamily::max_ways];
    const std::uint64_t keys = 4'000'000;
    return measure("hash_all_3way", keys, [&] {
        std::uint64_t acc = 0;
        for (std::uint64_t k = 0; k < keys; ++k) {
            family.hashAll(PageSize::Page4K, k, 3, out);
            acc ^= out[0] ^ out[1] ^ out[2];
        }
        g_sink = acc;
    });
}

} // namespace

int
main()
{
    benchBanner("Hot-path component throughput (wall clock)",
                "engineering harness; not a paper figure");

    std::vector<Sample> samples;
    samples.push_back(cacheAccess());
    samples.push_back(cacheFill());
    samples.push_back(cuckooFind());
    samples.push_back(cuckooProbeAddrs());
    samples.push_back(hashAll());

    const char *path = "BENCH_hotpath.json";
    std::FILE *out = std::fopen(path, "w");
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return 1;
    }
    std::fprintf(out, "{\n  \"bench\": \"hotpath\",\n"
                      "  \"unit\": \"ops_per_sec\",\n  \"results\": [\n");
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const Sample &s = samples[i];
        std::fprintf(out,
                     "    {\"name\": \"%s\", \"ops\": %llu, "
                     "\"seconds\": %.6f, \"ops_per_sec\": %.1f}%s\n",
                     s.name.c_str(), (unsigned long long)s.ops, s.seconds,
                     s.rate, i + 1 < samples.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("\nwrote %s\n", path);
    return 0;
}
