/**
 * @file
 * Figure 10: MMU busy cycles of the nested configurations, normalized
 * to Nested Radix. Paper: Nested ECPTs use 25% (4KB) and 31% (THP)
 * fewer MMU busy cycles on average.
 */

#include "bench/bench_util.hh"

using namespace necpt;

int
main()
{
    benchBanner("MMU busy cycles in nested configurations "
                "(normalized to Nested Radix)",
                "Figure 10");
    const SimParams params = paramsFromEnv();
    const auto apps = appsFromEnv();

    const std::vector<ExperimentConfig> configs = {
        makeConfig(ConfigId::NestedRadix),
        makeConfig(ConfigId::NestedRadixThp),
        makeConfig(ConfigId::NestedEcpt),
        makeConfig(ConfigId::NestedEcptThp),
    };
    const ResultGrid grid = runGrid(configs, apps, params);

    std::vector<std::string> header = apps;
    header.push_back("GeoMean");
    printColumns("Configuration", header);
    for (const ExperimentConfig &cfg : configs) {
        std::vector<double> row;
        for (const auto &app : apps) {
            // Conservation makes the attribution total equal
            // mmu_busy_cycles exactly, so the figure reads the attr.*
            // rollup — any missed charge shifts these columns.
            const double base = grid.at("Nested Radix", app)
                                    .metrics.at("attr.total.cycles");
            row.push_back(grid.at(cfg.name, app)
                              .metrics.at("attr.total.cycles")
                          / base);
        }
        row.push_back(geoMean(row));
        printRow(cfg.name, row);
    }
    std::printf("\nPaper: Nested ECPTs ~0.75 (4KB) and ~0.69 (THP) of "
                "Nested Radix busy cycles.\n");
    return 0;
}
