/**
 * @file
 * Section 9.4: STC capacity sweep. Paper: the 10-entry STC hits 99%;
 * shrinking it to 8 or 4 entries drops the rate to ~90% and ~50%,
 * which is too low.
 */

#include "bench/bench_util.hh"

using namespace necpt;

int
main()
{
    benchBanner("Shortcut Translation Cache capacity sweep",
                "Section 9.4");
    const SimParams params = paramsFromEnv();
    const auto apps = appsFromEnv();

    std::printf("%-12s", "STC entries");
    for (const auto &app : apps)
        std::printf("%9s", app.c_str());
    std::printf("%9s\n", "Mean");

    for (const std::size_t entries : {4ULL, 8ULL, 10ULL, 16ULL}) {
        NestedEcptFeatures features = NestedEcptFeatures::advanced();
        features.stc_entries = entries;
        const ExperimentConfig cfg = makeNestedEcptConfig(
            features, true, "Nested ECPTs STC" + std::to_string(entries));
        std::printf("%-12zu", entries);
        double mean = 0;
        for (const auto &app : apps) {
            const SimResult r = runSim(cfg, params, app);
            std::printf("%9.3f", r.stc_hit_rate);
            mean += r.stc_hit_rate / apps.size();
            std::fflush(stdout);
        }
        std::printf("%9.3f\n", mean);
    }
    std::printf("\nPaper: ~0.99 at 10 entries, ~0.90 at 8, ~0.50 at 4."
                "\n");
    return 0;
}
