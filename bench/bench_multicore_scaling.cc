/**
 * @file
 * Multi-core scaling check: the paper's machine runs the applications
 * on 8 cores sharing the L3 and DRAM. This bench runs multiprogrammed
 * instances on 1/2/4 cores (with the full shared L3 restored) and
 * verifies that the Nested-ECPT advantage survives shared-resource
 * contention — i.e. that the default single-core-slice approximation
 * is not doing the design any favors.
 */

#include "bench/bench_util.hh"

using namespace necpt;

int
main()
{
    benchBanner("Multi-core (multiprogrammed) scaling",
                "Section 8 machine configuration");
    SimParams params = paramsFromEnv();
    params.measure_accesses /= 4;
    params.warmup_accesses /= 2;
    auto apps = appsFromEnv();
    if (apps.size() > 2)
        apps = {"GUPS", "BFS"};

    std::printf("%-6s %-10s %18s %18s %10s\n", "cores", "app",
                "radix cyc/core", "ecpt cyc/core", "speedup");
    for (const int cores : {1, 2, 4}) {
        for (const auto &app : apps) {
            ExperimentConfig radix = makeConfig(ConfigId::NestedRadix);
            ExperimentConfig ecpt = makeConfig(ConfigId::NestedEcpt);
            // Restore the shared resources the cores actually share:
            // cores x 2MB L3 slices and the machine's DRAM channels
            // (the single-core default models a 1/4 share).
            radix.memory.l3.size_bytes =
                static_cast<std::uint64_t>(cores) * 2 * 1024 * 1024;
            radix.memory.dram.channels = std::max(2, cores);
            ecpt.memory.l3.size_bytes = radix.memory.l3.size_bytes;
            ecpt.memory.dram.channels = radix.memory.dram.channels;
            params.cores = cores;
            const SimResult r = runSim(radix, params, app);
            const SimResult e = runSim(ecpt, params, app);
            std::printf("%-6d %-10s %18llu %18llu %9.3fx\n", cores,
                        app.c_str(),
                        static_cast<unsigned long long>(r.cycles),
                        static_cast<unsigned long long>(e.cycles),
                        static_cast<double>(r.cycles) / e.cycles);
        }
    }
    std::printf("\nReading: per-core time grows with core count "
                "(shared L3/DRAM contention). Multiprogrammed copies "
                "multiply translation-bandwidth demand, and the "
                "parallel probe groups are the more bandwidth-"
                "sensitive design — the very effect that motivates the "
                "paper's 'judiciously limiting the number of parallel "
                "memory accesses' (Abstract). The paper's own runs are "
                "one multithreaded instance (shared footprint), which "
                "stresses bandwidth far less than N independent "
                "copies.\n");
    return 0;
}
