/**
 * @file
 * Multi-core scaling check: the paper's machine runs the applications
 * on 8 cores sharing the L3 and DRAM. This bench runs multiprogrammed
 * instances on 1/2/4 cores (with the full shared L3 restored) and
 * verifies that the Nested-ECPT advantage survives shared-resource
 * contention — i.e. that the default single-core-slice approximation
 * is not doing the design any favors.
 *
 * Ported onto the sweep engine ("multicore" in exec/registry.hh);
 * identical output to `necpt_sweep multicore`. NECPT_JOBS sets the
 * worker count.
 */

#include "bench/bench_util.hh"

using namespace necpt;

int
main()
{
    return runRegisteredSweep("multicore");
}
