/**
 * @file
 * Ablation: 5-level radix trees (Intel Sunny Cove / LA57).
 *
 * Section 1 warns that a fifth radix level pushes a nested translation
 * to up to 35 sequential references, while parallel hashed designs are
 * unaffected. This bench runs Nested Radix with 4 and 5 levels against
 * Nested ECPTs (whose walk does not depend on tree depth).
 */

#include "bench/bench_util.hh"

#include "walk/nested_radix.hh"

using namespace necpt;

int
main()
{
    benchBanner("5-level radix ablation (Sunny Cove / LA57)",
                "Section 1 motivation");
    SimParams params = scaledParams(paramsFromEnv(), 2, 1);
    auto apps = appsFromEnv();
    if (apps.size() > 4)
        apps = {"GUPS", "BFS", "MUMmer", "SysBench"};

    ExperimentConfig radix4 = makeConfig(ConfigId::NestedRadix);
    ExperimentConfig radix5 = makeConfig(ConfigId::NestedRadix);
    radix5.name = "Nested Radix 5-level";
    radix5.system.radix_levels = 5;
    ExperimentConfig ecpt = makeConfig(ConfigId::NestedEcpt);

    const ResultGrid grid =
        runGrid({radix4, radix5, ecpt}, apps, params);

    std::printf("%-10s %16s %16s %16s %18s\n", "App",
                "radix4 cyc/walk", "radix5 cyc/walk", "ecpt cyc/walk",
                "ECPT vs radix5");
    for (const auto &app : apps) {
        const SimResult &r4 = grid.at("Nested Radix", app);
        const SimResult &r5 = grid.at("Nested Radix 5-level", app);
        const SimResult &re = grid.at("Nested ECPTs", app);
        std::printf("%-10s %16.0f %16.0f %16.0f %17.3fx\n",
                    app.c_str(),
                    static_cast<double>(r4.mmu_busy_cycles) / r4.walks,
                    static_cast<double>(r5.mmu_busy_cycles) / r5.walks,
                    static_cast<double>(re.mmu_busy_cycles) / re.walks,
                    static_cast<double>(r5.cycles) / re.cycles);
    }

    // The fifth level's cost is clearest on a *cold* walk (warm PWCs
    // absorb the single hot L5 entry at any footprint this repo can
    // simulate): compare cold 2D traversal access counts directly.
    {
        auto coldAccesses = [](int levels) {
            SystemConfig scfg;
            scfg.guest_kind = PtKind::Radix;
            scfg.host_kind = PtKind::Radix;
            scfg.radix_levels = levels;
            scfg.guest_phys_bytes = 2ULL << 30;
            scfg.host_phys_bytes = 3ULL << 30;
            NestedSystem sys(scfg);
            MemoryHierarchy mem(MemHierarchyConfig{}, 1);
            NestedRadixWalker walker(sys, mem, 0);
            const Addr base = sys.mmapRegion(1ULL << 20);
            sys.ensureResident(base);
            return walker.translate(base, 0).mem_accesses;
        };
        std::printf("\nCold nested walk references: 4-level %d "
                    "(paper worst case 24), 5-level %d (paper worst "
                    "case 35)\n",
                    coldAccesses(4), coldAccesses(5));
    }
    std::printf("\nExpected shape: the fifth level lengthens the cold "
                "2D traversal while the nested-ECPT walk stays at "
                "three parallel phases; at steady state small hot L5 "
                "working sets are PWC-absorbed.\n");
    return 0;
}
