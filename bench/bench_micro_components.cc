/**
 * @file
 * Component microbenchmarks (google-benchmark): hash throughput,
 * elastic cuckoo insert/lookup, CWT updates, cache-model accesses,
 * DRAM-model accesses, TLB lookups, and a full nested-ECPT walk.
 */

#include <benchmark/benchmark.h>

#include "common/hash.hh"
#include "mem/hierarchy.hh"
#include "mmu/tlb.hh"
#include "pt/cuckoo.hh"
#include "pt/ecpt.hh"
#include "walk/nested_ecpt.hh"

namespace necpt
{

namespace
{

/** Trivial bump allocator for the micro benches. */
class BumpAlloc : public RegionAllocator
{
  public:
    Addr
    allocRegion(std::uint64_t bytes) override
    {
        const Addr r = cursor;
        cursor += (bytes + 4095) & ~4095ULL;
        return r;
    }
    void freeRegion(Addr, std::uint64_t) override {}

  private:
    Addr cursor = 0x1000'0000;
};

void
BM_CrcHash(benchmark::State &state)
{
    HashFunction hash(42);
    std::uint64_t key = 0x1234'5678;
    for (auto _ : state) {
        benchmark::DoNotOptimize(hash(key));
        ++key;
    }
}
BENCHMARK(BM_CrcHash);

void
BM_CuckooInsert(benchmark::State &state)
{
    BumpAlloc alloc;
    CuckooConfig cfg;
    cfg.initial_slots = 16384;
    ElasticCuckooTable<std::uint64_t> table(alloc, cfg);
    std::uint64_t key = 0;
    for (auto _ : state)
        table.insert(key++, key);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CuckooInsert);

void
BM_CuckooLookup(benchmark::State &state)
{
    BumpAlloc alloc;
    CuckooConfig cfg;
    cfg.initial_slots = 16384;
    ElasticCuckooTable<std::uint64_t> table(alloc, cfg);
    for (std::uint64_t k = 0; k < 10000; ++k)
        table.insert(k, k);
    std::uint64_t key = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.find(key % 10000));
        ++key;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CuckooLookup);

void
BM_EcptMap(benchmark::State &state)
{
    BumpAlloc alloc;
    EcptPageTable pt(alloc, EcptConfig{});
    Addr va = 0;
    for (auto _ : state) {
        pt.map(va, va + (1ULL << 40), PageSize::Page4K);
        va += 4096;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EcptMap);

void
BM_CacheAccess(benchmark::State &state)
{
    SetAssocCache cache({"L2", 512 * 1024, 8, 16, 20});
    Addr addr = 0;
    for (auto _ : state) {
        if (!cache.access(addr, Requester::Core))
            cache.fill(addr);
        addr = (addr + 4096) & ((1ULL << 24) - 1);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_DramAccess(benchmark::State &state)
{
    DramModel dram;
    Addr addr = 0;
    Cycles now = 0;
    for (auto _ : state) {
        now += dram.access(addr, now);
        addr += 8192;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramAccess);

void
BM_TlbLookup(benchmark::State &state)
{
    TlbHierarchy tlb;
    for (Addr va = 0; va < 64 * 4096; va += 4096)
        tlb.install(va, {va + (1ULL << 40), PageSize::Page4K, true});
    Addr va = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb.lookup(va));
        va = (va + 4096) & (64 * 4096 - 1);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbLookup);

void
BM_NestedEcptWalk(benchmark::State &state)
{
    SystemConfig scfg;
    scfg.guest_kind = PtKind::Ecpt;
    scfg.host_kind = PtKind::Ecpt;
    scfg.host_ecpt.has_pte_cwt = true;
    NestedSystem sys(scfg);
    MemoryHierarchy mem(MemHierarchyConfig{}, 1);
    NestedEcptWalker walker(sys, mem, 0);
    const Addr base = sys.mmapRegion(64ULL << 20);
    for (Addr off = 0; off < (64ULL << 20); off += 4096)
        sys.ensureResident(base + off);
    Cycles now = 0;
    Addr off = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(walker.translate(base + off, now));
        off = (off + 4096) & ((64ULL << 20) - 1);
        now += 500;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NestedEcptWalk);

} // namespace

} // namespace necpt

BENCHMARK_MAIN();
