/**
 * @file
 * Table 4: the evaluated applications and their memory footprints
 * (paper values plus the scaled footprints this repo simulates).
 *
 * Ported onto the sweep engine ("table4" in exec/registry.hh);
 * identical output to `necpt_sweep table4`.
 */

#include "bench/bench_util.hh"

using namespace necpt;

int
main()
{
    return runRegisteredSweep("table4");
}
