/**
 * @file
 * Table 4: the evaluated applications and their memory footprints
 * (paper values plus the scaled footprints this repo simulates).
 */

#include "bench/bench_util.hh"

using namespace necpt;

int
main()
{
    benchBanner("Applications evaluated", "Table 4");
    const SimParams params = paramsFromEnv();

    std::printf("%-10s %-16s %-10s %12s %14s\n", "Name", "Domain",
                "Suite", "Paper footpr.", "Simulated");
    for (const auto &name : paperApplications()) {
        auto wl = makeWorkload(name, params.scale_denominator);
        const auto info = wl->info();
        std::printf("%-10s %-16s %-10s %10.1f GB %11.2f GB\n",
                    info.name.c_str(), info.domain.c_str(),
                    info.suite.c_str(),
                    static_cast<double>(info.paper_footprint_bytes)
                        / (1ULL << 30),
                    static_cast<double>(info.footprint_bytes)
                        / (1ULL << 30));
    }
    std::printf("\n(scale denominator: %llu; NECPT_SCALE overrides)\n",
                (unsigned long long)params.scale_denominator);
    return 0;
}
