/**
 * @file
 * Simulator throughput harness: wall-clock simulated accesses per
 * second through the event-driven timing core. Three points span the
 * engine's regimes — single-core serialized (the byte-identical
 * legacy path), 8-core serialized (event interleaving + shared
 * resources), and 8-core with overlapped walks (walk machines, the
 * memory pump, completion events) — followed by a --sim-threads
 * scaling sweep of the thread-sharded core (1/2/4/8 host threads on
 * the 8-core machine; simulated results are bit-identical across the
 * sweep, only wall-clock moves). Emits BENCH_throughput.json so CI
 * can archive the numbers; a regression in the hot loop shows up in
 * the artifact series long before it shows up in review.
 *
 * Run length follows the NECPT_WARMUP / NECPT_MEASURE / NECPT_SCALE
 * environment knobs (sim/experiment.hh).
 */

#include <array>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "common/cycle_ledger.hh"
#include "sim/simulator.hh"

using namespace necpt;

namespace
{

struct Sample
{
    std::string name;
    int cores;
    int mlp;
    int sim_threads;
    std::uint64_t accesses;
    double seconds;
    double rate;
    std::uint64_t sim_cycles;
    /** Walk-cycle attribution profile (attr.<cause>.share), so the
     *  baseline diff can say *where* a regression moved cycles. */
    std::array<double, num_attr_causes> attr_share{};
};

Sample
measure(const std::string &name, int cores, int mlp,
        int sim_threads = 1)
{
    SimParams params = paramsFromEnv();
    params.cores = cores;
    params.max_outstanding_walks = mlp;
    params.sim_threads = sim_threads;
    ExperimentConfig config = makeConfig(ConfigId::NestedEcpt);
    if (cores > 1)
        configureSharedResources(config, cores);

    const auto begin = std::chrono::steady_clock::now();
    const SimResult result = runSim(config, params, "GUPS");
    const auto end = std::chrono::steady_clock::now();

    Sample s;
    s.name = name;
    s.cores = cores;
    s.mlp = mlp;
    s.sim_threads = sim_threads;
    // Total simulated workload accesses driven through the engine
    // (every core runs the full warm-up + measured trace).
    s.accesses = (params.warmup_accesses + params.measure_accesses)
        * static_cast<std::uint64_t>(cores);
    s.seconds = std::chrono::duration<double>(end - begin).count();
    s.rate = s.seconds > 0 ? static_cast<double>(s.accesses) / s.seconds
                           : 0.0;
    s.sim_cycles = result.cycles;
    for (int c = 0; c < num_attr_causes; ++c) {
        const std::string key =
            std::string("attr.")
            + attrCauseName(static_cast<AttrCause>(c)) + ".share";
        s.attr_share[static_cast<std::size_t>(c)] =
            result.metrics.at(key);
    }
    std::printf("%-28s %10llu accesses  %8.3f s  %12.0f acc/s  "
                "(sim cycles %llu)\n",
                name.c_str(), (unsigned long long)s.accesses, s.seconds,
                s.rate, (unsigned long long)s.sim_cycles);
    return s;
}

} // namespace

int
main()
{
    benchBanner("Timing-core throughput (wall clock)",
                "engineering harness; not a paper figure");

    std::vector<Sample> samples;
    samples.push_back(measure("1-core GUPS", 1, 1));
    samples.push_back(measure("8-core GUPS", 8, 1));
    samples.push_back(measure("8-core GUPS mlp=4", 8, 4));
    // Thread-sharding scaling: same simulation, 1/2/4/8 host threads.
    // The sim-threads=1 row repeats the 8-core point through the
    // sharded path (identical by construction); the others show what
    // the lookahead workers buy on this host. Simulated cycles must
    // match across all four rows — the determinism contract.
    for (int t : {1, 2, 4, 8})
        samples.push_back(measure(
            "8-core GUPS sim-threads=" + std::to_string(t), 8, 1, t));
    const std::uint64_t expect = samples[1].sim_cycles;
    for (std::size_t i = 3; i < samples.size(); ++i) {
        if (samples[i].sim_cycles != expect) {
            std::fprintf(stderr,
                         "FATAL: sim-threads sweep diverged "
                         "(%llu != %llu at %s)\n",
                         (unsigned long long)samples[i].sim_cycles,
                         (unsigned long long)expect,
                         samples[i].name.c_str());
            return 1;
        }
    }

    const char *path = "BENCH_throughput.json";
    std::FILE *out = std::fopen(path, "w");
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return 1;
    }
    std::fprintf(out, "{\n  \"bench\": \"sim_throughput\",\n"
                      "  \"unit\": \"accesses_per_sec\",\n"
                      "  \"results\": [\n");
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const Sample &s = samples[i];
        std::fprintf(out,
                     "    {\"name\": \"%s\", \"cores\": %d, "
                     "\"max_outstanding_walks\": %d, "
                     "\"sim_threads\": %d, "
                     "\"accesses\": %llu, \"seconds\": %.6f, "
                     "\"accesses_per_sec\": %.1f, \"attr\": {",
                     s.name.c_str(), s.cores, s.mlp, s.sim_threads,
                     (unsigned long long)s.accesses, s.seconds, s.rate);
        for (int c = 0; c < num_attr_causes; ++c)
            std::fprintf(out, "%s\"%s\": %.4f", c ? ", " : "",
                         attrCauseName(static_cast<AttrCause>(c)),
                         s.attr_share[static_cast<std::size_t>(c)]);
        std::fprintf(out, "}}%s\n",
                     i + 1 < samples.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("\nwrote %s\n", path);
    return 0;
}
