/**
 * @file
 * Simulator throughput harness: wall-clock simulated accesses per
 * second through the event-driven timing core. Three points span the
 * engine's regimes — single-core serialized (the byte-identical
 * legacy path), 8-core serialized (event interleaving + shared
 * resources), and 8-core with overlapped walks (walk machines, the
 * memory pump, completion events) — followed by a --sim-threads
 * scaling sweep of the thread-sharded core (1/2/4/8 host threads on
 * the 8-core machine; simulated results are bit-identical across the
 * sweep, only wall-clock moves). Emits BENCH_throughput.json so CI
 * can archive the numbers; a regression in the hot loop shows up in
 * the artifact series long before it shows up in review.
 *
 * Run length follows the NECPT_WARMUP / NECPT_MEASURE / NECPT_SCALE
 * environment knobs (sim/experiment.hh).
 */

#include <array>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "common/cycle_ledger.hh"
#include "sim/simulator.hh"

using namespace necpt;

namespace
{

struct Sample
{
    std::string name;
    int cores;
    int mlp;
    int sim_threads;
    bool walk_coalescing;
    std::uint64_t accesses;
    double seconds;
    double rate;
    std::uint64_t sim_cycles;
    /** Walk-cycle attribution profile (attr.<cause>.share), so the
     *  baseline diff can say *where* a regression moved cycles. */
    std::array<double, num_attr_causes> attr_share{};
};

Sample
measure(const std::string &name, int cores, int mlp,
        int sim_threads = 1, bool coalesce = false)
{
    SimParams params = paramsFromEnv();
    params.cores = cores;
    params.max_outstanding_walks = mlp;
    params.sim_threads = sim_threads;
    params.walk_coalescing = coalesce;
    ExperimentConfig config = makeConfig(ConfigId::NestedEcpt);
    if (cores > 1)
        configureSharedResources(config, cores);

    const auto begin = std::chrono::steady_clock::now();
    const SimResult result = runSim(config, params, "GUPS");
    const auto end = std::chrono::steady_clock::now();

    Sample s;
    s.name = name;
    s.cores = cores;
    s.mlp = mlp;
    s.sim_threads = sim_threads;
    s.walk_coalescing = coalesce;
    // Total simulated workload accesses driven through the engine
    // (every core runs the full warm-up + measured trace).
    s.accesses = (params.warmup_accesses + params.measure_accesses)
        * static_cast<std::uint64_t>(cores);
    s.seconds = std::chrono::duration<double>(end - begin).count();
    s.rate = s.seconds > 0 ? static_cast<double>(s.accesses) / s.seconds
                           : 0.0;
    s.sim_cycles = result.cycles;
    for (int c = 0; c < num_attr_causes; ++c) {
        const std::string key =
            std::string("attr.")
            + attrCauseName(static_cast<AttrCause>(c)) + ".share";
        s.attr_share[static_cast<std::size_t>(c)] =
            result.metrics.at(key);
    }
    std::printf("%-28s %10llu accesses  %8.3f s  %12.0f acc/s  "
                "(sim cycles %llu)\n",
                name.c_str(), (unsigned long long)s.accesses, s.seconds,
                s.rate, (unsigned long long)s.sim_cycles);
    return s;
}

/**
 * Deterministic host-speed reference: fixed-work serial integer
 * mixing (SplitMix64 finalizer), no memory traffic, so the rate
 * tracks raw host CPU speed and nothing about the simulator. The
 * baseline diff divides current by baseline host_ref to rescale
 * absolute rate floors — a slow dev laptop then isn't failed for not
 * being the CI runner (tools/check_bench.py --min-rate).
 */
double
hostReferenceRate()
{
    constexpr std::uint64_t iters = std::uint64_t(1) << 26;
    double best = 0.0;
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    // Best-of-3: the max filters scheduler preemption out of the
    // calibration the same way it distorts the measured rows least.
    for (int rep = 0; rep < 3; ++rep) {
        const auto begin = std::chrono::steady_clock::now();
        for (std::uint64_t i = 0; i < iters; ++i) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            x ^= z >> 31; // serial dependence: keeps the loop scalar
        }
        const auto end = std::chrono::steady_clock::now();
        const double s =
            std::chrono::duration<double>(end - begin).count();
        if (s > 0)
            best = best > iters / s ? best : iters / s;
    }
    // The checksum escaping here is what stops the compiler from
    // folding the whole loop away.
    std::printf("%-28s %12.0f mixes/s  (checksum %016llx)\n",
                "host reference kernel", best, (unsigned long long)x);
    return best;
}

} // namespace

int
main()
{
    const double host_ref = hostReferenceRate();
    benchBanner("Timing-core throughput (wall clock)",
                "engineering harness; not a paper figure");

    std::vector<Sample> samples;
    samples.push_back(measure("1-core GUPS", 1, 1));
    samples.push_back(measure("8-core GUPS", 8, 1));
    // The headline mlp=4 row runs with walk coalescing on — the
    // modeled MMU merges same-page misses MSHR-style, so overlapped
    // walks no longer re-simulate duplicate walk work (ROADMAP item
    // 1). The no-coalesce row keeps the old configuration visible so
    // the cost of duplicate walks stays in the artifact series.
    samples.push_back(measure("8-core GUPS mlp=4", 8, 4, 1, true));
    samples.push_back(
        measure("8-core GUPS mlp=4 no-coalesce", 8, 4, 1, false));
    // Thread-sharding scaling: same simulation, 1/2/4/8 host threads,
    // with and without coalescing. The sim-threads=1 rows repeat the
    // fixed points through the sharded path (identical by
    // construction); the others show what the lookahead workers buy
    // on this host. Simulated cycles must match within each sweep —
    // the determinism contract.
    for (int t : {1, 2, 4, 8})
        samples.push_back(measure(
            "8-core GUPS sim-threads=" + std::to_string(t), 8, 1, t));
    for (int t : {1, 8})
        samples.push_back(
            measure("8-core GUPS mlp=4 sim-threads=" + std::to_string(t),
                    8, 4, t, true));
    // Divergence gate: every row must reproduce the sim cycles of the
    // fixed-point row with the same (mlp, coalescing) configuration.
    struct SweepCheck
    {
        std::size_t reference;
        std::size_t first;
        std::size_t count;
    };
    for (const SweepCheck &chk :
         {SweepCheck{1, 4, 4}, SweepCheck{2, 8, 2}}) {
        const std::uint64_t expect = samples[chk.reference].sim_cycles;
        for (std::size_t i = chk.first; i < chk.first + chk.count; ++i) {
            if (samples[i].sim_cycles != expect) {
                std::fprintf(stderr,
                             "FATAL: sim-threads sweep diverged "
                             "(%llu != %llu at %s)\n",
                             (unsigned long long)samples[i].sim_cycles,
                             (unsigned long long)expect,
                             samples[i].name.c_str());
                return 1;
            }
        }
    }

    const char *path = "BENCH_throughput.json";
    std::FILE *out = std::fopen(path, "w");
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return 1;
    }
    std::fprintf(out, "{\n  \"bench\": \"sim_throughput\",\n"
                      "  \"unit\": \"accesses_per_sec\",\n"
                      "  \"host_ref\": %.1f,\n"
                      "  \"results\": [\n",
                 host_ref);
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const Sample &s = samples[i];
        std::fprintf(out,
                     "    {\"name\": \"%s\", \"cores\": %d, "
                     "\"max_outstanding_walks\": %d, "
                     "\"sim_threads\": %d, "
                     "\"walk_coalescing\": %s, "
                     "\"accesses\": %llu, \"seconds\": %.6f, "
                     "\"accesses_per_sec\": %.1f, \"attr\": {",
                     s.name.c_str(), s.cores, s.mlp, s.sim_threads,
                     s.walk_coalescing ? "true" : "false",
                     (unsigned long long)s.accesses, s.seconds, s.rate);
        for (int c = 0; c < num_attr_causes; ++c)
            std::fprintf(out, "%s\"%s\": %.4f", c ? ", " : "",
                         attrCauseName(static_cast<AttrCause>(c)),
                         s.attr_share[static_cast<std::size_t>(c)]);
        std::fprintf(out, "}}%s\n",
                     i + 1 < samples.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("\nwrote %s\n", path);
    return 0;
}
