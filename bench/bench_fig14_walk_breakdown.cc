/**
 * @file
 * Figure 14: breakdown of host (left) and guest (right) ECPT walk
 * kinds — Direct / Size / Partial / Complete — per application for
 * Nested ECPTs THP, plus the Section-9.4 average parallel accesses per
 * step and MMU-cache hit rates.
 *
 * Paper: host walks ~90% direct (hypervisor huge pages); guest walks
 * ~82% size, except GUPS/SysBench/MUMmer where direct dominates;
 * steps average 2.8 / 2.8 / 1.6 parallel accesses (THP).
 */

#include "bench/bench_util.hh"

using namespace necpt;

int
main()
{
    benchBanner("Breakdown of host and guest ECPT walk kinds",
                "Figure 14 / Section 9.4");
    const SimParams params = paramsFromEnv();
    const auto apps = appsFromEnv();

    const std::vector<ExperimentConfig> configs = {
        makeConfig(ConfigId::NestedEcptThp),
    };
    const ResultGrid grid = runGrid(configs, apps, params);

    std::printf("%-10s | %-35s | %-35s\n", "", "host walks",
                "guest walks");
    std::printf("%-10s | %8s %8s %8s %8s | %8s %8s %8s %8s\n", "App",
                "direct", "size", "partial", "complete", "direct",
                "size", "partial", "complete");
    // Read through the unified metric names (SimResult::metrics
    // aliases the legacy scalar fields byte-for-byte).
    static const char *const kind_names[4] = {"direct", "size",
                                              "partial", "complete"};
    double havg[4] = {0, 0, 0, 0}, gavg[4] = {0, 0, 0, 0};
    for (const auto &app : apps) {
        const auto &m = grid.at("Nested ECPTs THP", app).metrics;
        double h[4], g[4];
        for (int k = 0; k < 4; ++k) {
            h[k] = m.at(std::string("walk.kind.host.") + kind_names[k]
                        + ".frac");
            g[k] = m.at(std::string("walk.kind.guest.") + kind_names[k]
                        + ".frac");
        }
        std::printf("%-10s | %8.3f %8.3f %8.3f %8.3f "
                    "| %8.3f %8.3f %8.3f %8.3f\n",
                    app.c_str(), h[0], h[1], h[2], h[3], g[0], g[1],
                    g[2], g[3]);
        for (int k = 0; k < 4; ++k) {
            havg[k] += h[k] / apps.size();
            gavg[k] += g[k] / apps.size();
        }
    }
    std::printf("%-10s | %8.3f %8.3f %8.3f %8.3f "
                "| %8.3f %8.3f %8.3f %8.3f\n",
                "Average", havg[0], havg[1], havg[2], havg[3], gavg[0],
                gavg[1], gavg[2], gavg[3]);

    printHeader("Average parallel accesses per nested-ECPT step "
                "(Section 9.4; paper: 2.8 / 2.8 / 1.6 with THP)");
    double steps[3] = {0, 0, 0};
    for (const auto &app : apps) {
        const auto &m = grid.at("Nested ECPTs THP", app).metrics;
        // The per-step probe averages are backed by the same walk
        // phases the attribution ledger charges; conservation pins
        // the attr.* rollup to the walker's busy cycles, so a missed
        // or double-counted phase breaks this breakdown loudly here
        // instead of silently skewing the figure.
        const auto busy = static_cast<double>(
            grid.at("Nested ECPTs THP", app).mmu_busy_cycles);
        if (m.at("attr.total.cycles") != busy) {
            std::fprintf(stderr,
                         "fig14: attribution conservation violated "
                         "for %s\n", app.c_str());
            return 1;
        }
        for (int s = 0; s < 3; ++s)
            steps[s] += m.at("walk.step" + std::to_string(s + 1)
                             + ".avg_probes")
                / apps.size();
    }
    std::printf("Step 1: %.1f   Step 2: %.1f   Step 3: %.1f\n",
                steps[0], steps[1], steps[2]);

    printHeader("MMU cache hit rates (Section 9.4)");
    double stc = 0, gp = 0, gm = 0, hp = 0, hm = 0, h1 = 0, h3 = 0;
    for (const auto &app : apps) {
        const auto &m = grid.at("Nested ECPTs THP", app).metrics;
        stc += m.at("stc.hitrate") / apps.size();
        gp += m.at("cwc.gcwc.pud.hitrate") / apps.size();
        gm += m.at("cwc.gcwc.pmd.hitrate") / apps.size();
        hp += m.at("cwc.hcwc_step3.pud.hitrate") / apps.size();
        hm += m.at("cwc.hcwc_step3.pmd.hitrate") / apps.size();
        h1 += m.at("cwc.hcwc_step1.pte.hitrate") / apps.size();
        h3 += m.at("cwc.hcwc_step3.pte.hitrate") / apps.size();
    }
    std::printf("STC %.2f (paper 0.99) | gCWC PUD %.2f (0.99) PMD %.2f "
                "(0.86) | hCWC PUD %.2f (0.99) PMD %.2f (0.80) "
                "PTE-step1 %.2f (0.99) PTE-step3 %.2f (0.67)\n",
                stc, gp, gm, hp, hm, h1, h3);
    return 0;
}
