/**
 * @file
 * Table 3: area and power of the MMU hardware caches (CactiLite at
 * 22nm, standing in for Cacti 6.5).
 */

#include "bench/bench_util.hh"
#include "sim/cacti_lite.hh"

using namespace necpt;

namespace
{

void
row(const char *name, const std::vector<SramStructure> &structures,
    double paper_area, double paper_power)
{
    const AreaPower ap = CactiLite::estimate(structures);
    std::printf("%-16s %6llu B   %6.3f mm^2 (paper %.2f)   "
                "%5.2f mW (paper %.1f)\n",
                name, (unsigned long long)totalBytes(structures),
                ap.area_mm2, paper_area, ap.power_mw, paper_power);
}

} // namespace

int
main()
{
    benchBanner("Area and power of the MMU hardware caches", "Table 3");

    std::printf("%-16s %-10s %-26s %s\n", "Configuration", "Size",
                "Area", "Power");
    row("Nested Radix", nestedRadixMmuStructures(), 0.01, 2.9);
    row("Nested ECPTs", nestedEcptMmuStructures(), 0.03, 5.2);
    row("Nested Hybrid", nestedHybridMmuStructures(), 0.02, 2.8);

    std::printf("\nPer-structure breakdown (Nested ECPTs):\n");
    for (const SramStructure &s : nestedEcptMmuStructures()) {
        const AreaPower ap = CactiLite::estimate(s);
        std::printf("  %-34s %5llu B  %d port(s)  %6.4f mm^2  "
                    "%5.2f mW\n",
                    s.name.c_str(), (unsigned long long)s.bytes,
                    s.ports, ap.area_mm2, ap.power_mw);
    }
    return 0;
}
