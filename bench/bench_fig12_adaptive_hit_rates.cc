/**
 * @file
 * Figure 12: hit rates of PTE hCWT entries (left) and PMD hCWT entries
 * (right) in the Step-3 hCWC, per application, against the adaptive
 * thresholds (disable PTE caching below 0.5; re-enable when the PMD
 * rate exceeds 0.85). Paper: all applications except GUPS and SysBench
 * enjoy high PTE hit rates.
 */

#include "bench/bench_util.hh"

using namespace necpt;

int
main()
{
    benchBanner("PTE/PMD hCWT hit rates in the Step-3 hCWC",
                "Figure 12");
    const SimParams params = paramsFromEnv();
    const auto apps = appsFromEnv();

    const std::vector<ExperimentConfig> configs = {
        makeConfig(ConfigId::NestedEcptThp),
    };
    const ResultGrid grid = runGrid(configs, apps, params);

    std::printf("%-10s %14s %14s %s\n", "App", "PTE hit rate",
                "PMD hit rate", "PTE caching");
    for (const auto &app : apps) {
        // Read through the unified metric names (SimResult::metrics
        // aliases the legacy scalar fields byte-for-byte).
        const auto &m = grid.at("Nested ECPTs THP", app).metrics;
        const double pte_rate = m.at("adaptive.pte.rate");
        const double pmd_rate = m.at("adaptive.pmd.rate");
        if (m.at("cwc.hcwc_step3.pte.accesses") < 16) {
            // All of this app's measured data was huge-page backed:
            // Step 3 never reached the PTE level.
            std::printf("%-10s %14s %14.3f %s\n", app.c_str(), "n/a",
                        pmd_rate,
                        "unused (no 4KB-backed data touched)");
            continue;
        }
        const bool would_disable = pte_rate >= 0 && pte_rate < 0.5;
        std::printf("%-10s %14.3f %14.3f %s\n", app.c_str(), pte_rate,
                    pmd_rate,
                    would_disable ? "disabled (rate < 0.5)"
                                  : "enabled");
    }
    std::printf("\nThresholds: disable PTE caching below 0.5; while "
                "disabled, re-enable when PMD rate > 0.85.\n");
    std::printf("Paper: PTE rates high everywhere except GUPS and "
                "SysBench (whose PMD rates are also lower).\n");
    return 0;
}
