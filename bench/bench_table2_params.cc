/**
 * @file
 * Table 2: the architectural parameters the simulator models.
 */

#include "bench/bench_util.hh"
#include "mem/hierarchy.hh"
#include "mmu/tlb.hh"
#include "pt/ecpt.hh"

using namespace necpt;

int
main()
{
    benchBanner("Architectural parameters used in the evaluation",
                "Table 2");

    const MemHierarchyConfig mem;
    std::printf("Processor / memory hierarchy\n");
    std::printf("  %-28s %lluKB, %d-way, %llu cyc RT, %d MSHRs\n",
                "L1 cache",
                (unsigned long long)(mem.l1.size_bytes >> 10),
                mem.l1.assoc, (unsigned long long)mem.l1.latency,
                mem.l1.mshrs);
    std::printf("  %-28s %lluKB, %d-way, %llu cyc RT, %d MSHRs\n",
                "L2 cache",
                (unsigned long long)(mem.l2.size_bytes >> 10),
                mem.l2.assoc, (unsigned long long)mem.l2.latency,
                mem.l2.mshrs);
    std::printf("  %-28s %lluMB slice, %d-way, %llu cyc RT, %d MSHRs\n",
                "L3 cache",
                (unsigned long long)(mem.l3.size_bytes >> 20),
                mem.l3.assoc, (unsigned long long)mem.l3.latency,
                mem.l3.mshrs);
    std::printf("  %-28s %d channels x %d banks, tRP-tCAS-tRCD-tRAS "
                "%d-%d-%d-%d, 1GHz DDR\n",
                "Main memory (per-core share)", mem.dram.channels,
                mem.dram.banks_per_channel, mem.dram.t_rp,
                mem.dram.t_cas, mem.dram.t_rcd, mem.dram.t_ras);
    std::printf("  %-28s %d parallel requests per wave\n",
                "MMU issue width", mem.mmu_issue_width);

    const TlbConfig tlb;
    std::printf("\nPer-core MMU (TLBs)\n");
    const char *size_names[] = {"4KB", "2MB", "1GB"};
    for (int s = 0; s < num_page_sizes; ++s)
        std::printf("  L1 DTLB (%s pages)          %zu entries, "
                    "%zu-way\n",
                    size_names[s], tlb.l1[s].entries,
                    tlb.l1[s].ways ? tlb.l1[s].ways : tlb.l1[s].entries);
    for (int s = 0; s < num_page_sizes; ++s)
        std::printf("  L2 DTLB (%s pages)          %zu entries, "
                    "%zu-way\n",
                    size_names[s], tlb.l2[s].entries,
                    tlb.l2[s].ways ? tlb.l2[s].ways : tlb.l2[s].entries);

    std::printf("\nRadix page table parameters\n");
    std::printf("  %-28s 24 entries, FA, 4 cyc RT\n", "Nested TLB");
    std::printf("  %-28s 3 levels x 32 entries, FA, 4 cyc RT\n",
                "Page Walk Cache (PWC)");
    std::printf("  %-28s levels x 16 entries, FA, 4 cyc RT\n",
                "Nested PWC (NPWC)");

    const EcptConfig ecpt;
    std::printf("\nElastic Cuckoo Page Table parameters\n");
    std::printf("  %-28s %llu entries x %d ways\n",
                "Initial PTE g/hECPT",
                (unsigned long long)ecpt.initial_slots[0], ecpt.ways);
    std::printf("  %-28s %llu entries x %d ways\n",
                "Initial PMD g/hECPT",
                (unsigned long long)ecpt.initial_slots[1], ecpt.ways);
    std::printf("  %-28s %llu entries x %d ways\n",
                "Initial PUD g/hECPT",
                (unsigned long long)ecpt.initial_slots[2], ecpt.ways);
    std::printf("  %-28s %llu entries x %d ways\n", "Initial PTE hCWT",
                (unsigned long long)ecpt.cwt_initial_slots[0],
                ecpt.cwt_ways);
    std::printf("  %-28s %llu entries x %d ways\n",
                "Initial PMD g/hCWT",
                (unsigned long long)ecpt.cwt_initial_slots[1],
                ecpt.cwt_ways);
    std::printf("  %-28s %llu entries x %d ways\n",
                "Initial PUD g/hCWT",
                (unsigned long long)ecpt.cwt_initial_slots[2],
                ecpt.cwt_ways);
    std::printf("  %-28s 16 PMD + 2 PUD entries, FA, 4 cyc RT\n",
                "gCWC");
    std::printf("  %-28s 4 PTE entries, FA, 4 cyc RT\n",
                "hCWC (Step 1)");
    std::printf("  %-28s 16 PTE + 4 PMD + 2 PUD, FA, 4 cyc RT\n",
                "hCWC (Step 3)");
    std::printf("  %-28s 10 entries, FA, 4 cyc RT\n",
                "Shortcut Trans. Cache (STC)");
    std::printf("  %-28s CRC, 2-cycle latency\n", "Hash functions");
    return 0;
}
