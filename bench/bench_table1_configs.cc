/**
 * @file
 * Table 1: the modeled page-table architecture configurations.
 */

#include "bench/bench_util.hh"
#include "sim/config.hh"

using namespace necpt;

namespace
{

const char *
kindName(PtKind kind)
{
    switch (kind) {
      case PtKind::Radix: return "radix";
      case PtKind::Ecpt: return "ECPT";
      case PtKind::Flat: return "flat";
      case PtKind::Hpt: return "HPT";
    }
    return "?";
}

} // namespace

int
main()
{
    benchBanner("Modeled page table architecture configurations",
                "Table 1");

    std::printf("%-22s %-8s %-7s %-7s %s\n", "Configuration", "Nested",
                "Guest", "Host", "Pages");
    for (const ConfigId id : table1Configs()) {
        const ExperimentConfig cfg = makeConfig(id);
        std::printf("%-22s %-8s %-7s %-7s %s\n", cfg.name.c_str(),
                    cfg.system.virtualized ? "yes" : "no",
                    kindName(cfg.system.guest_kind),
                    cfg.system.virtualized
                        ? kindName(cfg.system.host_kind) : "-",
                    cfg.thp ? "4KB + 2MB (THP)" : "4KB only");
    }

    std::printf("\nSection 9.6 baselines:\n");
    for (const ConfigId id :
         {ConfigId::PlainNestedEcptThp, ConfigId::AgilePagingIdealThp,
          ConfigId::PomTlbThp, ConfigId::FlatNestedThp,
          ConfigId::ShadowPagingThp, ConfigId::NestedHpt}) {
        const ExperimentConfig cfg = makeConfig(id);
        std::printf("%-22s guest=%s host=%s\n", cfg.name.c_str(),
                    kindName(cfg.system.guest_kind),
                    kindName(cfg.system.host_kind));
    }
    return 0;
}
