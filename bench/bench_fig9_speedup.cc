/**
 * @file
 * Figure 9: speedup of every Table-1 configuration over Nested Radix,
 * per application and as a geometric mean, including the breakdown of
 * the Advanced techniques (STC, Step-1 PTE-hCWT caching, Step-3
 * adaptive caching, 4KB page-table allocation).
 *
 * Paper reference points: Nested ECPTs 1.19x (4KB) / 1.24x (THP) over
 * Nested Radix; Plain design only ~3%/5%; Hybrid +12%/+13%; technique
 * contributions ordered STC > Step-1 > Step-3 >> 4KB-alloc.
 *
 * The grid itself lives in the exec layer ("fig9" in
 * exec/registry.hh) and fans out across a thread pool; this binary
 * and `necpt_sweep fig9` print identical tables. NECPT_JOBS sets the
 * worker count.
 */

#include "bench/bench_util.hh"

using namespace necpt;

int
main()
{
    return runRegisteredSweep("fig9");
}
