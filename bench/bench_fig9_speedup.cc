/**
 * @file
 * Figure 9: speedup of every Table-1 configuration over Nested Radix,
 * per application and as a geometric mean, including the breakdown of
 * the Advanced techniques (STC, Step-1 PTE-hCWT caching, Step-3
 * adaptive caching, 4KB page-table allocation).
 *
 * Paper reference points: Nested ECPTs 1.19x (4KB) / 1.24x (THP) over
 * Nested Radix; Plain design only ~3%/5%; Hybrid +12%/+13%; technique
 * contributions ordered STC > Step-1 > Step-3 >> 4KB-alloc.
 */

#include "bench/bench_util.hh"

using namespace necpt;

int
main()
{
    benchBanner("Speedup over the Nested Radix configuration",
                "Figure 9");
    const SimParams params = paramsFromEnv();
    const auto apps = appsFromEnv();

    // The Figure-9 configuration set: Table-1 rows plus the Advanced
    // feature ladder (each step adds one technique to the previous).
    std::vector<ExperimentConfig> configs;
    for (const ConfigId id : table1Configs())
        configs.push_back(makeConfig(id));
    for (const bool thp : {false, true}) {
        NestedEcptFeatures f = NestedEcptFeatures::plain();
        auto name = [thp](const std::string &base) {
            return base; // THP suffix added by maker
        };
        (void)name;
        configs.push_back(
            makeNestedEcptConfig(f, thp, "Plain Nested ECPTs"));
        f.stc = true;
        configs.push_back(makeNestedEcptConfig(f, thp, "Plain+STC"));
        f.step1_pte_hcwt = true;
        configs.push_back(
            makeNestedEcptConfig(f, thp, "Plain+STC+Step1"));
        f.step3_adaptive_pte = true;
        configs.push_back(
            makeNestedEcptConfig(f, thp, "Plain+STC+Step1+Step3"));
        // f.pt_4kb = true would equal the full Advanced design, which
        // is already in the Table-1 set.
    }

    const ResultGrid grid = runGrid(configs, apps, params);

    // Per-application speedups (Figure 9's bars).
    printHeader("Speedup over Nested Radix (higher is better)");
    std::vector<std::string> header = apps;
    header.push_back("GeoMean");
    printColumns("Configuration", header);
    for (const ExperimentConfig &cfg : configs) {
        if (cfg.name == "Nested Radix")
            continue;
        std::vector<double> row;
        for (const auto &app : apps)
            row.push_back(
                speedupOver(grid, "Nested Radix", cfg.name, app));
        row.push_back(geoMean(row));
        printRow(cfg.name, row);
    }

    // Technique-contribution summary (the stacked segments of Fig. 9).
    printHeader("Advanced-technique contributions (geomean speedup)");
    for (const bool thp : {false, true}) {
        const std::string suffix = thp ? " THP" : "";
        auto gm = [&](const std::string &config) {
            std::vector<double> v;
            for (const auto &app : apps)
                v.push_back(speedupOver(grid, "Nested Radix",
                                        config + suffix, app));
            return geoMean(v);
        };
        const double plain = gm("Plain Nested ECPTs");
        const double stc = gm("Plain+STC");
        const double step1 = gm("Plain+STC+Step1");
        const double step3 = gm("Plain+STC+Step1+Step3");
        const double advanced = gm("Nested ECPTs");
        std::printf("%-6s plain %.3f | +STC %+0.1f%% | +Step1 %+0.1f%% "
                    "| +Step3 %+0.1f%% | +4KB %+0.1f%% => advanced "
                    "%.3f\n",
                    thp ? "THP" : "4KB", plain,
                    (stc / plain - 1) * 100, (step1 / stc - 1) * 100,
                    (step3 / step1 - 1) * 100,
                    (advanced / step3 - 1) * 100, advanced);
    }

    std::printf("\nPaper: Nested ECPTs 1.19x (4KB), 1.24x (THP); "
                "Plain ~1.03-1.05x; Hybrid 1.12x/1.13x.\n");
    return 0;
}
