/**
 * @file
 * Figure 13: characterization of the MMU and cache subsystem for the
 * nested configurations: (a) MMU requests per kilo-instruction (RPKI),
 * (b) L2 MPKI and (c) L3 MPKI, normalized to Nested Radix. Includes
 * the Section-9.3 MSHR-occupancy characterization.
 *
 * Paper: ECPT configurations issue 13%/15% more MMU requests, have
 * similar L2 MPKI, and ~10%/11% lower L3 MPKI (less pollution, fewer
 * main-memory accesses); L2/L3 use ~4.4/3.8 MSHRs on average, max 12.
 */

#include "bench/bench_util.hh"

using namespace necpt;

int
main()
{
    benchBanner("MMU and cache subsystem characterization",
                "Figure 13 / Section 9.3");
    const SimParams params = paramsFromEnv();
    const auto apps = appsFromEnv();

    const std::vector<ExperimentConfig> configs = {
        makeConfig(ConfigId::NestedRadix),
        makeConfig(ConfigId::NestedRadixThp),
        makeConfig(ConfigId::NestedEcpt),
        makeConfig(ConfigId::NestedEcptThp),
    };
    const ResultGrid grid = runGrid(configs, apps, params);

    std::vector<std::string> header = apps;
    header.push_back("GeoMean");

    const struct
    {
        const char *title;
        double SimResult::*field;
    } panels[] = {
        {"(a) MMU requests PKI (normalized to Nested Radix)",
         &SimResult::mmu_rpki},
        {"(b) L2 misses PKI (normalized)", &SimResult::l2_mpki},
        {"(c) L3 misses PKI (normalized)", &SimResult::l3_mpki},
    };

    for (const auto &panel : panels) {
        printHeader(panel.title);
        printColumns("Configuration", header);
        for (const ExperimentConfig &cfg : configs) {
            std::vector<double> row;
            for (const auto &app : apps) {
                const double base =
                    grid.at("Nested Radix", app).*panel.field;
                row.push_back(grid.at(cfg.name, app).*panel.field
                              / (base > 0 ? base : 1));
            }
            row.push_back(geoMean(row));
            printRow(cfg.name, row);
        }
    }

    printHeader("MSHR occupancy during parallel walk phases "
                "(Section 9.3; sequential-walk designs issue no "
                "parallel phases, so their batch occupancy is zero "
                "by construction)");
    for (const ExperimentConfig &cfg : configs) {
        double avg = 0;
        std::uint64_t peak = 0;
        for (const auto &app : apps) {
            avg += grid.at(cfg.name, app).avg_mshrs;
            peak = std::max(peak, grid.at(cfg.name, app).max_mshrs);
        }
        std::printf("%-22s avg %.1f MSHRs in use, max %llu\n",
                    cfg.name.c_str(), avg / apps.size(),
                    (unsigned long long)peak);
    }
    return 0;
}
