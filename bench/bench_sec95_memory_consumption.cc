/**
 * @file
 * Section 9.5: memory consumed by the virtual-memory structures.
 * Paper (at 60MB of raw PTEs on average): Nested Radix uses 84MB
 * (56 host + 28 guest) and Nested ECPTs 97MB (61 host + 36 guest) —
 * ECPTs only slightly more.
 */

#include "bench/bench_util.hh"

using namespace necpt;

int
main()
{
    benchBanner("Memory consumption of virtual-memory structures",
                "Section 9.5");
    const SimParams params = paramsFromEnv();
    const auto apps = appsFromEnv();

    const std::vector<ExperimentConfig> configs = {
        makeConfig(ConfigId::NestedRadixThp),
        makeConfig(ConfigId::NestedEcptThp),
    };
    const ResultGrid grid = runGrid(configs, apps, params);

    for (const ExperimentConfig &cfg : configs) {
        printHeader(cfg.name);
        std::printf("%-10s %12s %12s %12s %12s\n", "App", "PTE bytes",
                    "guest structs", "host structs", "total");
        double mb = 1.0 / (1 << 20);
        double avg_pte = 0, avg_total = 0, avg_guest = 0, avg_host = 0;
        for (const auto &app : apps) {
            const SimResult &r = grid.at(cfg.name, app);
            const double total = static_cast<double>(
                r.guest_structure_bytes + r.host_structure_bytes);
            std::printf("%-10s %10.1fMB %10.1fMB %10.1fMB %10.1fMB\n",
                        app.c_str(), r.pte_bytes_total * mb,
                        r.guest_structure_bytes * mb,
                        r.host_structure_bytes * mb, total * mb);
            avg_pte += r.pte_bytes_total * mb / apps.size();
            avg_guest += r.guest_structure_bytes * mb / apps.size();
            avg_host += r.host_structure_bytes * mb / apps.size();
            avg_total += total * mb / apps.size();
        }
        std::printf("%-10s %10.1fMB %10.1fMB %10.1fMB %10.1fMB\n",
                    "Average", avg_pte, avg_guest, avg_host, avg_total);
    }
    std::printf("\nPaper (full-scale): 60MB PTEs; 84MB Nested Radix "
                "(28 guest + 56 host) vs 97MB Nested ECPTs (36 guest + "
                "61 host).\n");
    return 0;
}
