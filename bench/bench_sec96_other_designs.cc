/**
 * @file
 * Section 9.6: comparison to other advanced designs — idealized Agile
 * Paging, POM-TLB (perfect size predictor), and flat nested page
 * tables. Paper: Nested ECPTs outperform them by 16%, 14%, and
 * 12%/15% (4KB/THP) respectively.
 */

#include "bench/bench_util.hh"

using namespace necpt;

int
main()
{
    benchBanner("Comparison to other advanced designs", "Section 9.6");
    const SimParams params = paramsFromEnv();
    const auto apps = appsFromEnv();

    const std::vector<ExperimentConfig> configs = {
        makeConfig(ConfigId::NestedEcpt),
        makeConfig(ConfigId::NestedEcptThp),
        makeConfig(ConfigId::AgilePagingIdeal),
        makeConfig(ConfigId::AgilePagingIdealThp),
        makeConfig(ConfigId::PomTlb),
        makeConfig(ConfigId::PomTlbThp),
        makeConfig(ConfigId::FlatNested),
        makeConfig(ConfigId::FlatNestedThp),
        makeConfig(ConfigId::ShadowPaging),
        makeConfig(ConfigId::ShadowPagingThp),
    };
    const ResultGrid grid = runGrid(configs, apps, params);

    for (const bool thp : {false, true}) {
        const std::string suffix = thp ? " THP" : "";
        printHeader(std::string("Nested ECPTs speedup over baselines") +
                    (thp ? " (THP)" : " (4KB)"));
        for (const std::string baseline :
             {"Agile Paging (ideal)", "POM-TLB", "Flat Nested",
              "Shadow Paging"}) {
            std::vector<double> speedups;
            for (const auto &app : apps)
                speedups.push_back(speedupOver(
                    grid, baseline + suffix, "Nested ECPTs" + suffix,
                    app));
            std::printf("  vs %-22s geomean %.3fx  (per-app:",
                        baseline.c_str(), geoMean(speedups));
            for (std::size_t i = 0; i < apps.size(); ++i)
                std::printf(" %.2f", speedups[i]);
            std::printf(")\n");
        }
    }
    // The Section-2.2 background design: classic nested HPTs (4KB
    // pages only — single HPTs cannot express multiple page sizes).
    printHeader("Nested ECPTs speedup over classic nested HPTs (4KB)");
    {
        const ResultGrid hpt_grid =
            runGrid({makeConfig(ConfigId::NestedHpt)}, apps, params);
        std::vector<double> speedups;
        for (const auto &app : apps)
            speedups.push_back(
                static_cast<double>(hpt_grid.at("Nested HPT", app).cycles)
                / static_cast<double>(grid.at("Nested ECPTs", app)
                                          .cycles));
        std::printf("  vs %-22s geomean %.3fx  (per-app:",
                    "Nested HPT", geoMean(speedups));
        for (std::size_t i = 0; i < apps.size(); ++i)
            std::printf(" %.2f", speedups[i]);
        std::printf(")\n");
    }

    std::printf("\nPaper: +16%% vs ideal Agile Paging, +14%% vs "
                "POM-TLB, +12%%/+15%% vs flat nested tables. Shadow "
                "paging (steady state, VM exits only on first touch) "
                "and classic nested HPTs (Section 2.2 / Figure 3) are "
                "this repo's additional reference points.\n");
    return 0;
}
