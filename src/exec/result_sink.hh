/**
 * @file
 * Thread-safe aggregation of per-job records plus machine-readable
 * export: one JSON document per sweep (every record, including
 * failures) and a CSV of the successful SimResults in the existing
 * sim/report.hh column format.
 *
 * Record order is the grid's submission order, not completion order,
 * so exported files are deterministic regardless of worker count.
 */

#ifndef NECPT_EXEC_RESULT_SINK_HH
#define NECPT_EXEC_RESULT_SINK_HH

#include <mutex>
#include <string>
#include <vector>

#include "exec/job.hh"
#include "sim/experiment.hh"

namespace necpt
{

class ResultSink
{
  public:
    /** Size the sink for @p jobs records (slot per submission index). */
    explicit ResultSink(std::size_t jobs = 0);

    /** Movable (a fresh mutex; no concurrent use during a move). */
    ResultSink(ResultSink &&other) noexcept
        : slots(std::move(other.slots))
    {
    }
    ResultSink &
    operator=(ResultSink &&other) noexcept
    {
        slots = std::move(other.slots);
        return *this;
    }

    /** Deposit the record for submission index @p index. Thread-safe. */
    void put(std::size_t index, JobRecord record);

    /** All records, in submission order. */
    const std::vector<JobRecord> &records() const { return slots; }

    std::size_t size() const { return slots.size(); }
    std::size_t okCount() const;
    std::size_t failedCount() const { return size() - okCount(); }

    /** Record for @p key, or nullptr. */
    const JobRecord *find(const std::string &key) const;

    /** Successful SimResults, submission order (CSV/grid fodder). */
    std::vector<SimResult> okResults() const;

    /** Bridge to the (config, app)-keyed grid the benches consume. */
    ResultGrid toGrid() const;

    /**
     * Write the sweep as one JSON document:
     * {"sweep": name, "base_seed": n, "jobs": n, "total": n, "ok": n,
     *  "failed": n, "records": [{"key","status","seed","attempts",
     *  "wall_ms"?, "error"?, "error_kind"?, "error_chain"?,
     *  "result"?, "metrics"?, "labels"?}, ...]}
     *
     * @param canonical omit execution-detail fields (jobs, wall_ms)
     *        so two runs of the same seed compare byte-identical
     *        regardless of worker count — the fault-campaign
     *        reproducibility contract.
     * @return success.
     */
    bool writeJson(const std::string &path, const std::string &sweep_name,
                   std::uint64_t base_seed, int jobs,
                   bool canonical = false) const;

    /** CSV of successful results via sim/report.hh. @return success. */
    bool writeCsv(const std::string &path) const;

    /**
     * Write every job's trace ring as one Chrome trace-event JSON
     * file: one lane per job, pid = submission index, lanes in
     * submission order (worker count never reorders the bytes).
     * @param canonical drop the engine's wall-clock spans so equal
     *        seeds compare byte-identical at any --jobs value.
     * @return success (false also when no job carried a trace).
     */
    bool writeTrace(const std::string &path,
                    bool canonical = false) const;

    /**
     * Write every job's interval metrics samples as one merged
     * necpt-timeseries-v1 document, runs in submission order (worker
     * count never reorders the bytes — simulated-cycle timestamps
     * only). @return success (false also when no job sampled).
     */
    bool writeTimeseries(const std::string &path) const;

  private:
    std::vector<JobRecord> slots;
    mutable std::mutex mtx;
};

} // namespace necpt

#endif // NECPT_EXEC_RESULT_SINK_HH
