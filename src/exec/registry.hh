/**
 * @file
 * The sweep-grid registry: every paper figure/table grid ported onto
 * the engine registers itself here under a short name, so one CLI
 * (`necpt_sweep`) can enumerate and run all of them, and the original
 * bench binary can run the identical grid through the same code path.
 *
 * A grid contributes two things: a job list (pure — building it runs
 * no simulation) and a summary printer that reproduces the bench's
 * human-readable stdout tables from the structured records.
 */

#ifndef NECPT_EXEC_REGISTRY_HH
#define NECPT_EXEC_REGISTRY_HH

#include <string>
#include <vector>

#include "exec/engine.hh"
#include "exec/job.hh"
#include "exec/result_sink.hh"
#include "sim/experiment.hh"

namespace necpt
{

struct SweepGrid
{
    std::string name;      //!< CLI handle, e.g. "fig9"
    std::string title;     //!< bench banner line
    std::string paper_ref; //!< e.g. "Figure 9"

    /** Build the job list (no simulation happens here). */
    std::vector<JobSpec> (*make_jobs)(const SimParams &params);

    /** Print the bench's summary tables from the finished records. */
    void (*print_summary)(const ResultSink &sink,
                          const SimParams &params);
};

/** All registered grids, stable order. */
const std::vector<SweepGrid> &sweepGrids();

/** Grid registered as @p name, or nullptr. */
const SweepGrid *findSweepGrid(const std::string &name);

/**
 * Run @p grid end to end the way its bench binary does: banner,
 * engine fan-out, summary. Returns the sink for optional export.
 */
ResultSink runSweepGrid(const SweepGrid &grid, const SimParams &params,
                        const SweepOptions &options);

} // namespace necpt

#endif // NECPT_EXEC_REGISTRY_HH
