#include "exec/fault_campaign.hh"

#include <cstdio>
#include <map>

#include "common/error.hh"
#include "workloads/trace.hh"

namespace necpt
{

namespace
{

/** RAII removal of a forged trace so a throwing load cleans up. */
struct FileRemover
{
    std::string path;
    ~FileRemover() { std::remove(path.c_str()); }
};

/** Write raw bytes or throw ResourceExhausted naming the file. */
void
writeAll(const std::string &path, const void *data, std::size_t bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        throw ResourceExhausted(
            strfmt("cannot create forged trace '%s'", path.c_str()));
    const bool ok = std::fwrite(data, 1, bytes, f) == bytes;
    std::fclose(f);
    if (!ok)
        throw ResourceExhausted(
            strfmt("short write forging trace '%s'", path.c_str()));
}

JobSpec
corruptTraceJob(int replication)
{
    JobSpec spec;
    spec.key = "faults/s" + std::to_string(replication) + "/trace";
    spec.fn = [](const JobContext &ctx) -> JobOutput {
        // Seed-unique name: concurrent replications never collide.
        const std::string path =
            "necpt_forged_" + std::to_string(ctx.seed) + ".trc";
        const std::string mode = writeCorruptTrace(path, ctx.faultSeed());
        FileRemover remover{path};
        TraceWorkload wl(path); // must throw TraceError
        // Reaching here means the loader accepted a corrupt file.
        throw InvariantViolation(strfmt(
            "trace loader accepted a '%s'-corrupted file (%llu records)",
            mode.c_str(), (unsigned long long)wl.recordCount()));
    };
    return spec;
}

} // namespace

std::string
writeCorruptTrace(const std::string &path, std::uint64_t seed)
{
    // 16-byte records after {magic, count, vmas} + vmas*24 bytes, per
    // the format comment in workloads/trace.hh.
    const std::uint64_t vma[3] = {0x10000, 2ULL << 20, 1};
    std::uint8_t record[16] = {};

    switch (seed % 4) {
    case 0: { // header cut mid-field
        writeAll(path, &trace_file_magic, 8);
        return "truncated-header";
    }
    case 1: { // right shape, wrong magic
        const std::uint64_t header[3] = {0xBAD0'5EED'BAD0'5EEDULL, 4, 0};
        writeAll(path, header, sizeof(header));
        return "bad-magic";
    }
    case 2: { // capture cut mid-record: 3 stray bytes at the tail
        std::vector<std::uint8_t> bytes;
        const std::uint64_t header[3] = {trace_file_magic, 2, 1};
        bytes.insert(bytes.end(), (const std::uint8_t *)header,
                     (const std::uint8_t *)header + sizeof(header));
        bytes.insert(bytes.end(), (const std::uint8_t *)vma,
                     (const std::uint8_t *)vma + sizeof(vma));
        bytes.insert(bytes.end(), record, record + sizeof(record));
        bytes.insert(bytes.end(), record, record + 3);
        writeAll(path, bytes.data(), bytes.size());
        return "partial-record";
    }
    default: { // header promises more records than the file holds
        std::vector<std::uint8_t> bytes;
        const std::uint64_t header[3] = {trace_file_magic, 8, 1};
        bytes.insert(bytes.end(), (const std::uint8_t *)header,
                     (const std::uint8_t *)header + sizeof(header));
        bytes.insert(bytes.end(), (const std::uint8_t *)vma,
                     (const std::uint8_t *)vma + sizeof(vma));
        for (int i = 0; i < 4; ++i)
            bytes.insert(bytes.end(), record, record + sizeof(record));
        writeAll(path, bytes.data(), bytes.size());
        return "count-mismatch";
    }
    }
}

std::vector<JobSpec>
makeFaultCampaignJobs(const SweepGrid &grid, const SimParams &params,
                      const FaultCampaignOptions &copts)
{
    SimParams faulted = params;
    faulted.faults = copts.spec;
    // fault_seed stays 0: simJob derives it per attempt from the job
    // seed, which the engine derives from the re-written key — so each
    // replication draws independent fault streams for free.

    std::vector<JobSpec> jobs;
    for (int k = 0; k < copts.fault_seeds; ++k) {
        const std::string prefix = "faults/s" + std::to_string(k) + "/";
        for (JobSpec &spec : grid.make_jobs(faulted)) {
            spec.key = prefix + spec.key;
            jobs.push_back(std::move(spec));
        }
        if (copts.spec.trace_corruption)
            jobs.push_back(corruptTraceJob(k));
    }
    return jobs;
}

void
printFaultCampaignSummary(const ResultSink &sink,
                          const FaultCampaignOptions &copts)
{
    std::map<std::string, std::size_t> by_kind;
    std::size_t attempts = 0, retried = 0;
    for (const JobRecord &r : sink.records()) {
        attempts += r.attempts;
        retried += r.attempts > 1;
        if (r.status != JobStatus::Ok)
            ++by_kind[r.error_kind.empty() ? "?" : r.error_kind];
    }

    std::printf("\nFault campaign: %s under %d fault seeds\n",
                faultSpecToString(copts.spec).c_str(),
                copts.fault_seeds);
    std::printf("  jobs %zu | ok %zu | surfaced faults %zu | "
                "attempts %zu (%zu jobs retried)\n",
                sink.size(), sink.okCount(), sink.failedCount(),
                attempts, retried);
    for (const auto &[kind, n] : by_kind)
        std::printf("  %-20s %zu\n", kind.c_str(), n);
    std::printf("  every fault surfaced as a typed record; the process "
                "never aborted.\n");
}

} // namespace necpt
