#include "exec/engine.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "common/error.hh"
#include "exec/thread_pool.hh"

namespace necpt
{

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

std::uint64_t
usBetween(Clock::time_point from, Clock::time_point to)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(to - from)
            .count());
}

/** Error-kind tag as a string literal: trace args store raw pointers,
 *  so the per-record std::string cannot be handed to the buffer. */
const char *
internedErrorKind(const std::string &kind)
{
    for (const char *k : {"config", "resource_exhausted", "trace",
                          "invariant", "timeout"})
        if (kind == k)
            return k;
    return "exception";
}

/** Shared between a job's runner thread and its supervising worker. */
struct Isolated
{
    std::mutex mtx;
    std::condition_variable done_cv;
    bool done = false;
    JobStatus status = JobStatus::Failed;
    std::string error;
    std::string error_kind;
    bool retryable = false;
    JobOutput out;
};

} // namespace

SweepEngine::SweepEngine(const SweepOptions &options) : opts(options)
{
    n_jobs = opts.jobs > 0 ? opts.jobs : jobsFromEnv();
}

JobRecord
SweepEngine::runIsolated(const JobSpec &spec, std::uint32_t pid,
                         Clock::time_point epoch) const
{
    JobRecord record;
    record.key = spec.key;
    record.seed = deriveJobSeed(opts.base_seed, spec.key);

    const auto start = Clock::now();
    const std::uint64_t budget_ms =
        spec.timeout_ms ? spec.timeout_ms : opts.timeout_ms;

    // Engine-lane bookkeeping for the trace: which kinds the retried
    // attempts failed with (interned so TraceArg can hold them), and
    // the final attempt's buffer.
    std::vector<const char *> retry_kinds;
    std::shared_ptr<TraceBuffer> tracer;
    std::shared_ptr<TimeSeriesBuffer> timeseries;

    // Emits the engine spans into the final attempt's buffer and
    // publishes it on the record. The job/retry/audit events carry
    // simulated-cycle timestamps and survive canonical export; the
    // queue/run wall spans are tagged non-deterministic.
    auto finalize = [&] {
        record.timeseries = timeseries;
        if (!tracer)
            return;
        record.trace = tracer;
        TraceBuffer *t = tracer.get();
        const Cycles cycles = record.status == JobStatus::Ok
            ? record.out.sim.cycles : 0;
        t->span("job", TraceCat::Engine, trace_engine_tid, 0, cycles,
                {{"attempts", record.attempts}});
        for (std::size_t a = 0; a < retry_kinds.size(); ++a)
            t->instant("job.retry", TraceCat::Engine, trace_engine_tid,
                       0, {{"attempt", static_cast<std::int64_t>(a)},
                           {"kind", 0, retry_kinds[a]}});
        if (spec.audit && record.status == JobStatus::Ok)
            t->instant("job.audit", TraceCat::Engine, trace_engine_tid,
                       cycles);
        const std::uint64_t queue_us = usBetween(epoch, start);
        t->wallSpan("job.queue", 0, queue_us);
        t->wallSpan("job.run", queue_us,
                    static_cast<std::uint64_t>(record.wall_ms * 1000),
                    {{"attempts", record.attempts}});
    };

    for (int attempt = 0;; ++attempt) {
        // A fresh ring per attempt: a retried job's trace holds only
        // the attempt that produced the record.
        if (opts.trace_capacity) {
            tracer = std::make_shared<TraceBuffer>(opts.trace_capacity,
                                                   opts.trace_sample);
            tracer->setPid(pid);
        }
        if (opts.sample_interval)
            timeseries =
                std::make_shared<TimeSeriesBuffer>(opts.sample_interval);
        JobContext ctx{record.seed, attempt};
        ctx.tracer = tracer.get();
        ctx.timeseries = timeseries.get();
        record.attempts = attempt + 1;

        // Heap-shared so a detached (timed-out) runner can still
        // finish writing into it safely after the supervisor has
        // moved on. fn/audit are captured by value: a detached runner
        // may outlive the caller's JobSpec vector.
        auto state = std::make_shared<Isolated>();
        // The runner co-owns the tracer: a detached (timed-out) runner
        // keeps emitting into a live buffer that only it references.
        std::thread runner(
            [state, fn = spec.fn, audit = spec.audit, ctx, tracer,
             timeseries] {
                JobStatus status = JobStatus::Failed;
                std::string error, error_kind;
                bool retryable = false;
                JobOutput out;
                try {
                    out = fn(ctx);
                    if (audit)
                        audit(ctx);
                    status = JobStatus::Ok;
                } catch (const SimError &e) {
                    error = e.what();
                    error_kind = e.kindName();
                    retryable = e.retryable();
                } catch (const std::exception &e) {
                    error = e.what();
                    error_kind = "exception";
                } catch (...) {
                    error = "unknown exception";
                    error_kind = "exception";
                }
                std::lock_guard<std::mutex> lock(state->mtx);
                state->status = status;
                state->error = std::move(error);
                state->error_kind = std::move(error_kind);
                state->retryable = retryable;
                state->out = std::move(out);
                state->done = true;
                state->done_cv.notify_all();
            });

        bool finished = true;
        if (budget_ms == 0) {
            runner.join();
        } else {
            std::unique_lock<std::mutex> lock(state->mtx);
            finished = state->done_cv.wait_for(
                lock, std::chrono::milliseconds(budget_ms),
                [&] { return state->done; });
            lock.unlock();
            if (finished)
                runner.join();
            else
                runner.detach(); // no cancellation points in a sim
        }

        if (!finished) {
            // A timed-out job is never retried: the detached runner
            // still owns the machine it was building, and a rerun
            // would almost certainly time out again anyway. The trace
            // and time-series buffers stay with the runner — reading
            // them here would race a simulation still emitting.
            tracer.reset();
            timeseries.reset();
            record.wall_ms = msSince(start);
            record.status = JobStatus::TimedOut;
            record.error = "timed out after "
                + std::to_string(budget_ms) + " ms";
            record.error_kind = "timeout";
            record.error_chain.push_back(record.error);
            return record;
        }

        bool retryable;
        {
            std::lock_guard<std::mutex> lock(state->mtx);
            record.status = state->status;
            record.error = state->error;
            record.error_kind = state->error_kind;
            record.out = std::move(state->out);
            retryable = state->retryable;
        }
        if (record.status == JobStatus::Ok) {
            record.wall_ms = msSince(start);
            finalize();
            return record;
        }
        record.error_chain.push_back(record.error);
        if (!retryable || attempt >= opts.retries) {
            record.wall_ms = msSince(start);
            finalize();
            return record;
        }
        retry_kinds.push_back(internedErrorKind(record.error_kind));
        // Exponential backoff before the retry — transient pressure
        // (the reason ResourceExhausted is retryable) needs time to
        // drain on a loaded machine.
        const std::uint64_t delay = std::min<std::uint64_t>(
            opts.backoff_ms << attempt, 2000);
        if (delay)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay));
    }
}

ResultSink
SweepEngine::run(const std::vector<JobSpec> &specs) const
{
    ResultSink sink(specs.size());
    if (specs.empty())
        return sink;

    std::atomic<std::size_t> completed{0};
    const int workers =
        std::min<int>(n_jobs, static_cast<int>(specs.size()));
    const auto epoch = Clock::now();
    ThreadPool pool(workers);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        pool.submit([this, i, &specs, &sink, &completed, epoch] {
            const JobSpec &spec = specs[i];
            JobRecord record =
                runIsolated(spec, static_cast<std::uint32_t>(i), epoch);
            const std::size_t n = completed.fetch_add(1) + 1;
            if (opts.progress)
                std::fprintf(opts.progress,
                             "  [%3zu/%zu] %-40s %s (%.0f ms)\n", n,
                             specs.size(), spec.key.c_str(),
                             jobStatusName(record.status),
                             record.wall_ms);
            sink.put(i, std::move(record));
        });
    }
    pool.wait();
    return sink;
}

} // namespace necpt
