#include "exec/thread_pool.hh"

#include <algorithm>

namespace necpt
{

ThreadPool::ThreadPool(int threads)
{
    const int n = std::max(1, threads);
    workers.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mtx);
        stopping = true;
    }
    work_cv.notify_all();
    for (std::thread &w : workers)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mtx);
        queue.push_back(std::move(task));
    }
    work_cv.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mtx);
    idle_cv.wait(lock, [this] { return queue.empty() && in_flight == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mtx);
            work_cv.wait(lock,
                         [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping with nothing left to do
            task = std::move(queue.front());
            queue.pop_front();
            ++in_flight;
        }
        task();
        {
            std::unique_lock<std::mutex> lock(mtx);
            --in_flight;
        }
        idle_cv.notify_all();
    }
}

} // namespace necpt
