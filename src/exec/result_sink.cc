#include "exec/result_sink.hh"

#include <cstdio>
#include <sstream>

#include "common/rng.hh"
#include "sim/report.hh"

namespace necpt
{

namespace
{

std::string
jsonEscape(const std::string &in)
{
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
            continue;
        }
        out.push_back(c);
    }
    return out;
}

} // namespace

const char *
jobStatusName(JobStatus status)
{
    switch (status) {
    case JobStatus::Ok: return "ok";
    case JobStatus::Failed: return "failed";
    case JobStatus::TimedOut: return "timeout";
    }
    return "?";
}

std::uint64_t
deriveJobSeed(std::uint64_t base_seed, const std::string &key)
{
    // FNV-1a over the key bytes...
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (unsigned char c : key) {
        h ^= c;
        h *= 0x100000001B3ULL;
    }
    // ...then fold in the base seed and finalize with splitmix64 so
    // nearby keys land on unrelated streams.
    std::uint64_t sm = h ^ base_seed;
    std::uint64_t seed = splitmix64(sm);
    return seed ? seed : 1; // keep 0 out of seed-sensitive RNGs
}

ResultSink::ResultSink(std::size_t jobs) : slots(jobs) {}

void
ResultSink::put(std::size_t index, JobRecord record)
{
    std::lock_guard<std::mutex> lock(mtx);
    if (index >= slots.size())
        slots.resize(index + 1);
    slots[index] = std::move(record);
}

std::size_t
ResultSink::okCount() const
{
    std::size_t n = 0;
    for (const JobRecord &r : slots)
        n += r.status == JobStatus::Ok;
    return n;
}

const JobRecord *
ResultSink::find(const std::string &key) const
{
    for (const JobRecord &r : slots)
        if (r.key == key)
            return &r;
    return nullptr;
}

std::vector<SimResult>
ResultSink::okResults() const
{
    std::vector<SimResult> results;
    results.reserve(slots.size());
    for (const JobRecord &r : slots)
        if (r.status == JobStatus::Ok)
            results.push_back(r.out.sim);
    return results;
}

ResultGrid
ResultSink::toGrid() const
{
    ResultGrid grid;
    for (const JobRecord &r : slots)
        if (r.status == JobStatus::Ok)
            grid.add(r.out.sim);
    return grid;
}

bool
ResultSink::writeJson(const std::string &path,
                      const std::string &sweep_name,
                      std::uint64_t base_seed, int jobs,
                      bool canonical) const
{
    std::ostringstream os;
    os << "{\"sweep\":\"" << jsonEscape(sweep_name) << "\",";
    os << "\"base_seed\":" << base_seed << ",";
    // Canonical output must be a pure function of (grid, seed): the
    // worker count is an execution detail, like wall_ms below.
    if (!canonical)
        os << "\"jobs\":" << jobs << ",";
    os << "\"total\":" << size() << ",";
    os << "\"ok\":" << okCount() << ",";
    os << "\"failed\":" << failedCount() << ",";
    os << "\"records\":[";
    bool first = true;
    for (const JobRecord &r : slots) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"key\":\"" << jsonEscape(r.key) << "\",";
        os << "\"status\":\"" << jobStatusName(r.status) << "\",";
        os << "\"seed\":" << r.seed << ",";
        os << "\"attempts\":" << r.attempts;
        if (!canonical)
            os << ",\"wall_ms\":" << r.wall_ms;
        if (r.status != JobStatus::Ok) {
            os << ",\"error\":\"" << jsonEscape(r.error) << "\"";
            if (!r.error_kind.empty())
                os << ",\"error_kind\":\"" << jsonEscape(r.error_kind)
                   << "\"";
            if (!r.error_chain.empty()) {
                os << ",\"error_chain\":[";
                bool c1 = true;
                for (const std::string &e : r.error_chain) {
                    if (!c1)
                        os << ",";
                    c1 = false;
                    os << "\"" << jsonEscape(e) << "\"";
                }
                os << "]";
            }
        } else {
            os << ",\"result\":" << toJson(r.out.sim);
            if (!r.out.metrics.empty()) {
                os << ",\"metrics\":{";
                bool m1 = true;
                for (const auto &[k, v] : r.out.metrics) {
                    if (!m1)
                        os << ",";
                    m1 = false;
                    os << "\"" << jsonEscape(k) << "\":" << v;
                }
                os << "}";
            }
            if (!r.out.labels.empty()) {
                os << ",\"labels\":{";
                bool l1 = true;
                for (const auto &[k, v] : r.out.labels) {
                    if (!l1)
                        os << ",";
                    l1 = false;
                    os << "\"" << jsonEscape(k) << "\":\""
                       << jsonEscape(v) << "\"";
                }
                os << "}";
            }
        }
        os << "}";
    }
    os << "]}\n";

    std::FILE *out = std::fopen(path.c_str(), "w");
    if (!out)
        return false;
    const std::string text = os.str();
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), out) == text.size();
    std::fclose(out);
    return ok;
}

bool
ResultSink::writeCsv(const std::string &path) const
{
    return writeCsvFile(path, okResults());
}

bool
ResultSink::writeTrace(const std::string &path, bool canonical) const
{
    std::vector<TraceLane> lanes;
    for (const JobRecord &r : slots)
        if (r.trace)
            lanes.push_back({r.trace.get(), r.key});
    if (lanes.empty())
        return false;
    return writeChromeTrace(path, lanes, canonical);
}

bool
ResultSink::writeTimeseries(const std::string &path) const
{
    std::vector<TimeSeriesRun> runs;
    std::uint64_t interval = 0;
    for (const JobRecord &r : slots) {
        if (!r.timeseries)
            continue;
        runs.push_back({r.key, r.timeseries.get()});
        interval = r.timeseries->interval();
    }
    if (runs.empty())
        return false;
    return writeTimeseriesJson(path, runs, interval);
}

} // namespace necpt
