/**
 * @file
 * The registered sweep grids — the paper figures/tables ported onto
 * the engine. Each grid's print_summary reproduces its original
 * bench binary's stdout tables verbatim from the structured records,
 * so `necpt_sweep <grid>` and `bench_<grid>` stay byte-identical.
 */

#include "exec/registry.hh"

#include <cstdio>

#include "coherence/churn.hh"
#include "common/stats.hh"
#include "sim/config.hh"
#include "workloads/workload.hh"

namespace necpt
{

namespace
{

// ------------------------------------------------------------- fig9

/** The Figure-9 configuration set: Table-1 rows plus the Advanced
 *  feature ladder (each step adds one technique to the previous). */
std::vector<ExperimentConfig>
fig9Configs()
{
    std::vector<ExperimentConfig> configs;
    for (const ConfigId id : table1Configs())
        configs.push_back(makeConfig(id));
    for (const bool thp : {false, true}) {
        NestedEcptFeatures f = NestedEcptFeatures::plain();
        configs.push_back(
            makeNestedEcptConfig(f, thp, "Plain Nested ECPTs"));
        f.stc = true;
        configs.push_back(makeNestedEcptConfig(f, thp, "Plain+STC"));
        f.step1_pte_hcwt = true;
        configs.push_back(
            makeNestedEcptConfig(f, thp, "Plain+STC+Step1"));
        f.step3_adaptive_pte = true;
        configs.push_back(
            makeNestedEcptConfig(f, thp, "Plain+STC+Step1+Step3"));
        // f.pt_4kb = true would equal the full Advanced design, which
        // is already in the Table-1 set.
    }
    return configs;
}

JobSpec
simJob(const std::string &key, const ExperimentConfig &config,
       const SimParams &params, const std::string &app)
{
    JobSpec spec;
    spec.key = key;
    spec.fn = [config, params, app](const JobContext &ctx) {
        SimParams p = params;
        p.seed = ctx.seed;
        // Fault draws are seeded per attempt so a retried job redraws
        // its injected faults; a no-fault sweep never reads this.
        p.fault_seed = ctx.faultSeed();
        p.tracer = ctx.tracer;
        p.timeseries = ctx.timeseries;
        JobOutput out;
        out.sim = runSim(config, p, app);
        // Publish the unified dotted-name scalars as this job's stats
        // columns in the sweep JSON.
        out.metrics = out.sim.metrics;
        return out;
    };
    return spec;
}

std::vector<JobSpec>
fig9Jobs(const SimParams &params)
{
    std::vector<JobSpec> jobs;
    for (const ExperimentConfig &config : fig9Configs())
        for (const std::string &app : appsFromEnv())
            jobs.push_back(simJob("fig9/" + config.name + "/" + app,
                                  config, params, app));
    return jobs;
}

void
fig9Summary(const ResultSink &sink, const SimParams &)
{
    const auto apps = appsFromEnv();
    const auto configs = fig9Configs();
    const ResultGrid grid = sink.toGrid();

    auto complete = [&](const std::string &config) {
        for (const auto &app : apps)
            if (!grid.has(config, app))
                return false;
        return true;
    };
    if (!complete("Nested Radix")) {
        std::printf("\n(baseline 'Nested Radix' runs failed; "
                    "no speedups to report)\n");
        return;
    }

    // Per-application speedups (Figure 9's bars).
    printHeader("Speedup over Nested Radix (higher is better)");
    std::vector<std::string> header = apps;
    header.push_back("GeoMean");
    printColumns("Configuration", header);
    for (const ExperimentConfig &cfg : configs) {
        if (cfg.name == "Nested Radix")
            continue;
        if (!complete(cfg.name)) {
            std::printf("%-24s (failed)\n", cfg.name.c_str());
            continue;
        }
        std::vector<double> row;
        for (const auto &app : apps)
            row.push_back(
                speedupOver(grid, "Nested Radix", cfg.name, app));
        row.push_back(geoMean(row));
        printRow(cfg.name, row);
    }

    // Technique-contribution summary (the stacked segments of Fig. 9).
    printHeader("Advanced-technique contributions (geomean speedup)");
    for (const bool thp : {false, true}) {
        const std::string suffix = thp ? " THP" : "";
        auto gm = [&](const std::string &config) {
            std::vector<double> v;
            for (const auto &app : apps)
                v.push_back(speedupOver(grid, "Nested Radix",
                                        config + suffix, app));
            return geoMean(v);
        };
        const double plain = gm("Plain Nested ECPTs");
        const double stc = gm("Plain+STC");
        const double step1 = gm("Plain+STC+Step1");
        const double step3 = gm("Plain+STC+Step1+Step3");
        const double advanced = gm("Nested ECPTs");
        std::printf("%-6s plain %.3f | +STC %+0.1f%% | +Step1 %+0.1f%% "
                    "| +Step3 %+0.1f%% | +4KB %+0.1f%% => advanced "
                    "%.3f\n",
                    thp ? "THP" : "4KB", plain,
                    (stc / plain - 1) * 100, (step1 / stc - 1) * 100,
                    (step3 / step1 - 1) * 100,
                    (advanced / step3 - 1) * 100, advanced);
    }

    std::printf("\nPaper: Nested ECPTs 1.19x (4KB), 1.24x (THP); "
                "Plain ~1.03-1.05x; Hybrid 1.12x/1.13x.\n");
}

// ----------------------------------------------------------- table4

std::vector<JobSpec>
table4Jobs(const SimParams &params)
{
    std::vector<JobSpec> jobs;
    for (const std::string &app : paperApplications()) {
        JobSpec spec;
        spec.key = "table4/" + app;
        const std::uint64_t scale = params.scale_denominator;
        spec.fn = [app, scale](const JobContext &) {
            auto wl = makeWorkload(app, scale);
            const auto info = wl->info();
            JobOutput out;
            out.sim.config = "Table 4";
            out.sim.app = info.name;
            out.labels["domain"] = info.domain;
            out.labels["suite"] = info.suite;
            out.metrics["paper_gb"] =
                static_cast<double>(info.paper_footprint_bytes)
                / (1ULL << 30);
            out.metrics["simulated_gb"] =
                static_cast<double>(info.footprint_bytes) / (1ULL << 30);
            return out;
        };
        jobs.push_back(std::move(spec));
    }
    return jobs;
}

void
table4Summary(const ResultSink &sink, const SimParams &params)
{
    std::printf("%-10s %-16s %-10s %12s %14s\n", "Name", "Domain",
                "Suite", "Paper footpr.", "Simulated");
    for (const std::string &app : paperApplications()) {
        const JobRecord *r = sink.find("table4/" + app);
        if (!r || r->status != JobStatus::Ok) {
            std::printf("%-10s (failed: %s)\n", app.c_str(),
                        r ? r->error.c_str() : "missing");
            continue;
        }
        std::printf("%-10s %-16s %-10s %10.1f GB %11.2f GB\n",
                    r->out.sim.app.c_str(),
                    r->out.labels.at("domain").c_str(),
                    r->out.labels.at("suite").c_str(),
                    r->out.metrics.at("paper_gb"),
                    r->out.metrics.at("simulated_gb"));
    }
    std::printf("\n(scale denominator: %llu; NECPT_SCALE overrides)\n",
                (unsigned long long)params.scale_denominator);
}

// -------------------------------------------------------- multicore

const std::vector<int> &
multicoreCoreCounts()
{
    static const std::vector<int> counts = {1, 2, 4};
    return counts;
}

std::vector<std::string>
multicoreApps()
{
    auto apps = appsFromEnv();
    if (apps.size() > 2)
        apps = {"GUPS", "BFS"};
    return apps;
}

std::vector<JobSpec>
multicoreJobs(const SimParams &base)
{
    const SimParams shortened = scaledParams(base, 4, 2);
    std::vector<JobSpec> jobs;
    for (const int cores : multicoreCoreCounts()) {
        for (const std::string &app : multicoreApps()) {
            for (const ConfigId id :
                 {ConfigId::NestedRadix, ConfigId::NestedEcpt}) {
                ExperimentConfig config = makeConfig(id);
                configureSharedResources(config, cores);
                SimParams params = shortened;
                params.cores = cores;
                jobs.push_back(simJob(
                    "multicore/" + std::to_string(cores) + "c/" + app
                        + "/" + config.name,
                    config, params, app));
            }
        }
    }
    return jobs;
}

void
multicoreSummary(const ResultSink &sink, const SimParams &)
{
    std::printf("%-6s %-10s %18s %18s %10s\n", "cores", "app",
                "radix cyc/core", "ecpt cyc/core", "speedup");
    for (const int cores : multicoreCoreCounts()) {
        for (const std::string &app : multicoreApps()) {
            const std::string stem =
                "multicore/" + std::to_string(cores) + "c/" + app + "/";
            const JobRecord *r = sink.find(stem + "Nested Radix");
            const JobRecord *e = sink.find(stem + "Nested ECPTs");
            if (!r || !e || r->status != JobStatus::Ok
                || e->status != JobStatus::Ok) {
                std::printf("%-6d %-10s (failed)\n", cores,
                            app.c_str());
                continue;
            }
            std::printf(
                "%-6d %-10s %18llu %18llu %9.3fx\n", cores,
                app.c_str(),
                static_cast<unsigned long long>(r->out.sim.cycles),
                static_cast<unsigned long long>(e->out.sim.cycles),
                static_cast<double>(r->out.sim.cycles)
                    / e->out.sim.cycles);
        }
    }
    std::printf("\nReading: per-core time grows with core count "
                "(shared L3/DRAM contention). Multiprogrammed copies "
                "multiply translation-bandwidth demand, and the "
                "parallel probe groups are the more bandwidth-"
                "sensitive design — the very effect that motivates the "
                "paper's 'judiciously limiting the number of parallel "
                "memory accesses' (Abstract). The paper's own runs are "
                "one multithreaded instance (shared footprint), which "
                "stresses bandwidth far less than N independent "
                "copies.\n");
}

// ------------------------------------------------------------ smoke

/** The two headline designs on one short workload: the cheapest grid
 *  that still exercises every injection site (pools, cuckoo tables,
 *  CWTs, DRAM), sized for CI fault campaigns. */
std::vector<JobSpec>
smokeJobs(const SimParams &base)
{
    const SimParams shortened = scaledParams(base, 16, 8);
    std::vector<JobSpec> jobs;
    for (const ConfigId id :
         {ConfigId::NestedRadix, ConfigId::NestedEcpt}) {
        const ExperimentConfig config = makeConfig(id);
        jobs.push_back(simJob("smoke/" + config.name + "/GUPS", config,
                              shortened, "GUPS"));
    }
    return jobs;
}

void
smokeSummary(const ResultSink &sink, const SimParams &)
{
    std::printf("%-16s %14s %14s\n", "config", "cycles", "mmu busy");
    for (const JobRecord &r : sink.records()) {
        if (r.status != JobStatus::Ok) {
            std::printf("%-16s (%s: %s)\n", r.key.c_str(),
                        jobStatusName(r.status), r.error.c_str());
            continue;
        }
        std::printf("%-16s %14llu %14llu\n", r.out.sim.config.c_str(),
                    static_cast<unsigned long long>(r.out.sim.cycles),
                    static_cast<unsigned long long>(
                        r.out.sim.mmu_busy_cycles));
    }
}

// -------------------------------------------------------------- mlp

const std::vector<int> &
mlpDepths()
{
    static const std::vector<int> depths = {1, 2, 4};
    return depths;
}

/** Walk memory-level parallelism: the 8-core contention regime with
 *  the per-core in-flight walk cap swept across serialized (1) and
 *  overlapped (2, 4) translation machinery. */
std::vector<JobSpec>
mlpJobs(const SimParams &base)
{
    const SimParams shortened = scaledParams(base, 8, 4);
    std::vector<JobSpec> jobs;
    for (const int depth : mlpDepths()) {
        for (const ConfigId id :
             {ConfigId::NestedRadix, ConfigId::NestedEcpt}) {
            ExperimentConfig config = makeConfig(id);
            configureSharedResources(config, 8);
            SimParams params = shortened;
            params.cores = 8;
            params.max_outstanding_walks = depth;
            jobs.push_back(simJob("mlp/" + std::to_string(depth)
                                      + "w/" + config.name,
                                  config, params, "GUPS"));
        }
    }
    return jobs;
}

void
mlpSummary(const ResultSink &sink, const SimParams &)
{
    std::printf("%-6s %-16s %14s %12s %10s\n", "walks", "config",
                "cycles", "inflight", "peak");
    for (const int depth : mlpDepths()) {
        for (const char *config : {"Nested Radix", "Nested ECPTs"}) {
            const JobRecord *r = sink.find(
                "mlp/" + std::to_string(depth) + "w/" + config);
            if (!r || r->status != JobStatus::Ok) {
                std::printf("%-6d %-16s (failed)\n", depth, config);
                continue;
            }
            std::printf("%-6d %-16s %14llu %12.3f %10llu\n", depth,
                        config,
                        static_cast<unsigned long long>(
                            r->out.sim.cycles),
                        r->out.sim.walk_inflight_avg,
                        static_cast<unsigned long long>(
                            r->out.sim.walk_inflight_max));
        }
    }
    std::printf("\nReading: with the cap at 1 each L2-TLB miss "
                "serializes the core for the whole walk; raising it "
                "lets independent misses overlap, so cycles drop while "
                "the walkers' probe batches contend for the same MSHRs "
                "and DRAM banks — the trade-off behind the paper's "
                "'judiciously limiting the number of parallel memory "
                "accesses' (Abstract).\n");
}

// -------------------------------------------------------- coalesce

/** Walk-MSHR design point: the mlp sweep crossed with same-page walk
 *  coalescing on/off. Off, concurrent same-page misses each walk;
 *  on, they merge at the walker and fan out at retire. */
std::vector<JobSpec>
coalesceJobs(const SimParams &base)
{
    const SimParams shortened = scaledParams(base, 8, 4);
    std::vector<JobSpec> jobs;
    for (const int depth : mlpDepths()) {
        for (const bool coalesce : {false, true}) {
            // With one in-flight walk there is never a second
            // same-page miss to merge; skip the redundant point.
            if (coalesce && depth == 1)
                continue;
            ExperimentConfig config = makeConfig(ConfigId::NestedEcpt);
            configureSharedResources(config, 8);
            SimParams params = shortened;
            params.cores = 8;
            params.max_outstanding_walks = depth;
            params.walk_coalescing = coalesce;
            jobs.push_back(simJob(
                "coalesce/" + std::to_string(depth) + "w/"
                    + (coalesce ? "on" : "off"),
                config, params, "GUPS"));
        }
    }
    return jobs;
}

void
coalesceSummary(const ResultSink &sink, const SimParams &)
{
    std::printf("%-6s %-9s %14s %12s %12s %10s\n", "walks", "coalesce",
                "cycles", "pt walks", "merged", "inflight");
    for (const int depth : mlpDepths()) {
        for (const bool coalesce : {false, true}) {
            if (coalesce && depth == 1)
                continue;
            const JobRecord *r = sink.find(
                "coalesce/" + std::to_string(depth) + "w/"
                + (coalesce ? "on" : "off"));
            if (!r || r->status != JobStatus::Ok) {
                std::printf("%-6d %-9s (failed)\n", depth,
                            coalesce ? "on" : "off");
                continue;
            }
            const auto it = r->out.sim.metrics.find("walk.coalesced");
            const double merged =
                it != r->out.sim.metrics.end() ? it->second : 0.0;
            std::printf("%-6d %-9s %14llu %12llu %12.0f %10.3f\n",
                        depth, coalesce ? "on" : "off",
                        static_cast<unsigned long long>(
                            r->out.sim.cycles),
                        static_cast<unsigned long long>(
                            r->out.sim.walks -
                            static_cast<std::uint64_t>(merged)),
                        merged, r->out.sim.walk_inflight_avg);
        }
    }
    std::printf("\nReading: without coalescing, GUPS's "
                "read-modify-write pairs re-miss the TLB while the "
                "first walk flies, so overlapped walks do ~2x the "
                "walk work; the walk-MSHR merges those duplicates "
                "('pt walks' returns to the mlp=1 count) and the "
                "merged requests ride the primary for free — the "
                "parallelism the paper's walker assumes.\n");
}

// ------------------------------------------------------------ churn

/** One scenario per OS/hypervisor mutation stream, plus all of them
 *  together — each interleaved with the GUPS access kernel. */
const std::vector<std::pair<const char *, const char *>> &
churnScenarios()
{
    static const std::vector<std::pair<const char *, const char *>>
        scenarios = {
            {"migrate", "migrate:20000:4"},
            {"balloon", "balloon:50000:16"},
            {"thp", "thp:80000:2"},
            {"protect", "protect:40000:4"},
            {"all", "all"},
        };
    return scenarios;
}

double
metricOr(const JobRecord &r, const char *name, double fallback)
{
    const auto it = r.out.metrics.find(name);
    return it == r.out.metrics.end() ? fallback : it->second;
}

std::vector<JobSpec>
churnJobs(const SimParams &base)
{
    const SimParams shortened = scaledParams(base, 8, 4);
    std::vector<JobSpec> jobs;
    for (const auto &[label, spec] : churnScenarios()) {
        // The THP compactor needs 2MB mappings to split, so its
        // scenario (and the combined one) runs the THP variants.
        const bool thp = std::string(label) == "thp"
            || std::string(label) == "all";
        for (const ConfigId id :
             {thp ? ConfigId::NestedRadixThp : ConfigId::NestedRadix,
              thp ? ConfigId::NestedEcptThp : ConfigId::NestedEcpt}) {
            ExperimentConfig config = makeConfig(id);
            configureSharedResources(config, 4);
            SimParams params = shortened;
            params.cores = 4;
            params.churn = parseChurnSpec(spec);
            jobs.push_back(simJob("churn/" + std::string(label) + "/"
                                      + config.name,
                                  config, params, "GUPS"));
        }
    }
    return jobs;
}

void
churnSummary(const ResultSink &sink, const SimParams &)
{
    std::printf("%-9s %-16s %14s %8s %8s %9s %9s\n", "scenario",
                "config", "cycles", "ops", "rounds", "dropped",
                "replays");
    for (const auto &[label, spec] : churnScenarios()) {
        const bool thp = std::string(label) == "thp"
            || std::string(label) == "all";
        for (const char *config :
             {thp ? "Nested Radix THP" : "Nested Radix",
              thp ? "Nested ECPTs THP" : "Nested ECPTs"}) {
            const JobRecord *r = sink.find("churn/" + std::string(label)
                                           + "/" + config);
            if (!r || r->status != JobStatus::Ok) {
                std::printf("%-9s %-16s (failed)\n", label, config);
                continue;
            }
            std::printf(
                "%-9s %-16s %14llu %8.0f %8.0f %9.0f %9.0f\n", label,
                config,
                static_cast<unsigned long long>(r->out.sim.cycles),
                metricOr(*r, "churn.ops", 0),
                metricOr(*r, "shootdown.rounds", 0),
                metricOr(*r, "shootdown.entries.dropped", 0),
                metricOr(*r, "shootdown.walk_replays", 0));
        }
    }
    std::printf("\nReading: every scenario interleaves a mutation "
                "stream (migration, ballooning, THP compaction, "
                "write-protection) with the access kernel; each "
                "mutation batch triggers a TLB-shootdown round that "
                "scrubs the per-core TLBs, the walk caches, and the "
                "POM-TLB, and any walk that raced an invalidation "
                "replays against the mutated tables.\n");
}

// -------------------------------------------------------- shootdown

const std::vector<const char *> &
shootdownModes()
{
    static const std::vector<const char *> modes = {"sw", "hw"};
    return modes;
}

/** Software-IPI vs hardware-coherence head to head: the same churn
 *  stream under both protocols, 8 cores. */
std::vector<JobSpec>
shootdownJobs(const SimParams &base)
{
    const SimParams shortened = scaledParams(base, 8, 4);
    std::vector<JobSpec> jobs;
    for (const char *mode : shootdownModes()) {
        for (const ConfigId id :
             {ConfigId::NestedRadix, ConfigId::NestedEcpt}) {
            ExperimentConfig config = makeConfig(id);
            configureSharedResources(config, 8);
            SimParams params = shortened;
            params.cores = 8;
            // Denser than the churn grid's scenarios: the protocols
            // only separate when rounds are frequent enough for the
            // sw initiator stall to show up in end-to-end cycles.
            params.churn = parseChurnSpec(
                std::string("migrate:2000:8,balloon:6000:16,"
                            "protect:4000:8,batch:8,mode:") + mode);
            jobs.push_back(simJob("shootdown/" + std::string(mode) + "/"
                                      + config.name,
                                  config, params, "GUPS"));
        }
    }
    return jobs;
}

void
shootdownSummary(const ResultSink &sink, const SimParams &)
{
    printHeader("Software IPIs vs hardware translation coherence");
    std::printf("%-16s %14s %14s %8s %10s %10s\n", "config",
                "sw cycles", "hw cycles", "hw gain", "sw lat",
                "hw lat");
    for (const char *config : {"Nested Radix", "Nested ECPTs"}) {
        const JobRecord *sw =
            sink.find("shootdown/sw/" + std::string(config));
        const JobRecord *hw =
            sink.find("shootdown/hw/" + std::string(config));
        if (!sw || !hw || sw->status != JobStatus::Ok
            || hw->status != JobStatus::Ok) {
            std::printf("%-16s (failed)\n", config);
            continue;
        }
        std::printf(
            "%-16s %14llu %14llu %7.3fx %10.0f %10.0f\n", config,
            static_cast<unsigned long long>(sw->out.sim.cycles),
            static_cast<unsigned long long>(hw->out.sim.cycles),
            static_cast<double>(sw->out.sim.cycles)
                / hw->out.sim.cycles,
            metricOr(*sw, "shootdown.latency.mean", 0),
            metricOr(*hw, "shootdown.latency.mean", 0));
    }
    std::printf("\nReading: the sw protocol interrupts every core and "
                "stalls the initiator until the last ack; the hw "
                "protocol rides the coherence network to just the "
                "structures holding stale entries, so its rounds are "
                "shorter and nobody stalls — the gap is the shootdown "
                "tax the churn stream levies on each design.\n");
}

} // namespace

const std::vector<SweepGrid> &
sweepGrids()
{
    static const std::vector<SweepGrid> grids = {
        {"fig9", "Speedup over the Nested Radix configuration",
         "Figure 9", fig9Jobs, fig9Summary},
        {"table4", "Applications evaluated", "Table 4", table4Jobs,
         table4Summary},
        {"multicore", "Multi-core (multiprogrammed) scaling",
         "Section 8 machine configuration", multicoreJobs,
         multicoreSummary},
        {"smoke", "Two-design short run (CI / fault campaigns)",
         "Section 8 machine configuration", smokeJobs, smokeSummary},
        {"mlp", "Walk memory-level parallelism (in-flight walk cap)",
         "Section 3 parallelism argument", mlpJobs, mlpSummary},
        {"coalesce",
         "Same-page walk coalescing design point (mlp x on/off)",
         "Section 3 parallelism argument", coalesceJobs,
         coalesceSummary},
        {"churn", "Translation churn scenarios (shootdown pressure)",
         "Translation-coherence subsystem", churnJobs, churnSummary},
        {"shootdown",
         "Shootdown protocol head-to-head (sw IPIs vs hw coherence)",
         "Translation-coherence subsystem", shootdownJobs,
         shootdownSummary},
    };
    return grids;
}

const SweepGrid *
findSweepGrid(const std::string &name)
{
    for (const SweepGrid &grid : sweepGrids())
        if (grid.name == name)
            return &grid;
    return nullptr;
}

ResultSink
runSweepGrid(const SweepGrid &grid, const SimParams &params,
             const SweepOptions &options)
{
    std::printf("######################################################\n");
    std::printf("# %s\n", grid.title.c_str());
    std::printf("# Reproduces: %s\n", grid.paper_ref.c_str());
    std::printf("######################################################\n");
    const SweepEngine engine(options);
    ResultSink sink = engine.run(grid.make_jobs(params));
    grid.print_summary(sink, params);
    return sink;
}

} // namespace necpt
