/**
 * @file
 * A fixed-size worker pool with a FIFO task queue.
 *
 * This is the execution substrate for the sweep engine: submitters
 * enqueue plain closures, a fixed set of workers drains them, and
 * wait() blocks until every submitted task has finished (queue empty
 * AND no task mid-flight). Tasks must not throw — the engine wraps
 * each job in its own fault-isolation layer before submission.
 */

#ifndef NECPT_EXEC_THREAD_POOL_HH
#define NECPT_EXEC_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace necpt
{

class ThreadPool
{
  public:
    /** Spin up @p threads workers (clamped to >= 1). */
    explicit ThreadPool(int threads);

    /** Drains outstanding tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task. Illegal after shutdown began. */
    void submit(std::function<void()> task);

    /** Block until the queue is empty and all workers are idle. */
    void wait();

    int size() const { return static_cast<int>(workers.size()); }

  private:
    void workerLoop();

    std::mutex mtx;
    std::condition_variable work_cv;  //!< wakes workers
    std::condition_variable idle_cv;  //!< wakes wait()
    std::deque<std::function<void()>> queue;
    std::vector<std::thread> workers;
    int in_flight = 0;
    bool stopping = false;
};

} // namespace necpt

#endif // NECPT_EXEC_THREAD_POOL_HH
