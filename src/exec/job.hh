/**
 * @file
 * The unit of sweep work: a keyed, seeded, fault-isolated simulation
 * job and the structured record it leaves behind.
 *
 * Determinism contract: a job's RNG seed is derived purely from
 * (sweep base seed, job key) — never from submission order, worker
 * identity, or wall-clock — so a grid run with 1 worker and with 8
 * workers produces bit-identical per-job results.
 */

#ifndef NECPT_EXEC_JOB_HH
#define NECPT_EXEC_JOB_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "sim/simulator.hh"
#include "sim/timeseries.hh"

namespace necpt
{

/** What the engine hands a job when it runs. */
struct JobContext
{
    /** Seed derived from (base seed, job key); see deriveJobSeed(). */
    std::uint64_t seed = 0;

    /** Retry attempt number, 0 on the first run. The simulation seed
     *  must NOT depend on it (records stay key-deterministic); only
     *  fault draws may (see faultSeed()). */
    int attempt = 0;

    /**
     * Fault-plan seed for this attempt: a pure function of (seed,
     * attempt), so a retried job redraws its injected faults — the
     * point of retrying a ResourceExhausted — while any --jobs value
     * still reproduces the identical attempt sequence.
     */
    /**
     * Per-job event tracer (null = tracing off). Owned by the engine;
     * jobs thread it into SimParams::tracer so walk events land in
     * this job's private ring (pid = submission index).
     */
    TraceBuffer *tracer = nullptr;

    /**
     * Per-job interval metrics sampler (null = sampling off). Owned by
     * the engine; jobs thread it into SimParams::timeseries so the
     * run's registry snapshots land in this job's private buffer.
     */
    TimeSeriesBuffer *timeseries = nullptr;

    std::uint64_t
    faultSeed() const
    {
        std::uint64_t sm = seed
            ^ (0xFA17ULL * (static_cast<std::uint64_t>(attempt) + 1));
        const std::uint64_t fs = splitmix64(sm);
        return fs ? fs : 1;
    }
};

/**
 * What a job produces: the standard structured simulation record,
 * plus free-form numeric/text extras for grids that report values
 * outside SimResult (e.g. Table-4 footprints).
 */
struct JobOutput
{
    SimResult sim;
    std::map<std::string, double> metrics;
    std::map<std::string, std::string> labels;
};

using JobFn = std::function<JobOutput(const JobContext &)>;

/** One schedulable experiment. */
struct JobSpec
{
    /**
     * Stable identity, e.g. "fig9/Nested ECPTs/GUPS". Keys must be
     * unique within a sweep; they name the job in logs, seed
     * derivation, and the results file.
     */
    std::string key;
    JobFn fn;
    /** Per-job wall-clock budget; 0 = use the engine default. */
    std::uint64_t timeout_ms = 0;
    /**
     * Optional invariant audit, run in the job's isolated thread
     * right after fn succeeds (e.g. an ECPT/CWT cross-check after
     * injected faults). A throw here turns the attempt into a typed
     * failure exactly as if fn had thrown.
     */
    std::function<void(const JobContext &)> audit;
};

enum class JobStatus
{
    Ok,
    Failed,   //!< threw; error holds the exception message
    TimedOut, //!< exceeded its wall-clock budget
};

/** The structured record every job leaves in the ResultSink. */
struct JobRecord
{
    std::string key;
    JobStatus status = JobStatus::Failed;
    std::string error;       //!< non-empty iff status != Ok
    std::uint64_t seed = 0;  //!< the derived seed the job ran with
    double wall_ms = 0;      //!< observed wall-clock (informational)
    JobOutput out;           //!< valid iff status == Ok

    /** Attempts consumed (1 = no retry was needed). */
    int attempts = 1;
    /** SimError taxonomy tag of the final error ("config",
     *  "resource_exhausted", "trace", "invariant"), "exception" for
     *  untyped throws; empty when status == Ok. */
    std::string error_kind;
    /** Error message of every failed attempt, oldest first (the final
     *  one equals @ref error). Empty when the first attempt passed. */
    std::vector<std::string> error_chain;

    /**
     * The job's trace ring (final attempt), when the sweep ran with
     * tracing on. Null on timeout: the detached runner still owns its
     * buffer, so the record drops its reference instead of racing.
     */
    std::shared_ptr<TraceBuffer> trace;

    /** The job's interval metrics samples (final attempt), when the
     *  sweep ran with sampling on. Null on timeout, same reason. */
    std::shared_ptr<TimeSeriesBuffer> timeseries;
};

/** Printable status name ("ok" / "failed" / "timeout"). */
const char *jobStatusName(JobStatus status);

/**
 * Derive a job's RNG seed from the sweep base seed and the job key
 * (FNV-1a over the key, then a splitmix64 finalizer with the base).
 * Pure function of its inputs — the scheduling-independence anchor.
 */
std::uint64_t deriveJobSeed(std::uint64_t base_seed,
                            const std::string &key);

} // namespace necpt

#endif // NECPT_EXEC_JOB_HH
