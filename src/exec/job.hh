/**
 * @file
 * The unit of sweep work: a keyed, seeded, fault-isolated simulation
 * job and the structured record it leaves behind.
 *
 * Determinism contract: a job's RNG seed is derived purely from
 * (sweep base seed, job key) — never from submission order, worker
 * identity, or wall-clock — so a grid run with 1 worker and with 8
 * workers produces bit-identical per-job results.
 */

#ifndef NECPT_EXEC_JOB_HH
#define NECPT_EXEC_JOB_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "sim/simulator.hh"

namespace necpt
{

/** What the engine hands a job when it runs. */
struct JobContext
{
    /** Seed derived from (base seed, job key); see deriveJobSeed(). */
    std::uint64_t seed = 0;
};

/**
 * What a job produces: the standard structured simulation record,
 * plus free-form numeric/text extras for grids that report values
 * outside SimResult (e.g. Table-4 footprints).
 */
struct JobOutput
{
    SimResult sim;
    std::map<std::string, double> metrics;
    std::map<std::string, std::string> labels;
};

using JobFn = std::function<JobOutput(const JobContext &)>;

/** One schedulable experiment. */
struct JobSpec
{
    /**
     * Stable identity, e.g. "fig9/Nested ECPTs/GUPS". Keys must be
     * unique within a sweep; they name the job in logs, seed
     * derivation, and the results file.
     */
    std::string key;
    JobFn fn;
    /** Per-job wall-clock budget; 0 = use the engine default. */
    std::uint64_t timeout_ms = 0;
};

enum class JobStatus
{
    Ok,
    Failed,   //!< threw; error holds the exception message
    TimedOut, //!< exceeded its wall-clock budget
};

/** The structured record every job leaves in the ResultSink. */
struct JobRecord
{
    std::string key;
    JobStatus status = JobStatus::Failed;
    std::string error;       //!< non-empty iff status != Ok
    std::uint64_t seed = 0;  //!< the derived seed the job ran with
    double wall_ms = 0;      //!< observed wall-clock (informational)
    JobOutput out;           //!< valid iff status == Ok
};

/** Printable status name ("ok" / "failed" / "timeout"). */
const char *jobStatusName(JobStatus status);

/**
 * Derive a job's RNG seed from the sweep base seed and the job key
 * (FNV-1a over the key, then a splitmix64 finalizer with the base).
 * Pure function of its inputs — the scheduling-independence anchor.
 */
std::uint64_t deriveJobSeed(std::uint64_t base_seed,
                            const std::string &key);

} // namespace necpt

#endif // NECPT_EXEC_JOB_HH
