/**
 * @file
 * The sweep engine: schedules an experiment grid onto a fixed-size
 * thread pool with per-job fault isolation.
 *
 *  - Determinism: each job's RNG seed is deriveJobSeed(base, key) —
 *    a pure function of the job key — so --jobs 1 and --jobs 8 yield
 *    bit-identical per-job records, in identical (submission) order.
 *  - Fault isolation: a job that throws is captured as a `failed`
 *    record carrying the exception message (plus the SimError
 *    taxonomy kind when typed); a job that exceeds its wall-clock
 *    budget is captured as `timeout`. Sibling jobs keep running
 *    either way — a sweep never aborts mid-grid.
 *  - Retries: attempts failing with a retryable SimError are re-run
 *    with exponential backoff (SweepOptions::retries/backoff_ms); the
 *    record keeps the attempt count and the full error chain.
 *  - Timeouts are supervised: a timed-out job's runner thread is
 *    detached (simulations have no cancellation points), so its
 *    state is intentionally leaked rather than torn down underneath
 *    a running walker.
 */

#ifndef NECPT_EXEC_ENGINE_HH
#define NECPT_EXEC_ENGINE_HH

#include <chrono>
#include <cstdio>
#include <vector>

#include "exec/job.hh"
#include "exec/result_sink.hh"

namespace necpt
{

struct SweepOptions
{
    /** Worker count; <= 0 means jobsFromEnv() (NECPT_JOBS). */
    int jobs = 0;
    /** Default per-job wall-clock budget in ms; 0 = unlimited. */
    std::uint64_t timeout_ms = 0;
    /** Base seed every job key is mixed with. */
    std::uint64_t base_seed = 0xD15EA5E;
    /** Progress destination (one line per job); nullptr = silent. */
    std::FILE *progress = stderr;
    /**
     * Bounded retry for attempts that fail with a *retryable*
     * SimError (ResourceExhausted): up to this many re-runs after the
     * first attempt. Timeouts, untyped exceptions, and non-retryable
     * errors are never retried.
     */
    int retries = 0;
    /** Base backoff before retry r: backoff_ms << r, capped at 2s. */
    std::uint64_t backoff_ms = 100;
    /**
     * Per-job trace ring capacity in events; 0 (default) = tracing
     * off. When on, every job runs with a private TraceBuffer whose
     * pid is the submission index, and its record keeps the buffer
     * for ResultSink::writeTrace().
     */
    std::size_t trace_capacity = 0;
    /** Trace every Nth walk (1 = all); see TraceBuffer sampling. */
    std::uint64_t trace_sample = 1;
    /**
     * Interval metrics sampling in simulated cycles; 0 (default) =
     * off. When on, every job runs with a private TimeSeriesBuffer
     * and its record keeps the buffer for
     * ResultSink::writeTimeseries().
     */
    std::uint64_t sample_interval = 0;
};

class SweepEngine
{
  public:
    explicit SweepEngine(const SweepOptions &options = {});

    /**
     * Run every job (fault-isolated, seeded from its key) and return
     * the filled sink. Records sit at their submission index.
     */
    ResultSink run(const std::vector<JobSpec> &specs) const;

    int jobs() const { return n_jobs; }
    const SweepOptions &options() const { return opts; }

  private:
    JobRecord runIsolated(const JobSpec &spec, std::uint32_t pid,
                          std::chrono::steady_clock::time_point epoch)
        const;

    SweepOptions opts;
    int n_jobs;
};

} // namespace necpt

#endif // NECPT_EXEC_ENGINE_HH
