/**
 * @file
 * Fault-injection campaigns: replicate a registered sweep grid under
 * N independent fault seeds with a FaultSpec armed, plus (when the
 * spec asks for trace corruption) one forged-corrupt-trace load per
 * replication.
 *
 * Campaign contract:
 *  - every job is a normal engine job — a fault that surfaces is a
 *    typed `failed` record (error_kind from the SimError taxonomy),
 *    never a process abort;
 *  - records are a pure function of (grid, params, spec, base seed):
 *    re-running with any --jobs value reproduces them byte-identically
 *    (canonical JSON, wall-clock omitted);
 *  - retryable faults consume engine retries and the record keeps the
 *    attempt count and full error chain.
 */

#ifndef NECPT_EXEC_FAULT_CAMPAIGN_HH
#define NECPT_EXEC_FAULT_CAMPAIGN_HH

#include <string>
#include <vector>

#include "common/fault.hh"
#include "exec/registry.hh"

namespace necpt
{

struct FaultCampaignOptions
{
    /** Sites and probabilities to arm in every replication. */
    FaultSpec spec;
    /** Replications: the grid is re-keyed under "faults/s0/" ..
     *  "faults/s<n-1>/", each deriving independent fault streams. */
    int fault_seeds = 20;
};

/**
 * Build the campaign job list: @p copts.fault_seeds re-keyed copies
 * of the grid's jobs with @p copts.spec armed, plus a corrupt-trace
 * load job per replication when the spec enables trace corruption.
 * Pure — no simulation runs here.
 */
std::vector<JobSpec> makeFaultCampaignJobs(
    const SweepGrid &grid, const SimParams &params,
    const FaultCampaignOptions &copts);

/**
 * Print the campaign verdict: records per status and error kind,
 * retry pressure (total attempts vs jobs), and the survival line.
 */
void printFaultCampaignSummary(const ResultSink &sink,
                               const FaultCampaignOptions &copts);

/**
 * Forge a deliberately corrupt trace file at @p path; the corruption
 * mode (truncated header, bad magic, partial trailing record, record
 * count lying) is chosen deterministically from @p seed. Returns a
 * short name of the mode written. Throws TraceError only via the
 * *loader* — this writer itself reports I/O trouble as
 * ResourceExhausted.
 */
std::string writeCorruptTrace(const std::string &path,
                              std::uint64_t seed);

} // namespace necpt

#endif // NECPT_EXEC_FAULT_CAMPAIGN_HH
