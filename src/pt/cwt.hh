/**
 * @file
 * Cuckoo Walk Tables (CWTs) — the software metadata that prunes ECPT
 * walks (Sections 2.3, 3.2).
 *
 * There is one CWT per page size. We model the CWT as a dense,
 * VA-indexed array of 4-bit section descriptors, materialized in 4KB
 * chunks on first touch:
 *   - PTE-CWT: a section is one 32KB block (the 8 consecutive 4KB
 *     pages that share one PTE-ECPT entry); present => the block
 *     exists in the PTE-ECPT and `way` says which way holds it.
 *   - PMD-CWT: a section is a 2MB region; present => mapped by a 2MB
 *     huge page (way = PMD-ECPT way of its block).
 *   - PUD-CWT: a section is a 1GB region; same fields one level up.
 *
 * A Cuckoo Walk Cache entry tags one 4KB CWT chunk (8192 sections), so
 * a single PMD-level entry reaches 16GB of VA and a PTE-level entry
 * 256MB — the only caching granularity we found consistent with the
 * hit rates the paper reports at 64GB footprints (Section 9.4: STC
 * 99%, gCWC PUD/PMD 99%/86%, hCWC PTE 99% in Step 1 / 67% in Step 3).
 *
 * Guest CWT chunks live at guest-physical addresses and must be
 * host-translated before they can be fetched — the Shortcut
 * Translation Cache's reason to exist (Section 4.1).
 */

#ifndef NECPT_PT_CWT_HH
#define NECPT_PT_CWT_HH

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "pt/cuckoo.hh"
#include "pt/pte.hh"

namespace necpt
{

/** Section granularity (log2 bytes) of the CWT for @p level. */
int sectionShiftFor(PageSize level);

/**
 * Decoded 4-bit CWT section descriptor.
 *
 * Two exclusive variants share the nibble: a section mapped by a page
 * of this CWT's size carries the ECPT way; an unmapped-at-this-size
 * section instead records *which smaller sizes* exist inside it, so a
 * single (high-reach) upper-level descriptor can pin the page size of
 * a uniformly-mapped region without consulting lower CWT levels.
 */
struct CwtDescriptor
{
    bool present = false;     //!< region mapped by a page of this size
    std::uint8_t way = 0;     //!< ECPT way holding it (present only)
    bool smaller_4k = false;  //!< region contains 4KB mappings
    bool smaller_2m = false;  //!< region contains 2MB mappings

    bool hasSmaller() const { return smaller_4k || smaller_2m; }
};

/**
 * One per-page-size Cuckoo Walk Table.
 */
class CuckooWalkTable
{
  public:
    /** Sections per CWC-cacheable entry: a 1KB sub-block of a chunk
     *  (the granularity that reproduces the Section-9.4 CWC hit rates
     *  at paper-scale footprints). */
    static constexpr int sections_per_entry = 2048;
    /** CWT storage granularity: 4KB chunks materialized on demand. */
    static constexpr int sections_per_chunk = 8192;
    static constexpr std::uint64_t chunk_bytes = 4096;

    /**
     * @param allocator space source in this table's address space
     * @param level which page size this CWT describes
     * @param config nominal geometry (kept for Table-2 reporting)
     */
    CuckooWalkTable(RegionAllocator &allocator, PageSize level,
                    const CuckooConfig &config);
    ~CuckooWalkTable();

    CuckooWalkTable(const CuckooWalkTable &) = delete;
    CuckooWalkTable &operator=(const CuckooWalkTable &) = delete;

    /** Mark the section containing @p va mapped at this size by @p way. */
    void setPresent(Addr va, int way);

    /** Clear the present bit of the section containing @p va. */
    void clearPresent(Addr va);

    /** Record that the section containing @p va holds pages of the
     *  (smaller) size @p smaller. */
    void setHasSmaller(Addr va, PageSize smaller);

    /**
     * Counted variant of setHasSmaller for the unmap/downgrade path:
     * records one page of @p smaller mapped in the section, so
     * removeSmaller() can clear the has-smaller bit exactly when the
     * last such page goes away.
     */
    void addSmaller(Addr va, PageSize smaller);

    /**
     * Record one page of @p smaller unmapped from the section
     * containing @p va; when its count reaches zero the stale
     * has-smaller bit is cleared — the CWT *downgrade* that keeps
     * walkers from probing sizes that no longer exist there.
     */
    void removeSmaller(Addr va, PageSize smaller);

    /**
     * Ground-truth descriptor for @p va. nullopt when no CWT chunk
     * covers the region at all (nothing ever mapped there).
     */
    std::optional<CwtDescriptor> query(Addr va) const;

    /**
     * The key identifying the CWT chunk covering @p va — what the
     * Cuckoo Walk Cache tags by.
     */
    std::uint64_t
    entryKey(Addr va) const
    {
        return va >> entry_shift;
    }

    /**
     * Physical addresses a hardware refill of the entry covering
     * @p va must fetch (the descriptor line within the chunk).
     */
    void entryProbeAddrs(Addr va, std::vector<Addr> &out) const;

    /** Section index of @p va within its storage chunk. */
    int
    sectionIndex(Addr va) const
    {
        return sectionOf(va);
    }

    /** No-op (dense CWTs never resize); kept for API compatibility. */
    void finishResize() {}

    PageSize level() const { return level_; }
    int sectionShift() const { return section_shift; }
    std::uint64_t structureBytes() const
    {
        return chunks.size() * chunk_bytes;
    }
    std::uint64_t entryCount() const { return chunks.size(); }

  private:
    struct Chunk
    {
        Addr base = invalid_addr;              //!< physical address
        std::array<std::uint8_t, chunk_bytes> nibbles{};
    };

    int sectionOf(Addr va) const
    {
        return static_cast<int>((va >> section_shift)
                                & (sections_per_chunk - 1));
    }

    Chunk &chunkOf(Addr va);
    const Chunk *peekChunk(Addr va) const;

    /** Read-modify-write of one section descriptor. */
    void update(Addr va, const CwtDescriptor &d);

    static std::uint8_t packNibble(const CwtDescriptor &d);
    static CwtDescriptor unpackNibble(std::uint8_t nibble);

    std::uint64_t chunkKey(Addr va) const
    {
        return va >> chunk_shift;
    }

    std::uint64_t sectionKey(Addr va) const
    {
        return va >> section_shift;
    }

    RegionAllocator &alloc;
    PageSize level_;
    int section_shift;
    int entry_shift;
    int chunk_shift;
    std::unordered_map<std::uint64_t, Chunk> chunks;
    /** Per-section counts of pages mapped at each smaller size
     *  ([0]=4K, [1]=2M) — OS bookkeeping, not simulated storage; it
     *  backs the exact clear in removeSmaller(). */
    std::unordered_map<std::uint64_t, std::array<std::uint32_t, 2>>
        smaller_counts;
};

} // namespace necpt

#endif // NECPT_PT_CWT_HH
