/**
 * @file
 * A complete Elastic Cuckoo Page Table for one address space: one d-ary
 * elastic cuckoo table per page size (PTE-, PMD-, PUD-ECPT) plus the
 * matching Cuckoo Walk Tables (Sections 2.3 and 3).
 *
 * Both the guest and the host instantiate this class (gECPT/gCWT and
 * hECPT/hCWT); the difference is the address space their regions are
 * carved from and whether a PTE-level CWT exists (the guest never has
 * one — Section 4.2; the host has one only in the Advanced design).
 */

#ifndef NECPT_PT_ECPT_HH
#define NECPT_PT_ECPT_HH

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/metrics.hh"
#include "pt/cuckoo.hh"
#include "pt/cwt.hh"
#include "pt/pte.hh"

namespace necpt
{

/** A cache-line ECPT slot payload: 8 consecutive translations. */
struct PteBlock
{
    static constexpr int entries = 8;
    std::array<Pte, entries> pte{};

    bool
    empty() const
    {
        for (const Pte &p : pte)
            if (p.present())
                return false;
        return true;
    }
};

/** Geometry of a full ECPT (tables + CWTs) for one address space. */
struct EcptConfig
{
    int ways = 3;
    /** Initial slots per way, per page size (Table 2). */
    std::array<std::uint64_t, num_page_sizes> initial_slots{
        16384, 16384, 8192};
    /** Load factor that triggers an elastic upsize. */
    double resize_threshold = 0.6;
    /**
     * Nominal CWT geometry as Table 2 states it (2 ways;
     * 4096/4096/2048 entries). The modeled CWTs are dense chunked
     * arrays (see pt/cwt.hh) and size themselves on demand; these
     * numbers are kept for Table-2 reporting.
     */
    int cwt_ways = 2;
    std::array<std::uint64_t, num_page_sizes> cwt_initial_slots{
        4096, 4096, 2048};
    std::uint64_t cwt_slot_bytes = 64;
    /**
     * Whether a PTE-level CWT is maintained. False for guests and for
     * the Plain design's host; true for the Advanced design's host
     * (Section 4.2).
     */
    bool has_pte_cwt = false;
    std::uint64_t seed = 0xEC9700;
};

/**
 * Elastic cuckoo page table + cuckoo walk tables for one address space.
 */
class EcptPageTable
{
  public:
    EcptPageTable(RegionAllocator &allocator, const EcptConfig &config);

    // The cuckoo tables hold non-owning references to the per-size move
    // notifiers below; relocating this object would dangle them.
    EcptPageTable(const EcptPageTable &) = delete;
    EcptPageTable &operator=(const EcptPageTable &) = delete;

    /** Install va -> pa for a page of @p size, maintaining the CWTs. */
    void map(Addr va, Addr pa, PageSize size);

    /** Remove the mapping of the page containing @p va. */
    void unmap(Addr va, PageSize size);

    /** Permission downgrade: clear the writable bit of the PTE mapping
     *  @p va in place. @return true when such a mapping existed. */
    bool writeProtect(Addr va, PageSize size);

    /** Functional lookup across all page sizes. */
    Translation lookup(Addr va) const;

    /** Lookup restricted to one page size; also reports the way. */
    struct SizedResult
    {
        Translation translation;
        int way = -1;
        Addr slot_addr = invalid_addr;
    };
    SizedResult lookupSized(Addr va, PageSize size) const;

    /** The block key for @p va in the size-@p size table. */
    std::uint64_t
    blockKey(Addr va, PageSize size) const
    {
        return pageNumber(va, size) >> 3;
    }

    /**
     * Hardware probe plan for the size-@p size table: slot addresses to
     * fetch for @p va, restricted to @p way_mask.
     */
    void
    probeAddrs(Addr va, PageSize size, unsigned way_mask,
               std::vector<Addr> &out) const
    {
        tableOf(size).probeAddrs(blockKey(va, size), way_mask, out);
    }

    /** All-ways mask for this table's geometry. */
    unsigned allWays() const { return (1u << cfg.ways) - 1; }

    /// @name Component access (walkers, OS, statistics)
    /// @{
    ElasticCuckooTable<PteBlock> &tableOf(PageSize size)
    {
        return *tables[static_cast<int>(size)];
    }
    const ElasticCuckooTable<PteBlock> &tableOf(PageSize size) const
    {
        return *tables[static_cast<int>(size)];
    }
    CuckooWalkTable *cwtOf(PageSize size)
    {
        return cwts[static_cast<int>(size)].get();
    }
    const CuckooWalkTable *cwtOf(PageSize size) const
    {
        return cwts[static_cast<int>(size)].get();
    }
    /// @}

    /** Does this table maintain a PTE-level CWT? */
    bool hasPteCwt() const { return cfg.has_pte_cwt; }

    /** Arm (or disarm, with nullptr) fault injection in every
     *  underlying cuckoo table. */
    void setFaultPlan(FaultPlan *plan);

    /** Attach the event tracer to every underlying cuckoo table. */
    void setTracer(TraceBuffer *tracer);

    /**
     * Register per-size cuckoo accounting under
     * "<prefix>cuckoo.<pte|pmd|pud>.*" plus the "<prefix>cuckoo.kicks"
     * aggregate (total displacements across the three tables).
     */
    void registerMetrics(MetricsRegistry &reg,
                         const std::string &prefix) const;

    /**
     * Cross-check ECPT/CWT consistency — the Section 4.4 staleness
     * argument made executable. For every resident block (both
     * generations of every table) the matching CWT descriptor must be
     * present and name the way that actually holds the block, and no
     * table may have parked (homeless) entries or a key resident in
     * both generations. Throws InvariantViolation naming @p who and
     * the first offending block.
     */
    void auditCwtConsistency(const std::string &who) const;

    /**
     * Complete all in-flight elastic resizes (tables and CWTs) — what
     * the OS's background migration finishes during idle periods.
     */
    void
    quiesce()
    {
        for (int s = 0; s < num_page_sizes; ++s) {
            tables[s]->finishResize();
            if (cwts[s])
                cwts[s]->finishResize();
        }
    }

    /** Bytes of all tables + CWTs (Section 9.5 accounting). */
    std::uint64_t structureBytes() const;

    /** Bytes of CWTs alone. */
    std::uint64_t cwtBytes() const;

    /** Total mapped pages of @p size. */
    std::uint64_t mappingCount(PageSize size) const
    {
        return mapped[static_cast<int>(size)];
    }

    const EcptConfig &config() const { return cfg; }

  private:
    /** Refresh the CWT way bits after a block moved to @p way. */
    void noteBlockPlacement(PageSize size, std::uint64_t key, int way);

    /** Persistent callee behind each table's MoveCallback (the
     *  FunctionRef contract: the closure state lives here, not in a
     *  temporary lambda). */
    struct MoveNotifier
    {
        EcptPageTable *owner = nullptr;
        PageSize size{};

        void
        operator()(std::uint64_t key, int way)
        {
            owner->noteBlockPlacement(size, key, way);
        }
    };

    EcptConfig cfg;
    std::array<MoveNotifier, num_page_sizes> move_notifiers;
    std::array<std::unique_ptr<ElasticCuckooTable<PteBlock>>,
               num_page_sizes> tables;
    std::array<std::unique_ptr<CuckooWalkTable>, num_page_sizes> cwts;
    std::array<std::uint64_t, num_page_sizes> mapped{};
};

} // namespace necpt

#endif // NECPT_PT_ECPT_HH
