/**
 * @file
 * Elastic cuckoo hash table (Section 2.3, following Skarlatos et al.,
 * ASPLOS'20).
 *
 * A d-ary cuckoo hash table where each way is a contiguous array of
 * cache-line-sized slots in (simulated) physical memory. The table is
 * *elastic*: when the load factor crosses a threshold, a new generation
 * of 2x capacity is allocated and entries migrate gradually (a few per
 * subsequent insert), so the table never stops the world. While a resize
 * is in flight, a key can live in either generation and hardware probes
 * must cover both — probeAddrs() reflects that.
 *
 * Cuckoo displacements and resize migrations *move* entries between ways
 * and addresses. The table reports each move through a callback so the
 * OS can update Cuckoo Walk Tables, and counts moves — the reason the
 * paper's designs never cache hPTE->gPTE pointers (Section 4.4).
 */

#ifndef NECPT_PT_CUCKOO_HH
#define NECPT_PT_CUCKOO_HH

#include <array>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/bitops.hh"
#include "common/fault.hh"
#include "common/function_ref.hh"
#include "common/hash.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "common/simd.hh"
#include "common/trace_events.hh"
#include "pt/pte.hh"

namespace necpt
{

/** Configuration of one elastic cuckoo table. */
struct CuckooConfig
{
    int ways = 3;                        //!< the paper's d
    std::uint64_t initial_slots = 16384; //!< slots per way (Table 2)
    std::uint64_t slot_bytes = 64;       //!< one cache line per slot
    double resize_threshold = 0.6;       //!< load factor triggering upsize
    int migrate_per_insert = 8;          //!< gradual-migration rate
    int max_kicks = 32;                  //!< cuckoo path bound
    std::uint64_t seed = 0xEC97;         //!< hash family seed
};

/**
 * @tparam ValueT payload stored per key (e.g. a block of 8 PTEs).
 */
template <typename ValueT>
class ElasticCuckooTable
{
  public:
    /** A successful find: the payload plus its hardware location. */
    struct FindResult
    {
        ValueT *value = nullptr;
        int way = -1;
        Addr slot_addr = invalid_addr;
        bool in_old_generation = false;

        explicit operator bool() const { return value != nullptr; }
    };

    /** Invoked whenever a key settles at a (possibly new) location.
     *  Non-owning: the registered callee must outlive the table's use
     *  (the ECPT stores its per-size notifier functors as members). */
    using MoveCallback = FunctionRef<void(std::uint64_t key, int way)>;

    ElasticCuckooTable(RegionAllocator &allocator,
                       const CuckooConfig &config)
        : alloc(allocator), cfg(config), rng(config.seed ^ 0xC0C0)
    {
        NECPT_ASSERT(cfg.ways >= 2 && cfg.ways <= HashFamily::max_ways);
        std::uint64_t sm = cfg.seed;
        for (int w = 0; w < cfg.ways; ++w)
            hashes[w] = HashFunction(splitmix64(sm));
        live = makeGeneration(cfg.initial_slots);
    }

    ~ElasticCuckooTable()
    {
        releaseGeneration(live);
        if (old)
            releaseGeneration(*old);
    }

    ElasticCuckooTable(const ElasticCuckooTable &) = delete;
    ElasticCuckooTable &operator=(const ElasticCuckooTable &) = delete;

    /** Register the OS callback for way updates (CWT maintenance). */
    void setMoveCallback(MoveCallback cb) { on_move = cb; }

    /** Arm (or disarm, with nullptr) fault injection: forced kick
     *  exhaustion and forced mid-probe resize windows. */
    void setFaultPlan(FaultPlan *plan) { fault_plan = plan; }

    /** Attach the event tracer: kick chains and resize windows are
     *  recorded (aggregated per insert) at the tracer's ambient clock.
     *  Null detaches (the default). */
    void setTracer(TraceBuffer *t) { tracer = t; }

    /**
     * Insert or update @p key with @p value. Displaced entries are
     * cuckoo-rehashed; the table resizes itself when needed.
     */
    void
    insert(std::uint64_t key, const ValueT &value)
    {
        // Injected resize window: open a fresh two-generation phase so
        // this insert (and the probes that follow) run mid-resize.
        if (fault_plan && !old && fault_plan->forceResizeWindow()) {
            ++injected_resizes;
            startResize();
        }
        const std::uint64_t kicks_before = rehash_moves;
        if (FindResult hit = find(key)) {
            *hit.value = value;
        } else {
            homeless.emplace_back(key, value);
            settle();
        }
        migrateSome();
        if (!old && loadFactor() > cfg.resize_threshold)
            startResize();
        // One aggregated event per displacing insert (never one per
        // kick: prefault storms would flush the whole ring).
        if (tracer && rehash_moves > kicks_before)
            tracer->instant(
                "cuckoo.kicks", TraceCat::Cuckoo, trace_pt_tid,
                tracer->now(),
                {{"kicks", static_cast<std::int64_t>(rehash_moves
                                                     - kicks_before)},
                 {"key", static_cast<std::int64_t>(key)}});
    }

    /** Look up @p key. */
    FindResult
    find(std::uint64_t key)
    {
        // Empty tables answer without hashing: a multi-size lookup
        // probes every page-size table, and for most workloads all but
        // one of them stays empty for the whole run.
        if (live.used == 0 && (!old || old->used == 0))
            return {};
        // One hash pass covers both generations: the raw 64-bit values
        // are generation-independent, only the modulo differs.
        std::uint64_t raw[HashFamily::max_ways];
        rawHashes(key, raw);
        if (FindResult r = findIn(live, key, false, raw))
            return r;
        if (old) {
            if (FindResult r = findIn(*old, key, true, raw))
                return r;
        }
        return {};
    }

    /**
     * Remove @p key. Covers both generations *and* the homeless list
     * (an entry can be parked there mid-settle under injected kick
     * exhaustion), and afterwards re-runs settle() so any parked entry
     * can claim the slot the deletion just freed — the homeless-slot
     * repair half of the delete path. @return true when it was present.
     */
    bool
    erase(std::uint64_t key)
    {
        bool hit = eraseIn(live, key);
        if (!hit && old)
            hit = eraseIn(*old, key);
        for (auto it = homeless.begin(); it != homeless.end(); ++it) {
            if (it->first == key) {
                homeless.erase(it);
                hit = true;
                break;
            }
        }
        if (hit) {
            ++erase_count;
            settle();
        }
        return hit;
    }

    /**
     * Hardware probe plan: the slot addresses a walker must fetch to
     * find @p key, restricted to ways in @p way_mask (bit w = way w).
     * During a resize both generations are probed.
     */
    void
    probeAddrs(std::uint64_t key, unsigned way_mask,
               std::vector<Addr> &out) const
    {
        std::uint64_t raw[HashFamily::max_ways];
        rawHashes(key, raw);
        for (int w = 0; w < cfg.ways; ++w) {
            if (!(way_mask & (1u << w)))
                continue;
            out.push_back(slotAddr(live, w, reduce(live, raw[w])));
            if (old)
                out.push_back(slotAddr(*old, w, reduce(*old, raw[w])));
        }
    }

    /** Which way currently holds @p key (-1 when absent). */
    int
    wayOf(std::uint64_t key) const
    {
        auto *self = const_cast<ElasticCuckooTable *>(this);
        FindResult r = self->find(key);
        return r ? r.way : -1;
    }

    /// @name Capacity and accounting
    /// @{
    std::uint64_t size() const { return live.used + (old ? old->used : 0); }

    double
    loadFactor() const
    {
        const auto capacity = static_cast<double>(live.slots * cfg.ways);
        return static_cast<double>(live.used) / capacity;
    }

    bool resizing() const { return old.has_value(); }

    std::uint64_t
    structureBytes() const
    {
        std::uint64_t bytes = live.slots * cfg.ways * cfg.slot_bytes;
        if (old)
            bytes += old->slots * cfg.ways * cfg.slot_bytes;
        return bytes;
    }

    /** Cuckoo displacements observed (Section 4.4 staleness driver). */
    std::uint64_t rehashMoves() const { return rehash_moves; }

    /** Successful deletions (churn / coherence accounting). */
    std::uint64_t eraseCount() const { return erase_count; }

    /** Entries migrated by elastic resizes. */
    std::uint64_t resizeMoves() const { return resize_moves; }

    /** Completed resize starts. */
    std::uint64_t resizeCount() const { return resizes; }

    /** Injected-fault accounting (tests / audits). */
    std::uint64_t injectedKickFailures() const { return injected_kicks; }
    std::uint64_t injectedResizes() const { return injected_resizes; }

    /** Entries currently parked off-table. Zero between inserts: the
     *  settle() loop always re-places (growing as needed) before
     *  insert() returns — the homeless-entry bound the fault tests
     *  assert under forced kick exhaustion. */
    std::size_t homelessCount() const { return homeless.size(); }

    std::uint64_t slotsPerWay() const { return live.slots; }
    int numWays() const { return cfg.ways; }
    std::uint64_t slotBytes() const { return cfg.slot_bytes; }

    /** Base address of live way @p w (tests / debugging). */
    Addr wayBase(int w) const { return live.base[w]; }
    /// @}

    /** Force any in-flight resize to complete (used by tests). */
    void
    finishResize()
    {
        while (old)
            migrateSome();
    }

    /** Visit every resident entry: fn(key, value, way, in_old_gen).
     *  Used by invariant audits to cross-check CWT consistency. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (int w = 0; w < cfg.ways; ++w)
            for (const Slot &slot : live.way_slots[w])
                if (slot.valid)
                    fn(slot.key, slot.value, w, false);
        if (old)
            for (int w = 0; w < cfg.ways; ++w)
                for (const Slot &slot : old->way_slots[w])
                    if (slot.valid)
                        fn(slot.key, slot.value, w, true);
    }

  private:
    struct Slot
    {
        std::uint64_t key = 0;
        ValueT value{};
        bool valid = false;
    };

    struct Generation
    {
        std::uint64_t slots = 0;
        std::uint64_t used = 0;
        std::uint64_t slot_mask = 0; //!< slots-1 when power of 2, else 0
        std::vector<std::vector<Slot>> way_slots; //!< [way][slot]
        std::vector<Addr> base;                   //!< per-way region base
        std::uint64_t migrate_scan = 0;           //!< way-major scan index
    };

    Generation
    makeGeneration(std::uint64_t slots)
    {
        Generation gen;
        gen.slots = slots;
        gen.slot_mask = isPowerOf2(slots) ? slots - 1 : 0;
        gen.way_slots.assign(cfg.ways, std::vector<Slot>(slots));
        for (int w = 0; w < cfg.ways; ++w)
            gen.base.push_back(alloc.allocRegion(slots * cfg.slot_bytes));
        return gen;
    }

    void
    releaseGeneration(Generation &gen)
    {
        for (std::size_t w = 0; w < gen.base.size(); ++w)
            alloc.freeRegion(gen.base[w], gen.slots * cfg.slot_bytes);
        gen.way_slots.clear();
        gen.base.clear();
    }

    /** Compute all ways' raw hashes of @p key in one pass — the d
     *  premixes feed the four-lane CRC kernel (the hardware hashes all
     *  ways in parallel; the model now does too). */
    void
    rawHashes(std::uint64_t key, std::uint64_t *out) const
    {
        const int d = cfg.ways;
        int w = 0;
        for (; w + 4 <= d; w += 4) {
            std::uint64_t mixed[4];
            for (int l = 0; l < 4; ++l)
                mixed[l] = ~__builtin_bswap64(hashes[w + l].premix(key));
            simd::crc64x4(detail::crc64_tables.t, mixed, out + w);
        }
        if (int rem = d - w) {
            std::uint64_t mixed[4], folded[4];
            for (int l = 0; l < 4; ++l)
                mixed[l] = ~__builtin_bswap64(
                    hashes[w + (l < rem ? l : rem - 1)].premix(key));
            simd::crc64x4(detail::crc64_tables.t, mixed, folded);
            for (int l = 0; l < rem; ++l)
                out[w + l] = folded[l];
        }
    }

    /** Reduce a raw hash to a slot index. The default slot counts are
     *  powers of 2 (16384, doubling), where masking and the modulo the
     *  old code computed give identical indices. */
    static std::uint64_t
    reduce(const Generation &gen, std::uint64_t raw)
    {
        return gen.slot_mask ? (raw & gen.slot_mask) : (raw % gen.slots);
    }

    std::uint64_t
    slotIndex(const Generation &gen, int way, std::uint64_t key) const
    {
        return reduce(gen, hashes[way](key));
    }

    Addr
    slotAddr(const Generation &gen, int way, std::uint64_t idx) const
    {
        return gen.base[way] + idx * cfg.slot_bytes;
    }

    FindResult
    findIn(Generation &gen, std::uint64_t key, bool is_old,
           const std::uint64_t *raw)
    {
        for (int w = 0; w < cfg.ways; ++w) {
            const auto idx = reduce(gen, raw[w]);
            Slot &slot = gen.way_slots[w][idx];
            if (slot.valid && slot.key == key)
                return {&slot.value, w, slotAddr(gen, w, idx), is_old};
        }
        return {};
    }

    bool
    eraseIn(Generation &gen, std::uint64_t key)
    {
        for (int w = 0; w < cfg.ways; ++w) {
            const auto idx = slotIndex(gen, w, key);
            Slot &slot = gen.way_slots[w][idx];
            if (slot.valid && slot.key == key) {
                slot.valid = false;
                --gen.used;
                return true;
            }
        }
        return false;
    }

    /**
     * Cuckoo placement into the live generation, displacing entries
     * along a bounded random-walk path. On failure the carried entry is
     * parked on the homeless list and false is returned.
     */
    bool
    tryPlace(std::uint64_t key, const ValueT &value)
    {
        // Injected kick exhaustion: park the entry as if the bounded
        // random walk ran out. The caller must NOT double the table
        // for it (a probabilistic site would compound doublings into
        // unbounded growth); the plan never fires twice in a row, so
        // the immediate retry placement is genuine.
        if (fault_plan && fault_plan->forceKickExhaustion()) {
            ++injected_kicks;
            kick_injected = true;
            homeless.emplace_back(key, value);
            return false;
        }
        std::uint64_t cur_key = key;
        ValueT cur_value = value;
        int last_way = -1;
        std::uint64_t raw[HashFamily::max_ways];
        for (int kick = 0; kick <= cfg.max_kicks; ++kick) {
            rawHashes(cur_key, raw);
            for (int w = 0; w < cfg.ways; ++w) {
                const auto idx = reduce(live, raw[w]);
                Slot &slot = live.way_slots[w][idx];
                if (!slot.valid) {
                    slot = {cur_key, cur_value, true};
                    ++live.used;
                    notifyMove(cur_key, w, kick > 0);
                    return true;
                }
            }
            int w;
            do {
                w = static_cast<int>(rng.below(cfg.ways));
            } while (w == last_way && cfg.ways > 1);
            const auto idx = reduce(live, raw[w]);
            Slot &slot = live.way_slots[w][idx];
            std::swap(cur_key, slot.key);
            std::swap(cur_value, slot.value);
            notifyMove(slot.key, w, true);
            last_way = w;
        }
        homeless.emplace_back(cur_key, cur_value);
        return false;
    }

    /** Place every parked entry, growing the table as needed. */
    void
    settle()
    {
        while (!homeless.empty()) {
            auto [key, value] = homeless.back();
            homeless.pop_back();
            if (!tryPlace(key, value)) {
                if (kick_injected) {
                    // Injected exhaustion: the entry is parked, but
                    // growing for it would let the fault rate compound
                    // into runaway doubling. Retry instead — the next
                    // placement is guaranteed genuine.
                    kick_injected = false;
                    continue;
                }
                // tryPlace parked the carried entry again; grow so the
                // next round has double the space. Termination: capacity
                // doubles every failure while |homeless| is bounded.
                startResize();
            }
        }
    }

    void
    notifyMove(std::uint64_t key, int way, bool was_displacement)
    {
        if (was_displacement)
            ++rehash_moves;
        if (on_move)
            on_move(key, way);
    }

    /**
     * Begin an elastic upsize: the live generation retires and a 2x
     * generation becomes live. If a previous resize is still in flight,
     * its remaining entries are drained to the homeless list first (a
     * rare stop-the-world corner; the common path is gradual).
     */
    void
    startResize()
    {
        if (old) {
            for (auto &way : old->way_slots) {
                for (Slot &slot : way) {
                    if (slot.valid) {
                        homeless.emplace_back(slot.key, slot.value);
                        slot.valid = false;
                        --old->used;
                    }
                }
            }
            releaseGeneration(*old);
            old.reset();
        }
        Generation bigger = makeGeneration(live.slots * 2);
        old.emplace(std::move(live));
        live = std::move(bigger);
        ++resizes;
        if (tracer)
            tracer->instant(
                "cuckoo.resize.begin", TraceCat::Cuckoo, trace_pt_tid,
                tracer->now(),
                {{"live_slots", static_cast<std::int64_t>(live.slots)},
                 {"resizes", static_cast<std::int64_t>(resizes)}});
    }

    /** Move a few entries from the retiring generation (gradual). */
    void
    migrateSome()
    {
        if (!old)
            return;
        int moved = 0;
        const std::uint64_t total = old->slots * cfg.ways;
        while (old->migrate_scan < total
               && moved < cfg.migrate_per_insert) {
            const auto way = old->migrate_scan / old->slots;
            const auto idx = old->migrate_scan % old->slots;
            ++old->migrate_scan;
            Slot &slot = old->way_slots[way][idx];
            if (slot.valid) {
                const auto key = slot.key;
                const auto value = slot.value;
                slot.valid = false;
                --old->used;
                ++resize_moves;
                ++moved;
                if (!tryPlace(key, value)) {
                    if (kick_injected) {
                        // Injected exhaustion mid-migration: re-place
                        // without growing (see settle()).
                        kick_injected = false;
                        settle();
                        return;
                    }
                    // Parked; grow and settle synchronously. startResize
                    // drains what is left of the current old generation,
                    // so the loop below terminates via the reset old.
                    startResize();
                    settle();
                    return;
                }
            }
        }
        if (old->migrate_scan >= total) {
            NECPT_ASSERT(old->used == 0);
            releaseGeneration(*old);
            old.reset();
            if (tracer)
                tracer->instant(
                    "cuckoo.resize.end", TraceCat::Cuckoo, trace_pt_tid,
                    tracer->now(),
                    {{"moves",
                      static_cast<std::int64_t>(resize_moves)}});
        }
    }

    RegionAllocator &alloc;
    CuckooConfig cfg;
    Rng rng;
    std::array<HashFunction, HashFamily::max_ways> hashes;
    Generation live;
    std::optional<Generation> old;
    MoveCallback on_move;
    std::vector<std::pair<std::uint64_t, ValueT>> homeless;

    FaultPlan *fault_plan = nullptr;
    TraceBuffer *tracer = nullptr;
    /** Set by tryPlace when its failure was injected, so the caller
     *  retries instead of doubling the table. */
    bool kick_injected = false;

    std::uint64_t rehash_moves = 0;
    std::uint64_t resize_moves = 0;
    std::uint64_t resizes = 0;
    std::uint64_t erase_count = 0;
    std::uint64_t injected_kicks = 0;
    std::uint64_t injected_resizes = 0;
};

} // namespace necpt

#endif // NECPT_PT_CUCKOO_HH
