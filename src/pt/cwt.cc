#include "pt/cwt.hh"

namespace necpt
{

/** Section granularity per CWT level (see file header). */
int
sectionShiftFor(PageSize level)
{
    switch (level) {
      case PageSize::Page4K:
        return pageShift(PageSize::Page4K) + 3; // 32KB PTE-ECPT block
      case PageSize::Page2M:
        return pageShift(PageSize::Page2M);
      case PageSize::Page1G:
        return pageShift(PageSize::Page1G);
    }
    return 15;
}

CuckooWalkTable::CuckooWalkTable(RegionAllocator &allocator, PageSize level,
                                 const CuckooConfig &config)
    : alloc(allocator),
      level_(level),
      section_shift(sectionShiftFor(level)),
      entry_shift(sectionShiftFor(level) + 11),  // 2048-section granule
      chunk_shift(sectionShiftFor(level) + 13)   // 8192-section chunk
{
    (void)config;
}

CuckooWalkTable::~CuckooWalkTable()
{
    for (auto &[key, chunk] : chunks)
        alloc.freeRegion(chunk.base, chunk_bytes);
}

CuckooWalkTable::Chunk &
CuckooWalkTable::chunkOf(Addr va)
{
    auto [it, fresh] = chunks.try_emplace(chunkKey(va));
    if (fresh)
        it->second.base = alloc.allocRegion(chunk_bytes);
    return it->second;
}

const CuckooWalkTable::Chunk *
CuckooWalkTable::peekChunk(Addr va) const
{
    auto it = chunks.find(chunkKey(va));
    return it == chunks.end() ? nullptr : &it->second;
}

std::uint8_t
CuckooWalkTable::packNibble(const CwtDescriptor &d)
{
    // present=1: | spare | way(2) | 1 |
    // present=0: | spare | smaller_2m | smaller_4k | 0 |
    if (d.present)
        return static_cast<std::uint8_t>(1u | (d.way & 0x3) << 1);
    return static_cast<std::uint8_t>((d.smaller_4k ? 1u : 0u) << 1
                                     | (d.smaller_2m ? 1u : 0u) << 2);
}

CwtDescriptor
CuckooWalkTable::unpackNibble(std::uint8_t nibble)
{
    CwtDescriptor d;
    d.present = nibble & 0x1;
    if (d.present) {
        d.way = static_cast<std::uint8_t>((nibble >> 1) & 0x3);
    } else {
        d.smaller_4k = (nibble >> 1) & 0x1;
        d.smaller_2m = (nibble >> 2) & 0x1;
    }
    return d;
}

void
CuckooWalkTable::update(Addr va, const CwtDescriptor &d)
{
    Chunk &chunk = chunkOf(va);
    const int section = sectionOf(va);
    std::uint8_t &byte = chunk.nibbles[section / 2];
    const int shift = (section % 2) * 4;
    byte = static_cast<std::uint8_t>(
        (byte & ~(0xF << shift)) | (packNibble(d) << shift));
}

void
CuckooWalkTable::setPresent(Addr va, int way)
{
    // A section mapped at this size has nothing smaller inside it.
    CwtDescriptor d;
    d.present = true;
    d.way = static_cast<std::uint8_t>(way);
    update(va, d);
}

void
CuckooWalkTable::clearPresent(Addr va)
{
    CwtDescriptor d;
    if (auto q = query(va))
        d = *q;
    d.present = false;
    d.way = 0;
    update(va, d);
}

void
CuckooWalkTable::setHasSmaller(Addr va, PageSize smaller)
{
    CwtDescriptor d;
    if (auto q = query(va))
        d = *q;
    const bool already = (smaller == PageSize::Page4K && d.smaller_4k)
        || (smaller == PageSize::Page2M && d.smaller_2m);
    if (already && !d.present)
        return; // avoid RMW churn
    d.present = false;
    d.way = 0;
    if (smaller == PageSize::Page4K)
        d.smaller_4k = true;
    else if (smaller == PageSize::Page2M)
        d.smaller_2m = true;
    update(va, d);
}

void
CuckooWalkTable::addSmaller(Addr va, PageSize smaller)
{
    const int idx = smaller == PageSize::Page4K ? 0 : 1;
    ++smaller_counts[sectionKey(va)][idx];
    setHasSmaller(va, smaller);
}

void
CuckooWalkTable::removeSmaller(Addr va, PageSize smaller)
{
    const int idx = smaller == PageSize::Page4K ? 0 : 1;
    auto it = smaller_counts.find(sectionKey(va));
    NECPT_ASSERT(it != smaller_counts.end() && it->second[idx] > 0);
    if (--it->second[idx] > 0)
        return;
    // Last page of this size in the section: downgrade the descriptor.
    CwtDescriptor d;
    if (auto q = query(va))
        d = *q;
    if (smaller == PageSize::Page4K)
        d.smaller_4k = false;
    else
        d.smaller_2m = false;
    update(va, d);
    if (it->second[0] == 0 && it->second[1] == 0)
        smaller_counts.erase(it);
}

std::optional<CwtDescriptor>
CuckooWalkTable::query(Addr va) const
{
    const Chunk *chunk = peekChunk(va);
    if (!chunk)
        return std::nullopt;
    const int section = sectionOf(va);
    const std::uint8_t byte = chunk->nibbles[section / 2];
    return unpackNibble((byte >> ((section % 2) * 4)) & 0xF);
}

void
CuckooWalkTable::entryProbeAddrs(Addr va, std::vector<Addr> &out) const
{
    const Chunk *chunk = peekChunk(va);
    // The refill fetches the descriptor line within the chunk. An
    // untouched chunk still costs a fetch attempt at where it would
    // live; charge the chunk base in that case.
    const Addr base = chunk ? chunk->base : invalid_addr;
    if (base == invalid_addr)
        return;
    const int section = sectionOf(va);
    out.push_back(base + static_cast<Addr>(section / 2) / line_bytes
                             * line_bytes);
}

} // namespace necpt
