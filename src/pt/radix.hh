/**
 * @file
 * The 4-level x86-64 radix page table (Figure 1).
 *
 * Levels are numbered as in the paper: L4 = PGD, L3 = PUD, L2 = PMD,
 * L1 = PTE. Each node is a 4KB frame of 512 8-byte entries allocated from
 * a RegionAllocator, so every entry has a real (simulated) physical
 * address — the walkers fetch those addresses through the cache
 * hierarchy. Huge pages terminate the tree early: a 2MB page is a leaf
 * at L2 and a 1GB page a leaf at L3.
 */

#ifndef NECPT_PT_RADIX_HH
#define NECPT_PT_RADIX_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "pt/pte.hh"

namespace necpt
{

/** One step of a radix walk: which entry address at which level. */
struct RadixStep
{
    Addr entry_addr;  //!< physical address of the entry fetched
    int level;        //!< 4 (PGD) down to 1 (PTE)
    bool leaf;        //!< true when this entry mapped the page
};

/**
 * Software-managed radix page table.
 */
class RadixPageTable
{
  public:
    /**
     * @param allocator source of 4KB node frames (guest- or host-phys)
     * @param levels tree depth: 4 (x86-64) or 5 (Sunny-Cove LA57,
     *        the Section-1 motivation for why radix nesting worsens)
     */
    explicit RadixPageTable(RegionAllocator &allocator, int levels = 4);
    ~RadixPageTable();

    /** The tree's top level (4 or 5). */
    int topLevel() const { return top_level; }

    RadixPageTable(const RadixPageTable &) = delete;
    RadixPageTable &operator=(const RadixPageTable &) = delete;

    /**
     * Install the mapping va -> pa for a page of @p size.
     * Intermediate nodes are created on demand.
     */
    void map(Addr va, Addr pa, PageSize size);

    /** Remove the mapping for the page containing @p va. */
    void unmap(Addr va, PageSize size);

    /** Functional lookup (no timing). */
    Translation lookup(Addr va) const;

    /**
     * Functional lookup that also reports every entry address a hardware
     * walker would touch, top level first (the walk chain of Figure 1).
     */
    Translation walk(Addr va, std::vector<RadixStep> &steps) const;

    /** Physical address of the root node (the CR3 contents). */
    Addr root() const;

    /** Number of table nodes currently allocated. */
    std::uint64_t nodeCount() const { return nodes; }

    /** Total bytes of table structure (4KB per node), for Section 9.5. */
    std::uint64_t structureBytes() const { return nodes * 4096ULL; }

    /** Number of leaf mappings installed. */
    std::uint64_t mappingCount() const { return mappings; }

  private:
    struct Node;

    /** One 8-byte slot of a node. */
    struct Entry
    {
        enum class Kind : std::uint8_t { None, Table, Leaf };
        Kind kind = Kind::None;
        std::unique_ptr<Node> child; //!< valid when kind == Table
        Addr leaf_pa = invalid_addr; //!< valid when kind == Leaf
    };

    struct Node
    {
        Addr frame;                    //!< physical base of this 4KB node
        std::array<Entry, 512> slots;

        explicit Node(Addr frame_addr) : frame(frame_addr) {}

        Addr entryAddr(unsigned idx) const { return frame + idx * pte_bytes; }
    };

    /** Radix level at which pages of @p size are leaves. */
    static int leafLevel(PageSize size);

    Node *ensureChild(Node *node, unsigned idx);

    /** True when no leaf mapping lives anywhere under @p node. */
    static bool subtreeEmpty(const Node *node);

    /** Free @p child and its descendants' node frames. */
    void freeSubtree(std::unique_ptr<Node> &child);

    RegionAllocator &alloc;
    int top_level;
    std::unique_ptr<Node> root_;
    std::uint64_t nodes = 0;
    std::uint64_t mappings = 0;
};

} // namespace necpt

#endif // NECPT_PT_RADIX_HH
