#include "pt/flat.hh"

#include "common/log.hh"

namespace necpt
{

FlatPageTable::FlatPageTable(RegionAllocator &allocator,
                             std::uint64_t covered_bytes)
{
    bytes = (covered_bytes >> pageShift(PageSize::Page4K)) * pte_bytes;
    base = allocator.allocRegion(bytes);
}

void
FlatPageTable::map(Addr gpa, Addr hpa, PageSize size)
{
    NECPT_ASSERT(pageOffset(gpa, size) == 0);
    entries[gpa >> pageShift(PageSize::Page4K)] = {hpa, size, true};
}

void
FlatPageTable::unmap(Addr gpa, PageSize size)
{
    entries.erase(pageBase(gpa, size) >> pageShift(PageSize::Page4K));
}

Translation
FlatPageTable::lookup(Addr gpa) const
{
    // Probe from the largest page's base down to the 4KB base: a huge
    // mapping is recorded once at its base frame number.
    for (int s = num_page_sizes - 1; s >= 0; --s) {
        const auto size = all_page_sizes[s];
        const Addr page = pageBase(gpa, size);
        auto it = entries.find(page >> pageShift(PageSize::Page4K));
        if (it != entries.end() && it->second.size == size)
            return it->second;
    }
    return {};
}

} // namespace necpt
