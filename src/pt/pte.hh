/**
 * @file
 * Page-table entry and translation result types shared by every
 * page-table organization.
 */

#ifndef NECPT_PT_PTE_HH
#define NECPT_PT_PTE_HH

#include <cstdint>

#include "common/bitops.hh"
#include "common/types.hh"

namespace necpt
{

/**
 * A packed 8-byte page-table entry: physical frame base plus flag bits.
 *
 * Bit 0 is the present bit, bit 1 the writable bit; bits 12..51 hold
 * the frame number — the x86-64-like layout all our organizations
 * share (Section 7 notes per-entry usage stays identical across
 * organizations).
 */
class Pte
{
  public:
    Pte() : raw(0) {}

    static Pte
    make(Addr frame_base, bool present = true)
    {
        Pte pte;
        pte.raw = (frame_base & frame_mask) | (present ? present_bit : 0)
            | (present ? writable_bit : 0);
        return pte;
    }

    bool present() const { return raw & present_bit; }
    bool writable() const { return raw & writable_bit; }
    Addr frameBase() const { return raw & frame_mask; }
    std::uint64_t rawValue() const { return raw; }

    /** Permission downgrade: drop write access in place (the entry
     *  stays present; cached copies need a shootdown). */
    void writeProtect() { raw &= ~writable_bit; }

    void clear() { raw = 0; }

  private:
    static constexpr std::uint64_t present_bit = 1ULL;
    static constexpr std::uint64_t writable_bit = 2ULL;
    static constexpr std::uint64_t frame_mask = mask(52) & ~mask(12);

    std::uint64_t raw;
};

/** The outcome of any software page-table lookup. */
struct Translation
{
    Addr pa = invalid_addr;   //!< physical base of the mapped page
    PageSize size = PageSize::Page4K;
    bool valid = false;

    /** Translate the full address @p va using this page mapping. */
    Addr
    apply(Addr va) const
    {
        return pa + pageOffset(va, size);
    }
};

/**
 * Interface for carving physical-address-space regions for page-table
 * structures. Implemented by the OS/hypervisor allocators in src/os.
 */
class RegionAllocator
{
  public:
    virtual ~RegionAllocator() = default;

    /** Allocate @p bytes of contiguous space; returns the base address. */
    virtual Addr allocRegion(std::uint64_t bytes) = 0;

    /** Release a region previously handed out by allocRegion(). */
    virtual void freeRegion(Addr base, std::uint64_t bytes) = 0;
};

} // namespace necpt

#endif // NECPT_PT_PTE_HH
