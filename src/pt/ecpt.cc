#include "pt/ecpt.hh"

#include <unordered_set>

#include "common/error.hh"
#include "common/log.hh"

namespace necpt
{

EcptPageTable::EcptPageTable(RegionAllocator &allocator,
                             const EcptConfig &config)
    : cfg(config)
{
    std::uint64_t seed = cfg.seed;
    for (int s = 0; s < num_page_sizes; ++s) {
        const auto size = all_page_sizes[s];
        CuckooConfig table_cfg;
        table_cfg.ways = cfg.ways;
        table_cfg.initial_slots = cfg.initial_slots[s];
        table_cfg.slot_bytes = line_bytes;
        table_cfg.resize_threshold = cfg.resize_threshold;
        table_cfg.seed = splitmix64(seed);
        tables[s] = std::make_unique<ElasticCuckooTable<PteBlock>>(
            allocator, table_cfg);

        // The guest has no PTE-level CWT; the host has one only when
        // the design asks for it (Section 4.2).
        if (size != PageSize::Page4K || cfg.has_pte_cwt) {
            CuckooConfig cwt_cfg;
            cwt_cfg.ways = cfg.cwt_ways;
            cwt_cfg.initial_slots = cfg.cwt_initial_slots[s];
            cwt_cfg.slot_bytes = cfg.cwt_slot_bytes;
            cwt_cfg.seed = splitmix64(seed);
            cwts[s] = std::make_unique<CuckooWalkTable>(allocator, size,
                                                        cwt_cfg);
        }

        // Keep CWT way bits coherent with cuckoo displacements and
        // elastic-resize migrations.
        move_notifiers[s] = MoveNotifier{this, size};
        tables[s]->setMoveCallback(move_notifiers[s]);
    }
}

void
EcptPageTable::noteBlockPlacement(PageSize size, std::uint64_t key,
                                  int way)
{
    CuckooWalkTable *cwt = cwtOf(size);
    if (!cwt)
        return;
    // The block covers 8 consecutive pages; each of its *mapped* pages'
    // sections must have their way bits refreshed.
    const Addr block_base = (key << 3) << pageShift(size);
    auto hit = tableOf(size).find(key);
    if (!hit)
        return;
    for (int j = 0; j < PteBlock::entries; ++j) {
        if (hit.value->pte[j].present()) {
            const Addr va = block_base
                + (static_cast<Addr>(j) << pageShift(size));
            cwt->setPresent(va, way);
        }
    }
}

void
EcptPageTable::map(Addr va, Addr pa, PageSize size)
{
    NECPT_ASSERT(pageOffset(va, size) == 0);
    NECPT_ASSERT(pageOffset(pa, size) == 0);
    auto &table = tableOf(size);
    const auto key = blockKey(va, size);
    const int sub = static_cast<int>(pageNumber(va, size) & 0x7);

    PteBlock block;
    if (auto hit = table.find(key))
        block = *hit.value;
    const bool fresh = !block.pte[sub].present();
    block.pte[sub] = Pte::make(pa);
    table.insert(key, block);
    if (fresh)
        ++mapped[static_cast<int>(size)];

    // CWT maintenance: present bit at this size...
    if (CuckooWalkTable *cwt = cwtOf(size)) {
        const int way = table.wayOf(key);
        NECPT_ASSERT(way >= 0);
        cwt->setPresent(va, way);
    }
    // ...and which-smaller-size bits at every larger level (Figure
    // 14's pruning depends on these). Counted per fresh page so the
    // unmap path can downgrade the bits exactly; a re-map of an
    // already-mapped page changes neither the bit nor the count.
    if (fresh) {
        for (int larger = static_cast<int>(size) + 1;
             larger < num_page_sizes; ++larger) {
            if (CuckooWalkTable *cwt = cwts[larger].get())
                cwt->addSmaller(va, size);
        }
    }
}

void
EcptPageTable::unmap(Addr va, PageSize size)
{
    auto &table = tableOf(size);
    const auto key = blockKey(va, size);
    const int sub = static_cast<int>(pageNumber(va, size) & 0x7);
    auto hit = table.find(key);
    if (!hit || !hit.value->pte[sub].present())
        return;
    hit.value->pte[sub].clear();
    --mapped[static_cast<int>(size)];
    const bool block_empty = hit.value->empty();
    if (block_empty)
        table.erase(key);
    if (CuckooWalkTable *cwt = cwtOf(size)) {
        // PMD/PUD-CWT sections cover exactly one page, so the present
        // bit dies with the page; a PTE-CWT section is the whole
        // 8-page block and stays present until the block empties.
        if (size != PageSize::Page4K || block_empty)
            cwt->clearPresent(va);
    }
    // Downgrade the has-smaller bits at every larger level once the
    // last size-`size` page in their section is gone.
    for (int larger = static_cast<int>(size) + 1;
         larger < num_page_sizes; ++larger) {
        if (CuckooWalkTable *cwt = cwts[larger].get())
            cwt->removeSmaller(va, size);
    }
}

bool
EcptPageTable::writeProtect(Addr va, PageSize size)
{
    auto &table = tableOf(size);
    auto hit = table.find(blockKey(va, size));
    if (!hit)
        return false;
    Pte &pte = hit.value->pte[pageNumber(va, size) & 0x7];
    if (!pte.present())
        return false;
    pte.writeProtect();
    return true;
}

EcptPageTable::SizedResult
EcptPageTable::lookupSized(Addr va, PageSize size) const
{
    auto &table = const_cast<ElasticCuckooTable<PteBlock> &>(tableOf(size));
    const auto key = blockKey(va, size);
    auto hit = table.find(key);
    if (!hit)
        return {};
    const int sub = static_cast<int>(pageNumber(va, size) & 0x7);
    const Pte &pte = hit.value->pte[sub];
    if (!pte.present())
        return {};
    SizedResult result;
    result.translation = {pte.frameBase(), size, true};
    result.way = hit.way;
    result.slot_addr = hit.slot_addr;
    return result;
}

Translation
EcptPageTable::lookup(Addr va) const
{
    for (const auto size : all_page_sizes) {
        const SizedResult r = lookupSized(va, size);
        if (r.translation.valid)
            return r.translation;
    }
    return {};
}

void
EcptPageTable::setFaultPlan(FaultPlan *plan)
{
    for (int s = 0; s < num_page_sizes; ++s)
        tables[s]->setFaultPlan(plan);
}

void
EcptPageTable::setTracer(TraceBuffer *tracer)
{
    for (int s = 0; s < num_page_sizes; ++s)
        tables[s]->setTracer(tracer);
}

void
EcptPageTable::registerMetrics(MetricsRegistry &reg,
                               const std::string &prefix) const
{
    for (PageSize size : all_page_sizes) {
        const ElasticCuckooTable<PteBlock> *t = &tableOf(size);
        const std::string p =
            prefix + "cuckoo." + pageLevelName(size) + ".";
        reg.addCounter(p + "kicks", [t] { return t->rehashMoves(); },
                       "cuckoo displacements (Section 4.4)");
        reg.addCounter(p + "resizes", [t] { return t->resizeCount(); });
        reg.addCounter(p + "resize_moves",
                       [t] { return t->resizeMoves(); });
        reg.addCounter(p + "entries", [t] { return t->size(); });
        reg.addValue(p + "load_factor",
                     [t] { return t->loadFactor(); });
    }
    reg.addCounter(prefix + "cuckoo.kicks", [this] {
        std::uint64_t total = 0;
        for (PageSize size : all_page_sizes)
            total += tableOf(size).rehashMoves();
        return total;
    }, "total cuckoo displacements across the per-size tables");
}

void
EcptPageTable::auditCwtConsistency(const std::string &who) const
{
    for (int s = 0; s < num_page_sizes; ++s) {
        const auto size = all_page_sizes[s];
        const auto &table = *tables[s];
        if (table.homelessCount())
            throw InvariantViolation(strfmt(
                "%s %s-ECPT: %zu homeless entries survived settle()",
                who.c_str(), pageSizeName(size),
                table.homelessCount()));

        const CuckooWalkTable *cwt = cwts[s].get();
        std::unordered_set<std::uint64_t> live_keys;
        table.forEach([&](std::uint64_t key, const PteBlock &block,
                          int way, bool in_old) {
            if (!in_old) {
                live_keys.insert(key);
            } else if (live_keys.count(key)) {
                throw InvariantViolation(strfmt(
                    "%s %s-ECPT: key 0x%llx resident in both "
                    "generations", who.c_str(), pageSizeName(size),
                    (unsigned long long)key));
            }
            const Addr block_base = (key << 3) << pageShift(size);
            for (int j = 0; j < PteBlock::entries; ++j) {
                if (!block.pte[j].present())
                    continue;
                const Addr va = block_base
                    + (static_cast<Addr>(j) << pageShift(size));
                if (cwt) {
                    const auto d = cwt->query(va);
                    if (!d || !d->present)
                        throw InvariantViolation(strfmt(
                            "%s %s-CWT: stale descriptor — VA 0x%llx is "
                            "mapped (key 0x%llx way %d) but the CWT has "
                            "no present bit", who.c_str(),
                            pageSizeName(size), (unsigned long long)va,
                            (unsigned long long)key, way));
                    if (d->way != way)
                        throw InvariantViolation(strfmt(
                            "%s %s-CWT: stale way bits — VA 0x%llx lives "
                            "in way %d but the CWT says way %d",
                            who.c_str(), pageSizeName(size),
                            (unsigned long long)va, way, (int)d->way));
                }
                // Every larger level must advertise this page via its
                // has-smaller bit (and cannot itself be present — the
                // mappings would overlap). The unmap downgrade keeps
                // these exact; a stale bit here means a missed
                // removeSmaller.
                for (int larger = s + 1; larger < num_page_sizes;
                     ++larger) {
                    const CuckooWalkTable *up = cwts[larger].get();
                    if (!up)
                        continue;
                    const auto d = up->query(va);
                    const bool advertised = d && !d->present
                        && (size == PageSize::Page4K ? d->smaller_4k
                                                     : d->smaller_2m);
                    if (!advertised)
                        throw InvariantViolation(strfmt(
                            "%s %s-CWT: missing has-smaller bit for "
                            "%s-mapped VA 0x%llx", who.c_str(),
                            pageLevelName(all_page_sizes[larger]),
                            pageSizeName(size),
                            (unsigned long long)va));
                }
            }
        });
    }
}

std::uint64_t
EcptPageTable::structureBytes() const
{
    std::uint64_t bytes = 0;
    for (int s = 0; s < num_page_sizes; ++s) {
        bytes += tables[s]->structureBytes();
        if (cwts[s])
            bytes += cwts[s]->structureBytes();
    }
    return bytes;
}

std::uint64_t
EcptPageTable::cwtBytes() const
{
    std::uint64_t bytes = 0;
    for (int s = 0; s < num_page_sizes; ++s)
        if (cwts[s])
            bytes += cwts[s]->structureBytes();
    return bytes;
}

} // namespace necpt
