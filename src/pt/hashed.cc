#include "pt/hashed.hh"

#include "common/log.hh"

namespace necpt
{

HashedPageTable::HashedPageTable(RegionAllocator &allocator,
                                 std::uint64_t slots, std::uint64_t seed)
    : hash(seed), num_slots(slots), table(slots)
{
    NECPT_ASSERT(isPowerOf2(slots));
    base = allocator.allocRegion(structureBytes());
}

bool
HashedPageTable::map(Addr va, Addr pa)
{
    const auto vpn = pageNumber(va, PageSize::Page4K);
    auto idx = slotOf(vpn);
    for (std::uint64_t i = 0; i < num_slots; ++i) {
        Slot &slot = table[idx];
        if (slot.state != Slot::State::Full) {
            slot = {vpn, pa, Slot::State::Full};
            ++used;
            return true;
        }
        if (slot.vpn == vpn) {
            slot.pa = pa; // remap
            return true;
        }
        idx = (idx + 1) & (num_slots - 1);
    }
    return false; // table full
}

void
HashedPageTable::unmap(Addr va)
{
    const auto vpn = pageNumber(va, PageSize::Page4K);
    auto idx = slotOf(vpn);
    for (std::uint64_t i = 0; i < num_slots; ++i) {
        Slot &slot = table[idx];
        if (slot.state == Slot::State::Empty)
            return;
        if (slot.state == Slot::State::Full && slot.vpn == vpn) {
            slot.state = Slot::State::Tombstone;
            --used;
            return;
        }
        idx = (idx + 1) & (num_slots - 1);
    }
}

Translation
HashedPageTable::lookup(Addr va, std::vector<Addr> *probe_addrs) const
{
    const auto vpn = pageNumber(va, PageSize::Page4K);
    auto idx = slotOf(vpn);
    ++lookup_count;
    for (std::uint64_t i = 0; i < num_slots; ++i) {
        ++probe_count;
        if (probe_addrs)
            probe_addrs->push_back(slotAddr(idx));
        const Slot &slot = table[idx];
        if (slot.state == Slot::State::Empty)
            return {};
        if (slot.state == Slot::State::Full && slot.vpn == vpn)
            return {slot.pa, PageSize::Page4K, true};
        idx = (idx + 1) & (num_slots - 1);
    }
    return {};
}

Translation
HashedPageTable::peek(Addr va) const
{
    const auto vpn = pageNumber(va, PageSize::Page4K);
    auto idx = slotOf(vpn);
    for (std::uint64_t i = 0; i < num_slots; ++i) {
        const Slot &slot = table[idx];
        if (slot.state == Slot::State::Empty)
            return {};
        if (slot.state == Slot::State::Full && slot.vpn == vpn)
            return {slot.pa, PageSize::Page4K, true};
        idx = (idx + 1) & (num_slots - 1);
    }
    return {};
}

double
HashedPageTable::avgProbes() const
{
    return lookup_count
        ? static_cast<double>(probe_count)
              / static_cast<double>(lookup_count)
        : 0.0;
}

} // namespace necpt
