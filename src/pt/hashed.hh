/**
 * @file
 * Classic single hashed page table (Section 2.2 background).
 *
 * One open-addressed table shared by the whole address space, 4KB pages
 * only — embodying the two traditional HPT shortcomings the paper lists:
 * collision chains cost extra probes, and a single shared table cannot
 * express multiple page sizes. Used as an instructive baseline and in
 * tests; the evaluated designs use Elastic Cuckoo tables instead.
 */

#ifndef NECPT_PT_HASHED_HH
#define NECPT_PT_HASHED_HH

#include <cstdint>
#include <vector>

#include "common/hash.hh"
#include "pt/pte.hh"

namespace necpt
{

/**
 * Open-addressing (linear probing) hashed page table.
 */
class HashedPageTable
{
  public:
    /**
     * @param allocator backing space for the slot array
     * @param slots number of slots (power of two)
     * @param seed hash-function seed
     */
    HashedPageTable(RegionAllocator &allocator, std::uint64_t slots,
                    std::uint64_t seed = 0x48505431);

    /** Insert va -> pa (4KB pages only). Grows never; may fail if full. */
    bool map(Addr va, Addr pa);

    /** Remove the mapping for @p va (tombstone). */
    void unmap(Addr va);

    /**
     * Functional lookup.
     * @param probe_addrs when non-null, receives the physical address of
     *        every slot touched while walking the collision chain.
     */
    Translation lookup(Addr va,
                       std::vector<Addr> *probe_addrs = nullptr) const;

    /**
     * Statistics-free lookup: same chain walk, but does not count
     * toward avgProbes(). The residency probes of the thread-sharded
     * simulator use this — their call count depends on rendezvous
     * timing, which must not perturb any observable statistic (and
     * they may run on worker threads, where the mutable counters
     * would race).
     */
    Translation peek(Addr va) const;

    /** Mean probes per successful lookup observed so far. */
    double avgProbes() const;

    std::uint64_t structureBytes() const { return num_slots * slot_bytes; }
    std::uint64_t occupancy() const { return used; }
    double loadFactor() const
    {
        return static_cast<double>(used) / static_cast<double>(num_slots);
    }

  private:
    static constexpr std::uint64_t slot_bytes = 16; //!< tag + pte

    struct Slot
    {
        std::uint64_t vpn = 0;
        Addr pa = invalid_addr;
        enum class State : std::uint8_t { Empty, Full, Tombstone };
        State state = State::Empty;
    };

    std::uint64_t slotOf(std::uint64_t vpn) const
    {
        return hash(vpn) & (num_slots - 1);
    }

    Addr slotAddr(std::uint64_t idx) const { return base + idx * slot_bytes; }

    HashFunction hash;
    Addr base;
    std::uint64_t num_slots;
    std::uint64_t used = 0;
    std::vector<Slot> table;

    mutable std::uint64_t probe_count = 0;
    mutable std::uint64_t lookup_count = 0;
};

} // namespace necpt

#endif // NECPT_PT_HASHED_HH
