#include "pt/radix.hh"

#include "common/log.hh"

namespace necpt
{

RadixPageTable::RadixPageTable(RegionAllocator &allocator, int levels)
    : alloc(allocator), top_level(levels)
{
    NECPT_ASSERT(levels == 4 || levels == 5);
    root_ = std::make_unique<Node>(alloc.allocRegion(4096));
    ++nodes;
}

RadixPageTable::~RadixPageTable() = default;

int
RadixPageTable::leafLevel(PageSize size)
{
    switch (size) {
      case PageSize::Page4K: return 1;
      case PageSize::Page2M: return 2;
      case PageSize::Page1G: return 3;
    }
    return 1;
}

RadixPageTable::Node *
RadixPageTable::ensureChild(Node *node, unsigned idx)
{
    Entry &entry = node->slots[idx];
    if (entry.kind == Entry::Kind::Leaf)
        panic("radix: table node requested under an existing leaf");
    if (entry.kind == Entry::Kind::None) {
        entry.kind = Entry::Kind::Table;
        entry.child = std::make_unique<Node>(alloc.allocRegion(4096));
        ++nodes;
    }
    return entry.child.get();
}

void
RadixPageTable::map(Addr va, Addr pa, PageSize size)
{
    NECPT_ASSERT(pageOffset(va, size) == 0);
    NECPT_ASSERT(pageOffset(pa, size) == 0);
    const int leaf = leafLevel(size);
    Node *node = root_.get();
    for (int level = top_level; level > leaf; --level)
        node = ensureChild(node, radixIndex(va, level));
    Entry &entry = node->slots[radixIndex(va, leaf)];
    if (entry.kind == Entry::Kind::Table) {
        // Huge-page collapse (THP promotion): the 4KB pieces were
        // unmapped first, so the subtree is empty — free its table
        // pages the way khugepaged frees the PTE page.
        NECPT_ASSERT(subtreeEmpty(entry.child.get()));
        freeSubtree(entry.child);
        entry.kind = Entry::Kind::None;
    }
    if (entry.kind == Entry::Kind::None)
        ++mappings;
    entry.kind = Entry::Kind::Leaf;
    entry.leaf_pa = pa;
}

bool
RadixPageTable::subtreeEmpty(const Node *node)
{
    for (const Entry &e : node->slots) {
        if (e.kind == Entry::Kind::Leaf)
            return false;
        if (e.kind == Entry::Kind::Table && !subtreeEmpty(e.child.get()))
            return false;
    }
    return true;
}

void
RadixPageTable::freeSubtree(std::unique_ptr<Node> &child)
{
    for (Entry &e : child->slots)
        if (e.kind == Entry::Kind::Table)
            freeSubtree(e.child);
    alloc.freeRegion(child->frame, 4096);
    --nodes;
    child.reset();
}

void
RadixPageTable::unmap(Addr va, PageSize size)
{
    const int leaf = leafLevel(size);
    Node *node = root_.get();
    for (int level = top_level; level > leaf; --level) {
        Entry &entry = node->slots[radixIndex(va, level)];
        if (entry.kind != Entry::Kind::Table)
            return; // nothing mapped here
        node = entry.child.get();
    }
    Entry &entry = node->slots[radixIndex(va, leaf)];
    if (entry.kind == Entry::Kind::Leaf) {
        entry.kind = Entry::Kind::None;
        entry.leaf_pa = invalid_addr;
        --mappings;
    }
}

Translation
RadixPageTable::lookup(Addr va) const
{
    std::vector<RadixStep> steps;
    return walk(va, steps);
}

Translation
RadixPageTable::walk(Addr va, std::vector<RadixStep> &steps) const
{
    const Node *node = root_.get();
    for (int level = top_level; level >= 1; --level) {
        const unsigned idx = radixIndex(va, level);
        const Entry &entry = node->slots[idx];
        const bool is_leaf = entry.kind == Entry::Kind::Leaf;
        steps.push_back({node->entryAddr(idx), level, is_leaf});
        if (entry.kind == Entry::Kind::None)
            return {};
        if (is_leaf) {
            PageSize size = PageSize::Page4K;
            if (level == 2)
                size = PageSize::Page2M;
            else if (level == 3)
                size = PageSize::Page1G;
            else if (level >= 4)
                panic("radix: leaf at PGD/P4D level is not supported");
            return {entry.leaf_pa, size, true};
        }
        node = entry.child.get();
    }
    return {};
}

Addr
RadixPageTable::root() const
{
    return root_->frame;
}

} // namespace necpt
