/**
 * @file
 * Flat page table: the host-side organization of the "flat nested page
 * tables" baseline (Section 9.6, Ahn et al. ISCA'12).
 *
 * The host table is one contiguous array indexed directly by the guest
 * physical page number, so translating any gPA costs exactly one memory
 * reference; combined with a 4-level guest radix table, a nested walk
 * needs at most 4 x (1 + 1) + 1 = 9 sequential references.
 */

#ifndef NECPT_PT_FLAT_HH
#define NECPT_PT_FLAT_HH

#include <cstdint>
#include <unordered_map>

#include "pt/pte.hh"

namespace necpt
{

/**
 * A flat, direct-indexed translation array.
 */
class FlatPageTable
{
  public:
    /**
     * @param allocator space for the array itself
     * @param covered_bytes size of the (guest-physical) space covered
     */
    FlatPageTable(RegionAllocator &allocator, std::uint64_t covered_bytes);

    /** Install gpa -> hpa for a page of @p size. */
    void map(Addr gpa, Addr hpa, PageSize size);

    /** Remove the mapping containing @p gpa. */
    void unmap(Addr gpa, PageSize size);

    /** Functional lookup. */
    Translation lookup(Addr gpa) const;

    /** Physical address of the entry a hardware walk would fetch. */
    Addr
    entryAddr(Addr gpa) const
    {
        return base + (gpa >> pageShift(PageSize::Page4K)) * pte_bytes;
    }

    /** Bytes reserved for the array (Section 9.5 accounting). */
    std::uint64_t structureBytes() const { return bytes; }

    std::uint64_t mappingCount() const { return entries.size(); }

  private:
    Addr base;
    std::uint64_t bytes;
    /**
     * Sparse backing store: key is the 4KB-granular guest frame number of
     * the page *base*; pages larger than 4KB occupy one logical record
     * here but would occupy replicated array entries in hardware.
     */
    std::unordered_map<std::uint64_t, Translation> entries;
};

} // namespace necpt

#endif // NECPT_PT_FLAT_HH
