#include "mem/hierarchy.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/fault.hh"
#include "common/log.hh"

namespace necpt
{

MemoryHierarchy::MemoryHierarchy(const MemHierarchyConfig &config, int cores)
    : cfg(config), dram_(config.dram)
{
    NECPT_ASSERT(cores >= 1);
    for (int i = 0; i < cores; ++i) {
        l1s.push_back(std::make_unique<SetAssocCache>(cfg.l1));
        l2s.push_back(std::make_unique<SetAssocCache>(cfg.l2));
    }
    l3_ = std::make_unique<SetAssocCache>(cfg.l3);
    live_by_core.resize(static_cast<std::size_t>(cores));
    free_by_core.resize(static_cast<std::size_t>(cores));
}

namespace
{

const char *
memLevelName(MemLevel level)
{
    switch (level) {
    case MemLevel::L1: return "l1";
    case MemLevel::L2: return "l2";
    case MemLevel::L3: return "l3";
    case MemLevel::Dram: return "dram";
    }
    return "?";
}

} // namespace

AccessResult
MemoryHierarchy::access(Addr addr, Cycles now, Requester requester,
                        int core, MemBreakdown *bd)
{
    const bool demand = requester == Requester::Core;
    if (demand && l1s[core]->access(addr, requester)) {
        if (bd)
            bd->cache = cfg.l1.latency;
        return {cfg.l1.latency, MemLevel::L1};
    }

    if (l2s[core]->access(addr, requester)) {
        if (demand)
            l1s[core]->fill(addr);
        if (bd)
            bd->cache = cfg.l2.latency;
        return {cfg.l2.latency, MemLevel::L2};
    }

    if (l3_->access(addr, requester)) {
        l2s[core]->fill(addr);
        if (demand)
            l1s[core]->fill(addr);
        if (bd)
            bd->cache = cfg.l3.latency;
        return {cfg.l3.latency, MemLevel::L3};
    }

    DramBreakdown dram_bd;
    Cycles dram_lat = dram_.access(addr, now + cfg.l3.latency,
                                   bd ? &dram_bd : nullptr);
    Cycles spike = 0;
    // Injected latency spike: the access completes correctly, just
    // late — a graceful degradation every walker must tolerate.
    if (fault_plan) {
        spike = fault_plan->memSpikeCycles();
        dram_lat += spike;
        injected_spikes += spike;
        if (spike > 0 && tracer_)
            tracer_->instant(
                "fault.mem_spike", TraceCat::Fault, trace_pt_tid, now,
                {{"cycles", static_cast<std::int64_t>(spike)},
                 {"addr", static_cast<std::int64_t>(addr)}});
    }
    l3_->fill(addr);
    l2s[core]->fill(addr);
    if (demand)
        l1s[core]->fill(addr);
    if (bd) {
        bd->cache = cfg.l3.latency;
        bd->dram_queue = dram_bd.queue;
        bd->dram_service = dram_bd.service;
        bd->dram_bus = dram_bd.bus;
        bd->fault = spike;
    }
    return {cfg.l3.latency + dram_lat, MemLevel::Dram};
}

BatchResult
MemoryHierarchy::batchAccess(AddrSpan addrs, Cycles now, int core)
{
    BatchResult result;
    if (addrs.empty())
        return result;
    auto capture = [&result](const BatchResult &batch, Cycles) {
        result = batch;
    };
    issueBatch(addrs, now, core, capture);
    drainAll();
    return result;
}

TxnId
MemoryHierarchy::issueBatch(AddrSpan addrs, Cycles now, int core,
                            TxnCallback cb)
{
    std::vector<std::uint32_t> &free_list =
        free_by_core[static_cast<std::size_t>(core)];
    std::uint32_t slot;
    if (!free_list.empty()) {
        slot = free_list.back();
        free_list.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(slots.size());
        slots.emplace_back();
    }
    PendingTxn &txn = slots[slot];
    txn.id = next_txn_id++;
    txn.core = core;
    txn.issued = now;
    txn.completes = now;
    txn.batch = BatchResult{};
    txn.miss_done.clear();
    txn.cb = cb;
    BatchResult &result = txn.batch;

    // Deduplicate by cache line: parallel probes of nearby table slots
    // often share a line (eight PTEs per tagged entry, Section 2.3).
    std::vector<Addr> &lines = lines_scratch;
    lines.clear();
    for (Addr a : addrs) {
        const Addr line = lineAddr(a);
        if (std::find(lines.begin(), lines.end(), line) == lines.end())
            lines.push_back(line);
    }

    result.requests = static_cast<int>(lines.size());

    // Outstanding-miss completion times, bounded by L2 MSHRs. Seeded
    // with the miss intervals still held by this core's in-flight
    // transactions: a batch issued while another is pending queues
    // behind the MSHRs it occupies. (The synchronous batchAccess()
    // path drains between batches, so its seed is always empty and
    // the legacy single-batch timing is reproduced exactly.)
    std::vector<Cycles> &outstanding = outstanding_scratch;
    outstanding.clear();
    for (std::uint32_t s : live_by_core[static_cast<std::size_t>(core)])
        for (Cycles d : slots[s].miss_done)
            outstanding.push_back(d);
    const int mshrs = cfg.l2.mshrs;
    Cycles finish = now;

    for (std::size_t i = 0; i < lines.size(); ++i) {
        // Issue in waves of mmu_issue_width, one cycle per wave.
        Cycles issue = now + static_cast<Cycles>(i / cfg.mmu_issue_width);

        // Retire any misses that completed before this issue slot.
        std::erase_if(outstanding,
                      [issue](Cycles c) { return c <= issue; });

        if (static_cast<int>(outstanding.size()) >= mshrs) {
            // No MSHR free: wait for the earliest completion.
            const auto earliest =
                *std::min_element(outstanding.begin(), outstanding.end());
            issue = std::max(issue, earliest);
            std::erase_if(outstanding,
                          [issue](Cycles c) { return c <= issue; });
        }

        MemBreakdown line_bd;
        const AccessResult r =
            access(lines[i], issue, Requester::Mmu, core,
                   attr_enabled ? &line_bd : nullptr);
        const Cycles done = issue + r.latency;
        if (attr_enabled && done > finish) {
            // This line now defines the batch's completion cycle, so
            // its decomposition — plus whatever it waited before its
            // access began — becomes the batch's. (Strict > matches
            // the max below: ties keep the earlier line.)
            const Cycles wave =
                static_cast<Cycles>(i / cfg.mmu_issue_width);
            line_bd.issue = wave;
            line_bd.mshr = issue - (now + wave);
            result.bd = line_bd;
        }
        finish = std::max(finish, done);

        // Per-request resolution events for traced walks only: the
        // walker has already marked this walk via its sampling gate.
        if (tracer_ && tracer_->walkActive())
            tracer_->span("mem.req", TraceCat::Mem,
                          static_cast<std::uint32_t>(core), issue,
                          r.latency,
                          {{"level", 0, memLevelName(r.level)},
                           {"line", static_cast<std::int64_t>(
                                        lines[i])}});

        if (r.level != MemLevel::L2) {
            ++result.l2_misses;
            outstanding.push_back(done);
            txn.miss_done.push_back(done);
            mshr_max = std::max(
                mshr_max,
                static_cast<std::uint64_t>(outstanding.size()));

            // Time-weighted MSHR characterization (Section 9.3): this
            // line holds an MSHR for [issue, done).
            mshr_busy_cycles += done - issue;
            if (!mshr_window_open) {
                mshr_window_first = issue;
                mshr_window_open = true;
            } else {
                mshr_window_first = std::min(mshr_window_first, issue);
            }
            mshr_window_last = std::max(mshr_window_last, done);
        }
        if (r.level == MemLevel::Dram)
            ++result.l3_misses;
    }

    result.latency = finish - now;
    txn.completes = finish;
    const TxnId id = txn.id;
    live_by_core[static_cast<std::size_t>(core)].push_back(slot);
    completions.push_back(CompletionKey{finish, id, slot});
    std::push_heap(completions.begin(), completions.end(),
                   CompletesLater{});
    if (completion_sink)
        completion_sink(finish);
    return id;
}

Cycles
MemoryHierarchy::nextCompletionCycle() const
{
    NECPT_ASSERT(!completions.empty());
    return completions.front().completes;
}

void
MemoryHierarchy::drainUntil(Cycles upto)
{
    // The completion heap pops in (completes, id) order — the same
    // canonical order the old scanning implementation selected — and
    // transactions a callback issues land on the heap mid-loop, so
    // they drain in this very call when due by @p upto.
    while (!completions.empty()
           && completions.front().completes <= upto) {
        std::pop_heap(completions.begin(), completions.end(),
                      CompletesLater{});
        const CompletionKey key = completions.back();
        completions.pop_back();
        PendingTxn &txn = slots[key.slot];
        // Retire before invoking: the callback may issue follow-up
        // transactions that must not see this one as live (its MSHR
        // intervals are released) and may reuse the freed slot — so
        // copy out what the callback needs first.
        const TxnCallback cb = txn.cb;
        const BatchResult batch = txn.batch;
        const Cycles completes = txn.completes;
        txn.cb = nullptr;
        txn.miss_done.clear();
        std::vector<std::uint32_t> &live =
            live_by_core[static_cast<std::size_t>(txn.core)];
        live.erase(std::find(live.begin(), live.end(), key.slot));
        // Recycling keeps miss_done's capacity, which is what makes
        // the steady-state issue/drain loop allocation-free.
        free_by_core[static_cast<std::size_t>(txn.core)].push_back(
            key.slot);
        if (cb)
            cb(batch, completes);
    }
}

void
MemoryHierarchy::drainAll()
{
    while (!completions.empty())
        drainUntil(nextCompletionCycle());
}

double
MemoryHierarchy::avgMshrsInUse() const
{
    if (!mshr_window_open || mshr_window_last <= mshr_window_first)
        return 0.0;
    return static_cast<double>(mshr_busy_cycles)
        / static_cast<double>(mshr_window_last - mshr_window_first);
}

void
MemoryHierarchy::registerMetrics(MetricsRegistry &reg,
                                 const std::string &prefix) const
{
    const int cores = numCores();
    for (int c = 0; c < cores; ++c) {
        const std::string core_part =
            cores > 1 ? ".core" + std::to_string(c) : "";
        reg.addHitMiss(prefix + "mem.l1" + core_part + ".demand",
                       &l1(c).stats(Requester::Core));
        reg.addHitMiss(prefix + "mem.l2" + core_part + ".demand",
                       &l2(c).stats(Requester::Core));
        reg.addHitMiss(prefix + "mem.l2" + core_part + ".mmu",
                       &l2(c).stats(Requester::Mmu));
    }
    reg.addHitMiss(prefix + "mem.l3.demand",
                   &l3().stats(Requester::Core));
    reg.addHitMiss(prefix + "mem.l3.mmu", &l3().stats(Requester::Mmu));

    const DramModel *d = &dram_;
    reg.addCounter(prefix + "dram.reads",
                   [d] { return d->numAccesses(); },
                   "DRAM line fetches (demand + MMU)");
    reg.addValue(prefix + "dram.row_hitrate",
                 [d] { return d->rowHitRate(); });

    reg.addValue(prefix + "mem.mshr.avg_peak",
                 [this] { return avgMshrsInUse(); },
                 "time-weighted MSHR occupancy (Section 9.3)");
    reg.addCounter(prefix + "mem.mshr.max",
                   [this] { return maxMshrsInUse(); });
    reg.addCounter(prefix + "mem.mshr.busy_cycles",
                   [this] { return mshrBusyCycles(); },
                   "MSHR occupancy integrated over time (miss-cycles)");
}

void
MemoryHierarchy::resetStats()
{
    for (auto &c : l1s)
        c->resetStats();
    for (auto &c : l2s)
        c->resetStats();
    l3_->resetStats();
    dram_.resetStats();
    mshr_busy_cycles = 0;
    mshr_window_first = 0;
    mshr_window_last = 0;
    mshr_window_open = false;
    mshr_max = 0;
}

} // namespace necpt
