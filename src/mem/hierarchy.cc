#include "mem/hierarchy.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/fault.hh"
#include "common/log.hh"

namespace necpt
{

MemoryHierarchy::MemoryHierarchy(const MemHierarchyConfig &config, int cores)
    : cfg(config), dram_(config.dram)
{
    NECPT_ASSERT(cores >= 1);
    for (int i = 0; i < cores; ++i) {
        l1s.push_back(std::make_unique<SetAssocCache>(cfg.l1));
        l2s.push_back(std::make_unique<SetAssocCache>(cfg.l2));
    }
    l3_ = std::make_unique<SetAssocCache>(cfg.l3);
}

namespace
{

const char *
memLevelName(MemLevel level)
{
    switch (level) {
    case MemLevel::L1: return "l1";
    case MemLevel::L2: return "l2";
    case MemLevel::L3: return "l3";
    case MemLevel::Dram: return "dram";
    }
    return "?";
}

} // namespace

AccessResult
MemoryHierarchy::access(Addr addr, Cycles now, Requester requester,
                        int core)
{
    const bool demand = requester == Requester::Core;
    if (demand && l1s[core]->access(addr, requester))
        return {cfg.l1.latency, MemLevel::L1};

    if (l2s[core]->access(addr, requester)) {
        if (demand)
            l1s[core]->fill(addr);
        return {cfg.l2.latency, MemLevel::L2};
    }

    if (l3_->access(addr, requester)) {
        l2s[core]->fill(addr);
        if (demand)
            l1s[core]->fill(addr);
        return {cfg.l3.latency, MemLevel::L3};
    }

    Cycles dram_lat = dram_.access(addr, now + cfg.l3.latency);
    // Injected latency spike: the access completes correctly, just
    // late — a graceful degradation every walker must tolerate.
    if (fault_plan) {
        const Cycles spike = fault_plan->memSpikeCycles();
        dram_lat += spike;
        injected_spikes += spike;
        if (spike > 0 && tracer_)
            tracer_->instant(
                "fault.mem_spike", TraceCat::Fault, trace_pt_tid, now,
                {{"cycles", static_cast<std::int64_t>(spike)},
                 {"addr", static_cast<std::int64_t>(addr)}});
    }
    l3_->fill(addr);
    l2s[core]->fill(addr);
    if (demand)
        l1s[core]->fill(addr);
    return {cfg.l3.latency + dram_lat, MemLevel::Dram};
}

BatchResult
MemoryHierarchy::batchAccess(const std::vector<Addr> &addrs, Cycles now,
                             int core)
{
    BatchResult result;
    if (addrs.empty())
        return result;

    // Deduplicate by cache line: parallel probes of nearby table slots
    // often share a line (eight PTEs per tagged entry, Section 2.3).
    std::vector<Addr> lines;
    lines.reserve(addrs.size());
    for (Addr a : addrs) {
        const Addr line = lineAddr(a);
        if (std::find(lines.begin(), lines.end(), line) == lines.end())
            lines.push_back(line);
    }

    result.requests = static_cast<int>(lines.size());

    // Outstanding-miss completion times, bounded by L2 MSHRs.
    std::vector<Cycles> outstanding;
    const int mshrs = cfg.l2.mshrs;
    Cycles finish = now;
    int occupancy_peak = 0;

    for (std::size_t i = 0; i < lines.size(); ++i) {
        // Issue in waves of mmu_issue_width, one cycle per wave.
        Cycles issue = now + static_cast<Cycles>(i / cfg.mmu_issue_width);

        // Retire any misses that completed before this issue slot.
        std::erase_if(outstanding,
                      [issue](Cycles c) { return c <= issue; });

        if (static_cast<int>(outstanding.size()) >= mshrs) {
            // No MSHR free: wait for the earliest completion.
            const auto earliest =
                *std::min_element(outstanding.begin(), outstanding.end());
            issue = std::max(issue, earliest);
            std::erase_if(outstanding,
                          [issue](Cycles c) { return c <= issue; });
        }

        const AccessResult r = access(lines[i], issue, Requester::Mmu,
                                      core);
        const Cycles done = issue + r.latency;
        finish = std::max(finish, done);

        // Per-request resolution events for traced walks only: the
        // walker has already marked this walk via its sampling gate.
        if (tracer_ && tracer_->walkActive())
            tracer_->span("mem.req", TraceCat::Mem,
                          static_cast<std::uint32_t>(core), issue,
                          r.latency,
                          {{"level", 0, memLevelName(r.level)},
                           {"line", static_cast<std::int64_t>(
                                        lines[i])}});

        if (r.level != MemLevel::L2) {
            ++result.l2_misses;
            outstanding.push_back(done);
            occupancy_peak = std::max(
                occupancy_peak, static_cast<int>(outstanding.size()));
        }
        if (r.level == MemLevel::Dram)
            ++result.l3_misses;
    }

    // MSHR occupancy characterization (Section 9.3).
    mshr_samples++;
    mshr_sum += static_cast<std::uint64_t>(occupancy_peak);
    mshr_max = std::max(mshr_max,
                        static_cast<std::uint64_t>(occupancy_peak));

    result.latency = finish - now;
    return result;
}

double
MemoryHierarchy::avgMshrsInUse() const
{
    return mshr_samples
        ? static_cast<double>(mshr_sum) / static_cast<double>(mshr_samples)
        : 0.0;
}

void
MemoryHierarchy::registerMetrics(MetricsRegistry &reg,
                                 const std::string &prefix) const
{
    const int cores = numCores();
    for (int c = 0; c < cores; ++c) {
        const std::string core_part =
            cores > 1 ? ".core" + std::to_string(c) : "";
        reg.addHitMiss(prefix + "mem.l1" + core_part + ".demand",
                       &l1(c).stats(Requester::Core));
        reg.addHitMiss(prefix + "mem.l2" + core_part + ".demand",
                       &l2(c).stats(Requester::Core));
        reg.addHitMiss(prefix + "mem.l2" + core_part + ".mmu",
                       &l2(c).stats(Requester::Mmu));
    }
    reg.addHitMiss(prefix + "mem.l3.demand",
                   &l3().stats(Requester::Core));
    reg.addHitMiss(prefix + "mem.l3.mmu", &l3().stats(Requester::Mmu));

    const DramModel *d = &dram_;
    reg.addCounter(prefix + "dram.reads",
                   [d] { return d->numAccesses(); },
                   "DRAM line fetches (demand + MMU)");
    reg.addValue(prefix + "dram.row_hitrate",
                 [d] { return d->rowHitRate(); });

    reg.addValue(prefix + "mem.mshr.avg_peak",
                 [this] { return avgMshrsInUse(); },
                 "mean per-batch MSHR occupancy peak (Section 9.3)");
    reg.addCounter(prefix + "mem.mshr.max",
                   [this] { return maxMshrsInUse(); });
}

void
MemoryHierarchy::resetStats()
{
    for (auto &c : l1s)
        c->resetStats();
    for (auto &c : l2s)
        c->resetStats();
    l3_->resetStats();
    dram_.resetStats();
    mshr_samples = 0;
    mshr_sum = 0;
    mshr_max = 0;
}

} // namespace necpt
