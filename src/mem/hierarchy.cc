#include "mem/hierarchy.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/fault.hh"
#include "common/log.hh"

namespace necpt
{

MemoryHierarchy::MemoryHierarchy(const MemHierarchyConfig &config, int cores)
    : cfg(config), dram_(config.dram)
{
    NECPT_ASSERT(cores >= 1);
    for (int i = 0; i < cores; ++i) {
        l1s.push_back(std::make_unique<SetAssocCache>(cfg.l1));
        l2s.push_back(std::make_unique<SetAssocCache>(cfg.l2));
    }
    l3_ = std::make_unique<SetAssocCache>(cfg.l3);
}

AccessResult
MemoryHierarchy::access(Addr addr, Cycles now, Requester requester,
                        int core)
{
    const bool demand = requester == Requester::Core;
    if (demand && l1s[core]->access(addr, requester))
        return {cfg.l1.latency, MemLevel::L1};

    if (l2s[core]->access(addr, requester)) {
        if (demand)
            l1s[core]->fill(addr);
        return {cfg.l2.latency, MemLevel::L2};
    }

    if (l3_->access(addr, requester)) {
        l2s[core]->fill(addr);
        if (demand)
            l1s[core]->fill(addr);
        return {cfg.l3.latency, MemLevel::L3};
    }

    Cycles dram_lat = dram_.access(addr, now + cfg.l3.latency);
    // Injected latency spike: the access completes correctly, just
    // late — a graceful degradation every walker must tolerate.
    if (fault_plan) {
        const Cycles spike = fault_plan->memSpikeCycles();
        dram_lat += spike;
        injected_spikes += spike;
    }
    l3_->fill(addr);
    l2s[core]->fill(addr);
    if (demand)
        l1s[core]->fill(addr);
    return {cfg.l3.latency + dram_lat, MemLevel::Dram};
}

BatchResult
MemoryHierarchy::batchAccess(const std::vector<Addr> &addrs, Cycles now,
                             int core)
{
    BatchResult result;
    if (addrs.empty())
        return result;

    // Deduplicate by cache line: parallel probes of nearby table slots
    // often share a line (eight PTEs per tagged entry, Section 2.3).
    std::vector<Addr> lines;
    lines.reserve(addrs.size());
    for (Addr a : addrs) {
        const Addr line = lineAddr(a);
        if (std::find(lines.begin(), lines.end(), line) == lines.end())
            lines.push_back(line);
    }

    result.requests = static_cast<int>(lines.size());

    // Outstanding-miss completion times, bounded by L2 MSHRs.
    std::vector<Cycles> outstanding;
    const int mshrs = cfg.l2.mshrs;
    Cycles finish = now;
    int occupancy_peak = 0;

    for (std::size_t i = 0; i < lines.size(); ++i) {
        // Issue in waves of mmu_issue_width, one cycle per wave.
        Cycles issue = now + static_cast<Cycles>(i / cfg.mmu_issue_width);

        // Retire any misses that completed before this issue slot.
        std::erase_if(outstanding,
                      [issue](Cycles c) { return c <= issue; });

        if (static_cast<int>(outstanding.size()) >= mshrs) {
            // No MSHR free: wait for the earliest completion.
            const auto earliest =
                *std::min_element(outstanding.begin(), outstanding.end());
            issue = std::max(issue, earliest);
            std::erase_if(outstanding,
                          [issue](Cycles c) { return c <= issue; });
        }

        const AccessResult r = access(lines[i], issue, Requester::Mmu,
                                      core);
        const Cycles done = issue + r.latency;
        finish = std::max(finish, done);

        if (r.level != MemLevel::L2) {
            ++result.l2_misses;
            outstanding.push_back(done);
            occupancy_peak = std::max(
                occupancy_peak, static_cast<int>(outstanding.size()));
        }
        if (r.level == MemLevel::Dram)
            ++result.l3_misses;
    }

    // MSHR occupancy characterization (Section 9.3).
    mshr_samples++;
    mshr_sum += static_cast<std::uint64_t>(occupancy_peak);
    mshr_max = std::max(mshr_max,
                        static_cast<std::uint64_t>(occupancy_peak));

    result.latency = finish - now;
    return result;
}

double
MemoryHierarchy::avgMshrsInUse() const
{
    return mshr_samples
        ? static_cast<double>(mshr_sum) / static_cast<double>(mshr_samples)
        : 0.0;
}

void
MemoryHierarchy::resetStats()
{
    for (auto &c : l1s)
        c->resetStats();
    for (auto &c : l2s)
        c->resetStats();
    l3_->resetStats();
    dram_.resetStats();
    mshr_samples = 0;
    mshr_sum = 0;
    mshr_max = 0;
}

} // namespace necpt
