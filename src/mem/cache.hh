/**
 * @file
 * Set-associative cache tag-array model with true-LRU replacement.
 *
 * The model tracks which lines are resident (so page-walk pollution is
 * real: walker fills evict demand lines and vice versa) and per-requester
 * hit/miss statistics for the Figure 13 RPKI/MPKI characterization. Data
 * values are not stored — only addresses matter for translation studies.
 *
 * Layout: the tag array is a contiguous uint64_t vector and the
 * replacement state a parallel one-byte-per-way vector (bit 7 = valid,
 * bits 0-6 = exact LRU age within the set, 0 = MRU). Nine bytes per way
 * instead of the 24 a {tag, 64-bit timestamp, valid} struct needs, so a
 * whole 8-way set's tags fit one hardware cache line — the lookup loop
 * every simulated memory access runs touches a third of the memory it
 * used to. Age ranks are a permutation of 0..assoc-1 per set and are
 * promoted exactly like a timestamp order, so eviction decisions are
 * bit-identical to the previous tick-based implementation.
 */

#ifndef NECPT_MEM_CACHE_HH
#define NECPT_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitops.hh"
#include "common/simd.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace necpt
{

/** Static geometry and timing of one cache level. */
struct CacheConfig
{
    std::string name;          //!< e.g. "L2"
    std::uint64_t size_bytes;  //!< total capacity
    int assoc;                 //!< ways per set
    Cycles latency;            //!< round-trip hit latency (Table 2)
    int mshrs;                 //!< miss-status handling registers
};

/**
 * A single cache level.
 */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheConfig &config);

    /**
     * Look up @p addr (any byte address). On a hit the line's recency is
     * updated. Statistics are charged to @p requester.
     *
     * @return true on hit.
     */
    bool
    access(Addr addr, Requester requester)
    {
        const Addr line = lineAddr(addr);
        const int way = findWay(setIndex(line), tagOf(line));
        if (way >= 0) {
            touch(setIndex(line), way);
            stats_[static_cast<int>(requester)].hit();
            return true;
        }
        stats_[static_cast<int>(requester)].miss();
        return false;
    }

    /** Probe without updating recency or statistics. */
    bool
    contains(Addr addr) const
    {
        const Addr line = lineAddr(addr);
        return findWay(setIndex(line), tagOf(line)) >= 0;
    }

    /** Install the line containing @p addr, evicting LRU if needed. */
    void fill(Addr addr);

    /** Invalidate the line containing @p addr if present. */
    void
    invalidate(Addr addr)
    {
        const Addr line = lineAddr(addr);
        const auto set = setIndex(line);
        const int way = findWay(set, tagOf(line));
        if (way >= 0)
            meta[set * cfg.assoc + way] &= age_mask;
    }

    /** Drop all lines (keeps statistics). */
    void flush();

    const CacheConfig &config() const { return cfg; }
    const HitMiss &stats(Requester requester) const
    {
        return stats_[static_cast<int>(requester)];
    }

    void
    resetStats()
    {
        stats_[0].reset();
        stats_[1].reset();
    }

    std::uint64_t numSets() const { return sets; }

  private:
    /** Per-way metadata byte: valid flag plus exact LRU age. */
    static constexpr std::uint8_t valid_bit = 0x80;
    static constexpr std::uint8_t age_mask = 0x7F;

    /** The single lookup loop behind access/contains/fill/invalidate:
     *  way index of @p tag within @p set, or -1 when absent. */
    int
    findWay(std::uint64_t set, std::uint64_t tag) const
    {
        // Vectorized tag compare (common/simd.hh): four ways per
        // 256-bit lane, valid bits folded from the meta row, lowest
        // matching way wins — same answer as the scalar scan.
        return simd::findTag(&tags[set * cfg.assoc],
                             &meta[set * cfg.assoc], cfg.assoc, tag,
                             valid_bit);
    }

    /** Promote @p way to MRU, ageing every way that was younger. */
    void
    touch(std::uint64_t set, int way)
    {
        std::uint8_t *meta_base = &meta[set * cfg.assoc];
        const std::uint8_t age = meta_base[way] & age_mask;
        for (int i = 0; i < cfg.assoc; ++i) {
            const std::uint8_t a = meta_base[i] & age_mask;
            if (a < age)
                meta_base[i] = static_cast<std::uint8_t>(
                    (meta_base[i] & valid_bit) | (a + 1));
        }
        meta_base[way] = static_cast<std::uint8_t>(
            (meta_base[way] & valid_bit));
    }

    std::uint64_t setIndex(Addr line) const { return (line >> line_shift) & (sets - 1); }
    std::uint64_t tagOf(Addr line) const { return line >> line_shift; }

    CacheConfig cfg;
    std::uint64_t sets;
    std::vector<std::uint64_t> tags; //!< sets * assoc, row-major by set
    std::vector<std::uint8_t> meta;  //!< parallel valid + LRU-age bytes
    HitMiss stats_[2];
};

} // namespace necpt

#endif // NECPT_MEM_CACHE_HH
