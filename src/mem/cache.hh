/**
 * @file
 * Set-associative cache tag-array model with true-LRU replacement.
 *
 * The model tracks which lines are resident (so page-walk pollution is
 * real: walker fills evict demand lines and vice versa) and per-requester
 * hit/miss statistics for the Figure 13 RPKI/MPKI characterization. Data
 * values are not stored — only addresses matter for translation studies.
 */

#ifndef NECPT_MEM_CACHE_HH
#define NECPT_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitops.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace necpt
{

/** Static geometry and timing of one cache level. */
struct CacheConfig
{
    std::string name;          //!< e.g. "L2"
    std::uint64_t size_bytes;  //!< total capacity
    int assoc;                 //!< ways per set
    Cycles latency;            //!< round-trip hit latency (Table 2)
    int mshrs;                 //!< miss-status handling registers
};

/**
 * A single cache level.
 */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheConfig &config);

    /**
     * Look up @p addr (any byte address). On a hit the line's recency is
     * updated. Statistics are charged to @p requester.
     *
     * @return true on hit.
     */
    bool access(Addr addr, Requester requester);

    /** Probe without updating recency or statistics. */
    bool contains(Addr addr) const;

    /** Install the line containing @p addr, evicting LRU if needed. */
    void fill(Addr addr);

    /** Invalidate the line containing @p addr if present. */
    void invalidate(Addr addr);

    /** Drop all lines (keeps statistics). */
    void flush();

    const CacheConfig &config() const { return cfg; }
    const HitMiss &stats(Requester requester) const
    {
        return stats_[static_cast<int>(requester)];
    }

    void
    resetStats()
    {
        stats_[0].reset();
        stats_[1].reset();
    }

    std::uint64_t numSets() const { return sets; }

  private:
    struct Way
    {
        std::uint64_t tag = 0;
        std::uint64_t lru = 0; //!< higher = more recent
        bool valid = false;
    };

    std::uint64_t setIndex(Addr line) const { return (line >> line_shift) & (sets - 1); }
    std::uint64_t tagOf(Addr line) const { return line >> line_shift; }

    CacheConfig cfg;
    std::uint64_t sets;
    std::vector<Way> ways;     //!< sets * assoc, row-major by set
    std::uint64_t tick = 0;    //!< LRU timestamp source
    HitMiss stats_[2];
};

} // namespace necpt

#endif // NECPT_MEM_CACHE_HH
