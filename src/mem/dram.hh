/**
 * @file
 * DRAMSim2-flavored main-memory timing model.
 *
 * Models the Table-2 memory system: 4 channels x 8 banks, DDR at 1GHz
 * (the core runs at 2GHz, so every DRAM cycle is two core cycles), with
 * open-page row-buffer policy and tRP-tCAS-tRCD-tRAS = 11-11-11-28.
 * Per-bank busy windows make concurrent accesses to the same bank
 * serialize, which is what charges wide parallel walk batches for their
 * bandwidth (Section 3/4 motivation).
 */

#ifndef NECPT_MEM_DRAM_HH
#define NECPT_MEM_DRAM_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace necpt
{

/**
 * Static DRAM organization and timing (in DRAM cycles).
 *
 * The Table-2 machine has 4 channels x 8 banks shared by 8 cores; the
 * default models one core's generous share (2 channels, 8 banks each) so that the
 * bandwidth pressure of wide parallel probe groups is felt the way it
 * is on the full machine (the Section 3/4 motivation for limiting
 * parallel accesses). Multi-core simulations should restore 4x8.
 */
struct DramConfig
{
    int channels = 2;
    int banks_per_channel = 8;
    std::uint64_t row_bytes = 8192;   //!< row-buffer size per bank
    int t_rp = 11;                    //!< precharge
    int t_cas = 11;                   //!< column access
    int t_rcd = 11;                   //!< RAS-to-CAS
    int t_ras = 28;                   //!< row-active minimum
    int burst = 4;                    //!< data burst occupancy
    int core_cycles_per_dram_cycle = 2; //!< 2GHz core / 1GHz DRAM
};

/**
 * Exact decomposition of one DRAM access's core cycles: queue +
 * service + bus == the latency access() returned. Feeds the cycle-
 * attribution ledger (common/cycle_ledger.hh).
 */
struct DramBreakdown
{
    Cycles queue = 0;   //!< waiting behind a busy bank
    Cycles service = 0; //!< activate/precharge + column access
    Cycles bus = 0;     //!< channel bus wait + data burst
};

/**
 * Open-page DRAM timing model.
 */
class DramModel
{
  public:
    explicit DramModel(const DramConfig &config = DramConfig{});

    /**
     * Perform one line read beginning no earlier than @p now (core
     * cycles). Updates bank state.
     *
     * @param bd when non-null, receives the queue/service/bus split
     *        of the returned latency (components sum to it exactly)
     * @return total core cycles from @p now until data is back
     *         (includes any queueing behind a busy bank).
     */
    Cycles access(Addr addr, Cycles now, DramBreakdown *bd = nullptr);

    /** Row-buffer hit rate so far. */
    double rowHitRate() const { return row_hits.rate(); }

    std::uint64_t numAccesses() const { return row_hits.accesses(); }

    void resetStats() { row_hits.reset(); }

    const DramConfig &config() const { return cfg; }

  private:
    struct Bank
    {
        std::uint64_t open_row = ~std::uint64_t{0};
        Cycles busy_until = 0;    //!< core cycles
        Cycles activated_at = 0;  //!< for tRAS enforcement
        bool row_open = false;
    };

    int bankIndex(Addr addr) const;
    std::uint64_t rowOf(Addr addr) const;

    DramConfig cfg;
    std::vector<Bank> banks;
    /** Per-channel data-bus occupancy (bursts serialize on the bus). */
    std::vector<Cycles> bus_busy;
    HitMiss row_hits;
};

} // namespace necpt

#endif // NECPT_MEM_DRAM_HH
