#include "mem/dram.hh"

#include <algorithm>

#include "common/bitops.hh"

namespace necpt
{

DramModel::DramModel(const DramConfig &config)
    : cfg(config), banks(config.channels * config.banks_per_channel),
      bus_busy(config.channels, 0)
{
}

int
DramModel::bankIndex(Addr addr)
 const
{
    // Line-interleave channels, then row-interleave banks within a
    // channel, the common mapping for parallelism-friendly layouts.
    const auto line = addr >> line_shift;
    const auto channel = line % cfg.channels;
    const auto bank =
        (addr / cfg.row_bytes) % cfg.banks_per_channel;
    return static_cast<int>(channel * cfg.banks_per_channel + bank);
}

std::uint64_t
DramModel::rowOf(Addr addr) const
{
    return addr / (cfg.row_bytes * cfg.channels);
}

Cycles
DramModel::access(Addr addr, Cycles now, DramBreakdown *bd)
{
    const int bank_idx = bankIndex(addr);
    Bank &bank = banks[bank_idx];
    const int channel = bank_idx / cfg.banks_per_channel;
    const auto row = rowOf(addr);
    const int k = cfg.core_cycles_per_dram_cycle;

    const Cycles start = std::max(now, bank.busy_until);
    Cycles service; // core cycles of bank occupancy for this access
    if (bank.row_open && bank.open_row == row) {
        row_hits.hit();
        service = static_cast<Cycles>(cfg.t_cas * k);
    } else {
        row_hits.miss();
        int dram_cycles = cfg.t_rcd + cfg.t_cas;
        if (bank.row_open) {
            dram_cycles += cfg.t_rp;
            // Respect tRAS: a row must stay active at least tRAS.
            const Cycles min_close =
                bank.activated_at + static_cast<Cycles>(cfg.t_ras * k);
            if (start < min_close)
                dram_cycles +=
                    static_cast<int>((min_close - start) / k);
        }
        service = static_cast<Cycles>(dram_cycles * k);
        bank.activated_at = start;
    }
    bank.open_row = row;
    bank.row_open = true;

    // The data burst serializes on the channel's shared bus.
    const Cycles burst = static_cast<Cycles>(cfg.burst * k);
    Cycles data_start = std::max(start + service, bus_busy[channel]);
    bus_busy[channel] = data_start + burst;
    bank.busy_until = data_start + burst;
    if (bd) {
        bd->queue = start - now;
        bd->service = service;
        bd->bus = (data_start - (start + service)) + burst;
    }
    return bank.busy_until - now;
}

} // namespace necpt
