/**
 * @file
 * Asynchronous memory-transaction types shared by the hierarchy and the
 * walk state machines.
 *
 * A transaction is one parallel group of MMU requests (a walk phase or
 * a background refill burst). The hierarchy schedules every member
 * access at issue time — the wave/MSHR/DRAM-bank math is deterministic
 * — and records the completion cycle; callers either drain completions
 * synchronously (the legacy batchAccess() path) or let the simulator's
 * event loop pump them at the right simulated time, which is what lets
 * independent walks overlap and contend for MSHRs and DRAM banks.
 *
 * Address groups cross the interface as AddrSpan views over
 * caller-owned scratch buffers, and completion callbacks are
 * non-owning FunctionRefs: the steady-state translation path issues
 * transactions without a single heap allocation. A callback's callee
 * must outlive the drain that fires it — walk machines and walkers
 * (the two issuers) both do.
 */

#ifndef NECPT_MEM_TXN_HH
#define NECPT_MEM_TXN_HH

#include <cstdint>
#include <span>

#include "common/function_ref.hh"
#include "common/types.hh"

namespace necpt
{

struct BatchResult;

/** Handle for an issued (possibly still in-flight) transaction. */
using TxnId = std::uint64_t;

/** Sentinel: no transaction. */
constexpr TxnId invalid_txn = 0;

/** Non-owning view of a parallel request group's byte addresses. */
using AddrSpan = std::span<const Addr>;

/**
 * Invoked exactly once when the transaction's slowest member returns.
 * @param batch  the per-batch outcome (size, misses, latency)
 * @param done   absolute completion cycle (issue + batch.latency)
 */
using TxnCallback = FunctionRef<void(const BatchResult &batch,
                                     Cycles done)>;

} // namespace necpt

#endif // NECPT_MEM_TXN_HH
