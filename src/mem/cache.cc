#include "mem/cache.hh"

#include "common/log.hh"

namespace necpt
{

SetAssocCache::SetAssocCache(const CacheConfig &config)
    : cfg(config)
{
    NECPT_ASSERT(cfg.size_bytes % (line_bytes * cfg.assoc) == 0);
    sets = cfg.size_bytes / (line_bytes * cfg.assoc);
    NECPT_ASSERT(isPowerOf2(sets));
    // Age ranks live in 7 bits; every configuration in Table 2 is <= 16-way.
    NECPT_ASSERT(cfg.assoc >= 1 && cfg.assoc <= 127);
    tags.assign(sets * cfg.assoc, 0);
    meta.resize(sets * cfg.assoc);
    // Seed each set's ages with the identity permutation (all invalid).
    // First fills then claim ways in scan order, exactly as before.
    for (std::uint64_t s = 0; s < sets; ++s)
        for (int i = 0; i < cfg.assoc; ++i)
            meta[s * cfg.assoc + i] = static_cast<std::uint8_t>(i);
}

void
SetAssocCache::fill(Addr addr)
{
    const Addr line = lineAddr(addr);
    const auto set = setIndex(line);
    const auto tag = tagOf(line);
    // Already present: just refresh recency.
    const int way = findWay(set, tag);
    if (way >= 0) {
        touch(set, way);
        return;
    }
    // Pick the first invalid way, else the LRU (max-age) victim. Ages are
    // a permutation per set, so the max among an all-valid set is unique
    // — the same way the old unique-tick minimum selected.
    std::uint8_t *meta_base = &meta[set * cfg.assoc];
    int victim = -1;
    for (int i = 0; i < cfg.assoc; ++i) {
        if (!(meta_base[i] & valid_bit)) {
            victim = i;
            break;
        }
    }
    if (victim < 0) {
        std::uint8_t oldest = 0;
        for (int i = 0; i < cfg.assoc; ++i) {
            const std::uint8_t a = meta_base[i] & age_mask;
            if (a >= oldest) {
                oldest = a;
                victim = i;
            }
        }
    }
    tags[set * cfg.assoc + victim] = tag;
    meta_base[victim] |= valid_bit;
    touch(set, victim);
}

void
SetAssocCache::flush()
{
    for (auto &m : meta)
        m &= age_mask;
}

} // namespace necpt
