#include "mem/cache.hh"

#include "common/log.hh"

namespace necpt
{

SetAssocCache::SetAssocCache(const CacheConfig &config)
    : cfg(config)
{
    NECPT_ASSERT(cfg.size_bytes % (line_bytes * cfg.assoc) == 0);
    sets = cfg.size_bytes / (line_bytes * cfg.assoc);
    NECPT_ASSERT(isPowerOf2(sets));
    ways.resize(sets * cfg.assoc);
}

bool
SetAssocCache::access(Addr addr, Requester requester)
{
    const Addr line = lineAddr(addr);
    const auto set = setIndex(line);
    const auto tag = tagOf(line);
    Way *base = &ways[set * cfg.assoc];
    for (int i = 0; i < cfg.assoc; ++i) {
        if (base[i].valid && base[i].tag == tag) {
            base[i].lru = ++tick;
            stats_[static_cast<int>(requester)].hit();
            return true;
        }
    }
    stats_[static_cast<int>(requester)].miss();
    return false;
}

bool
SetAssocCache::contains(Addr addr) const
{
    const Addr line = lineAddr(addr);
    const auto set = setIndex(line);
    const auto tag = tagOf(line);
    const Way *base = &ways[set * cfg.assoc];
    for (int i = 0; i < cfg.assoc; ++i)
        if (base[i].valid && base[i].tag == tag)
            return true;
    return false;
}

void
SetAssocCache::fill(Addr addr)
{
    const Addr line = lineAddr(addr);
    const auto set = setIndex(line);
    const auto tag = tagOf(line);
    Way *base = &ways[set * cfg.assoc];
    // Already present: just refresh recency.
    for (int i = 0; i < cfg.assoc; ++i) {
        if (base[i].valid && base[i].tag == tag) {
            base[i].lru = ++tick;
            return;
        }
    }
    // Pick an invalid way, else LRU victim.
    int victim = 0;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (int i = 0; i < cfg.assoc; ++i) {
        if (!base[i].valid) {
            victim = i;
            break;
        }
        if (base[i].lru < oldest) {
            oldest = base[i].lru;
            victim = i;
        }
    }
    base[victim] = {tag, ++tick, true};
}

void
SetAssocCache::invalidate(Addr addr)
{
    const Addr line = lineAddr(addr);
    const auto set = setIndex(line);
    const auto tag = tagOf(line);
    Way *base = &ways[set * cfg.assoc];
    for (int i = 0; i < cfg.assoc; ++i)
        if (base[i].valid && base[i].tag == tag)
            base[i].valid = false;
}

void
SetAssocCache::flush()
{
    for (auto &way : ways)
        way.valid = false;
}

} // namespace necpt
