/**
 * @file
 * The full memory hierarchy: per-core L1/L2, shared L3, DRAM.
 *
 * Two access paths exist, matching the paper's methodology:
 *  - Core (demand) accesses probe L1 -> L2 -> L3 -> DRAM and fill all
 *    levels on the way back.
 *  - MMU (page-walk) accesses enter at the L2 ("MMU-initiated L2
 *    misses", Section 9.1) and fill L2/L3 only — so translation state
 *    competes with demand data for cache capacity, which is the cache-
 *    pollution effect behind Figure 13.
 *
 * MMU traffic is transactional: issueBatch() models a *parallel* group
 * of MMU requests — issued in waves bounded by the walker issue width,
 * misses bounded by the L2 MSHR count, the batch complete when the
 * slowest member returns — and registers a completion that fires when
 * the simulation reaches that cycle (drainUntil()/drainAll()). MSHR
 * occupancy and DRAM bank busy-intervals persist across transactions,
 * so a batch issued while another is still in flight queues behind the
 * resources the earlier one holds. This is how the simulator charges
 * wide nested-ECPT probe groups for bandwidth (Section 3/4) and how
 * overlapped walks contend with each other over simulated time.
 * batchAccess() is the synchronous wrapper: issue, drain, return — a
 * lone transaction against quiesced resources, the legacy timing.
 */

#ifndef NECPT_MEM_HIERARCHY_HH
#define NECPT_MEM_HIERARCHY_HH

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <vector>

#include "common/metrics.hh"
#include "common/trace_events.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/txn.hh"

namespace necpt
{

class FaultPlan;

/** Which level serviced an access. */
enum class MemLevel : std::uint8_t { L1, L2, L3, Dram };

/**
 * Exact split of an access's — or a batch's critical-line — latency.
 * Components always sum to the reported latency (integer equality):
 * this is what lets the walkers' cycle ledgers conserve every cycle
 * (common/cycle_ledger.hh). The issue/mshr members are only nonzero
 * for batches, where the slowest line may have waited for an issue
 * wave slot or a free MSHR before its access even began.
 */
struct MemBreakdown
{
    Cycles issue = 0;        //!< wave serialization before issue
    Cycles mshr = 0;         //!< MSHR-full stall before issue
    Cycles cache = 0;        //!< L1/L2/L3 service cycles
    Cycles dram_queue = 0;   //!< waiting behind a busy DRAM bank
    Cycles dram_service = 0; //!< row activate + column access
    Cycles dram_bus = 0;     //!< channel bus wait + burst
    Cycles fault = 0;        //!< injected latency spike

    Cycles
    total() const
    {
        return issue + mshr + cache + dram_queue + dram_service
            + dram_bus + fault;
    }
};

/** Outcome of a single hierarchy access. */
struct AccessResult
{
    Cycles latency;  //!< round-trip cycles from issue
    MemLevel level;  //!< level that serviced the request
};

/** Outcome of a parallel batch of MMU accesses. */
struct BatchResult
{
    Cycles latency = 0;       //!< issue-to-last-completion
    int requests = 0;         //!< batch size
    int l2_misses = 0;        //!< members that missed in L2
    int l3_misses = 0;        //!< members that went to DRAM
    /** Critical-line decomposition of @ref latency (attribution on
     *  the issuing hierarchy only; zero otherwise). */
    MemBreakdown bd;
};

/** Geometry/timing of the whole hierarchy. */
struct MemHierarchyConfig
{
    CacheConfig l1{"L1", 32 * 1024, 8, 2, 8};
    CacheConfig l2{"L2", 512 * 1024, 8, 16, 20};
    /**
     * Table 2: the L3 is physically distributed, 2MB per slice; the
     * default single-core simulation models one slice (the per-core
     * share of the 8-core machine's 16MB).
     */
    CacheConfig l3{"L3", 2 * 1024 * 1024, 16, 56, 20};
    DramConfig dram{};
    int mmu_issue_width = 4;  //!< parallel walker requests per wave
};

/**
 * Owning facade over all cache levels and DRAM.
 */
class MemoryHierarchy
{
  public:
    MemoryHierarchy(const MemHierarchyConfig &config, int cores);

    /** One demand or walker access starting at @p now. When @p bd is
     *  non-null it receives the exact latency decomposition. */
    AccessResult access(Addr addr, Cycles now, Requester requester,
                        int core, MemBreakdown *bd = nullptr);

    /**
     * A group of parallel MMU requests (one walk phase), synchronous:
     * issues the transaction and immediately drains every pending
     * completion, so the caller observes the legacy call-and-return
     * timing (the batch runs against quiesced MSHRs).
     *
     * @param addrs   byte addresses to fetch (deduplicated by line
     *                here); a view — the hierarchy copies what it needs
     *                before returning
     * @param now     issue cycle
     * @param core    issuing core
     */
    BatchResult batchAccess(AddrSpan addrs, Cycles now, int core);

    BatchResult
    batchAccess(std::initializer_list<Addr> addrs, Cycles now, int core)
    {
        return batchAccess(AddrSpan(addrs.begin(), addrs.size()), now,
                           core);
    }

    /// @name Transactional (event-driven) interface
    /// @{

    /**
     * Issue a parallel MMU request group asynchronously. Every member
     * access is scheduled now (waves of mmu_issue_width per cycle,
     * misses bounded by the L2 MSHRs *still held by in-flight
     * transactions of this core*, DRAM bank busy-intervals shared with
     * everything issued earlier); @p cb fires when the simulation
     * drains past the completion cycle. An empty @p addrs completes at
     * @p now with a zero result.
     *
     * @return the transaction id (also passed back through @p cb's
     *         BatchResult bookkeeping if needed by the caller).
     */
    TxnId issueBatch(AddrSpan addrs, Cycles now, int core,
                     TxnCallback cb = nullptr);

    TxnId
    issueBatch(std::initializer_list<Addr> addrs, Cycles now, int core,
               TxnCallback cb = nullptr)
    {
        return issueBatch(AddrSpan(addrs.begin(), addrs.size()), now,
                          core, cb);
    }

    /**
     * Notified at issue time with each new transaction's (already
     * known) completion cycle. The event loop schedules exactly one
     * completion event per transaction instead of polling
     * nextCompletionCycle() and re-arming on every earlier arrival —
     * the pump churn that dominated overlapped-walk wall-clock.
     * Non-owning; nullptr detaches.
     */
    using CompletionSink = FunctionRef<void(Cycles)>;
    void setCompletionSink(CompletionSink sink) { completion_sink = sink; }

    /** Any transactions issued but not yet drained? */
    bool hasPending() const { return !completions.empty(); }

    /** Earliest completion cycle among pending transactions. */
    Cycles nextCompletionCycle() const;

    /** Fire (in completion order) every transaction that completes at
     *  or before @p upto — including ones its callbacks issue. */
    void drainUntil(Cycles upto);

    /** Drain every pending transaction regardless of cycle. */
    void drainAll();

    /// @}

    /// @name Statistics accessors (Figure 13 and MSHR characterization)
    /// @{
    const SetAssocCache &l1(int core) const { return *l1s[core]; }
    const SetAssocCache &l2(int core) const { return *l2s[core]; }
    const SetAssocCache &l3() const { return *l3_; }
    const DramModel &dram() const { return dram_; }
    /** Time-weighted mean MSHR occupancy: miss-interval cycles
     *  integrated over the span between the first issue and the last
     *  completion observed since resetStats(). */
    double avgMshrsInUse() const;
    /** Peak concurrent MSHR occupancy (across in-flight txns too). */
    std::uint64_t maxMshrsInUse() const { return mshr_max; }
    /** Integral of MSHR occupancy over time (miss-cycles). */
    std::uint64_t mshrBusyCycles() const { return mshr_busy_cycles; }
    /// @}

    SetAssocCache &l3Mut() { return *l3_; }

    void resetStats();

    int numCores() const { return static_cast<int>(l1s.size()); }
    const MemHierarchyConfig &config() const { return cfg; }

    /** Toggle batch-latency decomposition (BatchResult::bd). On by
     *  default; disabling skips the per-line bookkeeping entirely so
     *  the issue path runs exactly as before attribution existed. */
    void setAttribution(bool on) { attr_enabled = on; }
    bool attributionEnabled() const { return attr_enabled; }

    /** Arm (or disarm, with nullptr) injected latency spikes —
     *  modeling refresh storms, row conflicts, and contention bursts
     *  the average-latency DRAM model smooths over. */
    void setFaultPlan(FaultPlan *plan) { fault_plan = plan; }

    /** Attach the event tracer: MMU requests of traced walks are
     *  recorded with the level that serviced them; injected latency
     *  spikes are recorded unconditionally. Null detaches. */
    void setTracer(TraceBuffer *tracer) { tracer_ = tracer; }

    /**
     * Register cache and DRAM statistics: "<prefix>mem.l{1,2}.coreN.*"
     * (the core index is dropped for single-core machines),
     * "<prefix>mem.l3.*" — each split by demand/mmu requester — plus
     * "<prefix>dram.reads" / "<prefix>dram.row_hitrate" and the MSHR
     * characterization.
     */
    void registerMetrics(MetricsRegistry &reg,
                         const std::string &prefix) const;

    /** Spike cycles injected so far (tests / audits). */
    Cycles injectedSpikeCycles() const { return injected_spikes; }

  private:
    /** One issued-but-not-drained transaction. */
    struct PendingTxn
    {
        TxnId id = invalid_txn;
        int core = 0;
        Cycles issued = 0;
        Cycles completes = 0;
        BatchResult batch;
        /** Completion cycles of this txn's L2-miss lines: the MSHR
         *  busy-intervals later transactions queue behind. */
        std::vector<Cycles> miss_done;
        TxnCallback cb;
    };

    MemHierarchyConfig cfg;
    CompletionSink completion_sink;
    bool attr_enabled = true;
    FaultPlan *fault_plan = nullptr;
    TraceBuffer *tracer_ = nullptr;
    Cycles injected_spikes = 0;
    std::vector<std::unique_ptr<SetAssocCache>> l1s;
    std::vector<std::unique_ptr<SetAssocCache>> l2s;
    std::unique_ptr<SetAssocCache> l3_;
    DramModel dram_;

    /**
     * Transaction store, tuned for the overlapped-walk hot loop where
     * several transactions per core are in flight at once:
     *
     *  - @ref slots holds every transaction in a stable slot (drained
     *    slots go on the issuing core's free list, so miss_done
     *    capacity survives and steady-state issue/drain never
     *    allocates);
     *  - @ref completions is a min-heap of (completes, id) over the
     *    live slots — drainUntil() pops it instead of scanning, and
     *    the heap order IS the canonical completion order, so the
     *    drain sequence is unchanged from the scanning implementation;
     *  - @ref live_by_core lists each core's in-flight slots, so
     *    issueBatch()'s MSHR seed walks only the issuing core's
     *    transactions instead of everyone's.
     */
    std::vector<PendingTxn> slots;

    /** Heap entry: completion key plus the slot it resolves to. */
    struct CompletionKey
    {
        Cycles completes = 0;
        TxnId id = invalid_txn;
        std::uint32_t slot = 0;
    };

    /** Min-heap comparator: does @p a complete after @p b? */
    struct CompletesLater
    {
        bool
        operator()(const CompletionKey &a, const CompletionKey &b) const
        {
            if (a.completes != b.completes)
                return a.completes > b.completes;
            return a.id > b.id;
        }
    };

    std::vector<CompletionKey> completions;
    std::vector<std::vector<std::uint32_t>> live_by_core;
    std::vector<std::vector<std::uint32_t>> free_by_core;
    TxnId next_txn_id = 1;

    /** issueBatch() working sets, reused across calls (capacity
     *  retained; issueBatch never recurses). */
    std::vector<Addr> lines_scratch;
    std::vector<Cycles> outstanding_scratch;

    /** Time-weighted MSHR characterization (Section 9.3): occupancy
     *  integrated over miss intervals, and the observed activity span
     *  it is averaged over. */
    std::uint64_t mshr_busy_cycles = 0;
    Cycles mshr_window_first = 0;
    Cycles mshr_window_last = 0;
    bool mshr_window_open = false;
    std::uint64_t mshr_max = 0;
};

} // namespace necpt

#endif // NECPT_MEM_HIERARCHY_HH
