#include "os/system.hh"

#include "common/error.hh"
#include "common/fault.hh"
#include "common/log.hh"

namespace necpt
{

NestedSystem::NestedSystem(const SystemConfig &config)
    : cfg(config), mmap_cursor(config.mmap_base)
{
    host_pool =
        std::make_unique<PhysMemPool>(0, cfg.host_phys_bytes, "host-phys");
    if (cfg.virtualized)
        guest_pool = std::make_unique<PhysMemPool>(0, cfg.guest_phys_bytes,
                                                   "guest-phys");

    // Guest page tables live in guest-physical space (or directly in
    // host-physical space when native). Their regions are registered so
    // the hypervisor backs them with 4KB pages (Section 4.3).
    PhysMemPool &guest_space = cfg.virtualized ? *guest_pool : *host_pool;
    guest_pt_alloc =
        std::make_unique<PtRegionAllocator>(guest_space, pt_registry);
    guest_node_alloc =
        std::make_unique<ScatteredPtAllocator>(guest_space, pt_registry);

    switch (cfg.guest_kind) {
      case PtKind::Radix:
        // Radix nodes come from the general page allocator, scattered
        // among data frames — as real kernels allocate them.
        guest_radix = std::make_unique<RadixPageTable>(
            *guest_node_alloc, cfg.radix_levels);
        break;
      case PtKind::Ecpt: {
        EcptConfig ecfg = cfg.guest_ecpt;
        ecfg.has_pte_cwt = false; // the guest never keeps a PTE CWT
        guest_ecpt =
            std::make_unique<EcptPageTable>(*guest_pt_alloc, ecfg);
        break;
      }
      case PtKind::Flat:
        throw ConfigError("flat page tables are host-side only");
      case PtKind::Hpt: {
        // Classic single HPT (Section 2.2): one table, 4KB pages only,
        // sized up front to keep the load factor moderate.
        std::uint64_t slots = 2;
        while (slots < (cfg.guest_phys_bytes >> 12))
            slots <<= 1;
        guest_hpt = std::make_unique<HashedPageTable>(*guest_pt_alloc,
                                                      slots, 0x6857);
        break;
      }
    }

    if (cfg.virtualized) {
        host_node_alloc = std::make_unique<ScatteredPtAllocator>(
            *host_pool, host_pt_registry);
        switch (cfg.host_kind) {
          case PtKind::Radix:
            host_radix = std::make_unique<RadixPageTable>(
                *host_node_alloc, cfg.radix_levels);
            break;
          case PtKind::Ecpt:
            host_ecpt =
                std::make_unique<EcptPageTable>(*host_pool, cfg.host_ecpt);
            break;
          case PtKind::Flat:
            host_flat = std::make_unique<FlatPageTable>(
                *host_pool, cfg.guest_phys_bytes);
            break;
          case PtKind::Hpt: {
            std::uint64_t slots = 2;
            while (slots < (cfg.guest_phys_bytes >> 12) * 2)
                slots <<= 1;
            host_hpt = std::make_unique<HashedPageTable>(*host_pool,
                                                         slots, 0x7857);
            break;
          }
        }
    }

    // Arm fault injection only after the machine is built: start-up
    // allocations (initial ways, CWT chunks) are not interesting
    // corner cases — pressure during operation is.
    if (cfg.fault_plan) {
        host_pool->setFaultPlan(cfg.fault_plan);
        if (guest_pool)
            guest_pool->setFaultPlan(cfg.fault_plan);
        if (guest_ecpt)
            guest_ecpt->setFaultPlan(cfg.fault_plan);
        if (host_ecpt)
            host_ecpt->setFaultPlan(cfg.fault_plan);
    }
}

void
NestedSystem::auditInvariants() const
{
    if (guest_ecpt)
        guest_ecpt->auditCwtConsistency("guest");
    if (host_ecpt)
        host_ecpt->auditCwtConsistency("host");
    for (const PhysMemPool *pool : {host_pool.get(), guest_pool.get()}) {
        if (pool && pool->usedBytes() > pool->capacityBytes())
            throw InvariantViolation(strfmt(
                "pool '%s': accounting says %llu bytes used of %llu "
                "capacity", pool->name().c_str(),
                (unsigned long long)pool->usedBytes(),
                (unsigned long long)pool->capacityBytes()));
    }
}

NestedSystem::~NestedSystem() = default;

Addr
NestedSystem::mmapRegion(std::uint64_t bytes, bool thp_eligible)
{
    const auto align = thp_eligible ? pageBytes(PageSize::Page2M)
                                    : pageBytes(PageSize::Page4K);
    const Addr base = alignUp(mmap_cursor, align);
    mmap_cursor = base + alignUp(bytes, align);
    vmas.push_back({base, alignUp(bytes, align), thp_eligible});
    return base;
}

Addr
NestedSystem::mmapRegion1G(std::uint64_t bytes)
{
    const auto align = pageBytes(PageSize::Page1G);
    const Addr base = alignUp(mmap_cursor, align);
    mmap_cursor = base + alignUp(bytes, align);
    vmas.push_back({base, alignUp(bytes, align), false, true});
    return base;
}

const NestedSystem::Vma *
NestedSystem::vmaOf(Addr gva) const
{
    for (const Vma &vma : vmas)
        if (gva >= vma.base && gva < vma.base + vma.bytes)
            return &vma;
    return nullptr;
}

bool
NestedSystem::blockCovered(std::uint64_t block, double coverage,
                           std::uint64_t salt) const
{
    // Deterministic per-chunk hash draw (stride patterns would alias
    // with strided workloads).
    std::uint64_t sm = block ^ (cfg.seed * 0x9E3779B97F4A7C15ULL) ^ salt;
    const auto draw = splitmix64(sm);
    return static_cast<double>(draw >> 11) * 0x1.0p-53 < coverage;
}

void
NestedSystem::guestMap(Addr gva, Addr gpa, PageSize size)
{
    ++mutation_stamp;
    if (guest_radix) {
        guest_radix->map(gva, gpa, size);
    } else if (guest_hpt) {
        NECPT_ASSERT(size == PageSize::Page4K); // HPT limitation
        const bool ok = guest_hpt->map(gva, gpa);
        NECPT_ASSERT(ok);
    } else {
        guest_ecpt->map(gva, gpa, size);
    }
}

void
NestedSystem::hostMap(Addr gpa, Addr hpa, PageSize size)
{
    ++mutation_stamp;
    if (host_radix) {
        host_radix->map(gpa, hpa, size);
    } else if (host_ecpt) {
        host_ecpt->map(gpa, hpa, size);
    } else if (host_flat) {
        host_flat->map(gpa, hpa, size);
    } else if (host_hpt) {
        NECPT_ASSERT(size == PageSize::Page4K); // HPT limitation
        const bool ok = host_hpt->map(gpa, hpa);
        NECPT_ASSERT(ok);
    }
}

void
NestedSystem::guestFaultIn(Addr gva, const Vma &vma)
{
    PhysMemPool &frames = cfg.virtualized ? *guest_pool : *host_pool;
    ++guest_faults;

    // Explicit 1GB (hugetlbfs-style) regions bypass the THP policy.
    if (vma.use_1g) {
        const Addr page = pageBase(gva, PageSize::Page1G);
        guestMap(page, frames.allocFrame(PageSize::Page1G),
                 PageSize::Page1G);
        return;
    }

    // THP feasibility is decided per contiguous 64MB chunk: real
    // allocators succeed or fail in zones rather than salt-and-pepper
    // at 2MB granularity, and 64MB keeps the coverage fraction
    // meaningful even for sub-GB arrays.
    const auto region = gva >> 26;
    bool use_thp = false;
    if (cfg.guest_thp && vma.thp_eligible) {
        auto it = guest_block_thp.find(region);
        if (it == guest_block_thp.end()) {
            use_thp =
                blockCovered(region, cfg.guest_thp_coverage, 0x6E57);
            guest_block_thp.emplace(region, use_thp);
        } else {
            use_thp = it->second;
        }
    }

    if (use_thp) {
        const Addr page = pageBase(gva, PageSize::Page2M);
        const Addr frame = frames.allocFrame(PageSize::Page2M);
        guestMap(page, frame, PageSize::Page2M);
    } else {
        const Addr page = pageBase(gva, PageSize::Page4K);
        const Addr frame = frames.allocFrame(PageSize::Page4K);
        guestMap(page, frame, PageSize::Page4K);
    }
}

void
NestedSystem::hostFaultIn(Addr gpa)
{
    NECPT_ASSERT(cfg.virtualized);
    ++host_faults;

    // Page-table regions are always backed by 4KB pages (Section 4.3).
    if (isPtRegion(gpa)) {
        const Addr page = pageBase(gpa, PageSize::Page4K);
        hostMap(page, host_pool->allocFrame(PageSize::Page4K),
                PageSize::Page4K);
        host_blocks_with_4k.insert(gpa >> pageShift(PageSize::Page2M));
        return;
    }

    // Per-64MB-chunk decision, as on the guest side: coarse enough to
    // keep regions size-uniform for the CWT summaries, fine enough
    // that the configured coverage leaves a real 4KB residue (the
    // Figure-12 structure).
    const auto region = gpa >> 26;
    bool use_thp = false;
    if (cfg.host_thp) {
        auto it = host_block_thp.find(region);
        if (it == host_block_thp.end()) {
            use_thp =
                blockCovered(region, cfg.host_thp_coverage, 0x5A17);
            host_block_thp.emplace(region, use_thp);
        } else {
            use_thp = it->second;
        }
    }

    // A 2MB mapping may not overlap an existing 4KB one (a scattered
    // page-table node faulted in earlier).
    if (use_thp
        && host_blocks_with_4k.count(gpa >> pageShift(PageSize::Page2M)))
        use_thp = false;

    if (use_thp) {
        const Addr page = pageBase(gpa, PageSize::Page2M);
        hostMap(page, host_pool->allocFrame(PageSize::Page2M),
                PageSize::Page2M);
    } else {
        const Addr page = pageBase(gpa, PageSize::Page4K);
        hostMap(page, host_pool->allocFrame(PageSize::Page4K),
                PageSize::Page4K);
        host_blocks_with_4k.insert(gpa >> pageShift(PageSize::Page2M));
    }
}

void
NestedSystem::guestUnmap(Addr page, PageSize size)
{
    ++mutation_stamp;
    if (guest_radix) {
        guest_radix->unmap(page, size);
    } else if (guest_hpt) {
        NECPT_ASSERT(size == PageSize::Page4K);
        guest_hpt->unmap(page);
    } else {
        guest_ecpt->unmap(page, size);
    }
}

void
NestedSystem::hostUnmap(Addr page, PageSize size)
{
    ++mutation_stamp;
    if (host_radix) {
        host_radix->unmap(page, size);
    } else if (host_ecpt) {
        host_ecpt->unmap(page, size);
    } else if (host_flat) {
        host_flat->unmap(page, size);
    } else if (host_hpt) {
        NECPT_ASSERT(size == PageSize::Page4K);
        host_hpt->unmap(page);
    }
}

Translation
NestedSystem::hostPeek(Addr gpa) const
{
    if (host_radix)
        return host_radix->lookup(gpa);
    if (host_ecpt)
        return host_ecpt->lookup(gpa);
    if (host_flat)
        return host_flat->lookup(gpa);
    if (host_hpt)
        return host_hpt->lookup(gpa);
    return {};
}

NestedSystem::UnmapInfo
NestedSystem::guestUnmapPage(Addr gva)
{
    const Translation g = guestTranslate(gva);
    if (!g.valid)
        return {};
    const Addr page = pageBase(gva, g.size);
    guestUnmap(page, g.size);
    PhysMemPool &frames = cfg.virtualized ? *guest_pool : *host_pool;
    frames.freeFrame(g.pa, g.size);
    return {true, page, g};
}

NestedSystem::UnmapInfo
NestedSystem::balloonOut(Addr gva)
{
    UnmapInfo info = guestUnmapPage(gva);
    if (!info.ok || !cfg.virtualized)
        return info;
    // The balloon driver hands the freed guest-physical frame to the
    // hypervisor, which drops its backing. Release every host page
    // covering the frame; a host huge page may also back neighboring
    // gPAs — they simply refault on next use (no data to preserve in
    // this model).
    Addr gpa = info.old_guest.pa;
    const Addr end = gpa + pageBytes(info.old_guest.size);
    while (gpa < end) {
        const Translation h = hostPeek(gpa);
        if (!h.valid) {
            gpa = pageBase(gpa, PageSize::Page4K)
                + pageBytes(PageSize::Page4K);
            continue;
        }
        const Addr hpage = pageBase(gpa, h.size);
        hostUnmap(hpage, h.size);
        host_pool->freeFrame(h.pa, h.size);
        gpa = hpage + pageBytes(h.size);
    }
    return info;
}

bool
NestedSystem::migratePage(Addr gva)
{
    const Translation g = guestTranslate(gva);
    if (!g.valid)
        return false;
    if (!cfg.virtualized) {
        // Native: move the page to a fresh frame. Allocate before
        // freeing so the allocator cannot hand the same frame back.
        const Addr page = pageBase(gva, g.size);
        const Addr fresh = host_pool->allocFrame(g.size);
        guestUnmap(page, g.size);
        host_pool->freeFrame(g.pa, g.size);
        guestMap(page, fresh, g.size);
        return true;
    }
    // Virtualized: the hypervisor re-backs the guest-physical page —
    // gPA stays, hPA changes, and every cached {gVA, hPA} pair goes
    // stale (the HATRIC motivation case).
    const Addr gpa = g.apply(gva);
    const Translation h = hostPeek(gpa);
    if (!h.valid)
        return false;
    const Addr hpage = pageBase(gpa, h.size);
    const Addr fresh = host_pool->allocFrame(h.size);
    hostUnmap(hpage, h.size);
    host_pool->freeFrame(h.pa, h.size);
    hostMap(hpage, fresh, h.size);
    return true;
}

int
NestedSystem::thpDemote(Addr gva)
{
    const Translation g = guestTranslate(gva);
    if (!g.valid || g.size != PageSize::Page2M)
        return 0;
    const Addr page = pageBase(gva, PageSize::Page2M);
    PhysMemPool &frames = cfg.virtualized ? *guest_pool : *host_pool;
    // The region is fragmented now: future faults here must stay 4KB,
    // or a fresh 2MB mapping could overlap the split pieces.
    guest_block_thp[page >> 26] = false;
    // Copy-based split: the huge frame is released and each 4KB piece
    // re-lands in its own frame (keeps pool accounting size-exact).
    guestUnmap(page, PageSize::Page2M);
    frames.freeFrame(g.pa, PageSize::Page2M);
    const int pieces = static_cast<int>(pageBytes(PageSize::Page2M)
                                        / pageBytes(PageSize::Page4K));
    for (int i = 0; i < pieces; ++i) {
        const Addr va = page
            + static_cast<Addr>(i) * pageBytes(PageSize::Page4K);
        guestMap(va, frames.allocFrame(PageSize::Page4K),
                 PageSize::Page4K);
    }
    return pieces;
}

int
NestedSystem::thpPromote(Addr gva)
{
    const Addr region = pageBase(gva, PageSize::Page2M);
    const int pieces = static_cast<int>(pageBytes(PageSize::Page2M)
                                        / pageBytes(PageSize::Page4K));
    // Collapse only a uniformly 4KB-mapped region (khugepaged's
    // eligibility check).
    for (int i = 0; i < pieces; ++i) {
        const Addr va = region
            + static_cast<Addr>(i) * pageBytes(PageSize::Page4K);
        const Translation t = guestTranslate(va);
        if (!t.valid || t.size != PageSize::Page4K)
            return 0;
    }
    PhysMemPool &frames = cfg.virtualized ? *guest_pool : *host_pool;
    const Addr huge = frames.allocFrame(PageSize::Page2M);
    for (int i = 0; i < pieces; ++i) {
        const Addr va = region
            + static_cast<Addr>(i) * pageBytes(PageSize::Page4K);
        const Translation t = guestTranslate(va);
        guestUnmap(va, PageSize::Page4K);
        frames.freeFrame(t.pa, PageSize::Page4K);
    }
    guestMap(region, huge, PageSize::Page2M);
    return pieces;
}

bool
NestedSystem::writeProtectPage(Addr gva)
{
    const Translation g = guestTranslate(gva);
    if (!g.valid)
        return false;
    // Residency is untouched (the mapping stays valid), but the PTE
    // flag RMW is still a table mutation: bump conservatively so any
    // outstanding lookahead verdict re-verifies.
    ++mutation_stamp;
    if (guest_ecpt)
        return guest_ecpt->writeProtect(pageBase(gva, g.size), g.size);
    // Radix/HPT organizations store no flag word in this model: the
    // downgrade is the invalidation itself (the caller shoots the
    // cached translation down).
    return true;
}

bool
NestedSystem::isResident(Addr gva) const
{
    // Side-effect-free twin of ensureResident(): no faults, no
    // statistics, no tracer output — callable from the epoch barrier's
    // worker threads (the HPT paths use the uncounted peek; the other
    // organizations' lookups are stat-free already). True means
    // ensureResident(gva) would be a pure no-op under the current
    // mutationStamp().
    Translation g;
    if (guest_radix)
        g = guest_radix->lookup(gva);
    else if (guest_hpt)
        g = guest_hpt->peek(gva);
    else
        g = guest_ecpt->lookup(gva);
    if (!g.valid)
        return false;
    if (!cfg.virtualized)
        return true;
    const Addr gpa = g.apply(gva);
    Translation h;
    if (host_radix)
        h = host_radix->lookup(gpa);
    else if (host_ecpt)
        h = host_ecpt->lookup(gpa);
    else if (host_flat)
        h = host_flat->lookup(gpa);
    else
        h = host_hpt->peek(gpa);
    return h.valid;
}

bool
NestedSystem::ensureResident(Addr gva)
{
    bool faulted = false;
    Translation g = guestTranslate(gva);
    if (!g.valid) {
        const Vma *vma = vmaOf(gva);
        if (!vma)
            throw ConfigError(strfmt(
                "access to unmapped guest VA 0x%llx",
                static_cast<unsigned long long>(gva)));
        guestFaultIn(gva, *vma);
        g = guestTranslate(gva);
        NECPT_ASSERT(g.valid);
        faulted = true;
    }
    if (cfg.virtualized) {
        const Addr gpa = g.apply(gva);
        Translation h;
        if (host_radix)
            h = host_radix->lookup(gpa);
        else if (host_ecpt)
            h = host_ecpt->lookup(gpa);
        else if (host_flat)
            h = host_flat->lookup(gpa);
        else
            h = host_hpt->lookup(gpa);
        if (!h.valid) {
            hostFaultIn(gpa);
            faulted = true;
        }
    }
    return faulted;
}

void
NestedSystem::prefaultAll()
{
    // Walk VMAs by mapped-page stride so a 2MB THP mapping advances
    // the cursor by 2MB.
    for (std::size_t i = 0; i < vmas.size(); ++i) {
        const Vma vma = vmas[i];
        Addr va = vma.base;
        while (va < vma.base + vma.bytes) {
            ensureResident(va);
            const Translation g = guestTranslate(va);
            va += g.valid ? pageBytes(g.size)
                          : pageBytes(PageSize::Page4K);
        }
    }
    // Let background migration finish: measurement starts from a
    // quiesced steady state (in-flight resizes would otherwise double
    // every probe forever, since migration progresses on inserts).
    quiesce();
}

void
NestedSystem::quiesce()
{
    if (guest_ecpt)
        guest_ecpt->quiesce();
    if (host_ecpt)
        host_ecpt->quiesce();
    // Completing in-flight elastic resizes retires the old table
    // generations, which changes the probe-address sets hardware would
    // fetch — a layout mutation even though no mapping changed. Bump
    // the stamp so speculative probe precomputations (walk/spec_plan.hh)
    // computed against the pre-quiesce layout are discarded.
    ++mutation_stamp;
}

Translation
NestedSystem::guestTranslate(Addr gva) const
{
    if (guest_radix)
        return guest_radix->lookup(gva);
    if (guest_hpt)
        return guest_hpt->lookup(gva);
    return guest_ecpt->lookup(gva);
}

Translation
NestedSystem::hostTranslate(Addr gpa)
{
    if (!cfg.virtualized) {
        // Identity: gPA is final.
        return {pageBase(gpa, PageSize::Page4K), PageSize::Page4K, true};
    }
    auto host_lookup = [this](Addr addr) -> Translation {
        if (host_radix)
            return host_radix->lookup(addr);
        if (host_ecpt)
            return host_ecpt->lookup(addr);
        if (host_flat)
            return host_flat->lookup(addr);
        return host_hpt->lookup(addr);
    };
    Translation h = host_lookup(gpa);
    if (!h.valid) {
        hostFaultIn(gpa);
        h = host_lookup(gpa);
        NECPT_ASSERT(h.valid);
    }
    return h;
}

Translation
NestedSystem::peekFullTranslate(Addr gva) const
{
    // Strictly side-effect free (see the header contract): guest
    // lookups through the HPT use the uncounted peek, the host side
    // goes through hostPeek's peek chain, and nothing faults in. The
    // composition mirrors fullTranslate() exactly, so under an
    // unchanged mutationStamp() a valid result here is byte-identical
    // to what fullTranslate() would produce (which, with both lookups
    // hitting, is itself mutation-free).
    Translation g;
    if (guest_radix)
        g = guest_radix->lookup(gva);
    else if (guest_hpt)
        g = guest_hpt->peek(gva);
    else
        g = guest_ecpt->lookup(gva);
    if (!g.valid)
        return {};
    if (!cfg.virtualized)
        return g;
    const Addr gpa = g.apply(gva);
    Translation h;
    if (host_hpt)
        h = host_hpt->peek(gpa);
    else
        h = hostPeek(gpa);
    if (!h.valid)
        return {};
    const PageSize eff = static_cast<int>(g.size) < static_cast<int>(h.size)
                             ? g.size : h.size;
    const Addr hpa = h.apply(gpa);
    return {hpa - pageOffset(gva, eff), eff, true};
}

Translation
NestedSystem::fullTranslate(Addr gva)
{
    const Translation g = guestTranslate(gva);
    if (!g.valid)
        return {};
    if (!cfg.virtualized)
        return g;
    const Addr gpa = g.apply(gva);
    const Translation h = hostTranslate(gpa);
    if (!h.valid)
        return {};
    const PageSize eff = static_cast<int>(g.size) < static_cast<int>(h.size)
                             ? g.size : h.size;
    const Addr hpa = h.apply(gpa);
    return {hpa - pageOffset(gva, eff), eff, true};
}

std::uint64_t
NestedSystem::guestStructureBytes() const
{
    if (guest_radix)
        return guest_radix->structureBytes();
    if (guest_hpt)
        return guest_hpt->structureBytes();
    return guest_ecpt->structureBytes();
}

std::uint64_t
NestedSystem::hostStructureBytes() const
{
    if (host_radix)
        return host_radix->structureBytes();
    if (host_ecpt)
        return host_ecpt->structureBytes();
    if (host_flat)
        return host_flat->structureBytes();
    if (host_hpt)
        return host_hpt->structureBytes();
    return 0;
}

std::uint64_t
NestedSystem::guestPteBytes() const
{
    if (guest_radix)
        return guest_radix->mappingCount() * pte_bytes;
    if (guest_hpt)
        return guest_hpt->occupancy() * pte_bytes;
    std::uint64_t count = 0;
    for (auto size : all_page_sizes)
        count += guest_ecpt->mappingCount(size);
    return count * pte_bytes;
}

std::uint64_t
NestedSystem::hostPteBytes() const
{
    if (host_radix)
        return host_radix->mappingCount() * pte_bytes;
    if (host_flat)
        return host_flat->mappingCount() * pte_bytes;
    if (host_hpt)
        return host_hpt->occupancy() * pte_bytes;
    if (!host_ecpt)
        return 0;
    std::uint64_t count = 0;
    for (auto size : all_page_sizes)
        count += host_ecpt->mappingCount(size);
    return count * pte_bytes;
}

} // namespace necpt
