/**
 * @file
 * Physical-memory pool: the frame and region allocator used by the
 * guest OS (for guest-physical space) and the hypervisor (for
 * host-physical space).
 *
 * Frames of any supported page size are handed out aligned; freed
 * frames and regions are recycled from size-indexed free lists. Table
 * regions (ECPT ways, CWTs, radix nodes, flat arrays) are carved
 * contiguously — matching how the real OS reserves them.
 *
 * Exhaustion (real or injected via a FaultPlan) throws
 * ResourceExhausted naming the owning pool; callers up the stack
 * either absorb it (elastic resize retries) or let the sweep engine
 * record it as a typed job failure.
 */

#ifndef NECPT_OS_PHYS_POOL_HH
#define NECPT_OS_PHYS_POOL_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "pt/pte.hh"

namespace necpt
{

class FaultPlan;

/**
 * A bump-plus-freelist allocator over one physical address space.
 */
class PhysMemPool : public RegionAllocator
{
  public:
    /**
     * @param base lowest address of the pool
     * @param capacity_bytes pool size (the Table-2 machine has 80GB)
     * @param pool_name owning-structure name used in error messages
     */
    PhysMemPool(Addr base, std::uint64_t capacity_bytes,
                std::string pool_name = "phys");

    /** Allocate one naturally-aligned frame of @p size. */
    Addr allocFrame(PageSize size);

    /** Return a frame to the pool. */
    void freeFrame(Addr frame, PageSize size);

    /** RegionAllocator: contiguous, 4KB-aligned region of @p bytes. */
    Addr allocRegion(std::uint64_t bytes) override;
    void freeRegion(Addr region_base, std::uint64_t bytes) override;

    /// @name Occupancy
    /// @{
    std::uint64_t usedBytes() const { return used; }
    std::uint64_t capacityBytes() const { return capacity; }
    Addr baseAddr() const { return base_; }
    double
    fillFraction() const
    {
        return capacity ? static_cast<double>(used) / capacity : 1.0;
    }
    /// @}

    const std::string &name() const { return name_; }

    /** Arm (or disarm, with nullptr) injected allocation failures.
     *  The plan must outlive the pool's use of it. */
    void setFaultPlan(FaultPlan *plan) { fault_plan = plan; }

  private:
    Addr bumpAlloc(std::uint64_t bytes, std::uint64_t align);
    Addr bumpAllocRegion(std::uint64_t bytes, std::uint64_t align);
    void maybeInjectFailure(const char *what, std::uint64_t bytes);

    Addr base_;
    std::uint64_t capacity;
    Addr bump;
    /**
     * Table regions are carved from a separate high zone (top eighth
     * of the pool) so data frames and page-table structures never
     * share a 1GB region — keeping data regions size-uniform, which
     * the CWT descriptors exploit.
     */
    Addr region_bump;
    std::uint64_t used = 0;
    std::string name_;
    FaultPlan *fault_plan = nullptr;

    /** Freed frames per size class. */
    std::vector<Addr> free_frames[num_page_sizes];
    /** Freed regions keyed by exact byte size (resizes are 2^k). */
    std::map<std::uint64_t, std::vector<Addr>> free_regions;
};

/**
 * Registry of guest-physical ranges that hold page-table structures.
 *
 * The hypervisor consults it to honor the Section-4.3 contract: page
 * tables are always backed by 4KB host pages, so Step-1 host probes
 * only ever need the PTE-hECPT.
 */
class PtRegionRegistry
{
  public:
    void add(Addr pt_base, std::uint64_t bytes);
    void remove(Addr pt_base, std::uint64_t bytes);
    bool contains(Addr addr) const;

  private:
    std::map<Addr, std::uint64_t> regions; //!< base -> length
};

/**
 * RegionAllocator adapter that registers every allocation as a
 * page-table region. Used for guest ECPT/CWT space: elastic cuckoo
 * ways and CWTs are genuinely large contiguous reservations, so they
 * come from the pool's dedicated region zone.
 */
class PtRegionAllocator : public RegionAllocator
{
  public:
    PtRegionAllocator(PhysMemPool &pool_ref, PtRegionRegistry &registry_ref)
        : pool(pool_ref), registry(registry_ref)
    {}

    Addr
    allocRegion(std::uint64_t bytes) override
    {
        const Addr pt_base = pool.allocRegion(bytes);
        registry.add(pt_base, bytes);
        return pt_base;
    }

    void
    freeRegion(Addr pt_base, std::uint64_t bytes) override
    {
        registry.remove(pt_base, bytes);
        pool.freeRegion(pt_base, bytes);
    }

  private:
    PhysMemPool &pool;
    PtRegionRegistry &registry;
};

/**
 * RegionAllocator adapter for *radix* page-table nodes: real kernels
 * allocate the 4KB nodes from the general page allocator, scattered
 * among data frames (they get no contiguity guarantee). Nodes are
 * still registered so the hypervisor backs them with 4KB pages.
 *
 * Multi-page requests are assembled from individual 4KB frames when
 * the frame allocator happens to hand them out contiguously (the
 * common bump-allocation case); the moment a frame breaks the run —
 * freelist recycling, or an allocation failure partway through — the
 * frames taken so far are returned to the pool and the request falls
 * back to one contiguous region reservation. Nothing leaks on either
 * path.
 */
class ScatteredPtAllocator : public RegionAllocator
{
  public:
    ScatteredPtAllocator(PhysMemPool &pool_ref,
                         PtRegionRegistry &registry_ref)
        : pool(pool_ref), registry(registry_ref)
    {}

    Addr allocRegion(std::uint64_t bytes) override;
    void freeRegion(Addr base, std::uint64_t bytes) override;

    /** Regions currently assembled from individual 4KB frames (rather
     *  than one pool region); exposed for tests. */
    std::size_t frameBackedRegions() const { return from_frames.size(); }

  private:
    PhysMemPool &pool;
    PtRegionRegistry &registry;
    /** base -> byte length of regions built from per-4KB frames, so
     *  freeRegion returns them the way they were taken. */
    std::map<Addr, std::uint64_t> from_frames;
};

} // namespace necpt

#endif // NECPT_OS_PHYS_POOL_HH
