#include "os/phys_pool.hh"

#include "common/bitops.hh"
#include "common/log.hh"

namespace necpt
{

PhysMemPool::PhysMemPool(Addr base, std::uint64_t capacity_bytes)
    : base_(base), capacity(capacity_bytes), bump(base)
{
    NECPT_ASSERT(pageOffset(base, PageSize::Page1G) == 0);
    region_bump = base + alignDown(capacity_bytes * 7 / 8,
                                   pageBytes(PageSize::Page1G));
}

Addr
PhysMemPool::bumpAlloc(std::uint64_t bytes, std::uint64_t align)
{
    const Addr aligned = alignUp(bump, align);
    if (aligned + bytes > base_ + capacity * 7 / 8)
        fatal("physical pool frame zone exhausted "
              "(%llu of %llu bytes used)",
              static_cast<unsigned long long>(used),
              static_cast<unsigned long long>(capacity));
    bump = aligned + bytes;
    return aligned;
}

Addr
PhysMemPool::bumpAllocRegion(std::uint64_t bytes, std::uint64_t align)
{
    const Addr aligned = alignUp(region_bump, align);
    if (aligned + bytes > base_ + capacity)
        fatal("physical pool region zone exhausted "
              "(%llu of %llu bytes used)",
              static_cast<unsigned long long>(used),
              static_cast<unsigned long long>(capacity));
    region_bump = aligned + bytes;
    return aligned;
}

Addr
PhysMemPool::allocFrame(PageSize size)
{
    auto &list = free_frames[static_cast<int>(size)];
    const auto bytes = pageBytes(size);
    used += bytes;
    if (!list.empty()) {
        const Addr frame = list.back();
        list.pop_back();
        return frame;
    }
    return bumpAlloc(bytes, bytes);
}

void
PhysMemPool::freeFrame(Addr frame, PageSize size)
{
    NECPT_ASSERT(pageOffset(frame, size) == 0);
    used -= pageBytes(size);
    free_frames[static_cast<int>(size)].push_back(frame);
}

Addr
PhysMemPool::allocRegion(std::uint64_t bytes)
{
    bytes = alignUp(bytes, 4096);
    auto it = free_regions.find(bytes);
    used += bytes;
    if (it != free_regions.end() && !it->second.empty()) {
        const Addr region = it->second.back();
        it->second.pop_back();
        return region;
    }
    // Natural alignment (capped at 2MB) keeps a table region within as
    // few CWT-entry windows as possible — the locality that makes the
    // tiny Step-1 hCWC effective (Section 4.2).
    std::uint64_t align = 4096;
    while (align < bytes && align < (2ULL << 20))
        align <<= 1;
    return bumpAllocRegion(bytes, align);
}

void
PhysMemPool::freeRegion(Addr region_base, std::uint64_t bytes)
{
    bytes = alignUp(bytes, 4096);
    used -= bytes;
    free_regions[bytes].push_back(region_base);
}

void
PtRegionRegistry::add(Addr pt_base, std::uint64_t bytes)
{
    regions[pt_base] = bytes;
}

void
PtRegionRegistry::remove(Addr pt_base, std::uint64_t bytes)
{
    (void)bytes;
    regions.erase(pt_base);
}

bool
PtRegionRegistry::contains(Addr addr) const
{
    auto it = regions.upper_bound(addr);
    if (it == regions.begin())
        return false;
    --it;
    return addr < it->first + it->second;
}

} // namespace necpt
