#include "os/phys_pool.hh"

#include <utility>

#include "common/bitops.hh"
#include "common/error.hh"
#include "common/fault.hh"
#include "common/log.hh"

namespace necpt
{

PhysMemPool::PhysMemPool(Addr base, std::uint64_t capacity_bytes,
                         std::string pool_name)
    : base_(base), capacity(capacity_bytes), bump(base),
      name_(std::move(pool_name))
{
    NECPT_ASSERT(pageOffset(base, PageSize::Page1G) == 0);
    region_bump = base + alignDown(capacity_bytes * 7 / 8,
                                   pageBytes(PageSize::Page1G));
}

void
PhysMemPool::maybeInjectFailure(const char *what, std::uint64_t bytes)
{
    if (fault_plan && fault_plan->failPoolAlloc(fillFraction()))
        throw ResourceExhausted(strfmt(
            "pool '%s': injected %s failure for %llu bytes at fill "
            "%.3f (%llu of %llu bytes used)", name_.c_str(), what,
            (unsigned long long)bytes, fillFraction(),
            (unsigned long long)used, (unsigned long long)capacity));
}

Addr
PhysMemPool::bumpAlloc(std::uint64_t bytes, std::uint64_t align)
{
    const Addr aligned = alignUp(bump, align);
    if (aligned + bytes > base_ + capacity * 7 / 8)
        throw ResourceExhausted(strfmt(
            "pool '%s': frame zone exhausted allocating %llu bytes "
            "(%llu of %llu bytes used)", name_.c_str(),
            (unsigned long long)bytes, (unsigned long long)used,
            (unsigned long long)capacity));
    bump = aligned + bytes;
    return aligned;
}

Addr
PhysMemPool::bumpAllocRegion(std::uint64_t bytes, std::uint64_t align)
{
    const Addr aligned = alignUp(region_bump, align);
    if (aligned + bytes > base_ + capacity)
        throw ResourceExhausted(strfmt(
            "pool '%s': region zone exhausted allocating %llu bytes "
            "(%llu of %llu bytes used)", name_.c_str(),
            (unsigned long long)bytes, (unsigned long long)used,
            (unsigned long long)capacity));
    region_bump = aligned + bytes;
    return aligned;
}

Addr
PhysMemPool::allocFrame(PageSize size)
{
    const auto bytes = pageBytes(size);
    maybeInjectFailure("frame allocation", bytes);
    auto &list = free_frames[static_cast<int>(size)];
    if (!list.empty()) {
        const Addr frame = list.back();
        list.pop_back();
        used += bytes;
        return frame;
    }
    // Account only after the bump succeeds: a ResourceExhausted from
    // a full zone must leave usedBytes() consistent, since the sweep
    // engine may retry the job against a fresh machine but tests
    // assert accounting on the surviving pool.
    const Addr frame = bumpAlloc(bytes, bytes);
    used += bytes;
    return frame;
}

void
PhysMemPool::freeFrame(Addr frame, PageSize size)
{
    NECPT_ASSERT(pageOffset(frame, size) == 0);
    used -= pageBytes(size);
    free_frames[static_cast<int>(size)].push_back(frame);
}

Addr
PhysMemPool::allocRegion(std::uint64_t bytes)
{
    bytes = alignUp(bytes, 4096);
    maybeInjectFailure("region allocation", bytes);
    auto it = free_regions.find(bytes);
    if (it != free_regions.end() && !it->second.empty()) {
        const Addr region = it->second.back();
        it->second.pop_back();
        used += bytes;
        return region;
    }
    // Natural alignment (capped at 2MB) keeps a table region within as
    // few CWT-entry windows as possible — the locality that makes the
    // tiny Step-1 hCWC effective (Section 4.2).
    std::uint64_t align = 4096;
    while (align < bytes && align < (2ULL << 20))
        align <<= 1;
    const Addr region = bumpAllocRegion(bytes, align);
    used += bytes;
    return region;
}

void
PhysMemPool::freeRegion(Addr region_base, std::uint64_t bytes)
{
    bytes = alignUp(bytes, 4096);
    used -= bytes;
    free_regions[bytes].push_back(region_base);
}

void
PtRegionRegistry::add(Addr pt_base, std::uint64_t bytes)
{
    regions[pt_base] = bytes;
}

void
PtRegionRegistry::remove(Addr pt_base, std::uint64_t bytes)
{
    (void)bytes;
    regions.erase(pt_base);
}

bool
PtRegionRegistry::contains(Addr addr) const
{
    auto it = regions.upper_bound(addr);
    if (it == regions.begin())
        return false;
    --it;
    return addr < it->first + it->second;
}

Addr
ScatteredPtAllocator::allocRegion(std::uint64_t bytes)
{
    if (bytes <= 4096) {
        const Addr base = pool.allocFrame(PageSize::Page4K);
        registry.add(base, bytes);
        return base;
    }

    // Multi-page request: try to assemble it from successive 4KB
    // frames. The bump allocator usually hands these out contiguously,
    // but that is NOT guaranteed — freelist recycling returns
    // arbitrary frames — and any allocFrame call may throw. Both ways
    // out of the loop must return every frame already taken.
    const std::uint64_t frames =
        alignUp(bytes, 4096) / 4096;
    std::vector<Addr> taken;
    taken.reserve(frames);
    bool contiguous = true;
    try {
        for (std::uint64_t i = 0; i < frames; ++i) {
            const Addr frame = pool.allocFrame(PageSize::Page4K);
            if (!taken.empty() && frame != taken.back() + 4096) {
                pool.freeFrame(frame, PageSize::Page4K);
                contiguous = false;
                break;
            }
            taken.push_back(frame);
        }
    } catch (const ResourceExhausted &) {
        for (const Addr frame : taken)
            pool.freeFrame(frame, PageSize::Page4K);
        throw;
    }

    if (contiguous) {
        const Addr base = taken.front();
        from_frames[base] = frames * 4096;
        registry.add(base, bytes);
        return base;
    }

    // A frame broke the run: give the partial run back and take one
    // contiguous region reservation instead.
    for (const Addr frame : taken)
        pool.freeFrame(frame, PageSize::Page4K);
    const Addr base = pool.allocRegion(bytes);
    registry.add(base, bytes);
    return base;
}

void
ScatteredPtAllocator::freeRegion(Addr base, std::uint64_t bytes)
{
    registry.remove(base, bytes);
    if (bytes <= 4096) {
        pool.freeFrame(base, PageSize::Page4K);
        return;
    }
    const auto it = from_frames.find(base);
    if (it != from_frames.end()) {
        for (Addr frame = base; frame < base + it->second;
             frame += 4096)
            pool.freeFrame(frame, PageSize::Page4K);
        from_frames.erase(it);
        return;
    }
    pool.freeRegion(base, bytes);
}

} // namespace necpt
