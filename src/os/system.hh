/**
 * @file
 * The software side of the machine: guest OS + hypervisor, demand
 * paging, THP policy, and page-table construction for every evaluated
 * organization (Table 1).
 *
 * A NestedSystem owns:
 *  - a guest-physical pool and a host-physical pool,
 *  - the guest page table (radix or ECPT) built in guest-physical space,
 *  - the host page table (radix, ECPT, or flat) in host-physical space,
 *  - the registry of guest-physical ranges holding page tables (which
 *    the hypervisor always backs with 4KB pages — the Section 4.3
 *    contract that lets Step 1 probe only the PTE-hECPT).
 *
 * In native (non-virtualized) configurations the guest page table is
 * built directly in host-physical space and guest translations are
 * final.
 */

#ifndef NECPT_OS_SYSTEM_HH
#define NECPT_OS_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hh"
#include "os/phys_pool.hh"
#include "pt/ecpt.hh"
#include "pt/flat.hh"
#include "pt/hashed.hh"
#include "pt/radix.hh"

namespace necpt
{

/** Page-table organization selector. */
enum class PtKind : std::uint8_t
{
    Radix,
    Ecpt,
    Flat, //!< host-side only (flat nested baseline, Section 9.6)
    Hpt,  //!< classic single hashed page table (Section 2.2; 4KB only)
};

/** Full system configuration. */
struct SystemConfig
{
    bool virtualized = true;
    PtKind guest_kind = PtKind::Ecpt;
    PtKind host_kind = PtKind::Ecpt;

    /** Transparent Huge Pages (2MB), guest and host sides. */
    bool guest_thp = false;
    bool host_thp = true;
    /**
     * Fraction of 2MB blocks that can actually be backed by a huge
     * page when THP is on — emulating allocator fragmentation
     * (Section 10 notes even 2MB pages are often hard to find).
     */
    double guest_thp_coverage = 0.90;
    double host_thp_coverage = 0.95;

    std::uint64_t guest_phys_bytes = 6ULL << 30;
    std::uint64_t host_phys_bytes = 8ULL << 30;

    /**
     * Radix tree depth: 4 (x86-64) or 5 (LA57/Sunny Cove). With 5
     * levels a nested radix walk grows to up to 35 sequential
     * references (Section 1) while ECPT walks are unaffected.
     */
    int radix_levels = 4;

    EcptConfig guest_ecpt{};
    EcptConfig host_ecpt{};

    Addr mmap_base = 0x10'0000'0000ULL;
    std::uint64_t seed = 0xA11CE;

    /**
     * Optional fault-injection plan, threaded down to the physical
     * pools and ECPT cuckoo tables. Not owned; must outlive the
     * system (the Simulator owns it).
     */
    FaultPlan *fault_plan = nullptr;
};

/**
 * Guest OS + hypervisor + page tables for one VM (or native machine).
 */
class NestedSystem
{
  public:
    explicit NestedSystem(const SystemConfig &config);
    ~NestedSystem();

    NestedSystem(const NestedSystem &) = delete;
    NestedSystem &operator=(const NestedSystem &) = delete;

    /// @name Guest virtual address space
    /// @{
    /** Reserve a VMA of @p bytes; 2MB-aligned when THP-eligible. */
    Addr mmapRegion(std::uint64_t bytes, bool thp_eligible = true);

    /**
     * Reserve a hugetlbfs-style VMA explicitly backed by 1GB pages
     * (1GB-aligned and -granular). Exercises the PUD-level ECPT and
     * the 1GB TLB class end to end.
     */
    Addr mmapRegion1G(std::uint64_t bytes);
    /// @}

    /// @name Demand paging (functional page faults)
    /// @{
    /**
     * Make @p gva resident: installs the guest mapping (THP policy
     * decides 4KB vs 2MB) and the host backing of the touched gPA.
     * @return true when a page fault occurred.
     */
    bool ensureResident(Addr gva);

    /**
     * Would ensureResident(@p gva) be a pure no-op right now? Strictly
     * side-effect free — no faults, no statistics (HPT lookups go
     * through the uncounted peek), no tracer output — so the
     * thread-sharded simulator's lookahead workers may call it
     * concurrently with each other (never with a mutation: the
     * coordinator, the only mutator, is parked during rendezvous
     * windows). A true verdict is valid while mutationStamp() is
     * unchanged.
     */
    bool isResident(Addr gva) const;

    /**
     * Monotonic page-table mutation counter: bumped by every map,
     * unmap, and permission change on either level (the guestMap /
     * guestUnmap / hostMap / hostUnmap / writeProtectPage funnels, so
     * churn, ballooning, migration, THP promotion/demotion, and
     * demand faults all count), plus quiesce() — retiring old table
     * generations changes probe-address layouts without touching any
     * mapping. Lookahead residency verdicts and speculative walk plans
     * carry the stamp they were computed under; consumers seeing a
     * newer stamp must re-verify.
     */
    std::uint64_t mutationStamp() const { return mutation_stamp; }

    /**
     * Fault in every page of every VMA — the steady state the paper
     * measures in (applications materialize their datasets during
     * initialization; Section 8 measures after warm-up).
     */
    void prefaultAll();

    /**
     * Complete any in-flight elastic resizes (OS background migration
     * finishing during idle time). Called at measurement boundaries.
     */
    void quiesce();
    /// @}

    /// @name Translation churn (coherence subsystem issue side)
    /// The OS/hypervisor mutations behind TLB shootdowns: ballooning,
    /// NUMA migration of the backing, THP promotion/demotion, and
    /// permission downgrades. Each returns what changed so the caller
    /// (src/coherence) can queue the matching invalidations; none of
    /// them touches any MMU cache itself.
    /// @{
    /** Outcome of a guest-side unmap. */
    struct UnmapInfo
    {
        bool ok = false;
        Addr page = invalid_addr; //!< guest-virtual page base
        Translation old_guest;    //!< mapping that was removed
    };

    /**
     * Balloon inflate: remove the guest mapping of the page containing
     * @p gva and return its guest-physical frame to the pool (and, when
     * virtualized, release the host backing of that frame). The next
     * access refaults via ensureResident — the deflate path.
     */
    UnmapInfo balloonOut(Addr gva);

    /**
     * Migrate the backing of the page containing @p gva to a fresh
     * frame (NUMA rebalance): host-level re-backing when virtualized
     * (gPA unchanged, hPA changes), a guest-level remap otherwise. The
     * translation cached in TLBs goes stale either way.
     */
    bool migratePage(Addr gva);

    /** Split a 2MB guest mapping into 512 4KB mappings (THP demotion
     *  via copy, as khugepaged's inverse). @return pages created. */
    int thpDemote(Addr gva);

    /** Collapse 512 resident 4KB guest pages into one 2MB mapping
     *  (khugepaged). @return 4KB pages absorbed (0 when the 2MB region
     *  containing @p gva is not uniformly 4KB-mapped). */
    int thpPromote(Addr gva);

    /** Permission downgrade: write-protect the guest page containing
     *  @p gva. In-place PTE RMW where the organization stores flags
     *  (ECPT); for the others the downgrade is modeled as
     *  invalidate-only. @return true when the page was mapped. */
    bool writeProtectPage(Addr gva);

    /** VMA introspection for churn victim picking (deterministic). */
    std::size_t vmaCount() const { return vmas.size(); }
    std::pair<Addr, std::uint64_t>
    vmaRange(std::size_t i) const
    {
        return {vmas[i].base, vmas[i].bytes};
    }
    /// @}

    /// @name Functional translations (used by walkers as ground truth)
    /// @{
    /** gVA -> gPA (final in native mode). */
    Translation guestTranslate(Addr gva) const;

    /**
     * gPA -> hPA. Faults the backing in on first use (page-table pages
     * are touched by walks before any demand access reaches them).
     */
    Translation hostTranslate(Addr gpa);

    /**
     * gVA all the way to hPA with the *effective* page size
     * min(guest, host) — the granularity a nested TLB entry covers.
     */
    Translation fullTranslate(Addr gva);

    /**
     * Side-effect-free twin of fullTranslate(): never faults backing
     * in (an unmapped host page yields an invalid result instead), no
     * statistics (HPT paths go through the uncounted peek), no tracer
     * output. Callable from the epoch barrier's worker threads; while
     * mutationStamp() is unchanged, a *valid* result is exactly what
     * fullTranslate() would return.
     */
    Translation peekFullTranslate(Addr gva) const;
    /// @}

    /// @name Structure access for walkers
    /// @{
    bool virtualized() const { return cfg.virtualized; }
    RadixPageTable *guestRadix() { return guest_radix.get(); }
    EcptPageTable *guestEcpt() { return guest_ecpt.get(); }
    RadixPageTable *hostRadix() { return host_radix.get(); }
    EcptPageTable *hostEcpt() { return host_ecpt.get(); }
    FlatPageTable *hostFlat() { return host_flat.get(); }
    HashedPageTable *guestHpt() { return guest_hpt.get(); }
    HashedPageTable *hostHpt() { return host_hpt.get(); }
    const EcptPageTable *guestEcpt() const { return guest_ecpt.get(); }
    const EcptPageTable *hostEcpt() const { return host_ecpt.get(); }

    /** Is @p gpa inside a guest page-table structure? (Section 4.3) */
    bool isPtRegion(Addr gpa) const { return pt_registry.contains(gpa); }
    /// @}

    /**
     * Cross-structure consistency audit: ECPT/CWT coherence on both
     * sides plus pool accounting. Run after injected faults to prove
     * the design absorbed them; throws InvariantViolation otherwise.
     */
    void auditInvariants() const;

    /// @name Accounting (Section 9.5)
    /// @{
    std::uint64_t guestStructureBytes() const;
    std::uint64_t hostStructureBytes() const;
    std::uint64_t guestPteBytes() const;  //!< 8B x mappings
    std::uint64_t hostPteBytes() const;
    std::uint64_t guestFaults() const { return guest_faults; }
    std::uint64_t hostFaults() const { return host_faults; }
    PhysMemPool &hostPool() { return *host_pool; }
    PhysMemPool &guestPool() { return *guest_pool; }
    /// @}

    const SystemConfig &config() const { return cfg; }

    /**
     * Adjust the guest THP coverage before any page is faulted in —
     * coverage is application-dependent (Section 9.1 / Figure 14).
     */
    void setGuestThpCoverage(double coverage)
    {
        cfg.guest_thp_coverage = coverage;
    }

  private:
    struct Vma
    {
        Addr base;
        std::uint64_t bytes;
        bool thp_eligible;
        bool use_1g = false;
    };

    const Vma *vmaOf(Addr gva) const;

    /** Deterministic per-2MB-block THP feasibility draw. */
    bool blockCovered(std::uint64_t block, double coverage,
                      std::uint64_t salt) const;

    /** Install a guest mapping for the page containing @p gva. */
    void guestFaultIn(Addr gva, const Vma &vma);

    /** Install host backing for the page containing @p gpa. */
    void hostFaultIn(Addr gpa);

    void guestMap(Addr gva, Addr gpa, PageSize size);
    void hostMap(Addr gpa, Addr hpa, PageSize size);

    /** Remove the guest mapping of @p page (base-aligned) at @p size. */
    void guestUnmap(Addr page, PageSize size);

    /** Remove the host mapping of @p page (base-aligned) at @p size. */
    void hostUnmap(Addr page, PageSize size);

    /** Host mapping of @p gpa without faulting it in. */
    Translation hostPeek(Addr gpa) const;

    /** Unmap the guest page containing @p gva and free its frame. */
    UnmapInfo guestUnmapPage(Addr gva);

    SystemConfig cfg;

    std::unique_ptr<PhysMemPool> host_pool;
    std::unique_ptr<PhysMemPool> guest_pool;
    PtRegionRegistry pt_registry;
    PtRegionRegistry host_pt_registry;
    std::unique_ptr<PtRegionAllocator> guest_pt_alloc;
    std::unique_ptr<ScatteredPtAllocator> guest_node_alloc;
    std::unique_ptr<ScatteredPtAllocator> host_node_alloc;

    std::unique_ptr<RadixPageTable> guest_radix;
    std::unique_ptr<EcptPageTable> guest_ecpt;
    std::unique_ptr<HashedPageTable> guest_hpt;
    std::unique_ptr<RadixPageTable> host_radix;
    std::unique_ptr<EcptPageTable> host_ecpt;
    std::unique_ptr<FlatPageTable> host_flat;
    std::unique_ptr<HashedPageTable> host_hpt;

    std::vector<Vma> vmas;
    Addr mmap_cursor;

    /** First-touch THP decision per guest-virtual 1GB region. */
    std::unordered_map<std::uint64_t, bool> guest_block_thp;
    /** First-touch THP decision per guest-physical 1GB region. */
    std::unordered_map<std::uint64_t, bool> host_block_thp;
    /** gPA 2MB blocks already holding a 4KB mapping (e.g. a scattered
     *  page-table node): a huge host mapping would overlap them. */
    std::unordered_set<std::uint64_t> host_blocks_with_4k;

    std::uint64_t guest_faults = 0;
    std::uint64_t host_faults = 0;
    std::uint64_t mutation_stamp = 0;
};

} // namespace necpt

#endif // NECPT_OS_SYSTEM_HH
