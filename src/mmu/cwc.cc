#include "mmu/cwc.hh"

namespace necpt
{

CuckooWalkCache::CuckooWalkCache(
    const std::array<std::size_t, num_page_sizes> &capacity,
    Cycles latency_cycles)
    : latency_(latency_cycles)
{
    for (int s = 0; s < num_page_sizes; ++s)
        if (capacity[s] > 0)
            levels[s] = std::make_unique<Level>(capacity[s]);
}

std::optional<std::uint64_t>
CuckooWalkCache::lookup(PageSize level, std::uint64_t entry_key)
{
    Level *cache = levels[static_cast<int>(level)].get();
    if (!cache) {
        stats_[static_cast<int>(level)].miss();
        return std::nullopt;
    }
    if (std::uint64_t *payload = cache->find(entry_key)) {
        stats_[static_cast<int>(level)].hit();
        return *payload;
    }
    stats_[static_cast<int>(level)].miss();
    return std::nullopt;
}

void
CuckooWalkCache::fill(PageSize level, std::uint64_t entry_key,
                      std::uint64_t payload)
{
    if (Level *cache = levels[static_cast<int>(level)].get())
        cache->insert(entry_key, payload);
}

void
CuckooWalkCache::invalidate(PageSize level, std::uint64_t entry_key)
{
    if (Level *cache = levels[static_cast<int>(level)].get())
        cache->invalidate(entry_key);
}

std::size_t
CuckooWalkCache::invalidateRange(Addr base, std::uint64_t bytes)
{
    std::size_t count = 0;
    const Addr last = base + (bytes ? bytes - 1 : 0);
    for (int s = 0; s < num_page_sizes; ++s) {
        Level *cache = levels[s].get();
        if (!cache)
            continue;
        // Entry keys are va >> (section shift + 11): one key per
        // 2048-section granule (CuckooWalkTable::entryKey).
        const int shift = sectionShiftFor(all_page_sizes[s]) + 11;
        const std::uint64_t lo = base >> shift;
        const std::uint64_t hi = last >> shift;
        count += cache->invalidateIf(
            [lo, hi](std::uint64_t key, std::uint64_t) {
                return key >= lo && key <= hi;
            });
    }
    return count;
}

void
CuckooWalkCache::flush()
{
    for (auto &level : levels)
        if (level)
            level->flush();
}

void
CuckooWalkCache::resetStats()
{
    for (int s = 0; s < num_page_sizes; ++s) {
        stats_[s].reset();
        if (levels[s])
            levels[s]->resetStats();
    }
}

} // namespace necpt
