/**
 * @file
 * MMU caches that accelerate radix and nested walks:
 *
 *  - PageWalkCache (PWC): caches intermediate radix entries (L4/L3/L2 in
 *    native walks; the guest levels of nested walks). Keyed per level by
 *    the VA prefix that selects the entry (Section 2.1).
 *  - NestedPwc (NPWC): same structure for the host levels of a nested
 *    radix walk, keyed by gPA prefixes.
 *  - NestedTlb (NTLB): caches the gPA -> hPA translation of guest
 *    page-table pages, letting a nested radix walk skip four host levels
 *    per guest level (Figure 2 dashed lines).
 *  - ShortcutTranslationCache (STC): the paper's new structure
 *    (Section 4.1) — caches the gPA -> hPA translation of guest Cuckoo
 *    Walk Table entries so gCWC refills need no host walk.
 *
 * Like the CWCs, these structures refill off the walk's critical
 * path: the walker batches the backing page-table lines into a
 * background memory transaction that contends for MSHRs and DRAM
 * banks alongside foreground probe traffic, while the cached entries
 * themselves are installed at lookup-miss time.
 */

#ifndef NECPT_MMU_WALK_CACHES_HH
#define NECPT_MMU_WALK_CACHES_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitops.hh"
#include "mmu/assoc_cache.hh"

namespace necpt
{

/**
 * Per-level cache of radix page-table entries.
 */
class PageWalkCache
{
  public:
    /**
     * @param min_level deepest cached level (native PWCs stop at 2
     *        because L1/PTE entries are not cached, Section 2.1;
     *        nested-host PWCs cache down to 1)
     * @param max_level shallowest cached level (4)
     * @param entries_per_level fully-associative entries per level
     * @param latency_cycles round-trip latency (Table 2: 4 cycles)
     */
    PageWalkCache(int min_level, int max_level,
                  std::size_t entries_per_level,
                  Cycles latency_cycles = 4)
        : min_lvl(min_level), max_lvl(max_level), latency_(latency_cycles)
    {
        for (int l = min_lvl; l <= max_lvl; ++l)
            caches.push_back(std::make_unique<Level>(entries_per_level));
    }

    /** Is the level-@p level entry for @p va cached? */
    bool
    lookup(int level, Addr va)
    {
        if (level < min_lvl || level > max_lvl)
            return false;
        return caches[level - min_lvl]->find(prefix(va, level)) != nullptr;
    }

    /** Record the level-@p level entry for @p va. */
    void
    fill(int level, Addr va)
    {
        if (level < min_lvl || level > max_lvl)
            return;
        caches[level - min_lvl]->insert(prefix(va, level), true);
    }

    void
    flush()
    {
        for (auto &c : caches)
            c->flush();
    }

    /** Shootdown receive side: drop every cached entry whose subtree
     *  overlaps [base, base+bytes), at every level. Survivors keep
     *  their LRU ranks. @return entries invalidated. */
    std::size_t
    invalidateRange(Addr base, std::uint64_t bytes)
    {
        std::size_t count = 0;
        const Addr last = base + (bytes ? bytes - 1 : 0);
        for (int l = min_lvl; l <= max_lvl; ++l) {
            const auto lo = prefix(base, l);
            const auto hi = prefix(last, l);
            count += caches[l - min_lvl]->invalidateIf(
                [lo, hi](std::uint64_t key, bool) {
                    return key >= lo && key <= hi;
                });
        }
        return count;
    }

    Cycles latency() const { return latency_; }
    int minLevel() const { return min_lvl; }
    int maxLevel() const { return max_lvl; }

    const HitMiss &
    stats(int level) const
    {
        return caches[level - min_lvl]->stats();
    }

  private:
    using Level = AssocCache<std::uint64_t, bool>;

    /** VA bits [47 : index-low-bit(level)] uniquely name the entry. */
    static std::uint64_t
    prefix(Addr va, int level)
    {
        return va >> (12 + 9 * (level - 1));
    }

    int min_lvl;
    int max_lvl;
    Cycles latency_;
    std::vector<std::unique_ptr<Level>> caches;
};

/**
 * Nested TLB: gPA page -> hPA frame for guest page-table pages
 * (24 entries, fully associative, 4-cycle RT in Table 2).
 */
class NestedTlb
{
  public:
    explicit NestedTlb(std::size_t entries = 24, Cycles latency_cycles = 4)
        : cache(entries), latency_(latency_cycles)
    {}

    /** @return the hPA frame base, or nullptr on miss. */
    Addr *
    lookup(Addr gpa)
    {
        return cache.find(gpa >> 12);
    }

    void
    fill(Addr gpa, Addr hpa_frame)
    {
        cache.insert(gpa >> 12, hpa_frame);
    }

    void flush() { cache.flush(); }

    /** Drop entries for gPA pages in [base, base+bytes) — the host
     *  re-backed those pages (migration / balloon). LRU-preserving. */
    std::size_t
    invalidateRange(Addr base, std::uint64_t bytes)
    {
        const std::uint64_t lo = base >> 12;
        const std::uint64_t hi = (base + (bytes ? bytes - 1 : 0)) >> 12;
        return cache.invalidateIf([lo, hi](std::uint64_t key, Addr) {
            return key >= lo && key <= hi;
        });
    }

    Cycles latency() const { return latency_; }
    const HitMiss &stats() const { return cache.stats(); }
    void resetStats() { cache.resetStats(); }

  private:
    AssocCache<std::uint64_t, Addr> cache;
    Cycles latency_;
};

/**
 * Shortcut Translation Cache (Section 4.1): gPA page -> hPA frame for
 * guest CWT entries. 10 entries FA, 4-cycle RT (Table 2).
 */
class ShortcutTranslationCache
{
  public:
    explicit ShortcutTranslationCache(std::size_t entries = 10,
                                      Cycles latency_cycles = 4)
        : cache(entries), latency_(latency_cycles)
    {}

    Addr *
    lookup(Addr gpa)
    {
        return cache.find(gpa >> 12);
    }

    void
    fill(Addr gpa, Addr hpa_frame)
    {
        cache.insert(gpa >> 12, hpa_frame);
    }

    void flush() { cache.flush(); }

    /** Drop shortcut entries for gPA pages in [base, base+bytes),
     *  preserving survivors' LRU ranks. */
    std::size_t
    invalidateRange(Addr base, std::uint64_t bytes)
    {
        const std::uint64_t lo = base >> 12;
        const std::uint64_t hi = (base + (bytes ? bytes - 1 : 0)) >> 12;
        return cache.invalidateIf([lo, hi](std::uint64_t key, Addr) {
            return key >= lo && key <= hi;
        });
    }

    Cycles latency() const { return latency_; }
    const HitMiss &stats() const { return cache.stats(); }
    void resetStats() { cache.resetStats(); }
    std::size_t capacity() const { return cache.capacity(); }

  private:
    AssocCache<std::uint64_t, Addr> cache;
    Cycles latency_;
};

} // namespace necpt

#endif // NECPT_MMU_WALK_CACHES_HH
