/**
 * @file
 * POM-TLB: the "very large part-of-memory TLB" baseline of Section 9.6
 * (Ryoo et al., ISCA'17). A very large set-associative TLB lives in a
 * reserved DRAM region; L2-TLB misses probe it with one memory access
 * (its lines are cacheable in L2/L3 like any data), and only POM-TLB
 * misses fall back to a full page walk. Per the paper's methodology we
 * model a perfect page-size predictor, so a probe costs a single
 * reference.
 */

#ifndef NECPT_MMU_POM_TLB_HH
#define NECPT_MMU_POM_TLB_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bitops.hh"
#include "common/hash.hh"
#include "common/stats.hh"
#include "pt/pte.hh"

namespace necpt
{

/**
 * In-DRAM set-associative TLB.
 */
class PomTlb
{
  public:
    /**
     * @param allocator host-physical space for the TLB array
     * @param sets number of sets (power of two)
     * @param ways associativity
     */
    PomTlb(RegionAllocator &allocator, std::uint64_t sets = 1ULL << 20,
           int ways = 4);

    /** Functional lookup; on hit also reports the entry's address. */
    struct Result
    {
        bool hit = false;
        Translation translation;
        Addr entry_addr = invalid_addr; //!< DRAM slot to fetch
    };
    Result lookup(Addr va);

    /** Entry address that a probe for @p va fetches (hit or miss). */
    Addr probeAddr(Addr va) const;

    /** Install a completed walk's translation, tagged @p asid. The
     *  POM-TLB is shared across cores, so unlike the per-core TLBs the
     *  tag arrives per install (the walker knows its core). */
    void install(Addr va, const Translation &translation,
                 std::uint16_t asid = 0);

    /// @name Translation coherence (shootdown receive side)
    /// @{
    /** Invalidate any entry (any size) whose page contains @p va.
     *  Survivors keep their LRU ranks. */
    std::size_t invalidatePage(Addr va);

    /** Invalidate every entry overlapping [base, base+bytes). Walks
     *  the affected sets page by page — never the whole array. */
    std::size_t invalidateRange(Addr base, std::uint64_t bytes);

    /** Invalidate every entry tagged @p asid. */
    std::size_t invalidateAsid(std::uint16_t asid);
    /// @}

    const HitMiss &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }
    std::uint64_t structureBytes() const { return bytes; }

  private:
    struct Entry
    {
        std::uint64_t vpn = 0; //!< size-tagged VPN key
        Translation translation;
        std::uint64_t lru = 0;
        std::uint16_t asid = 0;
        bool valid = false;
    };

    /** Invalidate the entry keyed exactly @p key, LRU-preserving. */
    bool invalidateKey(std::uint64_t key);

    /** Size-aware key: a 2MB translation occupies one entry. */
    static std::uint64_t
    keyOf(Addr va, PageSize size)
    {
        return (pageNumber(va, size) << 2)
            | static_cast<std::uint64_t>(size);
    }

    std::uint64_t setOf(std::uint64_t key) const
    {
        return hash(key) & (num_sets - 1);
    }

    HashFunction hash;
    Addr base;
    std::uint64_t num_sets;
    int num_ways;
    std::uint64_t bytes;
    std::vector<Entry> entries;
    std::uint64_t tick = 0;
    HitMiss stats_;
};

} // namespace necpt

#endif // NECPT_MMU_POM_TLB_HH
