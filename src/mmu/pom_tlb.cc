#include "mmu/pom_tlb.hh"

#include "common/log.hh"

namespace necpt
{

namespace
{
constexpr std::uint64_t entry_bytes = 16; //!< tag + translation
}

PomTlb::PomTlb(RegionAllocator &allocator, std::uint64_t sets, int ways)
    : hash(0x90D71B), num_sets(sets), num_ways(ways)
{
    NECPT_ASSERT(isPowerOf2(sets));
    bytes = num_sets * static_cast<std::uint64_t>(num_ways) * entry_bytes;
    base = allocator.allocRegion(bytes);
    entries.assign(num_sets * num_ways, Entry{});
}

Addr
PomTlb::probeAddr(Addr va) const
{
    // With the perfect size predictor a probe reads one set; charge the
    // set's base line. Miss probes use the 4KB key's set.
    for (auto size : all_page_sizes) {
        const auto key = keyOf(va, size);
        const Entry *base_entry = &entries[setOf(key) * num_ways];
        for (int w = 0; w < num_ways; ++w)
            if (base_entry[w].valid && base_entry[w].vpn == key)
                return base + setOf(key) * num_ways * entry_bytes;
    }
    return base + setOf(keyOf(va, PageSize::Page4K)) * num_ways
        * entry_bytes;
}

PomTlb::Result
PomTlb::lookup(Addr va)
{
    // Perfect size prediction: the matching size's set is probed
    // directly, one reference (Section 9.6 methodology).
    for (auto size : all_page_sizes) {
        const auto key = keyOf(va, size);
        Entry *base_entry = &entries[setOf(key) * num_ways];
        for (int w = 0; w < num_ways; ++w) {
            Entry &e = base_entry[w];
            if (e.valid && e.vpn == key) {
                e.lru = ++tick;
                stats_.hit();
                return {true, e.translation, probeAddr(va)};
            }
        }
    }
    stats_.miss();
    return {false, {}, probeAddr(va)};
}

void
PomTlb::install(Addr va, const Translation &translation,
                std::uint16_t asid)
{
    const auto key = keyOf(va, translation.size);
    Entry *base_entry = &entries[setOf(key) * num_ways];
    Entry *victim = &base_entry[0];
    for (int w = 0; w < num_ways; ++w) {
        Entry &e = base_entry[w];
        if (e.valid && e.vpn == key) {
            e.translation = translation;
            e.lru = ++tick;
            e.asid = asid;
            return;
        }
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lru < victim->lru)
            victim = &e;
    }
    *victim = {key, translation, ++tick, asid, true};
}

bool
PomTlb::invalidateKey(std::uint64_t key)
{
    Entry *base_entry = &entries[setOf(key) * num_ways];
    for (int w = 0; w < num_ways; ++w) {
        Entry &e = base_entry[w];
        if (e.valid && e.vpn == key) {
            e.valid = false;
            return true;
        }
    }
    return false;
}

std::size_t
PomTlb::invalidatePage(Addr va)
{
    std::size_t count = 0;
    for (auto size : all_page_sizes)
        count += invalidateKey(keyOf(va, size)) ? 1 : 0;
    return count;
}

std::size_t
PomTlb::invalidateRange(Addr base_va, std::uint64_t range_bytes)
{
    std::size_t count = 0;
    const Addr last = base_va + (range_bytes ? range_bytes - 1 : 0);
    for (auto size : all_page_sizes) {
        const auto lo = pageNumber(base_va, size);
        const auto hi = pageNumber(last, size);
        for (std::uint64_t vpn = lo; vpn <= hi; ++vpn) {
            count += invalidateKey(
                         (vpn << 2) | static_cast<std::uint64_t>(size))
                ? 1 : 0;
        }
    }
    return count;
}

std::size_t
PomTlb::invalidateAsid(std::uint16_t asid)
{
    std::size_t count = 0;
    for (Entry &e : entries) {
        if (e.valid && e.asid == asid) {
            e.valid = false;
            ++count;
        }
    }
    return count;
}

} // namespace necpt
