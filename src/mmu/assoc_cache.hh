/**
 * @file
 * Small associative hardware-cache template used by every MMU
 * structure: TLBs, page-walk caches, nested TLBs, cuckoo walk caches
 * and the shortcut translation cache. LRU replacement; fully
 * associative when built with a single set.
 */

#ifndef NECPT_MMU_ASSOC_CACHE_HH
#define NECPT_MMU_ASSOC_CACHE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/log.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace necpt
{

/**
 * @tparam KeyT lookup tag (hashable, equality-comparable)
 * @tparam ValueT payload
 */
template <typename KeyT, typename ValueT>
class AssocCache
{
  public:
    /**
     * @param capacity total entries
     * @param ways set associativity; 0 means fully associative
     */
    explicit AssocCache(std::size_t capacity, std::size_t ways = 0)
        : assoc(ways == 0 ? capacity : ways)
    {
        NECPT_ASSERT(capacity > 0);
        NECPT_ASSERT(assoc > 0 && assoc <= capacity);
        sets = capacity / assoc;
        NECPT_ASSERT(sets >= 1);
        lines.assign(sets * assoc, Line{});
    }

    /** Find @p key; refreshes recency and charges hit/miss stats. */
    ValueT *
    find(const KeyT &key)
    {
        Line *base = setBase(key);
        for (std::size_t i = 0; i < assoc; ++i) {
            if (base[i].valid && base[i].key == key) {
                base[i].lru = ++tick;
                stats_.hit();
                return &base[i].value;
            }
        }
        stats_.miss();
        return nullptr;
    }

    /** Probe without statistics or recency update. */
    const ValueT *
    peek(const KeyT &key) const
    {
        const Line *base = setBase(key);
        for (std::size_t i = 0; i < assoc; ++i)
            if (base[i].valid && base[i].key == key)
                return &base[i].value;
        return nullptr;
    }

    /** Insert (or update) @p key, evicting LRU within its set. */
    void
    insert(const KeyT &key, const ValueT &value)
    {
        Line *base = setBase(key);
        Line *victim = nullptr;
        for (std::size_t i = 0; i < assoc; ++i) {
            if (base[i].valid && base[i].key == key) {
                base[i].value = value;
                base[i].lru = ++tick;
                return;
            }
            if (!victim
                || (!base[i].valid && victim->valid)
                || (base[i].valid == victim->valid
                    && base[i].lru < victim->lru)) {
                victim = &base[i];
            }
        }
        *victim = {key, value, ++tick, true};
    }

    /** Invalidate @p key if present. @return true when a line died. */
    bool
    invalidate(const KeyT &key)
    {
        Line *base = setBase(key);
        for (std::size_t i = 0; i < assoc; ++i) {
            if (base[i].valid && base[i].key == key) {
                base[i].valid = false;
                return true;
            }
        }
        return false;
    }

    /**
     * Invalidate every line matching @p pred(key, value). Surviving
     * lines keep their LRU ranks untouched — a partial invalidation
     * (shootdown) must not perturb replacement among the survivors.
     * @return number of lines invalidated.
     */
    template <typename Pred>
    std::size_t
    invalidateIf(Pred &&pred)
    {
        std::size_t count = 0;
        for (Line &line : lines) {
            if (line.valid && pred(line.key, line.value)) {
                line.valid = false;
                ++count;
            }
        }
        return count;
    }

    /** Invalidate everything. */
    void
    flush()
    {
        for (Line &line : lines)
            line.valid = false;
    }

    std::size_t capacity() const { return lines.size(); }
    const HitMiss &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

  private:
    struct Line
    {
        KeyT key{};
        ValueT value{};
        std::uint64_t lru = 0;
        bool valid = false;
    };

    Line *setBase(const KeyT &key)
    {
        return &lines[(std::hash<KeyT>{}(key) % sets) * assoc];
    }
    const Line *setBase(const KeyT &key) const
    {
        return &lines[(std::hash<KeyT>{}(key) % sets) * assoc];
    }

    std::size_t assoc;
    std::size_t sets;
    std::vector<Line> lines;
    std::uint64_t tick = 0;
    HitMiss stats_;
};

} // namespace necpt

#endif // NECPT_MMU_ASSOC_CACHE_HH
