/**
 * @file
 * The per-core data-TLB hierarchy of Table 2: split L1 DTLBs per page
 * size (64x4-way for 4KB, 32x4-way for 2MB, 4-entry FA for 1GB) backed
 * by split L2 DTLBs (1024x12-way for 4KB and 2MB, 16x4-way for 1GB).
 *
 * Entries map a guest-virtual page directly to its host-physical frame
 * — the {gVA, hPA} pair loaded at the end of a nested walk (Section 5).
 * In native configurations the same structure holds {VA, PA}.
 */

#ifndef NECPT_MMU_TLB_HH
#define NECPT_MMU_TLB_HH

#include <array>
#include <cstdint>
#include <memory>

#include "common/bitops.hh"
#include "mmu/assoc_cache.hh"
#include "pt/pte.hh"

namespace necpt
{

/** Geometry of the TLB hierarchy (defaults = Table 2). */
struct TlbConfig
{
    struct LevelGeom
    {
        std::size_t entries;
        std::size_t ways; //!< 0 = fully associative
    };
    std::array<LevelGeom, num_page_sizes> l1{{{64, 4}, {32, 4}, {4, 0}}};
    std::array<LevelGeom, num_page_sizes> l2{{{1020, 12}, {1020, 12},
                                              {16, 4}}};
    Cycles l1_latency = 2;
    Cycles l2_latency = 12;
};

/**
 * Two-level, per-page-size-split data TLB.
 */
class TlbHierarchy
{
  public:
    /** Outcome of a TLB lookup. */
    struct Result
    {
        bool hit = false;
        bool l1_hit = false;
        Cycles latency = 0;   //!< cycles beyond the L1 pipeline access
        Translation translation;
    };

    explicit TlbHierarchy(const TlbConfig &config = TlbConfig{});

    /**
     * Probe L1 (all size classes in parallel), then L2.
     * An L1 hit costs nothing extra; an L2 hit costs the L2 round trip.
     */
    Result lookup(Addr va);

    /** Install the result of a completed walk into L1 and L2. The
     *  entry is tagged with the hierarchy's current ASID. */
    void install(Addr va, const Translation &translation);

    /** Drop all entries (context/world switch). */
    void flush();

    /// @name Translation coherence (shootdown receive side)
    /// @{
    /** ASID tag applied to subsequently installed entries. Tags live
     *  in the entry payload, not the lookup key, so set placement —
     *  and therefore all non-churn behavior — is unchanged. */
    void setAsid(std::uint16_t asid) { asid_ = asid; }
    std::uint16_t asid() const { return asid_; }

    /** Invalidate any entry (all sizes, both levels) whose page
     *  contains @p va. Survivors keep their LRU ranks. */
    std::size_t invalidatePage(Addr va);

    /** Invalidate every entry overlapping [base, base+bytes). */
    std::size_t invalidateRange(Addr base, std::uint64_t bytes);

    /** Invalidate every entry tagged @p asid. */
    std::size_t invalidateAsid(std::uint16_t asid);

    /** Does any level hold a translation for @p va? No stats or LRU
     *  side effects (shootdown sharer filtering). */
    bool holds(Addr va) const;
    /// @}

    /// @name Statistics
    /// @{
    const HitMiss &l1Stats() const { return l1_stats; }
    const HitMiss &l2Stats() const { return l2_stats; }
    void resetStats();
    /// @}

  private:
    struct TlbEntry
    {
        Addr pa = invalid_addr;
        std::uint16_t asid = 0;
    };
    using SizeTlb = AssocCache<std::uint64_t, TlbEntry>;

    TlbConfig cfg;
    std::array<std::unique_ptr<SizeTlb>, num_page_sizes> l1;
    std::array<std::unique_ptr<SizeTlb>, num_page_sizes> l2;
    std::uint16_t asid_ = 0;
    HitMiss l1_stats;
    HitMiss l2_stats;
};

} // namespace necpt

#endif // NECPT_MMU_TLB_HH
