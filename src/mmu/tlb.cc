#include "mmu/tlb.hh"

#include <memory>

namespace necpt
{

TlbHierarchy::TlbHierarchy(const TlbConfig &config)
    : cfg(config)
{
    for (int s = 0; s < num_page_sizes; ++s) {
        l1[s] = std::make_unique<SizeTlb>(cfg.l1[s].entries,
                                          cfg.l1[s].ways);
        l2[s] = std::make_unique<SizeTlb>(cfg.l2[s].entries,
                                          cfg.l2[s].ways);
    }
}

TlbHierarchy::Result
TlbHierarchy::lookup(Addr va)
{
    // L1: all size classes probed in parallel in the pipeline.
    for (int s = 0; s < num_page_sizes; ++s) {
        const auto size = all_page_sizes[s];
        if (TlbEntry *e = l1[s]->find(pageNumber(va, size))) {
            l1_stats.hit();
            return {true, true, 0, {e->pa, size, true}};
        }
    }
    l1_stats.miss();

    // L2 probe.
    for (int s = 0; s < num_page_sizes; ++s) {
        const auto size = all_page_sizes[s];
        if (TlbEntry *e = l2[s]->find(pageNumber(va, size))) {
            l2_stats.hit();
            // Refill L1 for subsequent accesses.
            l1[s]->insert(pageNumber(va, size), *e);
            return {true, false, cfg.l2_latency, {e->pa, size, true}};
        }
    }
    l2_stats.miss();
    return {false, false, cfg.l2_latency, {}};
}

void
TlbHierarchy::install(Addr va, const Translation &translation)
{
    const int s = static_cast<int>(translation.size);
    const auto vpn = pageNumber(va, translation.size);
    const TlbEntry entry{translation.pa, asid_};
    l1[s]->insert(vpn, entry);
    l2[s]->insert(vpn, entry);
}

std::size_t
TlbHierarchy::invalidatePage(Addr va)
{
    std::size_t count = 0;
    for (int s = 0; s < num_page_sizes; ++s) {
        const auto vpn = pageNumber(va, all_page_sizes[s]);
        count += l1[s]->invalidate(vpn) ? 1 : 0;
        count += l2[s]->invalidate(vpn) ? 1 : 0;
    }
    return count;
}

std::size_t
TlbHierarchy::invalidateRange(Addr base, std::uint64_t bytes)
{
    std::size_t count = 0;
    const Addr last = base + (bytes ? bytes - 1 : 0);
    for (int s = 0; s < num_page_sizes; ++s) {
        const auto size = all_page_sizes[s];
        // Any page overlapping the range dies, including a huge page
        // that merely contains it.
        const auto lo = pageNumber(base, size);
        const auto hi = pageNumber(last, size);
        auto in_range = [lo, hi](std::uint64_t vpn, const TlbEntry &) {
            return vpn >= lo && vpn <= hi;
        };
        count += l1[s]->invalidateIf(in_range);
        count += l2[s]->invalidateIf(in_range);
    }
    return count;
}

std::size_t
TlbHierarchy::invalidateAsid(std::uint16_t asid)
{
    std::size_t count = 0;
    auto tagged = [asid](std::uint64_t, const TlbEntry &e) {
        return e.asid == asid;
    };
    for (int s = 0; s < num_page_sizes; ++s) {
        count += l1[s]->invalidateIf(tagged);
        count += l2[s]->invalidateIf(tagged);
    }
    return count;
}

bool
TlbHierarchy::holds(Addr va) const
{
    for (int s = 0; s < num_page_sizes; ++s) {
        const auto vpn = pageNumber(va, all_page_sizes[s]);
        if (l1[s]->peek(vpn) || l2[s]->peek(vpn))
            return true;
    }
    return false;
}

void
TlbHierarchy::flush()
{
    for (int s = 0; s < num_page_sizes; ++s) {
        l1[s]->flush();
        l2[s]->flush();
    }
}

void
TlbHierarchy::resetStats()
{
    l1_stats.reset();
    l2_stats.reset();
    for (int s = 0; s < num_page_sizes; ++s) {
        l1[s]->resetStats();
        l2[s]->resetStats();
    }
}

} // namespace necpt
