#include "mmu/tlb.hh"

#include <memory>

namespace necpt
{

TlbHierarchy::TlbHierarchy(const TlbConfig &config)
    : cfg(config)
{
    for (int s = 0; s < num_page_sizes; ++s) {
        l1[s] = std::make_unique<SizeTlb>(cfg.l1[s].entries,
                                          cfg.l1[s].ways);
        l2[s] = std::make_unique<SizeTlb>(cfg.l2[s].entries,
                                          cfg.l2[s].ways);
    }
}

TlbHierarchy::Result
TlbHierarchy::lookup(Addr va)
{
    // L1: all size classes probed in parallel in the pipeline.
    for (int s = 0; s < num_page_sizes; ++s) {
        const auto size = all_page_sizes[s];
        if (Addr *pa = l1[s]->find(pageNumber(va, size))) {
            l1_stats.hit();
            return {true, true, 0, {*pa, size, true}};
        }
    }
    l1_stats.miss();

    // L2 probe.
    for (int s = 0; s < num_page_sizes; ++s) {
        const auto size = all_page_sizes[s];
        if (Addr *pa = l2[s]->find(pageNumber(va, size))) {
            l2_stats.hit();
            // Refill L1 for subsequent accesses.
            l1[s]->insert(pageNumber(va, size), *pa);
            return {true, false, cfg.l2_latency, {*pa, size, true}};
        }
    }
    l2_stats.miss();
    return {false, false, cfg.l2_latency, {}};
}

void
TlbHierarchy::install(Addr va, const Translation &translation)
{
    const int s = static_cast<int>(translation.size);
    const auto vpn = pageNumber(va, translation.size);
    l1[s]->insert(vpn, translation.pa);
    l2[s]->insert(vpn, translation.pa);
}

void
TlbHierarchy::flush()
{
    for (int s = 0; s < num_page_sizes; ++s) {
        l1[s]->flush();
        l2[s]->flush();
    }
}

void
TlbHierarchy::resetStats()
{
    l1_stats.reset();
    l2_stats.reset();
    for (int s = 0; s < num_page_sizes; ++s) {
        l1[s]->resetStats();
        l2[s]->resetStats();
    }
}

} // namespace necpt
