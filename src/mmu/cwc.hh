/**
 * @file
 * Cuckoo Walk Cache (CWC) — the MMU cache of CWT entries (Sections 2.3,
 * 3.2) — and the adaptive PTE-caching controller of Section 4.2.
 *
 * A CWC holds whole CWT entries (a tag plus 16 section descriptors) in
 * per-page-size sub-caches whose capacities come straight from Table 2:
 * the gCWC has 16 PMD + 2 PUD entries; the Step-1 hCWC has 4 PTE
 * entries; the Step-3 hCWC has 16 PTE + 4 PMD + 2 PUD entries.
 *
 * Refill timing: a CWC miss during a walk does not stall the walk —
 * the walker collects the CWT line addresses (collectCwcRefills) and
 * issues them as a background memory transaction after the walk's
 * last foreground batch. The refill traffic competes for the same L2
 * MSHRs and DRAM banks as foreground probes over simulated time, but
 * its latency is off the walk's critical path; the entries are
 * installed architecturally at collection time, so a subsequent walk
 * hits regardless of when the refill transaction completes.
 */

#ifndef NECPT_MMU_CWC_HH
#define NECPT_MMU_CWC_HH

#include <array>
#include <cstdint>
#include <memory>
#include <optional>

#include "common/stats.hh"
#include "mmu/assoc_cache.hh"
#include "pt/cwt.hh"

namespace necpt
{

/**
 * One Cuckoo Walk Cache with per-level sub-caches.
 */
class CuckooWalkCache
{
  public:
    /**
     * @param capacity entries per page-size level (0 = level not cached)
     * @param latency_cycles round trip (Table 2: 4 cycles)
     */
    explicit CuckooWalkCache(
        const std::array<std::size_t, num_page_sizes> &capacity,
        Cycles latency_cycles = 4);

    /**
     * Look up the cached CWT entry covering @p entry_key at @p level.
     * @return the 8-byte payload, or nullopt on miss.
     */
    std::optional<std::uint64_t> lookup(PageSize level,
                                        std::uint64_t entry_key);

    /** Install a fetched CWT entry. */
    void fill(PageSize level, std::uint64_t entry_key,
              std::uint64_t payload);

    /** Invalidate one entry (CWT update coherence). */
    void invalidate(PageSize level, std::uint64_t entry_key);

    /**
     * Shootdown receive side: drop every cached CWT entry whose
     * coverage overlaps the VA range [base, base+bytes). The entry key
     * at each level is the VA prefix above that level's 2048-section
     * granule, so the range maps to a [lo, hi] key interval per level.
     * Survivors keep their LRU ranks. @return entries invalidated.
     */
    std::size_t invalidateRange(Addr base, std::uint64_t bytes);

    void flush();

    bool caches(PageSize level) const
    {
        return levels[static_cast<int>(level)] != nullptr;
    }

    Cycles latency() const { return latency_; }

    const HitMiss &stats(PageSize level) const
    {
        return stats_[static_cast<int>(level)];
    }

    void resetStats();

  private:
    using Level = AssocCache<std::uint64_t, std::uint64_t>;
    std::array<std::unique_ptr<Level>, num_page_sizes> levels;
    std::array<HitMiss, num_page_sizes> stats_;
    Cycles latency_;
};

/**
 * Adaptive PTE-hCWT caching controller (Section 4.2, Figure 12).
 *
 * Starts with PTE caching enabled. Hit rates of PTE and PMD entries in
 * the Step-3 hCWC are monitored over fixed cycle windows; when the PTE
 * hit rate falls below 0.5 caching is disabled, and while disabled it is
 * re-enabled when the PMD hit rate exceeds 0.85.
 */
class AdaptiveCwcController
{
  public:
    explicit AdaptiveCwcController(Cycles interval = 5'000'000,
                                   double disable_below = 0.5,
                                   double enable_above = 0.85)
        : pte_monitor(interval), pmd_monitor(interval),
          disable_threshold(disable_below),
          enable_threshold(enable_above)
    {}

    /** Record a Step-3 hCWC access outcome at @p level. */
    void
    record(Cycles now, PageSize level, bool hit)
    {
        if (level == PageSize::Page4K)
            pte_monitor.record(now, hit);
        else if (level == PageSize::Page2M)
            pmd_monitor.record(now, hit);
        evaluate();
    }

    /** Should PTE hCWT entries be cached right now? */
    bool pteCachingEnabled() const { return enabled; }

    /** Number of enable<->disable transitions (convergence check). */
    std::uint64_t transitions() const { return transitions_; }

    const RateMonitor &pteMonitor() const { return pte_monitor; }
    const RateMonitor &pmdMonitor() const { return pmd_monitor; }

  private:
    void
    evaluate()
    {
        // The first completed window is dominated by compulsory
        // (cold) misses; judging it would disable PTE caching before
        // it had a chance to warm (Figure 12 measures steady state).
        if (enabled && pte_monitor.history().size() >= 2
            && pte_monitor.lastRate() < disable_threshold) {
            enabled = false;
            ++transitions_;
        } else if (!enabled && pmd_monitor.hasSample()
                   && pmd_monitor.lastRate() > enable_threshold) {
            enabled = true;
            ++transitions_;
        }
    }

    RateMonitor pte_monitor;
    RateMonitor pmd_monitor;
    double disable_threshold;
    double enable_threshold;
    bool enabled = true;
    std::uint64_t transitions_ = 0;
};

} // namespace necpt

#endif // NECPT_MMU_CWC_HH
