#include "coherence/churn.hh"

#include <cstdlib>
#include <vector>

#include "common/error.hh"

namespace necpt
{

namespace
{

std::vector<std::string>
splitOn(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::string::size_type start = 0;
    while (start <= text.size()) {
        const auto end = text.find(sep, start);
        if (end == std::string::npos) {
            parts.push_back(text.substr(start));
            break;
        }
        parts.push_back(text.substr(start, end - start));
        start = end + 1;
    }
    return parts;
}

std::uint64_t
parseU64(const std::string &clause, const std::string &value)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (!end || *end != '\0' || value.empty())
        throw ConfigError(strfmt("churn spec: bad value '%s' in '%s'",
                                 value.c_str(), clause.c_str()));
    return v;
}

int
parseCount(const std::string &clause, const std::string &value)
{
    const std::uint64_t v = parseU64(clause, value);
    if (v == 0 || v > 4096)
        throw ConfigError(strfmt("churn spec: count %llu out of "
                                 "[1, 4096] in '%s'",
                                 (unsigned long long)v, clause.c_str()));
    return static_cast<int>(v);
}

} // namespace

const char *
coherenceModeName(CoherenceMode mode)
{
    return mode == CoherenceMode::SwIpi ? "sw" : "hw";
}

ChurnSpec
parseChurnSpec(const std::string &text)
{
    ChurnSpec spec;
    for (const std::string &clause : splitOn(text, ',')) {
        if (clause.empty())
            continue;
        const auto fields = splitOn(clause, ':');
        const std::string &site = fields[0];
        auto arg = [&](std::size_t i) -> const std::string & {
            if (i >= fields.size())
                throw ConfigError(strfmt(
                    "churn spec: '%s' needs a value (e.g. %s:20000)",
                    site.c_str(), site.c_str()));
            return fields[i];
        };
        if (site == "migrate") {
            spec.migrate_period = parseU64(clause, arg(1));
            if (fields.size() > 2)
                spec.migrate_pages = parseCount(clause, fields[2]);
        } else if (site == "balloon") {
            spec.balloon_period = parseU64(clause, arg(1));
            if (fields.size() > 2)
                spec.balloon_pages = parseCount(clause, fields[2]);
        } else if (site == "thp") {
            spec.thp_period = parseU64(clause, arg(1));
            if (fields.size() > 2)
                spec.thp_blocks = parseCount(clause, fields[2]);
        } else if (site == "protect") {
            spec.protect_period = parseU64(clause, arg(1));
            if (fields.size() > 2)
                spec.protect_pages = parseCount(clause, fields[2]);
        } else if (site == "mode") {
            const std::string &m = arg(1);
            if (m == "sw")
                spec.mode = CoherenceMode::SwIpi;
            else if (m == "hw")
                spec.mode = CoherenceMode::HwCoherence;
            else
                throw ConfigError(strfmt(
                    "churn spec: unknown mode '%s' (sw or hw)",
                    m.c_str()));
        } else if (site == "batch") {
            spec.batch = parseCount(clause, arg(1));
        } else if (site == "all") {
            if (fields.size() > 1)
                throw ConfigError("churn spec: 'all' takes no value");
            spec.migrate_period = 20'000;
            spec.balloon_period = 50'000;
            spec.thp_period = 80'000;
            spec.protect_period = 40'000;
        } else {
            throw ConfigError(strfmt(
                "churn spec: unknown clause '%s' (expected migrate, "
                "balloon, thp, protect, mode, batch, or all)",
                site.c_str()));
        }
    }
    if (!spec.enabled())
        throw ConfigError(strfmt(
            "churn spec '%s' arms no source", text.c_str()));
    return spec;
}

std::string
churnSpecToString(const ChurnSpec &spec)
{
    std::string out;
    auto add = [&](const std::string &clause) {
        if (!out.empty())
            out += ',';
        out += clause;
    };
    if (spec.migrate_period > 0)
        add(strfmt("migrate:%llu:%d",
                   (unsigned long long)spec.migrate_period,
                   spec.migrate_pages));
    if (spec.balloon_period > 0)
        add(strfmt("balloon:%llu:%d",
                   (unsigned long long)spec.balloon_period,
                   spec.balloon_pages));
    if (spec.thp_period > 0)
        add(strfmt("thp:%llu:%d", (unsigned long long)spec.thp_period,
                   spec.thp_blocks));
    if (spec.protect_period > 0)
        add(strfmt("protect:%llu:%d",
                   (unsigned long long)spec.protect_period,
                   spec.protect_pages));
    if (spec.enabled()) {
        add(strfmt("mode:%s", coherenceModeName(spec.mode)));
        add(strfmt("batch:%d", spec.batch));
    }
    return out.empty() ? "none" : out;
}

} // namespace necpt
