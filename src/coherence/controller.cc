#include "coherence/controller.hh"

#include <algorithm>

namespace necpt
{

CoherenceController::CoherenceController(const ChurnSpec &spec)
    : spec_(spec)
{
}

void
CoherenceController::queueInvalidation(const Invalidation &inv)
{
    batcher.push(inv);
    ++stats_.invalidations;
    // Record at queue time, not round time: the churn source mutated
    // the functional tables *before* queueing, so a walk in flight
    // right now already raced with this invalidation even if the
    // (batched) shootdown round fires later. Recording early only
    // makes invalidatedSince() more conservative — a spurious replay
    // is correct, a missed one is not.
    directory.record(inv);
}

void
CoherenceController::noteChurnOp(ChurnOp op, std::uint64_t pages)
{
    ++stats_.churn_ops;
    switch (op) {
      case ChurnOp::Migrate: stats_.migrate_pages += pages; break;
      case ChurnOp::BalloonOut: stats_.balloon_out_pages += pages; break;
      case ChurnOp::BalloonIn: stats_.balloon_in_pages += pages; break;
      case ChurnOp::ThpPromote: stats_.thp_promotes += pages; break;
      case ChurnOp::ThpDemote: stats_.thp_demotes += pages; break;
      case ChurnOp::Protect: stats_.protect_pages += pages; break;
    }
}

std::size_t
CoherenceController::applyInvalidation(const Invalidation &inv,
                                       std::vector<std::size_t> &core_drops)
{
    std::size_t dropped = 0;
    for (std::size_t c = 0; c < cores.size(); ++c) {
        std::size_t d = 0;
        if (cores[c].tlb)
            d += cores[c].tlb->invalidateRange(inv.gva, inv.bytes);
        if (cores[c].walker)
            d += cores[c].walker->invalidateTranslationCaches(
                inv.gva, inv.bytes,
                inv.gpa == invalid_addr ? 0 : inv.gpa, inv.gpa_bytes);
        core_drops[c] += d;
        dropped += d;
    }
    if (pom_) {
        const std::size_t d = pom_->invalidateRange(inv.gva, inv.bytes);
        stats_.pom_entries += d;
        dropped += d;
    }
    return dropped;
}

CoherenceController::RoundPlan
CoherenceController::beginRound(int initiator, Cycles now)
{
    RoundPlan round;
    const std::vector<Invalidation> batch =
        batcher.pop(static_cast<std::size_t>(spec_.batch));
    if (batch.empty())
        return round;

    round.started = true;
    round.initiator = initiator;
    round.begin = now;
    round.invalidations = static_cast<int>(batch.size());
    stats_.batch_occupancy.sample(batch.size());

    // Functional invalidation is applied at round start: the protocol
    // cost below models *when cores may proceed*, not when entries
    // drop. In-flight walks that already read stale state are caught
    // by the directory epoch at retire time.
    std::vector<std::size_t> core_drops(cores.size(), 0);
    for (const Invalidation &inv : batch) {
        const std::size_t dropped = applyInvalidation(inv, core_drops);
        round.entries_dropped += dropped;
        if (tracer_) {
            tracer_->instant(
                "shootdown.invalidate", TraceCat::Shootdown,
                trace_coherence_tid, now,
                {{"kind", 0, invalKindName(inv.kind)},
                 {"bytes", static_cast<std::int64_t>(inv.bytes)},
                 {"dropped", static_cast<std::int64_t>(dropped)}});
        }
    }
    // core_drops holds TLB + private walk-cache drops together (one
    // pass per invalidation); the registry reports the combined total.
    for (const std::size_t d : core_drops)
        stats_.tlb_entries += d;

    if (spec_.mode == CoherenceMode::SwIpi) {
        // The initiator runs its own flush inline; every other core
        // is interrupted and must ack. Completion = last ack.
        Cycles completion = now + sw_handler_cycles;
        for (std::size_t c = 0; c < cores.size(); ++c) {
            if (static_cast<int>(c) == initiator)
                continue;
            ++stats_.acks;
            Cycles delay = 0;
            if (fault_plan) {
                delay = fault_plan->shootdownAckDelay();
                if (delay > 0)
                    ++stats_.acks_dropped;
            }
            const Cycles ack = sw_ipi_cycles + sw_handler_cycles + delay
                               + sw_ack_cycles;
            stats_.ack_latency.sample(ack);
            completion = std::max(completion, now + ack);
        }
        round.completion = completion;
        round.initiator_stall = completion - now;
        round.responder_cost = sw_handler_cycles;
    } else {
        // Hardware coherence: cost scales with how many structures
        // actually held stale entries, and nobody stalls.
        int sharers = 0;
        for (std::size_t c = 0; c < cores.size(); ++c)
            if (core_drops[c] > 0)
                ++sharers;
        round.sharers = sharers;
        round.completion =
            now + hw_base_cycles
            + hw_per_sharer_cycles * static_cast<Cycles>(sharers);
        round.initiator_stall = 0;
    }
    return round;
}

void
CoherenceController::finishRound(const RoundPlan &round)
{
    if (!round.started)
        return;
    ++stats_.rounds;
    const Cycles latency = round.completion - round.begin;
    stats_.round_latency.sample(latency);
    if (tracer_) {
        tracer_->span(
            "shootdown.round", TraceCat::Shootdown, trace_coherence_tid,
            round.begin, latency,
            {{"initiator", round.initiator},
             {"invalidations", round.invalidations},
             {"sharers", round.sharers},
             {"mode", 0, coherenceModeName(spec_.mode)}});
    }
}

void
CoherenceController::registerMetrics(MetricsRegistry &reg,
                                     const std::string &prefix)
{
    Stats *s = &stats_;
    const std::string sd = prefix + "shootdown.";
    reg.addCounter(sd + "rounds", [s] { return s->rounds; },
                   "shootdown rounds completed");
    reg.addCounter(sd + "invalidations", [s] { return s->invalidations; },
                   "invalidations queued by churn sources");
    reg.addCounter(sd + "entries.dropped",
                   [s] { return s->tlb_entries + s->pom_entries; },
                   "translation-cache entries invalidated");
    reg.addCounter(sd + "entries.pom", [s] { return s->pom_entries; });
    reg.addCounter(sd + "acks", [s] { return s->acks; },
                   "sw-IPI responder acks");
    reg.addCounter(sd + "acks.dropped", [s] { return s->acks_dropped; },
                   "acks dropped by fault injection (re-sent)");
    reg.addCounter(sd + "walk_replays", [s] { return s->walk_replays; },
                   "walks replayed after racing an invalidation");
    reg.addHistogram(sd + "latency", &s->round_latency,
                     "shootdown round latency (cycles)");
    reg.addHistogram(sd + "ack.latency", &s->ack_latency,
                     "per-responder ack latency (sw mode, cycles)");
    reg.addHistogram(sd + "batch.occupancy", &s->batch_occupancy,
                     "invalidations coalesced per round");

    const std::string ch = prefix + "churn.";
    reg.addCounter(ch + "ops", [s] { return s->churn_ops; },
                   "churn operations executed");
    reg.addCounter(ch + "migrate.pages", [s] { return s->migrate_pages; });
    reg.addCounter(ch + "balloon.out_pages",
                   [s] { return s->balloon_out_pages; });
    reg.addCounter(ch + "balloon.in_pages",
                   [s] { return s->balloon_in_pages; });
    reg.addCounter(ch + "thp.promotes", [s] { return s->thp_promotes; });
    reg.addCounter(ch + "thp.demotes", [s] { return s->thp_demotes; });
    reg.addCounter(ch + "protect.pages",
                   [s] { return s->protect_pages; });
}

} // namespace necpt
