/**
 * @file
 * Translation-churn configuration: which OS/hypervisor mutation
 * streams run alongside the access kernels, how often, and which
 * shootdown protocol propagates the resulting invalidations.
 *
 * A ChurnSpec is to `--churn` what a FaultSpec is to `--faults`: a
 * small parsed value object that a seed turns into a deterministic
 * behavior. An all-defaults spec (enabled() == false) must leave every
 * simulation byte-identical to a build without the subsystem — the
 * Simulator only wires the coherence machinery up when a site is
 * armed.
 */

#ifndef NECPT_COHERENCE_CHURN_HH
#define NECPT_COHERENCE_CHURN_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace necpt
{

/** How invalidations reach remote translation caches. */
enum class CoherenceMode : std::uint8_t
{
    /**
     * Software IPI shootdown (Linux-style): the initiating core
     * interrupts every other core, each runs an invalidation handler
     * and acks, and the initiator stalls until the last ack lands.
     */
    SwIpi,
    /**
     * Hardware translation coherence (after "Hardware Translation
     * Coherence for Virtualized Systems", ISCA'17): invalidations ride
     * the cache-coherence network to exactly the structures holding
     * the stale entries; no IPIs, no initiator stall, cost scales with
     * the sharer count instead of the core count.
     */
    HwCoherence,
};

const char *coherenceModeName(CoherenceMode mode);

/** The churn sources and shootdown protocol for one run. */
struct ChurnSpec
{
    /** NUMA migration daemon: every period, re-back this many pages.
     *  Period 0 disarms a source (throughout). */
    Cycles migrate_period = 0;
    int migrate_pages = 4;

    /** Balloon driver: alternate inflate (unmap + free) and deflate
     *  (refault) of this many pages every period. */
    Cycles balloon_period = 0;
    int balloon_pages = 16;

    /** THP compactor: alternate promote (collapse 512 x 4KB) and
     *  demote (split 2MB) passes over this many 2MB blocks. */
    Cycles thp_period = 0;
    int thp_blocks = 2;

    /** Write-protect scrubber (dirty tracking / COW arming): downgrade
     *  this many resident pages every period. */
    Cycles protect_period = 0;
    int protect_pages = 4;

    CoherenceMode mode = CoherenceMode::SwIpi;

    /** Invalidations coalesced into one shootdown round (the batcher's
     *  pop bound — Linux batches flushes the same way). */
    int batch = 8;

    bool
    enabled() const
    {
        return migrate_period > 0 || balloon_period > 0 || thp_period > 0
               || protect_period > 0;
    }
};

/**
 * Parse a churn spec string.
 *
 * Grammar (comma-separated clauses):
 *   migrate:PERIOD[:PAGES]   arm the migration daemon
 *   balloon:PERIOD[:PAGES]   arm the balloon driver
 *   thp:PERIOD[:BLOCKS]      arm the THP compactor
 *   protect:PERIOD[:PAGES]   arm the write-protect scrubber
 *   mode:sw|hw               select the shootdown protocol
 *   batch:N                  invalidations coalesced per round
 *   all                      every source at stock periods
 *
 * Periods are cycles between firings of that source. Example:
 * "migrate:20000:4,mode:hw,batch:16".
 *
 * Throws ConfigError on unknown clauses or malformed values.
 */
ChurnSpec parseChurnSpec(const std::string &text);

/** Render a spec back into the grammar above (banners/JSON). */
std::string churnSpecToString(const ChurnSpec &spec);

} // namespace necpt

#endif // NECPT_COHERENCE_CHURN_HH
