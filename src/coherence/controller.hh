/**
 * @file
 * The control plane of translation coherence: one CoherenceController
 * per simulation owns the batcher and directory, applies invalidation
 * batches to every attached translation structure (per-core TLBs and
 * walk caches, the shared POM-TLB), and computes when each shootdown
 * round completes under the selected protocol:
 *
 *  - sw (IPI shootdown): the initiator broadcasts, every other core
 *    takes the interrupt, runs the invalidation handler, and acks;
 *    the round completes — and the initiator resumes — when the last
 *    ack lands. A dropped ack (fault site `shootdown:PROB`) re-sends
 *    after a timeout, stretching the round.
 *  - hw (hardware translation coherence): invalidations ride the
 *    coherence network to the structures that actually hold stale
 *    entries; the cost scales with the sharer count and the initiator
 *    never stalls.
 *
 * The controller is pure bookkeeping plus cycle arithmetic — the
 * Simulator schedules the rounds it plans on its scheduler and
 * charges the initiator stall to the right core.
 *
 * Under the thread-sharded timing core (sim/shared_domain.hh), churn
 * mutations and shootdown rounds are shared-resource events: they run
 * at priority -2 on the domain queue, committing through the same
 * canonical (cycle, priority, core, sequence) merge as every core
 * step — i.e. shootdowns are epoch-aligned. Within a cycle they land
 * before the memory pump and before any core's step or retire, so
 * every core observes an invalidation batch at the same simulated
 * instant regardless of --sim-threads, and the lookahead rings'
 * residency verdicts go stale atomically with it (the mutation stamp
 * bumps inside the churn handler, on the coordinator thread).
 */

#ifndef NECPT_COHERENCE_CONTROLLER_HH
#define NECPT_COHERENCE_CONTROLLER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "coherence/churn.hh"
#include "coherence/shootdown.hh"
#include "common/fault.hh"
#include "common/metrics.hh"
#include "common/stats.hh"
#include "common/trace_events.hh"
#include "mmu/pom_tlb.hh"
#include "mmu/tlb.hh"
#include "walk/walker.hh"

namespace necpt
{

/** Churn operations, for the per-source counters. */
enum class ChurnOp : std::uint8_t
{
    Migrate,
    BalloonOut,
    BalloonIn,
    ThpPromote,
    ThpDemote,
    Protect,
};

class CoherenceController
{
  public:
    /// @name Shootdown latency model (cycles)
    /// IPI numbers follow the ~μs-scale interrupt delivery + handler
    /// costs reported for Linux shootdowns; the hw numbers follow the
    /// message-on-coherence-network argument of HATRIC (ISCA'17).
    /// @{
    static constexpr Cycles sw_ipi_cycles = 400;     //!< delivery
    static constexpr Cycles sw_handler_cycles = 200; //!< remote handler
    static constexpr Cycles sw_ack_cycles = 100;     //!< ack return
    static constexpr Cycles hw_base_cycles = 60;     //!< message launch
    static constexpr Cycles hw_per_sharer_cycles = 40;
    /// @}

    explicit CoherenceController(const ChurnSpec &spec);

    const ChurnSpec &spec() const { return spec_; }

    /// @name Wiring (Simulator::buildMachine)
    /// @{
    void
    attachCore(TlbHierarchy *tlb, Walker *walker)
    {
        cores.push_back(CoreSide{tlb, walker});
    }

    void attachPom(PomTlb *pom) { pom_ = pom; }
    void setFaultPlan(FaultPlan *plan) { fault_plan = plan; }
    void setTracer(TraceBuffer *tracer) { tracer_ = tracer; }
    /// @}

    /// @name Source side (churn generators)
    /// @{
    /** Queue an invalidation for the next shootdown round. */
    void queueInvalidation(const Invalidation &inv);

    /** Tally one churn operation covering @p pages pages. */
    void noteChurnOp(ChurnOp op, std::uint64_t pages);

    bool pending() const { return !batcher.empty(); }
    /// @}

    /// @name Round planning (Simulator event loop)
    /// @{
    /** A planned shootdown round: functional invalidation already
     *  applied, completion time computed; the caller schedules it. */
    struct RoundPlan
    {
        bool started = false;
        int initiator = -1;
        Cycles begin = 0;
        Cycles completion = 0;      //!< absolute: last ack / hw done
        Cycles initiator_stall = 0; //!< sw only; hw never stalls
        Cycles responder_cost = 0;  //!< per-responder handler time (sw)
        int invalidations = 0;
        int sharers = 0; //!< structures that actually dropped entries
        std::size_t entries_dropped = 0;
    };

    /**
     * Pop a batch and run a round from @p initiator at @p now: apply
     * every invalidation to the attached structures, record it in the
     * directory, and price the round under the spec's mode. Returns
     * started == false when nothing was queued.
     */
    RoundPlan beginRound(int initiator, Cycles now);

    /** Close the books on a planned round (histograms + trace span). */
    void finishRound(const RoundPlan &round);

    /** A retired walk found itself invalidated mid-flight. */
    void noteWalkReplay() { ++stats_.walk_replays; }
    /// @}

    /// @name Race detection (walk retire path)
    /// @{
    std::uint64_t epoch() const { return directory.epoch(); }

    bool
    invalidatedSince(Addr gva, std::uint64_t since_epoch) const
    {
        return directory.invalidatedSince(gva, since_epoch);
    }
    /// @}

    /** Register the shootdown.* and churn.* entries. */
    void registerMetrics(MetricsRegistry &reg, const std::string &prefix);

    struct Stats
    {
        std::uint64_t rounds = 0;
        std::uint64_t invalidations = 0; //!< queued by sources
        std::uint64_t tlb_entries = 0;   //!< dropped from per-core TLBs
        std::uint64_t pom_entries = 0;
        std::uint64_t walk_cache_entries = 0;
        std::uint64_t acks = 0;         //!< sw responder acks
        std::uint64_t acks_dropped = 0; //!< re-sent after timeout
        std::uint64_t walk_replays = 0;
        std::uint64_t churn_ops = 0;
        std::uint64_t migrate_pages = 0;
        std::uint64_t balloon_out_pages = 0;
        std::uint64_t balloon_in_pages = 0;
        std::uint64_t thp_promotes = 0;
        std::uint64_t thp_demotes = 0;
        std::uint64_t protect_pages = 0;
        Histogram round_latency{100, 64};  //!< 100-cycle bins
        Histogram ack_latency{100, 64};    //!< per-responder (sw)
        Histogram batch_occupancy{1, 33};  //!< invalidations per round
    };

    const Stats &stats() const { return stats_; }

  private:
    struct CoreSide
    {
        TlbHierarchy *tlb = nullptr;
        Walker *walker = nullptr;
    };

    /** Apply @p inv everywhere; @return per-core drop counts. */
    std::size_t applyInvalidation(const Invalidation &inv,
                                  std::vector<std::size_t> &core_drops);

    ChurnSpec spec_;
    std::vector<CoreSide> cores;
    PomTlb *pom_ = nullptr;
    FaultPlan *fault_plan = nullptr;
    TraceBuffer *tracer_ = nullptr;

    ShootdownBatcher batcher;
    CoherenceDirectory directory;
    Stats stats_;
};

} // namespace necpt

#endif // NECPT_COHERENCE_CONTROLLER_HH
