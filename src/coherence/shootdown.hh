/**
 * @file
 * The data plane of translation coherence: invalidation records, the
 * batcher that coalesces them into shootdown rounds, and the directory
 * that lets in-flight walks detect they raced with one.
 *
 * Everything here is deterministic bookkeeping — cycle math and event
 * scheduling live in the CoherenceController and the Simulator.
 */

#ifndef NECPT_COHERENCE_SHOOTDOWN_HH
#define NECPT_COHERENCE_SHOOTDOWN_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.hh"

namespace necpt
{

/** What kind of mutation produced an invalidation (trace detail). */
enum class InvalKind : std::uint8_t
{
    Unmap,   //!< balloon inflate: mapping gone, next access refaults
    Remap,   //!< migration: same gVA (and gPA), new backing frame
    Demote,  //!< 2MB split into 4KB pieces
    Promote, //!< 512 x 4KB collapsed into 2MB
    Protect, //!< permission downgrade (write-protect)
};

inline const char *
invalKindName(InvalKind kind)
{
    switch (kind) {
      case InvalKind::Unmap: return "unmap";
      case InvalKind::Remap: return "remap";
      case InvalKind::Demote: return "demote";
      case InvalKind::Promote: return "promote";
      case InvalKind::Protect: return "protect";
    }
    return "?";
}

/**
 * One pending invalidation. The guest-virtual range kills TLB / POM-TLB
 * / PWC entries; the guest-physical range (when the host re-backed
 * those frames) additionally kills NTLB/STC entries, which are keyed
 * by gPA. Ranges are page-aligned by construction.
 */
struct Invalidation
{
    Addr gva = invalid_addr;
    std::uint64_t bytes = 0;
    Addr gpa = invalid_addr; //!< invalid_addr = host backing untouched
    std::uint64_t gpa_bytes = 0;
    InvalKind kind = InvalKind::Unmap;
};

/**
 * FIFO coalescing buffer between the churn sources and the shootdown
 * rounds. Sources push as mutations happen; the controller pops up to
 * the spec's batch bound per round, amortizing the per-round IPI cost
 * over several invalidations (exactly why Linux batches its flushes).
 */
class ShootdownBatcher
{
  public:
    void push(const Invalidation &inv) { queue.push_back(inv); }

    bool empty() const { return queue.empty(); }
    std::size_t size() const { return queue.size(); }

    /** Pop up to @p max records, oldest first. */
    std::vector<Invalidation>
    pop(std::size_t max)
    {
        std::vector<Invalidation> batch;
        while (!queue.empty() && batch.size() < max) {
            batch.push_back(queue.front());
            queue.pop_front();
        }
        return batch;
    }

  private:
    std::deque<Invalidation> queue;
};

/**
 * Recent-invalidation directory: answers "was anything overlapping
 * this VA invalidated after epoch E?" — the question an in-flight walk
 * asks at retire time to detect that it raced with a shootdown and
 * must replay against the mutated page tables.
 *
 * A bounded ring keeps the last `capacity` records; queries reaching
 * past the ring answer true conservatively (a spurious replay is
 * correct, a missed one is not). Epochs are dense: one per recorded
 * invalidation.
 */
class CoherenceDirectory
{
  public:
    explicit CoherenceDirectory(std::size_t capacity = 256)
        : cap(capacity)
    {}

    std::uint64_t epoch() const { return epoch_; }

    void
    record(const Invalidation &inv)
    {
        ++epoch_;
        ring.push_back(Record{inv.gva, inv.bytes, epoch_});
        if (ring.size() > cap)
            ring.pop_front();
    }

    /** Was any VA in the page range containing @p gva invalidated
     *  strictly after @p since_epoch? */
    bool
    invalidatedSince(Addr gva, std::uint64_t since_epoch) const
    {
        if (epoch_ <= since_epoch)
            return false;
        // Records newer than since_epoch already evicted? Can't tell —
        // answer yes and let the (cheap, functional) replay decide.
        if (!ring.empty() && ring.front().epoch > since_epoch + 1)
            return true;
        if (ring.empty())
            return true;
        for (auto it = ring.rbegin(); it != ring.rend(); ++it) {
            if (it->epoch <= since_epoch)
                break;
            if (gva >= it->gva && gva - it->gva < it->bytes)
                return true;
        }
        return false;
    }

  private:
    struct Record
    {
        Addr gva;
        std::uint64_t bytes;
        std::uint64_t epoch;
    };

    std::size_t cap;
    std::deque<Record> ring;
    std::uint64_t epoch_ = 0;
};

} // namespace necpt

#endif // NECPT_COHERENCE_SHOOTDOWN_HH
