#include "sim/epoch.hh"

#include <algorithm>

#include "common/log.hh"
#include "sim/pump.hh"

namespace necpt
{

EpochBarrier::EpochBarrier(std::vector<CorePump> &pumps,
                           const ResidencyProbe &probe, int sim_threads,
                           double epoch_len)
    : pumps_(&pumps), probe_(&probe),
      nthreads(std::clamp(sim_threads, 1,
                          static_cast<int>(pumps.size()))),
      epoch_len_(epoch_len > 1.0 ? epoch_len : 1.0)
{
    // Thread 0 is the coordinator; spawn the rest of the pool. Workers
    // start parked on cv_work and live for the whole simulation.
    for (int t = 1; t < nthreads; ++t)
        workers.emplace_back([this, t] { workerMain(t); });
}

EpochBarrier::~EpochBarrier()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    cv_work.notify_all();
    for (std::thread &w : workers)
        w.join();
}

void
EpochBarrier::prime()
{
    epoch_end = epoch_len_;
    boundary(0.0);
}

void
EpochBarrier::boundary(double next_cycle)
{
    // Quantized epoch grid: land on the first boundary past the next
    // event, never mid-epoch (the epoch length is the shortest time
    // anything can cross the shared domain, so nothing is missed).
    while (epoch_end <= next_cycle)
        epoch_end += epoch_len_;

    bool low = false;
    for (const CorePump &p : *pumps_) {
        if (p.workload() && p.ringLow()) {
            low = true;
            break;
        }
    }
    if (!low)
        return;

    ++rendezvous_count;
    window_stamp = probe_->stamp();

    if (workers.empty()) {
        // Single-threaded: the coordinator is the whole pool. Same
        // refill code at the same points — the ring contents (and so
        // every downstream byte) cannot depend on the thread count.
        refillAssigned(0);
        return;
    }

    // Fork: wake the pool, do the coordinator's own share, then park
    // until the last worker checks back in. The mutex acquisitions on
    // both edges publish every ring write between the threads.
    {
        std::lock_guard<std::mutex> lock(mtx);
        ++fork_seq;
        done_count = 0;
    }
    cv_work.notify_all();

    refillAssigned(0);

    std::unique_lock<std::mutex> lock(mtx);
    cv_done.wait(lock, [this] {
        return done_count == static_cast<int>(workers.size());
    });
}

void
EpochBarrier::refillAssigned(int thread_id)
{
    std::vector<CorePump> &pumps = *pumps_;
    for (std::size_t i = 0; i < pumps.size(); ++i) {
        if (static_cast<int>(i) % nthreads != thread_id)
            continue;
        pumps[i].refill(window_stamp, *probe_);
    }
}

void
EpochBarrier::workerMain(int thread_id)
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mtx);
            cv_work.wait(lock, [this, seen] {
                return stopping || fork_seq != seen;
            });
            if (stopping)
                return;
            seen = fork_seq;
        }
        refillAssigned(thread_id);
        {
            std::lock_guard<std::mutex> lock(mtx);
            ++done_count;
        }
        cv_done.notify_one();
    }
}

} // namespace necpt
