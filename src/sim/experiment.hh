/**
 * @file
 * Experiment-runner helpers shared by the bench binaries: run a grid
 * of (configuration x application) simulations, environment-variable
 * run-length control, and fixed-width table printing in the style of
 * the paper's figures.
 *
 * Environment knobs (all optional):
 *   NECPT_WARMUP   warm-up accesses per run      (default 200000)
 *   NECPT_MEASURE  measured accesses per run     (default 1000000)
 *   NECPT_SCALE    Table-4 footprint divisor     (default 32)
 *   NECPT_APPS     comma-separated app subset    (default: all 11)
 *   NECPT_FULL     =1: 4x longer runs, scale 16
 */

#ifndef NECPT_SIM_EXPERIMENT_HH
#define NECPT_SIM_EXPERIMENT_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace necpt
{

/** SimParams honoring the environment knobs. */
SimParams paramsFromEnv();

/** Worker count for runGrid (NECPT_JOBS; default min(4, hw)). */
int jobsFromEnv();

/**
 * @p params with the measured/warm-up run lengths divided — the
 * standard shortening the wide-grid benches apply (divisors of 0 or
 * 1 leave the phase untouched).
 */
SimParams scaledParams(SimParams params, std::uint64_t measure_div,
                       std::uint64_t warmup_div);

/**
 * Restore the shared resources @p cores multiprogrammed cores
 * actually share: cores x 2MB L3 slices and the machine's DRAM
 * channels (the single-core default models a 1/4 share of the
 * paper's 8-core machine).
 */
void configureSharedResources(ExperimentConfig &config, int cores);

/** Application list honoring NECPT_APPS. */
std::vector<std::string> appsFromEnv();

/** Results keyed by (config name, app name). */
class ResultGrid
{
  public:
    void
    add(const SimResult &result)
    {
        grid[{result.config, result.app}] = result;
    }

    const SimResult &
    at(const std::string &config, const std::string &app) const
    {
        return grid.at({config, app});
    }

    bool
    has(const std::string &config, const std::string &app) const
    {
        return grid.count({config, app}) > 0;
    }

  private:
    std::map<std::pair<std::string, std::string>, SimResult> grid;
};

/**
 * Run every (config, app) pair, logging progress to stderr.
 *
 * Runs are independent (each builds its own machine), so they execute
 * on a small thread pool; NECPT_JOBS overrides the worker count
 * (default: min(4, hardware threads), 1 disables threading). Results
 * are deterministic regardless of the worker count.
 */
ResultGrid runGrid(const std::vector<ExperimentConfig> &configs,
                   const std::vector<std::string> &apps,
                   const SimParams &params);

/** Speedup of @p config over @p baseline for @p app (cycle ratio). */
double speedupOver(const ResultGrid &grid, const std::string &baseline,
                   const std::string &config, const std::string &app);

/// @name Table printing
/// @{
void printHeader(const std::string &title);
void printRow(const std::string &label,
              const std::vector<double> &values, int width = 9,
              int precision = 3);
void printColumns(const std::string &label,
                  const std::vector<std::string> &columns, int width = 9);
/// @}

} // namespace necpt

#endif // NECPT_SIM_EXPERIMENT_HH
