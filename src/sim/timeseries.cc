#include "sim/timeseries.hh"

#include "common/log.hh"

#include <cstdio>
#include <fstream>

namespace necpt
{

void
TimeSeriesBuffer::record(double cycle,
                         const std::map<std::string, double> &snap)
{
    if (names_.empty()) {
        names_.reserve(snap.size());
        for (const auto &kv : snap)
            names_.push_back(kv.first);
    }
    NECPT_ASSERT(snap.size() == names_.size());
    std::vector<double> row;
    row.reserve(names_.size() + 1);
    row.push_back(cycle);
    for (const auto &kv : snap)
        row.push_back(kv.second);
    rows_.push_back(std::move(row));
}

namespace
{

void
appendDouble(std::string &out, double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    out += buf;
}

std::string
jsonEscape(const std::string &in)
{
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

std::string
timeseriesToJson(const std::vector<TimeSeriesRun> &runs,
                 std::uint64_t interval)
{
    std::string out;
    out += "{\"schema\":\"necpt-timeseries-v1\",\"interval\":";
    out += std::to_string(interval);
    out += ",\"runs\":[";
    bool first_run = true;
    for (const TimeSeriesRun &run : runs) {
        if (!run.buffer)
            continue;
        if (!first_run)
            out += ',';
        first_run = false;
        out += "{\"key\":\"";
        out += jsonEscape(run.key);
        out += "\",\"series\":[";
        const auto &names = run.buffer->series();
        for (std::size_t i = 0; i < names.size(); ++i) {
            if (i)
                out += ',';
            out += '"';
            out += jsonEscape(names[i]);
            out += '"';
        }
        out += "],\"samples\":[";
        const auto &rows = run.buffer->samples();
        for (std::size_t r = 0; r < rows.size(); ++r) {
            if (r)
                out += ',';
            out += '[';
            for (std::size_t c = 0; c < rows[r].size(); ++c) {
                if (c)
                    out += ',';
                appendDouble(out, rows[r][c]);
            }
            out += ']';
        }
        out += "]}";
    }
    out += "]}\n";
    return out;
}

bool
writeTimeseriesJson(const std::string &path,
                    const std::vector<TimeSeriesRun> &runs,
                    std::uint64_t interval)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << timeseriesToJson(runs, interval);
    return static_cast<bool>(out);
}

} // namespace necpt
