/**
 * @file
 * Per-core event pump: one core's slice of the sharded timing core.
 *
 * The global event scheduler of the single-threaded core is split into
 * per-core pumps plus a shared-resource domain (sim/shared_domain.hh).
 * Each pump owns
 *
 *  - the core's *event queue*: every Step and Retire event of core c
 *    carries priority c, so routing by priority partitions the old
 *    global heap exactly; and
 *  - the core's *lookahead ring*: the private mailbox the epoch
 *    barrier's worker threads fill during rendezvous windows with the
 *    core's upcoming workload accesses and their page-residency
 *    verdicts, each stamped with the page-table mutation epoch it was
 *    computed under; and, when spec planning is enabled, an
 *    index-parallel ring of *speculative walk plans*
 *    (walk/spec_plan.hh) — the pure-function slice of each upcoming
 *    access's would-be page walk (probe-address hashing, functional
 *    translations), precomputed under the same stamp so the walk
 *    machine can consume it instead of recomputing.
 *
 * Determinism: queue ordering uses the same canonical key as the old
 * single heap (sim/epoch.hh), sequence numbers are drawn from one
 * shared counter in coordinator commit order, and ring entries —
 * verdicts and walk plans alike — are pure functions of (workload
 * stream, page tables at the recorded stamp), consumed only while that
 * stamp is provably current — so the merged schedule is byte-identical
 * to the single-threaded one for any --sim-threads.
 */

#ifndef NECPT_SIM_PUMP_HH
#define NECPT_SIM_PUMP_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/function_ref.hh"
#include "sim/epoch.hh"
#include "sim/sched.hh"
#include "walk/spec_plan.hh"
#include "workloads/workload.hh"

namespace necpt
{

/** Shared scheduling context: the global sequence counter, the
 *  currently-executing event (parent for dependency edges), and the
 *  optional edge sink. One instance per simulation, referenced by
 *  every pump queue and the shared domain's queue — sequence numbers
 *  are allocated in coordinator commit order, never by workers. */
struct SchedContext
{
    std::uint64_t next_seq = 0;
    std::uint64_t running_seq = EventScheduler::no_event;
    EventEdgeSink *edges = nullptr;
};

/**
 * One simulated core's event queue plus its lookahead ring.
 */
class CorePump
{
  public:
    using Handler = EventScheduler::Handler;

    CorePump(SchedContext &context, int core_index)
        : ctx(&context), core_(core_index)
    {}

    int coreIndex() const { return core_; }

    /// @name Event queue (canonical-key ordered)
    /// @{
    std::uint64_t
    at(double cycle, std::int64_t prio, Handler fn, std::uint8_t kind)
    {
        const std::uint64_t seq = ctx->next_seq++;
        heap.push_back(Event{cycle, prio, seq, fn});
        std::push_heap(heap.begin(), heap.end(), EventAfter{});
        if (ctx->edges)
            ctx->edges->onEvent(seq, ctx->running_seq, cycle, prio,
                                kind);
        return seq;
    }

    bool queueEmpty() const { return heap.empty(); }

    /** Canonical key of the queue head; only valid when non-empty. */
    CanonicalKey
    headKey() const
    {
        const Event &e = heap.front();
        return CanonicalKey{e.cycle, e.prio, core_, e.seq};
    }

    /** Pop and run the head event (coordinator thread only). */
    void
    runHead()
    {
        std::pop_heap(heap.begin(), heap.end(), EventAfter{});
        Event ev = heap.back();
        heap.pop_back();
        ctx->running_seq = ev.seq;
        ev.fn();
        ctx->running_seq = EventScheduler::no_event;
    }
    /// @}

    /// @name Lookahead ring
    /// The private phase's product: upcoming accesses of this core's
    /// workload stream with their residency verdicts. Filled by one
    /// worker during rendezvous windows (exclusive access — the
    /// coordinator is parked at the barrier), consumed by the
    /// coordinator between windows. Never touched by two threads at
    /// once, so no atomics are needed; the barrier's mutex pair
    /// publishes the writes.
    /// @{
    struct AccessPlan
    {
        MemAccess access;
        /** ensureResident() would be a pure no-op for this address. */
        bool resident = false;
        /** Page-table mutation stamp the verdict was computed under;
         *  a consumer seeing a newer stamp must re-verify. */
        std::uint64_t stamp = 0;
    };

    /** Attach the workload stream the ring prefetches from. The pump
     *  never owns it; the simulator's core state does. */
    void bindWorkload(Workload *w) { workload_ = w; }
    Workload *workload() const { return workload_; }

    /** Reserve ring capacity once (steady-state refills are then
     *  allocation-free on every worker thread). */
    void
    reserveRing(std::size_t capacity)
    {
        ring.reserve(capacity);
        ring_capacity = capacity;
    }

    bool ringEmpty() const { return ring_head >= ring.size(); }
    std::size_t ringSize() const { return ring.size() - ring_head; }
    bool
    ringLow() const
    {
        return ring_capacity > 0 && ringSize() < ring_capacity / 4;
    }
    std::size_t ringCapacity() const { return ring_capacity; }

    /** Next prefetched access; only valid when !ringEmpty(). */
    const AccessPlan &ringFront() const { return ring[ring_head]; }

    /** Speculative walk plan for the front access (null when spec
     *  planning is off). Valid — like ringFront()'s referent — until
     *  the next refill(): ringPop() only advances the head, it never
     *  recycles storage, so a consumer may hold the pointer across the
     *  pop for the rest of its step. */
    const SpecWalkPlan *
    ringFrontSpec() const
    {
        return ring_head < plans.size() ? &plans[ring_head] : nullptr;
    }

    void
    ringPop()
    {
        // Consumed entries stay in place until the next refill()
        // compacts them — ringFront()/ringFrontSpec() referents must
        // outlive the pop (see ringFrontSpec), and refills only happen
        // at epoch boundaries, never mid-step.
        ++ring_head;
    }

    /**
     * Turn on speculative walk-plan precomputation: every refilled
     * ring entry gets a SpecWalkPlan computed by @p p alongside its
     * residency verdict (same rendezvous window, same exclusive-access
     * guarantee). The planner must be side-effect free and thread-safe
     * for concurrent const table reads — it runs on whichever epoch
     * worker owns this pump. Call after reserveRing().
     */
    using SpecPlanner = FunctionRef<void(
        Addr, std::uint64_t, std::vector<Addr> &, SpecWalkPlan &)>;

    void
    enableSpecPlans(SpecPlanner p)
    {
        spec_planner = p;
        plans.reserve(ring_capacity);
        // Generously sized for probeAddrs' worst case (all ways, both
        // generations); reserved once so worker refills never touch
        // the heap.
        spec_scratch.reserve(2 * SpecProbeSet::max_plan_ways
                             * SpecProbeSet::max_gens);
    }

    bool specPlansEnabled() const { return bool(spec_planner); }

    /** Worker-side refill (rendezvous window only): advance the bound
     *  workload up to the free capacity, recording @p stamp-validated
     *  residency verdicts from @p probe — and, when spec planning is
     *  on, the matching speculative walk plans. Allocation-free once
     *  the ring is reserved. */
    void
    refill(std::uint64_t stamp, const ResidencyProbe &probe)
    {
        if (!workload_)
            return;
        // Compact consumed entries first so capacity means capacity.
        if (ring_head > 0) {
            ring.erase(ring.begin(),
                       ring.begin()
                           + static_cast<std::ptrdiff_t>(ring_head));
            if (!plans.empty())
                plans.erase(plans.begin(),
                            plans.begin()
                                + static_cast<std::ptrdiff_t>(
                                      ring_head));
            ring_head = 0;
        }
        while (ring.size() < ring_capacity) {
            AccessPlan plan;
            plan.access = workload_->next();
            plan.resident = probe.resident(plan.access.vaddr);
            plan.stamp = stamp;
            ring.push_back(plan);
            if (spec_planner) {
                plans.emplace_back();
                spec_planner(plan.access.vaddr, stamp, spec_scratch,
                             plans.back());
            }
        }
    }
    /// @}

  private:
    struct Event
    {
        double cycle;
        std::int64_t prio;
        std::uint64_t seq;
        Handler fn;
    };

    /** Same strict weak ordering as the legacy single heap. */
    struct EventAfter
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.cycle != b.cycle)
                return a.cycle > b.cycle;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    SchedContext *ctx;
    int core_;
    std::vector<Event> heap;

    Workload *workload_ = nullptr;
    std::vector<AccessPlan> ring;
    std::size_t ring_head = 0;
    std::size_t ring_capacity = 0;

    /** Speculative walk plans, index-parallel to `ring` (empty when
     *  spec planning is off). Filled by the same worker in the same
     *  window, under the same publication rules. */
    std::vector<SpecWalkPlan> plans;
    /** Reusable probe-address scratch for the planner (this pump's
     *  worker only — never shared, so concurrent refills don't race). */
    std::vector<Addr> spec_scratch;
    SpecPlanner spec_planner;
};

} // namespace necpt

#endif // NECPT_SIM_PUMP_HH
