/**
 * @file
 * Result export: CSV and JSON serialization of SimResult, so external
 * tooling (plots, regression dashboards) can consume simulation
 * output without parsing bench text.
 */

#ifndef NECPT_SIM_REPORT_HH
#define NECPT_SIM_REPORT_HH

#include <cstdio>
#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace necpt
{

/** Write the CSV header row matching writeCsvRow(). */
void writeCsvHeader(std::FILE *out);

/** Write one result as a CSV row. */
void writeCsvRow(std::FILE *out, const SimResult &result);

/** Serialize one result as a JSON object. */
std::string toJson(const SimResult &result);

/** Write a whole result set as CSV to @p path. @return success. */
bool writeCsvFile(const std::string &path,
                  const std::vector<SimResult> &results);

} // namespace necpt

#endif // NECPT_SIM_REPORT_HH
