/**
 * @file
 * Experiment configurations: the Table-1 page-table architectures (and
 * the Section-9.6 baselines), each mapping to a SystemConfig plus a
 * walker selection, with the Table-2 machine parameters.
 */

#ifndef NECPT_SIM_CONFIG_HH
#define NECPT_SIM_CONFIG_HH

#include <string>
#include <vector>

#include "mem/hierarchy.hh"
#include "mmu/tlb.hh"
#include "os/system.hh"
#include "walk/nested_ecpt.hh"

namespace necpt
{

/** Which walk state machine services L2-TLB misses. */
enum class WalkerKind
{
    NativeRadix,
    NestedRadix,
    NativeEcpt,
    NestedEcpt,
    NestedHybrid,
    AgilePagingIdeal,
    PomTlb,
    FlatNested,
    ShadowPaging,
    NestedHpt,
};

/** One evaluated configuration (a Table-1 row or a 9.6 baseline). */
struct ExperimentConfig
{
    std::string name;
    WalkerKind walker = WalkerKind::NestedRadix;
    bool thp = false;
    NestedEcptFeatures features = NestedEcptFeatures::advanced();
    SystemConfig system;
    MemHierarchyConfig memory;
    TlbConfig tlb;
};

/** The Table-1 configuration identifiers. */
enum class ConfigId
{
    Radix,
    RadixThp,
    Ecpt,
    EcptThp,
    NestedRadix,
    NestedRadixThp,
    NestedEcpt,
    NestedEcptThp,
    NestedHybrid,
    NestedHybridThp,
    // Design-space / baseline extras:
    PlainNestedEcpt,
    PlainNestedEcptThp,
    AgilePagingIdeal,
    AgilePagingIdealThp,
    PomTlb,
    PomTlbThp,
    FlatNested,
    FlatNestedThp,
    ShadowPaging,
    ShadowPagingThp,
    NestedHpt, //!< classic nested HPT (Section 2.2; 4KB pages only)
};

/** Build the full ExperimentConfig for a Table-1 (or baseline) row. */
ExperimentConfig makeConfig(ConfigId id);

/** Variant of Nested ECPT with an explicit feature subset (Figure 9
 *  technique breakdown). */
ExperimentConfig makeNestedEcptConfig(const NestedEcptFeatures &features,
                                      bool thp, const std::string &name);

/** All Table-1 rows, paper order. */
std::vector<ConfigId> table1Configs();

/** Short printable name of a ConfigId. */
std::string configName(ConfigId id);

/**
 * Per-application guest THP coverage: how much of the footprint can be
 * backed by 2MB pages when THP is enabled. GUPS/SysBench cover nearly
 * everything (Section 9.1), MUMmer almost everything (Figure 14), the
 * graph kernels considerably less.
 */
double appGuestThpCoverage(const std::string &app);

/**
 * Per-application *host* THP coverage: hypervisors hosting very large
 * VMs (GUPS/SysBench are 64GB in Table 4) fight much harder for 2MB
 * host allocations, leaving a bigger 4KB-backed residue — the source
 * of the low Step-3 PTE hit rates Figure 12 shows for exactly those
 * two applications.
 */
double appHostThpCoverage(const std::string &app);

} // namespace necpt

#endif // NECPT_SIM_CONFIG_HH
