/**
 * @file
 * Deterministic event scheduler for the timing core.
 *
 * Events are ordered by (cycle, priority, submission sequence): cycle
 * is the simulated time (a double, matching the cores' fractional
 * clocks), priority breaks same-cycle ties between event classes
 * (memory-completion pumps run at -1, core steps at their core index —
 * reproducing the legacy "advance the lowest-indexed earliest core"
 * rule), and the monotonically increasing sequence number makes the
 * remaining ties deterministic regardless of heap internals. No
 * wall-clock or randomness is involved, so a run's event stream is a
 * pure function of its inputs — the property the sweep engine's
 * byte-identical-at-any---jobs contract rests on.
 *
 * Handlers are stored inline: an event closure must be trivially
 * copyable and fit handler_bytes (both checked at compile time), which
 * every simulator event satisfies by capturing a pointer to long-lived
 * loop state plus a few scalars. Scheduling an event therefore never
 * heap-allocates — the hot loop runs millions of them.
 */

#ifndef NECPT_SIM_SCHED_HH
#define NECPT_SIM_SCHED_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <vector>

#include "common/log.hh"

namespace necpt
{

/**
 * Observer for the scheduler's event-dependency graph. When attached,
 * every scheduled event is reported together with the sequence number
 * of the event whose handler scheduled it (its parent) — the edges of
 * the run's happens-because DAG, which the critical-path analyzer
 * walks backwards to explain end-to-end latency. @c kind is an opaque
 * caller-defined tag (the simulator passes SimEventKind).
 */
class EventEdgeSink
{
  public:
    virtual ~EventEdgeSink() = default;
    virtual void onEvent(std::uint64_t seq, std::uint64_t parent,
                         double cycle, std::int64_t priority,
                         std::uint8_t kind) = 0;
};

/**
 * A (cycle, priority, sequence)-ordered run queue of closures.
 */
class EventScheduler
{
  public:
    /** Inline closure capacity: a pointer to the loop state plus a
     *  handful of scalars. Raise it if a new event legitimately needs
     *  more — the static_assert names the offender. */
    static constexpr std::size_t handler_bytes = 48;

    /** A trivially-copyable closure stored inline (no heap). */
    class Handler
    {
      public:
        template <typename F,
                  typename = std::enable_if_t<
                      !std::is_same_v<std::remove_cvref_t<F>, Handler>>>
        Handler(F fn)
        {
            static_assert(std::is_trivially_copyable_v<F>,
                          "event closures must be trivially copyable "
                          "(capture pointers/scalars, not owning state)");
            static_assert(sizeof(F) <= handler_bytes,
                          "event closure exceeds the scheduler's inline "
                          "storage; shrink it or raise handler_bytes");
            static_assert(alignof(F) <= alignof(std::max_align_t));
            ::new (static_cast<void *>(storage)) F(fn);
            invoke = [](const void *s) {
                (*static_cast<const F *>(
                    static_cast<const void *>(s)))();
            };
        }

        void operator()() const { invoke(storage); }

      private:
        alignas(std::max_align_t) unsigned char storage[handler_bytes];
        void (*invoke)(const void *) = nullptr;
    };

    /**
     * Enqueue @p fn at @p cycle with tie-break priority @p prio.
     * @p kind is an opaque tag forwarded to the edge sink (unused —
     * one dead branch — when no sink is attached).
     * @return the event's sequence number.
     */
    std::uint64_t
    at(double cycle, std::int64_t prio, Handler fn,
       std::uint8_t kind = 0)
    {
        const std::uint64_t seq = next_seq++;
        heap.push_back(Event{cycle, prio, seq, fn});
        std::push_heap(heap.begin(), heap.end(), After{});
        if (edges)
            edges->onEvent(seq, running_seq, cycle, prio, kind);
        return seq;
    }

    /**
     * Attach (or detach, with nullptr) the dependency observer. Attach
     * before the first at() call so sinks can index nodes by seq.
     */
    void setEdgeSink(EventEdgeSink *sink) { edges = sink; }

    /** Sequence of the event currently executing (no_event outside a
     *  handler) — the parent assigned to events scheduled now. */
    static constexpr std::uint64_t no_event = ~0ULL;
    std::uint64_t runningSeq() const { return running_seq; }

    bool empty() const { return heap.empty(); }
    std::size_t size() const { return heap.size(); }

    /** Cycle of the next event to run; only valid when !empty(). */
    double
    nextCycle() const
    {
        NECPT_ASSERT(!heap.empty());
        return heap.front().cycle;
    }

    /**
     * Pop and run the earliest event. The handler may enqueue further
     * events (including at the current cycle — they run after every
     * already-queued same-cycle event of equal priority).
     */
    void
    runNext()
    {
        NECPT_ASSERT(!heap.empty());
        std::pop_heap(heap.begin(), heap.end(), After{});
        Event ev = heap.back();
        heap.pop_back();
        running_seq = ev.seq;
        ev.fn();
        running_seq = no_event;
    }

  private:
    struct Event
    {
        double cycle;
        std::int64_t prio;
        std::uint64_t seq;
        Handler fn;
    };

    /** Strict weak ordering: does @p a run after @p b? */
    struct After
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.cycle != b.cycle)
                return a.cycle > b.cycle;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    std::vector<Event> heap;
    std::uint64_t next_seq = 0;
    std::uint64_t running_seq = no_event;
    EventEdgeSink *edges = nullptr;
};

} // namespace necpt

#endif // NECPT_SIM_SCHED_HH
