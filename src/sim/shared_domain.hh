/**
 * @file
 * Shared-resource domain of the thread-sharded timing core.
 *
 * The legacy single event heap is partitioned: events whose priority
 * is a core index (steps and retires — priority == core by the
 * scheduler's contract) live on that core's pump (sim/pump.hh), and
 * everything touching shared resources lives here — coherence churn
 * and shootdown rounds on the domain queue (-2: cross-core
 * invalidation traffic, which is thereby epoch-aligned — it commits
 * through the same canonical merge the cores do), the interval
 * sampler (int64 max), and memory-completion pumps (priority -1: the
 * L3/DRAM side) on a dedicated cycle calendar (armPump) that skips
 * the Handler machinery entirely.
 *
 * Commit order is the canonical (cycle, priority, core, sequence) key
 * (sim/epoch.hh): runNext() merges the K pump heads with the domain
 * head and runs the earliest. Sequence numbers come from the one
 * shared counter (SchedContext) and every at() call happens on the
 * coordinator thread inside event handlers, so the merged stream is
 * byte-identical to the legacy single heap — the heap was only ever a
 * different container for the same total order.
 *
 * The interface mirrors EventScheduler (at / empty / nextCycle /
 * runNext / runningSeq / setEdgeSink) so the simulator's event loop is
 * oblivious to the sharding.
 */

#ifndef NECPT_SIM_SHARED_DOMAIN_HH
#define NECPT_SIM_SHARED_DOMAIN_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/function_ref.hh"
#include "common/log.hh"
#include "sim/epoch.hh"
#include "sim/pump.hh"
#include "sim/sched.hh"

namespace necpt
{

/**
 * The domain queue plus the canonical merge over the per-core pumps.
 */
class SharedDomain
{
  public:
    using Handler = EventScheduler::Handler;

    /** Callback for memory-completion pumps (see armPump). */
    using PumpSink = FunctionRef<void(double)>;

    /** Wire up after the pump vector is fully built (its address must
     *  be stable from here on). */
    void
    attach(SchedContext *context, std::vector<CorePump> *core_pumps)
    {
        ctx = context;
        pumps = core_pumps;
        ncores = static_cast<std::int64_t>(core_pumps->size());
    }

    /**
     * Enqueue @p fn at @p cycle with tie-break priority @p prio,
     * routed by priority: core indices go to that core's pump,
     * everything else to the domain queue.
     */
    std::uint64_t
    at(double cycle, std::int64_t prio, Handler fn,
       std::uint8_t kind = 0)
    {
        NECPT_ASSERT(ctx != nullptr);
        // Priority -1 is reserved for the pump calendar (armPump):
        // a heap event there would be order-ambiguous against it.
        NECPT_ASSERT(prio != -1);
        head_valid = false;
        if (prio >= 0 && prio < ncores)
            return (*pumps)[static_cast<std::size_t>(prio)].at(
                cycle, prio, fn, kind);
        const std::uint64_t seq = ctx->next_seq++;
        heap.push_back(Event{cycle, prio, seq, fn});
        std::push_heap(heap.begin(), heap.end(), After{});
        if (ctx->edges)
            ctx->edges->onEvent(seq, ctx->running_seq, cycle, prio,
                                kind);
        return seq;
    }

    void setEdgeSink(EventEdgeSink *sink) { ctx->edges = sink; }

    /**
     * Register the handler every pump calendar entry fires into, and
     * the edge-sink kind tag its fires report (SimEventKind::EvPump).
     */
    void
    setPumpSink(PumpSink sink, std::uint8_t kind = 0)
    {
        pump_sink = sink;
        pump_kind = kind;
    }

    /**
     * Schedule a memory-completion pump at @p cycle (priority -1).
     *
     * Pumps are the one event class hot enough to deserve a bypass of
     * the Handler machinery: every overlapped-walk memory transaction
     * arms one, and each is the *same* call (drainUntil at its cycle).
     * So instead of a 64-byte closure on the domain heap, a pump is a
     * bare double on a min-heap of cycles, fanned into the registered
     * sink at commit time. Entries sharing a cycle collapse into one
     * sink call — the duplicates were no-op drains anyway — and fires
     * allocate their sequence number at commit, which no other event
     * can observe: priority -1 is calendar-exclusive, so a sequence
     * comparison against a pump never happens, and renumbering the
     * remaining events preserves their relative order.
     */
    void
    armPump(double cycle)
    {
        NECPT_ASSERT(pump_sink);
        head_valid = false;
        pump_heap.push_back(cycle);
        std::push_heap(pump_heap.begin(), pump_heap.end(),
                       std::greater<double>{});
    }

    std::uint64_t runningSeq() const { return ctx->running_seq; }

    bool
    empty() const
    {
        if (!heap.empty() || !pump_heap.empty())
            return false;
        for (const CorePump &p : *pumps)
            if (!p.queueEmpty())
                return false;
        return true;
    }

    /** Cycle of the next event to commit; only valid when !empty().
     *  The winning head is memoized: the event loop asks nextCycle()
     *  then immediately runNext(), and nothing between the two can
     *  mutate a queue (at() and runHead() both invalidate), so the
     *  K+1-way canonical merge runs once per committed event instead
     *  of twice. */
    double
    nextCycle() const
    {
        refreshHead();
        return head_key.cycle;
    }

    /** Commit the canonically-earliest event across all queues. */
    void
    runNext()
    {
        refreshHead();
        const int core = head_src;
        head_valid = false;
        if (core >= 0) {
            (*pumps)[static_cast<std::size_t>(core)].runHead();
            return;
        }
        if (core == -3) {
            const double cyc = pump_heap.front();
            do {
                std::pop_heap(pump_heap.begin(), pump_heap.end(),
                              std::greater<double>{});
                pump_heap.pop_back();
            } while (!pump_heap.empty() && pump_heap.front() == cyc);
            const std::uint64_t seq = ctx->next_seq++;
            if (ctx->edges)
                ctx->edges->onEvent(seq, EventScheduler::no_event, cyc,
                                    -1, pump_kind);
            ctx->running_seq = seq;
            pump_sink(cyc);
            ctx->running_seq = EventScheduler::no_event;
            return;
        }
        std::pop_heap(heap.begin(), heap.end(), After{});
        Event ev = heap.back();
        heap.pop_back();
        ctx->running_seq = ev.seq;
        ev.fn();
        ctx->running_seq = EventScheduler::no_event;
    }

  private:
    struct Event
    {
        double cycle;
        std::int64_t prio;
        std::uint64_t seq;
        Handler fn;
    };

    /** Same strict weak ordering as the legacy single heap. */
    struct After
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.cycle != b.cycle)
                return a.cycle > b.cycle;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    /** Recompute the memoized winning head if stale. */
    void
    refreshHead() const
    {
        if (!head_valid) {
            head_key = headKey(head_src);
            head_valid = true;
        }
    }

    /** Canonical minimum over the K+1 heads (plus the pump calendar).
     *  @p src gets the winning pump's core index, -1 for the domain
     *  queue, or -3 for the pump calendar. */
    CanonicalKey
    headKey(int &src) const
    {
        NECPT_ASSERT(!empty());
        CanonicalKey best{};
        src = -2;
        if (!heap.empty()) {
            const Event &e = heap.front();
            // The domain's core slot is -1: it never collides with a
            // pump (domain priorities are outside [0, ncores)), and
            // the canonical comparator never reaches the core field
            // on distinct priorities anyway.
            best = CanonicalKey{e.cycle, e.prio, -1, e.seq};
            src = -1;
        }
        if (!pump_heap.empty()) {
            // Calendar entries carry only a cycle; their canonical key
            // is (cycle, -1, -, -), and since priority -1 is calendar-
            // exclusive (asserted in at()) the comparison never falls
            // through to the core or sequence fields.
            const CanonicalKey k{pump_heap.front(), -1, -1, 0};
            if (src == -2 || k.before(best)) {
                best = k;
                src = -3;
            }
        }
        for (std::size_t i = 0; i < pumps->size(); ++i) {
            const CorePump &p = (*pumps)[i];
            if (p.queueEmpty())
                continue;
            const CanonicalKey k = p.headKey();
            if (src == -2 || k.before(best)) {
                best = k;
                src = static_cast<int>(i);
            }
        }
        return best;
    }

    SchedContext *ctx = nullptr;
    std::vector<CorePump> *pumps = nullptr;
    std::int64_t ncores = 0;
    std::vector<Event> heap;
    /** Min-heap of pump cycles (see armPump). */
    std::vector<double> pump_heap;
    PumpSink pump_sink;
    std::uint8_t pump_kind = 0;
    /** Memoized result of headKey() (see nextCycle()). */
    mutable bool head_valid = false;
    mutable CanonicalKey head_key{};
    mutable int head_src = -2;
};

} // namespace necpt

#endif // NECPT_SIM_SHARED_DOMAIN_HH
