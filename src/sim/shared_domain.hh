/**
 * @file
 * Shared-resource domain of the thread-sharded timing core.
 *
 * The legacy single event heap is partitioned: events whose priority
 * is a core index (steps and retires — priority == core by the
 * scheduler's contract) live on that core's pump (sim/pump.hh), and
 * everything touching shared resources lives here on the domain
 * queue — memory-completion pumps (priority -1: the L3/DRAM side),
 * coherence churn and shootdown rounds (-2: cross-core invalidation
 * traffic, which is thereby epoch-aligned — it commits through the
 * same canonical merge the cores do), and the interval sampler
 * (int64 max).
 *
 * Commit order is the canonical (cycle, priority, core, sequence) key
 * (sim/epoch.hh): runNext() merges the K pump heads with the domain
 * head and runs the earliest. Sequence numbers come from the one
 * shared counter (SchedContext) and every at() call happens on the
 * coordinator thread inside event handlers, so the merged stream is
 * byte-identical to the legacy single heap — the heap was only ever a
 * different container for the same total order.
 *
 * The interface mirrors EventScheduler (at / empty / nextCycle /
 * runNext / runningSeq / setEdgeSink) so the simulator's event loop is
 * oblivious to the sharding.
 */

#ifndef NECPT_SIM_SHARED_DOMAIN_HH
#define NECPT_SIM_SHARED_DOMAIN_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "sim/epoch.hh"
#include "sim/pump.hh"
#include "sim/sched.hh"

namespace necpt
{

/**
 * The domain queue plus the canonical merge over the per-core pumps.
 */
class SharedDomain
{
  public:
    using Handler = EventScheduler::Handler;

    /** Wire up after the pump vector is fully built (its address must
     *  be stable from here on). */
    void
    attach(SchedContext *context, std::vector<CorePump> *core_pumps)
    {
        ctx = context;
        pumps = core_pumps;
        ncores = static_cast<std::int64_t>(core_pumps->size());
    }

    /**
     * Enqueue @p fn at @p cycle with tie-break priority @p prio,
     * routed by priority: core indices go to that core's pump,
     * everything else to the domain queue.
     */
    std::uint64_t
    at(double cycle, std::int64_t prio, Handler fn,
       std::uint8_t kind = 0)
    {
        NECPT_ASSERT(ctx != nullptr);
        if (prio >= 0 && prio < ncores)
            return (*pumps)[static_cast<std::size_t>(prio)].at(
                cycle, prio, fn, kind);
        const std::uint64_t seq = ctx->next_seq++;
        heap.push_back(Event{cycle, prio, seq, fn});
        std::push_heap(heap.begin(), heap.end(), After{});
        if (ctx->edges)
            ctx->edges->onEvent(seq, ctx->running_seq, cycle, prio,
                                kind);
        return seq;
    }

    void setEdgeSink(EventEdgeSink *sink) { ctx->edges = sink; }

    std::uint64_t runningSeq() const { return ctx->running_seq; }

    bool
    empty() const
    {
        if (!heap.empty())
            return false;
        for (const CorePump &p : *pumps)
            if (!p.queueEmpty())
                return false;
        return true;
    }

    /** Cycle of the next event to commit; only valid when !empty(). */
    double
    nextCycle() const
    {
        int core;
        return headKey(core).cycle;
    }

    /** Commit the canonically-earliest event across all queues. */
    void
    runNext()
    {
        int core;
        const CanonicalKey key = headKey(core);
        if (core >= 0) {
            (*pumps)[static_cast<std::size_t>(core)].runHead();
            return;
        }
        (void)key;
        std::pop_heap(heap.begin(), heap.end(), After{});
        Event ev = heap.back();
        heap.pop_back();
        ctx->running_seq = ev.seq;
        ev.fn();
        ctx->running_seq = EventScheduler::no_event;
    }

  private:
    struct Event
    {
        double cycle;
        std::int64_t prio;
        std::uint64_t seq;
        Handler fn;
    };

    /** Same strict weak ordering as the legacy single heap. */
    struct After
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.cycle != b.cycle)
                return a.cycle > b.cycle;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    /** Canonical minimum over the K+1 heads. @p src gets the winning
     *  pump's core index, or -1 for the domain queue. */
    CanonicalKey
    headKey(int &src) const
    {
        NECPT_ASSERT(!empty());
        CanonicalKey best{};
        src = -2;
        if (!heap.empty()) {
            const Event &e = heap.front();
            // The domain's core slot is -1: it never collides with a
            // pump (domain priorities are outside [0, ncores)), and
            // the canonical comparator never reaches the core field
            // on distinct priorities anyway.
            best = CanonicalKey{e.cycle, e.prio, -1, e.seq};
            src = -1;
        }
        for (std::size_t i = 0; i < pumps->size(); ++i) {
            const CorePump &p = (*pumps)[i];
            if (p.queueEmpty())
                continue;
            const CanonicalKey k = p.headKey();
            if (src == -2 || k.before(best)) {
                best = k;
                src = static_cast<int>(i);
            }
        }
        return best;
    }

    SchedContext *ctx = nullptr;
    std::vector<CorePump> *pumps = nullptr;
    std::int64_t ncores = 0;
    std::vector<Event> heap;
};

} // namespace necpt

#endif // NECPT_SIM_SHARED_DOMAIN_HH
