#include "sim/cacti_lite.hh"

namespace necpt
{

namespace
{
// 22nm-calibrated constants (fit against Cacti 6.5 numbers of the kind
// Table 3 reports for these very small SRAM structures).
constexpr double area_fixed_mm2 = 0.002;   //!< decoders/comparators
constexpr double area_per_byte = 2.4e-6;
constexpr double area_per_extra_port = 0.002;
constexpr double power_fixed_mw = 0.2;     //!< leakage + clocking
constexpr double power_per_byte = 0.0013;
constexpr double power_per_port_byte = 0.0015;
} // namespace

AreaPower
CactiLite::estimate(const SramStructure &s)
{
    AreaPower ap;
    const double bytes = static_cast<double>(s.bytes);
    const int extra_ports = s.ports > 1 ? s.ports - 1 : 0;
    ap.area_mm2 = area_fixed_mm2 + area_per_byte * bytes
        + area_per_extra_port * extra_ports;
    ap.power_mw = power_fixed_mw + power_per_byte * bytes
        + power_per_port_byte * bytes * extra_ports;
    return ap;
}

AreaPower
CactiLite::estimate(const std::vector<SramStructure> &structures)
{
    AreaPower total;
    for (const SramStructure &s : structures) {
        const AreaPower ap = estimate(s);
        total.area_mm2 += ap.area_mm2;
        total.power_mw += ap.power_mw;
    }
    return total;
}

std::uint64_t
totalBytes(const std::vector<SramStructure> &structures)
{
    std::uint64_t bytes = 0;
    for (const SramStructure &s : structures)
        bytes += s.bytes;
    return bytes;
}

std::vector<SramStructure>
nestedRadixMmuStructures()
{
    // 1680 bytes total (Section 8).
    return {
        {"PWC (3 levels x 32)", 768, 1},
        {"NPWC (5 levels x 16)", 640, 1},
        {"NTLB (24 entries)", 272, 1},
    };
}

std::vector<SramStructure>
nestedEcptMmuStructures()
{
    // 1488 bytes total; the CWCs are probed in parallel per walk
    // phase, hence multi-ported.
    return {
        {"gCWC (16 PMD + 2 PUD)", 288, 3},
        {"hCWC Step-1 (4 PTE)", 64, 3},
        {"hCWC Step-3 (16PTE+4PMD+2PUD)", 352, 3},
        {"STC (10 entries)", 160, 1},
        {"gCR3/hCR3 register files", 144, 1},
        {"walk state registers", 480, 1},
    };
}

std::vector<SramStructure>
nestedHybridMmuStructures()
{
    // 1408 bytes; the hybrid hCWC serves one (row-sequential) host
    // translation at a time, so a single port suffices.
    return {
        {"hCWC (16PTE+16PMD+2PUD)", 544, 1},
        {"PWC (16 entries)", 128, 1},
        {"NTLB (24 entries)", 272, 1},
        {"hCR3 register file", 72, 1},
        {"walk state registers", 392, 1},
    };
}

std::vector<SramStructure>
nativeRadixMmuStructures()
{
    // 768 bytes.
    return {
        {"PWC (3 levels x 32)", 768, 1},
    };
}

std::vector<SramStructure>
nativeEcptMmuStructures()
{
    // 672 bytes.
    return {
        {"CWC (16 PMD + 2 PUD)", 288, 3},
        {"CR3 register file", 72, 1},
        {"walk state registers", 312, 1},
    };
}

} // namespace necpt
