#include "sim/config.hh"

#include "common/error.hh"
#include "common/log.hh"

namespace necpt
{

namespace
{

/** Common base: Table-2 memory system and TLBs, 6GB/8GB pools. */
ExperimentConfig
baseConfig(const std::string &name, WalkerKind walker, bool thp)
{
    ExperimentConfig cfg;
    cfg.name = name + (thp ? " THP" : "");
    cfg.walker = walker;
    cfg.thp = thp;
    cfg.system.guest_thp = thp;
    cfg.system.host_thp = thp;
    return cfg;
}

} // namespace

ExperimentConfig
makeConfig(ConfigId id)
{
    switch (id) {
      case ConfigId::Radix:
      case ConfigId::RadixThp: {
        auto cfg = baseConfig("Radix", WalkerKind::NativeRadix,
                              id == ConfigId::RadixThp);
        cfg.system.virtualized = false;
        cfg.system.guest_kind = PtKind::Radix;
        return cfg;
      }
      case ConfigId::Ecpt:
      case ConfigId::EcptThp: {
        auto cfg = baseConfig("ECPTs", WalkerKind::NativeEcpt,
                              id == ConfigId::EcptThp);
        cfg.system.virtualized = false;
        cfg.system.guest_kind = PtKind::Ecpt;
        return cfg;
      }
      case ConfigId::NestedRadix:
      case ConfigId::NestedRadixThp: {
        auto cfg = baseConfig("Nested Radix", WalkerKind::NestedRadix,
                              id == ConfigId::NestedRadixThp);
        cfg.system.guest_kind = PtKind::Radix;
        cfg.system.host_kind = PtKind::Radix;
        return cfg;
      }
      case ConfigId::NestedEcpt:
      case ConfigId::NestedEcptThp:
        return makeNestedEcptConfig(NestedEcptFeatures::advanced(),
                                    id == ConfigId::NestedEcptThp,
                                    "Nested ECPTs");
      case ConfigId::PlainNestedEcpt:
      case ConfigId::PlainNestedEcptThp:
        return makeNestedEcptConfig(NestedEcptFeatures::plain(),
                                    id == ConfigId::PlainNestedEcptThp,
                                    "Plain Nested ECPTs");
      case ConfigId::NestedHybrid:
      case ConfigId::NestedHybridThp: {
        auto cfg = baseConfig("Nested Hybrid", WalkerKind::NestedHybrid,
                              id == ConfigId::NestedHybridThp);
        cfg.system.guest_kind = PtKind::Radix;
        cfg.system.host_kind = PtKind::Ecpt;
        cfg.system.host_ecpt.has_pte_cwt = true; // rows 1-3 use it
        return cfg;
      }
      case ConfigId::AgilePagingIdeal:
      case ConfigId::AgilePagingIdealThp: {
        auto cfg = baseConfig("Agile Paging (ideal)",
                              WalkerKind::AgilePagingIdeal,
                              id == ConfigId::AgilePagingIdealThp);
        cfg.system.guest_kind = PtKind::Radix;
        cfg.system.host_kind = PtKind::Radix;
        return cfg;
      }
      case ConfigId::PomTlb:
      case ConfigId::PomTlbThp: {
        auto cfg = baseConfig("POM-TLB", WalkerKind::PomTlb,
                              id == ConfigId::PomTlbThp);
        cfg.system.guest_kind = PtKind::Radix;
        cfg.system.host_kind = PtKind::Radix;
        return cfg;
      }
      case ConfigId::FlatNested:
      case ConfigId::FlatNestedThp: {
        auto cfg = baseConfig("Flat Nested", WalkerKind::FlatNested,
                              id == ConfigId::FlatNestedThp);
        cfg.system.guest_kind = PtKind::Radix;
        cfg.system.host_kind = PtKind::Flat;
        return cfg;
      }
      case ConfigId::ShadowPaging:
      case ConfigId::ShadowPagingThp: {
        auto cfg = baseConfig("Shadow Paging", WalkerKind::ShadowPaging,
                              id == ConfigId::ShadowPagingThp);
        cfg.system.guest_kind = PtKind::Radix;
        cfg.system.host_kind = PtKind::Radix;
        return cfg;
      }
      case ConfigId::NestedHpt: {
        // Classic single HPTs cannot express multiple page sizes
        // (Section 2.2), so this configuration is 4KB-only.
        auto cfg = baseConfig("Nested HPT", WalkerKind::NestedHpt,
                              false);
        cfg.system.guest_kind = PtKind::Hpt;
        cfg.system.host_kind = PtKind::Hpt;
        return cfg;
      }
    }
    throw ConfigError("unknown ConfigId");
}

ExperimentConfig
makeNestedEcptConfig(const NestedEcptFeatures &features, bool thp,
                     const std::string &name)
{
    ExperimentConfig cfg;
    cfg.name = name + (thp ? " THP" : "");
    cfg.walker = WalkerKind::NestedEcpt;
    cfg.thp = thp;
    cfg.features = features;
    cfg.system.guest_thp = thp;
    cfg.system.host_thp = thp;
    cfg.system.guest_kind = PtKind::Ecpt;
    cfg.system.host_kind = PtKind::Ecpt;
    // The PTE hCWT exists only when some technique consumes it.
    cfg.system.host_ecpt.has_pte_cwt =
        features.step1_pte_hcwt || features.step3_adaptive_pte;
    return cfg;
}

std::vector<ConfigId>
table1Configs()
{
    return {
        ConfigId::Radix,          ConfigId::RadixThp,
        ConfigId::Ecpt,           ConfigId::EcptThp,
        ConfigId::NestedRadix,    ConfigId::NestedRadixThp,
        ConfigId::NestedEcpt,     ConfigId::NestedEcptThp,
        ConfigId::NestedHybrid,   ConfigId::NestedHybridThp,
    };
}

std::string
configName(ConfigId id)
{
    return makeConfig(id).name;
}

double
appGuestThpCoverage(const std::string &app)
{
    if (app == "GUPS")
        return 0.995;
    if (app == "SysBench")
        return 0.98;
    if (app == "MUMmer")
        return 0.95;
    // Graph kernels: fragmented heaps keep substantial 4KB residue.
    return 0.45;
}

double
appHostThpCoverage(const std::string &app)
{
    // The 64GB VMs stress the host allocator hardest (Section 10:
    // "even finding the more modest 2MB-sized pages ... is often
    // hard").
    if (app == "GUPS")
        return 0.60;
    if (app == "SysBench")
        return 0.65;
    return 0.95;
}

} // namespace necpt
