/**
 * @file
 * The trace-driven timing model that glues everything together:
 * workload stream -> TLB hierarchy -> page walker -> memory hierarchy,
 * with warm-up and measured phases (Section 8 methodology).
 *
 * Timing model: a 4-issue out-of-order core retires non-memory
 * instructions at a base CPI; TLB misses serialize the pipeline for
 * the full walk latency (address translation is on the critical path),
 * while data-access latency is partially hidden by the 128-entry ROB
 * (an exposure factor models the overlap). This is deliberately
 * simpler than the paper's cycle-level backend but preserves what the
 * evaluation measures: relative execution time across page-table
 * organizations, MMU busy cycles, and cache/DRAM interaction.
 *
 * Multi-core mode (SimParams::cores > 1) runs one workload instance
 * per core, multi-programmed, with private L1/L2/TLBs/walkers and a
 * shared L3 + DRAM — the contention regime of the paper's 8-core
 * machine.
 *
 * Execution is event-driven: a deterministic (cycle, priority,
 * sequence)-ordered scheduler interleaves per-core step events with
 * memory-completion pumps. With max_outstanding_walks == 1 (default)
 * each L2-TLB miss runs its walk synchronously inside the core's step
 * — the legacy serialized timing, reproduced cycle- and byte-exactly.
 * With max_outstanding_walks > 1 a miss issues a resumable WalkMachine
 * and the core keeps retiring independent work while up to that many
 * walks are in flight, contending for MSHRs and DRAM banks over
 * simulated time (the paper's parallelism argument, Section 3).
 */

#ifndef NECPT_SIM_SIMULATOR_HH
#define NECPT_SIM_SIMULATOR_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "coherence/controller.hh"
#include "common/fault.hh"
#include "common/metrics.hh"
#include "common/trace_events.hh"
#include "mem/hierarchy.hh"
#include "mmu/pom_tlb.hh"
#include "mmu/tlb.hh"
#include "sim/config.hh"
#include "walk/walker.hh"
#include "workloads/workload.hh"

namespace necpt
{

class ChurnSource;
class CriticalPathRecorder;
class TimeSeriesBuffer;

/** Run-length and model knobs. */
struct SimParams
{
    std::uint64_t warmup_accesses = 200'000;
    std::uint64_t measure_accesses = 1'000'000;
    std::uint64_t scale_denominator = 16; //!< Table-4 footprint divisor
    std::uint64_t seed = 0xD15EA5E;
    int cores = 1;               //!< simulated cores (multi-programmed)
    double base_cpi = 0.3;       //!< non-memory retire cost (4-issue)
    double data_exposure = 0.3;  //!< fraction of data latency exposed
    /**
     * Fault the whole dataset in before warm-up, like the real
     * applications do at initialization (Section 8 measures steady
     * state after the region of interest is reached).
     */
    bool prefault = true;

    /**
     * Per-core cap on concurrently in-flight page walks (memory-level
     * parallelism of the translation machinery). 1 — the default —
     * serializes walks on the core exactly like the legacy timing
     * model; higher values let independent L2-TLB misses overlap:
     * each miss issues a resumable walk machine and the core parks
     * only when the cap is reached. Concurrent walks for the same
     * page are not coalesced unless @ref walk_coalescing is set
     * (each models its own probe traffic).
     */
    int max_outstanding_walks = 1;

    /**
     * MSHR-style same-page walk coalescing (off by default). With
     * overlapped walks enabled, an L2-TLB miss whose 4KB guest page
     * already has a walk in flight on this core parks on that walk's
     * coalescer entry instead of issuing a duplicate machine; when the
     * primary retires, its translation fans out to every waiter (TLB
     * install + data access at completion). A waiter is recorded as a
     * walk whose entire latency bins to AttrCause::Coalesce, so the
     * walks ≈ L2-TLB-misses invariant and cycle-ledger conservation
     * both hold exactly. Waiters do not count toward the
     * max_outstanding_walks cap — that is the parallelism the MSHR
     * merge buys. Off, the simulation is byte-identical to a build
     * without the feature; on, it is deterministic at any
     * --jobs/--sim-threads.
     */
    bool walk_coalescing = false;

    /**
     * Host worker threads the simulation shards across (the timing
     * core stays on one coordinator thread; the extra threads fill the
     * per-core lookahead rings during epoch rendezvous windows — see
     * sim/epoch.hh). Clamped to the simulated core count at run time.
     * Any value produces bit-identical metrics, goldens, traces, and
     * timeseries: the sharding is wall-clock-only by construction.
     */
    int sim_threads = 1;

    /**
     * Fault injection (off by default). When any site is armed the
     * Simulator builds a FaultPlan seeded by @ref fault_seed (falling
     * back to @ref seed when zero) and threads it through the pools,
     * cuckoo tables, and memory hierarchy; the run ends with an
     * ECPT/CWT invariant audit.
     */
    FaultSpec faults{};
    std::uint64_t fault_seed = 0;

    /**
     * Translation churn (off by default). When any source is armed the
     * Simulator builds a CoherenceController plus the spec'd churn
     * generators and interleaves their invalidation streams — and the
     * resulting TLB-shootdown rounds — with the access kernels on the
     * event scheduler. An all-defaults spec leaves every run
     * byte-identical to a build without the subsystem.
     */
    ChurnSpec churn{};

    /**
     * Walk-level event tracer (null = tracing off, the default). The
     * Simulator threads it through the walkers, both page tables, the
     * memory hierarchy, and the fault plan, and keeps its ambient
     * clock in step with the leading core.
     */
    TraceBuffer *tracer = nullptr;

    /**
     * Per-walk cycle attribution (on by default). Every walk carries a
     * CycleLedger binning its latency by cause; the bins roll into the
     * attr.* counters/histograms and annotate trace spans. Disabling
     * leaves the ledgers compiled in but makes every charge a dead
     * branch — the hot path stays allocation-free either way.
     */
    bool attribution = true;

    /**
     * Interval metrics sampler (null = off). Every interval() measured
     * cycles the Simulator snapshots the full registry scalar set into
     * the buffer from an end-of-cycle scheduler event, producing the
     * necpt-timeseries-v1 stream.
     */
    TimeSeriesBuffer *timeseries = nullptr;

    /**
     * Event-dependency recorder (null = off). When set, the scheduler
     * reports every scheduling edge and the Loop annotates walk
     * retirements and MLP-cap stalls, enabling the per-core
     * critical-path report (necpt-run --critical-path).
     */
    CriticalPathRecorder *critical_path = nullptr;
};

/** Everything a bench needs to regenerate the paper's numbers. */
struct SimResult
{
    std::string config;
    std::string app;

    std::uint64_t instructions = 0;
    Cycles cycles = 0;          //!< execution time (speedups = ratios)
    Cycles mmu_busy_cycles = 0; //!< Figure 10

    std::uint64_t l1_tlb_misses = 0;
    std::uint64_t l2_tlb_misses = 0;
    std::uint64_t walks = 0;
    std::uint64_t mmu_requests = 0;

    double l2_mpki = 0;  //!< Figure 13(b): total L2 misses PKI
    double l3_mpki = 0;  //!< Figure 13(c)
    double mmu_rpki = 0; //!< Figure 13(a)
    double mmu_l2_misses_pki = 0;
    double avg_mshrs = 0;
    std::uint64_t max_mshrs = 0;
    double dram_row_hit_rate = 0;

    Histogram walk_latency{20, 64}; //!< Figure 11

    /** Figure 14 fractions + Section 9.4 step averages. */
    double guest_kind_frac[4] = {0, 0, 0, 0};
    double host_kind_frac[4] = {0, 0, 0, 0};
    double step_avg[3] = {0, 0, 0};

    /** Section 9.4 MMU-cache hit rates (nested ECPT only). */
    double stc_hit_rate = -1;
    double gcwc_pud_hit = -1, gcwc_pmd_hit = -1;
    double hcwc_pud_hit = -1, hcwc_pmd_hit = -1;
    double hcwc_pte_step1_hit = -1, hcwc_pte_step3_hit = -1;
    std::uint64_t hcwc_pte_step3_accesses = 0;
    /** Figure 12 windowed rates. */
    double adaptive_pte_rate = -1, adaptive_pmd_rate = -1;

    /** Section 9.5 memory accounting. */
    std::uint64_t guest_structure_bytes = 0;
    std::uint64_t host_structure_bytes = 0;
    std::uint64_t pte_bytes_total = 0;

    std::uint64_t guest_faults = 0;
    std::uint64_t host_faults = 0;

    /** Walk-overlap characterization ("walk.inflight" metrics): mean
     *  in-flight walks per core over the measured interval, and the
     *  peak on any single core. */
    double walk_inflight_avg = 0;
    std::uint64_t walk_inflight_max = 0;

    /**
     * The scalar fields above, re-published under the unified dotted
     * metric names (walk.kind.guest.direct.frac, stc.hitrate,
     * adaptive.pte.rate, ...). Values are the very same doubles, so
     * consumers that switch to the map stay byte-identical.
     */
    std::map<std::string, double> metrics;
};

/**
 * One configured machine running one application.
 */
class Simulator
{
  public:
    Simulator(const ExperimentConfig &config, const SimParams &params);
    ~Simulator();

    /** Run @p app through warm-up + measurement and report. */
    SimResult run(const std::string &app);

    /** Factory producing per-core workload instances (seeded). */
    using WorkloadFactory =
        std::function<std::unique_ptr<Workload>(std::uint64_t seed)>;

    /**
     * Run an arbitrary workload (e.g. a replayed trace) through the
     * same warm-up + measurement pipeline.
     *
     * @param label result's app name
     * @param factory builds one instance per core
     * @param footprint_bytes sizing hint for the physical pools
     */
    SimResult runWith(const std::string &label,
                      const WorkloadFactory &factory,
                      std::uint64_t footprint_bytes);

    /// @name Introspection (valid after run(); used by tests/benches)
    /// @{
    NestedSystem &system() { return *sys; }
    Walker &walker(int core = 0) { return *walkers[core]; }
    MemoryHierarchy &memory() { return *mem; }
    TlbHierarchy &tlbs(int core = 0) { return *tlb[core]; }
    int numCores() const { return static_cast<int>(walkers.size()); }
    FaultPlan *faultPlan() { return fault_plan.get(); }
    CoherenceController *coherenceController() { return coherence.get(); }
    /// @}

    /**
     * Register every live component's statistics (walkers, TLBs,
     * caches, DRAM, cuckoo tables) with @p reg under @p prefix. Valid
     * once the machine is built, i.e. after run()/runWith(); entries
     * read the components live, so a later resetStats() is reflected.
     */
    void exportMetrics(MetricsRegistry &reg,
                       const std::string &prefix = "");

  private:
    /** Build system/memory/TLBs/walkers for @p footprint_bytes. */
    void buildMachine(std::uint64_t footprint_bytes,
                      const std::string &app);
    std::unique_ptr<Walker> makeWalker(int core);
    void resetStats();
    void fillResult(SimResult &result);

    ExperimentConfig cfg;
    SimParams params;

    /** Declared before the structures that poll it: members destruct
     *  in reverse order, so the plan outlives every injection site. */
    std::unique_ptr<FaultPlan> fault_plan;

    std::unique_ptr<NestedSystem> sys;
    std::unique_ptr<MemoryHierarchy> mem;
    std::vector<std::unique_ptr<TlbHierarchy>> tlb;
    std::unique_ptr<PomTlb> pom;
    std::vector<std::unique_ptr<Walker>> walkers;

    /** Coherence subsystem (null unless params.churn arms a source).
     *  Declared after the structures it holds raw pointers into. */
    std::unique_ptr<CoherenceController> coherence;
    std::vector<std::unique_ptr<ChurnSource>> churn_sources;
};

/** Convenience: build, run, return. */
SimResult runSim(const ExperimentConfig &config, const SimParams &params,
                 const std::string &app);

} // namespace necpt

#endif // NECPT_SIM_SIMULATOR_HH
