/**
 * @file
 * Interval time-series sampling of the metrics registry (the
 * observability layer's phase-behavior half).
 *
 * A TimeSeriesBuffer accumulates snapshots of every registry scalar at
 * a fixed simulated-cycle interval; the Simulator drives it from a
 * scheduler event at end-of-cycle priority, so a sample always sees
 * the cycle's completed state and the stream is byte-deterministic at
 * any worker count. The export format is one canonical JSON document
 * (schema tag "necpt-timeseries-v1"):
 *
 *   {"schema":"necpt-timeseries-v1","interval":N,"runs":[
 *     {"key":"<label>","series":["<name>",...],
 *      "samples":[[cycle,v0,v1,...],...]}, ...]}
 *
 * Runs are emitted in submission order and doubles with %.12g, so a
 * sweep's merged document compares byte-identical at --jobs 1 and 8.
 */

#ifndef NECPT_SIM_TIMESERIES_HH
#define NECPT_SIM_TIMESERIES_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace necpt
{

/** One run's interval snapshots of the registry scalars. */
class TimeSeriesBuffer
{
  public:
    explicit TimeSeriesBuffer(std::uint64_t interval_cycles)
        : interval_(interval_cycles ? interval_cycles : 1)
    {}

    std::uint64_t interval() const { return interval_; }

    /**
     * Append the snapshot taken at simulated cycle @p cycle. The first
     * call fixes the series names (the registry's entry set never
     * changes mid-run); every later snapshot must carry the same keys.
     */
    void record(double cycle, const std::map<std::string, double> &snap);

    /** Sampled scalar names, sorted (the registry's map order). */
    const std::vector<std::string> &series() const { return names_; }

    /** One row per snapshot: [cycle, v0, v1, ...] in series() order. */
    const std::vector<std::vector<double>> &samples() const
    {
        return rows_;
    }

    bool empty() const { return rows_.empty(); }

  private:
    std::uint64_t interval_;
    std::vector<std::string> names_;
    std::vector<std::vector<double>> rows_;
};

/** One labeled buffer inside the merged export document. */
struct TimeSeriesRun
{
    std::string key;
    const TimeSeriesBuffer *buffer = nullptr;
};

/** The canonical necpt-timeseries-v1 document for @p runs. */
std::string timeseriesToJson(const std::vector<TimeSeriesRun> &runs,
                             std::uint64_t interval);

/** timeseriesToJson() to @p path. @return success. */
bool writeTimeseriesJson(const std::string &path,
                         const std::vector<TimeSeriesRun> &runs,
                         std::uint64_t interval);

} // namespace necpt

#endif // NECPT_SIM_TIMESERIES_HH
