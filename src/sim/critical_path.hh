/**
 * @file
 * Event-dependency recording and critical-path analysis.
 *
 * The EventScheduler can report every scheduled event together with the
 * event that was executing when it was scheduled (its parent). Over a
 * run this forms a DAG whose edges carry simulated-time durations; the
 * longest parent chain ending at a core's last instruction explains
 * *why* the run took as long as it did, cause by cause. The recorder
 * here keeps that DAG plus per-walk annotations (which attribution
 * cause dominated each walk, how long each core sat parked at its MLP
 * cap) and renders a per-core text report: total spine length broken
 * down by event kind, plus the top-K longest stall episodes.
 *
 * Everything is simulated-time based and single-threaded per run, so
 * the report is byte-deterministic at any --jobs level.
 */

#ifndef NECPT_SIM_CRITICAL_PATH_HH
#define NECPT_SIM_CRITICAL_PATH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/cycle_ledger.hh"
#include "sim/sched.hh"

namespace necpt
{

/** What a scheduled event does; attached via EventScheduler::at(). */
enum class SimEventKind : std::uint8_t
{
    EvUnknown = 0, //!< untagged event
    EvStep,        //!< core issues its next instruction
    EvPump,        //!< memory-system completion pump
    EvRetire,      //!< a walk's translation retires into the core
    EvChurn,       //!< mapping-churn invalidation burst
    EvRound,       //!< coherence shootdown round completion
    EvSample,      //!< metrics time-series sampler tick
};

const char *simEventKindName(SimEventKind kind);

/**
 * Collects the event-dependency DAG plus walk/stall annotations and
 * renders the per-core critical-path report.
 */
class CriticalPathRecorder : public EventEdgeSink
{
  public:
    /** @param top_k stall episodes listed per core in the report. */
    explicit CriticalPathRecorder(int cores, int top_k = 5);

    // EventEdgeSink
    void onEvent(std::uint64_t seq, std::uint64_t parent, double cycle,
                 std::int64_t priority, std::uint8_t kind) override;

    /**
     * Annotate the retire event @p seq with the walk it completes:
     * which cause dominated the walk's ledger and the walk latency.
     */
    void noteWalk(std::uint64_t seq, int core, const CycleLedger &led,
                  std::uint64_t latency);

    /**
     * A core resumed issuing at @p seq after stalling @p cycles at its
     * MLP cap; @p led is the unblocking walk's ledger (may be empty).
     */
    void noteStall(std::uint64_t seq, int core, double cycles,
                   const CycleLedger &led);

    /** Mark @p seq as core @p core's spine tail candidate. */
    void noteCoreEvent(std::uint64_t seq, int core);

    /** Render the full report (all cores) as plain text. */
    std::string report() const;

  private:
    struct Node
    {
        std::uint64_t parent; //!< scheduling event's seq, or no_parent
        double cycle;         //!< execution time
        std::uint8_t kind;    //!< SimEventKind
    };

    struct Stall
    {
        double cycles = 0;
        double at = 0;           //!< cycle the stall ended
        std::uint64_t seq = 0;   //!< unblocking event
        int cause = -1;          //!< dominant AttrCause index, or -1
    };

    struct CoreState
    {
        std::uint64_t tail = no_parent; //!< last Step/Retire event seq
        std::uint64_t walks = 0;
        std::uint64_t walk_cycles = 0;
        std::array<std::uint64_t, num_attr_causes> dominant_walks{};
        double stall_cycles = 0;
        std::uint64_t stall_episodes = 0;
        std::vector<Stall> top_stalls; //!< kept sorted, size <= top_k
    };

    static constexpr std::uint64_t no_parent = ~0ULL;

    void keepTopStall(CoreState &cs, const Stall &s);

    std::vector<Node> nodes_; //!< indexed by seq (seq 0 = first event)
    std::vector<CoreState> cores_;
    int top_k_;
};

} // namespace necpt

#endif // NECPT_SIM_CRITICAL_PATH_HH
