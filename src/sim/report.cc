#include "sim/report.hh"

#include <sstream>

namespace necpt
{

namespace
{

/** Escape a string for CSV (quotes) and JSON (quotes/backslashes). */
std::string
escape(const std::string &in)
{
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

void
writeCsvHeader(std::FILE *out)
{
    std::fprintf(out,
                 "config,app,instructions,cycles,mmu_busy_cycles,"
                 "l1_tlb_misses,l2_tlb_misses,walks,mmu_requests,"
                 "l2_mpki,l3_mpki,mmu_rpki,avg_mshrs,max_mshrs,"
                 "dram_row_hit_rate,"
                 "guest_direct,guest_size,guest_partial,guest_complete,"
                 "host_direct,host_size,host_partial,host_complete,"
                 "step1_avg,step2_avg,step3_avg,"
                 "stc_hit_rate,guest_structure_bytes,"
                 "host_structure_bytes,pte_bytes_total\n");
}

void
writeCsvRow(std::FILE *out, const SimResult &r)
{
    std::fprintf(
        out,
        "\"%s\",\"%s\",%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
        "%.4f,%.4f,%.4f,%.3f,%llu,%.4f,"
        "%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,"
        "%.3f,%.3f,%.3f,%.4f,%llu,%llu,%llu\n",
        escape(r.config).c_str(), escape(r.app).c_str(),
        (unsigned long long)r.instructions, (unsigned long long)r.cycles,
        (unsigned long long)r.mmu_busy_cycles,
        (unsigned long long)r.l1_tlb_misses,
        (unsigned long long)r.l2_tlb_misses, (unsigned long long)r.walks,
        (unsigned long long)r.mmu_requests, r.l2_mpki, r.l3_mpki,
        r.mmu_rpki, r.avg_mshrs, (unsigned long long)r.max_mshrs,
        r.dram_row_hit_rate, r.guest_kind_frac[0], r.guest_kind_frac[1],
        r.guest_kind_frac[2], r.guest_kind_frac[3], r.host_kind_frac[0],
        r.host_kind_frac[1], r.host_kind_frac[2], r.host_kind_frac[3],
        r.step_avg[0], r.step_avg[1], r.step_avg[2], r.stc_hit_rate,
        (unsigned long long)r.guest_structure_bytes,
        (unsigned long long)r.host_structure_bytes,
        (unsigned long long)r.pte_bytes_total);
}

std::string
toJson(const SimResult &r)
{
    std::ostringstream os;
    os << "{";
    os << "\"config\":\"" << escape(r.config) << "\",";
    os << "\"app\":\"" << escape(r.app) << "\",";
    os << "\"instructions\":" << r.instructions << ",";
    os << "\"cycles\":" << r.cycles << ",";
    os << "\"mmu_busy_cycles\":" << r.mmu_busy_cycles << ",";
    os << "\"l2_tlb_misses\":" << r.l2_tlb_misses << ",";
    os << "\"walks\":" << r.walks << ",";
    os << "\"mmu_requests\":" << r.mmu_requests << ",";
    os << "\"l2_mpki\":" << r.l2_mpki << ",";
    os << "\"l3_mpki\":" << r.l3_mpki << ",";
    os << "\"mmu_rpki\":" << r.mmu_rpki << ",";
    os << "\"step_avg\":[" << r.step_avg[0] << "," << r.step_avg[1]
       << "," << r.step_avg[2] << "],";
    os << "\"guest_kind\":[" << r.guest_kind_frac[0] << ","
       << r.guest_kind_frac[1] << "," << r.guest_kind_frac[2] << ","
       << r.guest_kind_frac[3] << "],";
    os << "\"host_kind\":[" << r.host_kind_frac[0] << ","
       << r.host_kind_frac[1] << "," << r.host_kind_frac[2] << ","
       << r.host_kind_frac[3] << "],";
    os << "\"stc_hit_rate\":" << r.stc_hit_rate << ",";
    os << "\"guest_structure_bytes\":" << r.guest_structure_bytes
       << ",";
    os << "\"host_structure_bytes\":" << r.host_structure_bytes << ",";
    os << "\"pte_bytes_total\":" << r.pte_bytes_total;
    os << "}";
    return os.str();
}

bool
writeCsvFile(const std::string &path,
             const std::vector<SimResult> &results)
{
    std::FILE *out = std::fopen(path.c_str(), "w");
    if (!out)
        return false;
    writeCsvHeader(out);
    for (const SimResult &r : results)
        writeCsvRow(out, r);
    std::fclose(out);
    return true;
}

} // namespace necpt
