#include "sim/critical_path.hh"

#include <algorithm>
#include <cstdio>

#include "common/log.hh"

namespace necpt
{

const char *
simEventKindName(SimEventKind kind)
{
    switch (kind) {
      case SimEventKind::EvUnknown: return "unknown";
      case SimEventKind::EvStep: return "step";
      case SimEventKind::EvPump: return "pump";
      case SimEventKind::EvRetire: return "retire";
      case SimEventKind::EvChurn: return "churn";
      case SimEventKind::EvRound: return "round";
      case SimEventKind::EvSample: return "sample";
    }
    return "?";
}

CriticalPathRecorder::CriticalPathRecorder(int cores, int top_k)
    : cores_(static_cast<std::size_t>(cores > 0 ? cores : 1)),
      top_k_(top_k > 0 ? top_k : 1)
{}

void
CriticalPathRecorder::onEvent(std::uint64_t seq, std::uint64_t parent,
                              double cycle, std::int64_t, std::uint8_t kind)
{
    // Attached before the first at() call, so seq indexes nodes_ densely.
    NECPT_ASSERT(seq == nodes_.size());
    nodes_.push_back(Node{parent, cycle, kind});
}

void
CriticalPathRecorder::noteWalk(std::uint64_t seq, int core,
                               const CycleLedger &led,
                               std::uint64_t latency)
{
    if (core < 0 || static_cast<std::size_t>(core) >= cores_.size())
        return;
    CoreState &cs = cores_[static_cast<std::size_t>(core)];
    ++cs.walks;
    cs.walk_cycles += latency;
    if (led.total() > 0)
        ++cs.dominant_walks[static_cast<int>(led.dominant())];
    if (seq != no_parent)
        cs.tail = seq;
}

void
CriticalPathRecorder::noteStall(std::uint64_t seq, int core,
                                double cycles, const CycleLedger &led)
{
    if (cycles <= 0)
        return;
    if (core < 0 || static_cast<std::size_t>(core) >= cores_.size())
        return;
    CoreState &cs = cores_[static_cast<std::size_t>(core)];
    cs.stall_cycles += cycles;
    ++cs.stall_episodes;
    Stall s;
    s.cycles = cycles;
    s.seq = seq;
    s.cause = led.total() > 0 ? static_cast<int>(led.dominant()) : -1;
    if (seq != no_parent && seq < nodes_.size())
        s.at = nodes_[seq].cycle;
    keepTopStall(cs, s);
}

void
CriticalPathRecorder::noteCoreEvent(std::uint64_t seq, int core)
{
    if (core < 0 || static_cast<std::size_t>(core) >= cores_.size())
        return;
    if (seq != no_parent)
        cores_[static_cast<std::size_t>(core)].tail = seq;
}

void
CriticalPathRecorder::keepTopStall(CoreState &cs, const Stall &s)
{
    cs.top_stalls.push_back(s);
    std::sort(cs.top_stalls.begin(), cs.top_stalls.end(),
              [](const Stall &a, const Stall &b) {
                  if (a.cycles != b.cycles)
                      return a.cycles > b.cycles;
                  if (a.at != b.at)
                      return a.at < b.at;
                  return a.seq < b.seq;
              });
    if (cs.top_stalls.size() > static_cast<std::size_t>(top_k_))
        cs.top_stalls.resize(static_cast<std::size_t>(top_k_));
}

namespace
{

std::string
fmt1(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.1f", v);
    return buf;
}

std::string
pct(double part, double whole)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.1f%%",
                  whole > 0 ? 100.0 * part / whole : 0.0);
    return buf;
}

} // namespace

std::string
CriticalPathRecorder::report() const
{
    std::string out;
    out += "critical-path report (longest event-dependency chain per "
           "core; top-";
    out += std::to_string(top_k_);
    out += " stalls)\n";

    constexpr int num_kinds = 7;
    for (std::size_t core = 0; core < cores_.size(); ++core) {
        const CoreState &cs = cores_[core];
        out += "core " + std::to_string(core) + ":";
        if (cs.tail == no_parent || cs.tail >= nodes_.size()) {
            out += " no recorded events\n";
            continue;
        }

        // Walk the spine: the chain of scheduling edges ending at the
        // core's last issue/retire event. Each edge's duration is
        // charged to the kind of the event at its head.
        double by_kind[num_kinds] = {};
        std::uint64_t edges = 0;
        std::uint64_t node = cs.tail;
        const double tail_cycle = nodes_[cs.tail].cycle;
        double spine_start = nodes_[cs.tail].cycle;
        while (node != no_parent) {
            const Node &n = nodes_[node];
            spine_start = n.cycle;
            const std::uint64_t parent = n.parent;
            if (parent == no_parent)
                break;
            NECPT_ASSERT(parent < node); // edges point backwards in time
            const double dt = n.cycle - nodes_[parent].cycle;
            const int kind =
                n.kind < num_kinds ? n.kind
                                   : static_cast<int>(
                                         SimEventKind::EvUnknown);
            by_kind[kind] += dt > 0 ? dt : 0;
            ++edges;
            node = parent;
        }
        const double spine = tail_cycle - spine_start;

        out += " spine " + fmt1(spine) + " cycles over " +
               std::to_string(edges) + " edges (ends cycle " +
               fmt1(tail_cycle) + ")\n";

        // Kind shares, largest first; deterministic tie-break on the
        // enum order.
        int order[num_kinds];
        for (int k = 0; k < num_kinds; ++k)
            order[k] = k;
        std::sort(order, order + num_kinds, [&](int a, int b) {
            if (by_kind[a] != by_kind[b])
                return by_kind[a] > by_kind[b];
            return a < b;
        });
        out += "  spine by event kind:";
        bool any = false;
        for (int i = 0; i < num_kinds; ++i) {
            const int k = order[i];
            if (by_kind[k] <= 0)
                continue;
            out += std::string(" ") +
                   simEventKindName(static_cast<SimEventKind>(k)) +
                   " " + pct(by_kind[k], spine) + " (" +
                   fmt1(by_kind[k]) + ")";
            any = true;
        }
        if (!any)
            out += " (empty)";
        out += "\n";

        out += "  walks retired: " + std::to_string(cs.walks) +
               " (sum latency " + std::to_string(cs.walk_cycles) +
               " cycles)";
        std::uint64_t dom_total = 0;
        for (std::uint64_t n : cs.dominant_walks)
            dom_total += n;
        if (dom_total > 0) {
            int corder[num_attr_causes];
            for (int c = 0; c < num_attr_causes; ++c)
                corder[c] = c;
            std::sort(corder, corder + num_attr_causes,
                      [&](int a, int b) {
                          if (cs.dominant_walks[a] != cs.dominant_walks[b])
                              return cs.dominant_walks[a] >
                                     cs.dominant_walks[b];
                          return a < b;
                      });
            out += "; dominant cause:";
            for (int i = 0; i < num_attr_causes; ++i) {
                const int c = corder[i];
                if (!cs.dominant_walks[c])
                    continue;
                out += std::string(" ") +
                       attrCauseName(static_cast<AttrCause>(c)) + " " +
                       std::to_string(cs.dominant_walks[c]) + " (" +
                       pct(static_cast<double>(cs.dominant_walks[c]),
                           static_cast<double>(dom_total)) +
                       ")";
            }
        }
        out += "\n";

        out += "  mlp-cap stalls: " + fmt1(cs.stall_cycles) +
               " cycles over " + std::to_string(cs.stall_episodes) +
               " episodes (" + pct(cs.stall_cycles, tail_cycle) +
               " of core time)\n";
        for (std::size_t i = 0; i < cs.top_stalls.size(); ++i) {
            const Stall &s = cs.top_stalls[i];
            out += "    " + std::to_string(i + 1) + ") " +
                   fmt1(s.cycles) + " cycles ending at cycle " +
                   fmt1(s.at);
            if (s.cause >= 0) {
                out += ", unblocked by a walk dominated by ";
                out += attrCauseName(static_cast<AttrCause>(s.cause));
            }
            out += "\n";
        }
    }
    return out;
}

} // namespace necpt
