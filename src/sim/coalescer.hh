/**
 * @file
 * Walk-MSHR same-page coalescing (SimParams::walk_coalescing).
 *
 * Real MMUs do not launch two page walks for the same page: concurrent
 * translation misses merge in an MSHR-style structure at the walker,
 * and the one in-flight walk fans its result out to every waiter. The
 * per-core WalkCoalescer models that structure for overlapped walks
 * (max_outstanding_walks > 1): when a walk for 4KB guest page P is in
 * flight on this core, later L2-TLB misses for P park on its entry
 * instead of spawning a duplicate WalkMachine; at the primary's retire
 * the translation fans out — per-waiter TLB install + data access at
 * the completion cycle, and the waiter's whole latency binned as
 * AttrCause::Coalesce (see Walker::recordCoalescedWalk), keeping both
 * cycle-ledger conservation and the walks ≈ L2-TLB-misses invariant.
 *
 * Determinism: the coalescer runs only on the coordinator thread,
 * inside step/retire events that the scheduler already orders
 * canonically, and waiters are fanned out in append order — so the
 * bytes cannot depend on --jobs or --sim-threads. Entries and waiter
 * vectors are pooled: steady state touches the heap only until the
 * working set's high-water mark is reached.
 */

#ifndef NECPT_SIM_COALESCER_HH
#define NECPT_SIM_COALESCER_HH

#include <cstddef>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace necpt
{

class WalkMachine;

/** Per-core walk-MSHR: in-flight walks keyed on their 4KB gVA page. */
class WalkCoalescer
{
  public:
    /** One parked translation request. */
    struct Waiter
    {
        Addr va = 0;
        double issue_cycle = 0.0;
    };

    /** One in-flight primary walk and the requests merged onto it. */
    struct Entry
    {
        Addr page = 0;
        WalkMachine *primary = nullptr;
        std::vector<Waiter> waiters;
    };

    /** The 4KB-page coalescing key (walks are issued per gVA page). */
    static Addr pageOf(Addr va) { return va & ~static_cast<Addr>(0xFFF); }

    /** The open entry for @p page, or null when no walk is in flight.
     *  Linear scan: live entries are bounded by the per-core MLP cap. */
    Entry *
    find(Addr page)
    {
        for (Entry &e : entries_)
            if (e.page == page)
                return &e;
        return nullptr;
    }

    /** Open an entry for @p primary's walk of @p page. */
    void
    open(Addr page, WalkMachine *primary)
    {
        NECPT_ASSERT(find(page) == nullptr);
        Entry e;
        if (!pool_.empty()) {
            e = std::move(pool_.back());
            pool_.pop_back();
        }
        e.page = page;
        e.primary = primary;
        entries_.push_back(std::move(e));
    }

    /** The entry @p primary opened (every primary walk has one). */
    Entry *
    byPrimary(const WalkMachine *primary)
    {
        for (Entry &e : entries_)
            if (e.primary == primary)
                return &e;
        return nullptr;
    }

    /** Retire @p e: recycle it (the caller has fanned the waiters
     *  out). Invalidates Entry pointers. */
    void
    close(Entry *e)
    {
        const std::size_t idx =
            static_cast<std::size_t>(e - entries_.data());
        NECPT_ASSERT(idx < entries_.size());
        entries_[idx].waiters.clear();
        entries_[idx].primary = nullptr;
        pool_.push_back(std::move(entries_[idx]));
        if (idx != entries_.size() - 1)
            entries_[idx] = std::move(entries_.back());
        entries_.pop_back();
    }

    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }

  private:
    std::vector<Entry> entries_; //!< open entries (one per in-flight walk)
    std::vector<Entry> pool_;    //!< recycled entries, capacity retained
};

} // namespace necpt

#endif // NECPT_SIM_COALESCER_HH
