#include "sim/experiment.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/log.hh"
#include "workloads/workload.hh"

namespace necpt
{

namespace
{

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *value = std::getenv(name);
    return value ? std::strtoull(value, nullptr, 10) : fallback;
}

} // namespace

SimParams
paramsFromEnv()
{
    SimParams params;
    const bool full = envU64("NECPT_FULL", 0) != 0;
    params.warmup_accesses =
        envU64("NECPT_WARMUP", full ? 800'000 : 200'000);
    params.measure_accesses =
        envU64("NECPT_MEASURE", full ? 4'000'000 : 1'000'000);
    params.scale_denominator = envU64("NECPT_SCALE", full ? 8 : 16);
    params.max_outstanding_walks = static_cast<int>(
        std::max<std::uint64_t>(1, envU64("NECPT_MLP", 1)));
    params.sim_threads = static_cast<int>(
        std::max<std::uint64_t>(1, envU64("NECPT_SIM_THREADS", 1)));
    return params;
}

std::vector<std::string>
appsFromEnv()
{
    const char *value = std::getenv("NECPT_APPS");
    if (!value)
        return paperApplications();
    std::vector<std::string> apps;
    std::stringstream stream(value);
    std::string app;
    while (std::getline(stream, app, ','))
        if (!app.empty())
            apps.push_back(app);
    return apps;
}

int
jobsFromEnv()
{
    const auto hw = std::thread::hardware_concurrency();
    const std::uint64_t fallback =
        std::min<std::uint64_t>(4, hw ? hw : 1);
    const auto jobs = envU64("NECPT_JOBS", fallback);
    return static_cast<int>(std::max<std::uint64_t>(1, jobs));
}

SimParams
scaledParams(SimParams params, std::uint64_t measure_div,
             std::uint64_t warmup_div)
{
    if (measure_div > 1)
        params.measure_accesses /= measure_div;
    if (warmup_div > 1)
        params.warmup_accesses /= warmup_div;
    return params;
}

void
configureSharedResources(ExperimentConfig &config, int cores)
{
    config.memory.l3.size_bytes =
        static_cast<std::uint64_t>(cores) * 2 * 1024 * 1024;
    config.memory.dram.channels = std::max(2, cores);
}

ResultGrid
runGrid(const std::vector<ExperimentConfig> &configs,
        const std::vector<std::string> &apps, const SimParams &params)
{
    // Flatten the work list; every run is independent.
    std::vector<std::pair<const ExperimentConfig *, const std::string *>>
        work;
    for (const ExperimentConfig &config : configs)
        for (const std::string &app : apps)
            work.emplace_back(&config, &app);

    ResultGrid grid;
    std::mutex grid_mutex;
    std::atomic<std::size_t> next{0};

    auto worker = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= work.size())
                return;
            const auto [config, app] = work[i];
            {
                std::lock_guard<std::mutex> lock(grid_mutex);
                std::fprintf(stderr, "  [run] %-22s %-9s ...\n",
                             config->name.c_str(), app->c_str());
            }
            SimResult result = runSim(*config, params, *app);
            std::lock_guard<std::mutex> lock(grid_mutex);
            grid.add(result);
        }
    };

    const int jobs =
        std::min<int>(jobsFromEnv(), static_cast<int>(work.size()));
    if (jobs <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        for (int j = 0; j < jobs; ++j)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }
    return grid;
}

double
speedupOver(const ResultGrid &grid, const std::string &baseline,
            const std::string &config, const std::string &app)
{
    const auto &base = grid.at(baseline, app);
    const auto &other = grid.at(config, app);
    return static_cast<double>(base.cycles)
        / static_cast<double>(other.cycles);
}

void
printHeader(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

void
printRow(const std::string &label, const std::vector<double> &values,
         int width, int precision)
{
    std::printf("%-24s", label.c_str());
    for (double v : values)
        std::printf("%*.*f", width, precision, v);
    std::printf("\n");
}

void
printColumns(const std::string &label,
             const std::vector<std::string> &columns, int width)
{
    std::printf("%-24s", label.c_str());
    for (const std::string &c : columns)
        std::printf("%*s", width, c.c_str());
    std::printf("\n");
}

} // namespace necpt
