/**
 * @file
 * Epoch synchronization for the thread-sharded timing core.
 *
 * The sharded simulator (sim/shared_domain.hh, sim/pump.hh) keeps the
 * *timed* schedule on one coordinator thread — that is what makes the
 * event stream a pure function of the inputs — and gives the other
 * host threads the work that is provably schedule-invariant: advancing
 * each core's private workload stream, pre-computing page-residency
 * verdicts for the upcoming accesses (the lookahead rings), and — when
 * the simulator enables it — *speculative walk plans*
 * (walk/spec_plan.hh): the pure-function slice of each upcoming
 * access's page walk (cuckoo probe-address hashing, functional
 * translations), precomputed under the window's mutation stamp so the
 * walk machine can consume it instead of recomputing on the
 * coordinator's critical path.
 *
 * Simulated time is divided into epochs no shorter than the minimum
 * cross-domain latency (an L3 hit: nothing a core issues can come back
 * from the shared domain sooner). At an epoch boundary where any ring
 * has drained low, the coordinator parks at the barrier, the worker
 * pool refills its assigned rings (pump i -> thread i % sim_threads,
 * with the coordinator as thread 0), and the coordinator resumes once
 * every worker checks back in. During the window each worker has
 * exclusive access to its pumps' rings and read-only access to the
 * page tables — the coordinator is parked, so no mutation can race a
 * probe — and the rendezvous mutex publishes every ring write to the
 * coordinator (TSan-clean by construction, no atomics in the model).
 *
 * Determinism: ring entries are pure functions of each core's private
 * workload stream, and a residency verdict only ever lets the consumer
 * skip a call that would have been a side-effect-free no-op (stale
 * verdicts — detected via the page-table mutation stamp — fall back to
 * the full path). Speculative walk plans follow the same protocol: a
 * plan is a pure function of (address, page tables at the stamp), and
 * every consumption site re-checks the stamp at its own commit time,
 * falling back to inline recomputation on mismatch — so a consumed
 * plan is byte-for-byte the value the inline path would have produced.
 * Rendezvous timing therefore cannot perturb any metric, golden,
 * trace, or timeseries byte: --sim-threads=N is bit-identical to N=1
 * for every N.
 */

#ifndef NECPT_SIM_EPOCH_HH
#define NECPT_SIM_EPOCH_HH

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hh"

namespace necpt
{

class CorePump;

/**
 * The canonical event key of the sharded scheduler. Events across the
 * per-core pumps and the shared-resource domain are committed in
 * (cycle, priority, core, sequence) order: cycle is simulated time,
 * priority separates event classes at the same cycle (coherence -2,
 * memory pump -1, core steps/retires at their core index, the
 * interval sampler last), core breaks priority ties between pumps
 * (never needed today — step/retire priority *is* the core index, and
 * domain events use priorities no pump carries — but the key states
 * the invariant), and the globally-allocated sequence number makes the
 * order total. Identical to the legacy single-heap (cycle, priority,
 * sequence) order, which is the determinism proof's base case.
 */
struct CanonicalKey
{
    double cycle = 0.0;
    std::int64_t prio = 0;
    int core = 0;
    std::uint64_t seq = 0;

    /** Strict total order: does this event commit before @p o? */
    bool
    before(const CanonicalKey &o) const
    {
        if (cycle != o.cycle)
            return cycle < o.cycle;
        if (prio != o.prio)
            return prio < o.prio;
        if (core != o.core)
            return core < o.core;
        return seq < o.seq;
    }
};

/**
 * What a rendezvous worker may ask about the machine: the current
 * page-table mutation stamp and whether a guest VA is fully resident.
 * Implementations must be side-effect free — no faults, no statistics,
 * no tracer output — because probes run on worker threads and their
 * count depends on rendezvous timing, which --sim-threads changes.
 */
class ResidencyProbe
{
  public:
    virtual ~ResidencyProbe() = default;

    /** Monotonic page-table mutation counter; a verdict computed under
     *  stamp S is valid only while the stamp still reads S. */
    virtual std::uint64_t stamp() const = 0;

    /** Would ensureResident(@p gva) be a pure no-op right now? */
    virtual bool resident(Addr gva) const = 0;
};

/**
 * The deterministic fork/join rendezvous: sim_threads - 1 persistent
 * workers plus the coordinator, meeting at epoch boundaries to refill
 * the lookahead rings.
 */
class EpochBarrier
{
  public:
    /**
     * @param pumps      the per-core pumps whose rings the pool fills
     * @param probe      residency oracle (side-effect free; consulted
     *                   only while the coordinator is parked)
     * @param sim_threads total threads including the coordinator;
     *                   clamped to [1, pumps.size()]
     * @param epoch_len  epoch length in cycles (>= the minimum
     *                   cross-domain latency; the simulator passes the
     *                   L3 hit latency)
     */
    EpochBarrier(std::vector<CorePump> &pumps,
                 const ResidencyProbe &probe, int sim_threads,
                 double epoch_len);
    ~EpochBarrier();

    EpochBarrier(const EpochBarrier &) = delete;
    EpochBarrier &operator=(const EpochBarrier &) = delete;

    /**
     * Called by the coordinator with the cycle of the next event to
     * commit. Cheap no-op inside an epoch; at a boundary, rendezvous
     * with the worker pool if any ring has drained below its refill
     * watermark.
     */
    void
    maybeRendezvous(double next_cycle)
    {
        if (next_cycle < epoch_end)
            return;
        boundary(next_cycle);
    }

    /** Refill every ring unconditionally (initial priming). */
    void prime();

    int threads() const { return nthreads; }
    double epochLength() const { return epoch_len_; }
    /** Rendezvous (fork/join windows) so far — scaling diagnostics. */
    std::uint64_t rendezvousCount() const { return rendezvous_count; }

  private:
    void boundary(double next_cycle);
    /** Refill the rings assigned to @p thread_id (pump i -> thread
     *  i % nthreads); runs on the owning thread only. */
    void refillAssigned(int thread_id);
    void workerMain(int thread_id);

    std::vector<CorePump> *pumps_;
    const ResidencyProbe *probe_;
    int nthreads;
    double epoch_len_;
    double epoch_end = 0.0;
    std::uint64_t rendezvous_count = 0;

    /** Stamp the current window's verdicts are computed under; written
     *  by the coordinator before forking, read by workers inside the
     *  window (published by the fork mutex hand-off). */
    std::uint64_t window_stamp = 0;

    std::mutex mtx;
    std::condition_variable cv_work; //!< coordinator -> workers: fork
    std::condition_variable cv_done; //!< workers -> coordinator: join
    std::uint64_t fork_seq = 0;
    int done_count = 0;
    bool stopping = false;
    std::vector<std::thread> workers;
};

} // namespace necpt

#endif // NECPT_SIM_EPOCH_HH
