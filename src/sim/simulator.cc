#include "sim/simulator.hh"

#include <algorithm>
#include <limits>

#include "common/error.hh"
#include "common/log.hh"
#include "sim/coalescer.hh"
#include "sim/critical_path.hh"
#include "sim/epoch.hh"
#include "sim/pump.hh"
#include "sim/sched.hh"
#include "sim/shared_domain.hh"
#include "sim/timeseries.hh"
#include "workloads/churn_sources.hh"
#include "walk/machine.hh"
#include "walk/baselines.hh"
#include "walk/hybrid.hh"
#include "walk/native_ecpt.hh"
#include "walk/native_radix.hh"
#include "walk/nested_ecpt.hh"
#include "walk/nested_hpt.hh"
#include "walk/nested_radix.hh"
#include "walk/shadow.hh"

namespace necpt
{

Simulator::Simulator(const ExperimentConfig &config,
                     const SimParams &params_in)
    : cfg(config), params(params_in)
{
    if (params.cores < 1 || params.cores > 8)
        throw ConfigError(strfmt("cores must be in [1, 8], got %d",
                                 params.cores));
    if (params.max_outstanding_walks < 1
        || params.max_outstanding_walks > 64)
        throw ConfigError(
            strfmt("max_outstanding_walks must be in [1, 64], got %d",
                   params.max_outstanding_walks));
    if (params.sim_threads < 1 || params.sim_threads > 64)
        throw ConfigError(
            strfmt("sim_threads must be in [1, 64], got %d",
                   params.sim_threads));
}

std::unique_ptr<Walker>
Simulator::makeWalker(int core)
{
    switch (cfg.walker) {
      case WalkerKind::NativeRadix:
        return std::make_unique<NativeRadixWalker>(*sys, *mem, core);
      case WalkerKind::NestedRadix:
        return std::make_unique<NestedRadixWalker>(*sys, *mem, core);
      case WalkerKind::NativeEcpt:
        return std::make_unique<NativeEcptWalker>(*sys, *mem, core);
      case WalkerKind::NestedEcpt:
        return std::make_unique<NestedEcptWalker>(*sys, *mem, core,
                                                  cfg.features);
      case WalkerKind::NestedHybrid:
        return std::make_unique<HybridWalker>(*sys, *mem, core);
      case WalkerKind::AgilePagingIdeal:
        return std::make_unique<AgilePagingWalker>(*sys, *mem, core);
      case WalkerKind::PomTlb:
        if (!pom)
            pom = std::make_unique<PomTlb>(sys->hostPool());
        return std::make_unique<PomTlbWalker>(*sys, *mem, core, *pom);
      case WalkerKind::FlatNested:
        return std::make_unique<FlatNestedWalker>(*sys, *mem, core);
      case WalkerKind::ShadowPaging:
        return std::make_unique<ShadowPagingWalker>(*sys, *mem, core);
      case WalkerKind::NestedHpt:
        return std::make_unique<NestedHptWalker>(*sys, *mem, core);
    }
    panic("unknown WalkerKind");
}

void
Simulator::buildMachine(std::uint64_t footprint, const std::string &app)
{
    SystemConfig scfg = cfg.system;
    scfg.seed = params.seed;
    if (params.faults.enabled()) {
        const std::uint64_t fs =
            params.fault_seed ? params.fault_seed : params.seed;
        fault_plan = std::make_unique<FaultPlan>(params.faults, fs);
        scfg.fault_plan = fault_plan.get();
    }
    // Size the physical pools to the workload (the Table-2 machine has
    // 80GB; we only model what the scaled footprint needs). Multi-core
    // mode runs one instance per core.
    const std::uint64_t guest_need = alignUp(
        footprint * 2 * static_cast<std::uint64_t>(params.cores)
            + (1ULL << 30),
        1ULL << 30);
    if (scfg.guest_phys_bytes < guest_need)
        scfg.guest_phys_bytes = guest_need;
    if (scfg.host_phys_bytes < guest_need + (2ULL << 30))
        scfg.host_phys_bytes = guest_need + (2ULL << 30);
    // Coverage is app-dependent (Section 9.1 / Figures 12, 14).
    scfg.guest_thp_coverage = appGuestThpCoverage(app);
    scfg.host_thp_coverage = appHostThpCoverage(app);

    sys = std::make_unique<NestedSystem>(scfg);
    mem = std::make_unique<MemoryHierarchy>(cfg.memory, params.cores);
    if (fault_plan)
        mem->setFaultPlan(fault_plan.get());
    tlb.clear();
    walkers.clear();
    for (int core = 0; core < params.cores; ++core) {
        tlb.push_back(std::make_unique<TlbHierarchy>(cfg.tlb));
        walkers.push_back(makeWalker(core));
    }

    // Attribution is on by default; disabling turns every ledger
    // charge into an untaken branch in both the walkers and the
    // memory hierarchy's breakdown plumbing.
    mem->setAttribution(params.attribution);
    for (auto &w : walkers)
        w->setAttribution(params.attribution);

    if (params.tracer) {
        for (auto &w : walkers)
            w->setTracer(params.tracer);
        mem->setTracer(params.tracer);
        if (EcptPageTable *g = sys->guestEcpt())
            g->setTracer(params.tracer);
        if (EcptPageTable *h = sys->hostEcpt())
            h->setTracer(params.tracer);
        if (fault_plan)
            fault_plan->setTracer(params.tracer);
    }

    // Coherence subsystem: built only when churn is armed, so an
    // all-defaults spec stays byte-identical to a build without it.
    coherence.reset();
    churn_sources.clear();
    if (params.churn.enabled()) {
        coherence = std::make_unique<CoherenceController>(params.churn);
        for (int core = 0; core < params.cores; ++core)
            coherence->attachCore(tlb[core].get(), walkers[core].get());
        if (pom)
            coherence->attachPom(pom.get());
        if (fault_plan)
            coherence->setFaultPlan(fault_plan.get());
        if (params.tracer)
            coherence->setTracer(params.tracer);
        churn_sources = makeChurnSources(params.churn, params.seed);
    }
}

Simulator::~Simulator() = default;

void
Simulator::resetStats()
{
    mem->resetStats();
    for (auto &t : tlb)
        t->resetStats();
    for (auto &w : walkers)
        w->stats().reset();
    if (pom)
        pom->resetStats();
}

SimResult
Simulator::run(const std::string &app)
{
    const auto footprint =
        makeWorkload(app, params.scale_denominator)->info()
            .footprint_bytes;
    return runWith(app,
                   [&](std::uint64_t seed) {
                       return makeWorkload(
                           app, params.scale_denominator, seed);
                   },
                   footprint);
}

SimResult
Simulator::runWith(const std::string &label,
                   const WorkloadFactory &factory,
                   std::uint64_t footprint_bytes)
{
    buildMachine(footprint_bytes, label);

    /**
     * The event loop: shared state plus its handlers. Every scheduled
     * event is a small trivially-copyable functor capturing {Loop*, a
     * few scalars}, so it fits the scheduler's inline storage and the
     * steady-state loop never heap-allocates; the per-core walk
     * completion callees live in CoreState, satisfying FunctionRef's
     * outlives-the-call contract. (A local class so the handlers keep
     * runWith's access to the simulator's members.)
     */
    struct Loop
    {
        /** Walk-completion callee for one core (persistent: machines
         *  hold a FunctionRef to it). */
        struct DoneHandler
        {
            Loop *loop = nullptr;
            int core = 0;

            void
            operator()(WalkMachine &done) const
            {
                loop->walkDone(core, done);
            }
        };

        /** Per-core execution state. */
        struct CoreState
        {
            std::unique_ptr<Workload> workload;
            double cycle = 0.0;
            std::uint64_t instructions = 0;
            std::uint64_t accesses = 0; //!< issued (walk may still fly)
            double measure_start_cycle = 0.0;
            std::uint64_t measure_start_instr = 0;
            /** Overlap mode: in-flight walk machines and the completion
             *  watermark their data accesses have pushed the core to. */
            std::vector<WalkMachinePtr> machines;
            int inflight = 0;
            bool parked = false;
            double watermark = 0.0;
            /** MLP-cap stall accounting: when the park began, and the
             *  cycles this core has spent parked in total. */
            double park_start = 0.0;
            double stall_cycles = 0.0;
            /** Walk-MSHR (walk_coalescing): one entry per in-flight
             *  walk; same-page misses park here instead of walking. */
            WalkCoalescer coalescer;
            DoneHandler done;
        };

        struct StepEv
        {
            Loop *loop;
            int core;
            void operator()() const { loop->step(core); }
        };

        struct RetireEv
        {
            Loop *loop;
            int core;
            WalkMachine *mp;
            double end;
            void operator()() const { loop->retire(core, mp, end); }
        };

        struct ChurnEv
        {
            Loop *loop;
            int idx;
            double at;
            void operator()() const { loop->churnFire(idx, at); }
        };

        struct RoundDoneEv
        {
            Loop *loop;
            double at;
            void operator()() const { loop->roundDone(at); }
        };

        struct SampleEv
        {
            Loop *loop;
            double at;
            void operator()() const { loop->sampleFire(at); }
        };

        using CompletionSink = MemoryHierarchy::CompletionSink;

        /** Scheduler edge-sink tag for an event class. */
        static constexpr std::uint8_t
        evk(SimEventKind kind)
        {
            return static_cast<std::uint8_t>(kind);
        }

        Simulator &sim;
        std::vector<CoreState> cores;
        /** The sharded scheduler: one pump per core plus the shared
         *  domain, merged in canonical (cycle, priority, core, seq)
         *  order — byte-identical to the old single heap. */
        SchedContext ctx;
        std::vector<CorePump> pumps;
        SharedDomain sched;
        std::uint64_t total = 0;
        bool overlap = false;
        bool coalescing = false; //!< overlap && params.walk_coalescing
        bool stats_reset = false;
        std::uint64_t inflight_peak = 0;
        /** Registry backing the interval sampler (null = sampling off;
         *  owned by runWith, claimed fresh per run). */
        MetricsRegistry *sample_reg = nullptr;
        /** Shootdown round in flight (at most one; rounds chain). */
        CoherenceController::RoundPlan round{};
        bool round_active = false;
        int next_initiator = 0;

        // Memory-completion pump (overlap mode): every issued
        // transaction's completion cycle is known at issue time, so
        // the hierarchy's completion sink arms a calendar pump at that
        // cycle (priority -1, so walks resume before any core steps at
        // the same cycle). The scheduler's pump calendar collapses
        // same-cycle entries into one pumpFire — one drainUntil(at)
        // covers every transaction completing at that cycle — and
        // carries bare cycles instead of Handler closures, which is
        // what makes overlapped-walk event overhead affordable. The
        // pump_armed guard additionally skips re-arming the cycle
        // whose pump is still pending; pumpFire clears it before
        // draining, so a transaction issued *by* that pump for the
        // same cycle arms a fresh entry rather than being lost.
        double pump_armed = -1.0;

        void
        onTxnIssued(Cycles completes)
        {
            const double at = static_cast<double>(completes);
            if (at == pump_armed)
                return;
            pump_armed = at;
            sched.armPump(at);
        }

        void
        pumpFire(double next)
        {
            if (pump_armed == next)
                pump_armed = -1.0;
            sim.mem->drainUntil(static_cast<Cycles>(next));
        }

        /// @name Translation churn (events at priority -2: mutations
        /// and invalidations land before the memory pump and any core
        /// step at the same cycle)
        /// @{
        enum : std::int64_t { coherence_prio = -2 };

        /** Is any core still issuing accesses? Churn re-arms only
         *  while the kernels run, so the event loop terminates. */
        bool
        coresActive() const
        {
            for (const CoreState &cs : cores)
                if (cs.accesses < total)
                    return true;
            return false;
        }

        void
        churnFire(int idx, double at)
        {
            ChurnSource &src = *sim.churn_sources[idx];
            if (sim.params.tracer)
                sim.params.tracer->setNow(static_cast<Cycles>(at));
            src.fire(*sim.sys, *sim.coherence);
            maybeStartRound(at);
            if (coresActive()) {
                const double next =
                    at + static_cast<double>(src.period());
                sched.at(next, coherence_prio, ChurnEv{this, idx, next},
                         evk(SimEventKind::EvChurn));
            }
        }

        /** Launch a shootdown round if work is queued and none flies. */
        void
        maybeStartRound(double now)
        {
            if (round_active || !sim.coherence->pending())
                return;
            const int initiator = next_initiator;
            next_initiator = (next_initiator + 1)
                % static_cast<int>(cores.size());
            round = sim.coherence->beginRound(initiator,
                                              static_cast<Cycles>(now));
            if (!round.started)
                return;
            round_active = true;
            // Protocol cost lands on the cores' clocks: the initiator
            // stalls until the last ack (sw; zero under hw coherence),
            // every responder burns its handler time. The cores'
            // already-scheduled step events simply find a later clock.
            cores[initiator].cycle +=
                static_cast<double>(round.initiator_stall);
            if (round.responder_cost > 0) {
                for (std::size_t c = 0; c < cores.size(); ++c)
                    if (static_cast<int>(c) != initiator)
                        cores[c].cycle +=
                            static_cast<double>(round.responder_cost);
            }
            sched.at(static_cast<double>(round.completion),
                     coherence_prio,
                     RoundDoneEv{this,
                                 static_cast<double>(round.completion)},
                     evk(SimEventKind::EvRound));
        }

        void
        roundDone(double at)
        {
            sim.coherence->finishRound(round);
            round_active = false;
            // Chain: invalidations queued while this round flew go out
            // in the next one.
            maybeStartRound(at);
        }
        /// @}

        /// @name Interval metrics sampling (necpt-timeseries-v1)
        /// The sampler event runs at the lowest priority so a sample
        /// observes every completed same-cycle event — the property
        /// that makes the stream byte-identical at any --jobs level.
        /// @{
        enum : std::int64_t
        {
            sample_prio = std::numeric_limits<std::int64_t>::max()
        };

        void
        sampleFire(double at)
        {
            sim.params.timeseries->record(at,
                                          sample_reg->scalarSnapshot());
            if (coresActive()) {
                const double next =
                    at
                    + static_cast<double>(
                          sim.params.timeseries->interval());
                sched.at(next, sample_prio, SampleEv{this, next},
                         evk(SimEventKind::EvSample));
            }
        }
        /// @}

        /** One step = one workload access on one core. */
        void
        step(int core)
        {
            const SimParams &params = sim.params;
            CoreState &cs = cores[core];
            // Events emitted outside a timed walk phase (cuckoo
            // inserts, fault sites) are stamped with the leading
            // core's clock.
            if (params.tracer)
                params.tracer->setNow(static_cast<Cycles>(cs.cycle));
            if (params.critical_path)
                params.critical_path->noteCoreEvent(sched.runningSeq(),
                                                    core);

            if (cs.accesses == params.warmup_accesses && !stats_reset) {
                // Warm-up fault-ins may have left elastic resizes in
                // flight; background migration finishes them before
                // the measured region (Section 8 steady state). Reset
                // stats when the first core crosses the boundary.
                sim.sys->quiesce();
                sim.resetStats();
                for (auto &other : cores) {
                    other.measure_start_cycle = other.cycle;
                    other.measure_start_instr = other.instructions;
                }
                stats_reset = true;
            }

            // Next access: from the core's lookahead ring when primed
            // (the pump owns the same workload stream, so order is
            // preserved), straight from the workload otherwise. A
            // fresh resident verdict lets us skip ensureResident —
            // observably a pure no-op then; stale or negative verdicts
            // take the full path, so the bytes cannot depend on when
            // (or on which thread) the ring was filled.
            CorePump &pump = pumps[core];
            MemAccess access;
            // Speculative walk plan riding with the ring entry (null
            // when spec planning is off or the ring ran dry). The
            // pointer stays valid across ringPop — entries recycle
            // only at refills, which happen at epoch boundaries, never
            // mid-step — so it can be handed to startWalk below.
            const SpecWalkPlan *spec = nullptr;
            if (!pump.ringEmpty()) {
                const CorePump::AccessPlan plan = pump.ringFront();
                spec = pump.ringFrontSpec();
                pump.ringPop();
                access = plan.access;
                if (!plan.resident
                    || plan.stamp != sim.sys->mutationStamp())
                    sim.sys->ensureResident(access.vaddr);
            } else {
                access = cs.workload->next();
                sim.sys->ensureResident(access.vaddr);
            }

            cs.cycle += params.base_cpi * access.inst_gap;
            cs.instructions += access.inst_gap + 1;
            ++cs.accesses;

            // Address translation (serializes the access in the legacy
            // model; overlapped walks only park the core at the cap).
            auto tlb_result = sim.tlb[core]->lookup(access.vaddr);
            Translation translation = tlb_result.translation;
            cs.cycle += static_cast<double>(tlb_result.latency);

            if (tlb_result.hit || !overlap) {
                if (!tlb_result.hit) {
                    const WalkResult walk = sim.walkers[core]->translate(
                        access.vaddr, static_cast<Cycles>(cs.cycle));
                    cs.cycle += static_cast<double>(walk.latency);
                    translation = walk.translation;
                    sim.tlb[core]->install(access.vaddr, translation);
                    inflight_peak = std::max<std::uint64_t>(
                        inflight_peak, 1);
                    if (params.critical_path) {
                        // Serialized walks complete inside the step.
                        params.critical_path->noteWalk(
                            sched.runningSeq(), core,
                            sim.walkers[core]->lastWalkLedger(),
                            walk.latency);
                    }
                }

                // The data access itself; OoO hides most of its
                // latency.
                const Addr hpa = translation.apply(access.vaddr);
                const AccessResult data = sim.mem->access(
                    hpa, static_cast<Cycles>(cs.cycle), Requester::Core,
                    core);
                cs.cycle += static_cast<double>(data.latency)
                    * params.data_exposure;

                if (cs.accesses < total)
                    sched.at(cs.cycle, core, StepEv{this, core},
                             evk(SimEventKind::EvStep));
                return;
            }

            // Walk-MSHR merge: a walk for this 4KB page is already in
            // flight — park on its coalescer entry instead of walking
            // again. The waiter's TLB install + data access happen when
            // the primary retires; it neither counts toward the MLP cap
            // nor parks the core (merging is the parallelism win).
            if (coalescing) {
                const Addr page = WalkCoalescer::pageOf(access.vaddr);
                if (WalkCoalescer::Entry *e = cs.coalescer.find(page)) {
                    e->waiters.push_back({access.vaddr, cs.cycle});
                    if (cs.accesses < total)
                        sched.at(cs.cycle, core, StepEv{this, core},
                                 evk(SimEventKind::EvStep));
                    return;
                }
            }

            // Overlap mode, L2-TLB miss: issue a resumable walk and
            // keep going. The access's data fetch rides on the
            // completion. The speculative plan (if any) lets the walk
            // machine skip the hash/lookup work the epoch workers
            // already did — stamp-checked per step, byte-identical
            // either way.
            WalkMachinePtr m = sim.walkers[core]->startWalk(
                access.vaddr, static_cast<Cycles>(cs.cycle), spec);
            if (coalescing)
                cs.coalescer.open(WalkCoalescer::pageOf(access.vaddr),
                                  m.get());
            if (sim.coherence)
                m->setCoherenceEpoch(sim.coherence->epoch());
            ++cs.inflight;
            inflight_peak = std::max(
                inflight_peak, static_cast<std::uint64_t>(cs.inflight));
            WalkMachine &machine = *m;
            cs.machines.push_back(std::move(m));
            machine.onDone(cs.done);

            if (cs.accesses < total) {
                if (cs.inflight < params.max_outstanding_walks) {
                    sched.at(cs.cycle, core, StepEv{this, core},
                             evk(SimEventKind::EvStep));
                } else {
                    cs.parked = true;
                    cs.park_start = cs.cycle;
                }
            }
        }

        /** Completion is a scheduled event at the walk's end cycle
         *  (not run inline from machine code): the TLB install, the
         *  access's data fetch, and the slot release all happen at the
         *  simulated time the walk finished, and the machine can be
         *  retired there because its own frames are long off the
         *  stack. */
        void
        walkDone(int core, WalkMachine &done)
        {
            const double end = static_cast<double>(done.endCycle());
            const std::uint64_t seq =
                sched.at(end, core, RetireEv{this, core, &done, end},
                         evk(SimEventKind::EvRetire));
            if (sim.params.critical_path) {
                // The retire event completes this walk: annotate it
                // with the walk's attribution snapshot so the report
                // can say which cause dominated the chain.
                sim.params.critical_path->noteWalk(
                    seq, core, done.attrLedger(),
                    done.result().latency);
            }
        }

        void
        retire(int core, WalkMachine *mp, double end)
        {
            // Machines are pinned to their core's arena: this retire
            // event carries priority == core, so it committed through
            // that core's pump, and the machine it releases recycles
            // into that same core's walker pool.
            NECPT_ASSERT(sim.walkers[core]->coreIndex() == core);
            if (sim.params.critical_path)
                sim.params.critical_path->noteCoreEvent(
                    sched.runningSeq(), core);
            CoreState &owner = cores[core];
            Translation tr = mp->result().translation;
            // An invalidation overlapping this walk's VA landed while
            // it was in flight: whatever the walk read may be stale.
            // Replay against the mutated tables (refaulting first if
            // the page was unmapped outright) and charge the replay's
            // latency — the hardware would observe the same race via
            // its page-walk coherence checks and redo the walk.
            if (sim.coherence
                && sim.coherence->invalidatedSince(
                    mp->va(), mp->coherenceEpoch())) {
                sim.coherence->noteWalkReplay();
                sim.sys->ensureResident(mp->va());
                const WalkResult replay = sim.walkers[core]->translate(
                    mp->va(), static_cast<Cycles>(end));
                tr = replay.translation;
                end += static_cast<double>(replay.latency);
                if (sim.params.tracer) {
                    sim.params.tracer->instant(
                        "shootdown.replay", TraceCat::Shootdown,
                        static_cast<std::uint32_t>(core),
                        static_cast<Cycles>(end),
                        {{"latency",
                          static_cast<std::int64_t>(replay.latency)}});
                }
            }
            // A machine may finish invalid only when churn unmapped
            // its page mid-walk, and the shootdown ring is
            // conservative, so the replay above must have repaired it.
            NECPT_ASSERT(tr.valid);
            sim.tlb[core]->install(mp->va(), tr);
            const Addr hpa = tr.apply(mp->va());
            const AccessResult data = sim.mem->access(
                hpa, static_cast<Cycles>(end), Requester::Core, core);
            owner.watermark = std::max(
                owner.watermark,
                end + static_cast<double>(data.latency)
                          * sim.params.data_exposure);
            // Fan the translation out to every coalesced waiter, in
            // append order: data fetch at the primary's completion
            // (post-replay, so a waiter can never retire a translation
            // its primary had to redo), and the waiter's whole latency
            // binned as AttrCause::Coalesce. No per-waiter TLB
            // install: the primary installed the same 4K page at this
            // very cycle just above, so repeating it would only touch
            // the LRU state it already owns.
            if (coalescing) {
                WalkCoalescer::Entry *entry =
                    owner.coalescer.byPrimary(mp);
                NECPT_ASSERT(entry != nullptr);
                if (!entry->waiters.empty()) {
                    for (const WalkCoalescer::Waiter &w :
                         entry->waiters) {
                        const AccessResult wd = sim.mem->access(
                            tr.apply(w.va), static_cast<Cycles>(end),
                            Requester::Core, core);
                        owner.watermark = std::max(
                            owner.watermark,
                            end + static_cast<double>(wd.latency)
                                      * sim.params.data_exposure);
                        sim.walkers[core]->recordCoalescedWalk(
                            static_cast<Cycles>(
                                std::max(0.0, end - w.issue_cycle)));
                    }
                    sim.walkers[core]->noteCoalesceFanout(
                        entry->waiters.size());
                }
                owner.coalescer.close(entry);
            }
            --owner.inflight;
            // Dropping the pointer recycles the machine into its
            // walker's pool.
            std::erase_if(owner.machines, [mp](const WalkMachinePtr &wm) {
                return wm.get() == mp;
            });
            if (owner.parked) {
                owner.parked = false;
                owner.cycle = std::max(owner.cycle, end);
                const double stalled = owner.cycle - owner.park_start;
                if (stalled > 0) {
                    owner.stall_cycles += stalled;
                    if (sim.params.critical_path) {
                        sim.params.critical_path->noteStall(
                            sched.runningSeq(), core, stalled,
                            mp->attrLedger());
                    }
                }
                sched.at(owner.cycle, core, StepEv{this, core},
                         evk(SimEventKind::EvStep));
            }
        }
    };

    Loop loop{*this};
    // Interval sampling reads the live registry; claim one fresh per
    // run so repeated runWith calls never collide on entry names.
    MetricsRegistry sample_reg;
    if (params.timeseries) {
        exportMetrics(sample_reg);
        loop.sample_reg = &sample_reg;
    }
    loop.cores.resize(static_cast<std::size_t>(params.cores));
    loop.pumps.reserve(static_cast<std::size_t>(params.cores));
    for (int core = 0; core < params.cores; ++core) {
        Loop::CoreState &cs = loop.cores[core];
        cs.workload = factory(0xB0B + static_cast<std::uint64_t>(core));
        cs.workload->setup(*sys);
        cs.done = Loop::DoneHandler{&loop, core};
        loop.pumps.emplace_back(loop.ctx, core);
    }
    loop.sched.attach(&loop.ctx, &loop.pumps);
    loop.sched.setPumpSink(
        SharedDomain::PumpSink::bind<&Loop::pumpFire>(&loop),
        Loop::evk(SimEventKind::EvPump));
    if (params.critical_path)
        loop.sched.setEdgeSink(params.critical_path);
    if (params.prefault)
        sys->prefaultAll();

    loop.total = params.warmup_accesses + params.measure_accesses;
    loop.overlap = params.max_outstanding_walks > 1;
    // Coalescing is meaningful only when walks overlap: the serialized
    // model never has a second same-page miss in flight, and gating it
    // keeps mlp=1 runs byte-identical with the flag set either way.
    loop.coalescing = loop.overlap && params.walk_coalescing;
    // Overlap mode wires the hierarchy's completion sink into the
    // scheduler: one pump event per transaction, armed at issue with
    // the analytically known completion cycle. Serial mode drains
    // synchronously inside batchAccess and needs no pump at all.
    if (loop.overlap)
        mem->setCompletionSink(
            Loop::CompletionSink::bind<&Loop::onTxnIssued>(&loop));
    loop.stats_reset = params.warmup_accesses == 0;
    if (loop.stats_reset)
        sys->quiesce();

    // All cores start at cycle 0; the (cycle, priority=core, seq)
    // order advances the earliest core, lowest index first on ties —
    // the legacy interleaving.
    for (int core = 0; core < params.cores; ++core)
        loop.sched.at(0.0, core, Loop::StepEv{&loop, core},
                      Loop::evk(SimEventKind::EvStep));
    // Churn daemons wake for the first time one period in; each firing
    // re-arms itself while any core still issues accesses.
    for (std::size_t i = 0; i < churn_sources.size(); ++i) {
        const double first =
            static_cast<double>(churn_sources[i]->period());
        loop.sched.at(first, Loop::coherence_prio,
                      Loop::ChurnEv{&loop, static_cast<int>(i), first},
                      Loop::evk(SimEventKind::EvChurn));
    }
    // The sampler ticks every interval at the lowest priority, so each
    // snapshot observes every completed same-cycle event.
    if (params.timeseries) {
        const double first =
            static_cast<double>(params.timeseries->interval());
        loop.sched.at(first, Loop::sample_prio,
                      Loop::SampleEv{&loop, first},
                      Loop::evk(SimEventKind::EvSample));
    }

    // Lookahead residency oracle. HPT organizations keep verdicts off:
    // ensureResident's guest/host lookups there count probe statistics
    // (avgProbes), so skipping the call would be observable — every
    // other organization's already-resident path is side-effect free.
    struct SysProbe final : ResidencyProbe
    {
        NestedSystem *sys = nullptr;
        bool verdicts = true;

        std::uint64_t
        stamp() const override
        {
            return sys->mutationStamp();
        }

        bool
        resident(Addr gva) const override
        {
            return verdicts && sys->isResident(gva);
        }
    };
    SysProbe probe;
    probe.sys = sys.get();
    probe.verdicts = !sys->guestHpt() && !sys->hostHpt();

    // Each pump prefetches its own core's workload stream; the ring
    // capacity bounds how far a rendezvous window runs ahead. Epochs
    // are one L3 hit long — the minimum latency anything takes through
    // the shared domain.
    constexpr std::size_t ring_capacity = 1024;
    for (int core = 0; core < params.cores; ++core) {
        loop.pumps[static_cast<std::size_t>(core)].bindWorkload(
            loop.cores[static_cast<std::size_t>(core)].workload.get());
        loop.pumps[static_cast<std::size_t>(core)].reserveRing(
            ring_capacity);
    }

    // Epoch-window walk execution: with walks overlapped, a nested-
    // ECPT machine, and real worker threads to farm it to, rendezvous
    // workers also precompute each ring-ahead access's speculative
    // walk plan (probe-address hashing + functional translations —
    // the stat-free pure-function slice of a walk; walk/spec_plan.hh).
    // Consumption is stamp-validated per step, so bytes are identical
    // whether plans exist or not — which is exactly why the gate can
    // be this selective without forking behavior.
    struct SpecSource
    {
        const NestedSystem *sys = nullptr;

        void
        plan(Addr gva, std::uint64_t stamp, std::vector<Addr> &scratch,
             SpecWalkPlan &out)
        {
            computeSpecWalkPlan(*sys, gva, stamp, scratch, out);
        }
    };
    SpecSource spec_source;
    spec_source.sys = sys.get();
    if (loop.overlap && params.sim_threads > 1
        && cfg.walker == WalkerKind::NestedEcpt) {
        for (CorePump &p : loop.pumps)
            p.enableSpecPlans(
                CorePump::SpecPlanner::bind<&SpecSource::plan>(
                    &spec_source));
    }

    EpochBarrier barrier(loop.pumps, probe, params.sim_threads,
                         static_cast<double>(cfg.memory.l3.latency));
    barrier.prime();

    while (!loop.sched.empty()) {
        barrier.maybeRendezvous(loop.sched.nextCycle());
        loop.sched.runNext();
    }
    // Defensive: any transaction the pump chain did not cover (e.g.
    // background refills issued by the very last completion).
    mem->setCompletionSink(nullptr);
    mem->drainAll();
    for (auto &cs : loop.cores)
        NECPT_ASSERT(cs.inflight == 0 && cs.machines.empty()
                     && cs.coalescer.empty());
    const bool overlap = loop.overlap;
    const std::uint64_t inflight_peak = loop.inflight_peak;

    SimResult result;
    result.config = cfg.name;
    result.app = label;
    // Execution time: the mean measured-core interval (cores run the
    // same length of trace; the mean is robust to tail skew). In
    // overlap mode a core's clock may trail its last walk's data
    // access — the watermark covers the difference.
    double cycles_sum = 0;
    std::uint64_t instr_sum = 0;
    for (const Loop::CoreState &cs : loop.cores) {
        cycles_sum += std::max(cs.cycle, cs.watermark)
            - cs.measure_start_cycle;
        instr_sum += cs.instructions - cs.measure_start_instr;
    }
    result.cycles =
        static_cast<Cycles>(cycles_sum / params.cores);
    result.instructions = instr_sum;
    fillResult(result);

    // Walk-overlap characterization: total walker busy-cycles spread
    // over the measured interval and core count. Serialized walks
    // (the default) keep this at or below 1; overlapped walks push
    // it above.
    result.walk_inflight_max =
        overlap ? inflight_peak : (result.walks ? 1 : 0);
    result.walk_inflight_avg =
        result.cycles
            ? static_cast<double>(result.mmu_busy_cycles)
                  / (static_cast<double>(result.cycles)
                     * static_cast<double>(params.cores))
            : 0.0;
    result.metrics["walk.inflight"] = result.walk_inflight_avg;
    result.metrics["walk.inflight.max"] =
        static_cast<double>(result.walk_inflight_max);
    // MLP-cap stalls: cycles cores sat parked because the in-flight
    // walk cap was reached (0 in serialized mode). The headline number
    // for diagnosing mlp>1 slowdowns — see EXPERIMENTS.md.
    double stall_sum = 0;
    for (const Loop::CoreState &cs : loop.cores)
        stall_sum += cs.stall_cycles;
    result.metrics["walk.stall.cycles"] = stall_sum;

    // Under injection, prove the design absorbed every fault: the
    // ECPT/CWT cross-check is the Section 4.4 staleness argument run
    // against the final state (throws InvariantViolation otherwise).
    if (fault_plan)
        sys->auditInvariants();
    return result;
}

void
Simulator::fillResult(SimResult &result)
{
    // Aggregate walker statistics across cores.
    WalkerStats ws;
    for (const auto &w : walkers) {
        const WalkerStats &s = w->stats();
        ws.walks.inc(s.walks.value());
        ws.mmu_requests.inc(s.mmu_requests.value());
        ws.busy_cycles += s.busy_cycles;
        for (int k = 0; k < 4; ++k) {
            ws.guest_kind[k].inc(s.guest_kind[k].value());
            ws.host_kind[k].inc(s.host_kind[k].value());
        }
        for (int i = 0; i < 3; ++i) {
            ws.step_sum[i] += s.step_sum[i];
            ws.step_cnt[i] += s.step_cnt[i];
            ws.step_lat[i] += s.step_lat[i];
        }
        for (int c = 0; c < num_attr_causes; ++c)
            ws.attr_cycles[static_cast<std::size_t>(c)] +=
                s.attr_cycles[static_cast<std::size_t>(c)];
        ws.coalesced.inc(s.coalesced.value());
    }
    result.mmu_busy_cycles = ws.busy_cycles;
    result.walks = ws.walks.value();
    result.mmu_requests = ws.mmu_requests.value();
    result.walk_latency = walkers[0]->stats().walk_latency;

    std::uint64_t l1m = 0, l2m = 0;
    for (const auto &t : tlb) {
        l1m += t->l1Stats().misses();
        l2m += t->l2Stats().misses();
    }
    result.l1_tlb_misses = l1m;
    result.l2_tlb_misses = l2m;

    const double ki = static_cast<double>(result.instructions) / 1000.0;
    if (ki > 0) {
        result.mmu_rpki = static_cast<double>(result.mmu_requests) / ki;
        std::uint64_t l2_misses = 0, l2_mmu_misses = 0;
        for (int c = 0; c < static_cast<int>(tlb.size()); ++c) {
            l2_misses += mem->l2(c).stats(Requester::Core).misses()
                + mem->l2(c).stats(Requester::Mmu).misses();
            l2_mmu_misses += mem->l2(c).stats(Requester::Mmu).misses();
        }
        const auto &l3_core = mem->l3().stats(Requester::Core);
        const auto &l3_mmu = mem->l3().stats(Requester::Mmu);
        result.l2_mpki = static_cast<double>(l2_misses) / ki;
        result.l3_mpki = static_cast<double>(l3_core.misses()
                                             + l3_mmu.misses()) / ki;
        result.mmu_l2_misses_pki =
            static_cast<double>(l2_mmu_misses) / ki;
    }
    result.avg_mshrs = mem->avgMshrsInUse();
    result.max_mshrs = mem->maxMshrsInUse();
    result.dram_row_hit_rate = mem->dram().rowHitRate();

    // Walk-kind fractions (Figure 14).
    std::uint64_t gtotal = 0, htotal = 0;
    for (int k = 0; k < 4; ++k) {
        gtotal += ws.guest_kind[k].value();
        htotal += ws.host_kind[k].value();
    }
    for (int k = 0; k < 4; ++k) {
        result.guest_kind_frac[k] =
            gtotal ? static_cast<double>(ws.guest_kind[k].value())
                    / static_cast<double>(gtotal) : 0.0;
        result.host_kind_frac[k] =
            htotal ? static_cast<double>(ws.host_kind[k].value())
                    / static_cast<double>(htotal) : 0.0;
    }
    for (int s = 0; s < 3; ++s)
        result.step_avg[s] = ws.avgStepAccesses(s);

    // Nested-ECPT cache introspection (Section 9.4, Figure 12); core 0
    // is representative (cores run the same workload).
    if (auto *necpt_walker =
            dynamic_cast<NestedEcptWalker *>(walkers[0].get())) {
        result.stc_hit_rate =
            necpt_walker->shortcutCache().stats().rate();
        result.gcwc_pud_hit =
            necpt_walker->guestCwc().stats(PageSize::Page1G).rate();
        result.gcwc_pmd_hit =
            necpt_walker->guestCwc().stats(PageSize::Page2M).rate();
        result.hcwc_pud_hit =
            necpt_walker->hostCwcStep3().stats(PageSize::Page1G).rate();
        result.hcwc_pmd_hit =
            necpt_walker->hostCwcStep3().stats(PageSize::Page2M).rate();
        result.hcwc_pte_step1_hit =
            necpt_walker->hostCwcStep1().stats(PageSize::Page4K).rate();
        result.hcwc_pte_step3_hit =
            necpt_walker->hostCwcStep3().stats(PageSize::Page4K).rate();
        result.hcwc_pte_step3_accesses =
            necpt_walker->hostCwcStep3()
                .stats(PageSize::Page4K)
                .accesses();
        const auto &ctl = necpt_walker->adaptiveController();
        const auto &pte_hist = ctl.pteMonitor().history();
        const auto &pmd_hist = ctl.pmdMonitor().history();
        if (!pte_hist.empty()) {
            double sum = 0;
            for (double r : pte_hist)
                sum += r;
            result.adaptive_pte_rate =
                sum / static_cast<double>(pte_hist.size());
        } else {
            result.adaptive_pte_rate = result.hcwc_pte_step3_hit;
        }
        if (!pmd_hist.empty()) {
            double sum = 0;
            for (double r : pmd_hist)
                sum += r;
            result.adaptive_pmd_rate =
                sum / static_cast<double>(pmd_hist.size());
        } else {
            result.adaptive_pmd_rate = result.hcwc_pmd_hit;
        }
    }

    result.guest_structure_bytes = sys->guestStructureBytes();
    result.host_structure_bytes = sys->hostStructureBytes();
    result.pte_bytes_total = sys->guestPteBytes() + sys->hostPteBytes();
    result.guest_faults = sys->guestFaults();
    result.host_faults = sys->hostFaults();
    // Re-publish the scalars under the unified dotted names (the
    // expressions above are the single source; the map just aliases
    // them, so bench output stays byte-identical either way).
    auto &m = result.metrics;
    for (int k = 0; k < 4; ++k) {
        const std::string kn = walkKindName(static_cast<WalkKind>(k));
        m["walk.kind.guest." + kn + ".frac"] = result.guest_kind_frac[k];
        m["walk.kind.host." + kn + ".frac"] = result.host_kind_frac[k];
    }
    for (int s = 0; s < 3; ++s)
        m["walk.step" + std::to_string(s + 1) + ".avg_probes"] =
            result.step_avg[s];
    m["stc.hitrate"] = result.stc_hit_rate;
    m["cwc.gcwc.pud.hitrate"] = result.gcwc_pud_hit;
    m["cwc.gcwc.pmd.hitrate"] = result.gcwc_pmd_hit;
    m["cwc.hcwc_step3.pud.hitrate"] = result.hcwc_pud_hit;
    m["cwc.hcwc_step3.pmd.hitrate"] = result.hcwc_pmd_hit;
    m["cwc.hcwc_step1.pte.hitrate"] = result.hcwc_pte_step1_hit;
    m["cwc.hcwc_step3.pte.hitrate"] = result.hcwc_pte_step3_hit;
    m["cwc.hcwc_step3.pte.accesses"] =
        static_cast<double>(result.hcwc_pte_step3_accesses);
    m["adaptive.pte.rate"] = result.adaptive_pte_rate;
    m["adaptive.pmd.rate"] = result.adaptive_pmd_rate;

    // Cycle attribution (summed across cores). With attribution
    // enabled end-to-end, conservation makes attr.total.cycles equal
    // mmu_busy_cycles exactly — Figure 10 reads it directly.
    std::uint64_t attr_total = 0;
    for (int c = 0; c < num_attr_causes; ++c)
        attr_total += ws.attr_cycles[static_cast<std::size_t>(c)];
    m["attr.total.cycles"] = static_cast<double>(attr_total);
    for (int c = 0; c < num_attr_causes; ++c) {
        const std::uint64_t cyc =
            ws.attr_cycles[static_cast<std::size_t>(c)];
        const std::string an =
            std::string("attr.")
            + attrCauseName(static_cast<AttrCause>(c));
        m[an + ".cycles"] = static_cast<double>(cyc);
        m[an + ".share"] = attr_total
            ? static_cast<double>(cyc) / static_cast<double>(attr_total)
            : 0.0;
    }
    for (int s = 0; s < 3; ++s)
        m["walk.step" + std::to_string(s + 1) + ".cycles"] =
            static_cast<double>(ws.step_lat[s]);
    // Walk-MSHR merges (0 unless walk_coalescing is on — the key is
    // emitted unconditionally so metric sets stay schema-stable).
    m["walk.coalesced"] = static_cast<double>(ws.coalesced.value());

    // Coherence scalars exist only when churn is armed, so churn-off
    // runs emit byte-identical metric maps.
    if (coherence) {
        const auto &cs = coherence->stats();
        m["shootdown.rounds"] = static_cast<double>(cs.rounds);
        m["shootdown.invalidations"] =
            static_cast<double>(cs.invalidations);
        m["shootdown.entries.dropped"] =
            static_cast<double>(cs.tlb_entries + cs.pom_entries);
        m["shootdown.acks"] = static_cast<double>(cs.acks);
        m["shootdown.acks.dropped"] =
            static_cast<double>(cs.acks_dropped);
        m["shootdown.walk_replays"] =
            static_cast<double>(cs.walk_replays);
        m["shootdown.latency.mean"] = cs.round_latency.mean();
        m["churn.ops"] = static_cast<double>(cs.churn_ops);
    }
}


void
Simulator::exportMetrics(MetricsRegistry &reg, const std::string &prefix)
{
    NECPT_ASSERT(sys && mem && !walkers.empty());
    const int n = static_cast<int>(walkers.size());
    for (int c = 0; c < n; ++c) {
        // Multi-core machines get a per-core prefix; the common case
        // keeps the short names (walk.nested_ecpt.step1.probes).
        const std::string p =
            n > 1 ? prefix + "core" + std::to_string(c) + "." : prefix;
        walkers[c]->registerMetrics(reg, p);
        reg.addHitMiss(p + "tlb.l1", &tlb[c]->l1Stats());
        reg.addHitMiss(p + "tlb.l2", &tlb[c]->l2Stats());
    }
    if (pom)
        reg.addHitMiss(prefix + "tlb.pom", &pom->stats());
    if (coherence)
        coherence->registerMetrics(reg, prefix);
    mem->registerMetrics(reg, prefix);

    const EcptPageTable *g = sys->guestEcpt();
    const EcptPageTable *h = sys->hostEcpt();
    if (g)
        g->registerMetrics(reg, prefix + "guest.");
    if (h)
        h->registerMetrics(reg, prefix + "host.");
    if (g || h) {
        reg.addCounter(prefix + "cuckoo.kicks", [g, h] {
            std::uint64_t total = 0;
            for (PageSize size : all_page_sizes) {
                if (g)
                    total += g->tableOf(size).rehashMoves();
                if (h)
                    total += h->tableOf(size).rehashMoves();
            }
            return total;
        }, "total cuckoo displacements across address spaces");
    }

    const NestedSystem *s = sys.get();
    reg.addCounter(prefix + "pt.guest.bytes",
                   [s] { return s->guestStructureBytes(); },
                   "guest translation-structure footprint (Section 9.5)");
    reg.addCounter(prefix + "pt.host.bytes",
                   [s] { return s->hostStructureBytes(); });
    reg.addCounter(prefix + "pt.guest.faults",
                   [s] { return s->guestFaults(); });
    reg.addCounter(prefix + "pt.host.faults",
                   [s] { return s->hostFaults(); });
}

SimResult
runSim(const ExperimentConfig &config, const SimParams &params,
       const std::string &app)
{
    Simulator sim(config, params);
    return sim.run(app);
}

} // namespace necpt
