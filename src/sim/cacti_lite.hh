/**
 * @file
 * CactiLite: a small analytical SRAM area/power model standing in for
 * Cacti 6.5 at 22nm (Table 3). It captures the first-order effects:
 * per-structure fixed overhead (decoders, comparators, sense amps),
 * per-byte cell area, and a superlinear cost in read ports — the
 * reason the Nested-ECPT MMU caches, though smaller in bytes, spend
 * more area/power than the radix ones (they are probed in parallel).
 */

#ifndef NECPT_SIM_CACTI_LITE_HH
#define NECPT_SIM_CACTI_LITE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace necpt
{

/** One MMU SRAM structure. */
struct SramStructure
{
    std::string name;
    std::uint64_t bytes;
    int ports = 1; //!< simultaneous read ports (parallel probes)
};

/** Area/power estimate for a set of structures. */
struct AreaPower
{
    double area_mm2 = 0;
    double power_mw = 0;
};

/**
 * 22nm-calibrated analytical model.
 */
class CactiLite
{
  public:
    /** Estimate one structure. */
    static AreaPower estimate(const SramStructure &structure);

    /** Estimate a full MMU configuration. */
    static AreaPower estimate(const std::vector<SramStructure> &structures);
};

/** The Table-3 MMU structure inventories. */
std::vector<SramStructure> nestedRadixMmuStructures();
std::vector<SramStructure> nestedEcptMmuStructures();
std::vector<SramStructure> nestedHybridMmuStructures();
std::vector<SramStructure> nativeRadixMmuStructures();
std::vector<SramStructure> nativeEcptMmuStructures();

/** Total bytes of a structure list. */
std::uint64_t totalBytes(const std::vector<SramStructure> &structures);

} // namespace necpt

#endif // NECPT_SIM_CACTI_LITE_HH
