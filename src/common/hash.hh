/**
 * @file
 * The hash-function family used by hashed and elastic cuckoo page tables.
 *
 * Table 2 of the paper specifies CRC hash functions with a 2-cycle latency.
 * Each ECPT way uses an independently seeded member of the family so that a
 * key colliding in one way is (practically) independent in the others —
 * the property cuckoo hashing relies on.
 */

#ifndef NECPT_COMMON_HASH_HH
#define NECPT_COMMON_HASH_HH

#include <array>
#include <cstdint>

#include "common/types.hh"

namespace necpt
{

/** CRC-64/ECMA polynomial evaluation of an 8-byte message. */
std::uint64_t crc64(std::uint64_t value);

/**
 * One member of the seeded CRC hash family.
 *
 * A HashFunction maps a virtual page number to a table slot index; the
 * caller reduces modulo its table size. Seeding XORs and multiplies the
 * input with splitmix-derived constants before the CRC pass, giving
 * independent functions per (page-size table, way).
 */
class HashFunction
{
  public:
    HashFunction() : preXor(0), mult(0x9E3779B97F4A7C15ULL) {}

    /** Build the family member with the given @p seed. */
    explicit HashFunction(std::uint64_t seed);

    /** Hash a (page-number) key to a 64-bit value. */
    std::uint64_t
    operator()(std::uint64_t key) const
    {
        return crc64((key ^ preXor) * mult);
    }

    /** Hardware latency of the hash unit (Table 2: 2 cycles). */
    static constexpr Cycles latency = 2;

  private:
    std::uint64_t preXor;
    std::uint64_t mult;
};

/**
 * A family of hash functions indexed by (page-size, way).
 *
 * Guest and host use different family seeds (the paper's gH vs hH).
 */
class HashFamily
{
  public:
    static constexpr int max_ways = 8;

    /** Build a family for up to @p ways ways per page size. */
    explicit HashFamily(std::uint64_t family_seed, int ways = 3);

    /** The hash function for @p size 's table, way @p way. */
    const HashFunction &
    way(PageSize size, int way) const
    {
        return functions[static_cast<int>(size)][way];
    }

    int numWays() const { return ways_; }

    /**
     * Hash @p key through all @p d ways of @p size 's table in one pass,
     * writing the raw 64-bit values to @p out (at least @p d entries).
     * The hardware computes the d hashes in parallel (Figure 4); way
     * loops that need every candidate slot use this instead of
     * re-deriving per-way state d times.
     */
    void
    hashAll(PageSize size, std::uint64_t key, int d, std::uint64_t *out) const
    {
        const auto &fns = functions[static_cast<int>(size)];
        for (int w = 0; w < d; ++w)
            out[w] = fns[w](key);
    }

  private:
    std::array<std::array<HashFunction, max_ways>, num_page_sizes> functions;
    int ways_;
};

} // namespace necpt

#endif // NECPT_COMMON_HASH_HH
