/**
 * @file
 * The hash-function family used by hashed and elastic cuckoo page tables.
 *
 * Table 2 of the paper specifies CRC hash functions with a 2-cycle latency.
 * Each ECPT way uses an independently seeded member of the family so that a
 * key colliding in one way is (practically) independent in the others —
 * the property cuckoo hashing relies on.
 *
 * The CRC-64/ECMA evaluation is slice-by-8: the classic byte-at-a-time
 * loop carries an 8-long dependency chain through the crc register, and
 * at ~10 hash calls per simulated access it was the single hottest leaf
 * in the profile. Slicing looks all eight message bytes up in eight
 * independent tables and XORs — same polynomial algebra, no carried
 * dependency, and the d-way family pass (hashAll) vectorizes the table
 * gathers (common/simd.hh).
 */

#ifndef NECPT_COMMON_HASH_HH
#define NECPT_COMMON_HASH_HH

#include <array>
#include <cstdint>

#include "common/simd.hh"
#include "common/types.hh"

namespace necpt
{

namespace detail
{
/** Slice-by-8 CRC-64/ECMA-182 tables. tables[0] is the classic
 *  byte-at-a-time table; tables[k][b] advances tables[k-1][b] by one
 *  zero byte, so a message byte consumed k steps before the end is
 *  looked up in tables[k]. */
struct Crc64Tables
{
    std::uint64_t t[8][256];
    Crc64Tables();
};
extern const Crc64Tables crc64_tables;
} // namespace detail

/**
 * CRC-64/ECMA polynomial evaluation of an 8-byte message (init and
 * final XOR all-ones). Bit-identical to the historical byte-at-a-time
 * loop — the golden tests pin its values.
 *
 * Derivation: with init c0 = ~0 and the message's least-significant
 * byte consumed first, fold both into d = ~byteswap(value); byte j of
 * d then contributes tables[j][byte] to the pre-inversion remainder.
 */
inline std::uint64_t
crc64(std::uint64_t value)
{
    const std::uint64_t d = ~__builtin_bswap64(value);
    const auto &t = detail::crc64_tables.t;
    std::uint64_t acc = t[0][d & 0xFF];
    acc ^= t[1][(d >> 8) & 0xFF];
    acc ^= t[2][(d >> 16) & 0xFF];
    acc ^= t[3][(d >> 24) & 0xFF];
    acc ^= t[4][(d >> 32) & 0xFF];
    acc ^= t[5][(d >> 40) & 0xFF];
    acc ^= t[6][(d >> 48) & 0xFF];
    acc ^= t[7][d >> 56];
    return ~acc;
}

/**
 * One member of the seeded CRC hash family.
 *
 * A HashFunction maps a virtual page number to a table slot index; the
 * caller reduces modulo its table size. Seeding XORs and multiplies the
 * input with splitmix-derived constants before the CRC pass, giving
 * independent functions per (page-size table, way).
 */
class HashFunction
{
  public:
    HashFunction() : preXor(0), mult(0x9E3779B97F4A7C15ULL) {}

    /** Build the family member with the given @p seed. */
    explicit HashFunction(std::uint64_t seed);

    /** Hash a (page-number) key to a 64-bit value. */
    std::uint64_t
    operator()(std::uint64_t key) const
    {
        return crc64((key ^ preXor) * mult);
    }

    /** The seeded pre-mix alone (the slice input before the CRC pass),
     *  for batched CRC evaluation across family members. */
    std::uint64_t
    premix(std::uint64_t key) const
    {
        return (key ^ preXor) * mult;
    }

    /** Hardware latency of the hash unit (Table 2: 2 cycles). */
    static constexpr Cycles latency = 2;

  private:
    std::uint64_t preXor;
    std::uint64_t mult;
};

/**
 * A family of hash functions indexed by (page-size, way).
 *
 * Guest and host use different family seeds (the paper's gH vs hH).
 */
class HashFamily
{
  public:
    static constexpr int max_ways = 8;

    /** Build a family for up to @p ways ways per page size. */
    explicit HashFamily(std::uint64_t family_seed, int ways = 3);

    /** The hash function for @p size 's table, way @p way. */
    const HashFunction &
    way(PageSize size, int way) const
    {
        return functions[static_cast<int>(size)][way];
    }

    int numWays() const { return ways_; }

    /**
     * Hash @p key through all @p d ways of @p size 's table in one pass,
     * writing the raw 64-bit values to @p out (at least @p d entries).
     * The hardware computes the d hashes in parallel (Figure 4); the
     * software model mirrors that with a four-lane CRC kernel over the
     * per-way premixes instead of d serial passes.
     */
    void
    hashAll(PageSize size, std::uint64_t key, int d, std::uint64_t *out) const
    {
        const auto &fns = functions[static_cast<int>(size)];
        int w = 0;
        for (; w + 4 <= d; w += 4) {
            std::uint64_t mixed[4];
            for (int l = 0; l < 4; ++l)
                mixed[l] = ~__builtin_bswap64(fns[w + l].premix(key));
            simd::crc64x4(detail::crc64_tables.t, mixed, out + w);
        }
        if (int rem = d - w) {
            // Tail lanes replicate the last premix; extra lanes are
            // computed and discarded (cheaper than a masked path).
            std::uint64_t mixed[4], folded[4];
            for (int l = 0; l < 4; ++l)
                mixed[l] = ~__builtin_bswap64(
                    fns[w + (l < rem ? l : rem - 1)].premix(key));
            simd::crc64x4(detail::crc64_tables.t, mixed, folded);
            for (int l = 0; l < rem; ++l)
                out[w + l] = folded[l];
        }
    }

  private:
    std::array<std::array<HashFunction, max_ways>, num_page_sizes> functions;
    int ways_;
};

} // namespace necpt

#endif // NECPT_COMMON_HASH_HH
