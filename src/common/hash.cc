#include "common/hash.hh"

#include "common/rng.hh"

namespace necpt
{

namespace
{

/** CRC-64/ECMA-182 table, generated at static-init time. */
struct Crc64Table
{
    std::uint64_t entry[256];

    Crc64Table()
    {
        constexpr std::uint64_t poly = 0x42F0E1EBA9EA3693ULL;
        for (unsigned i = 0; i < 256; ++i) {
            std::uint64_t crc = static_cast<std::uint64_t>(i) << 56;
            for (int bit = 0; bit < 8; ++bit)
                crc = (crc & (1ULL << 63)) ? (crc << 1) ^ poly : crc << 1;
            entry[i] = crc;
        }
    }
};

const Crc64Table crc_table;

} // namespace

std::uint64_t
crc64(std::uint64_t value)
{
    std::uint64_t crc = ~std::uint64_t{0};
    for (int byte = 0; byte < 8; ++byte) {
        const auto in = static_cast<unsigned char>(value >> (byte * 8));
        crc = (crc << 8) ^ crc_table.entry[((crc >> 56) ^ in) & 0xFF];
    }
    return ~crc;
}

HashFunction::HashFunction(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    preXor = splitmix64(sm);
    mult = splitmix64(sm) | 1; // multiplier must be odd
}

HashFamily::HashFamily(std::uint64_t family_seed, int ways)
    : ways_(ways)
{
    std::uint64_t sm = family_seed;
    for (int size = 0; size < num_page_sizes; ++size)
        for (int way = 0; way < max_ways; ++way)
            functions[size][way] = HashFunction(splitmix64(sm));
}

} // namespace necpt
