#include "common/hash.hh"

#include "common/rng.hh"

namespace necpt
{

namespace detail
{

Crc64Tables::Crc64Tables()
{
    constexpr std::uint64_t poly = 0x42F0E1EBA9EA3693ULL;
    for (unsigned i = 0; i < 256; ++i) {
        std::uint64_t crc = static_cast<std::uint64_t>(i) << 56;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc & (1ULL << 63)) ? (crc << 1) ^ poly : crc << 1;
        t[0][i] = crc;
    }
    // t[k][b]: run b through the classic table, then k zero bytes.
    for (int k = 1; k < 8; ++k) {
        for (unsigned i = 0; i < 256; ++i) {
            const std::uint64_t prev = t[k - 1][i];
            t[k][i] = (prev << 8) ^ t[0][prev >> 56];
        }
    }
}

const Crc64Tables crc64_tables;

} // namespace detail

HashFunction::HashFunction(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    preXor = splitmix64(sm);
    mult = splitmix64(sm) | 1; // multiplier must be odd
}

HashFamily::HashFamily(std::uint64_t family_seed, int ways)
    : ways_(ways)
{
    std::uint64_t sm = family_seed;
    for (int size = 0; size < num_page_sizes; ++size)
        for (int way = 0; way < max_ways; ++way)
            functions[size][way] = HashFunction(splitmix64(sm));
}

} // namespace necpt
