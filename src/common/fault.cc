#include "common/fault.hh"

#include <cstdlib>
#include <vector>

#include "common/error.hh"

namespace necpt
{

namespace
{

std::vector<std::string>
splitOn(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::string::size_type start = 0;
    while (start <= text.size()) {
        const auto end = text.find(sep, start);
        if (end == std::string::npos) {
            parts.push_back(text.substr(start));
            break;
        }
        parts.push_back(text.substr(start, end - start));
        start = end + 1;
    }
    return parts;
}

double
parseProb(const std::string &site, const std::string &value)
{
    char *end = nullptr;
    const double p = std::strtod(value.c_str(), &end);
    if (!end || *end != '\0' || value.empty())
        throw ConfigError(strfmt("fault spec: bad value '%s' for site "
                                 "'%s'", value.c_str(), site.c_str()));
    if (p < 0.0 || p > 1.0)
        throw ConfigError(strfmt("fault spec: %s value %g out of "
                                 "[0, 1]", site.c_str(), p));
    return p;
}

} // namespace

FaultSpec
parseFaultSpec(const std::string &text)
{
    FaultSpec spec;
    for (const std::string &clause : splitOn(text, ',')) {
        if (clause.empty())
            continue;
        const auto fields = splitOn(clause, ':');
        const std::string &site = fields[0];
        auto arg = [&](std::size_t i) -> const std::string & {
            if (i >= fields.size())
                throw ConfigError(strfmt("fault spec: site '%s' needs "
                                         "a value (e.g. %s:0.01)",
                                         site.c_str(), site.c_str()));
            return fields[i];
        };
        if (site == "pool") {
            spec.pool_fill = parseProb(site, arg(1));
        } else if (site == "kicks") {
            spec.kick_prob = parseProb(site, arg(1));
        } else if (site == "resize") {
            spec.resize_prob = parseProb(site, arg(1));
        } else if (site == "mem") {
            spec.mem_prob = parseProb(site, arg(1));
            if (fields.size() > 2) {
                char *end = nullptr;
                const unsigned long long cycles =
                    std::strtoull(fields[2].c_str(), &end, 10);
                if (!end || *end != '\0' || fields[2].empty())
                    throw ConfigError(strfmt(
                        "fault spec: bad spike cycles '%s'",
                        fields[2].c_str()));
                spec.mem_spike_cycles = cycles;
            }
        } else if (site == "trace") {
            if (fields.size() > 1)
                throw ConfigError("fault spec: 'trace' takes no value");
            spec.trace_corruption = true;
        } else if (site == "shootdown") {
            spec.shootdown_prob = parseProb(site, arg(1));
            if (fields.size() > 2) {
                char *end = nullptr;
                const unsigned long long cycles =
                    std::strtoull(fields[2].c_str(), &end, 10);
                if (!end || *end != '\0' || fields[2].empty())
                    throw ConfigError(strfmt(
                        "fault spec: bad ack-delay cycles '%s'",
                        fields[2].c_str()));
                spec.shootdown_delay_cycles = cycles;
            }
        } else if (site == "all") {
            if (fields.size() > 1)
                throw ConfigError("fault spec: 'all' takes no value");
            spec.pool_fill = 0.95;
            spec.kick_prob = 0.02;
            spec.resize_prob = 0.01;
            spec.mem_prob = 0.01;
            spec.trace_corruption = true;
            spec.shootdown_prob = 0.05;
        } else {
            throw ConfigError(strfmt(
                "fault spec: unknown site '%s' (expected pool, kicks, "
                "resize, mem, trace, shootdown, or all)", site.c_str()));
        }
    }
    if (!spec.enabled())
        throw ConfigError(strfmt(
            "fault spec '%s' arms no site", text.c_str()));
    return spec;
}

std::string
faultSpecToString(const FaultSpec &spec)
{
    std::string out;
    auto add = [&](const std::string &clause) {
        if (!out.empty())
            out += ',';
        out += clause;
    };
    if (spec.pool_fill >= 0.0)
        add(strfmt("pool:%g", spec.pool_fill));
    if (spec.kick_prob > 0.0)
        add(strfmt("kicks:%g", spec.kick_prob));
    if (spec.resize_prob > 0.0)
        add(strfmt("resize:%g", spec.resize_prob));
    if (spec.mem_prob > 0.0)
        add(strfmt("mem:%g:%llu", spec.mem_prob,
                   (unsigned long long)spec.mem_spike_cycles));
    if (spec.trace_corruption)
        add("trace");
    if (spec.shootdown_prob > 0.0)
        add(strfmt("shootdown:%g:%llu", spec.shootdown_prob,
                   (unsigned long long)spec.shootdown_delay_cycles));
    return out.empty() ? "none" : out;
}

FaultPlan::FaultPlan(const FaultSpec &spec, std::uint64_t seed)
    : _spec(spec), _seed(seed)
{
    // Independent per-site streams: arming one site must not shift
    // another site's draw sequence, or two specs that share a site
    // would inject different faults there under the same seed.
    std::uint64_t sm = seed ^ 0xFA017'5EEDULL;
    pool_rng = Rng(splitmix64(sm));
    kick_rng = Rng(splitmix64(sm));
    resize_rng = Rng(splitmix64(sm));
    mem_rng = Rng(splitmix64(sm));
    // Appended after the original four so pre-existing specs draw the
    // exact same per-site sequences they always did.
    shootdown_rng = Rng(splitmix64(sm));
}

bool
FaultPlan::failPoolAlloc(double fill)
{
    if (_spec.pool_fill < 0.0 || fill < _spec.pool_fill)
        return false;
    // Probabilistic past the threshold, so the exact failing
    // allocation varies with the plan seed (and a retry under a fresh
    // fault seed fails elsewhere — or squeaks through).
    if (!pool_rng.chance(0.5))
        return false;
    ++_counters.pool_failures;
    traceFire("fault.pool_alloc",
              static_cast<std::int64_t>(fill * 1000));
    return true;
}

bool
FaultPlan::forceKickExhaustion()
{
    if (_spec.kick_prob <= 0.0)
        return false;
    // Never twice in a row: settle() re-places homeless entries one
    // at a time, and forcing every re-placement to fail would turn
    // its drain loop into livelock-by-injection.
    if (last_kick_forced) {
        last_kick_forced = false;
        return false;
    }
    last_kick_forced = kick_rng.chance(_spec.kick_prob);
    if (last_kick_forced) {
        ++_counters.forced_kicks;
        traceFire("fault.kick_exhaustion",
                  static_cast<std::int64_t>(_counters.forced_kicks));
    }
    return last_kick_forced;
}

bool
FaultPlan::forceResizeWindow()
{
    if (_spec.resize_prob <= 0.0
        || _counters.forced_resizes >= MAX_FORCED_RESIZES)
        return false;
    if (!resize_rng.chance(_spec.resize_prob))
        return false;
    ++_counters.forced_resizes;
    traceFire("fault.resize_window",
              static_cast<std::int64_t>(_counters.forced_resizes));
    return true;
}

Cycles
FaultPlan::memSpikeCycles()
{
    if (_spec.mem_prob <= 0.0 || !mem_rng.chance(_spec.mem_prob))
        return 0;
    ++_counters.mem_spikes;
    traceFire("fault.mem_spike",
              static_cast<std::int64_t>(_spec.mem_spike_cycles));
    return _spec.mem_spike_cycles;
}

Cycles
FaultPlan::shootdownAckDelay()
{
    if (_spec.shootdown_prob <= 0.0
        || !shootdown_rng.chance(_spec.shootdown_prob))
        return 0;
    ++_counters.dropped_acks;
    traceFire("fault.shootdown_ack",
              static_cast<std::int64_t>(_spec.shootdown_delay_cycles));
    return _spec.shootdown_delay_cycles;
}

} // namespace necpt
