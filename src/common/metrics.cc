#include "common/metrics.hh"

#include <cstdio>
#include <sstream>

#include "common/error.hh"

namespace necpt
{

namespace
{

/** Shortest round-trippable-enough double, locale-independent. */
std::string
fmtDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

std::string
jsonEscape(const std::string &in)
{
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

MetricsRegistry::Entry &
MetricsRegistry::claim(const std::string &name)
{
    auto [it, inserted] = entries.try_emplace(name);
    if (!inserted)
        throw InvariantViolation(
            strfmt("metric '%s' registered twice", name.c_str()));
    return it->second;
}

void
MetricsRegistry::addCounter(const std::string &name,
                            std::function<std::uint64_t()> source,
                            const std::string &desc)
{
    Entry &e = claim(name);
    e.kind = Kind::Counter;
    e.desc = desc;
    e.counter = std::move(source);
}

void
MetricsRegistry::addValue(const std::string &name,
                          std::function<double()> source,
                          const std::string &desc)
{
    Entry &e = claim(name);
    e.kind = Kind::Value;
    e.desc = desc;
    e.value = std::move(source);
}

void
MetricsRegistry::addHistogram(const std::string &name,
                              const Histogram *hist,
                              const std::string &desc)
{
    Entry &e = claim(name);
    e.kind = Kind::Histogram;
    e.desc = desc;
    e.hist = hist;
}

void
MetricsRegistry::addRates(const std::string &name, const RateMonitor *mon,
                          const std::string &desc)
{
    Entry &e = claim(name);
    e.kind = Kind::Rates;
    e.desc = desc;
    e.rates = mon;
}

void
MetricsRegistry::addHitMiss(const std::string &prefix, const HitMiss *hm,
                            const std::string &desc)
{
    addCounter(prefix + ".hits", [hm] { return hm->hits(); }, desc);
    addCounter(prefix + ".misses", [hm] { return hm->misses(); }, desc);
    addValue(prefix + ".hitrate", [hm] { return hm->rate(); }, desc);
}

bool
MetricsRegistry::has(const std::string &name) const
{
    return entries.count(name) != 0;
}

double
MetricsRegistry::scalar(const std::string &name) const
{
    auto it = entries.find(name);
    if (it == entries.end())
        throw InvariantViolation(
            strfmt("unknown metric '%s'", name.c_str()));
    const Entry &e = it->second;
    switch (e.kind) {
    case Kind::Counter:
        return static_cast<double>(e.counter());
    case Kind::Value:
        return e.value();
    default:
        break;
    }
    throw InvariantViolation(
        strfmt("metric '%s' is not a scalar", name.c_str()));
}

std::map<std::string, double>
MetricsRegistry::scalarSnapshot() const
{
    std::map<std::string, double> snap;
    for (const auto &[name, e] : entries) {
        switch (e.kind) {
        case Kind::Counter:
            snap[name] = static_cast<double>(e.counter());
            break;
        case Kind::Value:
            snap[name] = e.value();
            break;
        case Kind::Histogram:
            snap[name + ".mean"] = e.hist->mean();
            snap[name + ".max"] = static_cast<double>(e.hist->max());
            snap[name + ".p50"] =
                static_cast<double>(e.hist->percentile(50));
            snap[name + ".p95"] =
                static_cast<double>(e.hist->percentile(95));
            snap[name + ".p99"] =
                static_cast<double>(e.hist->percentile(99));
            break;
        case Kind::Rates:
            snap[name + ".last"] = e.rates->lastRate();
            break;
        }
    }
    return snap;
}

std::string
MetricsRegistry::toJson() const
{
    std::ostringstream os;
    os << "{\"schema\":\"necpt-stats-v1\",\"metrics\":{";
    bool first = true;
    for (const auto &[name, e] : entries) {
        if (!first)
            os << ",";
        first = false;
        os << "\n\"" << jsonEscape(name) << "\":{";
        switch (e.kind) {
        case Kind::Counter:
            os << "\"kind\":\"counter\",\"value\":" << e.counter();
            break;
        case Kind::Value:
            os << "\"kind\":\"value\",\"value\":" << fmtDouble(e.value());
            break;
        case Kind::Histogram: {
            const Histogram &h = *e.hist;
            os << "\"kind\":\"histogram\",\"bin_width\":" << h.binWidth()
               << ",\"total\":" << h.total() << ",\"max\":" << h.max()
               << ",\"mean\":" << fmtDouble(h.mean()) << ",\"bins\":[";
            for (std::size_t b = 0; b < h.numBins(); ++b) {
                if (b)
                    os << ",";
                os << h.count(b);
            }
            os << "]";
            break;
        }
        case Kind::Rates: {
            const RateMonitor &m = *e.rates;
            os << "\"kind\":\"rates\",\"interval\":" << m.intervalCycles()
               << ",\"last\":" << fmtDouble(m.lastRate())
               << ",\"history\":[";
            bool h1 = true;
            for (double r : m.history()) {
                if (!h1)
                    os << ",";
                h1 = false;
                os << fmtDouble(r);
            }
            os << "]";
            break;
        }
        }
        if (!e.desc.empty())
            os << ",\"desc\":\"" << jsonEscape(e.desc) << "\"";
        os << "}";
    }
    os << "\n}}\n";
    return os.str();
}

bool
MetricsRegistry::writeJson(const std::string &path) const
{
    std::FILE *out = std::fopen(path.c_str(), "w");
    if (!out)
        return false;
    const std::string text = toJson();
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), out) == text.size();
    std::fclose(out);
    return ok;
}

} // namespace necpt
