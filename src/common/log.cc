#include "common/log.hh"

#include <atomic>
#include <cctype>
#include <cstring>
#include <mutex>

namespace necpt
{

namespace
{

constexpr int level_unset = -1;

std::atomic<int> g_level{level_unset};

std::mutex &
sinkMutex()
{
    static std::mutex m;
    return m;
}

LogSink &
sinkSlot()
{
    static LogSink sink;
    return sink;
}

int
levelFromEnv()
{
    const char *env = std::getenv("NECPT_LOG_LEVEL");
    if (!env || !*env)
        return static_cast<int>(LogLevel::Info);
    if (std::isdigit(static_cast<unsigned char>(env[0]))) {
        const int n = env[0] - '0';
        if (n >= 0 && n <= 2 && env[1] == '\0')
            return n;
    }
    if (std::strcmp(env, "quiet") == 0)
        return static_cast<int>(LogLevel::Quiet);
    if (std::strcmp(env, "warn") == 0)
        return static_cast<int>(LogLevel::Warn);
    if (std::strcmp(env, "info") == 0)
        return static_cast<int>(LogLevel::Info);
    return static_cast<int>(LogLevel::Info);
}

} // namespace

LogLevel
logLevel()
{
    int lv = g_level.load(std::memory_order_relaxed);
    if (lv == level_unset) {
        lv = levelFromEnv();
        // A racing first call computes the same value; last store wins
        // harmlessly. setLogLevel() after this sticks either way.
        g_level.store(lv, std::memory_order_relaxed);
    }
    return static_cast<LogLevel>(lv);
}

void
setLogLevel(LogLevel level)
{
    g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void
setLogSink(LogSink sink)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    sinkSlot() = std::move(sink);
}

namespace log_detail
{

void
dispatch(LogLevel severity, const char *tag, const std::string &line)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    LogSink &sink = sinkSlot();
    if (sink) {
        sink(severity, line);
        return;
    }
    std::fprintf(stderr, "%s: %s\n", tag, line.c_str());
}

} // namespace log_detail

} // namespace necpt
