/**
 * @file
 * Deterministic fault injection.
 *
 * A FaultSpec says *which* corner cases to exercise (pool exhaustion,
 * forced cuckoo kick exhaustion, forced mid-probe resize windows,
 * memory latency spikes, trace corruption) and a FaultPlan turns the
 * spec plus a seed into a concrete, reproducible sequence of
 * injection decisions. Every site draws from its own seeded stream,
 * so decisions are a pure function of (spec, seed, call sequence) —
 * the same plan replayed through the same simulation makes the same
 * calls and therefore injects the same faults, which is what lets a
 * failing sweep record be reproduced from its seed alone.
 *
 * Sites are polled via const-cheap predicates; a null/absent plan
 * means "never inject" so hot paths stay branch-of-nullptr cheap.
 */

#ifndef NECPT_COMMON_FAULT_HH
#define NECPT_COMMON_FAULT_HH

#include <cstdint>
#include <string>

#include "common/rng.hh"
#include "common/trace_events.hh"
#include "common/types.hh"

namespace necpt
{

/** Which fault sites are armed, and how hard. Parsed from the
 *  `--faults` CLI spec (see parseFaultSpec). */
struct FaultSpec
{
    /** Fail PhysMemPool allocations (probabilistically) once the
     *  pool's fill fraction reaches this value; < 0 disarms. */
    double pool_fill = -1.0;

    /** Per-placement probability of forcing cuckoo max_kicks
     *  exhaustion (entry parks on the homeless list and the table
     *  must re-place it before the insert returns). */
    double kick_prob = 0.0;

    /** Per-insert probability of forcing an elastic resize window,
     *  exercising mid-probe two-generation lookups and migration. */
    double resize_prob = 0.0;

    /** Per-memory-access probability of a latency spike. */
    double mem_prob = 0.0;

    /** Size of an injected latency spike, in cycles. */
    Cycles mem_spike_cycles = 200;

    /** Campaign-level: also run deliberately corrupted trace loads
     *  (exercised by the sweep campaign, not inside the machine). */
    bool trace_corruption = false;

    /** Per-ack probability that a shootdown IPI ack is dropped and
     *  must be re-sent after a timeout (see shootdown_delay_cycles). */
    double shootdown_prob = 0.0;

    /** Re-send timeout added to a dropped ack, in cycles. */
    Cycles shootdown_delay_cycles = 1000;

    bool
    enabled() const
    {
        return pool_fill >= 0.0 || kick_prob > 0.0 || resize_prob > 0.0
               || mem_prob > 0.0 || trace_corruption
               || shootdown_prob > 0.0;
    }
};

/**
 * Parse a fault spec string.
 *
 * Grammar (comma-separated sites):
 *   pool:FRAC          arm pool exhaustion at fill fraction FRAC
 *   kicks:PROB         arm forced kick exhaustion
 *   resize:PROB        arm forced resize windows
 *   mem:PROB[:CYCLES]  arm latency spikes (default 200 cycles)
 *   trace              arm corrupt-trace campaign jobs
 *   shootdown:PROB[:CYCLES]  arm dropped shootdown acks (default
 *                      1000-cycle re-send timeout)
 *   all                shorthand arming every site at stock rates
 *
 * Example: "pool:0.95,kicks:0.02,mem:0.01:400"
 *
 * Throws ConfigError on unknown sites or malformed values.
 */
FaultSpec parseFaultSpec(const std::string &text);

/** Render a spec back into the grammar above (for banners/JSON). */
std::string faultSpecToString(const FaultSpec &spec);

/**
 * A seeded, stateful instance of a FaultSpec. One per simulation run;
 * polled from the injection sites. Not thread-safe — each sweep job
 * owns its private plan (jobs are share-nothing).
 */
class FaultPlan
{
  public:
    struct Counters
    {
        std::uint64_t pool_failures = 0;
        std::uint64_t forced_kicks = 0;
        std::uint64_t forced_resizes = 0;
        std::uint64_t mem_spikes = 0;
        std::uint64_t dropped_acks = 0;
    };

    FaultPlan(const FaultSpec &spec, std::uint64_t seed);

    const FaultSpec &spec() const { return _spec; }
    std::uint64_t seed() const { return _seed; }
    const Counters &counters() const { return _counters; }

    /** Attach the event tracer: every firing site is recorded as a
     *  fault.* instant at the tracer's ambient clock. Null detaches.
     *  Tracing never perturbs the injection streams. */
    void setTracer(TraceBuffer *tracer) { _tracer = tracer; }

    /** Pool site: should this allocation fail? `fill` is the pool's
     *  current fill fraction in [0, 1]. */
    bool failPoolAlloc(double fill);

    /** Cuckoo site: force this placement to exhaust max_kicks?
     *  Never fires twice in a row, so the settle() drain loop always
     *  makes progress and terminates. */
    bool forceKickExhaustion();

    /** Cuckoo site: force an elastic resize window on this insert?
     *  Capped per plan — each forced resize doubles live capacity,
     *  so an uncapped stream would blow up real memory. */
    bool forceResizeWindow();

    /** Memory site: extra cycles to add to this access (0 = none). */
    Cycles memSpikeCycles();

    /** Shootdown site: extra cycles before this core's ack lands
     *  (0 = ack delivered first try; nonzero = dropped and re-sent
     *  after the configured timeout). */
    Cycles shootdownAckDelay();

  private:
    FaultSpec _spec;
    std::uint64_t _seed;
    Counters _counters;

    Rng pool_rng, kick_rng, resize_rng, mem_rng, shootdown_rng;
    bool last_kick_forced = false;
    TraceBuffer *_tracer = nullptr;

    /** One instant per fired site, on the page-table lane. */
    void
    traceFire(const char *site, std::int64_t detail)
    {
        if (_tracer)
            _tracer->instant(site, TraceCat::Fault, trace_pt_tid,
                             _tracer->now(), {{"detail", detail}});
    }

    /** Hard cap on forced resizes per plan (see forceResizeWindow). */
    static constexpr std::uint64_t MAX_FORCED_RESIZES = 3;
};

} // namespace necpt

#endif // NECPT_COMMON_FAULT_HH
