/**
 * @file
 * Bit-manipulation helpers used by page tables, caches and hash functions.
 */

#ifndef NECPT_COMMON_BITOPS_HH
#define NECPT_COMMON_BITOPS_HH

#include <bit>
#include <cassert>
#include <cstdint>

#include "common/types.hh"

namespace necpt
{

/** Mask with the low @p n bits set. @p n may be 0..64. */
constexpr std::uint64_t
mask(int n)
{
    return (n >= 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/** Extract bits [hi:lo] (inclusive, hi >= lo) of @p value. */
constexpr std::uint64_t
bits(std::uint64_t value, int hi, int lo)
{
    return (value >> lo) & mask(hi - lo + 1);
}

/** Round @p addr down to a multiple of @p align (power of two). */
constexpr Addr
alignDown(Addr addr, std::uint64_t align)
{
    return addr & ~(align - 1);
}

/** Round @p addr up to a multiple of @p align (power of two). */
constexpr Addr
alignUp(Addr addr, std::uint64_t align)
{
    return (addr + align - 1) & ~(align - 1);
}

/** True iff @p value is a (non-zero) power of two. */
constexpr bool
isPowerOf2(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Floor of log2(value); value must be non-zero. */
constexpr int
floorLog2(std::uint64_t value)
{
    return 63 - std::countl_zero(value);
}

/** Ceil of log2(value); value must be non-zero. */
constexpr int
ceilLog2(std::uint64_t value)
{
    return isPowerOf2(value) ? floorLog2(value) : floorLog2(value) + 1;
}

/** Virtual page number of @p addr for a page of size @p size. */
constexpr std::uint64_t
pageNumber(Addr addr, PageSize size)
{
    return addr >> pageShift(size);
}

/** Base address of the page containing @p addr. */
constexpr Addr
pageBase(Addr addr, PageSize size)
{
    return alignDown(addr, pageBytes(size));
}

/** Offset of @p addr within its page. */
constexpr std::uint64_t
pageOffset(Addr addr, PageSize size)
{
    return addr & mask(pageShift(size));
}

/** Cache-line address (line-aligned) of @p addr. */
constexpr Addr
lineAddr(Addr addr)
{
    return addr & ~(line_bytes - 1);
}

/**
 * Radix-tree index of @p va at level @p level.
 *
 * Level 4 = PGD (bits 47..39), 3 = PUD (38..30), 2 = PMD (29..21),
 * 1 = PTE (20..12) — exactly the x86-64 split of Figure 1. Level 5
 * (bits 56..48) exists for the Sunny-Cove-style 5-level mode the
 * paper's introduction warns about (35 sequential nested steps).
 */
constexpr unsigned
radixIndex(Addr va, int level)
{
    assert(level >= 1 && level <= 5);
    const int lo = 12 + 9 * (level - 1);
    return static_cast<unsigned>(bits(va, lo + 8, lo));
}

} // namespace necpt

#endif // NECPT_COMMON_BITOPS_HH
