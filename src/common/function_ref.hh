/**
 * @file
 * FunctionRef — a non-owning, allocation-free callable reference.
 *
 * The hot path's callbacks (memory-transaction completions, cuckoo
 * move notifications, walk-machine continuations) all share one shape:
 * the *state* behind the callback outlives the call, so owning it —
 * what std::function does, heap-allocating for any capture larger than
 * its small buffer — is pure overhead. A FunctionRef is two words: the
 * callee object and a trampoline. Copying it copies the reference, not
 * the callee.
 *
 * Lifetime contract (see DESIGN.md "Hot path & memory layout"): the
 * referenced callable must outlive every invocation. Construction only
 * binds *lvalues* — passing a temporary lambda is a compile error —
 * so the usual mistake (registering a callback whose captures die at
 * the end of the statement) cannot be expressed. Bind member functions
 * with FunctionRef::bind<&Class::method>(object) when the callee *is*
 * the long-lived object and no separate closure state is needed.
 */

#ifndef NECPT_COMMON_FUNCTION_REF_HH
#define NECPT_COMMON_FUNCTION_REF_HH

#include <cstddef>
#include <type_traits>
#include <utility>

namespace necpt
{

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)>
{
  public:
    FunctionRef() = default;
    FunctionRef(std::nullptr_t) {}

    /**
     * Bind a persistent callable. Lvalue-only: the callee must outlive
     * every invocation, so temporaries are rejected at compile time
     * (an rvalue argument deduces a non-reference F and SFINAEs out).
     */
    template <typename F,
              typename = std::enable_if_t<
                  std::is_lvalue_reference_v<F>
                  && !std::is_same_v<std::remove_cvref_t<F>, FunctionRef>
                  && std::is_invocable_r_v<R, F &, Args...>>>
    FunctionRef(F &&callee)
        : obj(const_cast<void *>(
              static_cast<const void *>(std::addressof(callee)))),
          fn([](void *o, Args... args) -> R {
              return (*static_cast<std::remove_reference_t<F> *>(o))(
                  std::forward<Args>(args)...);
          })
    {}

    /** Bind a member function of a long-lived @p object. */
    template <auto Method, typename T>
    static FunctionRef
    bind(T *object)
    {
        FunctionRef ref;
        ref.obj = static_cast<void *>(object);
        ref.fn = [](void *o, Args... args) -> R {
            return (static_cast<T *>(o)->*Method)(
                std::forward<Args>(args)...);
        };
        return ref;
    }

    R
    operator()(Args... args) const
    {
        return fn(obj, std::forward<Args>(args)...);
    }

    explicit operator bool() const { return fn != nullptr; }

  private:
    void *obj = nullptr;
    R (*fn)(void *, Args...) = nullptr;
};

} // namespace necpt

#endif // NECPT_COMMON_FUNCTION_REF_HH
