/**
 * @file
 * Structured, recoverable error taxonomy for the simulator library.
 *
 * Library code must never kill the process: a bad config, an
 * exhausted pool, or a corrupt trace is one failed job inside a
 * multi-hour sweep, not a reason to abort it. Library-side failure
 * paths throw a SimError subclass; only the CLI boundary in
 * src/tools/ converts them into fatal() process exits. panic()
 * remains for genuine simulator bugs (impossible states).
 *
 * The `kind()` tag survives into sweep-engine JSON records
 * (`error_kind`), and `retryable()` drives the engine's bounded
 * retry-with-backoff: transient pressure (ResourceExhausted) is worth
 * retrying under a fresh fault draw, while a bad config or corrupt
 * trace will fail identically every time.
 */

#ifndef NECPT_COMMON_ERROR_HH
#define NECPT_COMMON_ERROR_HH

#include <cstdarg>
#include <cstdio>
#include <stdexcept>
#include <string>

namespace necpt
{

enum class ErrorKind
{
    Config,
    ResourceExhausted,
    Trace,
    Invariant,
};

inline const char *
errorKindName(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::Config: return "config";
      case ErrorKind::ResourceExhausted: return "resource_exhausted";
      case ErrorKind::Trace: return "trace";
      case ErrorKind::Invariant: return "invariant";
    }
    return "unknown";
}

/** printf-style formatting into a std::string (for error messages). */
inline std::string
strfmt(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    const int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<std::size_t>(n));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    }
    va_end(args);
    return out;
}

/** Base class for every recoverable simulator error. */
class SimError : public std::runtime_error
{
  public:
    SimError(ErrorKind kind, const std::string &what)
        : std::runtime_error(what), _kind(kind)
    {}

    ErrorKind kind() const { return _kind; }
    const char *kindName() const { return errorKindName(_kind); }

    /** Whether a sweep job failing with this error is worth
     *  re-running (transient pressure vs. deterministic input). */
    virtual bool retryable() const { return false; }

  private:
    ErrorKind _kind;
};

/** User-facing configuration mistakes (unknown config id, malformed
 *  fault spec, impossible topology). Never retryable. */
class ConfigError : public SimError
{
  public:
    explicit ConfigError(const std::string &what)
        : SimError(ErrorKind::Config, what)
    {}
};

/** A finite resource (physical memory pool, region zone) ran out.
 *  Names the owning structure so the record is actionable. Retryable:
 *  under fault injection the same job may pass on a fresh draw, and
 *  in real sweeps pressure can be transient. */
class ResourceExhausted : public SimError
{
  public:
    explicit ResourceExhausted(const std::string &what)
        : SimError(ErrorKind::ResourceExhausted, what)
    {}

    bool retryable() const override { return true; }
};

/** Trace file missing/truncated/corrupt. Carries the file and byte
 *  offset where the problem was detected. Never retryable. */
class TraceError : public SimError
{
  public:
    TraceError(const std::string &file, std::uint64_t offset,
               const std::string &detail)
        : SimError(ErrorKind::Trace,
                   strfmt("trace '%s': %s (byte offset %llu)",
                          file.c_str(), detail.c_str(),
                          (unsigned long long)offset)),
          _file(file), _offset(offset)
    {}

    const std::string &file() const { return _file; }
    std::uint64_t offset() const { return _offset; }

  private:
    std::string _file;
    std::uint64_t _offset;
};

/** A cross-structure consistency check failed (ECPT/CWT staleness,
 *  homeless-entry bound, accounting mismatch). Indicates a real bug
 *  or an injected fault the design failed to absorb — not retryable,
 *  the record is the point. */
class InvariantViolation : public SimError
{
  public:
    explicit InvariantViolation(const std::string &what)
        : SimError(ErrorKind::Invariant, what)
    {}
};

} // namespace necpt

#endif // NECPT_COMMON_ERROR_HH
