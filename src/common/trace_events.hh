/**
 * @file
 * Walk-level event tracing (the observability layer's timeline half).
 *
 * A TraceBuffer is a preallocated ring of cycle-timestamped events:
 * walk/step spans, per-way probe records, CWC/STC hit-miss marks,
 * cuckoo kick chains and resize windows, fault-injection sites, and
 * sweep-engine job spans. Timestamps are simulated cycles — never
 * wall-clock — so a trace is a pure function of (config, seed) and two
 * runs at any worker count compare byte-identical. The one exception,
 * engine wall-clock spans (queue wait / run), is tagged
 * non-deterministic and filtered out by the canonical writer.
 *
 * Hot-path contract: a null tracer pointer or a default-constructed
 * (disabled) buffer costs one branch; an enabled buffer never
 * allocates after construction (events overwrite the oldest slot when
 * the ring is full, with a dropped-event count).
 *
 * Export is Chrome trace-event JSON ("traceEvents" array), viewable
 * in Perfetto / chrome://tracing. One simulated cycle is written as
 * one microsecond.
 */

#ifndef NECPT_COMMON_TRACE_EVENTS_HH
#define NECPT_COMMON_TRACE_EVENTS_HH

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace necpt
{

/** Event category (the Chrome "cat" field; filterable in Perfetto). */
enum class TraceCat : std::uint8_t
{
    Walk,   //!< whole-walk and per-step spans
    Probe,  //!< individual (size, way) probe issues
    Cwc,    //!< CWC / STC / NTLB hit-miss marks
    Cuckoo, //!< kick chains and elastic resize windows
    Fault,  //!< injected-fault sites firing
    Mem,    //!< hierarchy accesses resolved (level + latency)
    Engine, //!< sweep-engine job lifecycle spans
    Shootdown, //!< TLB-shootdown rounds, acks, and in-flight replays
};

const char *traceCatName(TraceCat cat);

/**
 * One named argument. Keys and text values must be string literals
 * (or otherwise outlive the buffer): events store raw pointers so the
 * hot path never copies strings.
 */
struct TraceArg
{
    const char *key = "";
    std::int64_t value = 0;
    const char *text = nullptr; //!< when set, serialized instead of value
};

/** One record in the ring. POD; ~2 cache lines. */
struct TraceEvent
{
    const char *name = "";
    TraceCat cat = TraceCat::Walk;
    char ph = 'i';             //!< 'X' complete span, 'i' instant
    bool deterministic = true; //!< false only for wall-clock spans
    std::uint32_t pid = 0;     //!< lane: sweep job index (0 standalone)
    std::uint32_t tid = 0;     //!< core id, or the engine lane
    std::uint64_t ts = 0;      //!< cycles (wall spans: µs from start)
    std::uint64_t dur = 0;     //!< span length; 0 for instants
    std::uint8_t nargs = 0;
    std::array<TraceArg, 4> args{};
};

/** The engine's tid lane (no simulated core uses values this high). */
constexpr std::uint32_t trace_engine_tid = 1u << 16;

/** The page-table structures' lane (cuckoo kicks, resizes, faults). */
constexpr std::uint32_t trace_pt_tid = (1u << 16) + 1;

/** The coherence controller's lane (shootdown rounds and churn ops). */
constexpr std::uint32_t trace_coherence_tid = (1u << 16) + 2;

/**
 * Ring-buffered event sink with walk-level sampling.
 *
 * Not thread-safe: one buffer belongs to one simulation (sweep jobs
 * are share-nothing and own a private buffer each).
 */
class TraceBuffer
{
  public:
    static constexpr std::size_t default_capacity = 1 << 16;

    /** Disabled buffer: every emit is a no-op, beginWalk() is false. */
    TraceBuffer() = default;

    /**
     * @param capacity ring slots (0 = disabled)
     * @param sample_every trace every Nth walk (1 = all, 0 = none)
     */
    explicit TraceBuffer(std::size_t capacity,
                         std::uint64_t sample_every = 1)
        : sample(sample_every)
    {
        ring.resize(capacity);
    }

    bool enabled() const { return !ring.empty(); }

    /// @name Walk gating
    /// Walkers bracket each translate() with beginWalk()/endWalk();
    /// probe/CWC/mem events are emitted only while the walk is active,
    /// which is how `--trace-walks=N` keeps hot paths quiet.
    /// @{
    bool
    beginWalk()
    {
        if (!enabled() || sample == 0) {
            walk_active = false;
        } else {
            walk_active = (walk_seq % sample) == 0;
            ++walk_seq;
            walks_sampled += walk_active;
        }
        return walk_active;
    }

    void endWalk() { walk_active = false; }
    bool walkActive() const { return walk_active; }
    std::uint64_t walksSampled() const { return walks_sampled; }
    /// @}

    /// @name Ambient state
    /// @{
    /** Lane stamped on every event (sweep job submission index). */
    void setPid(std::uint32_t p) { pid_ = p; }
    std::uint32_t pid() const { return pid_; }

    /** Ambient clock for events emitted outside a timed walk phase
     *  (cuckoo inserts, fault sites); the simulator keeps it fresh. */
    void setNow(Cycles c) { now_ = c; }
    Cycles now() const { return now_; }
    /// @}

    /// @name Emission
    /// @{
    void
    span(const char *name, TraceCat cat, std::uint32_t tid, Cycles ts,
         Cycles dur, std::initializer_list<TraceArg> args = {})
    {
        emit(name, cat, 'X', true, tid, ts, dur, args);
    }

    void
    instant(const char *name, TraceCat cat, std::uint32_t tid, Cycles ts,
            std::initializer_list<TraceArg> args = {})
    {
        emit(name, cat, 'i', true, tid, ts, 0, args);
    }

    /** Wall-clock span (µs from sweep start): engine queue/run spans.
     *  Tagged non-deterministic; the canonical writer drops them. */
    void
    wallSpan(const char *name, std::uint64_t ts_us, std::uint64_t dur_us,
             std::initializer_list<TraceArg> args = {})
    {
        emit(name, TraceCat::Engine, 'X', false, trace_engine_tid, ts_us,
             dur_us, args);
    }

    void
    emit(const char *name, TraceCat cat, char ph, bool deterministic,
         std::uint32_t tid, std::uint64_t ts, std::uint64_t dur,
         std::initializer_list<TraceArg> args)
    {
        if (!enabled())
            return;
        TraceEvent &e = slot();
        e.name = name;
        e.cat = cat;
        e.ph = ph;
        e.deterministic = deterministic;
        e.pid = pid_;
        e.tid = tid;
        e.ts = ts;
        e.dur = dur;
        e.nargs = 0;
        for (const TraceArg &a : args) {
            if (e.nargs >= e.args.size())
                break;
            e.args[e.nargs++] = a;
        }
    }
    /// @}

    /// @name Introspection (oldest event first)
    /// @{
    std::size_t size() const { return count; }
    std::uint64_t dropped() const { return dropped_; }

    const TraceEvent &
    event(std::size_t i) const
    {
        return ring[(head + i) % ring.size()];
    }
    /// @}

  private:
    /** Next slot, overwriting the oldest record when full. */
    TraceEvent &
    slot()
    {
        if (count < ring.size())
            return ring[(head + count++) % ring.size()];
        TraceEvent &e = ring[head];
        head = (head + 1) % ring.size();
        ++dropped_;
        return e;
    }

    std::vector<TraceEvent> ring;
    std::size_t head = 0;
    std::size_t count = 0;
    std::uint64_t dropped_ = 0;

    std::uint64_t sample = 1;
    std::uint64_t walk_seq = 0;
    std::uint64_t walks_sampled = 0;
    bool walk_active = false;

    std::uint32_t pid_ = 0;
    Cycles now_ = 0;
};

/** One timeline lane: a buffer plus its Perfetto process name. */
struct TraceLane
{
    const TraceBuffer *buffer = nullptr;
    std::string name;
};

/**
 * Serialize lanes as one Chrome trace-event JSON document.
 *
 * Events keep each buffer's emission order; lanes are concatenated in
 * the order given (submission order for sweeps), so the bytes are a
 * pure function of the lane contents. @p canonical drops events
 * tagged non-deterministic (engine wall-clock spans).
 *
 * @return success (warns, via the log sink, when events were dropped
 *         to ring overflow).
 */
bool writeChromeTrace(const std::string &path,
                      const std::vector<TraceLane> &lanes,
                      bool canonical = false);

/** Single-buffer convenience. */
bool writeChromeTrace(const std::string &path, const TraceBuffer &buffer,
                      const std::string &process_name,
                      bool canonical = false);

} // namespace necpt

#endif // NECPT_COMMON_TRACE_EVENTS_HH
