#include "common/stats.hh"

#include <algorithm>
#include <cmath>

namespace necpt
{

std::uint64_t
Histogram::percentile(double pct) const
{
    if (total_ == 0)
        return 0;
    const double target = pct / 100.0 * static_cast<double>(total_);
    std::uint64_t seen = 0;
    for (std::size_t bin = 0; bin < bins.size(); ++bin) {
        const std::uint64_t count = bins[bin];
        if (count > 0 &&
            static_cast<double>(seen + count) >= target) {
            // Interpolate linearly within the bin: the target'th
            // sample sits (target - seen) / count of the way through
            // it. The overflow bin has no upper edge, so it reports
            // the observed max.
            if (bin == bins.size() - 1)
                return max_;
            const double frac =
                (target - static_cast<double>(seen)) /
                static_cast<double>(count);
            return static_cast<std::uint64_t>(std::llround(
                static_cast<double>(bin * width) +
                frac * static_cast<double>(width)));
        }
        seen += count;
    }
    return max_;
}

double
geoMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace necpt
