#include "common/stats.hh"

#include <algorithm>
#include <cmath>

namespace necpt
{

std::uint64_t
Histogram::percentile(double pct) const
{
    if (total_ == 0)
        return 0;
    const auto target = static_cast<std::uint64_t>(
        std::ceil(pct / 100.0 * static_cast<double>(total_)));
    std::uint64_t seen = 0;
    for (std::size_t bin = 0; bin < bins.size(); ++bin) {
        seen += bins[bin];
        if (seen >= target) {
            // Report the middle of the bin; the overflow bin reports max.
            if (bin == bins.size() - 1)
                return max_;
            return bin * width + width / 2;
        }
    }
    return max_;
}

double
geoMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace necpt
