/**
 * @file
 * Lightweight statistics primitives: counters, ratios, histograms and
 * windowed rate monitors (the latter drive the paper's adaptive PTE-hCWT
 * caching decision, Section 4.2 / Figure 12).
 */

#ifndef NECPT_COMMON_STATS_HH
#define NECPT_COMMON_STATS_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace necpt
{

/** A simple saturating-free event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    Counter &operator++() { ++value_; return *this; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** Hit/miss pair with a derived rate. */
class HitMiss
{
  public:
    void hit(std::uint64_t n = 1) { hits_ += n; }
    void miss(std::uint64_t n = 1) { misses_ += n; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t accesses() const { return hits_ + misses_; }

    /** Hit rate in [0,1]; 0 when there were no accesses. */
    double
    rate() const
    {
        const auto total = accesses();
        return total ? static_cast<double>(hits_) / total : 0.0;
    }

    void
    reset()
    {
        hits_ = 0;
        misses_ = 0;
    }

  private:
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

/**
 * Fixed-bin latency histogram (Figure 11: page-walk latency bins).
 *
 * Values above the last bin edge land in an overflow bin.
 */
class Histogram
{
  public:
    /** @param bin_width width of each bin; @param num_bins bin count. */
    Histogram(std::uint64_t bin_width, std::size_t num_bins)
        : width(bin_width), bins(num_bins + 1, 0)
    {}

    void
    sample(std::uint64_t value)
    {
        auto idx = value / width;
        if (idx >= bins.size() - 1)
            idx = bins.size() - 1;
        ++bins[idx];
        ++total_;
        sum_ += value;
        if (value > max_)
            max_ = value;
    }

    std::uint64_t count(std::size_t bin) const { return bins[bin]; }
    std::size_t numBins() const { return bins.size(); }
    std::uint64_t binWidth() const { return width; }
    std::uint64_t total() const { return total_; }
    std::uint64_t max() const { return max_; }

    double
    mean() const
    {
        return total_ ? static_cast<double>(sum_) / total_ : 0.0;
    }

    /** The value at the given percentile (0..100), linear within bins. */
    std::uint64_t percentile(double pct) const;

    /** Fraction of samples in @p bin (0 when empty). */
    double
    probability(std::size_t bin) const
    {
        return total_ ? static_cast<double>(bins[bin]) / total_ : 0.0;
    }

    void
    reset()
    {
        std::fill(bins.begin(), bins.end(), 0);
        total_ = 0;
        sum_ = 0;
        max_ = 0;
    }

  private:
    std::uint64_t width;
    std::vector<std::uint64_t> bins;
    std::uint64_t total_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * Windowed hit-rate monitor.
 *
 * The adaptive caching controller (Section 4.2) samples hit rates over
 * intervals of a fixed number of cycles (Figure 12 uses 5M-cycle
 * intervals). The monitor tracks the current window and reports the last
 * completed window's rate.
 */
class RateMonitor
{
  public:
    explicit RateMonitor(Cycles interval_cycles = 5'000'000)
        : interval(interval_cycles)
    {}

    /** Record an event at @p now; @p was_hit tells hit vs miss. */
    void
    record(Cycles now, bool was_hit)
    {
        rollover(now);
        if (was_hit)
            ++window_hits;
        ++window_events;
    }

    /** The most recent completed window's hit rate (or -1 if none yet). */
    double lastRate() const { return last_rate; }

    /** True once at least one full window has completed. */
    bool hasSample() const { return last_rate >= 0.0; }

    /** All completed window rates, for Figure 12-style reporting. */
    const std::vector<double> &history() const { return rates; }

    Cycles intervalCycles() const { return interval; }

  private:
    void
    rollover(Cycles now)
    {
        // Anchor the first window to the interval boundary containing
        // the first event — not the event's own cycle — so windows fall
        // on [0, I), [I, 2I), ... regardless of when traffic starts and
        // Figure 12-style histories line up across configurations.
        if (!started_) {
            window_start = (now / interval) * interval;
            started_ = true;
        }
        while (now >= window_start + interval) {
            if (window_events > 0) {
                last_rate =
                    static_cast<double>(window_hits) / window_events;
                rates.push_back(last_rate);
            }
            window_hits = 0;
            window_events = 0;
            window_start += interval;
        }
    }

    Cycles interval;
    Cycles window_start = 0;
    bool started_ = false;
    std::uint64_t window_hits = 0;
    std::uint64_t window_events = 0;
    double last_rate = -1.0;
    std::vector<double> rates;
};

/** Geometric mean of a vector of positive values (0 if empty). */
double geoMean(const std::vector<double> &values);

} // namespace necpt

#endif // NECPT_COMMON_STATS_HH
