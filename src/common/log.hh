/**
 * @file
 * gem5-flavored status/error reporting: panic, fatal, warn, inform.
 *
 * panic() flags a simulator bug (aborts); fatal() flags a user/config error
 * (clean exit(1)); warn()/inform() print and continue.
 *
 * warn()/inform() are routed through a pluggable, mutex-guarded sink
 * and filtered by a verbosity level (`NECPT_LOG_LEVEL` / --quiet), so
 * multi-job sweeps neither interleave half-lines on stderr nor bury
 * the progress meter. panic()/fatal() bypass both: a dying process
 * must always say why, immediately and unfiltered.
 */

#ifndef NECPT_COMMON_LOG_HH
#define NECPT_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>

namespace necpt
{

/** Verbosity: each level includes everything below it. */
enum class LogLevel : int
{
    Quiet = 0, //!< warn()/inform() both dropped
    Warn = 1,  //!< warn() only
    Info = 2,  //!< everything (the default)
};

/**
 * Current level. First call reads NECPT_LOG_LEVEL ("quiet"/"warn"/
 * "info" or 0/1/2); unset or unparsable means Info.
 */
LogLevel logLevel();

/** Override the level (CLI --quiet). Wins over the environment. */
void setLogLevel(LogLevel level);

/**
 * Receives each formatted warn()/inform() line (no trailing newline).
 * Called with the sink mutex held: implementations must not log.
 */
using LogSink =
    std::function<void(LogLevel severity, const std::string &line)>;

/** Replace the sink; an empty function restores the stderr default. */
void setLogSink(LogSink sink);

namespace log_detail
{

template <typename... Args>
void
emit(const char *tag, const char *fmt, Args &&...args)
{
    std::fprintf(stderr, "%s: ", tag);
    if constexpr (sizeof...(Args) == 0)
        std::fputs(fmt, stderr);
    else
        std::fprintf(stderr, fmt, std::forward<Args>(args)...);
    std::fputc('\n', stderr);
}

template <typename... Args>
std::string
format(const char *fmt, Args &&...args)
{
    if constexpr (sizeof...(Args) == 0) {
        return std::string(fmt);
    } else {
        const int n = std::snprintf(nullptr, 0, fmt, args...);
        if (n <= 0)
            return std::string(fmt);
        std::string s(static_cast<std::size_t>(n), '\0');
        std::snprintf(s.data(), s.size() + 1, fmt, args...);
        return s;
    }
}

/** Serialize through the sink (default: "tag: line" on stderr). */
void dispatch(LogLevel severity, const char *tag, const std::string &line);

} // namespace log_detail

/** Unrecoverable simulator bug: print and abort (core-dumpable). */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args &&...args)
{
    log_detail::emit("panic", fmt, std::forward<Args>(args)...);
    std::abort();
}

/** Unrecoverable user/configuration error: print and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args &&...args)
{
    log_detail::emit("fatal", fmt, std::forward<Args>(args)...);
    std::exit(1);
}

/** Possibly-incorrect behavior the user should know about. */
template <typename... Args>
void
warn(const char *fmt, Args &&...args)
{
    if (logLevel() < LogLevel::Warn)
        return;
    log_detail::dispatch(LogLevel::Warn, "warn",
                         log_detail::format(fmt,
                                            std::forward<Args>(args)...));
}

/** Normal status message. */
template <typename... Args>
void
inform(const char *fmt, Args &&...args)
{
    if (logLevel() < LogLevel::Info)
        return;
    log_detail::dispatch(LogLevel::Info, "info",
                         log_detail::format(fmt,
                                            std::forward<Args>(args)...));
}

/** panic() unless @p cond holds. */
#define NECPT_ASSERT(cond, ...)                                             \
    do {                                                                    \
        if (!(cond))                                                        \
            ::necpt::panic("assertion failed: %s (%s:%d)", #cond,           \
                           __FILE__, __LINE__);                             \
    } while (0)

} // namespace necpt

#endif // NECPT_COMMON_LOG_HH
