/**
 * @file
 * gem5-flavored status/error reporting: panic, fatal, warn, inform.
 *
 * panic() flags a simulator bug (aborts); fatal() flags a user/config error
 * (clean exit(1)); warn()/inform() print and continue.
 */

#ifndef NECPT_COMMON_LOG_HH
#define NECPT_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace necpt
{

namespace log_detail
{

template <typename... Args>
void
emit(const char *tag, const char *fmt, Args &&...args)
{
    std::fprintf(stderr, "%s: ", tag);
    if constexpr (sizeof...(Args) == 0)
        std::fputs(fmt, stderr);
    else
        std::fprintf(stderr, fmt, std::forward<Args>(args)...);
    std::fputc('\n', stderr);
}

} // namespace log_detail

/** Unrecoverable simulator bug: print and abort (core-dumpable). */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args &&...args)
{
    log_detail::emit("panic", fmt, std::forward<Args>(args)...);
    std::abort();
}

/** Unrecoverable user/configuration error: print and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args &&...args)
{
    log_detail::emit("fatal", fmt, std::forward<Args>(args)...);
    std::exit(1);
}

/** Possibly-incorrect behavior the user should know about. */
template <typename... Args>
void
warn(const char *fmt, Args &&...args)
{
    log_detail::emit("warn", fmt, std::forward<Args>(args)...);
}

/** Normal status message. */
template <typename... Args>
void
inform(const char *fmt, Args &&...args)
{
    log_detail::emit("info", fmt, std::forward<Args>(args)...);
}

/** panic() unless @p cond holds. */
#define NECPT_ASSERT(cond, ...)                                             \
    do {                                                                    \
        if (!(cond))                                                        \
            ::necpt::panic("assertion failed: %s (%s:%d)", #cond,           \
                           __FILE__, __LINE__);                             \
    } while (0)

} // namespace necpt

#endif // NECPT_COMMON_LOG_HH
