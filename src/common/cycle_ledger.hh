/**
 * @file
 * Per-walk cycle attribution: the allocation-free ledger every walk
 * carries, binning each simulated cycle of walk latency into a cause.
 *
 * The contract is *conservation*: for every finished walk the ledger's
 * bins sum exactly (integer equality) to the walk's end-to-start
 * latency. Walkers charge their analytic latency additions (cache
 * probes, hash units, TLB lookups) and the memory hierarchy decomposes
 * every access on a batch's critical line (wave issue, MSHR stalls,
 * cache service, DRAM queue/service/bus, injected fault spikes) so no
 * cycle is left uncounted. A forgotten charge is a test failure, not a
 * silent residual bin — see tests/test_attribution.cc.
 *
 * Ledgers are plain fixed arrays: charging is one predictable add, the
 * disabled path is a single branch, and nothing here ever touches the
 * heap (the steady-state translation path stays allocation-free with
 * attribution compiled in, enabled or not).
 */

#ifndef NECPT_COMMON_CYCLE_LEDGER_HH
#define NECPT_COMMON_CYCLE_LEDGER_HH

#include <array>
#include <cstdint>

#include "common/types.hh"

namespace necpt
{

/** Where a cycle of walk latency went (the attr.* taxonomy). */
enum class AttrCause : std::uint8_t
{
    Tlb = 0,     //!< POM-TLB / nested-TLB lookups on the walk path
    Probe,       //!< PWC/CWC/STC/walk-cache lookup latency
    Compute,     //!< hash units, VM-exit handling, step glue
    Issue,       //!< batch wave serialization (mmu_issue_width)
    Mshr,        //!< MSHR-full stalls on the batch's critical line
    Cache,       //!< L2/L3 service cycles on the critical line
    DramQueue,   //!< waiting behind a busy DRAM bank
    DramService, //!< row activate/precharge + column access
    DramBus,     //!< channel bus wait + data burst
    Fault,       //!< injected memory latency spikes
    Coalesce,    //!< waiting on a same-page walk already in flight
};

constexpr int num_attr_causes = 11;

/** Dotted-name component for one cause ("attr.<name>.…"). */
inline const char *
attrCauseName(AttrCause cause)
{
    switch (cause) {
      case AttrCause::Tlb: return "tlb";
      case AttrCause::Probe: return "probe";
      case AttrCause::Compute: return "compute";
      case AttrCause::Issue: return "issue";
      case AttrCause::Mshr: return "mshr";
      case AttrCause::Cache: return "cache";
      case AttrCause::DramQueue: return "dram_queue";
      case AttrCause::DramService: return "dram_service";
      case AttrCause::DramBus: return "dram_bus";
      case AttrCause::Fault: return "fault";
      case AttrCause::Coalesce: return "coalesce";
    }
    return "?";
}

/**
 * One walk's cycle bins. Owned by the walker (serialized designs) or
 * the walk machine (overlapped walks); reset at walk start, folded
 * into the walker's aggregate statistics at finishWalk().
 */
class CycleLedger
{
  public:
    /** Enable charging; a disabled ledger makes charge() a no-op. */
    void setEnabled(bool on) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    void
    charge(AttrCause cause, Cycles cycles)
    {
        if (enabled_)
            bins_[static_cast<int>(cause)] += cycles;
    }

    /** Fold another ledger in (nested walks: POM-TLB fallback). */
    void
    fold(const CycleLedger &other)
    {
        if (!enabled_)
            return;
        for (int c = 0; c < num_attr_causes; ++c)
            bins_[c] += other.bins_[c];
    }

    std::uint64_t
    bin(AttrCause cause) const
    {
        return bins_[static_cast<int>(cause)];
    }

    std::uint64_t
    total() const
    {
        std::uint64_t sum = 0;
        for (std::uint64_t b : bins_)
            sum += b;
        return sum;
    }

    /** The dominant (largest) bin; Tlb when everything is zero. */
    AttrCause
    dominant() const
    {
        int best = 0;
        for (int c = 1; c < num_attr_causes; ++c) {
            if (bins_[c] > bins_[best])
                best = c;
        }
        return static_cast<AttrCause>(best);
    }

    void reset() { bins_.fill(0); }

    const std::array<std::uint64_t, num_attr_causes> &
    bins() const
    {
        return bins_;
    }

  private:
    std::array<std::uint64_t, num_attr_causes> bins_{};
    bool enabled_ = true;
};

} // namespace necpt

#endif // NECPT_COMMON_CYCLE_LEDGER_HH
