/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of the simulator (workload address streams,
 * allocator fragmentation, cuckoo eviction choices) draws from a seeded
 * Rng so that a given configuration always reproduces the same result —
 * matching the paper's "deterministic simulation methodology, no error
 * bars" note in Section 8.
 */

#ifndef NECPT_COMMON_RNG_HH
#define NECPT_COMMON_RNG_HH

#include <cstdint>

namespace necpt
{

/** splitmix64: used to expand a single seed into stream state. */
constexpr std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** PRNG — fast, high-quality, fully deterministic.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5EED5EED5EED5EEDULL)
    {
        std::uint64_t sm = seed;
        for (auto &word : state)
            word = splitmix64(sm);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire-style rejection-free multiply-shift (bias negligible for
        // simulation workload purposes given 64-bit inputs).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Approximately Zipf-distributed rank in [0, n) with exponent @p s,
     * using inverse-CDF on a power-law approximation. Used by graph and
     * OLTP workload generators for skewed popularity.
     */
    std::uint64_t
    zipf(std::uint64_t n, double s);

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace necpt

#endif // NECPT_COMMON_RNG_HH
