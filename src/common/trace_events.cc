#include "common/trace_events.hh"

#include <cstdio>
#include <sstream>

#include "common/log.hh"

namespace necpt
{

const char *
traceCatName(TraceCat cat)
{
    switch (cat) {
    case TraceCat::Walk: return "walk";
    case TraceCat::Probe: return "probe";
    case TraceCat::Cwc: return "cwc";
    case TraceCat::Cuckoo: return "cuckoo";
    case TraceCat::Fault: return "fault";
    case TraceCat::Mem: return "mem";
    case TraceCat::Engine: return "engine";
    case TraceCat::Shootdown: return "shootdown";
    }
    return "?";
}

namespace
{

void
escapeInto(std::ostringstream &os, const char *s)
{
    for (; *s; ++s) {
        if (*s == '"' || *s == '\\')
            os << '\\';
        os << *s;
    }
}

void
writeEvent(std::ostringstream &os, const TraceEvent &e, bool &first)
{
    if (!first)
        os << ",\n";
    first = false;
    os << "{\"name\":\"";
    escapeInto(os, e.name);
    os << "\",\"cat\":\"" << traceCatName(e.cat) << "\",\"ph\":\""
       << e.ph << "\",\"pid\":" << e.pid << ",\"tid\":" << e.tid
       << ",\"ts\":" << e.ts;
    if (e.ph == 'X')
        os << ",\"dur\":" << e.dur;
    // Thread-scoped instants render as small arrows in Perfetto
    // instead of full-height global lines.
    if (e.ph == 'i')
        os << ",\"s\":\"t\"";
    if (e.nargs > 0) {
        os << ",\"args\":{";
        for (std::uint8_t i = 0; i < e.nargs; ++i) {
            if (i)
                os << ",";
            os << "\"";
            escapeInto(os, e.args[i].key);
            os << "\":";
            if (e.args[i].text) {
                os << "\"";
                escapeInto(os, e.args[i].text);
                os << "\"";
            } else {
                os << e.args[i].value;
            }
        }
        os << "}";
    }
    os << "}";
}

/** Perfetto metadata event naming the process (lane) row. */
void
writeProcessName(std::ostringstream &os, std::uint32_t pid,
                 const std::string &name, bool &first)
{
    if (!first)
        os << ",\n";
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"";
    escapeInto(os, name.c_str());
    os << "\"}}";
}

} // namespace

bool
writeChromeTrace(const std::string &path,
                 const std::vector<TraceLane> &lanes, bool canonical)
{
    std::ostringstream os;
    os << "{\"traceEvents\":[\n";
    bool first = true;
    std::uint64_t dropped = 0;
    for (const TraceLane &lane : lanes) {
        if (!lane.buffer)
            continue;
        const TraceBuffer &buf = *lane.buffer;
        dropped += buf.dropped();
        if (!lane.name.empty())
            writeProcessName(os, buf.pid(), lane.name, first);
        for (std::size_t i = 0; i < buf.size(); ++i) {
            const TraceEvent &e = buf.event(i);
            if (canonical && !e.deterministic)
                continue;
            writeEvent(os, e, first);
        }
    }
    os << "\n],\"displayTimeUnit\":\"ns\"}\n";

    if (dropped > 0)
        warn("trace ring overflow: %llu oldest event(s) overwritten; "
             "raise capacity or use --trace-walks=N sampling",
             static_cast<unsigned long long>(dropped));

    std::FILE *out = std::fopen(path.c_str(), "w");
    if (!out)
        return false;
    const std::string text = os.str();
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), out) == text.size();
    std::fclose(out);
    return ok;
}

bool
writeChromeTrace(const std::string &path, const TraceBuffer &buffer,
                 const std::string &process_name, bool canonical)
{
    std::vector<TraceLane> lanes{{&buffer, process_name}};
    return writeChromeTrace(path, lanes, canonical);
}

} // namespace necpt
