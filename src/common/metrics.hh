/**
 * @file
 * Unified metrics registry (the observability layer's snapshot half).
 *
 * Components keep their existing Counter/HitMiss/Histogram/RateMonitor
 * members and register *sources* under hierarchical dotted names
 * ("walk.nested_ecpt.step1.probes", "cwc.pte.hitrate", "cuckoo.kicks",
 * "dram.reads"). The registry owns no statistics — an entry is a
 * callback or a pointer into the live component — so registration is
 * free on the simulation hot path and a dump always reflects the
 * moment it is taken.
 *
 * One gem5-style dump serializes every entry to canonical JSON
 * (schema tag "necpt-stats-v1"): keys sorted, doubles printed with
 * %.12g, no wall-clock or host detail — byte-identical across runs
 * of the same (config, seed).
 *
 * Registering two sources under one name is a programming error and
 * throws SimError(InvariantViolation).
 */

#ifndef NECPT_COMMON_METRICS_HH
#define NECPT_COMMON_METRICS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/stats.hh"

namespace necpt
{

class MetricsRegistry
{
  public:
    /** Monotonic event count (dumped as an integer). */
    void addCounter(const std::string &name,
                    std::function<std::uint64_t()> source,
                    const std::string &desc = "");

    /** Derived scalar — a rate, fraction, or average. */
    void addValue(const std::string &name, std::function<double()> source,
                  const std::string &desc = "");

    /** Full distribution; @p hist must outlive the registry. */
    void addHistogram(const std::string &name, const Histogram *hist,
                      const std::string &desc = "");

    /** Windowed-rate history; @p mon must outlive the registry. */
    void addRates(const std::string &name, const RateMonitor *mon,
                  const std::string &desc = "");

    /**
     * Convenience: registers "<prefix>.hits", "<prefix>.misses" and
     * "<prefix>.hitrate" for one HitMiss (which must outlive the
     * registry).
     */
    void addHitMiss(const std::string &prefix, const HitMiss *hm,
                    const std::string &desc = "");

    bool has(const std::string &name) const;
    std::size_t size() const { return entries.size(); }

    /**
     * Current value of one scalar entry (counter or value).
     * @throws SimError(InvariantViolation) for unknown or
     *         non-scalar names.
     */
    double scalar(const std::string &name) const;

    /**
     * Every scalar entry evaluated now, keyed by name. Histograms and
     * rate histories are summarized as "<name>.mean"/"<name>.max" and
     * "<name>.last" — the flat per-job stats columns the sweep sink
     * exports.
     */
    std::map<std::string, double> scalarSnapshot() const;

    /**
     * The full dump as one canonical JSON document:
     * {"schema":"necpt-stats-v1","metrics":{<name>:{"kind":...}, ...}}
     * with per-kind payloads (counter/value: "value"; histogram:
     * "bin_width"/"total"/"mean"/"max"/"bins"; rates: "interval"/
     * "last"/"history").
     */
    std::string toJson() const;

    /** toJson() to @p path. @return success. */
    bool writeJson(const std::string &path) const;

  private:
    enum class Kind { Counter, Value, Histogram, Rates };

    struct Entry
    {
        Kind kind;
        std::string desc;
        std::function<std::uint64_t()> counter;
        std::function<double()> value;
        const Histogram *hist = nullptr;
        const RateMonitor *rates = nullptr;
    };

    Entry &claim(const std::string &name);

    /** std::map keeps dumps sorted by name with no extra pass. */
    std::map<std::string, Entry> entries;
};

} // namespace necpt

#endif // NECPT_COMMON_METRICS_HH
