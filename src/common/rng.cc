#include "common/rng.hh"

#include <cmath>

namespace necpt
{

std::uint64_t
Rng::zipf(std::uint64_t n, double s)
{
    if (n <= 1)
        return 0;
    // Inverse-CDF sampling of a continuous power-law on [1, n+1), which is
    // a close, cheap approximation of the discrete Zipf distribution for
    // the locality-skew purposes of the workload generators.
    const double u = uniform();
    double value;
    if (s == 1.0) {
        value = std::exp(u * std::log(static_cast<double>(n) + 1.0));
    } else {
        const double one_minus_s = 1.0 - s;
        const double max_cdf =
            std::pow(static_cast<double>(n) + 1.0, one_minus_s) - 1.0;
        value = std::pow(1.0 + u * max_cdf, 1.0 / one_minus_s);
    }
    auto rank = static_cast<std::uint64_t>(value) - 1;
    return (rank >= n) ? n - 1 : rank;
}

} // namespace necpt
