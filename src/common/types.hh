/**
 * @file
 * Fundamental address and timing types shared by every nECPT module.
 *
 * The simulator distinguishes three address spaces, mirroring the paper's
 * terminology (Section 2.1):
 *   - guest virtual addresses (gVA),
 *   - guest physical addresses (gPA), and
 *   - host physical addresses (hPA).
 * All three are 64-bit values; distinct aliases keep interfaces readable.
 */

#ifndef NECPT_COMMON_TYPES_HH
#define NECPT_COMMON_TYPES_HH

#include <cstdint>
#include <string>

namespace necpt
{

/** A raw 64-bit address. */
using Addr = std::uint64_t;

/** Guest virtual address (gVA). */
using GuestVirtAddr = Addr;

/** Guest physical address (gPA): what the guest OS believes is physical. */
using GuestPhysAddr = Addr;

/** Host physical address (hPA): a real machine address. */
using HostPhysAddr = Addr;

/** Simulated clock cycles (2GHz core clock in the default machine). */
using Cycles = std::uint64_t;

/** Retired-instruction counter used for PKI-style statistics. */
using InstCount = std::uint64_t;

/** An invalid / not-present address sentinel. */
constexpr Addr invalid_addr = ~Addr{0};

/**
 * The page sizes supported by the x86-64-like machine we model.
 *
 * The names follow the radix-table level that maps the page: a PTE-level
 * entry maps 4KB, a PMD-level entry maps 2MB and a PUD-level entry maps 1GB
 * (paper Section 3: PTE-, PMD-, PUD-ECPT).
 */
enum class PageSize : std::uint8_t
{
    Page4K = 0,
    Page2M = 1,
    Page1G = 2,
};

/** Number of distinct page sizes (the paper's n = 3). */
constexpr int num_page_sizes = 3;

/** Byte size of a page of the given size class. */
constexpr std::uint64_t
pageBytes(PageSize size)
{
    switch (size) {
      case PageSize::Page4K: return 4096ULL;
      case PageSize::Page2M: return 2ULL * 1024 * 1024;
      case PageSize::Page1G: return 1024ULL * 1024 * 1024;
    }
    return 4096ULL;
}

/** log2 of the page size in bytes (12, 21, 30). */
constexpr int
pageShift(PageSize size)
{
    switch (size) {
      case PageSize::Page4K: return 12;
      case PageSize::Page2M: return 21;
      case PageSize::Page1G: return 30;
    }
    return 12;
}

/** Short human-readable name ("4K", "2M", "1G"). */
inline const char *
pageSizeName(PageSize size)
{
    switch (size) {
      case PageSize::Page4K: return "4K";
      case PageSize::Page2M: return "2M";
      case PageSize::Page1G: return "1G";
    }
    return "?";
}

/** Table-level slug for the size class ("pte", "pmd", "pud") — the
 *  radix level that maps it; used in metric names and trace args. */
inline const char *
pageLevelName(PageSize size)
{
    switch (size) {
      case PageSize::Page4K: return "pte";
      case PageSize::Page2M: return "pmd";
      case PageSize::Page1G: return "pud";
    }
    return "?";
}

/** All page sizes, smallest first, for range-for iteration. */
constexpr PageSize all_page_sizes[num_page_sizes] = {
    PageSize::Page4K, PageSize::Page2M, PageSize::Page1G,
};

/** Cache-line size used throughout the machine (Table 2: 64B lines). */
constexpr std::uint64_t line_bytes = 64;
constexpr int line_shift = 6;

/** Byte size of one page-table entry (Section 9.5: 8 bytes). */
constexpr std::uint64_t pte_bytes = 8;

/** Whether a memory access was issued by the core or by the MMU walker. */
enum class Requester : std::uint8_t
{
    Core = 0,
    Mmu = 1,
};

/** Read/write intent of a memory access. */
enum class AccessType : std::uint8_t
{
    Read = 0,
    Write = 1,
};

} // namespace necpt

#endif // NECPT_COMMON_TYPES_HH
