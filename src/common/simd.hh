/**
 * @file
 * Portable SIMD kernels for the two loops the profile says dominate
 * compute: the packed-tag cache-way scan (SetAssocCache::findWay) and
 * the d-way CRC-64 hash pass (HashFamily::hashAll).
 *
 * Every kernel has a scalar fallback that is bit-identical to the
 * vector path, so simulation results never depend on the host ISA.
 * AVX2 is used when the compiler targets it (`__AVX2__`); nothing here
 * emits runtime dispatch — the build decides once.
 */

#ifndef NECPT_COMMON_SIMD_HH
#define NECPT_COMMON_SIMD_HH

#include <cstdint>

#if defined(__AVX2__)
#include <immintrin.h>
#define NECPT_SIMD_AVX2 1
#else
#define NECPT_SIMD_AVX2 0
#endif

namespace necpt
{
namespace simd
{

/** Human-readable name of the active kernel set (stats/bench JSON). */
inline const char *
kernelName()
{
    return NECPT_SIMD_AVX2 ? "avx2" : "scalar";
}

/**
 * Lowest index i in [0, n) with (meta[i] & valid_bit) and
 * tags[i] == tag, or -1. The layout matches SetAssocCache: a
 * contiguous uint64 tag row and a parallel meta byte row whose bit 7
 * is the valid flag.
 */
inline int
findTagScalar(const std::uint64_t *tags, const std::uint8_t *meta,
              int n, std::uint64_t tag, std::uint8_t valid_bit)
{
    for (int i = 0; i < n; ++i)
        if ((meta[i] & valid_bit) && tags[i] == tag)
            return i;
    return -1;
}

inline int
findTag(const std::uint64_t *tags, const std::uint8_t *meta, int n,
        std::uint64_t tag, std::uint8_t valid_bit = 0x80)
{
#if NECPT_SIMD_AVX2
    const __m256i needle =
        _mm256_set1_epi64x(static_cast<long long>(tag));
    int i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i row = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(tags + i));
        unsigned eq = static_cast<unsigned>(_mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(row, needle))));
        if (!eq)
            continue;
        // Fold the four meta valid bits into the low lane bits. assoc
        // rows are at least 4-aligned in count here, so the 4-byte
        // load never crosses the row end.
        unsigned vm = 0;
        for (int b = 0; b < 4; ++b)
            vm |= ((meta[i + b] & valid_bit) ? 1u : 0u) << b;
        eq &= vm;
        if (eq)
            return i + __builtin_ctz(eq);
    }
    for (; i < n; ++i)
        if ((meta[i] & valid_bit) && tags[i] == tag)
            return i;
    return -1;
#else
    return findTagScalar(tags, meta, n, tag, valid_bit);
#endif
}

/**
 * Four independent CRC-64/ECMA reductions in one pass over the
 * slice-by-8 tables: out[l] = ~fold(d[l]) where fold() XORs
 * tables[j][byte j of d] for the eight bytes (byte 7 = most
 * significant, consumed first, so it takes the most-advanced table).
 * The caller pre-folds the CRC init
 * value and byte order into d (see crc64() in hash.hh); this kernel
 * is pure table algebra so the AVX2 gather path and the scalar path
 * agree bit for bit.
 */
inline void
crc64x4(const std::uint64_t (*tables)[256], const std::uint64_t *d,
        std::uint64_t *out)
{
// The gather formulation is only a win where VPGATHERQQ is fast;
// several server parts (and most virtualized hosts) microcode it
// slower than four independent scalar slice-by-8 chains, which
// already saturate the load ports. Opt in explicitly.
#if NECPT_SIMD_AVX2 && defined(NECPT_SIMD_CRC_GATHER)
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(d));
    const __m256i byte_mask = _mm256_set1_epi64x(0xFF);
    __m256i acc = _mm256_setzero_si256();
    // Byte 7 (bits 56..63) goes through table 7, byte 0 through
    // table 0: unrolled so each gather uses a compile-time table.
    acc = _mm256_xor_si256(acc, _mm256_i64gather_epi64(
        reinterpret_cast<const long long *>(tables[7]),
        _mm256_and_si256(_mm256_srli_epi64(v, 56), byte_mask), 8));
    acc = _mm256_xor_si256(acc, _mm256_i64gather_epi64(
        reinterpret_cast<const long long *>(tables[6]),
        _mm256_and_si256(_mm256_srli_epi64(v, 48), byte_mask), 8));
    acc = _mm256_xor_si256(acc, _mm256_i64gather_epi64(
        reinterpret_cast<const long long *>(tables[5]),
        _mm256_and_si256(_mm256_srli_epi64(v, 40), byte_mask), 8));
    acc = _mm256_xor_si256(acc, _mm256_i64gather_epi64(
        reinterpret_cast<const long long *>(tables[4]),
        _mm256_and_si256(_mm256_srli_epi64(v, 32), byte_mask), 8));
    acc = _mm256_xor_si256(acc, _mm256_i64gather_epi64(
        reinterpret_cast<const long long *>(tables[3]),
        _mm256_and_si256(_mm256_srli_epi64(v, 24), byte_mask), 8));
    acc = _mm256_xor_si256(acc, _mm256_i64gather_epi64(
        reinterpret_cast<const long long *>(tables[2]),
        _mm256_and_si256(_mm256_srli_epi64(v, 16), byte_mask), 8));
    acc = _mm256_xor_si256(acc, _mm256_i64gather_epi64(
        reinterpret_cast<const long long *>(tables[1]),
        _mm256_and_si256(_mm256_srli_epi64(v, 8), byte_mask), 8));
    acc = _mm256_xor_si256(acc, _mm256_i64gather_epi64(
        reinterpret_cast<const long long *>(tables[0]),
        _mm256_and_si256(v, byte_mask), 8));
    acc = _mm256_xor_si256(acc, _mm256_set1_epi64x(-1)); // final ~
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(out), acc);
#else
    for (int l = 0; l < 4; ++l) {
        std::uint64_t acc = 0;
        for (int j = 0; j < 8; ++j)
            acc ^= tables[j][(d[l] >> (j * 8)) & 0xFF];
        out[l] = ~acc;
    }
#endif
}

} // namespace simd
} // namespace necpt

#endif // NECPT_COMMON_SIMD_HH
