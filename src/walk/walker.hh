/**
 * @file
 * Page-walk state machines: common interface, statistics, and timing
 * helpers shared by every page-table organization's walker.
 *
 * A walker is invoked on an L2-TLB miss and returns the translation
 * plus the cycles the MMU stayed busy servicing it (Figure 10/11
 * metrics). Memory traffic is issued through the shared MemoryHierarchy
 * so walks and demand accesses compete for real cache space and DRAM
 * banks.
 */

#ifndef NECPT_WALK_WALKER_HH
#define NECPT_WALK_WALKER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/cycle_ledger.hh"
#include "common/log.hh"
#include "common/metrics.hh"
#include "common/stats.hh"
#include "common/trace_events.hh"
#include "mem/hierarchy.hh"
#include "mmu/walk_caches.hh"
#include "os/system.hh"

namespace necpt
{

/** ECPT walk-pruning outcome classes (Section 9.4, Figure 14). */
enum class WalkKind : std::uint8_t
{
    Direct = 0,   //!< 1 access: size and way known
    Size = 1,     //!< all d ways of one ECPT
    Partial = 2,  //!< up to all ways of two ECPTs
    Complete = 3, //!< all ways of all ECPTs
};

inline const char *
walkKindName(WalkKind kind)
{
    switch (kind) {
      case WalkKind::Direct: return "direct";
      case WalkKind::Size: return "size";
      case WalkKind::Partial: return "partial";
      case WalkKind::Complete: return "complete";
    }
    return "?";
}

/** The outcome of one hardware walk. */
struct WalkResult
{
    Translation translation; //!< effective gVA -> hPA mapping
    Cycles latency = 0;      //!< L2-TLB-miss to completion
    int mem_accesses = 0;    //!< foreground MMU requests issued
};

/** Charge one memory-latency decomposition into a ledger. The split
 *  sums to the access/batch latency, so charging it keeps the walk's
 *  cycle-conservation invariant intact. */
inline void
chargeMemBreakdown(CycleLedger &ledger, const MemBreakdown &bd)
{
    ledger.charge(AttrCause::Issue, bd.issue);
    ledger.charge(AttrCause::Mshr, bd.mshr);
    ledger.charge(AttrCause::Cache, bd.cache);
    ledger.charge(AttrCause::DramQueue, bd.dram_queue);
    ledger.charge(AttrCause::DramService, bd.dram_service);
    ledger.charge(AttrCause::DramBus, bd.dram_bus);
    ledger.charge(AttrCause::Fault, bd.fault);
}

/** Aggregated per-walker statistics. */
struct WalkerStats
{
    WalkerStats()
    {
        attr_hist.reserve(num_attr_causes);
        for (int c = 0; c < num_attr_causes; ++c)
            attr_hist.emplace_back(20, 64);
    }

    Counter walks;
    Counter mmu_requests;     //!< all MMU hierarchy requests (+background)
    Cycles busy_cycles = 0;   //!< sum of walk latencies (Figure 10)
    Histogram walk_latency{20, 64}; //!< Figure 11 bins (20-cycle wide)

    /** Walk-MSHR coalescing (SimParams::walk_coalescing): waiters
     *  merged onto an in-flight same-page walk instead of walking
     *  themselves, and the waiters-per-primary distribution (sampled
     *  once per primary that had at least one waiter). A waiter counts
     *  as a walk — its whole latency bins to AttrCause::Coalesce — so
     *  walks ≈ L2-TLB-misses and ledger conservation both survive. */
    Counter coalesced;
    Histogram coalesce_waiters{1, 16};

    /** Cycle attribution: total walk cycles per cause, and each
     *  cause's per-walk distribution ("attr.<cause>" registry names).
     *  Conservation: the attr_cycles sum equals busy_cycles whenever
     *  attribution was enabled for every recorded walk. */
    std::array<std::uint64_t, num_attr_causes> attr_cycles{};
    std::vector<Histogram> attr_hist; //!< one {20,64} per cause

    /** Figure 14: walk-kind tallies for the guest and host sides. */
    Counter guest_kind[4];
    Counter host_kind[4];

    /** Section 9.4: parallel accesses per nested-ECPT step. */
    std::uint64_t step_sum[3] = {0, 0, 0};
    std::uint64_t step_cnt[3] = {0, 0, 0};
    /** Latency spent in each step's probe phase (diagnostics). */
    std::uint64_t step_lat[3] = {0, 0, 0};

    double
    avgStepAccesses(int step) const
    {
        return step_cnt[step]
            ? static_cast<double>(step_sum[step])
                  / static_cast<double>(step_cnt[step])
            : 0.0;
    }

    void
    reset()
    {
        walks.reset();
        mmu_requests.reset();
        busy_cycles = 0;
        walk_latency.reset();
        coalesced.reset();
        coalesce_waiters.reset();
        for (int i = 0; i < 4; ++i) {
            guest_kind[i].reset();
            host_kind[i].reset();
        }
        for (int i = 0; i < 3; ++i) {
            step_sum[i] = 0;
            step_cnt[i] = 0;
            step_lat[i] = 0;
        }
        attr_cycles.fill(0);
        for (Histogram &h : attr_hist)
            h.reset();
    }
};

class WalkMachine;
class ImmediateWalkMachine;
struct SpecWalkPlan;

/** Returns a machine to its owner's pool (or deletes an unpooled one).
 *  Defined in walk/machine.hh — TUs destroying a WalkMachinePtr must
 *  include it. */
struct WalkMachineReleaser
{
    void operator()(WalkMachine *machine) const;
};

/** Owner handle for an in-flight walk. Dropping it recycles the
 *  machine into its walker's free list rather than deleting it, so
 *  steady-state walks reuse a warm arena instead of hitting the heap. */
using WalkMachinePtr = std::unique_ptr<WalkMachine, WalkMachineReleaser>;

/**
 * Abstract walker.
 */
class Walker
{
  public:
    Walker(NestedSystem &system, MemoryHierarchy &memory, int core_id)
        : sys(system), mem(memory), core(core_id)
    {}

    virtual ~Walker();

    /** Service an L2-TLB miss for @p gva starting at cycle @p now. */
    virtual WalkResult translate(Addr gva, Cycles now) = 0;

    /**
     * Begin a resumable walk for @p gva at cycle @p now. The returned
     * machine may already be done (synchronous designs adapt through
     * ImmediateWalkMachine); asynchronous designs return a machine
     * parked on in-flight memory transactions that completes as the
     * owner drains the hierarchy. The machine borrows this walker and
     * must not outlive it; releasing the handle recycles it.
     */
    virtual WalkMachinePtr startWalk(Addr gva, Cycles now);

    /**
     * startWalk with an optional speculative precomputation for @p gva
     * (walk/spec_plan.hh), produced by the epoch barrier's rendezvous
     * workers. A plan is a pure function of (gva, page tables) stamped
     * with the mutation epoch it was computed under; walkers that
     * understand plans consume the stamp-valid parts and recompute the
     * rest, so the simulated bytes never depend on whether (or when) a
     * plan was supplied. The base implementation ignores the plan.
     * @p spec may be null and is only borrowed for the duration of the
     * call — the walk machine copies what it keeps.
     */
    virtual WalkMachinePtr
    startWalk(Addr gva, Cycles now, const SpecWalkPlan *spec)
    {
        (void)spec;
        return startWalk(gva, now);
    }

    /** Human-readable configuration name. */
    virtual std::string name() const = 0;

    /**
     * Shootdown receive side: drop every private walk-cache entry
     * (PWC/NPWC/NTLB/STC/CWC) derived from guest-virtual pages in
     * [gva, gva+bytes) or from the host backing of guest-physical
     * pages in [gpa, gpa+gpa_bytes). The base walker caches nothing.
     * @return entries invalidated.
     */
    virtual std::size_t
    invalidateTranslationCaches(Addr gva, std::uint64_t bytes, Addr gpa,
                                std::uint64_t gpa_bytes)
    {
        (void)gva;
        (void)bytes;
        (void)gpa;
        (void)gpa_bytes;
        return 0;
    }

    WalkerStats &stats() { return stats_; }
    const WalkerStats &stats() const { return stats_; }

    /**
     * The simulated core this walker (and every machine it pools)
     * belongs to. Walk machines are pinned to their walker's core
     * arena: startWalk() recycles only machines this walker released,
     * so machine state never migrates between cores — the invariant
     * the thread-sharded timing core's per-core event pumps rely on
     * (a core's step/retire events only ever touch that core's
     * arena; cross-core traffic goes through the shared domain).
     */
    int coreIndex() const { return core; }

    /**
     * Toggle per-walk cycle attribution (on by default). Disabling
     * reduces every charge to one untaken branch — the hot path runs
     * exactly as it did before attribution existed. The owner should
     * keep the MemoryHierarchy's attribution flag in step so batch
     * breakdowns exist when walks want to charge them.
     */
    virtual void
    setAttribution(bool on)
    {
        attr_enabled_ = on;
        ledger_.setEnabled(on);
    }

    bool attributionEnabled() const { return attr_enabled_; }

    /** The folded ledger of the most recently finished walk (valid
     *  after any finishWalk; composite walkers fold it into their own
     *  ledger to keep nested walks conserving). */
    const CycleLedger &lastWalkLedger() const { return last_ledger_; }

    /** Attach the walk-level event tracer (null detaches; default). */
    void setTracer(TraceBuffer *tracer) { tracer_ = tracer; }
    TraceBuffer *tracer() const { return tracer_; }

    /** Dotted-name component for this walker's registry entries. */
    virtual const char *metricsSlug() const { return "walker"; }

    /**
     * Register this walker's statistics under "<prefix>walk.<slug>.*".
     * Subclasses call the base version then add their own caches.
     */
    virtual void
    registerMetrics(MetricsRegistry &reg, const std::string &prefix)
    {
        const std::string p = prefix + "walk." + metricsSlug() + ".";
        WalkerStats *s = &stats_;
        reg.addCounter(p + "walks", [s] { return s->walks.value(); });
        reg.addCounter(p + "mmu_requests",
                       [s] { return s->mmu_requests.value(); });
        reg.addCounter(p + "busy_cycles", [s] {
            return static_cast<std::uint64_t>(s->busy_cycles);
        });
        reg.addHistogram(p + "latency", &s->walk_latency,
                         "walk latency distribution (Figure 11 bins)");
        reg.addCounter(p + "coalesced",
                       [s] { return s->coalesced.value(); },
                       "walks merged onto an in-flight same-page walk");
        reg.addHistogram(p + "coalesce.waiters", &s->coalesce_waiters,
                         "waiters fanned out per coalesced primary");
        for (int k = 0; k < 4; ++k) {
            const char *kn = walkKindName(static_cast<WalkKind>(k));
            reg.addCounter(p + "kind.guest." + kn,
                           [s, k] { return s->guest_kind[k].value(); });
            reg.addCounter(p + "kind.host." + kn,
                           [s, k] { return s->host_kind[k].value(); });
        }
        for (int i = 0; i < 3; ++i) {
            const std::string sp = p + "step" + std::to_string(i + 1)
                                 + ".";
            reg.addCounter(sp + "probes",
                           [s, i] { return s->step_sum[i]; });
            reg.addCounter(sp + "phases",
                           [s, i] { return s->step_cnt[i]; });
            reg.addCounter(sp + "cycles",
                           [s, i] { return s->step_lat[i]; });
            reg.addValue(sp + "avg_probes",
                         [s, i] { return s->avgStepAccesses(i); });
        }
        for (int c = 0; c < num_attr_causes; ++c) {
            const std::string ap =
                p + "attr."
                + attrCauseName(static_cast<AttrCause>(c));
            reg.addCounter(ap + ".cycles",
                           [s, c] { return s->attr_cycles[c]; },
                           "walk cycles attributed to this cause");
            reg.addHistogram(ap, &s->attr_hist[c],
                             "per-walk cycles of this cause");
        }
    }

    /**
     * Record one coalesced waiter (walk-MSHR merge): a translation
     * request that parked on an in-flight same-page walk and completed
     * when that primary retired, @p latency cycles after it was
     * issued. The waiter is a walk whose entire latency is
     * AttrCause::Coalesce — no probe traffic happened on its behalf —
     * so the walks ≈ L2-TLB-misses invariant and the attr/busy
     * conservation identity both hold exactly.
     */
    void
    recordCoalescedWalk(Cycles latency)
    {
        ++stats_.walks;
        ++stats_.coalesced;
        stats_.busy_cycles += latency;
        stats_.walk_latency.sample(latency);
        if (attr_enabled_) {
            constexpr auto c =
                static_cast<std::size_t>(AttrCause::Coalesce);
            stats_.attr_cycles[c] += latency;
            stats_.attr_hist[c].sample(latency);
        }
    }

    /** Sample the waiters-per-primary distribution at entry close
     *  (called once per primary walk that coalesced anything). */
    void
    noteCoalesceFanout(std::uint64_t waiters)
    {
        stats_.coalesce_waiters.sample(waiters);
    }

    /** MMU structure lookup latency (Table 2: 4 cycles RT). */
    static constexpr Cycles mmu_cache_latency = 4;
    /** Hash unit latency (Table 2: 2 cycles). */
    static constexpr Cycles hash_latency = 2;

  protected:
    /** One sequential (dependent) MMU memory access. Charges the
     *  walk's ledger with the exact latency decomposition. */
    Cycles
    seqAccess(Addr hpa, Cycles now)
    {
        ++stats_.mmu_requests;
        if (!attr_enabled_)
            return mem.access(hpa, now, Requester::Mmu, core).latency;
        MemBreakdown bd;
        const AccessResult r =
            mem.access(hpa, now, Requester::Mmu, core, &bd);
        chargeMemBreakdown(ledger_, bd);
        return r.latency;
    }

    /** seqAccess charging the whole latency to one cause — for
     *  accesses that *are* the cause (the POM-TLB's in-DRAM probe). */
    Cycles
    seqAccessAs(AttrCause cause, Addr hpa, Cycles now)
    {
        ++stats_.mmu_requests;
        const Cycles lat =
            mem.access(hpa, now, Requester::Mmu, core).latency;
        ledger_.charge(cause, lat);
        return lat;
    }

    /** Charge an analytic latency addition (cache probe, hash unit,
     *  NTLB lookup, VM exit) to the current walk's ledger. */
    void charge(AttrCause cause, Cycles cycles)
    {
        ledger_.charge(cause, cycles);
    }

    /** A parallel batch of MMU accesses (one walk phase). */
    BatchResult
    batchAccess(AddrSpan addrs, Cycles now)
    {
        BatchResult r = mem.batchAccess(addrs, now, core);
        stats_.mmu_requests.inc(static_cast<std::uint64_t>(r.requests));
        if (attr_enabled_)
            chargeMemBreakdown(ledger_, r.bd);
        return r;
    }

    /** Background traffic (CWC/CWT refills): consumes bandwidth and
     *  cache space but does not extend the walk. */
    void
    backgroundAccess(AddrSpan addrs, Cycles now)
    {
        BatchResult r = mem.batchAccess(addrs, now, core);
        stats_.mmu_requests.inc(static_cast<std::uint64_t>(r.requests));
    }

    /**
     * Deepest radix level whose entry a PWC supplies for @p va: the
     * walk skips fetching every level >= the returned value (a PWC
     * hit at level L hands over that entry's content, i.e. the base
     * of the L-1 table). Returns top+2 when nothing is cached.
     */
    static int
    pwcSkipLevel(PageWalkCache &pwc, const std::vector<RadixStep> &steps,
                 Addr va, int min_cached_level = 2)
    {
        int skip_through = 7; // above any supported tree
        for (const RadixStep &step : steps) {
            if (step.level >= min_cached_level
                && pwc.lookup(step.level, va)) {
                skip_through = step.level;
            }
        }
        return skip_through;
    }

    /**
     * Sampling gate, called at the top of translate(): decides whether
     * this walk's events are recorded (see TraceBuffer::beginWalk).
     */
    bool traceBegin() { return tracer_ && tracer_->beginWalk(); }

    /** Is the current walk being traced? The hot-path check. */
    bool traceActive() const { return tracer_ && tracer_->walkActive(); }

    /**
     * Record a finished walk in the common statistics and fold its
     * cycle ledger (the walker's own, or @p walk_ledger for designs
     * whose machines carry one each) into the attr.* aggregates. With
     * attribution enabled end-to-end the fold asserts conservation:
     * the ledger's bins must sum exactly to the walk's latency.
     */
    void
    finishWalk(WalkResult &result, Cycles start, Cycles end,
               int foreground_accesses,
               CycleLedger *walk_ledger = nullptr)
    {
        result.latency = end - start;
        result.mem_accesses = foreground_accesses;
        ++stats_.walks;
        stats_.busy_cycles += result.latency;
        stats_.walk_latency.sample(result.latency);
        CycleLedger &led = walk_ledger ? *walk_ledger : ledger_;
        if (attr_enabled_) {
            NECPT_ASSERT(!mem.attributionEnabled()
                         || led.total() == result.latency);
            for (int c = 0; c < num_attr_causes; ++c) {
                const auto cycles = led.bins()[static_cast<size_t>(c)];
                stats_.attr_cycles[static_cast<size_t>(c)] += cycles;
                stats_.attr_hist[static_cast<size_t>(c)].sample(cycles);
            }
        }
        last_ledger_ = led;
        led.reset();
        if (traceActive()) {
            const AttrCause top = last_ledger_.dominant();
            tracer_->span("walk", TraceCat::Walk,
                          static_cast<std::uint32_t>(core), start,
                          result.latency,
                          {{"accesses", foreground_accesses},
                           {"attr_top", 0, attrCauseName(top)},
                           {"attr_top_cycles",
                            static_cast<std::int64_t>(
                                last_ledger_.bin(top))}});
            tracer_->endWalk();
        }
    }

    NestedSystem &sys;
    MemoryHierarchy &mem;
    int core;
    WalkerStats stats_;
    TraceBuffer *tracer_ = nullptr;
    /** The in-progress walk's cycle bins (serialized designs; walkers
     *  whose machines overlap carry one ledger per machine instead).
     *  finishWalk() folds and resets, so it is always clean between
     *  walks. */
    CycleLedger ledger_;
    /** Snapshot of the last finished walk's bins (composite designs
     *  fold a nested walker's lastWalkLedger into their own). */
    CycleLedger last_ledger_;
    bool attr_enabled_ = true;

  private:
    friend class ImmediateWalkMachine;
    /** Arena deleter, out of line (machine.cc): the machine type is
     *  incomplete here, and the default deleter would be instantiated
     *  in every TU that constructs a walker. */
    struct ImmMachineDeleter
    {
        void operator()(ImmediateWalkMachine *machine) const;
    };
    /** Pool behind the default startWalk(): released immediate
     *  machines go back on the free list for the next TLB miss. */
    std::vector<std::unique_ptr<ImmediateWalkMachine, ImmMachineDeleter>>
        imm_arena;
    std::vector<ImmediateWalkMachine *> imm_free;
};

} // namespace necpt

#endif // NECPT_WALK_WALKER_HH
