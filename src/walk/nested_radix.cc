#include "walk/nested_radix.hh"

#include "common/log.hh"

namespace necpt
{

Translation
NestedRadixWalker::hostWalk(Addr gpa, Cycles &t, int &accesses)
{
    // Make sure the backing exists (functional fault-in), then walk.
    const Translation host = sys.hostTranslate(gpa);
    std::vector<RadixStep> steps;
    RadixPageTable *table = sys.hostRadix();
    NECPT_ASSERT(table != nullptr);
    table->walk(gpa, steps);

    const int skip_through = pwcSkipLevel(npwc, steps, gpa, 1);

    for (const RadixStep &step : steps) {
        if (step.level >= skip_through)
            continue;
        t += seqAccess(step.entry_addr, t);
        ++accesses;
        if (!step.leaf)
            npwc.fill(step.level, gpa);
    }
    return host;
}

WalkResult
NestedRadixWalker::translate(Addr gva, Cycles now)
{
    const bool tracing = traceBegin();
    WalkResult result;
    std::vector<RadixStep> gsteps;
    RadixPageTable *gtable = sys.guestRadix();
    NECPT_ASSERT(gtable != nullptr);
    const Translation guest = gtable->walk(gva, gsteps);
    NECPT_ASSERT(guest.valid);

    Cycles t = now + gpwc.latency(); // gPWC/NTLB probed up front
    charge(AttrCause::Probe, gpwc.latency());
    int accesses = 0;

    // Deepest guest level whose entry the gPWC supplies.
    const int skip_through = pwcSkipLevel(gpwc, gsteps, gva);

    // Guest dimension: translate and fetch each remaining gL_i entry
    // (Figure 2 steps 1-20).
    for (const RadixStep &step : gsteps) {
        if (step.level >= skip_through)
            continue;
        const Addr entry_gpa = step.entry_addr;
        Translation host;
        Addr *hpa_frame = ntlb.lookup(entry_gpa);
        if (tracing)
            tracer_->instant(hpa_frame ? "ntlb.hit" : "ntlb.miss",
                             TraceCat::Cwc,
                             static_cast<std::uint32_t>(core), t,
                             {{"level", step.level},
                              {"gpa", static_cast<std::int64_t>(
                                          entry_gpa)}});
        if (hpa_frame) {
            host = {*hpa_frame, PageSize::Page4K, true};
            t += ntlb.latency();
            charge(AttrCause::Tlb, ntlb.latency());
        } else {
            const Cycles t0 = t;
            host = hostWalk(entry_gpa, t, accesses);
            if (tracing)
                tracer_->span("nested.host_walk", TraceCat::Walk,
                              static_cast<std::uint32_t>(core), t0,
                              t - t0, {{"level", step.level}});
            ntlb.fill(entry_gpa,
                      host.apply(entry_gpa) & ~mask(12));
        }
        const Addr entry_hpa = host.apply(entry_gpa);
        t += seqAccess(entry_hpa, t);
        ++accesses;
        if (step.level >= 2 && !step.leaf)
            gpwc.fill(step.level, gva);
    }

    // Final host dimension for the data page (Figure 2 steps 21-24).
    const Addr gpa_data = guest.apply(gva);
    const Cycles tf = t;
    hostWalk(gpa_data, t, accesses);
    if (tracing)
        tracer_->span("nested.host_walk", TraceCat::Walk,
                      static_cast<std::uint32_t>(core), tf, t - tf,
                      {{"level", 0}});

    result.translation = sys.fullTranslate(gva);
    finishWalk(result, now, t, accesses);
    return result;
}

} // namespace necpt
