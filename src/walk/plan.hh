/**
 * @file
 * ECPT walk planning: turn Cuckoo-Walk-Cache contents into the minimal
 * set of (page size, way) probes for a lookup, and classify the outcome
 * as a Direct / Size / Partial / Complete walk (Section 9.4).
 */

#ifndef NECPT_WALK_PLAN_HH
#define NECPT_WALK_PLAN_HH

#include <array>
#include <cstdint>
#include <vector>

#include "mmu/cwc.hh"
#include "pt/ecpt.hh"
#include "walk/spec_plan.hh"
#include "walk/walker.hh"

namespace necpt
{

/** The probe set an ECPT walk must issue for one address. */
struct EcptProbePlan
{
    /** Per page size: bitmask of ways to probe (0 = skip the table). */
    std::array<unsigned, num_page_sizes> way_mask{0, 0, 0};
    /** CWC levels that missed and want a background refill. */
    std::array<bool, num_page_sizes> cwc_missed{false, false, false};
    WalkKind kind = WalkKind::Complete;

    int
    tablesProbed() const
    {
        int n = 0;
        for (unsigned m : way_mask)
            n += (m != 0);
        return n;
    }
};

/** Planner knobs (differ between steps and designs). */
struct PlanOptions
{
    /**
     * Consult (and later refill) the PTE-level CWC. Requires the table
     * to actually maintain a PTE CWT; gated adaptively in Step 3 of the
     * Advanced design (Section 4.2).
     */
    bool use_pte_info = false;
    /** When set, PTE/PMD CWC outcomes feed the adaptive controller. */
    AdaptiveCwcController *adaptive = nullptr;
    Cycles now = 0;
};

/**
 * Build the probe plan for @p va against @p pt using @p cwc.
 */
EcptProbePlan planEcptWalk(const EcptPageTable &pt, CuckooWalkCache &cwc,
                           Addr va, const PlanOptions &options);

/**
 * Classify a plan by how many probes/tables it needs.
 */
WalkKind classifyPlan(const EcptProbePlan &plan, int ways);

/**
 * Refill the CWC levels that missed during planning from the software
 * CWTs, returning the (physical, in @p pt 's address space) addresses of
 * the CWT probe traffic so the walker can issue it in the background.
 * For the *guest* table those addresses are guest-physical and the
 * caller must translate them (STC path, Section 4.1).
 */
void collectCwcRefills(const EcptPageTable &pt, CuckooWalkCache &cwc,
                       Addr va, const EcptProbePlan &plan,
                       const PlanOptions &options,
                       std::vector<Addr> &fetch_addrs);

/// @name Shared probe executor
/// The plan→issue→collect sequence every ECPT walker runs per probe
/// phase, hoisted out of the per-design walkers so the asynchronous
/// port edits one place.
/// @{

/**
 * Append the probe addresses @p plan selects for @p va against @p pt
 * (one entry per (page size, way) slot to fetch).
 *
 * @return the number of addresses appended.
 */
std::size_t appendPlannedProbes(const EcptPageTable &pt, Addr va,
                                const EcptProbePlan &plan,
                                std::vector<Addr> &out);

/**
 * Charge one executed probe phase to the walker statistics:
 * mmu_requests always; the Section-9.4 per-step probe/latency tallies
 * when @p step is a nested-ECPT step index (0-based; pass -1 for
 * designs without the three-step structure). When @p ledger is
 * non-null the batch's critical-line decomposition is charged to it
 * (cycle attribution; the split sums to batch.latency exactly).
 */
void chargeProbePhase(WalkerStats &stats, int step,
                      const BatchResult &batch,
                      CycleLedger *ledger = nullptr);

/**
 * Synchronous probe phase: issue @p addrs as one parallel batch at
 * @p now, drain it, and charge the statistics (the legacy walker
 * timing; resumable walk machines issue the same transaction through
 * MemoryHierarchy::issueBatch and charge on completion instead).
 */
BatchResult executeProbePhase(MemoryHierarchy &mem, int core,
                              WalkerStats &stats, int step,
                              AddrSpan addrs, Cycles now,
                              CycleLedger *ledger = nullptr);

/// @}

/// @name Speculative epoch-window precomputation (walk/spec_plan.hh)
/// @{

/**
 * Fill @p out with the (page size, way, generation) probe addresses of
 * @p pt for @p va — the hash-unit slice of planning, independent of any
 * CWC state. @p scratch is caller-owned reusable storage (reserve ≥
 * ways * 2 once; the call is then allocation-free, which the epoch
 * workers require). Leaves out.ok false when the geometry exceeds
 * SpecProbeSet::max_plan_ways.
 */
void computeSpecProbes(const EcptPageTable &pt, Addr va,
                       std::vector<Addr> &scratch, SpecProbeSet &out);

/**
 * Compute the full speculative plan for @p gva under mutation stamp
 * @p stamp: guest candidate-slot probes, the functional guest
 * translation, Step-3 host probes for the data gPA, and the peeked
 * full translation. Strictly side-effect free — no faults, no
 * statistics, no tracer output — so epoch-barrier workers may run it
 * concurrently (never concurrently with a mutation: the coordinator is
 * parked during rendezvous windows). Requires both ECPTs; leaves
 * out.valid false otherwise.
 */
void computeSpecWalkPlan(const NestedSystem &sys, Addr gva,
                         std::uint64_t stamp, std::vector<Addr> &scratch,
                         SpecWalkPlan &out);

/**
 * Append the probe addresses @p plan's way masks select from the
 * precomputed @p set — the speculative twin of appendPlannedProbes,
 * byte-identical to it whenever the set's stamp is still current.
 *
 * @return the number of addresses appended.
 */
std::size_t appendSpecProbes(const SpecProbeSet &set,
                             const EcptProbePlan &plan,
                             std::vector<Addr> &out);

/// @}

/**
 * Reusable probe-address buffers for one walk in flight. Owned by the
 * walker (serialized designs) or the walk machine (overlapped walks);
 * the planner and the hierarchy only ever see clear()+append views, so
 * after warm-up no translation grows a buffer. See DESIGN.md "Hot path
 * & memory layout".
 */
struct ProbeScratch
{
    std::vector<Addr> guest_slots; //!< Step-1 gECPT candidate slots
    std::vector<Addr> probes;      //!< current step's probe batch
    std::vector<Addr> background;  //!< CWC/STC refill traffic

    void
    clear()
    {
        guest_slots.clear();
        probes.clear();
        background.clear();
    }
};

} // namespace necpt

#endif // NECPT_WALK_PLAN_HH
