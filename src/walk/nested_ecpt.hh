/**
 * @file
 * Nested ECPT walker — the paper's contribution (Sections 3-5).
 *
 * A nested ECPT walk has three sequential phases (Figure 6):
 *   Step 1: probe hECPTs to locate the gECPT entry candidates,
 *   Step 2: fetch the gECPT candidates at their host addresses,
 *   Step 3: probe hECPTs to translate the data page's gPA.
 *
 * The walker implements both the *Plain* design (direct port of native
 * ECPTs) and the *Advanced* design via feature flags so the Figure-9
 * technique breakdown can be regenerated:
 *   - stc: Shortcut Translation Cache for gCWT refills (Section 4.1)
 *   - step1_pte_hcwt: PTE hCWT caching for Step 1 (Section 4.2)
 *   - step3_adaptive_pte: adaptive PTE hCWT caching for Step 3
 *     (Section 4.2, Figure 12)
 *   - pt_4kb: leverage 4KB page-table allocation (Section 4.3)
 *
 * Neither design caches hPTE->gPTE pointers, since cuckoo rehashing and
 * elastic resizing move gPTEs (Section 4.4).
 */

#ifndef NECPT_WALK_NESTED_ECPT_HH
#define NECPT_WALK_NESTED_ECPT_HH

#include "mmu/cwc.hh"
#include "mmu/walk_caches.hh"
#include "walk/plan.hh"
#include "walk/walker.hh"

namespace necpt
{

/** Advanced-design technique toggles (all false = Plain design). */
struct NestedEcptFeatures
{
    bool stc = true;
    bool step1_pte_hcwt = true;
    bool step3_adaptive_pte = true;
    bool pt_4kb = true;
    /** STC capacity (Table 2: 10; Section 9.4 sweeps 4/8/10). */
    std::size_t stc_entries = 10;

    static NestedEcptFeatures
    plain()
    {
        return {false, false, false, false, 10};
    }

    static NestedEcptFeatures
    advanced()
    {
        return {true, true, true, true, 10};
    }
};

/**
 * Walker for the "Nested ECPTs" configurations of Table 1.
 */
class NestedEcptWalker : public Walker
{
  public:
    NestedEcptWalker(NestedSystem &system, MemoryHierarchy &memory,
                     int core_id,
                     const NestedEcptFeatures &features =
                         NestedEcptFeatures::advanced());

    ~NestedEcptWalker() override;

    WalkResult translate(Addr gva, Cycles now) override;

    /**
     * Resumable walk: Steps 1-3 are states issuing asynchronous probe
     * transactions and parking until they complete, so independent
     * walks can overlap. translate() is this plus an immediate drain.
     * Machines come from a per-walker pool: after warm-up no walk
     * allocates.
     */
    WalkMachinePtr startWalk(Addr gva, Cycles now) override;

    /**
     * startWalk consuming a speculative precomputation: the machine
     * copies the plan and, at each step whose inputs the plan covers
     * (Step-1 guest slot addresses, the Step-2 functional guest
     * translation, Step-3 host probe addresses, the final full
     * translation), uses the precomputed value *iff* the plan's stamp
     * still matches the system's mutationStamp() at that step's commit
     * time — otherwise that step recomputes inline. Either path yields
     * identical bytes; the plan only moves hash/lookup work off the
     * coordinator's critical path and onto the epoch workers.
     */
    WalkMachinePtr startWalk(Addr gva, Cycles now,
                             const SpecWalkPlan *spec) override;

    std::string name() const override
    {
        return plainDesign() ? "PlainNestedECPT" : "NestedECPT";
    }

    const char *metricsSlug() const override { return "nested_ecpt"; }

    void registerMetrics(MetricsRegistry &reg,
                         const std::string &prefix) override;

    bool
    plainDesign() const
    {
        return !feat.stc && !feat.step1_pte_hcwt
            && !feat.step3_adaptive_pte && !feat.pt_4kb;
    }

    /// @name Introspection for tests and Section 9.4 benches
    /// @{
    const ShortcutTranslationCache &shortcutCache() const { return stc; }
    const CuckooWalkCache &guestCwc() const { return gcwc; }
    const CuckooWalkCache &hostCwcStep1() const { return hcwc_step1; }
    const CuckooWalkCache &hostCwcStep3() const { return hcwc_step3; }
    const AdaptiveCwcController &adaptiveController() const
    {
        return adaptive;
    }
    const NestedEcptFeatures &features() const { return feat; }
    /// @}

    std::size_t
    invalidateTranslationCaches(Addr gva, std::uint64_t bytes, Addr gpa,
                                std::uint64_t gpa_bytes) override
    {
        std::size_t n = gcwc.invalidateRange(gva, bytes);
        if (gpa_bytes > 0) {
            n += hcwc_step1.invalidateRange(gpa, gpa_bytes);
            n += hcwc_step3.invalidateRange(gpa, gpa_bytes);
            n += stc.invalidateRange(gpa, gpa_bytes);
        }
        return n;
    }

  private:
    /** The resumable three-step walk (defined in nested_ecpt.cc). */
    class Machine;

    /**
     * Plan the host-side translation of @p gpa for Step 1 (locating a
     * gECPT slot — always a 4KB-backed page-table page).
     */
    EcptProbePlan planStep1Host(Addr gpa, Cycles t);

    /**
     * Handle gCWC refills: translate the gCWT entry addresses (via the
     * STC in the Advanced design, via full host probe traffic in the
     * Plain design) and append the fetch traffic to @p background.
     */
    void refillGuestCwc(Addr gva, const EcptProbePlan &gplan, Cycles t,
                        std::vector<Addr> &background);

    /** Per-level CWC hit/miss instants for a traced walk's plan. */
    void tracePlan(const char *cache, const CuckooWalkCache &cwc,
                   const EcptProbePlan &plan, Cycles t);

    /** Per-way probe-issue instants for one step's probe group. */
    void traceProbes(int step, AddrSpan addrs, Cycles t);

    /** Completion callee for deferred background refill transactions
     *  (the txn outlives its machine; the callee is the walker). */
    void noteBackground(const BatchResult &batch, Cycles done);

    NestedEcptFeatures feat;
    CuckooWalkCache gcwc;
    CuckooWalkCache hcwc_step1;
    CuckooWalkCache hcwc_step3;
    ShortcutTranslationCache stc;
    AdaptiveCwcController adaptive;

    /** gCWT entry-probe scratch for refillGuestCwc (never recursive). */
    std::vector<Addr> gcwt_scratch;

    /** Arena deleter, out of line (nested_ecpt.cc, after Machine's
     *  definition): Machine is incomplete at this point. */
    struct MachineDeleter
    {
        void operator()(Machine *machine) const;
    };

    /** Machine pool: released walks go on the free list; startWalk
     *  rebinds a recycled machine (probe-buffer capacity retained). */
    std::vector<std::unique_ptr<Machine, MachineDeleter>> machine_arena;
    std::vector<Machine *> machine_free;
};

} // namespace necpt

#endif // NECPT_WALK_NESTED_ECPT_HH
