/**
 * @file
 * Shadow paging walker — the classic software alternative to nested
 * paging (Waldspurger, OSDI'02; the design Agile Paging hybridizes
 * with, Sections 9.6/10).
 *
 * The hypervisor maintains a *shadow* radix table mapping gVA directly
 * to hPA, so a TLB miss walks a single 4-level tree (4 references, PWC
 * accelerated) — but every guest page-table update forces a VM exit so
 * the hypervisor can resynchronize the shadow. We model the steady
 * state the paper measures: shadow entries are built lazily on first
 * touch, each charged a configurable VM-exit cost.
 */

#ifndef NECPT_WALK_SHADOW_HH
#define NECPT_WALK_SHADOW_HH

#include <memory>

#include "mmu/walk_caches.hh"
#include "walk/walker.hh"

namespace necpt
{

/**
 * Shadow-paging walker.
 */
class ShadowPagingWalker : public Walker
{
  public:
    /**
     * @param vmexit_cycles hypervisor intervention cost charged when a
     *        translation is first shadowed (a round trip through the
     *        hypervisor: ~1-2us on real hardware; Table-2-era machines
     *        cost roughly a thousand cycles)
     */
    ShadowPagingWalker(NestedSystem &system, MemoryHierarchy &memory,
                       int core_id, Cycles vmexit_cycles = 1200);

    WalkResult translate(Addr gva, Cycles now) override;

    std::string name() const override { return "ShadowPaging"; }

    /** VM exits taken to synchronize the shadow table. */
    std::uint64_t vmExits() const { return vmexits; }

    /** Bytes of shadow-table structure (hypervisor overhead). */
    std::uint64_t shadowBytes() const;

    /**
     * Shootdown receive side: a guest page-table mutation invalidates
     * both the PWC range and the stale shadow entries — the next touch
     * refaults through the hypervisor (a fresh VM exit) and installs
     * the recomposed translation.
     */
    std::size_t invalidateTranslationCaches(
        Addr gva, std::uint64_t bytes, Addr gpa,
        std::uint64_t gpa_bytes) override;

  private:
    PageWalkCache pwc;
    std::unique_ptr<RadixPageTable> shadow;
    Cycles vmexit_cost;
    std::uint64_t vmexits = 0;
};

} // namespace necpt

#endif // NECPT_WALK_SHADOW_HH
