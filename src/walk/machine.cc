#include "walk/machine.hh"

namespace necpt
{

std::unique_ptr<WalkMachine>
Walker::startWalk(Addr gva, Cycles now)
{
    // Default adapter: run the synchronous walk to completion at issue.
    return std::make_unique<ImmediateWalkMachine>(gva, now,
                                                  translate(gva, now));
}

} // namespace necpt
