#include "walk/machine.hh"

namespace necpt
{

// Out of line: the imm_arena unique_ptrs need ImmediateWalkMachine
// complete, which walker.hh only forward-declares.
Walker::~Walker() = default;

void
Walker::ImmMachineDeleter::operator()(ImmediateWalkMachine *machine) const
{
    delete machine;
}

WalkMachinePtr
Walker::startWalk(Addr gva, Cycles now)
{
    // Default adapter: run the synchronous walk to completion at issue,
    // reusing a pooled machine when one is free.
    WalkResult result = translate(gva, now);
    ImmediateWalkMachine *m = nullptr;
    if (!imm_free.empty()) {
        m = imm_free.back();
        imm_free.pop_back();
        m->rebind(gva, now, std::move(result));
    } else {
        imm_arena.emplace_back(
            new ImmediateWalkMachine(this, gva, now, std::move(result)));
        m = imm_arena.back().get();
    }
    return WalkMachinePtr(m);
}

} // namespace necpt
