#include "walk/nested_hpt.hh"

#include "common/log.hh"

namespace necpt
{

Translation
NestedHptWalker::hostChain(Addr gpa, Cycles &t, int &accesses)
{
    HashedPageTable *host = sys.hostHpt();
    NECPT_ASSERT(host != nullptr);
    // Ensure the backing exists, then walk the collision chain.
    const Translation h = sys.hostTranslate(gpa);
    probe_buf.clear();
    const Translation chain = host->lookup(gpa, &probe_buf);
    NECPT_ASSERT(chain.valid);
    // Open addressing probes are dependent: each slot must be read to
    // learn whether the chain continues.
    for (Addr slot : probe_buf) {
        t += seqAccess(slot, t);
        ++accesses;
    }
    return h;
}

WalkResult
NestedHptWalker::translate(Addr gva, Cycles now)
{
    WalkResult result;
    HashedPageTable *guest = sys.guestHpt();
    NECPT_ASSERT(guest != nullptr);

    Cycles t = now + hash_latency;
    charge(AttrCause::Compute, hash_latency);
    int accesses = 0;

    // Step 1+2 (Figure 3): walk the guest chain; each guest slot is a
    // gPA that first needs a host-HPT translation.
    probe_buf.clear();
    const Translation g = guest->lookup(gva, &probe_buf);
    NECPT_ASSERT(g.valid);
    const std::vector<Addr> guest_chain = probe_buf; // hostChain reuses
    for (Addr slot_gpa : guest_chain) {
        Cycles t_host = t;
        const Translation h = hostChain(slot_gpa, t_host, accesses);
        t = t_host;
        // Fetch the guest slot itself at its host address.
        t += seqAccess(h.apply(slot_gpa), t);
        ++accesses;
    }

    // Step 3: translate the data page's gPA through the host HPT.
    const Addr gpa_data = g.apply(gva);
    t += hash_latency;
    charge(AttrCause::Compute, hash_latency);
    hostChain(gpa_data, t, accesses);

    result.translation = sys.fullTranslate(gva);
    NECPT_ASSERT(result.translation.valid);
    finishWalk(result, now, t, accesses);
    return result;
}

} // namespace necpt
