/**
 * @file
 * Speculative walk-plan precomputation (epoch-window walk execution).
 *
 * The thread-sharded timing core's rendezvous workers already advance
 * each core's workload stream and residency verdicts (sim/epoch.hh).
 * This header defines the next thing they precompute: the pure-function
 * slice of a nested-ECPT walk for each ring-ahead access — probe
 * addresses for every (page size, way) slot of the guest and Step-3
 * host tables (the hash-unit work), plus the functional guest and full
 * translations. Everything here is a pure function of (address, page
 * tables), so a plan stamped with the page-table mutation epoch it was
 * computed under can be consumed verbatim by the walk machine as long
 * as the stamp still matches — and must be discarded otherwise. What a
 * plan deliberately does NOT contain is anything CWC-dependent: way
 * masks come from the walker-private Cuckoo Walk Caches at walk time,
 * and the machine selects the matching precomputed addresses.
 *
 * Kept dependency-light (types + Translation only) so the per-core
 * pumps (sim/pump.hh) can embed plans in their lookahead rings without
 * pulling in the walker stack.
 */

#ifndef NECPT_WALK_SPEC_PLAN_HH
#define NECPT_WALK_SPEC_PLAN_HH

#include <cstdint>

#include "common/types.hh"
#include "pt/pte.hh"

namespace necpt
{

/**
 * Precomputed probe addresses of one ECPT for one lookup key: for each
 * (page size, way) slot, the addresses ElasticCuckooTable::probeAddrs
 * would emit (one per generation; two while an elastic resize is in
 * flight). The consumer applies its CWC-derived way mask and reads the
 * matching slots — byte-identical to planning inline, because both
 * sides iterate sizes then ways in ascending order.
 */
struct SpecProbeSet
{
    /** Geometry bound: tables with more ways fall back to inline
     *  planning (ok stays false). Table 2 uses d = 3. */
    static constexpr int max_plan_ways = 4;
    /** Generations a key can live in (live + migrating old). */
    static constexpr int max_gens = 2;

    std::uint8_t count[num_page_sizes][max_plan_ways] = {};
    Addr addr[num_page_sizes][max_plan_ways][max_gens] = {};
    /** False when the set was not (or could not be) computed. */
    bool ok = false;
};

/**
 * One ring-ahead access's precomputed walk slice, stamp-validated.
 * Consumed by NestedEcptWalker's machine at the points marked in
 * nested_ecpt.cc; every consumption site re-checks the stamp against
 * the system's current mutationStamp() because churn can mutate the
 * tables between the asynchronous walk steps.
 */
struct SpecWalkPlan
{
    /** Page-table mutation stamp the plan was computed under. */
    std::uint64_t stamp = 0;
    /** The guest VA the plan is for (defensive cross-check). */
    Addr gva = 0;
    /** Step-1 gECPT candidate-slot addresses (guest-physical). */
    SpecProbeSet guest;
    /** guestTranslate(gva) — valid flag included (an unmapped page
     *  yields an invalid translation here AND inline). */
    Translation guest_tr;
    /** guest_tr.apply(gva): the data page's gPA (when guest_tr is
     *  valid — host3 is only computed then). */
    Addr gpa_data = 0;
    /** Step-3 hECPT probe addresses for gpa_data (host-physical). */
    SpecProbeSet host3;
    /** peekFullTranslate(gva): usable only when valid — an invalid
     *  peek may mean the inline path would demand-fault the backing
     *  in, which a speculative worker must never do. */
    Translation full_tr;
    /** The plan was computed at all (planner ran and geometry fit). */
    bool valid = false;
};

} // namespace necpt

#endif // NECPT_WALK_SPEC_PLAN_HH
