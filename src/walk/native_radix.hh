/**
 * @file
 * Native radix walker: the Figure-1 x86-64 page walk with a per-core
 * Page Walk Cache covering the L4/L3/L2 entries (Section 2.1; L1/PTE
 * entries are not cached).
 */

#ifndef NECPT_WALK_NATIVE_RADIX_HH
#define NECPT_WALK_NATIVE_RADIX_HH

#include "mmu/walk_caches.hh"
#include "walk/walker.hh"

namespace necpt
{

/**
 * Walker for the native "Radix" configurations of Table 1.
 */
class NativeRadixWalker : public Walker
{
  public:
    NativeRadixWalker(NestedSystem &system, MemoryHierarchy &memory,
                      int core_id, std::size_t pwc_entries_per_level = 32)
        : Walker(system, memory, core_id),
          pwc(2, 5, pwc_entries_per_level)
    {}

    WalkResult translate(Addr gva, Cycles now) override;

    std::string name() const override { return "Radix"; }

    const char *metricsSlug() const override { return "radix"; }

    void
    registerMetrics(MetricsRegistry &reg,
                    const std::string &prefix) override
    {
        Walker::registerMetrics(reg, prefix);
        for (int l = pwc.minLevel(); l <= pwc.maxLevel(); ++l)
            reg.addHitMiss(prefix + "pwc.l" + std::to_string(l),
                           &pwc.stats(l));
    }

    PageWalkCache &walkCache() { return pwc; }

    std::size_t
    invalidateTranslationCaches(Addr gva, std::uint64_t bytes, Addr,
                                std::uint64_t) override
    {
        return pwc.invalidateRange(gva, bytes);
    }

  private:
    PageWalkCache pwc;
};

} // namespace necpt

#endif // NECPT_WALK_NATIVE_RADIX_HH
