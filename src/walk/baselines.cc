#include "walk/baselines.hh"

#include "common/log.hh"

namespace necpt
{

WalkResult
AgilePagingWalker::translate(Addr gva, Cycles now)
{
    WalkResult result;
    std::vector<RadixStep> gsteps;
    RadixPageTable *gtable = sys.guestRadix();
    NECPT_ASSERT(gtable != nullptr);
    const Translation guest = gtable->walk(gva, gsteps);
    NECPT_ASSERT(guest.valid);

    Cycles t = now + pwc.latency();
    charge(AttrCause::Probe, pwc.latency());
    int accesses = 0;

    const int skip_through = pwcSkipLevel(pwc, gsteps, gva);

    // Ideal: each guest entry is fetched directly at its host address
    // with no host-dimension walk and no hypervisor cost.
    for (const RadixStep &step : gsteps) {
        if (step.level >= skip_through)
            continue;
        const Addr entry_gpa = step.entry_addr;
        const Translation host = sys.hostTranslate(entry_gpa);
        t += seqAccess(host.apply(entry_gpa), t);
        ++accesses;
        if (step.level >= 2 && !step.leaf)
            pwc.fill(step.level, gva);
    }

    result.translation = sys.fullTranslate(gva);
    finishWalk(result, now, t, accesses);
    return result;
}

WalkResult
PomTlbWalker::translate(Addr gva, Cycles now)
{
    // One in-DRAM probe (cacheable in L2/L3 like data). The probe IS
    // the POM-TLB lookup, so its whole latency is the tlb cause.
    Cycles t = now;
    const PomTlb::Result probe = pom.lookup(gva);
    t += seqAccessAs(AttrCause::Tlb, probe.entry_addr, t);

    if (probe.hit) {
        WalkResult result;
        result.translation = probe.translation;
        finishWalk(result, now, t, 1);
        return result;
    }

    // Fall back to a full nested radix walk, then install.
    WalkResult walked = fallback.translate(gva, t);
    pom.install(gva, walked.translation);

    WalkResult result;
    result.translation = walked.translation;
    // The fallback walk's cycles are part of this walk's latency: fold
    // its ledger so our bins conserve the combined total.
    ledger_.fold(fallback.lastWalkLedger());
    finishWalk(result, now, t + walked.latency,
               1 + walked.mem_accesses);
    // The fallback walker recorded its own stats; fold its traffic into
    // ours and neutralize the double count of busy cycles.
    stats_.mmu_requests.inc(
        static_cast<std::uint64_t>(walked.mem_accesses));
    return result;
}

WalkResult
FlatNestedWalker::translate(Addr gva, Cycles now)
{
    WalkResult result;
    std::vector<RadixStep> gsteps;
    RadixPageTable *gtable = sys.guestRadix();
    FlatPageTable *flat = sys.hostFlat();
    NECPT_ASSERT(gtable && flat);
    const Translation guest = gtable->walk(gva, gsteps);
    NECPT_ASSERT(guest.valid);

    Cycles t = now + gpwc.latency();
    charge(AttrCause::Probe, gpwc.latency());
    int accesses = 0;

    const int skip_through = pwcSkipLevel(gpwc, gsteps, gva);

    for (const RadixStep &step : gsteps) {
        if (step.level >= skip_through)
            continue;
        const Addr entry_gpa = step.entry_addr;
        Translation host;
        if (Addr *hpa_frame = ntlb.lookup(entry_gpa)) {
            host = {*hpa_frame, PageSize::Page4K, true};
            t += ntlb.latency();
            charge(AttrCause::Tlb, ntlb.latency());
        } else {
            // One flat-table reference translates any gPA.
            host = sys.hostTranslate(entry_gpa);
            t += seqAccess(flat->entryAddr(entry_gpa), t);
            ++accesses;
            ntlb.fill(entry_gpa, host.apply(entry_gpa) & ~mask(12));
        }
        t += seqAccess(host.apply(entry_gpa), t);
        ++accesses;
        if (step.level >= 2 && !step.leaf)
            gpwc.fill(step.level, gva);
    }

    // Final flat reference for the data page.
    const Addr gpa_data = guest.apply(gva);
    sys.hostTranslate(gpa_data);
    t += seqAccess(flat->entryAddr(gpa_data), t);
    ++accesses;

    result.translation = sys.fullTranslate(gva);
    finishWalk(result, now, t, accesses);
    return result;
}

} // namespace necpt
