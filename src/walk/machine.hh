/**
 * @file
 * Resumable walk state machines.
 *
 * A WalkMachine is one in-flight page walk: Walker::startWalk() builds
 * it, it issues asynchronous memory transactions through
 * MemoryHierarchy::issueBatch(), parks until they complete, and calls
 * finish() when the translation is known. The simulator keeps up to
 * SimParams::max_outstanding_walks machines live per core, which is
 * how independent walks overlap and contend for MSHRs and DRAM banks
 * over simulated time.
 *
 * Machines are pooled: dropping a WalkMachinePtr calls release(),
 * which returns the machine to its walker's free list; the next
 * startWalk() reinit()s a recycled one instead of allocating. The
 * completion continuation is a non-owning FunctionRef — its callee
 * (typically the simulator's per-core retire handler) outlives every
 * walk.
 *
 * Walkers that still compute synchronously (radix, hybrid, native
 * ECPT) are adapted by ImmediateWalkMachine: the walk runs to
 * completion at issue and the machine is born done — correct timing
 * for a lone walk, no intra-walk overlap modeled.
 */

#ifndef NECPT_WALK_MACHINE_HH
#define NECPT_WALK_MACHINE_HH

#include <utility>

#include "common/function_ref.hh"
#include "common/log.hh"
#include "walk/walker.hh"

namespace necpt
{

/** Completion continuation: non-owning, callee outlives the walk. */
using WalkDoneFn = FunctionRef<void(WalkMachine &)>;

/**
 * One resumable, in-flight page walk.
 */
class WalkMachine
{
  public:
    virtual ~WalkMachine() = default;

    WalkMachine(const WalkMachine &) = delete;
    WalkMachine &operator=(const WalkMachine &) = delete;

    Addr va() const { return va_; }
    Cycles startCycle() const { return start_; }
    bool done() const { return done_; }

    /// @name Coherence bookkeeping
    /// The directory epoch when this walk issued (set by the owner;
    /// stays 0 when the coherence subsystem is off). At retire time
    /// the simulator asks the directory whether anything overlapping
    /// the walk's VA was invalidated after this epoch — if so, the
    /// walk raced a shootdown and replays against the mutated tables.
    /// @{
    void setCoherenceEpoch(std::uint64_t e) { coherence_epoch_ = e; }
    std::uint64_t coherenceEpoch() const { return coherence_epoch_; }
    /// @}

    /** Completion cycle; only valid once done(). */
    Cycles
    endCycle() const
    {
        NECPT_ASSERT(done_);
        return end_;
    }

    /// @name Per-walk attribution snapshot
    /// A copy of this walk's cycle ledger, captured by the machine (or
    /// its walker) just before finish() delivers the continuation.
    /// Walkers reuse one live ledger across walks, so completion
    /// handlers that run later in the same cycle (stall accounting,
    /// the critical-path recorder) read this snapshot instead. Zeroed
    /// when attribution is disabled.
    /// @{
    const CycleLedger &attrLedger() const { return attr_ledger_; }
    void setAttrLedger(const CycleLedger &led) { attr_ledger_ = led; }
    /// @}

    /** The finished walk's outcome; only valid once done(). */
    const WalkResult &
    result() const
    {
        NECPT_ASSERT(done_);
        return result_;
    }

    /**
     * Install the completion continuation. Fires exactly once — from
     * inside finish(), or immediately here if the machine is already
     * done (the ImmediateWalkMachine path). The callback must not
     * destroy the machine: completion is usually delivered from a
     * memory-transaction callback still executing machine code, so
     * owners defer destruction until after the drain returns.
     */
    void
    onDone(WalkDoneFn cb)
    {
        if (done_) {
            cb(*this);
            return;
        }
        on_done = cb;
    }

    /** Hand the machine back to its pool. The default is plain
     *  deletion; pooled subclasses push themselves on a free list. */
    virtual void release() { delete this; }

  protected:
    WalkMachine(Addr va, Cycles start) : va_(va), start_(start) {}

    /** Reset for reuse from a pool: a fresh walk of @p va at @p start. */
    void
    reinit(Addr va, Cycles start)
    {
        va_ = va;
        start_ = start;
        end_ = 0;
        done_ = false;
        result_ = WalkResult{};
        on_done = nullptr;
        coherence_epoch_ = 0;
        attr_ledger_.reset();
    }

    /** Mark the walk complete at @p end and deliver the continuation. */
    void
    finish(WalkResult result, Cycles end)
    {
        NECPT_ASSERT(!done_);
        result_ = std::move(result);
        end_ = end;
        done_ = true;
        if (on_done) {
            WalkDoneFn cb = on_done;
            on_done = nullptr;
            cb(*this);
        }
    }

  private:
    Addr va_;
    Cycles start_;
    Cycles end_ = 0;
    bool done_ = false;
    std::uint64_t coherence_epoch_ = 0;
    WalkResult result_;
    WalkDoneFn on_done;
    CycleLedger attr_ledger_;
};

inline void
WalkMachineReleaser::operator()(WalkMachine *machine) const
{
    if (machine)
        machine->release();
}

/**
 * Adapter for walkers whose translate() is synchronous: the result is
 * known at construction and the machine is born done. Pooled in the
 * owning Walker (the default startWalk() recycles released ones).
 */
class ImmediateWalkMachine : public WalkMachine
{
  public:
    ImmediateWalkMachine(Walker *walker, Addr va, Cycles start,
                         WalkResult result)
        : WalkMachine(va, start), owner(walker)
    {
        // The synchronous walk already ran; snapshot its ledger before
        // finish() would hand the machine to a continuation. (None is
        // installed yet here, but rebind() shares the invariant.)
        setAttrLedger(walker->lastWalkLedger());
        const Cycles end = start + result.latency;
        finish(std::move(result), end);
    }

    /** Reuse a pooled machine for a new already-computed walk. */
    void
    rebind(Addr va, Cycles start, WalkResult result)
    {
        reinit(va, start);
        setAttrLedger(owner->lastWalkLedger());
        const Cycles end = start + result.latency;
        finish(std::move(result), end);
    }

    void
    release() override
    {
        owner->imm_free.push_back(this);
    }

  private:
    Walker *owner;
};

} // namespace necpt

#endif // NECPT_WALK_MACHINE_HH
