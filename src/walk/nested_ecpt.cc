#include "walk/nested_ecpt.hh"

#include "common/log.hh"

namespace necpt
{

namespace
{

/** Table-2 CWC geometries. */
std::array<std::size_t, num_page_sizes>
step1CwcGeometry(const NestedEcptFeatures &feat)
{
    if (feat.step1_pte_hcwt)
        return {4, 0, 0}; // Advanced: 4 PTE entries
    return {0, 16, 2};    // Plain: PUD/PMD info only
}

std::array<std::size_t, num_page_sizes>
step3CwcGeometry(const NestedEcptFeatures &feat)
{
    if (feat.step3_adaptive_pte)
        return {16, 4, 2}; // Advanced: 16 PTE + 4 PMD + 2 PUD
    return {0, 16, 2};     // Plain
}

} // namespace

NestedEcptWalker::NestedEcptWalker(NestedSystem &system,
                                   MemoryHierarchy &memory, int core_id,
                                   const NestedEcptFeatures &features)
    : Walker(system, memory, core_id),
      feat(features),
      gcwc({0, 16, 2}), // Table 2: gCWC = 16 PMD + 2 PUD
      hcwc_step1(step1CwcGeometry(features)),
      hcwc_step3(step3CwcGeometry(features)),
      stc(features.stc_entries)
{
    NECPT_ASSERT(sys.guestEcpt() && sys.hostEcpt());
}

void
NestedEcptWalker::registerMetrics(MetricsRegistry &reg,
                                  const std::string &prefix)
{
    Walker::registerMetrics(reg, prefix);

    reg.addHitMiss(prefix + "stc", &stc.stats(),
                   "shortcut translation cache (Section 4.1)");

    const struct
    {
        const char *slug;
        const CuckooWalkCache *cwc;
    } cwcs[] = {
        {"cwc.gcwc", &gcwc},
        {"cwc.hcwc_step1", &hcwc_step1},
        {"cwc.hcwc_step3", &hcwc_step3},
    };
    for (const auto &c : cwcs) {
        for (PageSize size : all_page_sizes) {
            if (!c.cwc->caches(size))
                continue;
            reg.addHitMiss(prefix + c.slug + "." + pageLevelName(size),
                           &c.cwc->stats(size));
        }
    }

    reg.addCounter(prefix + "adaptive.transitions",
                   [this] { return adaptive.transitions(); },
                   "PTE-hCWT enable<->disable flips (Section 4.2)");
    reg.addValue(prefix + "adaptive.pte_enabled", [this] {
        return adaptive.pteCachingEnabled() ? 1.0 : 0.0;
    });
    reg.addRates(prefix + "adaptive.pte.window_rates",
                 &adaptive.pteMonitor(),
                 "Step-3 PTE hCWC windowed hit rates (Figure 12)");
    reg.addRates(prefix + "adaptive.pmd.window_rates",
                 &adaptive.pmdMonitor(),
                 "Step-3 PMD hCWC windowed hit rates (Figure 12)");
}

void
NestedEcptWalker::tracePlan(const char *cache, const CuckooWalkCache &cwc,
                            const EcptProbePlan &plan, Cycles t)
{
    const auto core_id = static_cast<std::uint32_t>(core);
    for (int s = 0; s < num_page_sizes; ++s) {
        if (!cwc.caches(all_page_sizes[s]))
            continue;
        tracer()->instant(plan.cwc_missed[s] ? "cwc.miss" : "cwc.hit",
                          TraceCat::Cwc, core_id, t,
                          {{"cache", 0, cache},
                           {"level", 0, pageLevelName(all_page_sizes[s])},
                           {"kind", 0, walkKindName(plan.kind)}});
    }
}

void
NestedEcptWalker::traceProbes(int step, const std::vector<Addr> &addrs,
                              Cycles t)
{
    const auto core_id = static_cast<std::uint32_t>(core);
    for (std::size_t i = 0; i < addrs.size(); ++i) {
        tracer()->instant("probe", TraceCat::Probe, core_id, t,
                          {{"step", step},
                           {"way", static_cast<std::int64_t>(i)},
                           {"addr",
                            static_cast<std::int64_t>(addrs[i])}});
    }
}

EcptProbePlan
NestedEcptWalker::planStep1Host(Addr gpa, Cycles t)
{
    EcptPageTable &host = *sys.hostEcpt();
    PlanOptions options;
    options.use_pte_info = feat.step1_pte_hcwt;
    options.now = t;
    EcptProbePlan plan = planEcptWalk(host, hcwc_step1, gpa, options);

    if (feat.pt_4kb) {
        // Page tables are 4KB allocations (Section 4.3): the PUD- and
        // PMD-hECPTs cannot hold this translation.
        plan.way_mask[static_cast<int>(PageSize::Page2M)] = 0;
        plan.way_mask[static_cast<int>(PageSize::Page1G)] = 0;
        if (plan.way_mask[static_cast<int>(PageSize::Page4K)] == 0)
            plan.way_mask[static_cast<int>(PageSize::Page4K)] =
                host.allWays();
        plan.kind = classifyPlan(plan, host.config().ways);
    }
    return plan;
}

void
NestedEcptWalker::appendHostProbes(Addr gpa, const EcptProbePlan &plan,
                                   std::vector<Addr> &out) const
{
    const EcptPageTable &host = *sys.hostEcpt();
    for (int s = 0; s < num_page_sizes; ++s) {
        if (plan.way_mask[s])
            host.probeAddrs(gpa, all_page_sizes[s], plan.way_mask[s],
                            out);
    }
}

void
NestedEcptWalker::refillGuestCwc(Addr gva, const EcptProbePlan &gplan,
                                 Cycles t)
{
    EcptPageTable &guest = *sys.guestEcpt();
    EcptPageTable &host = *sys.hostEcpt();

    for (int s = 0; s < num_page_sizes; ++s) {
        if (!gplan.cwc_missed[s])
            continue;
        const auto level = all_page_sizes[s];
        const CuckooWalkTable *cwt = guest.cwtOf(level);
        if (!cwt || !gcwc.caches(level))
            continue;

        // The gCWT entry lives at a guest-physical address: find the
        // host address of each probe (Section 4.1 / Figure 7).
        std::vector<Addr> gcwt_probes;
        cwt->entryProbeAddrs(gva, gcwt_probes);
        for (Addr gcwt_gpa : gcwt_probes) {
            Addr hpa;
            Addr *cached = feat.stc ? stc.lookup(gcwt_gpa) : nullptr;
            if (feat.stc && traceActive())
                tracer_->instant(cached ? "stc.hit" : "stc.miss",
                                 TraceCat::Cwc,
                                 static_cast<std::uint32_t>(core), t,
                                 {{"gpa",
                                   static_cast<std::int64_t>(gcwt_gpa)}});
            if (cached) {
                hpa = *cached + pageOffset(gcwt_gpa, PageSize::Page4K);
            } else {
                // Full background translation: probe the hECPTs for
                // the gCWT page (it is a 4KB page-table allocation).
                host.probeAddrs(gcwt_gpa, PageSize::Page4K,
                                host.allWays(), background_buf);
                const Translation h = sys.hostTranslate(gcwt_gpa);
                hpa = h.apply(gcwt_gpa);
                if (feat.stc)
                    stc.fill(gcwt_gpa, hpa & ~mask(12));
            }
            background_buf.push_back(hpa);
        }

        gcwc.fill(level, cwt->entryKey(gva), 1);
    }
}

WalkResult
NestedEcptWalker::translate(Addr gva, Cycles now)
{
    const bool tracing = traceBegin();
    WalkResult result;
    EcptPageTable &guest = *sys.guestEcpt();
    EcptPageTable &host = *sys.hostEcpt();
    background_buf.clear();

    // ---- Step 1: locate the gECPT entry (Figure 6, left) ----
    Cycles t = now + gcwc.latency() + hash_latency;

    PlanOptions goptions;
    goptions.use_pte_info = false; // no PTE gCWT ever (Section 4.2)
    goptions.now = t;
    const EcptProbePlan gplan = planEcptWalk(guest, gcwc, gva, goptions);
    stats_.guest_kind[static_cast<int>(gplan.kind)].inc();
    if (tracing)
        tracePlan("gcwc", gcwc, gplan, t);

    guest_slots.clear();
    for (int s = 0; s < num_page_sizes; ++s) {
        if (gplan.way_mask[s])
            guest.probeAddrs(gva, all_page_sizes[s], gplan.way_mask[s],
                             guest_slots);
    }

    // For each candidate gECPT slot (a gPA), translate through the
    // hECPTs — the parallel Step-1 probe group.
    t += hcwc_step1.latency();
    probe_buf.clear();
    for (Addr slot_gpa : guest_slots) {
        const EcptProbePlan hplan = planStep1Host(slot_gpa, t);
        stats_.host_kind[static_cast<int>(hplan.kind)].inc();
        if (tracing)
            tracePlan("hcwc_step1", hcwc_step1, hplan, t);
        appendHostProbes(slot_gpa, hplan, probe_buf);

        // Background refill of missed Step-1 hCWC levels (deferred
        // to walk completion: refills never block the walk).
        PlanOptions hopts;
        hopts.use_pte_info = feat.step1_pte_hcwt;
        hopts.now = t;
        collectCwcRefills(host, hcwc_step1, slot_gpa, hplan, hopts,
                          background_buf);
    }
    const Cycles t1 = t;
    const BatchResult br1 = batchAccess(probe_buf, t);
    t += br1.latency;
    stats_.step_sum[0] += static_cast<std::uint64_t>(br1.requests);
    stats_.step_cnt[0] += 1;
    stats_.step_lat[0] += br1.latency;
    if (tracing) {
        traceProbes(1, probe_buf, t1);
        tracer_->span("walk.step1", TraceCat::Walk,
                      static_cast<std::uint32_t>(core), t1, br1.latency,
                      {{"probes", br1.requests},
                       {"gecpt_slots",
                        static_cast<std::int64_t>(guest_slots.size())}});
    }

    // Background: refill missed gCWC levels (the STC's reason to be).
    refillGuestCwc(gva, gplan, t);

    // ---- Step 2: fetch the gECPT candidates at host addresses ----
    probe_buf.clear();
    for (Addr slot_gpa : guest_slots) {
        const Translation h = sys.hostTranslate(slot_gpa);
        probe_buf.push_back(h.apply(slot_gpa));
    }
    const Cycles t2 = t;
    const BatchResult br2 = batchAccess(probe_buf, t);
    t += br2.latency;
    stats_.step_sum[1] += static_cast<std::uint64_t>(br2.requests);
    stats_.step_cnt[1] += 1;
    stats_.step_lat[1] += br2.latency;
    if (tracing) {
        traceProbes(2, probe_buf, t2);
        tracer_->span("walk.step2", TraceCat::Walk,
                      static_cast<std::uint32_t>(core), t2, br2.latency,
                      {{"probes", br2.requests}});
    }

    // ---- Step 3: translate the data page's gPA ----
    const Translation g = sys.guestTranslate(gva);
    NECPT_ASSERT(g.valid);
    const Addr gpa_data = g.apply(gva);

    t += hcwc_step3.latency() + hash_latency;
    const bool use_pte3 =
        feat.step3_adaptive_pte && adaptive.pteCachingEnabled()
        && host.hasPteCwt();
    PlanOptions h3opts;
    h3opts.use_pte_info = use_pte3;
    h3opts.adaptive = feat.step3_adaptive_pte ? &adaptive : nullptr;
    h3opts.now = t;
    const EcptProbePlan h3plan =
        planEcptWalk(host, hcwc_step3, gpa_data, h3opts);
    stats_.host_kind[static_cast<int>(h3plan.kind)].inc();
    if (tracing)
        tracePlan("hcwc_step3", hcwc_step3, h3plan, t);

    probe_buf.clear();
    appendHostProbes(gpa_data, h3plan, probe_buf);
    const Cycles t3 = t;
    const BatchResult br3 = batchAccess(probe_buf, t);
    t += br3.latency;
    stats_.step_sum[2] += static_cast<std::uint64_t>(br3.requests);
    stats_.step_cnt[2] += 1;
    stats_.step_lat[2] += br3.latency;
    if (tracing) {
        traceProbes(3, probe_buf, t3);
        tracer_->span("walk.step3", TraceCat::Walk,
                      static_cast<std::uint32_t>(core), t3, br3.latency,
                      {{"probes", br3.requests},
                       {"pte_hcwt_on", use_pte3 ? 1 : 0}});
    }

    collectCwcRefills(host, hcwc_step3, gpa_data, h3plan, h3opts,
                      background_buf);

    // All background traffic (CWT fetches, gCWT translations) is
    // issued once the walk completes: it consumes bandwidth and cache
    // space but never extends this walk (Sections 3.2 / 4.1).
    if (!background_buf.empty())
        backgroundAccess(background_buf, t);

    result.translation = sys.fullTranslate(gva);
    NECPT_ASSERT(result.translation.valid);
    finishWalk(result, now, t,
               br1.requests + br2.requests + br3.requests);
    return result;
}

} // namespace necpt
