#include "walk/nested_ecpt.hh"

#include "common/log.hh"
#include "walk/machine.hh"

namespace necpt
{

namespace
{

/** Table-2 CWC geometries. */
std::array<std::size_t, num_page_sizes>
step1CwcGeometry(const NestedEcptFeatures &feat)
{
    if (feat.step1_pte_hcwt)
        return {4, 0, 0}; // Advanced: 4 PTE entries
    return {0, 16, 2};    // Plain: PUD/PMD info only
}

std::array<std::size_t, num_page_sizes>
step3CwcGeometry(const NestedEcptFeatures &feat)
{
    if (feat.step3_adaptive_pte)
        return {16, 4, 2}; // Advanced: 16 PTE + 4 PMD + 2 PUD
    return {0, 16, 2};     // Plain
}

} // namespace

NestedEcptWalker::NestedEcptWalker(NestedSystem &system,
                                   MemoryHierarchy &memory, int core_id,
                                   const NestedEcptFeatures &features)
    : Walker(system, memory, core_id),
      feat(features),
      gcwc({0, 16, 2}), // Table 2: gCWC = 16 PMD + 2 PUD
      hcwc_step1(step1CwcGeometry(features)),
      hcwc_step3(step3CwcGeometry(features)),
      stc(features.stc_entries)
{
    NECPT_ASSERT(sys.guestEcpt() && sys.hostEcpt());
}

void
NestedEcptWalker::registerMetrics(MetricsRegistry &reg,
                                  const std::string &prefix)
{
    Walker::registerMetrics(reg, prefix);

    reg.addHitMiss(prefix + "stc", &stc.stats(),
                   "shortcut translation cache (Section 4.1)");

    const struct
    {
        const char *slug;
        const CuckooWalkCache *cwc;
    } cwcs[] = {
        {"cwc.gcwc", &gcwc},
        {"cwc.hcwc_step1", &hcwc_step1},
        {"cwc.hcwc_step3", &hcwc_step3},
    };
    for (const auto &c : cwcs) {
        for (PageSize size : all_page_sizes) {
            if (!c.cwc->caches(size))
                continue;
            reg.addHitMiss(prefix + c.slug + "." + pageLevelName(size),
                           &c.cwc->stats(size));
        }
    }

    reg.addCounter(prefix + "adaptive.transitions",
                   [this] { return adaptive.transitions(); },
                   "PTE-hCWT enable<->disable flips (Section 4.2)");
    reg.addValue(prefix + "adaptive.pte_enabled", [this] {
        return adaptive.pteCachingEnabled() ? 1.0 : 0.0;
    });
    reg.addRates(prefix + "adaptive.pte.window_rates",
                 &adaptive.pteMonitor(),
                 "Step-3 PTE hCWC windowed hit rates (Figure 12)");
    reg.addRates(prefix + "adaptive.pmd.window_rates",
                 &adaptive.pmdMonitor(),
                 "Step-3 PMD hCWC windowed hit rates (Figure 12)");
}

void
NestedEcptWalker::tracePlan(const char *cache, const CuckooWalkCache &cwc,
                            const EcptProbePlan &plan, Cycles t)
{
    const auto core_id = static_cast<std::uint32_t>(core);
    for (int s = 0; s < num_page_sizes; ++s) {
        if (!cwc.caches(all_page_sizes[s]))
            continue;
        tracer()->instant(plan.cwc_missed[s] ? "cwc.miss" : "cwc.hit",
                          TraceCat::Cwc, core_id, t,
                          {{"cache", 0, cache},
                           {"level", 0, pageLevelName(all_page_sizes[s])},
                           {"kind", 0, walkKindName(plan.kind)}});
    }
}

void
NestedEcptWalker::traceProbes(int step, AddrSpan addrs, Cycles t)
{
    const auto core_id = static_cast<std::uint32_t>(core);
    for (std::size_t i = 0; i < addrs.size(); ++i) {
        tracer()->instant("probe", TraceCat::Probe, core_id, t,
                          {{"step", step},
                           {"way", static_cast<std::int64_t>(i)},
                           {"addr",
                            static_cast<std::int64_t>(addrs[i])}});
    }
}

EcptProbePlan
NestedEcptWalker::planStep1Host(Addr gpa, Cycles t)
{
    EcptPageTable &host = *sys.hostEcpt();
    PlanOptions options;
    options.use_pte_info = feat.step1_pte_hcwt;
    options.now = t;
    EcptProbePlan plan = planEcptWalk(host, hcwc_step1, gpa, options);

    if (feat.pt_4kb) {
        // Page tables are 4KB allocations (Section 4.3): the PUD- and
        // PMD-hECPTs cannot hold this translation.
        plan.way_mask[static_cast<int>(PageSize::Page2M)] = 0;
        plan.way_mask[static_cast<int>(PageSize::Page1G)] = 0;
        if (plan.way_mask[static_cast<int>(PageSize::Page4K)] == 0)
            plan.way_mask[static_cast<int>(PageSize::Page4K)] =
                host.allWays();
        plan.kind = classifyPlan(plan, host.config().ways);
    }
    return plan;
}

void
NestedEcptWalker::refillGuestCwc(Addr gva, const EcptProbePlan &gplan,
                                 Cycles t, std::vector<Addr> &background)
{
    EcptPageTable &guest = *sys.guestEcpt();
    EcptPageTable &host = *sys.hostEcpt();

    for (int s = 0; s < num_page_sizes; ++s) {
        if (!gplan.cwc_missed[s])
            continue;
        const auto level = all_page_sizes[s];
        const CuckooWalkTable *cwt = guest.cwtOf(level);
        if (!cwt || !gcwc.caches(level))
            continue;

        // The gCWT entry lives at a guest-physical address: find the
        // host address of each probe (Section 4.1 / Figure 7).
        gcwt_scratch.clear();
        cwt->entryProbeAddrs(gva, gcwt_scratch);
        for (Addr gcwt_gpa : gcwt_scratch) {
            Addr hpa;
            Addr *cached = feat.stc ? stc.lookup(gcwt_gpa) : nullptr;
            if (feat.stc && traceActive())
                tracer_->instant(cached ? "stc.hit" : "stc.miss",
                                 TraceCat::Cwc,
                                 static_cast<std::uint32_t>(core), t,
                                 {{"gpa",
                                   static_cast<std::int64_t>(gcwt_gpa)}});
            if (cached) {
                hpa = *cached + pageOffset(gcwt_gpa, PageSize::Page4K);
            } else {
                // Full background translation: probe the hECPTs for
                // the gCWT page (it is a 4KB page-table allocation).
                host.probeAddrs(gcwt_gpa, PageSize::Page4K,
                                host.allWays(), background);
                const Translation h = sys.hostTranslate(gcwt_gpa);
                hpa = h.apply(gcwt_gpa);
                if (feat.stc)
                    stc.fill(gcwt_gpa, hpa & ~mask(12));
            }
            background.push_back(hpa);
        }

        gcwc.fill(level, cwt->entryKey(gva), 1);
    }
}

/**
 * The resumable nested-ECPT walk. Each of Figure 6's three steps is a
 * state: the machine plans the step, issues its probe group as one
 * asynchronous memory transaction, and parks; the transaction's
 * completion callback advances to the next step. Per-walk scratch
 * (candidate slots, probe buffers, deferred refill traffic) lives here
 * so multiple walks from one walker can be in flight at once.
 */
class NestedEcptWalker::Machine : public WalkMachine
{
  public:
    Machine(NestedEcptWalker &walker, Addr gva, Cycles now)
        : WalkMachine(gva, now), w(walker)
    {}

    /** Reuse a pooled machine for a fresh walk: probe-buffer capacity
     *  survives, so a warm pool never touches the heap. */
    void
    rebind(Addr gva, Cycles now)
    {
        reinit(gva, now);
        tracing = false;
        t = 0;
        fg_requests = 0;
        gplan = EcptProbePlan{};
        h3plan = EcptProbePlan{};
        gpa_data = 0;
        use_pte3 = false;
        has_spec = false;
        ledger.reset();
        scratch.clear();
    }

    /** Adopt a speculative precomputation (copied: the source lives in
     *  the core's lookahead ring and is recycled at the next refill,
     *  while this machine parks across memory transactions). */
    void
    adoptSpec(const SpecWalkPlan &plan)
    {
        spec = plan;
        has_spec = true;
    }

    /** Is the adopted plan still valid against the tables right now?
     *  Re-checked at every consumption site: churn (and quiesce) can
     *  mutate between this machine's asynchronous steps, and the stamp
     *  is the proof nothing did since the plan was computed. */
    bool
    specLive() const
    {
        return has_spec && spec.valid && spec.gva == va()
            && spec.stamp == w.sys.mutationStamp();
    }

    void
    release() override
    {
        w.machine_free.push_back(this);
    }

    /** Run Step 1's plan phase and issue its probe transaction. */
    void
    start()
    {
        tracing = w.traceBegin();
        ledger.setEnabled(w.attributionEnabled());
        EcptPageTable &guest = *w.sys.guestEcpt();
        EcptPageTable &host = *w.sys.hostEcpt();
        const Addr gva = va();

        // ---- Step 1: locate the gECPT entry (Figure 6, left) ----
        t = startCycle() + w.gcwc.latency() + hash_latency;
        ledger.charge(AttrCause::Probe, w.gcwc.latency());
        ledger.charge(AttrCause::Compute, hash_latency);

        PlanOptions goptions;
        goptions.use_pte_info = false; // no PTE gCWT ever (Section 4.2)
        goptions.now = t;
        gplan = planEcptWalk(guest, w.gcwc, gva, goptions);
        w.stats_.guest_kind[static_cast<int>(gplan.kind)].inc();
        if (tracing)
            w.tracePlan("gcwc", w.gcwc, gplan, t);

        // Step-1 candidate-slot addresses: from the speculative plan
        // when its stamp proves the tables unchanged since the epoch
        // workers hashed them, recomputed inline otherwise. Both paths
        // append identical bytes (walk/spec_plan.hh).
        if (specLive() && spec.guest.ok)
            appendSpecProbes(spec.guest, gplan, scratch.guest_slots);
        else
            appendPlannedProbes(guest, gva, gplan, scratch.guest_slots);

        // For each candidate gECPT slot (a gPA), translate through the
        // hECPTs — the parallel Step-1 probe group.
        t += w.hcwc_step1.latency();
        ledger.charge(AttrCause::Probe, w.hcwc_step1.latency());
        for (Addr slot_gpa : scratch.guest_slots) {
            const EcptProbePlan hplan = w.planStep1Host(slot_gpa, t);
            w.stats_.host_kind[static_cast<int>(hplan.kind)].inc();
            if (tracing)
                w.tracePlan("hcwc_step1", w.hcwc_step1, hplan, t);
            appendPlannedProbes(host, slot_gpa, hplan, scratch.probes);

            // Background refill of missed Step-1 hCWC levels (deferred
            // to walk completion: refills never block the walk).
            PlanOptions hopts;
            hopts.use_pte_info = w.feat.step1_pte_hcwt;
            hopts.now = t;
            collectCwcRefills(host, w.hcwc_step1, slot_gpa, hplan,
                              hopts, scratch.background);
        }
        w.mem.issueBatch(scratch.probes, t, w.core,
                         TxnCallback::bind<&Machine::afterStep1>(this));
    }

  private:
    void
    afterStep1(const BatchResult &br1, Cycles done)
    {
        const Cycles t1 = t;
        t = done;
        chargeProbePhase(w.stats_, 0, br1, &ledger);
        fg_requests += br1.requests;
        if (tracing) {
            w.traceProbes(1, scratch.probes, t1);
            w.tracer_->span(
                "walk.step1", TraceCat::Walk,
                static_cast<std::uint32_t>(w.core), t1, br1.latency,
                {{"probes", br1.requests},
                 {"gecpt_slots",
                  static_cast<std::int64_t>(
                      scratch.guest_slots.size())}});
        }

        // Background: refill missed gCWC levels (the STC's reason to
        // be).
        w.refillGuestCwc(va(), gplan, t, scratch.background);

        // ---- Step 2: fetch the gECPT candidates at host addresses ----
        scratch.probes.clear();
        for (Addr slot_gpa : scratch.guest_slots) {
            const Translation h = w.sys.hostTranslate(slot_gpa);
            scratch.probes.push_back(h.apply(slot_gpa));
        }
        w.mem.issueBatch(scratch.probes, t, w.core,
                         TxnCallback::bind<&Machine::afterStep2>(this));
    }

    void
    afterStep2(const BatchResult &br2, Cycles done)
    {
        const Cycles t2 = t;
        t = done;
        chargeProbePhase(w.stats_, 1, br2, &ledger);
        fg_requests += br2.requests;
        if (tracing) {
            w.traceProbes(2, scratch.probes, t2);
            w.tracer_->span("walk.step2", TraceCat::Walk,
                            static_cast<std::uint32_t>(w.core), t2,
                            br2.latency, {{"probes", br2.requests}});
        }

        // ---- Step 3: translate the data page's gPA ----
        EcptPageTable &host = *w.sys.hostEcpt();
        const bool spec_live = specLive();
        const Translation g =
            spec_live ? spec.guest_tr : w.sys.guestTranslate(va());
        if (!g.valid) {
            // Translation churn unmapped the page beneath this
            // in-flight walk. Real hardware would read the stale PTE;
            // the functional tables have already mutated, so finish
            // with an invalid translation and let the retire-time
            // coherence check replay against the new tables (the
            // shootdown ring answers invalidatedSince() true for this
            // VA). Cycles charged so far still equal the walk's
            // latency, so attribution conservation holds.
            abortUnmapped();
            return;
        }
        gpa_data = g.apply(va());

        t += w.hcwc_step3.latency() + hash_latency;
        ledger.charge(AttrCause::Probe, w.hcwc_step3.latency());
        ledger.charge(AttrCause::Compute, hash_latency);
        use_pte3 = w.feat.step3_adaptive_pte
                   && w.adaptive.pteCachingEnabled() && host.hasPteCwt();
        PlanOptions h3opts;
        h3opts.use_pte_info = use_pte3;
        h3opts.adaptive =
            w.feat.step3_adaptive_pte ? &w.adaptive : nullptr;
        h3opts.now = t;
        h3plan = planEcptWalk(host, w.hcwc_step3, gpa_data, h3opts);
        w.stats_.host_kind[static_cast<int>(h3plan.kind)].inc();
        if (tracing)
            w.tracePlan("hcwc_step3", w.hcwc_step3, h3plan, t);

        scratch.probes.clear();
        // spec.host3 was hashed for spec.gpa_data; under a matching
        // stamp the inline guest translation above IS spec.guest_tr,
        // so the addresses line up by construction.
        if (spec_live && spec.host3.ok)
            appendSpecProbes(spec.host3, h3plan, scratch.probes);
        else
            appendPlannedProbes(host, gpa_data, h3plan, scratch.probes);
        w.mem.issueBatch(scratch.probes, t, w.core,
                         TxnCallback::bind<&Machine::afterStep3>(this));
    }

    void
    afterStep3(const BatchResult &br3, Cycles done)
    {
        const Cycles t3 = t;
        t = done;
        chargeProbePhase(w.stats_, 2, br3, &ledger);
        fg_requests += br3.requests;
        if (tracing) {
            w.traceProbes(3, scratch.probes, t3);
            w.tracer_->span("walk.step3", TraceCat::Walk,
                            static_cast<std::uint32_t>(w.core), t3,
                            br3.latency,
                            {{"probes", br3.requests},
                             {"pte_hcwt_on", use_pte3 ? 1 : 0}});
        }

        PlanOptions h3opts;
        h3opts.use_pte_info = use_pte3;
        collectCwcRefills(*w.sys.hostEcpt(), w.hcwc_step3, gpa_data,
                          h3plan, h3opts, scratch.background);

        // All background traffic (CWT fetches, gCWT translations) is
        // issued once the walk completes: it consumes bandwidth and
        // cache space but never extends this walk (Sections 3.2/4.1).
        // The transaction may outlive the machine (which can be
        // recycled as soon as the owner drops it), so its completion
        // callee is the walker, never this.
        if (!scratch.background.empty()) {
            w.mem.issueBatch(
                scratch.background, t, w.core,
                TxnCallback::bind<&NestedEcptWalker::noteBackground>(
                    &w));
        }

        WalkResult result;
        // Final translation: a stamp-valid *valid* peeked translation
        // is exactly what fullTranslate() would return (and proves the
        // inline call would not have demand-faulted anything in). An
        // invalid peek cannot distinguish "unmapped" from "host
        // backing not yet faulted" — fall back inline for both.
        if (specLive() && spec.full_tr.valid)
            result.translation = spec.full_tr;
        else
            result.translation = w.sys.fullTranslate(va());
        // Invalid here means churn unmapped the page mid-walk (see
        // abortUnmapped); the retire-time coherence check replays.
        w.finishWalk(result, startCycle(), t, fg_requests, &ledger);
        // Snapshot attribution before finish() fires the continuation:
        // completion handlers read the machine, not the walker's
        // transient last-walk ledger.
        setAttrLedger(w.lastWalkLedger());
        finish(std::move(result), t);
    }

    /** Finish early with an invalid translation after churn pulled
     *  the mapping out from under the walk. */
    void
    abortUnmapped()
    {
        WalkResult result;
        w.finishWalk(result, startCycle(), t, fg_requests, &ledger);
        setAttrLedger(w.lastWalkLedger());
        finish(std::move(result), t);
    }

    NestedEcptWalker &w;
    bool tracing = false;
    Cycles t = 0;
    int fg_requests = 0;
    /** This walk's cycle bins — per machine, since several walks from
     *  one walker can be in flight at once. */
    CycleLedger ledger;
    EcptProbePlan gplan;
    EcptProbePlan h3plan;
    Addr gpa_data = 0;
    bool use_pte3 = false;
    /** Speculative epoch-window precomputation (walk/spec_plan.hh),
     *  copied in at startWalk; consumed per step iff specLive(). */
    SpecWalkPlan spec;
    bool has_spec = false;
    /** Per-walk probe buffers (guest_slots = Step-1 candidate gECPT
     *  gPAs, background = deferred refill traffic). */
    ProbeScratch scratch;
};

NestedEcptWalker::~NestedEcptWalker() = default;

void
NestedEcptWalker::MachineDeleter::operator()(Machine *machine) const
{
    delete machine;
}

void
NestedEcptWalker::noteBackground(const BatchResult &batch, Cycles)
{
    stats_.mmu_requests.inc(static_cast<std::uint64_t>(batch.requests));
}

WalkMachinePtr
NestedEcptWalker::startWalk(Addr gva, Cycles now)
{
    return startWalk(gva, now, nullptr);
}

WalkMachinePtr
NestedEcptWalker::startWalk(Addr gva, Cycles now,
                            const SpecWalkPlan *spec)
{
    Machine *m = nullptr;
    if (!machine_free.empty()) {
        m = machine_free.back();
        machine_free.pop_back();
        m->rebind(gva, now);
    } else {
        machine_arena.emplace_back(new Machine(*this, gva, now));
        m = machine_arena.back().get();
    }
    if (spec && spec->valid && spec->gva == gva)
        m->adoptSpec(*spec);
    m->start();
    return WalkMachinePtr(m);
}

WalkResult
NestedEcptWalker::translate(Addr gva, Cycles now)
{
    // Synchronous wrapper: issue the walk and drain the hierarchy so
    // every state of the machine (and its background traffic) runs
    // before we return — the legacy call-and-return timing.
    auto m = startWalk(gva, now);
    mem.drainAll();
    NECPT_ASSERT(m->done());
    return m->result();
}

} // namespace necpt
